(* E13 (extension): `emma serve` — multi-tenant service under a heavy
   Zipf arrival trace; measures what the session plan cache buys.

   Three tenants (one with double fair-share weight) replay the same
   deterministic arrival trace against two sessions that differ in one
   config bit: plan cache on (64-entry LRU) vs off. The trace is
   repeat-heavy by construction — Zipf(alpha) query popularity — so most
   submissions recompile a plan the cache-on session already holds.

   Contracts checked while measuring:

   - every query's value is identical between the cached and cold runs
     (the cache returns plans, never results);
   - the sim-mode replay fingerprint is bit-identical across repeats
     (scheduling, queues and cache counters are deterministic);
   - cache-on strictly beats cache-off on mean and p50 simulated latency,
     with a non-trivial hit count (the acceptance bar pinned in
     BENCH_serve.json).

   Sim latencies come from the deterministic service clock (compile
   charge + cost-model seconds); the real-concurrency run at the end
   reports sustained host qps and is excluded from acceptance (wall
   clock is machine noise). *)

module Value = Emma_value.Value
module Json = Emma_util.Json
module Prng = Emma_util.Prng
module Serve = Emma_serve.Serve
module Arrival = Emma_serve.Arrival
module Session = Emma.Session
module Config = Emma.Config
module W = Emma_workloads
module Pr = Emma_programs

let n_events = try int_of_string (Sys.getenv "EMMA_SERVE_EVENTS") with Not_found -> 160
let seed = 11
let rate = 4.0
let alpha = 1.1
let tenant_names = [ "acme"; "beta"; "gamma" ]
let query_names = [ "q1"; "wordcount"; "group-min"; "q3" ]

let docs ~seed n =
  let g = Prng.create seed in
  let vocab =
    [| "emma"; "bag"; "fold"; "join"; "group"; "plan"; "cache"; "serve"; "zipf";
       "lane" |]
  in
  Pr.Wordcount.docs_of_strings
    (List.init n (fun _ ->
         String.concat " "
           (List.init
              (Prng.int_in g 4 12)
              (fun _ -> vocab.(Prng.int_in g 0 (Array.length vocab - 1))))))

let workload () =
  let cfg = W.Tpch_gen.of_scale_factor 0.002 in
  let lineitem = W.Tpch_gen.lineitem ~seed:3 cfg in
  let orders = W.Tpch_gen.orders ~seed:3 cfg in
  let customer = W.Tpch_gen.customer ~seed:3 cfg in
  let dataset =
    W.Keyed_gen.tuples ~seed:5
      (W.Keyed_gen.paper_config ~n_tuples:2_000 (W.Keyed_gen.uniform ~n_keys:64))
  in
  [ ("q1", (Pr.Tpch_q1.program Pr.Tpch_q1.default_params, [ ("lineitem", lineitem) ]));
    ( "wordcount",
      (Pr.Wordcount.program Pr.Wordcount.default_params, [ ("docs", docs ~seed:7 400) ]) );
    ( "group-min",
      (Pr.Group_min.program Pr.Group_min.default_params, [ ("dataset", dataset) ]) );
    ( "q3",
      ( Pr.Tpch_q3.program Pr.Tpch_q3.default_params,
        [ ("customer", customer); ("orders", orders); ("lineitem", lineitem) ] ) ) ]

let tenants =
  [ Serve.tenant ~weight:2 "acme"; Serve.tenant "beta"; Serve.tenant "gamma" ]

let rt () = Exp_common.rt ~profile:Exp_common.spark ()

let run_sim ~plan_cache wl events =
  let config = Config.with_plan_cache plan_cache Config.default in
  let session = Session.create ~config (rt ()) in
  Fun.protect ~finally:(fun () -> Session.close session) @@ fun () ->
  Serve.run_sim session tenants wl events

let mean a =
  if Array.length a = 0 then 0.0
  else Array.fold_left ( +. ) 0.0 a /. float (Array.length a)

let value_of_result (r : Serve.query_result) =
  match r.Serve.qr_outcome with
  | Emma.Finished { value; _ } -> Some value
  | Emma.Failed _ | Emma.Timed_out _ | Emma.Cancelled _ -> None

let run () =
  Exp_common.section
    "E13: emma serve — plan cache under a Zipf multi-tenant trace (extension)";
  Printf.printf
    "(%d arrivals, rate %.1f/s, Zipf %.1f over %d tenants x %d queries; \
     latencies are deterministic service-clock seconds)\n"
    n_events rate alpha (List.length tenant_names) (List.length query_names);
  let wl = workload () in
  let events =
    Arrival.generate ~seed ~rate ~alpha ~tenants:tenant_names ~queries:query_names
      ~n:n_events
  in
  let on = run_sim ~plan_cache:(Some 64) wl events in
  let on2 = run_sim ~plan_cache:(Some 64) wl events in
  let off = run_sim ~plan_cache:None wl events in
  (* contract: replay determinism and value identity cached vs cold *)
  let replay_stable = Serve.fingerprint on = Serve.fingerprint on2 in
  if not replay_stable then failwith "serve: sim replay fingerprint moved";
  List.iter2
    (fun (a : Serve.query_result) (b : Serve.query_result) ->
      match (value_of_result a, value_of_result b) with
      | Some va, Some vb ->
          if not (Value.equal va vb) then
            failwith
              (Printf.sprintf "serve: cached result differs on sub %d (%s)"
                 a.Serve.qr_sub a.Serve.qr_query)
      | _ ->
          failwith
            (Printf.sprintf "serve: sub %d did not finish" a.Serve.qr_sub))
    on.Serve.sv_results off.Serve.sv_results;
  let stats c =
    let lat = Serve.latencies c in
    ( mean lat,
      Serve.percentile lat 0.50,
      Serve.percentile lat 0.99,
      c.Serve.sv_makespan_s )
  in
  let on_mean, on_p50, on_p99, on_mk = stats on in
  let off_mean, off_p50, off_p99, off_mk = stats off in
  let hits, misses, evictions =
    match on.Serve.sv_cache with
    | Some s -> Emma.Plan_cache.(s.hits, s.misses, s.evictions)
    | None -> (0, 0, 0)
  in
  let qps mk = float n_events /. mk in
  Emma_util.Tbl.print
    ~title:"sim-mode service latency (deterministic clock; cache on vs off)"
    ~header:[ "plan cache"; "mean"; "p50"; "p99"; "makespan"; "qps"; "hits/misses" ]
    [ [ "on (64)";
        Printf.sprintf "%.3f s" on_mean;
        Printf.sprintf "%.3f s" on_p50;
        Printf.sprintf "%.3f s" on_p99;
        Printf.sprintf "%.1f s" on_mk;
        Printf.sprintf "%.2f" (qps on_mk);
        Printf.sprintf "%d/%d" hits misses ];
      [ "off";
        Printf.sprintf "%.3f s" off_mean;
        Printf.sprintf "%.3f s" off_p50;
        Printf.sprintf "%.3f s" off_p99;
        Printf.sprintf "%.1f s" off_mk;
        Printf.sprintf "%.2f" (qps off_mk);
        "-" ] ];
  (* real concurrency: sustained host throughput, reported not gated *)
  let config = Config.with_plan_cache (Some 64) Config.default in
  let session = Session.create ~config (rt ()) in
  let real =
    Fun.protect ~finally:(fun () -> Session.close session) @@ fun () ->
    Serve.run_concurrent session tenants wl events
  in
  let real_qps = float n_events /. real.Serve.sv_wall_s in
  Printf.printf
    "real mode: %d queries over %d lanes in %.3f s wall — %.1f qps sustained\n"
    n_events real.Serve.sv_lanes real.Serve.sv_wall_s real_qps;
  let passed = on_mean < off_mean && on_p50 < off_p50 && hits > 0 in
  Printf.printf "acceptance: cache-on %s cache-off (mean %.3f vs %.3f, p50 %.3f \
                 vs %.3f, %d hits) — %s\n"
    (if passed then "beats" else "does NOT beat")
    on_mean off_mean on_p50 off_p50 hits
    (if passed then "ok" else "FAIL");
  let side name (m, p50, p99, mk) cache =
    ( name,
      Json.Obj
        ([ ("latency_mean_s", Json.Float m);
           ("latency_p50_s", Json.Float p50);
           ("latency_p99_s", Json.Float p99);
           ("makespan_s", Json.Float mk);
           ("qps", Json.Float (qps mk)) ]
        @ cache) )
  in
  let json =
    Json.Obj
      [ ("experiment", Json.Str "serve");
        ("bench", Json.Str "E13 Zipf multi-tenant trace, plan cache on vs off");
        ("events", Json.Int n_events);
        ("seed", Json.Int seed);
        ("rate_per_s", Json.Float rate);
        ("zipf_alpha", Json.Float alpha);
        ("tenants", Json.List (List.map (fun t -> Json.Str t) tenant_names));
        ("queries", Json.List (List.map (fun q -> Json.Str q) query_names));
        ("lanes", Json.Int on.Serve.sv_lanes);
        side "cache_on" (on_mean, on_p50, on_p99, on_mk)
          [ ("plan_cache_hits", Json.Int hits);
            ("plan_cache_misses", Json.Int misses);
            ("plan_cache_evictions", Json.Int evictions) ];
        side "cache_off" (off_mean, off_p50, off_p99, off_mk) [];
        ( "real",
          Json.Obj
            [ ("wall_s", Json.Float real.Serve.sv_wall_s);
              ("qps", Json.Float real_qps) ] );
        ("replay_fingerprint_stable", Json.Bool replay_stable);
        ("results_identical", Json.Bool true);
        ("target_met", Json.Bool passed) ]
  in
  let path = "BENCH_serve.json" in
  let oc = open_out path in
  output_string oc (Json.to_string json);
  output_char oc '\n';
  close_out oc;
  Printf.printf "measurement written to %s\n" path;
  if not passed then failwith "serve: plan cache missed the latency target"
