(* Figure 4: effect of unnesting / partition pulling / caching on the
   data-parallel workflow (paper §5.1).

   Workload: 1 M emails averaging 100 KB (100 GB logical), 100 K blacklist
   entries (2 GB logical), 8 classifiers, on the 40×8 cluster. We generate
   2,000 physical emails and run the cost model at data_scale 500.

   The paper reports relative speedups over the un-optimized baseline:
     Spark:  U 1.50x   U+P 1.50x   U+C 3.86x    U+P+C 4.18x
     Flink:  U 6.56x   U+P 6.56x   U+C 12.07x   U+P+C 18.16x *)

open Exp_common
module W = Emma_workloads
module Pr = Emma_programs

let physical_emails = 2_000
let data_scale = 500.0 (* 2k physical -> 1M logical emails *)

let configs =
  [ ("baseline", Pipeline.with_ ~unnest:false ~cache:false ~partition:false ());
    ("U", Pipeline.with_ ~unnest:true ~cache:false ~partition:false ());
    ("U+P", Pipeline.with_ ~unnest:true ~cache:false ~partition:true ());
    ("U+C", Pipeline.with_ ~unnest:true ~cache:true ~partition:false ());
    ("U+P+C", Pipeline.with_ ~unnest:true ~cache:true ~partition:true ()) ]

let paper =
  [ ("U", (1.50, 6.56));
    ("U+P", (1.50, 6.56));
    ("U+C", (3.86, 12.07));
    ("U+P+C", (4.18, 18.16)) ]

let run () =
  section "E1 / Figure 4: optimization effect on the data-parallel workflow";
  let cfg = W.Email_gen.paper_config ~physical_emails in
  let tables =
    [ ("emails_raw", W.Email_gen.emails ~seed:1 cfg);
      ("blacklist_raw", W.Email_gen.blacklist ~seed:1 cfg) ]
  in
  let prog = Pr.Spam_workflow.program Pr.Spam_workflow.default_params in
  let run_all profile =
    List.map
      (fun (name, opts) ->
        (name, run_config ~rt:(rt ~profile ~data_scale ()) ~opts prog tables))
      configs
  in
  let spark_runs = run_all spark in
  let flink_runs = run_all flink in
  let baseline_of runs = List.assoc "baseline" runs in
  let rows =
    List.filter_map
      (fun (name, _) ->
        if name = "baseline" then None
        else
          let s = List.assoc name spark_runs and f = List.assoc name flink_runs in
          let ps, pf = List.assoc name paper in
          Some
            [ name;
              speedup_cell ~baseline:(baseline_of spark_runs) s;
              Printf.sprintf "%.2fx" ps;
              speedup_cell ~baseline:(baseline_of flink_runs) f;
              Printf.sprintf "%.2fx" pf ])
      configs
  in
  Emma_util.Tbl.print
    ~title:"Figure 4 — relative speedup over the un-optimized baseline"
    ~header:[ "config"; "Spark (sim)"; "Spark (paper)"; "Flink (sim)"; "Flink (paper)" ]
    rows;
  Printf.printf "absolute baseline: Spark %s, Flink %s\n"
    (time_cell (baseline_of spark_runs))
    (time_cell (baseline_of flink_runs))
