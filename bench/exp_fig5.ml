(* Figure 5 (Appendix B): effect of fold-group fusion on the scalability
   of a group aggregation (min) under three key distributions.

   Setup per the paper: 5 M tuples (~125 MB) per execution unit, DOP from
   80 to 640 on 40 nodes, keys uniform / Gaussian / Pareto (~35% of tuples
   on one key). Expected shape:
   - with GF both engines are flat-ish and unaffected by skew;
   - without GF, Gaussian costs slightly more; on Pareto, Spark fails
     (no external group spilling) while Flink spills and finishes slowly;
   - Spark grows superlinearly with DOP, Flink roughly linearly. *)

open Exp_common
module W = Emma_workloads
module Pr = Emma_programs

let dops = [ 80; 160; 320; 640 ]
let physical_per_unit = 400
let scale = 5_000_000.0 /. float_of_int physical_per_unit
let n_keys = 1000

let dists =
  [ ("uniform", W.Keyed_gen.uniform ~n_keys);
    ("gaussian", W.Keyed_gen.gaussian ~n_keys);
    ("pareto", W.Keyed_gen.pareto ~n_keys) ]

let prog = Pr.Group_min.program Pr.Group_min.default_params

let run_one ~profile ~gf ~dop rows =
  let opts =
    if gf then Pipeline.default_opts
    else Pipeline.with_ ~fuse:false ~cache:false ~partition:false ()
  in
  run_config ~rt:(rt ~profile ~dop ~data_scale:scale ()) ~opts prog
    [ ("dataset", rows) ]

let run () =
  section "E5 / Figure 5: fold-group fusion vs DOP and key skew";
  List.iter
    (fun (dist_name, dist) ->
      let rows_for_dop =
        List.map
          (fun dop ->
            let cfg =
              W.Keyed_gen.paper_config ~n_tuples:(physical_per_unit * dop) dist
            in
            (dop, W.Keyed_gen.tuples ~seed:(17 + dop) cfg))
          dops
      in
      let table_rows =
        List.map
          (fun (dop, rows) ->
            [ string_of_int dop;
              time_cell (run_one ~profile:spark ~gf:true ~dop rows);
              time_cell (run_one ~profile:spark ~gf:false ~dop rows);
              time_cell (run_one ~profile:flink ~gf:true ~dop rows);
              time_cell (run_one ~profile:flink ~gf:false ~dop rows) ])
          rows_for_dop
      in
      Emma_util.Tbl.print
        ~title:(Printf.sprintf "Figure 5 (%s) — group-min runtime vs DOP" dist_name)
        ~header:[ "DOP"; "Spark GF"; "Spark"; "Flink GF"; "Flink" ]
        table_rows)
    dists;
  print_endline
    "paper shape: GF flat and skew-insensitive; without GF Gaussian is slightly\n\
     slower and Pareto makes Spark fail while Flink spills; Spark superlinear in DOP."
