(* E6: per-rewrite ablation. DESIGN.md calls out four separable design
   choices (exists-unnesting, fold-group fusion, caching, partition
   pulling); this experiment removes one at a time from the full pipeline
   and reports the simulated-runtime regression on the program where the
   paper says the optimization matters. *)

open Exp_common
module W = Emma_workloads
module Pr = Emma_programs

let spam_setup () =
  let cfg = W.Email_gen.paper_config ~physical_emails:1_000 in
  let tables =
    [ ("emails_raw", W.Email_gen.emails ~seed:4 cfg);
      ("blacklist_raw", W.Email_gen.blacklist ~seed:4 cfg) ]
  in
  (Pr.Spam_workflow.program Pr.Spam_workflow.default_params, tables, 1000.0)

let q1_setup () =
  let cfg = W.Tpch_gen.of_scale_factor 0.002 in
  ( Pr.Tpch_q1.program Pr.Tpch_q1.default_params,
    [ ("lineitem", W.Tpch_gen.lineitem ~seed:4 cfg) ],
    50_000.0 )

let ablations =
  [ ("full", Pipeline.default_opts);
    ("- unnesting", Pipeline.with_ ~unnest:false ());
    ("- group fusion", Pipeline.with_ ~fuse:false ());
    ("- caching", Pipeline.with_ ~cache:false ());
    ("- partition pulling", Pipeline.with_ ~partition:false ());
    ("- inlining", Pipeline.with_ ~inline:false ()) ]

let table_for name (prog, tables, data_scale) =
  let rows =
    List.map
      (fun (label, opts) ->
        let s = run_config ~rt:(rt ~profile:spark ~data_scale ()) ~opts prog tables in
        let f = run_config ~rt:(rt ~profile:flink ~data_scale ()) ~opts prog tables in
        [ label; time_cell s; time_cell f ])
      ablations
  in
  Emma_util.Tbl.print
    ~title:(Printf.sprintf "Ablation — %s" name)
    ~header:[ "pipeline"; "Spark"; "Flink" ]
    rows

let run () =
  section "E6: optimization ablations";
  table_for "data-parallel workflow (1 M emails logical)" (spam_setup ());
  table_for "TPC-H Q1 (logical SF 100)" (q1_setup ())
