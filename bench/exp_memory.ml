(* E11 (extension): memory governance under shrinking budgets.

   Three sweeps over Emma_engine.Memman:

   - spill sweep: TPC-H Q3 (a three-way join whose repartitioned build
     sides dominate the memory peak) with spilling enabled, at budgets
     from unbounded down to a fraction of the peak. Results must be
     bit-identical at every budget — shrinking the budget may only add
     spill I/O, so sim time is monotone non-decreasing as the budget
     shrinks (the --report JSON carries the sweep in this order).

   - degradation without spilling: the same query OOM-kills overflowing
     attempts and retries at halved parallelism while the node can still
     hold the state, and fails cleanly once it cannot — the graceful
     end of the degradation ladder.

   - cache + admission pressure: iterative k-means with the cached
     points bag squeezed out of the cache budget and job admissions
     gated to one in flight: recomputes and queue-wait climb, results
     stay identical. *)

open Exp_common
module W = Emma_workloads
module Pr = Emma_programs

let q3_tables () =
  let cfg = W.Tpch_gen.of_scale_factor 0.001 in
  ( [ ("lineitem", W.Tpch_gen.lineitem ~seed:3 cfg);
      ("orders", W.Tpch_gen.orders ~seed:3 cfg);
      ("customer", W.Tpch_gen.customer ~seed:3 cfg) ],
    1.0e5 )

let kmeans_tables () =
  let cfg = W.Points_gen.default ~n_points:4_000 ~k:3 in
  ( [ ("points", W.Points_gen.points ~seed:2 cfg);
      ("centroids0", W.Points_gen.initial_centroids ~seed:2 cfg) ],
    1.0e5 )

let opts = Pipeline.default_opts

let budget_label = function
  | None -> "unbounded"
  | Some b when b < 1e6 -> Printf.sprintf "%.0f KB" (b /. 1e3)
  | Some b -> Printf.sprintf "%.0f MB" (b /. 1e6)

let spill_sweep prog tables data_scale =
  let baseline = ref None in
  List.map
    (fun mem_budget ->
      match
        run_config ?mem_budget ~spill:true ~rt:(rt ~profile:spark ~data_scale ())
          ~opts prog tables
      with
      | Time (s, m) ->
          let base_s =
            match !baseline with
            | Some b -> b
            | None ->
                baseline := Some s;
                s
          in
          [ budget_label mem_budget;
            Printf.sprintf "%.0f s" s;
            Printf.sprintf "+%.1f%%" ((s -. base_s) /. base_s *. 100.0);
            Printf.sprintf "%.1f MB" (m.Metrics.mem_peak_bytes /. 1e6);
            string_of_int m.Metrics.mem_spills;
            Printf.sprintf "%.2f GB" (m.Metrics.mem_spill_bytes /. 1e9) ]
      | Fail reason -> [ budget_label mem_budget; "FAIL: " ^ reason ]
      | Timeout _ -> [ budget_label mem_budget; "timeout" ])
    [ None; Some 128e6; Some 64e6; Some 32e6; Some 8e6; Some 1e6 ]

let oom_sweep prog tables data_scale =
  List.map
    (fun mem_budget ->
      match
        run_config ?mem_budget ~spill:false ~rt:(rt ~profile:spark ~data_scale ())
          ~opts prog tables
      with
      | Time (s, m) ->
          [ budget_label mem_budget;
            Printf.sprintf "%.0f s" s;
            string_of_int m.Metrics.oom_kills;
            "finished" ]
      | Fail reason -> [ budget_label mem_budget; "-"; "-"; "FAIL: " ^ reason ]
      | Timeout _ -> [ budget_label mem_budget; "-"; "-"; "timeout" ])
    [ None; Some 64e6; Some 32e6; Some 4e6 ]

let cache_sweep prog tables data_scale table_scales =
  List.map
    (fun (mem_budget, max_inflight) ->
      match
        run_config ?mem_budget ~spill:true ?max_inflight
          ~rt:(rt ~profile:spark ~data_scale ~table_scales ())
          ~opts prog tables
      with
      | Time (s, m) ->
          [ budget_label mem_budget;
            (match max_inflight with None -> "unbounded" | Some k -> string_of_int k);
            Printf.sprintf "%.0f s" s;
            string_of_int m.Metrics.recomputes;
            string_of_int m.Metrics.cache_evictions;
            string_of_int m.Metrics.jobs_queued;
            Printf.sprintf "%.1f s" m.Metrics.queue_wait_s ]
      | Fail reason -> [ budget_label mem_budget; "-"; "FAIL: " ^ reason ]
      | Timeout _ -> [ budget_label mem_budget; "-"; "timeout" ])
    [ (None, None); (Some 64e6, None); (Some 1e5, None); (Some 1e5, Some 1) ]

let run () =
  section "E11: memory governance — budgets, spill, OOM, eviction (extension)";
  let q3_tbls, q3_scale = q3_tables () in
  let q3 = Pr.Tpch_q3.program Pr.Tpch_q3.default_params in
  Emma_util.Tbl.print
    ~title:
      "spill-to-disk vs per-slot budget (TPC-H Q3, spilling on; results identical \
       at every budget)"
    ~header:[ "budget"; "sim time"; "overhead"; "mem peak"; "spills"; "spill bytes" ]
    (spill_sweep q3 q3_tbls q3_scale);
  Emma_util.Tbl.print
    ~title:
      "degradation without spilling (TPC-H Q3: OOM-kill + retry at halved \
       parallelism, clean failure past node memory)"
    ~header:[ "budget"; "sim time"; "oom kills"; "outcome" ]
    (oom_sweep q3 q3_tbls q3_scale);
  let km_tbls, km_scale = kmeans_tables () in
  let km_prog =
    Pr.Kmeans.program { Pr.Kmeans.default_params with epsilon = 1e-9; max_iters = 10 }
  in
  Emma_util.Tbl.print
    ~title:"cache + admission pressure (k-means, 10 iterations, spilling on)"
    ~header:
      [ "budget"; "max inflight"; "sim time"; "recomputes"; "evictions";
        "jobs queued"; "queue wait" ]
    (cache_sweep km_prog km_tbls km_scale [ ("centroids0", 1.0) ]);
  print_endline
    "(the budget is per slot in logical bytes; for any budget above the\n\
    \ documented minimum the results are bit-identical to the unbounded run —\n\
    \ only sim time and the memory counters move)"
