(* E15 (extension): durable journal + crash recovery — an exhaustive
   crash-point injection sweep over a serve trace, plus recovery time vs
   journal length with and without snapshots.

   One journaled serve run is the reference. Then, for EVERY record
   boundary of its journal, a crashed journal is forged (truncate at the
   boundary; additionally a torn mid-frame cut and a flipped payload
   byte per record) and recovered in-process with [Serve.recover_sim].
   The acceptance bar, pinned in BENCH_recovery.json:

   - every crash point recovers to a replay fingerprint bit-identical
     to the uninterrupted run, with every submission id accounted
     exactly once (nothing lost, nothing duplicated);
   - a corrupted newest snapshot is skipped in favour of the older one
     (and of full replay when both are gone) — same fingerprint;
   - recovery from a snapshot is strictly faster than full-journal
     replay at the largest trace length (min over repeats). *)

module Json = Emma_util.Json
module Wal = Emma_util.Wal
module Prng = Emma_util.Prng
module Serve = Emma_serve.Serve
module Arrival = Emma_serve.Arrival
module Session = Emma.Session
module Config = Emma.Config
module W = Emma_workloads
module Pr = Emma_programs

let n_events =
  try int_of_string (Sys.getenv "EMMA_RECOVERY_EVENTS") with Not_found -> 60

let timing_events =
  try int_of_string (Sys.getenv "EMMA_RECOVERY_TIMING_EVENTS")
  with Not_found -> 240

let seed = 23
let rate = 4.0
let alpha = 1.1
let snapshot_every = 8
let repeats = 5
let tenant_names = [ "acme"; "beta"; "gamma" ]
let query_names = [ "q1"; "wordcount"; "group-min"; "q3" ]

let docs ~seed n =
  let g = Prng.create seed in
  let vocab =
    [| "emma"; "bag"; "fold"; "join"; "group"; "plan"; "wal"; "crash";
       "replay"; "snap" |]
  in
  Pr.Wordcount.docs_of_strings
    (List.init n (fun _ ->
         String.concat " "
           (List.init
              (Prng.int_in g 4 12)
              (fun _ -> vocab.(Prng.int_in g 0 (Array.length vocab - 1))))))

let workload () =
  let cfg = W.Tpch_gen.of_scale_factor 0.002 in
  let lineitem = W.Tpch_gen.lineitem ~seed:3 cfg in
  let orders = W.Tpch_gen.orders ~seed:3 cfg in
  let customer = W.Tpch_gen.customer ~seed:3 cfg in
  let dataset =
    W.Keyed_gen.tuples ~seed:5
      (W.Keyed_gen.paper_config ~n_tuples:2_000 (W.Keyed_gen.uniform ~n_keys:64))
  in
  [ ("q1", (Pr.Tpch_q1.program Pr.Tpch_q1.default_params, [ ("lineitem", lineitem) ]));
    ( "wordcount",
      (Pr.Wordcount.program Pr.Wordcount.default_params, [ ("docs", docs ~seed:7 400) ]) );
    ( "group-min",
      (Pr.Group_min.program Pr.Group_min.default_params, [ ("dataset", dataset) ]) );
    ( "q3",
      ( Pr.Tpch_q3.program Pr.Tpch_q3.default_params,
        [ ("customer", customer); ("orders", orders); ("lineitem", lineitem) ] ) ) ]

let tenants =
  [ Serve.tenant ~weight:2 "acme"; Serve.tenant "beta"; Serve.tenant "gamma" ]

let rt () = Exp_common.rt ~profile:Exp_common.spark ()

(* deadline + bounded queues so the trace exercises sheds, cancellations
   and the degradation ladder — all of it must journal and recover *)
let config () =
  Config.default
  |> Config.with_plan_cache (Some 64)
  |> Config.with_deadline_s (Some 30.0)
  |> Config.with_max_queue (Some 4)

let events n =
  Arrival.generate ~seed ~rate ~alpha ~tenants:tenant_names
    ~queries:query_names ~n

(* ---- journal forgery: raw frames, same format as Emma_util.Wal ---- *)

let put_u32 v =
  let b = Bytes.create 4 in
  Bytes.set_uint8 b 0 ((v lsr 24) land 0xFF);
  Bytes.set_uint8 b 1 ((v lsr 16) land 0xFF);
  Bytes.set_uint8 b 2 ((v lsr 8) land 0xFF);
  Bytes.set_uint8 b 3 (v land 0xFF);
  Bytes.to_string b

let frame payload =
  put_u32 (String.length payload)
  ^ put_u32 (Emma_util.Crc32.string payload)
  ^ payload

let rec rm_rf path =
  if Sys.file_exists path then
    if Sys.is_directory path then begin
      Array.iter (fun f -> rm_rf (Filename.concat path f)) (Sys.readdir path);
      Sys.rmdir path
    end
    else Sys.remove path

let fresh_dir =
  let counter = ref 0 in
  fun () ->
    incr counter;
    let d =
      Filename.concat
        (Filename.get_temp_dir_name ())
        (Printf.sprintf "emma-recovery-%d-%d" (Unix.getpid ()) !counter)
    in
    rm_rf d;
    Sys.mkdir d 0o755;
    d

(* a crashed journal: records[0..k-1] as one segment, plus an optional
   raw tail (torn frame bytes) and optional extra files (snapshots) *)
let forge_dir ?(tail = "") ?(copy_snaps_from = None) records k =
  let dir = fresh_dir () in
  let oc = open_out_bin (Filename.concat dir "journal-0000000000.seg") in
  for i = 0 to k - 1 do
    output_string oc (frame records.(i))
  done;
  output_string oc tail;
  close_out oc;
  (match copy_snaps_from with
  | Some src ->
      Array.iter
        (fun f ->
          if Filename.check_suffix f ".snap" then
            let contents =
              In_channel.with_open_bin (Filename.concat src f)
                In_channel.input_all
            in
            Out_channel.with_open_bin (Filename.concat dir f) (fun oc ->
                Out_channel.output_string oc contents))
        (Sys.readdir src)
  | None -> ());
  dir

let with_session f =
  let session = Session.create ~config:(config ()) (rt ()) in
  Fun.protect ~finally:(fun () -> Session.close session) (fun () -> f session)

let run_journaled ?snapshot_every ~dir wl evs =
  with_session (fun session ->
      let wal = Wal.create ~dir () in
      let durability = { Serve.du_wal = wal; du_snapshot_every = snapshot_every } in
      Fun.protect
        ~finally:(fun () -> Wal.close wal)
        (fun () -> Serve.run_sim ~durability session tenants wl evs))

(* timed: Wal.create (tail-truncation scan) + recover_sim is the
   recovery path an operator waits on *)
let recover ?snapshot_every ~dir wl evs =
  with_session (fun session ->
      let t0 = Unix.gettimeofday () in
      let wal = Wal.create ~dir () in
      let durability = { Serve.du_wal = wal; du_snapshot_every = snapshot_every } in
      let c =
        Fun.protect
          ~finally:(fun () -> Wal.close wal)
          (fun () -> Serve.recover_sim ~durability session tenants wl evs)
      in
      (c, Unix.gettimeofday () -. t0))

(* every submission id accounted exactly once across results + sheds *)
let reconciled n (c : Serve.counters) =
  let ids =
    List.map (fun r -> r.Serve.qr_sub) c.Serve.sv_results
    @ List.map (fun s -> s.Serve.sh_sub) c.Serve.sv_shed
  in
  List.sort compare ids = List.init n (fun i -> i)

let run () =
  Exp_common.section
    "E15: crash recovery — exhaustive crash-point sweep + recovery time \
     (extension)";
  Printf.printf
    "(%d arrivals for the sweep, %d for timing; rate %.1f/s, Zipf %.1f; \
     snapshot cadence %d outcomes; times are host milliseconds, min of %d)\n"
    n_events timing_events rate alpha snapshot_every repeats;
  let wl = workload () in
  let evs = events n_events in

  (* reference: one uninterrupted journaled run *)
  let ref_dir = fresh_dir () in
  let reference = run_journaled ~dir:ref_dir wl evs in
  let ref_fp = Serve.fingerprint reference in
  if not (reconciled n_events reference) then
    failwith "recovery: reference run lost a submission";
  (* journaling is free of behaviour: a plain run fingerprints the same *)
  let plain = with_session (fun s -> Serve.run_sim s tenants wl evs) in
  if Serve.fingerprint plain <> ref_fp then
    failwith "recovery: journaling changed the replay fingerprint";
  let records = Wal.records (Wal.create ~dir:ref_dir ()) in
  let n_records = Array.length records in
  Printf.printf "journal: %d records for %d arrivals\n%!" n_records n_events;

  let check_case label dir =
    let c, _ = recover ~dir wl evs in
    if Serve.fingerprint c <> ref_fp then
      failwith (Printf.sprintf "recovery: %s diverged from the reference" label);
    if not (reconciled n_events c) then
      failwith
        (Printf.sprintf "recovery: %s lost or duplicated a submission" label);
    rm_rf dir
  in

  (* 1. kill at every record boundary (0 = empty journal .. n = complete) *)
  for k = 0 to n_records do
    check_case
      (Printf.sprintf "kill at boundary %d" k)
      (forge_dir records k)
  done;
  Printf.printf "swept %d kill boundaries: all bit-identical\n%!" (n_records + 1);

  (* 2. torn write: first half of record k's frame only *)
  for k = 0 to n_records - 1 do
    let f = frame records.(k) in
    let tail = String.sub f 0 (max 1 (String.length f / 2)) in
    check_case (Printf.sprintf "torn write at record %d" k) (forge_dir ~tail records k)
  done;
  Printf.printf "swept %d torn-write points: all bit-identical\n%!" n_records;

  (* 3. flipped payload byte in record k: CRC rejects k and everything
     after it is dropped with it *)
  for k = 0 to n_records - 1 do
    let f = Bytes.of_string (frame records.(k)) in
    Bytes.set_uint8 f 8 (Bytes.get_uint8 f 8 lxor 0xFF);
    check_case
      (Printf.sprintf "flipped byte in record %d" k)
      (forge_dir ~tail:(Bytes.to_string f) records k)
  done;
  Printf.printf "swept %d flipped-byte corruptions: all bit-identical\n%!"
    n_records;

  (* 4. snapshot fallback: corrupt the newest snapshot — recovery must
     fall back to the older one (or full replay), same fingerprint *)
  let snap_ref_dir = fresh_dir () in
  let snap_reference =
    run_journaled ~snapshot_every ~dir:snap_ref_dir wl evs
  in
  if Serve.fingerprint snap_reference <> ref_fp then
    failwith "recovery: snapshotting changed the replay fingerprint";
  let snaps =
    Sys.readdir snap_ref_dir |> Array.to_list
    |> List.filter (fun f -> Filename.check_suffix f ".snap")
    |> List.sort compare
  in
  if List.length snaps < 2 then
    failwith "recovery: expected two retained snapshots";
  let newest = Filename.concat snap_ref_dir (List.nth snaps (List.length snaps - 1)) in
  let corrupt path =
    let b =
      Bytes.of_string (In_channel.with_open_bin path In_channel.input_all)
    in
    Bytes.set_uint8 b (Bytes.length b / 2) (Bytes.get_uint8 b (Bytes.length b / 2) lxor 0xFF);
    Out_channel.with_open_bin path (fun oc ->
        Out_channel.output_bytes oc b)
  in
  corrupt newest;
  let c, _ = recover ~snapshot_every ~dir:snap_ref_dir wl evs in
  if Serve.fingerprint c <> ref_fp then
    failwith "recovery: snapshot-corruption fallback diverged";
  Printf.printf "corrupt newest snapshot: fell back, bit-identical\n%!";

  (* 5. recovery time vs journal length, with and without snapshots.
     The crash lands after the final append (the process died before
     reporting), so recovery is a pure state rebuild with no live
     re-execution — isolating exactly what snapshots buy: full replay
     re-simulates and re-verifies the whole journal, the snapshot path
     restores state and replays only the tail past the newest snapshot.
     Both paths always recover to the reference fingerprint; min wall
     time over repeats. *)
  let time_rebuild n_evs =
    let t_evs = events n_evs in
    let full_dir = fresh_dir () in
    let full_c = run_journaled ~dir:full_dir wl t_evs in
    let fp = Serve.fingerprint full_c in
    let snap_dir = fresh_dir () in
    let snap_c = run_journaled ~snapshot_every ~dir:snap_dir wl t_evs in
    if Serve.fingerprint snap_c <> fp then
      failwith "recovery: timing runs disagree before the crash";
    let n_rec = Array.length (Wal.records (Wal.create ~dir:full_dir ())) in
    (* a complete journal gains no appends on recovery, so the dirs can
       be recovered repeatedly without re-forging *)
    let time ?snapshot_every dir =
      let best = ref infinity in
      for _ = 1 to repeats do
        let c, dt = recover ?snapshot_every ~dir wl t_evs in
        if Serve.fingerprint c <> fp then
          failwith "recovery: timed recovery diverged";
        if dt < !best then best := dt
      done;
      !best
    in
    let t_full = time full_dir in
    let t_snap = time ~snapshot_every snap_dir in
    rm_rf full_dir;
    rm_rf snap_dir;
    (n_rec, t_full, t_snap)
  in
  let lengths = [ timing_events / 4; timing_events / 2; timing_events ] in
  let measurements = List.map (fun n -> (n, time_rebuild n)) lengths in
  Emma_util.Tbl.print
    ~title:
      (Printf.sprintf
         "state-rebuild time vs journal length (snapshot cadence %d \
          outcomes, min of %d)"
         snapshot_every repeats)
    ~header:
      [ "arrivals"; "journal records"; "full replay"; "from snapshot"; "speedup" ]
    (List.map
       (fun (n, (n_rec, t_full, t_snap)) ->
         [ string_of_int n;
           string_of_int n_rec;
           Printf.sprintf "%.2f ms" (t_full *. 1e3);
           Printf.sprintf "%.2f ms" (t_snap *. 1e3);
           Printf.sprintf "%.2fx" (t_full /. t_snap) ])
       measurements);
  let _, (n_rec_max, t_full, t_snap) =
    List.nth measurements (List.length measurements - 1)
  in
  let passed = t_snap < t_full in
  Printf.printf
    "acceptance: %d/%d/%d crash points bit-identical; snapshot rebuild \
     %.2f ms %s full replay %.2f ms at %d records — %s\n"
    (n_records + 1) n_records n_records (t_snap *. 1e3)
    (if passed then "<" else ">=")
    (t_full *. 1e3) n_rec_max
    (if passed then "ok" else "FAIL");
  let json =
    Json.Obj
      [ ("experiment", Json.Str "recovery");
        ( "bench",
          Json.Str
            "E15 durable journal: exhaustive crash-point sweep + snapshot \
             recovery time" );
        ("events", Json.Int n_events);
        ("seed", Json.Int seed);
        ("journal_records", Json.Int n_records);
        ("kill_boundaries_swept", Json.Int (n_records + 1));
        ("torn_writes_swept", Json.Int n_records);
        ("flipped_bytes_swept", Json.Int n_records);
        ("all_crash_points_bit_identical", Json.Bool true);
        ("all_submissions_reconciled_by_id", Json.Bool true);
        ("snapshot_corruption_fell_back", Json.Bool true);
        ("snapshot_every_outcomes", Json.Int snapshot_every);
        ( "rebuild_time_vs_journal_length",
          Json.List
            (List.map
               (fun (n, (n_rec, t_full, t_snap)) ->
                 Json.Obj
                   [ ("arrivals", Json.Int n);
                     ("journal_records", Json.Int n_rec);
                     ("full_replay_ms", Json.Float (t_full *. 1e3));
                     ("from_snapshot_ms", Json.Float (t_snap *. 1e3)) ])
               measurements) );
        ("recovery_full_replay_ms", Json.Float (t_full *. 1e3));
        ("recovery_from_snapshot_ms", Json.Float (t_snap *. 1e3));
        ("target_met", Json.Bool passed) ]
  in
  Wal.write_atomic "BENCH_recovery.json" (Json.to_string json ^ "\n");
  Printf.printf "measurement written to BENCH_recovery.json\n";
  rm_rf ref_dir;
  rm_rf snap_ref_dir;
  if not passed then
    failwith "recovery: snapshot recovery was not faster than full replay"
