(* §5.2, TPC-H Q1 and Q4 at logical scale factor 100.

   The paper reports that without the logical optimizations neither query
   finishes within one hour, and with them:
     Q1: 466 s (Spark) / 240 s (Flink)
     Q4: 577 s (Spark) / 569 s (Flink). *)

open Exp_common
module W = Emma_workloads
module Pr = Emma_programs

let tables () =
  let physical_sf = 0.001 in
  let cfg = W.Tpch_gen.of_scale_factor physical_sf in
  let t =
    [ ("lineitem", W.Tpch_gen.lineitem ~seed:3 cfg);
      ("orders", W.Tpch_gen.orders ~seed:3 cfg) ]
  in
  (t, 100.0 /. physical_sf)

let run () =
  section "E4 / §5.2: TPC-H Q1 and Q4 (logical SF 100)";
  let tbls, data_scale = tables () in
  let q1 = Pr.Tpch_q1.program Pr.Tpch_q1.default_params in
  let q4 = Pr.Tpch_q4.program Pr.Tpch_q4.default_params in
  let with_opts = Pipeline.default_opts in
  let without = Pipeline.no_opts in
  let cell profile opts prog = time_cell (run_config ~rt:(rt ~profile ~data_scale ()) ~opts prog tbls) in
  Emma_util.Tbl.print ~title:"TPC-H — simulated runtimes (timeout 1 h)"
    ~header:[ "query"; "Spark (sim)"; "Spark (paper)"; "Flink (sim)"; "Flink (paper)" ]
    [ [ "Q1, logical opts"; cell spark with_opts q1; "466 s"; cell flink with_opts q1; "240 s" ];
      [ "Q1, no opts"; cell spark without q1; "> 1 h"; cell flink without q1; "> 1 h" ];
      [ "Q4, logical opts"; cell spark with_opts q4; "577 s"; cell flink with_opts q4; "569 s" ];
      [ "Q4, no opts"; cell spark without q4; "> 1 h"; cell flink without q4; "> 1 h" ] ]
