(* Shared helpers for the experiment harness. Every experiment prints a
   paper-shaped table: simulated runtimes (or speedups) next to the values
   the paper reports, plus FAIL/timeout rows where the paper reports them. *)

module Value = Emma_value.Value
module Cluster = Emma_engine.Cluster
module Metrics = Emma_engine.Metrics
module Pipeline = Emma_compiler.Pipeline

module Json = Emma_util.Json

let timeout_1h = 3600.0

type run = Time of float * Metrics.t | Fail of string | Timeout of float

(* Machine-readable run reports (bench --report DIR): every [run_config]
   call is recorded here; bench/main.ml writes one JSON file per
   experiment via [write_report]. *)
let runs : (string * Metrics.t) list ref = ref []
let reset_runs () = runs := []

let note_outcome outcome =
  let entry =
    match outcome with
    | Emma.Finished { metrics; _ } -> ("finished", metrics)
    | Emma.Failed { metrics; _ } -> ("failed", metrics)
    | Emma.Timed_out { metrics; _ } -> ("timeout", metrics)
    | Emma.Cancelled { metrics; _ } -> ("cancelled", metrics)
  in
  runs := entry :: !runs

let write_report ~dir name =
  if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
  let report =
    Json.Obj
      [ ("experiment", Json.Str name);
        ( "runs",
          Json.List
            (List.mapi
               (fun i (status, m) ->
                 Json.Obj
                   [ ("i", Json.Int i);
                     ("status", Json.Str status);
                     ("metrics", Metrics.to_json m) ])
               (List.rev !runs)) ) ]
  in
  let path = Filename.concat dir (name ^ ".json") in
  (* temp-then-rename: a crash mid-write never leaves a torn report *)
  Emma_util.Wal.write_atomic path (Json.to_string report ^ "\n");
  Printf.eprintf "report written to %s\n" path

let run_config ?config ?faults ?checkpoint_every ?mem_budget ?spill ?max_inflight
    ~rt ~opts prog tables =
  let algo = Emma.parallelize ~opts prog in
  let outcome =
    Emma.run_on ?config ?faults ?checkpoint_every ?mem_budget ?spill ?max_inflight rt
      algo ~tables
  in
  note_outcome outcome;
  match outcome with
  | Emma.Finished { metrics; _ } -> Time (metrics.Metrics.sim_time_s, metrics)
  | Emma.Failed { reason; _ } -> Fail reason
  | Emma.Timed_out { at_s; _ } -> Timeout at_s
  | Emma.Cancelled { at_s; reason; _ } ->
      Fail (Printf.sprintf "cancelled at %.1f s: %s" at_s reason)

let time_cell = function
  | Time (s, _) -> Printf.sprintf "%.0f s" s
  | Fail _ -> "FAIL (OOM)"
  | Timeout _ -> Printf.sprintf "> %.0f s (timeout)" timeout_1h

let speedup_cell ~baseline run =
  match (baseline, run) with
  | Time (b, _), Time (r, _) -> Printf.sprintf "%.2fx" (b /. r)
  | _, Fail _ -> "FAIL"
  | _, Timeout _ -> "timeout"
  | (Fail _ | Timeout _), Time _ -> "inf (baseline failed)"

let rt ~profile ?(dop = 320) ?(data_scale = 1.0) ?(table_scales = []) ?(timeout_s = timeout_1h)
    () =
  Emma.
    { cluster = Cluster.paper_cluster ~dop ~data_scale ~table_scales ();
      profile;
      timeout_s = Some timeout_s }

let spark = Cluster.spark_like
let flink = Cluster.flink_like

let section title =
  Printf.printf "\n%s\n%s\n" title (String.make (String.length title) '=')
