(* E7: real wall-clock micro-benchmarks of the compiler pipeline itself,
   measured with Bechamel — one Test.make per pipeline phase/program,
   estimated by OLS against the monotonic clock. *)

module Pr = Emma_programs
module Pipeline = Emma_compiler.Pipeline
module Fusion = Emma_compiler.Fusion
module Normalize = Emma_comp.Normalize
module Sinline = Emma_compiler.Sinline

let kmeans = Pr.Kmeans.(program default_params)
let q1 = Pr.Tpch_q1.(program default_params)
let q4 = Pr.Tpch_q4.(program default_params)
let spam = Pr.Spam_workflow.(program default_params)
let pagerank = Pr.Pagerank.(program (default_params ~n_pages:1000))

let tests =
  let open Bechamel in
  let normalized_kmeans = Normalize.program (Sinline.program kmeans) in
  [ Test.make ~name:"inline+normalize k-means"
      (Staged.stage (fun () -> Normalize.program (Sinline.program kmeans)));
    Test.make ~name:"fold-group fusion k-means"
      (Staged.stage (fun () -> Fusion.program normalized_kmeans));
    Test.make ~name:"full compile k-means" (Staged.stage (fun () -> Pipeline.compile kmeans));
    Test.make ~name:"full compile TPC-H Q1" (Staged.stage (fun () -> Pipeline.compile q1));
    Test.make ~name:"full compile TPC-H Q4" (Staged.stage (fun () -> Pipeline.compile q4));
    Test.make ~name:"full compile spam workflow"
      (Staged.stage (fun () -> Pipeline.compile spam));
    Test.make ~name:"full compile PageRank"
      (Staged.stage (fun () -> Pipeline.compile pagerank)) ]

let run () =
  Exp_common.section "E7: compiler pipeline micro-benchmarks (wall clock)";
  let open Bechamel in
  let grouped = Test.make_grouped ~name:"compiler" tests in
  let cfg = Benchmark.cfg ~limit:500 ~quota:(Time.second 0.3) () in
  let results = Benchmark.all cfg [ Toolkit.Instance.monotonic_clock ] grouped in
  let ols = Analyze.ols ~r_square:false ~bootstrap:0 ~predictors:[| Measure.run |] in
  let analyzed = Analyze.all ols Toolkit.Instance.monotonic_clock results in
  let rows =
    Hashtbl.fold
      (fun name result acc ->
        let cell =
          match Analyze.OLS.estimates result with
          | Some (est :: _) ->
              if est > 1e6 then Printf.sprintf "%.2f ms" (est /. 1e6)
              else Printf.sprintf "%.0f µs" (est /. 1e3)
          | _ -> "n/a"
        in
        [ name; cell ] :: acc)
      analyzed []
    |> List.sort compare
  in
  Emma_util.Tbl.print ~title:"compiler phases — time per run (OLS estimate)"
    ~header:[ "phase"; "time" ] rows
