(* §5.2, iterative algorithms: k-means (1.6 B points, 48 GB) and PageRank
   (Twitter follower graph, ~2 B edges, 23 GB), 10 iterations each.

   The paper reports:
   - without fold-group fusion, neither algorithm finishes within 1 h;
   - with fusion, caching speeds Spark up 1.52x (k-means) and 3.13x
     (PageRank) — PageRank more, because its state stays partitioned by
     vertex id in memory;
   - Flink shows no significant caching gain: it has no in-memory cache,
     so Emma caches on HDFS and the I/O eats the benefit. *)

open Exp_common
module W = Emma_workloads
module Pr = Emma_programs

let kmeans_tables () =
  let n_physical = 20_000 in
  let cfg = W.Points_gen.default ~n_points:n_physical ~k:3 in
  let tables =
    [ ("points", W.Points_gen.points ~seed:2 cfg);
      ("centroids0", W.Points_gen.initial_centroids ~seed:2 cfg) ]
  in
  (* 1.6 B logical points *)
  let scale = 1.6e9 /. float_of_int n_physical in
  (tables, scale)

let pagerank_tables () =
  let n_vertices = 4_000 in
  (* heavy-tailed follower counts: the hub's incoming-message group is what
     breaks the unfused groupBy, as on the real Twitter graph *)
  let cfg = { (W.Graph_gen.default ~n_vertices) with avg_degree = 10; alpha = 1.25 } in
  let vertices = W.Graph_gen.adjacency ~seed:2 cfg in
  let edges = W.Graph_gen.edge_count vertices in
  (* ~2 B logical edges *)
  let scale = 2.0e9 /. float_of_int (max 1 edges) in
  ([ ("vertices", vertices) ], scale, n_vertices)

let opt_rows ?(table_scales = []) name prog tables data_scale =
  let cases =
    [ ("no GF", Pipeline.with_ ~fuse:false ~cache:false ~partition:false ());
      ("GF", Pipeline.with_ ~fuse:true ~cache:false ~partition:false ());
      ("GF+cache", Pipeline.with_ ~fuse:true ~cache:true ~partition:true ()) ]
  in
  let run profile (label, opts) =
    (label, run_config ~rt:(rt ~profile ~data_scale ~table_scales ()) ~opts prog tables)
  in
  let spark_runs = List.map (run spark) cases in
  let flink_runs = List.map (run flink) cases in
  let cache_speedup runs =
    match (List.assoc "GF" runs, List.assoc "GF+cache" runs) with
    | Time (a, _), Time (b, _) -> Printf.sprintf "%.2fx" (a /. b)
    | _ -> "n/a"
  in
  let row label =
    [ name ^ " / " ^ label;
      time_cell (List.assoc label spark_runs);
      time_cell (List.assoc label flink_runs) ]
  in
  ( [ row "no GF"; row "GF"; row "GF+cache" ],
    (cache_speedup spark_runs, cache_speedup flink_runs) )

let run () =
  section "E3 / §5.2: iterative algorithms (k-means, PageRank)";
  let km_tables, km_scale = kmeans_tables () in
  let km_prog =
    Pr.Kmeans.program { Pr.Kmeans.default_params with epsilon = 1e-9; max_iters = 10 }
  in
  let km_rows, (km_s, km_f) =
    opt_rows ~table_scales:[ ("centroids0", 1.0) ] "k-means" km_prog km_tables km_scale
  in
  let pr_tables, pr_scale, n_pages = pagerank_tables () in
  let pr_prog = Pr.Pagerank.program (Pr.Pagerank.default_params ~n_pages) in
  let pr_rows, (pr_s, pr_f) = opt_rows "PageRank" pr_prog pr_tables pr_scale in
  Emma_util.Tbl.print ~title:"Iterative algorithms — simulated runtimes (timeout 1 h)"
    ~header:[ "algorithm / config"; "Spark"; "Flink" ]
    (km_rows @ pr_rows);
  Emma_util.Tbl.print ~title:"Caching speedup (GF vs GF+cache)"
    ~header:[ "algorithm"; "Spark (sim)"; "Spark (paper)"; "Flink (sim)"; "Flink (paper)" ]
    [ [ "k-means"; km_s; "1.52x"; km_f; "~1x (HDFS cache)" ];
      [ "PageRank"; pr_s; "3.13x"; pr_f; "~1x (HDFS cache)" ] ]
