(* E8: join-strategy crossover. The paper's §1 motivates implicit
   parallelism with exactly this failure mode: "committing to either of
   these strategies [repartition or broadcast] ... may cause performance
   degradations when the relative size of the two inputs changes", and
   §4.2.1/§4.3 defer the choice to the just-in-time dataflow compiler.

   This experiment sweeps the blacklist's logical size against a fixed
   100 GB email corpus and compares three engines: broadcast-forced,
   repartition-forced, and Emma's JIT choice. The JIT row must track the
   minimum of the other two, with the crossover where shipping the
   blacklist to every node starts costing more than repartitioning the
   emails. *)

open Exp_common
module W = Emma_workloads
module Pr = Emma_programs
module S = Emma_lang.Surface

(* one shot of the workflow core: non-spam emails from blacklisted servers *)
let query =
  S.program
    ~ret:
      S.(
        count
          (for_
             [ gen "e" (read "emails");
               when_
                 (exists
                    (lam "b" (fun b -> field b "ip" = field (var "e") "ip"))
                    (read "blacklist")) ]
             ~yield:(var "e")))
    []

let physical_emails = 1_000
let data_scale = 1000.0 (* 1 M emails logical *)

let run_one ~strategy tables =
  let cluster = { (Cluster.paper_cluster ~data_scale ()) with join_strategy = strategy } in
  let rt = Emma.{ cluster; profile = Exp_common.spark; timeout_s = Some Exp_common.timeout_1h } in
  run_config ~rt ~opts:Pipeline.default_opts query tables

let run () =
  section "E8: broadcast vs repartition join crossover (extension)";
  let email_cfg =
    W.Email_gen.paper_config ~physical_emails
  in
  let emails = W.Email_gen.emails ~seed:8 email_cfg in
  let rows =
    List.map
      (fun n_blacklist ->
        let cfg = { email_cfg with n_blacklist; server_info_bytes = 20_000 } in
        let tables =
          [ ("emails", emails); ("blacklist", W.Email_gen.blacklist ~seed:8 cfg) ]
        in
        let logical_mb =
          float_of_int (n_blacklist * 20_000) *. data_scale /. 1e6
        in
        let broadcast = run_one ~strategy:Cluster.Force_broadcast tables in
        let repartition = run_one ~strategy:Cluster.Force_repartition tables in
        let jit = run_one ~strategy:Cluster.Jit tables in
        let best =
          match (broadcast, repartition) with
          | Time (b, _), Time (r, _) -> Float.min b r
          | _ -> nan
        in
        let jit_ok =
          match jit with Time (j, _) -> j <= best *. 1.02 | _ -> false
        in
        [ Printf.sprintf "%.0f MB" logical_mb;
          time_cell broadcast;
          time_cell repartition;
          time_cell jit;
          (if jit_ok then "= best" else "suboptimal") ])
      [ 1; 4; 16; 64; 256; 1024 ]
  in
  Emma_util.Tbl.print
    ~title:"semi-join strategy vs blacklist size (1 M emails fixed; Spark profile)"
    ~header:[ "blacklist"; "broadcast-forced"; "repartition-forced"; "Emma JIT"; "JIT check" ]
    rows;
  print_endline
    "expected shape: broadcast wins while the blacklist is small, repartition wins\n\
     once it is large; Emma's just-in-time choice tracks the minimum (paper §1/§4.3)."
