(* E9 (extension): multicore scale-up. Unlike every other experiment —
   which reports the COST MODEL's simulated seconds — this one measures
   REAL wall-clock time of the engine's multicore execution backend: the
   same embarrassingly parallel, map-heavy pipeline is run with the
   partition work scheduled on 1, 2, 4 and 8 OCaml domains.

   Two invariants are checked while measuring:
   - the input table, generated in parallel from split PRNG streams, is
     identical whatever the pool size;
   - every cost-model metric (sim_time_s, shuffle_bytes, stages, even
     udf_invocations) is bit-identical across domain counts — parallelism
     changes only wall_time_s. *)

module Value = Emma_value.Value
module Cluster = Emma_engine.Cluster
module Metrics = Emma_engine.Metrics
module Pool = Emma_util.Pool
module Prng = Emma_util.Prng
module S = Emma_lang.Surface

let n_rows = 40_000
let n_chunks = 32
let domain_counts = [ 1; 2; 4; 8 ]

(* Parallel workload generation: one split PRNG stream per chunk, chunks
   materialized on the pool. The output is a pure function of the seed —
   independent of the pool size driving the generation. *)
let gen_rows ~pool ~seed =
  let streams = Prng.split_n (Prng.create seed) n_chunks in
  let per_chunk = n_rows / n_chunks in
  let chunk ci =
    let g = streams.(ci) in
    List.init per_chunk (fun _ ->
        Value.record
          [ ("a", Value.Int (Prng.int_in g (-1000) 1000));
            ("b", Value.Int (Prng.int_in g 0 63)) ])
  in
  List.concat (Array.to_list (Pool.parmap pool chunk (Array.init n_chunks Fun.id)))

(* A map-heavy pipeline: a chain of elementwise transforms ending in a
   data-parallel fold. No shuffles, so partitions never synchronize except
   at stage barriers — the shape that should scale with the domain count. *)
let program =
  let xform e =
    S.map
      (S.lam "x" (fun x ->
           S.record
             [ ( "a",
                 S.(
                   ((field x "a" * int_ 31) + (field x "b" * field x "b") + int_ 7)
                   mod int_ 10007) );
               ("b", S.((field x "b" + int_ 1) mod int_ 64)) ]))
      e
  in
  let rec chain n e = if n = 0 then e else chain (n - 1) (xform e) in
  (* chain length 4: long enough that per-row work dominates scheduling,
     short enough that fold-fusion's UDF inlining stays small *)
  S.program
    ~ret:S.(sum (map (lam "x" (fun x -> field x "a")) (var "out")))
    [ S.s_let "out"
        (S.with_filter
           (S.lam "x" (fun x -> S.(field x "a" mod int_ 97 <> int_ 0)))
           (chain 4 (S.read "nums"))) ]

(* one physical node with many slots: partitions, no simulated network *)
let cluster = { (Cluster.laptop ()) with Cluster.nodes = 1; slots_per_node = 32 }

let cost_fields (m : Metrics.t) =
  ( m.Metrics.sim_time_s,
    m.Metrics.shuffle_bytes,
    m.Metrics.broadcast_bytes,
    m.Metrics.stages,
    m.Metrics.jobs,
    m.Metrics.udf_invocations )

let run () =
  Exp_common.section
    "E9: multicore scale-up — real wall clock on OCaml domains (extension)";
  Printf.printf "(map-heavy pipeline over %d rows, %d partitions; host has %d core(s))\n"
    n_rows cluster.Cluster.slots_per_node
    (Domain.recommended_domain_count ());
  let algo = Emma.parallelize program in
  let reference_rows = ref None in
  let results =
    List.map
      (fun domains ->
        let pool = Pool.create ~domains in
        Fun.protect ~finally:(fun () -> Pool.shutdown pool) @@ fun () ->
        let rows = gen_rows ~pool ~seed:42 in
        (match !reference_rows with
        | None -> reference_rows := Some rows
        | Some r ->
            if not (List.for_all2 Value.equal r rows) then
              failwith "scaleup: parallel generation diverged from reference");
        let rt =
          Emma.{ cluster; profile = Cluster.spark_like; timeout_s = None }
        in
        let r = Emma.run_on_exn ~pool rt algo ~tables:[ ("nums", rows) ] in
        (domains, r.Emma.value, r.Emma.metrics))
      domain_counts
  in
  (* cost-model invariance across domain counts *)
  let _, v1, m1 = List.hd results in
  List.iter
    (fun (d, v, m) ->
      if not (Value.equal v1 v) then
        failwith (Printf.sprintf "scaleup: result differs at %d domains" d);
      if cost_fields m1 <> cost_fields m then
        failwith (Printf.sprintf "scaleup: cost metrics differ at %d domains" d))
    results;
  let base_wall =
    match results with (_, _, m) :: _ -> m.Metrics.wall_time_s | [] -> 1.0
  in
  Emma_util.Tbl.print
    ~title:"wall-clock scale-up (cost model bit-identical at every row)"
    ~header:[ "domains"; "wall clock"; "speedup"; "sim time"; "par tasks" ]
    (List.map
       (fun (d, _, m) ->
         [ string_of_int d;
           Printf.sprintf "%.3f s" m.Metrics.wall_time_s;
           Printf.sprintf "%.2fx" (base_wall /. m.Metrics.wall_time_s);
           Printf.sprintf "%.1f s" m.Metrics.sim_time_s;
           string_of_int m.Metrics.par_tasks ])
       results);
  print_endline
    "(speedups are real parallelism: expect ~min(domains, cores) on a multicore host,\n\
    \ flat on a single-core container)"
