(* E9 (extension): multicore scale-up. Unlike every other experiment —
   which reports the COST MODEL's simulated seconds — this one measures
   REAL wall-clock time of the engine's multicore execution backend: the
   same embarrassingly parallel, map-heavy pipeline is run with the
   partition work scheduled on 1, 2, 4 and 8 OCaml domains.

   Two invariants are checked while measuring:
   - the input table, generated in parallel from split PRNG streams, is
     identical whatever the pool size;
   - every cost-model metric (sim_time_s, shuffle_bytes, stages, even
     udf_invocations) is bit-identical across domain counts AND chunk
     policies — parallelism changes only wall_time_s and the par_*
     counters.

   Two skew sections give the work-stealing scheduler something to win
   (tune with --skew ALPHA, the Zipf exponent, and --chunk auto-or-N):
   - a Zipf-keyed groupBy pipeline whose shuffle produces partitions as
     skewed as the key distribution, run at every domain count;
   - a pool-level microbench of the same Zipf-skewed batch on the legacy
     single-queue pool (one task per partition) vs the work-stealing pool
     with chunked tasks, pinned in BENCH_steal.json: the stealing pool's
     8-domain speedup must not fall below the legacy pool's. *)

module Value = Emma_value.Value
module Cluster = Emma_engine.Cluster
module Metrics = Emma_engine.Metrics
module Engine = Emma_engine.Exec
module Pool = Emma_util.Pool
module Pool_legacy = Emma_util.Pool_legacy
module Prng = Emma_util.Prng
module Json = Emma_util.Json
module S = Emma_lang.Surface

let n_rows = 40_000
let n_chunks = 32
let domain_counts = [ 1; 2; 4; 8 ]

(* --skew: Zipf exponent of the skewed sections (higher = more skewed). *)
let skew_exponent = ref 1.2

(* --chunk: the engine chunk policy the wall-clock runs use. *)
let chunk_spec = ref Engine.Chunk_auto

(* Parallel workload generation: one split PRNG stream per chunk, chunks
   materialized on the pool. The output is a pure function of the seed —
   independent of the pool size driving the generation. *)
let gen_rows ~pool ~seed =
  let streams = Prng.split_n (Prng.create seed) n_chunks in
  let per_chunk = n_rows / n_chunks in
  let chunk ci =
    let g = streams.(ci) in
    List.init per_chunk (fun _ ->
        Value.record
          [ ("a", Value.Int (Prng.int_in g (-1000) 1000));
            ("b", Value.Int (Prng.int_in g 0 63)) ])
  in
  List.concat (Array.to_list (Pool.parmap pool chunk (Array.init n_chunks Fun.id)))

(* A chain of elementwise transforms shared by both pipelines. *)
let xform e =
  S.map
    (S.lam "x" (fun x ->
         S.record
           [ ( "a",
               S.(
                 ((field x "a" * int_ 31) + (field x "b" * field x "b") + int_ 7)
                 mod int_ 10007) );
             ("b", S.((field x "b" + int_ 1) mod int_ 64)) ]))
    e

let rec chain n e = if n = 0 then e else chain (n - 1) (xform e)

(* A map-heavy pipeline: a chain of elementwise transforms ending in a
   data-parallel fold. No shuffles, so partitions never synchronize except
   at stage barriers — the shape that should scale with the domain count. *)
let program =
  (* chain length 4: long enough that per-row work dominates scheduling,
     short enough that fold-fusion's UDF inlining stays small *)
  S.program
    ~ret:S.(sum (map (lam "x" (fun x -> field x "a")) (var "out")))
    [ S.s_let "out"
        (S.with_filter
           (S.lam "x" (fun x -> S.(field x "a" mod int_ 97 <> int_ 0)))
           (chain 4 (S.read "nums"))) ]

(* one physical node with many slots: partitions, no simulated network *)
let cluster = { (Cluster.laptop ()) with Cluster.nodes = 1; slots_per_node = 32 }

let cost_fields (m : Metrics.t) =
  ( m.Metrics.sim_time_s,
    m.Metrics.shuffle_bytes,
    m.Metrics.broadcast_bytes,
    m.Metrics.stages,
    m.Metrics.jobs,
    m.Metrics.udf_invocations )

(* ------------------------------------------------------------------ *)
(* Zipf skew                                                            *)
(* ------------------------------------------------------------------ *)

(* Inverse-CDF Zipf(alpha) over [0, nkeys): key k has weight (k+1)^-alpha. *)
let zipf_cdf ~alpha ~nkeys =
  let w = Array.init nkeys (fun k -> (float_of_int (k + 1)) ** -.alpha) in
  let total = Array.fold_left ( +. ) 0.0 w in
  let acc = ref 0.0 in
  Array.map
    (fun x ->
      acc := !acc +. (x /. total);
      !acc)
    w

let zipf_draw cdf u =
  let n = Array.length cdf in
  let rec go k = if k >= n - 1 || u <= cdf.(k) then k else go (k + 1) in
  go 0

let n_skew_rows = 20_000
let n_skew_keys = 48

let gen_skew_rows ~seed ~alpha =
  let cdf = zipf_cdf ~alpha ~nkeys:n_skew_keys in
  let g = Prng.create seed in
  List.init n_skew_rows (fun _ ->
      Value.record
        [ ("k", Value.Int (zipf_draw cdf (Prng.unit_float g)));
          ("v", Value.Int (Prng.int_in g (-1000) 1000)) ])

(* Zipf-keyed groupBy pipeline: the groupBy shuffle routes every row of a
   key to one partition, so downstream partitions are as skewed as the key
   distribution; the flatMap + map chain over them is exactly the
   homomorphic work adaptive chunking splits for the stealing pool. *)
let skew_program =
  S.program
    ~ret:S.(sum (map (lam "x" (fun x -> field x "a")) (var "out")))
    [ S.s_let "out"
        (chain 3
           (S.map
              (S.lam "x" (fun x ->
                   S.record
                     [ ("a", S.field x "v"); ("b", S.(field x "k" mod int_ 64)) ]))
              (S.flat_map
                 (S.lam "g" (fun g -> S.field g "values"))
                 (S.group_by (S.lam "x" (fun x -> S.field x "k")) (S.read "skewed"))))) ]

(* ------------------------------------------------------------------ *)
(* Pool-level steal microbench                                          *)
(* ------------------------------------------------------------------ *)

(* Zipf-proportional partition sizes over [total] rows (each >= 1). *)
let zipf_sizes ~alpha ~total ~parts =
  let w = Array.init parts (fun k -> (float_of_int (k + 1)) ** -.alpha) in
  let wt = Array.fold_left ( +. ) 0.0 w in
  let sizes =
    Array.map (fun x -> max 1 (int_of_float (x /. wt *. float_of_int total))) w
  in
  sizes

(* Deterministic per-row busy work; xor-combined checksums are layout
   independent, so both pools and every chunking must agree. *)
let spin_row r =
  let x = ref (r + 1) in
  for _ = 1 to 60 do
    x := ((!x * 1103515245) + 12345) land 0x3FFFFFFF
  done;
  !x

let run_rows (lo, rows) =
  let acc = ref 0 in
  for r = lo to lo + rows - 1 do
    acc := !acc lxor spin_row r
  done;
  !acc

let steal_reps = 3
let steal_parts = 32
let steal_rows = 60_000
let steal_grain = 512  (* rows per chunk task on the stealing pool *)

(* (offset, rows) task arrays: one per partition for the legacy pool's
   granularity, one per <= grain-row chunk for the stealing pool's. *)
let steal_tasks ~alpha =
  let sizes = zipf_sizes ~alpha ~total:steal_rows ~parts:steal_parts in
  let off = ref 0 in
  let whole =
    Array.map
      (fun sz ->
        let o = !off in
        off := o + sz;
        (o, sz))
      sizes
  in
  let chunked = ref [] in
  Array.iter
    (fun (o, sz) ->
      let rec go o sz =
        if sz > 0 then begin
          let c = min steal_grain sz in
          chunked := (o, c) :: !chunked;
          go (o + c) (sz - c)
        end
      in
      go o sz)
    whole;
  (whole, Array.of_list (List.rev !chunked))

let time_best f =
  let best = ref infinity in
  let result = ref 0 in
  for _ = 1 to steal_reps do
    let t0 = Unix.gettimeofday () in
    let r = f () in
    best := Float.min !best (Unix.gettimeofday () -. t0);
    result := r
  done;
  (!result, !best)

let xor_all = Array.fold_left ( lxor ) 0

let bench_steal ~alpha =
  let whole, chunked = steal_tasks ~alpha in
  let legacy_wall d =
    let p = Pool_legacy.create ~domains:d in
    Fun.protect ~finally:(fun () -> Pool_legacy.shutdown p) @@ fun () ->
    time_best (fun () -> xor_all (Pool_legacy.parmap p run_rows whole))
  in
  let ws_wall d =
    let p = Pool.create ~domains:d () in
    Fun.protect ~finally:(fun () -> Pool.shutdown p) @@ fun () ->
    time_best (fun () -> xor_all (Pool.parmap p run_rows chunked))
  in
  let lg1, lw1 = legacy_wall 1 in
  let lg8, lw8 = legacy_wall 8 in
  let ws1, ww1 = ws_wall 1 in
  let ws8, ww8 = ws_wall 8 in
  if not (lg1 = lg8 && lg8 = ws1 && ws1 = ws8) then
    failwith "steal bench: checksum differs across pools/chunkings";
  (lw1, lw8, ww1, ww8)

(* ------------------------------------------------------------------ *)

let run () =
  let alpha = !skew_exponent in
  Exp_common.section
    "E9: multicore scale-up — real wall clock on OCaml domains (extension)";
  Printf.printf "(map-heavy pipeline over %d rows, %d partitions; host has %d core(s))\n"
    n_rows cluster.Cluster.slots_per_node
    (Domain.recommended_domain_count ());
  let algo = Emma.parallelize program in
  let reference_rows = ref None in
  let run_at ?(chunk = !chunk_spec) ~pool ~tables algo =
    let rt = Emma.{ cluster; profile = Cluster.spark_like; timeout_s = None } in
    let outcome = Emma.run_on ~pool ~chunk rt algo ~tables in
    Exp_common.note_outcome outcome;
    match outcome with
    | Emma.Finished r -> (r.Emma.value, r.Emma.metrics)
    | Emma.Failed { reason; _ } -> failwith ("scaleup: engine failure: " ^ reason)
    | Emma.Timed_out _ -> failwith "scaleup: engine timeout"
    | Emma.Cancelled _ -> failwith "scaleup: query cancelled"
  in
  let results =
    List.map
      (fun domains ->
        let pool = Pool.create ~domains () in
        Fun.protect ~finally:(fun () -> Pool.shutdown pool) @@ fun () ->
        let rows = gen_rows ~pool ~seed:42 in
        (match !reference_rows with
        | None -> reference_rows := Some rows
        | Some r ->
            if not (List.for_all2 Value.equal r rows) then
              failwith "scaleup: parallel generation diverged from reference");
        let v, m = run_at ~pool ~tables:[ ("nums", rows) ] algo in
        (domains, v, m))
      domain_counts
  in
  (* cost-model invariance across domain counts *)
  let _, v1, m1 = List.hd results in
  List.iter
    (fun (d, v, m) ->
      if not (Value.equal v1 v) then
        failwith (Printf.sprintf "scaleup: result differs at %d domains" d);
      if cost_fields m1 <> cost_fields m then
        failwith (Printf.sprintf "scaleup: cost metrics differ at %d domains" d))
    results;
  let base_wall =
    match results with (_, _, m) :: _ -> m.Metrics.wall_time_s | [] -> 1.0
  in
  Emma_util.Tbl.print
    ~title:"wall-clock scale-up (cost model bit-identical at every row)"
    ~header:
      [ "domains"; "wall clock"; "speedup"; "sim time"; "par tasks"; "chunks"; "steals" ]
    (List.map
       (fun (d, _, m) ->
         [ string_of_int d;
           Printf.sprintf "%.3f s" m.Metrics.wall_time_s;
           Printf.sprintf "%.2fx" (base_wall /. m.Metrics.wall_time_s);
           Printf.sprintf "%.1f s" m.Metrics.sim_time_s;
           string_of_int m.Metrics.par_tasks;
           string_of_int m.Metrics.par_chunks;
           string_of_int m.Metrics.par_steals ])
       results);
  print_endline
    "(speedups are real parallelism: expect ~min(domains, cores) on a multicore host,\n\
    \ flat on a single-core container)";

  (* -------- Zipf-skewed engine pipeline -------- *)
  Exp_common.section
    (Printf.sprintf
       "E9b: Zipf-skewed groupBy pipeline (alpha = %.2f) — stealing vs skew" alpha);
  let skew_algo = Emma.parallelize skew_program in
  let skew_tables = [ ("skewed", gen_skew_rows ~seed:7 ~alpha) ] in
  let skew_results =
    List.map
      (fun domains ->
        let pool = Pool.create ~domains () in
        Fun.protect ~finally:(fun () -> Pool.shutdown pool) @@ fun () ->
        let v, m = run_at ~pool ~tables:skew_tables skew_algo in
        (domains, v, m))
      domain_counts
  in
  let _, sv1, sm1 = List.hd skew_results in
  List.iter
    (fun (d, v, m) ->
      if not (Value.equal sv1 v) then
        failwith (Printf.sprintf "skew: result differs at %d domains" d);
      if cost_fields sm1 <> cost_fields m then
        failwith (Printf.sprintf "skew: cost metrics differ at %d domains" d))
    skew_results;
  (* ... and across chunk policies at the top domain count *)
  (let pool = Pool.create ~domains:8 () in
   Fun.protect ~finally:(fun () -> Pool.shutdown pool) @@ fun () ->
   List.iter
     (fun chunk ->
       let v, m = run_at ~chunk ~pool ~tables:skew_tables skew_algo in
       if not (Value.equal sv1 v) then failwith "skew: result differs across --chunk";
       if cost_fields sm1 <> cost_fields m then
         failwith "skew: cost metrics differ across --chunk")
     [ Engine.Chunk_fixed 1; Engine.Chunk_fixed 64; Engine.Chunk_auto ]);
  let skew_base =
    match skew_results with (_, _, m) :: _ -> m.Metrics.wall_time_s | [] -> 1.0
  in
  Emma_util.Tbl.print
    ~title:
      "skewed scale-up (cost model bit-identical across domains AND chunk policies)"
    ~header:[ "domains"; "wall clock"; "speedup"; "par tasks"; "chunks"; "steals"; "misses" ]
    (List.map
       (fun (d, _, m) ->
         [ string_of_int d;
           Printf.sprintf "%.3f s" m.Metrics.wall_time_s;
           Printf.sprintf "%.2fx" (skew_base /. m.Metrics.wall_time_s);
           string_of_int m.Metrics.par_tasks;
           string_of_int m.Metrics.par_chunks;
           string_of_int m.Metrics.par_steals;
           string_of_int m.Metrics.par_steal_misses ])
       skew_results);

  (* -------- pool-level legacy-vs-stealing pin -------- *)
  Exp_common.section
    (Printf.sprintf
       "E9c: work stealing vs the legacy pool (Zipf alpha = %.2f, %d rows, %d \
        partitions, %d-row chunks)"
       alpha steal_rows steal_parts steal_grain);
  let lw1, lw8, ww1, ww8 = bench_steal ~alpha in
  let legacy_speedup = lw1 /. lw8 in
  let ws_speedup = ww1 /. ww8 in
  Emma_util.Tbl.print ~title:"skewed batch, 1 -> 8 domains (best of 3)"
    ~header:[ "pool"; "wall 1d"; "wall 8d"; "speedup" ]
    [ [ "legacy (1 task/partition)";
        Printf.sprintf "%.3f s" lw1;
        Printf.sprintf "%.3f s" lw8;
        Printf.sprintf "%.2fx" legacy_speedup ];
      [ "stealing (chunked)";
        Printf.sprintf "%.3f s" ww1;
        Printf.sprintf "%.3f s" ww8;
        Printf.sprintf "%.2fx" ws_speedup ] ];
  (* Pin: the stealing pool's skewed speedup must be at least the legacy
     pool's. The slack absorbs timer noise on hosts where both are flat
     (e.g. a single-core container, where every speedup is ~1.0x). *)
  let slack = 0.85 in
  let passed = ws_speedup >= legacy_speedup *. slack in
  Printf.printf "acceptance: stealing %.2fx %s legacy %.2fx (x %.2f slack) — %s\n"
    ws_speedup
    (if passed then ">=" else "<")
    legacy_speedup slack
    (if passed then "ok" else "FAIL");
  let sm8 =
    match List.rev skew_results with (_, _, m) :: _ -> m | [] -> sm1
  in
  let json =
    Json.Obj
      [ ("experiment", Json.Str "steal");
        ("bench", Json.Str "E9c Zipf-skewed batch, legacy vs work-stealing pool");
        ("zipf_alpha", Json.Float alpha);
        ("rows", Json.Int steal_rows);
        ("partitions", Json.Int steal_parts);
        ("chunk_rows", Json.Int steal_grain);
        ("domains", Json.Int 8);
        ("legacy_wall_1d_s", Json.Float lw1);
        ("legacy_wall_8d_s", Json.Float lw8);
        ("ws_wall_1d_s", Json.Float ww1);
        ("ws_wall_8d_s", Json.Float ww8);
        ("legacy_speedup", Json.Float legacy_speedup);
        ("ws_speedup", Json.Float ws_speedup);
        ("slack", Json.Float slack);
        ("target_met", Json.Bool passed);
        ("engine_skew_par_tasks", Json.Int sm8.Metrics.par_tasks);
        ("engine_skew_par_chunks", Json.Int sm8.Metrics.par_chunks);
        ("engine_skew_par_steals", Json.Int sm8.Metrics.par_steals);
        ("cost_model_bit_identical", Json.Bool true) ]
  in
  let path = "BENCH_steal.json" in
  let oc = open_out path in
  output_string oc (Json.to_string json);
  output_char oc '\n';
  close_out oc;
  Printf.printf "measurement written to %s\n" path;
  if not passed then failwith "steal bench: stealing pool lost to the legacy pool"
