(* E12 (extension): staged UDF compilation — real wall clock, like E9.
   Every other experiment reports cost-model seconds; this one measures
   what `--udf-mode compiled` actually buys on the host clock.

   The workload is an arithmetic-heavy chain of elementwise maps whose
   bodies interleave per-tuple arithmetic with subcomputations over
   driver-captured coefficients — the shape where the tree-walking
   interpreter pays a tag dispatch plus environment lookups per node per
   tuple and re-computes the capture-only subterms every time, while the
   staged closures pay one closure call per dynamic node and fold the
   capture-only subterms to literals at compile time. Both UDF modes run
   over the same rows; the contract checked while measuring:

   - results are Value-identical between modes;
   - every cost-model metric (sim_time_s, shuffle/broadcast bytes,
     stages, jobs, even udf_invocations) is bit-identical between modes
     AND across 1/2/4 domains — only wall_time_s may move;
   - compiled wall clock beats interpreted by at least [target_speedup]
     (the acceptance bar pinned in BENCH_udf_compile.json).

   The measured runs use a 1-domain pool so the wall clocks compare
   per-tuple execution, not scheduling noise; each mode takes the best
   of [reps] runs. *)

module Value = Emma_value.Value
module Cluster = Emma_engine.Cluster
module Metrics = Emma_engine.Metrics
module Engine = Emma_engine.Exec
module Pool = Emma_util.Pool
module Prng = Emma_util.Prng
module Json = Emma_util.Json
module S = Emma_lang.Surface

let n_rows = 12_000
let chain_len = try int_of_string (Sys.getenv "EMMA_UDF_CHAIN") with Not_found -> 6
let reps = try int_of_string (Sys.getenv "EMMA_UDF_REPS") with Not_found -> 3
let target_speedup = 5.0

let gen_rows ~seed =
  let g = Prng.create seed in
  List.init n_rows (fun _ ->
      Value.record
        [ ("a", Value.Int (Prng.int_in g (-1000) 1000));
          ("b", Value.Int (Prng.int_in g 1 63)) ])

(* Driver-bound coefficients: [Sinline] never inlines into lambda bodies,
   so inside the UDFs these stay broadcast variables. The interpreter
   resolves and re-computes with them per tuple; the staged compiler
   resolves them ONCE at udf-compile time, and every subterm built only
   from captures and literals constant-folds away entirely — the
   partial-evaluation payoff the staging pass exists for. *)
let coeffs = [ ("c1", 17); ("c2", 29); ("c3", 41); ("c4", 53) ]

(* One elementwise transform: per-tuple arithmetic interleaved with
   capture-only subcomputations (k1/k2/k3). Normalization substitutes the
   lets, so every [k] reference expands to its whole subtree — work the
   interpreter repeats per tuple per occurrence and the staged compiler
   folds to a literal. All divisors are non-zero constants. *)
let xform_body x =
  let v = S.var in
  S.let_ "k1" S.(((v "c1" * v "c1") + (v "c2" * int_ 19) + int_ 7) mod int_ 97)
  @@ fun k1 ->
  S.let_ "k2" S.(((v "c3" * v "c4") + (k1 * v "c2") + int_ 23) mod int_ 89)
  @@ fun k2 ->
  S.let_ "k3" S.(((k1 * k2) + (v "c1" * int_ 13) + min2 k1 k2) mod int_ 83)
  @@ fun k3 ->
  S.let_ "a" (S.field x "a") @@ fun a ->
  S.let_ "b" (S.field x "b") @@ fun b ->
  S.let_ "t1" S.((a * k1) + (b * k2) + k3) @@ fun t1 ->
  S.let_ "t2" S.(((t1 * v "c2") + (a * b) + (t1 mod int_ 97)) mod int_ 10007)
  @@ fun t2 ->
  S.let_ "t3" S.(((t2 * k2) + (t1 mod int_ 89) + (b * k3)) mod int_ 7919)
  @@ fun t3 ->
  S.record
    [ ("a", S.(((t3 * k1) + (t2 mod int_ 101) + a) mod int_ 10007));
      ("b", S.(((b + (t3 mod int_ 61)) mod int_ 62) + int_ 1)) ]

let xform e = S.map (S.lam "x" xform_body) e

let program =
  let rec chain n e = if n = 0 then e else chain (n - 1) (xform e) in
  S.program
    ~ret:
      S.(
        sum (map (lam "x" (fun x -> field x "a")) (var "out"))
        + count (var "out"))
    (List.map (fun (n, c) -> S.s_let n (S.int_ c)) coeffs
    @ [ S.s_let "out"
          (S.with_filter
             (S.lam "x" (fun x -> S.(field x "a" mod int_ 89 <> int_ 0)))
             (chain chain_len (S.read "nums"))) ])

(* one physical node, many slots: partitioned work, no simulated network *)
let cluster = { (Cluster.laptop ()) with Cluster.nodes = 1; slots_per_node = 16 }

let cost_fields (m : Metrics.t) =
  ( m.Metrics.sim_time_s,
    m.Metrics.shuffle_bytes,
    m.Metrics.broadcast_bytes,
    m.Metrics.stages,
    m.Metrics.jobs,
    m.Metrics.udf_invocations )

let run_mode ~pool ~udf_mode algo tables =
  let rt = Emma.{ cluster; profile = Cluster.spark_like; timeout_s = None } in
  let r = Emma.run_on_exn ~udf_mode ~pool rt algo ~tables in
  (r.Emma.value, r.Emma.metrics)

let mode_name = function Engine.Interp -> "interp" | Engine.Compiled -> "compiled"

let debug_raw rows =
  (* raw per-tuple throughput of the two evaluators, engine excluded *)
  let module Eval = Emma_lang.Eval in
  let module Compile = Emma_lang.Compile in
  let ctx = Eval.create_ctx () in
  Eval.register_table ctx "nums" rows;
  let rec chain n e = if n = 0 then e else chain (n - 1) (xform e) in
  let chained = chain chain_len (S.read "nums") in
  let e =
    S.sum
      (S.map
         (S.lam "x" (fun x -> S.field x "a"))
         (S.with_filter
            (S.lam "x" (fun x -> S.(field x "a" mod int_ 89 <> int_ 0)))
            chained))
  in
  let time f =
    let t0 = Sys.time () in
    let v = f () in
    (Sys.time () -. t0, v)
  in
  let base =
    List.fold_left
      (fun acc (n, c) -> Eval.bind n (Eval.V (Value.Int c)) acc)
      Eval.empty_env coeffs
  in
  let ti, vi = time (fun () -> Eval.eval_value ctx base e) in
  let tc, vc = time (fun () -> Compile.value ctx base e) in
  Printf.printf "debug-raw: interp=%.3fs compiled=%.3fs ratio=%.2fx same=%b\n%!" ti
    tc (ti /. tc) (Value.equal vi vc);
  let module Pipeline = Emma_compiler.Pipeline in
  Printf.printf "debug-size: source=%d normalized=%d\n%!"
    (Pipeline.program_size program)
    (Pipeline.program_size (Pipeline.normalized program))

let run () =
  if Sys.getenv_opt "EMMA_UDF_DEBUG" <> None then debug_raw (gen_rows ~seed:42);
  Exp_common.section
    "E12: staged UDF compilation — real wall clock, interp vs compiled (extension)";
  Printf.printf
    "(%d-map chain of arithmetic UDFs over %d rows, driver-bound coefficients \
     partially evaluated at compile time; acceptance bar %.0fx)\n"
    chain_len n_rows target_speedup;
  let rows = gen_rows ~seed:42 in
  let tables = [ ("nums", rows) ] in
  let algo = Emma.parallelize program in
  (* contract: value + cost-model bit-identity across modes and domains *)
  let reference = ref None in
  List.iter
    (fun domains ->
      let pool = Pool.create ~domains () in
      Fun.protect ~finally:(fun () -> Pool.shutdown pool) @@ fun () ->
      List.iter
        (fun udf_mode ->
          let v, m = run_mode ~pool ~udf_mode algo tables in
          if Sys.getenv_opt "EMMA_UDF_DEBUG" <> None then
            Printf.printf "debug: %s %dd: udfs=%d jobs=%d stages=%d wall=%.3f\n%!"
              (mode_name udf_mode) domains m.Metrics.udf_invocations
              m.Metrics.jobs m.Metrics.stages m.Metrics.wall_time_s;
          match !reference with
          | None -> reference := Some (v, cost_fields m)
          | Some (v0, c0) ->
              if not (Value.equal v0 v) then
                failwith
                  (Printf.sprintf "udf: result differs (%s, %d domains)"
                     (mode_name udf_mode) domains);
              if c0 <> cost_fields m then
                failwith
                  (Printf.sprintf "udf: cost metrics differ (%s, %d domains)"
                     (mode_name udf_mode) domains))
        [ Engine.Interp; Engine.Compiled ])
    [ 1; 2; 4 ];
  (* wall clock: best of [reps] per mode on a 1-domain pool *)
  let best_wall udf_mode =
    let pool = Pool.create ~domains:1 () in
    Fun.protect ~finally:(fun () -> Pool.shutdown pool) @@ fun () ->
    List.fold_left
      (fun best _ ->
        let _, m = run_mode ~pool ~udf_mode algo tables in
        min best m.Metrics.wall_time_s)
      infinity
      (List.init reps Fun.id)
  in
  let interp_wall = best_wall Engine.Interp in
  let compiled_wall = best_wall Engine.Compiled in
  let speedup = interp_wall /. compiled_wall in
  Emma_util.Tbl.print
    ~title:"per-tuple UDF execution (cost model bit-identical at every row)"
    ~header:[ "udf mode"; "wall clock"; "speedup" ]
    [ [ "interp"; Printf.sprintf "%.3f s" interp_wall; "1.00x" ];
      [ "compiled";
        Printf.sprintf "%.3f s" compiled_wall;
        Printf.sprintf "%.2fx" speedup ] ];
  let passed = speedup >= target_speedup in
  Printf.printf "acceptance: %.2fx %s %.0fx target — %s\n" speedup
    (if passed then ">=" else "<")
    target_speedup
    (if passed then "ok" else "FAIL");
  (* pin the measurement for the acceptance gate *)
  let json =
    Json.Obj
      [ ("experiment", Json.Str "udf_compile");
        ("bench", Json.Str "E12 map-chain, deep arithmetic UDF bodies");
        ("rows", Json.Int n_rows);
        ("chain_len", Json.Int chain_len);
        ("reps", Json.Int reps);
        ("interp_wall_s", Json.Float interp_wall);
        ("compiled_wall_s", Json.Float compiled_wall);
        ("speedup", Json.Float speedup);
        ("target_speedup", Json.Float target_speedup);
        ("target_met", Json.Bool passed);
        ("cost_model_bit_identical", Json.Bool true);
        ("domains_checked", Json.List [ Json.Int 1; Json.Int 2; Json.Int 4 ]) ]
  in
  let path = "BENCH_udf_compile.json" in
  let oc = open_out path in
  output_string oc (Json.to_string json);
  output_char oc '\n';
  close_out oc;
  Printf.printf "measurement written to %s\n" path;
  if not passed then failwith "udf: compiled mode missed the wall-clock target"
