(* E10 (extension): chaos & recovery overhead. Two sweeps over the
   deterministic fault-injection subsystem (Emma_engine.Faults):

   - fault-rate sweep: the same two programs (shuffle-heavy word count,
     iterative k-means) run under seeded fault plans of increasing
     intensity. Results must be bit-identical to the fault-free run at
     every intensity — injected failures may only cost simulated time,
     reported here as recovery overhead next to the recovery counters.

   - checkpoint-interval sweep: k-means under a loop-loss-heavy plan with
     checkpointing off / every 5 / 2 / 1 iterations. Denser checkpoints
     pay more checkpoint I/O but replay fewer lost iterations on each
     restore.

   Every run is recorded in the --report DIR machine-readable report, so
   the new recovery counters land in faults.json. *)

open Exp_common
module W = Emma_workloads
module Pr = Emma_programs
module Faults = Emma_engine.Faults

let wordcount_tables () =
  (* deterministic synthetic corpus: enough distinct words to make the
     aggBy shuffle non-trivial *)
  let words =
    [| "implicit"; "parallel"; "emma"; "bag"; "fold"; "join"; "group"; "scale";
       "lineage"; "shuffle"; "barrier"; "retry" |]
  in
  let g = Emma_util.Prng.create 7 in
  let texts =
    List.init 200 (fun _ ->
        String.concat " "
          (List.init 12 (fun _ ->
               words.(Emma_util.Prng.int_in g 0 (Array.length words - 1)))))
  in
  ([ ("docs", Pr.Wordcount.docs_of_strings texts) ], 1.0e5)

let kmeans_tables () =
  let cfg = W.Points_gen.default ~n_points:4_000 ~k:3 in
  ( [ ("points", W.Points_gen.points ~seed:2 cfg);
      ("centroids0", W.Points_gen.initial_centroids ~seed:2 cfg) ],
    1.0e5 )

(* fixed 10 iterations over a StatefulBag: the loop never converges early,
   so the checkpoint-interval tradeoff is visible *)
let pagerank_tables () =
  let cfg = W.Graph_gen.default ~n_vertices:1_000 in
  ([ ("vertices", W.Graph_gen.adjacency ~seed:2 cfg) ], 1.0e4)

let scale_rates f =
  { Faults.task_fail = 0.05 *. f;
    executor_loss = 0.04 *. f;
    fetch_fail = 0.05 *. f;
    straggler = 0.05 *. f;
    straggler_slowdown = 4.0;
    loop_loss = 0.01 *. f;
    oom_kill = 0.0 }

let opts = Pipeline.default_opts

let recovery_cells (m : Metrics.t) =
  [ string_of_int m.Metrics.retries;
    string_of_int m.Metrics.fetch_failures;
    string_of_int m.Metrics.executor_losses;
    string_of_int m.Metrics.recomputed_partitions;
    string_of_int m.Metrics.speculative_wins ]

let rate_sweep name prog tables data_scale table_scales =
  let base =
    match run_config ~rt:(rt ~profile:spark ~data_scale ~table_scales ()) ~opts prog tables with
    | Time (s, m) -> (s, m)
    | _ -> failwith (name ^ ": fault-free run did not finish")
  in
  let base_s, _ = base in
  List.map
    (fun factor ->
      let faults = Faults.seeded ~rates:(scale_rates factor) 42 in
      match
        run_config ~faults
          ~rt:(rt ~profile:spark ~data_scale ~table_scales ())
          ~opts prog tables
      with
      | Time (s, m) ->
          [ name;
            Printf.sprintf "%.1fx" factor;
            Printf.sprintf "%.0f s" s;
            Printf.sprintf "+%.1f%%" ((s -. base_s) /. base_s *. 100.0) ]
          @ recovery_cells m
      | Fail reason -> [ name; Printf.sprintf "%.1fx" factor; "FAIL: " ^ reason ]
      | Timeout _ -> [ name; Printf.sprintf "%.1fx" factor; "timeout" ])
    [ 0.0; 0.5; 1.0; 2.0 ]

let checkpoint_sweep prog tables data_scale table_scales =
  (* loop losses only: isolates the checkpointing tradeoff *)
  let rates = { Faults.zero_rates with Faults.loop_loss = 0.35 } in
  let faults = Faults.seeded ~rates 7 in
  List.map
    (fun every ->
      let checkpoint_every = match every with 0 -> None | k -> Some k in
      match
        run_config ~faults ?checkpoint_every
          ~rt:(rt ~profile:spark ~data_scale ~table_scales ())
          ~opts prog tables
      with
      | Time (s, m) ->
          [ (if every = 0 then "off" else Printf.sprintf "every %d" every);
            Printf.sprintf "%.0f s" s;
            string_of_int m.Metrics.loop_restores;
            string_of_int m.Metrics.checkpoints;
            Printf.sprintf "%.1f MB" (m.Metrics.checkpoint_bytes /. 1e6) ]
      | Fail reason -> [ Printf.sprintf "every %d" every; "FAIL: " ^ reason ]
      | Timeout _ -> [ Printf.sprintf "every %d" every; "timeout" ])
    [ 0; 5; 2; 1 ]

let run () =
  section "E10: chaos & recovery — overhead of seeded fault plans (extension)";
  let wc_tables, wc_scale = wordcount_tables () in
  let wc_prog = Pr.Wordcount.program Pr.Wordcount.default_params in
  let km_tables, km_scale = kmeans_tables () in
  let km_scales = [ ("centroids0", 1.0) ] in
  let km_prog =
    Pr.Kmeans.program { Pr.Kmeans.default_params with epsilon = 1e-9; max_iters = 10 }
  in
  Emma_util.Tbl.print
    ~title:"recovery overhead vs fault intensity (seed 42; results identical to 0.0x)"
    ~header:
      [ "program"; "rates"; "sim time"; "overhead"; "retries"; "fetch"; "exec loss";
        "recomp parts"; "spec wins" ]
    (rate_sweep "wordcount" wc_prog wc_tables wc_scale []
    @ rate_sweep "k-means" km_prog km_tables km_scale km_scales);
  let pr_tables, pr_scale = pagerank_tables () in
  let pr_prog = Pr.Pagerank.program (Pr.Pagerank.default_params ~n_pages:1_000) in
  Emma_util.Tbl.print
    ~title:"checkpoint interval vs loop-loss recovery (PageRank, loop_loss=0.35, seed 7)"
    ~header:[ "checkpoint"; "sim time"; "loop restores"; "checkpoints"; "ckpt bytes" ]
    (checkpoint_sweep pr_prog pr_tables pr_scale []);
  print_endline
    "(fault plans are pure functions of the seed: every row is reproducible, and\n\
    \ results stay bit-identical to the fault-free run at any intensity)"
