(* Experiment harness: regenerates every table and figure of the paper's
   evaluation (see DESIGN.md §3 for the experiment index).

     dune exec bench/main.exe            runs everything
     dune exec bench/main.exe -- fig4    runs one experiment
                                 (fig4 | table1 | iterative | tpch | fig5 |
                                  ablation | micro | scaleup | faults | memory |
                                  udf | serve | overload | recovery)
     dune exec bench/main.exe -- --domains 4 tpch
                                         runs partition work on 4 OCaml
                                         domains (results and cost metrics
                                         are identical; wall clock varies)
     dune exec bench/main.exe -- --skew 1.6 --chunk 64 scaleup
                                         Zipf exponent / chunk policy for the
                                         skewed scale-up sections (chunk is
                                         auto or a row count; neither moves
                                         results or cost metrics) *)

let experiments =
  [ ("table1", Exp_table1.run);
    ("fig4", Exp_fig4.run);
    ("iterative", Exp_iterative.run);
    ("tpch", Exp_tpch.run);
    ("fig5", Exp_fig5.run);
    ("ablation", Exp_ablation.run);
    ("crossover", Exp_crossover.run);
    ("micro", Exp_micro.run);
    ("scaleup", Exp_scaleup.run);
    ("faults", Exp_faults.run);
    ("memory", Exp_memory.run);
    ("udf", Exp_udf.run);
    ("serve", Exp_serve.run);
    ("overload", Exp_overload.run);
    ("recovery", Exp_recovery.run) ]

let () =
  let trace_file = ref None in
  let report_dir = ref None in
  let args = List.tl (Array.to_list Sys.argv) in
  let rec parse acc = function
    | "--domains" :: n :: rest ->
        (match int_of_string_opt n with
        | Some d when d >= 1 -> Emma_util.Pool.set_default_domains d
        | _ ->
            Printf.eprintf "--domains expects a positive integer, got %S\n" n;
            exit 1);
        parse acc rest
    | "--skew" :: a :: rest ->
        (match float_of_string_opt a with
        | Some alpha when alpha >= 0.0 -> Exp_scaleup.skew_exponent := alpha
        | _ ->
            Printf.eprintf "--skew expects a non-negative float, got %S\n" a;
            exit 1);
        parse acc rest
    | "--chunk" :: c :: rest ->
        (* same parser as the CLI's --chunk: one grammar, one error message *)
        (match Emma.Config.parse_chunk c with
        | Ok spec -> Exp_scaleup.chunk_spec := spec
        | Error msg ->
            Printf.eprintf "%s\n" msg;
            exit 1);
        parse acc rest
    | "--trace" :: file :: rest ->
        trace_file := Some file;
        parse acc rest
    | "--report" :: dir :: rest ->
        report_dir := Some dir;
        parse acc rest
    | [ ("--domains" | "--skew" | "--chunk" | "--trace" | "--report") ] ->
        Printf.eprintf "--domains/--skew/--chunk/--trace/--report expect a value\n";
        exit 1
    | name :: rest -> parse (name :: acc) rest
    | [] -> List.rev acc
  in
  let args = parse [] args in
  let tracer =
    match !trace_file with
    | None -> Emma_util.Trace.disabled
    | Some _ ->
        let tr = Emma_util.Trace.create () in
        Emma_util.Trace.set_global tr;
        tr
  in
  let selected =
    match args with
    | [] -> List.map fst experiments
    | names -> names
  in
  print_endline "Emma reproduction — experiment harness";
  print_endline "(simulated 40-node cluster; times are cost-model seconds, not wall clock)";
  List.iter
    (fun name ->
      match List.assoc_opt name experiments with
      | Some run ->
          Exp_common.reset_runs ();
          run ();
          Option.iter (fun dir -> Exp_common.write_report ~dir name) !report_dir
      | None ->
          Printf.eprintf "unknown experiment %S (available: %s)\n" name
            (String.concat ", " (List.map fst experiments));
          exit 1)
    selected;
  match !trace_file with
  | Some path ->
      Emma_util.Trace.write_chrome_json tracer path;
      Printf.eprintf "trace written to %s (load in chrome://tracing)\n" path
  | None -> ()
