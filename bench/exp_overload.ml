(* E14 (extension): overload control — deadline-aware shedding and the
   degradation ladder under a burst trace, vs the policy-off serve.

   The same Zipf burst (8 arrivals/s — far past what the lanes can
   drain) replays twice over identical sessions:

   - policy off: the PR-7 serve. Every query is admitted and waits out
     the full backlog, so tail latency grows with queue depth.
   - policy on: an end-to-end deadline of half the policy-off median.
     Queries whose queue wait alone exceeds the budget are shed before
     dispatch, admitted queries carry the remaining budget into the
     engine (cancelled at the next safepoint past it), and the
     degradation ladder trades dop and cold compiles for queue drain
     under deep backlog.

   Contracts checked while measuring (the acceptance bar pinned in
   BENCH_overload.json):

   - shedding + degradation strictly improves p99 latency of {e
     admitted} queries — the service keeps its latency promise to the
     queries it accepts, instead of missing it for everyone;
   - no silent loss: on both sides every submission is accounted as
     finished/failed/timed-out/cancelled or shed, by id;
   - the sim fingerprint of the policy-on run is bit-identical across
     20 replays and across 1/2/4/8-domain pools (every shed/degrade
     decision is coordinator-side and seed-deterministic). *)

module Json = Emma_util.Json
module Pool = Emma_util.Pool
module Prng = Emma_util.Prng
module Serve = Emma_serve.Serve
module Arrival = Emma_serve.Arrival
module Session = Emma.Session
module Config = Emma.Config
module W = Emma_workloads
module Pr = Emma_programs

let n_events =
  try int_of_string (Sys.getenv "EMMA_OVERLOAD_EVENTS") with Not_found -> 120

let seed = 17
let rate = 8.0
let alpha = 1.1
let tenant_names = [ "acme"; "beta"; "gamma" ]
let query_names = [ "q1"; "wordcount"; "group-min"; "q3" ]

let docs ~seed n =
  let g = Prng.create seed in
  let vocab =
    [| "emma"; "bag"; "fold"; "join"; "group"; "plan"; "cache"; "shed"; "drain";
       "lane" |]
  in
  Pr.Wordcount.docs_of_strings
    (List.init n (fun _ ->
         String.concat " "
           (List.init
              (Prng.int_in g 4 12)
              (fun _ -> vocab.(Prng.int_in g 0 (Array.length vocab - 1))))))

let workload () =
  let cfg = W.Tpch_gen.of_scale_factor 0.002 in
  let lineitem = W.Tpch_gen.lineitem ~seed:3 cfg in
  let orders = W.Tpch_gen.orders ~seed:3 cfg in
  let customer = W.Tpch_gen.customer ~seed:3 cfg in
  let dataset =
    W.Keyed_gen.tuples ~seed:5
      (W.Keyed_gen.paper_config ~n_tuples:2_000 (W.Keyed_gen.uniform ~n_keys:64))
  in
  [ ("q1", (Pr.Tpch_q1.program Pr.Tpch_q1.default_params, [ ("lineitem", lineitem) ]));
    ( "wordcount",
      (Pr.Wordcount.program Pr.Wordcount.default_params, [ ("docs", docs ~seed:7 400) ]) );
    ( "group-min",
      (Pr.Group_min.program Pr.Group_min.default_params, [ ("dataset", dataset) ]) );
    ( "q3",
      ( Pr.Tpch_q3.program Pr.Tpch_q3.default_params,
        [ ("customer", customer); ("orders", orders); ("lineitem", lineitem) ] ) ) ]

let tenants =
  [ Serve.tenant ~weight:2 "acme"; Serve.tenant "beta"; Serve.tenant "gamma" ]

let rt () = Exp_common.rt ~profile:Exp_common.spark ()

let run_sim ?pool ~policy wl events =
  let config =
    let c = Config.with_plan_cache (Some 64) Config.default in
    match pool with None -> c | Some p -> Config.with_pool (Some p) c
  in
  let session = Session.create ~config (rt ()) in
  Fun.protect ~finally:(fun () -> Session.close session) @@ fun () ->
  Serve.run_sim ~policy session tenants wl events

let accounted (c : Serve.counters) =
  List.length c.Serve.sv_results + List.length c.Serve.sv_shed

let shed_by reason (c : Serve.counters) =
  List.length
    (List.filter (fun (s : Serve.shed_record) -> s.Serve.sh_reason = reason)
       c.Serve.sv_shed)

let mean a =
  if Array.length a = 0 then 0.0
  else Array.fold_left ( +. ) 0.0 a /. float (Array.length a)

let run () =
  Exp_common.section
    "E14: overload control — shedding + degradation vs policy-off serve (extension)";
  Printf.printf
    "(%d arrivals, rate %.1f/s, Zipf %.1f over %d tenants x %d queries; \
     latencies are deterministic service-clock seconds)\n"
    n_events rate alpha (List.length tenant_names) (List.length query_names);
  let wl = workload () in
  let events =
    Arrival.generate ~seed ~rate ~alpha ~tenants:tenant_names ~queries:query_names
      ~n:n_events
  in
  let off = run_sim ~policy:Serve.no_policy wl events in
  if accounted off <> n_events then
    failwith "overload: policy-off run lost a submission";
  let off_lat = Serve.latencies off in
  let deadline = 0.5 *. Serve.percentile off_lat 0.50 in
  let policy =
    { Serve.no_policy with
      Serve.pl_deadline_s = Some deadline;
      pl_degrade_depth = Some (2 * off.Serve.sv_lanes) }
  in
  let on = run_sim ~policy wl events in
  if accounted on <> n_events then
    failwith "overload: a submission went missing under load shedding";
  (* determinism: 20 replays and 1/2/4/8-domain pools, bit-identical *)
  let fp = Serve.fingerprint on in
  for i = 2 to 20 do
    if Serve.fingerprint (run_sim ~policy wl events) <> fp then
      failwith (Printf.sprintf "overload: replay %d moved the fingerprint" i)
  done;
  List.iter
    (fun domains ->
      let pool = Pool.create ~domains () in
      Fun.protect ~finally:(fun () -> Pool.shutdown pool) @@ fun () ->
      if Serve.fingerprint (run_sim ~pool ~policy wl events) <> fp then
        failwith
          (Printf.sprintf "overload: fingerprint moved at %d domains" domains))
    [ 1; 2; 4; 8 ];
  let on_lat = Serve.latencies on in
  let row name c lat =
    [ name;
      string_of_int (List.length c.Serve.sv_results);
      string_of_int (List.length c.Serve.sv_shed);
      Printf.sprintf "%.3f s" (mean lat);
      Printf.sprintf "%.3f s" (Serve.percentile lat 0.50);
      Printf.sprintf "%.3f s" (Serve.percentile lat 0.99);
      string_of_int c.Serve.sv_cancelled;
      string_of_int c.Serve.sv_degraded ]
  in
  Emma_util.Tbl.print
    ~title:
      (Printf.sprintf
         "admitted-query latency under the burst (deadline %.3f s, ladder step %d)"
         deadline (2 * off.Serve.sv_lanes))
    ~header:[ "policy"; "admitted"; "shed"; "mean"; "p50"; "p99"; "cancelled"; "degraded" ]
    [ row "off (PR-7)" off off_lat; row "shed+degrade" on on_lat ];
  let on_p99 = Serve.percentile on_lat 0.99 in
  let off_p99 = Serve.percentile off_lat 0.99 in
  let passed =
    on_p99 < off_p99 && on.Serve.sv_shed <> [] && on.Serve.sv_results <> []
  in
  Printf.printf
    "acceptance: policy-on p99 %.3f s %s policy-off p99 %.3f s (%d shed: %d \
     deadline, %d degraded-cold; %d degraded runs) — %s\n"
    on_p99
    (if on_p99 < off_p99 then "<" else ">=")
    off_p99
    (List.length on.Serve.sv_shed)
    (shed_by Serve.Shed_deadline on)
    (shed_by Serve.Shed_degraded on)
    on.Serve.sv_degraded
    (if passed then "ok" else "FAIL");
  let side name c lat =
    ( name,
      Json.Obj
        [ ("admitted", Json.Int (List.length c.Serve.sv_results));
          ("shed", Json.Int (List.length c.Serve.sv_shed));
          ("shed_deadline", Json.Int (shed_by Serve.Shed_deadline c));
          ("shed_degraded", Json.Int (shed_by Serve.Shed_degraded c));
          ("cancelled", Json.Int c.Serve.sv_cancelled);
          ("degraded", Json.Int c.Serve.sv_degraded);
          ("latency_mean_s", Json.Float (mean lat));
          ("latency_p50_s", Json.Float (Serve.percentile lat 0.50));
          ("latency_p99_s", Json.Float (Serve.percentile lat 0.99));
          ("makespan_s", Json.Float c.Serve.sv_makespan_s) ] )
  in
  let json =
    Json.Obj
      [ ("experiment", Json.Str "overload");
        ( "bench",
          Json.Str
            "E14 burst trace: deadline-aware shedding + degradation ladder vs \
             policy-off serve" );
        ("events", Json.Int n_events);
        ("seed", Json.Int seed);
        ("rate_per_s", Json.Float rate);
        ("zipf_alpha", Json.Float alpha);
        ("deadline_s", Json.Float deadline);
        ("degrade_step", Json.Int (2 * off.Serve.sv_lanes));
        ("lanes", Json.Int on.Serve.sv_lanes);
        side "policy_off" off off_lat;
        side "policy_on" on on_lat;
        ("all_submissions_accounted", Json.Bool true);
        ("replay_fingerprint_stable_20x_and_1_2_4_8_domains", Json.Bool true);
        ("target_met", Json.Bool passed) ]
  in
  let path = "BENCH_overload.json" in
  let oc = open_out path in
  output_string oc (Json.to_string json);
  output_char oc '\n';
  close_out oc;
  Printf.printf "measurement written to %s\n" path;
  if not passed then
    failwith "overload: shedding + degradation missed the p99 target"
