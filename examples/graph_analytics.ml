(* Graph analytics: PageRank (Listing 6) and Connected Components
   (Listing 7) over StatefulBags on a generated power-law graph, plus the
   Emma_graph library (degrees, triangle counting) — all with oracle
   checks (plain-OCaml PageRank, union-find, brute-force triangles).

     dune exec examples/graph_analytics.exe *)

module W = Emma_workloads
module Pr = Emma_programs
module Value = Emma.Value

let top_k k rows ~score =
  rows
  |> List.sort (fun a b -> compare (score b) (score a))
  |> List.filteri (fun i _ -> i < k)

let () =
  let n_vertices = 300 in
  let cfg = { (W.Graph_gen.default ~n_vertices) with avg_degree = 6 } in
  let directed = W.Graph_gen.adjacency ~seed:99 cfg in
  let undirected = W.Graph_gen.undirected_adjacency ~seed:99 cfg in

  (* ---- PageRank ---- *)
  let params = { (Pr.Pagerank.default_params ~n_pages:n_vertices) with iterations = 15 } in
  let algo = Emma.parallelize (Pr.Pagerank.program params) in
  let native, _ = Emma.run_native algo ~tables:[ ("vertices", directed) ] in
  let ranks = Value.to_bag native in
  Format.printf "PageRank: %d vertices, %d edges@." n_vertices (W.Graph_gen.edge_count directed);
  List.iter
    (fun r ->
      Format.printf "  vertex %2d  rank %.5f@."
        (Value.to_int (Value.field r "id"))
        (Value.to_float (Value.field r "rank")))
    (top_k 5 ranks ~score:(fun r -> Value.to_float (Value.field r "rank")));
  let oracle = Pr.Pagerank.reference ~params ~vertices:directed in
  let rank_of rows id =
    List.find (fun r -> Value.to_int (Value.field r "id") = id) rows
    |> fun r -> Value.to_float (Value.field r "rank")
  in
  let max_err =
    List.fold_left
      (fun acc r ->
        let id = Value.to_int (Value.field r "id") in
        max acc (Float.abs (Value.to_float (Value.field r "rank") -. rank_of oracle id)))
      0.0 ranks
  in
  Format.printf "  max deviation from oracle: %.2e@.@." max_err;
  assert (max_err < 1e-9);

  (* ---- Connected Components ---- *)
  let cc = Emma.parallelize (Pr.Connected_components.program Pr.Connected_components.default_params) in
  let native_cc, _ = Emma.run_native cc ~tables:[ ("vertices", undirected) ] in
  let components = Value.to_bag native_cc in
  let distinct_components =
    components
    |> List.map (fun s -> Value.to_int (Value.field s "component"))
    |> List.sort_uniq compare
  in
  Format.printf "Connected Components: %d vertices form %d component(s)@."
    (List.length components) (List.length distinct_components);
  let oracle_cc = Pr.Connected_components.reference ~vertices:undirected in
  let oracle_count =
    oracle_cc
    |> List.map (fun r -> Value.to_int (Value.field r "component"))
    |> List.sort_uniq compare |> List.length
  in
  assert (List.length distinct_components = oracle_count);
  Format.printf "  union-find oracle agrees (%d components)@." oracle_count;

  (* ---- Emma_graph library: degrees and triangles ---- *)
  let module G = Emma_graph.Graph in
  let edges = G.edges_of_adjacency undirected in
  let tri_prog =
    Emma.Surface.program ~ret:(G.triangle_count (Emma.Surface.read "edges")) []
  in
  let tri_algo = Emma.parallelize tri_prog in
  let tri_native, _ = Emma.run_native tri_algo ~tables:[ ("edges", edges) ] in
  let pairs =
    List.map
      (fun e -> (Value.to_int (Value.field e "src"), Value.to_int (Value.field e "dst")))
      edges
  in
  Format.printf "Triangles (directed rotations): %d — brute-force oracle: %d@."
    (Value.to_int tri_native)
    (G.triangle_count_reference pairs);
  assert (Value.to_int tri_native = G.triangle_count_reference pairs);
  Format.printf "  (compiled as %d equi-join + %d semi-join)@.@."
    tri_algo.Emma.report.Emma.Pipeline.translation.Emma_compiler.Translate.eq_joins
    tri_algo.Emma.report.Emma.Pipeline.translation.Emma_compiler.Translate.semi_joins;

  (* ---- and on the simulated engine ---- *)
  match
    Emma.run_on (Emma.spark ~cluster:(Emma.Cluster.paper_cluster ()) ()) cc
      ~tables:[ ("vertices", undirected) ]
  with
  | Emma.Finished { metrics; _ } ->
      Format.printf "engine run: %.1f simulated s, %d jobs, %d shuffle MB@."
        metrics.Emma.Metrics.sim_time_s metrics.Emma.Metrics.jobs
        (int_of_float (metrics.Emma.Metrics.shuffle_bytes /. 1e6))
  | _ -> print_endline "engine run failed"
