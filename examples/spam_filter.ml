(* The paper's motivating workflow (§5.1, Listing 5): pick the spam
   classifier minimizing non-spam mail from blacklisted servers. This
   example shows the optimizer's decisions end-to-end: the [exists]
   predicate written at SQL-level declarativity becomes a repartition
   semi-join, loop-invariant data is cached, and partitionings are pulled
   out of the loop — then compares engine costs across the optimization
   configurations of Figure 4.

     dune exec examples/spam_filter.exe *)

module W = Emma_workloads
module Pr = Emma_programs
module Pipeline = Emma_compiler.Pipeline
module Value = Emma.Value

let () =
  let cfg =
    { (W.Email_gen.paper_config ~physical_emails:400) with
      body_bytes_avg = 10_000;
      server_info_bytes = 2_000 }
  in
  let emails = W.Email_gen.emails ~seed:12 cfg in
  let blacklist = W.Email_gen.blacklist ~seed:12 cfg in
  let tables = [ ("emails_raw", emails); ("blacklist_raw", blacklist) ] in
  let params = { Pr.Spam_workflow.default_params with n_classifiers = 6 } in
  let prog = Pr.Spam_workflow.program params in

  (* native run + oracle *)
  let algo = Emma.parallelize prog in
  let native, _ = Emma.run_native algo ~tables in
  let best, hits = Pr.Spam_workflow.reference ~params ~emails ~blacklist in
  Format.printf "selected classifier (native): %a@." Value.pp native;
  Format.printf "selected classifier (oracle): (%d, %d)@.@." best hits;
  assert (Value.equal native (Value.tuple [ Value.int best; Value.int hits ]));

  Format.printf "cached bindings: %s@." (String.concat ", " algo.Emma.report.Emma.Pipeline.cached_vars);
  Format.printf "partition-pulled: %s@.@."
    (String.concat ", " algo.Emma.report.Emma.Pipeline.partitioned_vars);

  (* Figure-4 style comparison on the simulated cluster *)
  let configs =
    [ ("baseline ", Pipeline.with_ ~unnest:false ~cache:false ~partition:false ());
      ("U        ", Pipeline.with_ ~unnest:true ~cache:false ~partition:false ());
      ("U+C      ", Pipeline.with_ ~unnest:true ~cache:true ~partition:false ());
      ("U+P+C    ", Pipeline.default_opts) ]
  in
  let rt = Emma.spark ~cluster:(Emma.Cluster.paper_cluster ~data_scale:2500.0 ()) () in
  Format.printf "spark-like engine, 1 M emails logical:@.";
  List.iter
    (fun (name, opts) ->
      let a = Emma.parallelize ~opts prog in
      match Emma.run_on rt a ~tables with
      | Emma.Finished { metrics; value; _ } ->
          assert (Value.equal value native);
          Format.printf "  %s %7.0f simulated s   (%.1f GB shuffled, %.1f GB broadcast)@."
            name metrics.Emma.Metrics.sim_time_s
            (metrics.Emma.Metrics.shuffle_bytes /. 1e9)
            (metrics.Emma.Metrics.broadcast_bytes /. 1e9)
      | Emma.Failed { reason; _ } -> Format.printf "  %s FAILED: %s@." name reason
      | Emma.Timed_out { at_s; _ } -> Format.printf "  %s timed out at %.0f s@." name at_s
      | Emma.Cancelled { at_s; reason; _ } ->
          Format.printf "  %s cancelled at %.0f s: %s@." name at_s reason)
    configs
