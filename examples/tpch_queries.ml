(* TPC-H Q1 and Q4 written declaratively in Emma (Listings 8 and 9),
   validated against hand-written reference implementations, with the
   optimizer's work (fold-group fusion for Q1, exists-unnesting into a
   semi-join for Q4) made visible.

     dune exec examples/tpch_queries.exe *)

module W = Emma_workloads
module Pr = Emma_programs
module Value = Emma.Value

let () =
  let cfg = W.Tpch_gen.of_scale_factor 0.001 in
  let lineitem = W.Tpch_gen.lineitem ~seed:31 cfg in
  let orders = W.Tpch_gen.orders ~seed:31 cfg in
  Format.printf "generated %d lineitems, %d orders@.@." (List.length lineitem)
    (List.length orders);

  (* ---- Q1 ---- *)
  let q1 = Emma.parallelize (Pr.Tpch_q1.program Pr.Tpch_q1.default_params) in
  Format.printf "Q1: fold-group fusion collapsed %d folds into %d aggBy@."
    q1.Emma.report.Emma.Pipeline.fusion.Emma_compiler.Fusion.fused_folds
    q1.Emma.report.Emma.Pipeline.fusion.Emma_compiler.Fusion.fused_groups;
  let native, _ = Emma.run_native q1 ~tables:[ ("lineitem", lineitem) ] in
  List.iter
    (fun row ->
      Format.printf "  %s/%s: qty=%.0f price=%.0f count=%d@."
        (Value.to_string_exn (Value.field row "returnFlag"))
        (Value.to_string_exn (Value.field row "lineStatus"))
        (Value.to_float (Value.field row "sumQty"))
        (Value.to_float (Value.field row "sumBasePrice"))
        (Value.to_int (Value.field row "countOrder")))
    (List.sort Value.compare (Value.to_bag native));
  let reference = Emma_tpch.Reference.q1 lineitem in
  Format.printf "  reference groups: %d (match: %b)@.@." (List.length reference)
    (List.length reference = List.length (Value.to_bag native));

  (* ---- Q4 ---- *)
  let q4 = Emma.parallelize (Pr.Tpch_q4.program Pr.Tpch_q4.default_params) in
  Format.printf "Q4: exists unnested into %d semi-join(s)@."
    q4.Emma.report.Emma.Pipeline.translation.Emma_compiler.Translate.semi_joins;
  let native4, _ =
    Emma.run_native q4 ~tables:[ ("lineitem", lineitem); ("orders", orders) ]
  in
  let reference4 = Emma_tpch.Reference.q4 ~orders ~lineitem in
  List.iter
    (fun row ->
      Format.printf "  %-16s %d orders@."
        (Value.to_string_exn (Value.field row "orderPriority"))
        (Value.to_int (Value.field row "orderCount")))
    (List.sort Value.compare (Value.to_bag native4));
  assert (Value.equal (Value.bag (Value.to_bag native4)) (Value.bag reference4));
  print_endline "  reference implementation agrees.";

  (* ---- engine run at logical SF 10 ---- *)
  let rt =
    Emma.spark ~cluster:(Emma.Cluster.paper_cluster ~data_scale:10_000.0 ()) ~timeout_s:3600.0 ()
  in
  match Emma.run_on rt q4 ~tables:[ ("lineitem", lineitem); ("orders", orders) ] with
  | Emma.Finished { metrics; _ } ->
      Format.printf "Q4 on simulated cluster (logical SF 10): %.0f s, %s shuffled@."
        metrics.Emma.Metrics.sim_time_s
        (Printf.sprintf "%.1f GB" (metrics.Emma.Metrics.shuffle_bytes /. 1e9))
  | _ -> print_endline "engine run failed"
