(* Linear algebra as a library of comprehensions (the paper's §7 direction):
   a sparse matrix is a DataBag of coordinate cells, and matrix product is
   an equi-join followed by a grouped sum — which the Emma compiler turns
   into a repartition join plus a map-side-combining aggBy, with no
   linear-algebra-specific operator anywhere in the stack.

     dune exec examples/linear_algebra.exe *)

module M = Emma_matrix.Matrix
module S = Emma.Surface
module Value = Emma.Value

let dense_mul a b =
  let n = Array.length a and m = Array.length b.(0) and k = Array.length b in
  Array.init n (fun i ->
      Array.init m (fun j ->
          let acc = ref 0.0 in
          for l = 0 to k - 1 do
            acc := !acc +. (a.(i).(l) *. b.(l).(j))
          done;
          !acc))

let () =
  let rng = Emma_util.Prng.create 2024 in
  let n = 12 in
  let rand_dense () =
    Array.init n (fun _ ->
        Array.init n (fun _ ->
            if Emma_util.Prng.unit_float rng < 0.6 then 0.0
            else Emma_util.Prng.float rng 4.0 -. 2.0))
  in
  let a = rand_dense () and b = rand_dense () in
  let tables = [ ("a", M.cells_of_dense a); ("b", M.cells_of_dense b) ] in

  (* (A·B + Bᵀ) and its squared Frobenius norm, all as one Emma program *)
  let prog =
    S.program
      ~ret:S.(tup [ var "norm2"; count (var "m") ])
      [ S.s_let "m" (M.add (M.multiply (S.read "a") (S.read "b")) (M.transpose (S.read "b")));
        S.s_let "norm2" (M.frobenius_norm2 (S.var "m"));
        S.write "result" (S.var "m") ]
  in
  let algo = Emma.parallelize prog in

  (* what did the compiler do? *)
  let module P = Emma.Plan in
  let joins = ref 0 and aggs = ref 0 and groups = ref 0 in
  Emma.Cprog.iter_plans
    (fun p ->
      P.fold_plan
        (fun () -> function
          | P.Eq_join _ -> incr joins
          | P.Agg_by _ -> incr aggs
          | P.Group_by _ -> incr groups
          | _ -> ())
        () p)
    algo.Emma.compiled;
  Printf.printf "compiled plan: %d equi-join(s), %d fused aggBy(s), %d raw groupBy(s)\n"
    !joins !aggs !groups;

  let native, native_ctx = Emma.run_native algo ~tables in
  Format.printf "‖A·B + Bᵀ‖² (native) = %a@." Value.pp (Value.proj native 0);

  (* dense oracle *)
  let expected =
    let p = dense_mul a b in
    let s = ref 0.0 in
    for i = 0 to n - 1 do
      for j = 0 to n - 1 do
        let v = p.(i).(j) +. b.(j).(i) in
        s := !s +. (v *. v)
      done
    done;
    !s
  in
  Printf.printf "‖A·B + Bᵀ‖² (oracle) = %g\n" expected;
  let got = Value.to_float (Value.proj native 0) in
  assert (Float.abs (got -. expected) < 1e-6 *. (1.0 +. expected));

  (* cells written to the sink agree with the dense computation *)
  let cells = Emma.Eval.read_table native_ctx "result" in
  let dense = M.dense_of_cells ~rows:n ~cols:n cells in
  let p = dense_mul a b in
  for i = 0 to n - 1 do
    for j = 0 to n - 1 do
      assert (Float.abs (dense.(i).(j) -. (p.(i).(j) +. b.(j).(i))) < 1e-9)
    done
  done;
  print_endline "sink cells match the dense oracle.";

  (* and on the simulated engine *)
  match
    Emma.run_on (Emma.spark ~cluster:(Emma.Cluster.paper_cluster ()) ()) algo ~tables
  with
  | Emma.Finished { value; metrics; _ } ->
      let engine_norm = Value.to_float (Value.proj value 0) in
      assert (Float.abs (engine_norm -. expected) < 1e-6 *. (1.0 +. expected));
      Printf.printf "engine agrees; %.1f simulated s, %d jobs\n"
        metrics.Emma.Metrics.sim_time_s metrics.Emma.Metrics.jobs
  | _ -> print_endline "engine run failed"
