(* k-means clustering (the paper's Listing 4) end to end:

   - generate clustered points,
   - run Lloyd's algorithm written in Emma (no parallelism primitives in the
     program text),
   - compare the centroids against a plain-OCaml oracle,
   - show the compiled plan and what the optimizer did,
   - run on both engine profiles and report simulated costs.

     dune exec examples/kmeans_clustering.exe *)

module W = Emma_workloads
module Pr = Emma_programs
module Value = Emma.Value

let () =
  let params = { Pr.Kmeans.default_params with max_iters = 15 } in
  let cfg = W.Points_gen.default ~n_points:2_000 ~k:4 in
  let points = W.Points_gen.points ~seed:7 cfg in
  let centroids0 = W.Points_gen.initial_centroids ~seed:7 cfg in
  let tables = [ ("points", points); ("centroids0", centroids0) ] in

  let algo = Emma.parallelize (Pr.Kmeans.program { params with dim = cfg.W.Points_gen.dim }) in

  Format.printf "=== compiled driver program ===@.%s@.@."
    (Emma.Cprog.to_string algo.Emma.compiled);

  let native, _ = Emma.run_native algo ~tables in
  Format.printf "centroids (native): %a@." Value.pp native;

  let oracle = Pr.Kmeans.reference ~params:{ params with dim = cfg.W.Points_gen.dim } ~points ~centroids0 in
  Format.printf "centroids (oracle): %a@." Value.pp (Value.bag oracle);

  List.iter
    (fun (name, rt) ->
      match Emma.run_on rt algo ~tables with
      | Emma.Finished { metrics; _ } ->
          Format.printf "@.--- %s profile ---@.%a@." name Emma.Metrics.pp metrics
      | Emma.Failed { reason; _ } -> Format.printf "%s failed: %s@." name reason
      | Emma.Timed_out { at_s; _ } -> Format.printf "%s timed out at %.0f s@." name at_s
      | Emma.Cancelled { at_s; reason; _ } ->
          Format.printf "%s cancelled at %.0f s: %s@." name at_s reason)
    [ ("spark-like", Emma.spark ~cluster:(Emma.Cluster.paper_cluster ()) ());
      ("flink-like", Emma.flink ~cluster:(Emma.Cluster.paper_cluster ()) ()) ]
