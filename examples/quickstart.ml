(* Quickstart: write a program against the Emma surface syntax, develop it
   with the native (host-language) DataBag semantics, then [parallelize] it
   and run it on a simulated distributed engine — nothing in the program
   itself mentions parallelism.

   The program is a small order-analytics query: join orders with customers,
   keep the large orders, and compute revenue per country.

     dune exec examples/quickstart.exe *)

module S = Emma.Surface
module Value = Emma.Value

(* -- a tiny dataset ---------------------------------------------------- *)

let customers =
  let c id name country =
    Value.record [ ("id", Value.int id); ("name", Value.string name); ("country", Value.string country) ]
  in
  [ c 1 "ada" "uk"; c 2 "grace" "us"; c 3 "alan" "uk"; c 4 "edsger" "nl" ]

let orders =
  let o id cust total =
    Value.record [ ("id", Value.int id); ("cust", Value.int cust); ("total", Value.float total) ]
  in
  [ o 100 1 25.0; o 101 1 125.0; o 102 2 80.0; o 103 3 220.0; o 104 4 14.0; o 105 2 310.0 ]

(* -- the Emma program --------------------------------------------------- *)

let program =
  let open S in
  (* for (o <- orders; c <- customers; if o.cust == c.id; if o.total > 50)
     yield {country = c.country; total = o.total}               -- a join!  *)
  let big_orders =
    for_
      [ gen "o" (read "orders");
        gen "c" (read "customers");
        when_ (field (var "o") "cust" = field (var "c") "id");
        when_ (field (var "o") "total" > float_ 50.0) ]
      ~yield:(record [ ("country", field (var "c") "country"); ("total", field (var "o") "total") ])
  in
  (* revenue per country: groupBy + fold, fused into an aggBy by the compiler *)
  let revenue =
    for_
      [ gen "g" (group_by (lam "x" (fun x -> field x "country")) big_orders) ]
      ~yield:
        (record
           [ ("country", field (var "g") "key");
             ("revenue", sum (map (lam "x" (fun x -> field x "total")) (field (var "g") "values"))) ])
  in
  program ~ret:(var "result") [ s_let "result" revenue; write "revenue" (var "result") ]

let () =
  let tables = [ ("orders", orders); ("customers", customers) ] in

  (* 1. develop & debug natively: plain host-language DataBag execution *)
  let algo = Emma.parallelize program in
  let native, _ = Emma.run_native algo ~tables in
  Format.printf "native result:   %a@." Value.pp native;

  (* 2. inspect what the compiler did *)
  let r = algo.Emma.report in
  Format.printf "optimizations:   eq-joins=%d, fused folds=%d@."
    r.Emma.Pipeline.translation.Emma_compiler.Translate.eq_joins
    r.Emma.Pipeline.fusion.Emma_compiler.Fusion.fused_folds;

  (* 3. run the same algorithm on a simulated 40-node Spark-like cluster *)
  let rt = Emma.spark ~cluster:(Emma.Cluster.paper_cluster ()) () in
  match Emma.run_on rt algo ~tables with
  | Emma.Finished { value; metrics; _ } ->
      Format.printf "engine result:   %a@." Value.pp value;
      Format.printf "simulated time:  %.2f s over %d dataflow(s)@."
        metrics.Emma.Metrics.sim_time_s metrics.Emma.Metrics.jobs;
      assert (Value.equal native value);
      print_endline "native and distributed execution agree."
  | Emma.Failed { reason; _ } -> Format.printf "engine failed: %s@." reason
  | Emma.Timed_out { at_s; _ } -> Format.printf "engine timed out at %.0f s@." at_s
  | Emma.Cancelled { at_s; reason; _ } ->
      Format.printf "engine cancelled at %.0f s: %s@." at_s reason
