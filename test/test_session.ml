(* Emma.Session: the reusable engine handle behind run_on and emma serve.

   Covers session lifecycle (owned vs borrowed pools), the plan-cache
   submit path (miss → hit, schema sensitivity, cache counters stamped
   into per-query metrics), the deprecated-shim equivalence of run_on,
   and the failure-path linkage fix: Failed and Timed_out queries still
   surface their Metrics.t and a terminal Trace instant. *)

module S = Emma_lang.Surface
module Value = Emma.Value
module Metrics = Emma.Metrics
module Config = Emma.Config
module Session = Emma.Session
module Cluster = Emma.Cluster
module Trace = Emma_util.Trace

let rows n =
  List.init n (fun i ->
      Value.record [ ("a", Value.Int i); ("b", Value.Int (i mod 5)) ])

let sum_prog =
  S.program
    ~ret:S.(sum (map (lam "x" (fun x -> field x "a")) (read "rows")))
    []

let rt = Emma.spark ~timeout_s:3600.0 ()

let with_session ?config rt f =
  let s = Session.create ?config rt in
  Fun.protect ~finally:(fun () -> Session.close s) (fun () -> f s)

let finished = function
  | Emma.Finished r -> r
  | Emma.Failed { reason; _ } -> Alcotest.failf "query failed: %s" reason
  | Emma.Timed_out _ -> Alcotest.fail "query timed out"

let cache_status =
  Alcotest.testable
    (fun ppf s ->
      Format.pp_print_string ppf
        (match s with
        | Session.Hit -> "Hit"
        | Session.Miss -> "Miss"
        | Session.Uncached -> "Uncached"))
    ( = )

let test_miss_then_hit () =
  with_session ~config:(Config.with_plan_cache (Some 4) Config.default) rt
  @@ fun s ->
  let tables = [ ("rows", rows 40) ] in
  let o1, i1 = Session.submit s sum_prog ~tables in
  let o2, i2 = Session.submit s sum_prog ~tables in
  Alcotest.check cache_status "first submit compiles cold" Session.Miss
    i1.Session.si_cache;
  Alcotest.check cache_status "repeat submit hits" Session.Hit i2.Session.si_cache;
  let r1 = finished o1 and r2 = finished o2 in
  Helpers.check_value "hit value identical" r1.Emma.value r2.Emma.value;
  Alcotest.(check (float 0.0)) "hit cost-model time identical"
    r1.Emma.metrics.Metrics.sim_time_s r2.Emma.metrics.Metrics.sim_time_s;
  Alcotest.(check bool) "hit compile charge is cheaper" true
    (i2.Session.si_compile_s < i1.Session.si_compile_s);
  (* cache counters are stamped into the per-query metrics *)
  Alcotest.(check int) "miss counted" 1 r1.Emma.metrics.Metrics.plan_cache_misses;
  Alcotest.(check int) "hit counted" 1 r2.Emma.metrics.Metrics.plan_cache_hits;
  match Session.plan_cache_stats s with
  | None -> Alcotest.fail "cached session reports no stats"
  | Some st ->
      Alcotest.(check int) "stats hits" 1 st.Emma.Plan_cache.hits;
      Alcotest.(check int) "stats misses" 1 st.Emma.Plan_cache.misses;
      Alcotest.(check int) "stats entries" 1 st.Emma.Plan_cache.entries

let test_uncached_session () =
  with_session ~config:(Config.with_plan_cache None Config.default) rt @@ fun s ->
  let tables = [ ("rows", rows 10) ] in
  let _, i1 = Session.submit s sum_prog ~tables in
  let _, i2 = Session.submit s sum_prog ~tables in
  Alcotest.check cache_status "no cache: first" Session.Uncached i1.Session.si_cache;
  Alcotest.check cache_status "no cache: repeat" Session.Uncached i2.Session.si_cache;
  Alcotest.(check bool) "no stats" true (Session.plan_cache_stats s = None)

let test_schema_sensitivity () =
  let t1 = [ ("rows", rows 10) ] in
  let t2 =
    [ ( "rows",
        List.init 10 (fun i ->
            Value.record
              [ ("a", Value.Int i);
                ("b", Value.Int (i mod 5));
                ("c", Value.Bool true) ]) ) ]
  in
  Alcotest.(check bool) "schema fingerprints differ" true
    (Session.schema_of_tables t1 <> Session.schema_of_tables t2);
  with_session rt @@ fun s ->
  let _, i1 = Session.submit s sum_prog ~tables:t1 in
  let _, i2 = Session.submit s sum_prog ~tables:t2 in
  let _, i3 = Session.submit s sum_prog ~tables:t1 in
  Alcotest.check cache_status "cold" Session.Miss i1.Session.si_cache;
  Alcotest.check cache_status "same plan, new schema misses" Session.Miss
    i2.Session.si_cache;
  Alcotest.check cache_status "original schema still cached" Session.Hit
    i3.Session.si_cache;
  (* same shape, fresh data: still a hit *)
  let _, i4 = Session.submit s sum_prog ~tables:[ ("rows", rows 33) ] in
  Alcotest.check cache_status "same shape over fresh rows hits" Session.Hit
    i4.Session.si_cache

let test_owned_pool_lifecycle () =
  let config = Config.with_domains (Some 2) Config.default in
  let s = Session.create ~config rt in
  let cfg = Session.config s in
  Alcotest.(check bool) "resolved config pins a pool" true (cfg.Config.pool <> None);
  let o, _ = Session.submit s sum_prog ~tables:[ ("rows", rows 20) ] in
  ignore (finished o);
  Session.close s;
  Alcotest.(check pass) "close released the owned pool" () ()

let test_run_on_shim_equivalence () =
  (* the deprecated per-knob shim and the Config path produce identical
     outcomes *)
  let tables = [ ("rows", rows 40) ] in
  let algo = Emma.parallelize sum_prog in
  let via_knobs = Emma.run_on_exn ~udf_mode:Emma.Engine.Interp rt algo ~tables in
  let via_config =
    Emma.run_on_exn
      ~config:(Config.with_udf_mode Config.Interp Config.default)
      rt algo ~tables
  in
  Helpers.check_value "values equal" via_knobs.Emma.value via_config.Emma.value;
  Alcotest.(check (float 0.0)) "cost-model time equal"
    via_knobs.Emma.metrics.Metrics.sim_time_s
    via_config.Emma.metrics.Metrics.sim_time_s;
  Alcotest.(check int) "udf invocations equal"
    via_knobs.Emma.metrics.Metrics.udf_invocations
    via_config.Emma.metrics.Metrics.udf_invocations

let terminal_instants tracer =
  List.filter
    (fun (e : Trace.event) ->
      e.Trace.ev_name = "query_terminal" && e.Trace.ev_cat = "session")
    (Trace.events tracer)

let status_of (e : Trace.event) =
  match List.assoc_opt "status" e.Trace.ev_args with
  | Some (Trace.A_str s) -> s
  | _ -> "?"

let test_timeout_keeps_linkage () =
  let tracer = Trace.create ~clock:(fun () -> 0.0) () in
  let config = Config.with_trace (Some tracer) Config.default in
  let rt =
    Emma.spark
      ~cluster:(Cluster.paper_cluster ~data_scale:1e6 ())
      ~timeout_s:0.5 ()
  in
  with_session ~config rt @@ fun s ->
  let o, _ = Session.submit s sum_prog ~tables:[ ("rows", rows 300) ] in
  (match o with
  | Emma.Timed_out { at_s; metrics } ->
      Alcotest.(check bool) "clock past limit" true (at_s > 0.5);
      Alcotest.(check bool) "partial metrics surfaced" true
        (metrics.Metrics.sim_time_s >= 0.0);
      Alcotest.(check int) "cache counters stamped on timeout" 1
        (metrics.Metrics.plan_cache_misses)
  | _ -> Alcotest.fail "expected a timeout");
  match terminal_instants tracer with
  | [ e ] -> Alcotest.(check string) "terminal instant status" "timed_out" (status_of e)
  | l -> Alcotest.failf "expected exactly one terminal instant, got %d" (List.length l)

(* a grouping program reserves per-key state, so a budget far below its
   peak OOM-fails even after the retry ladder (no spilling) *)
let group_prog =
  S.program
    ~ret:S.(count (var "d"))
    [ S.s_let "d"
        S.(
          for_
            [ gen "g" (group_by (lam "x" (fun x -> field x "b")) (read "rows")) ]
            ~yield:
              (record
                 [ ( "a",
                     sum
                       (map (lam "x" (fun x -> field x "a")) (field (var "g") "values"))
                   );
                   ("b", field (var "g") "key") ])) ]

let test_failure_keeps_linkage () =
  let unbounded = Emma.run_on_exn rt (Emma.parallelize group_prog)
      ~tables:[ ("rows", rows 200) ] in
  let peak = unbounded.Emma.metrics.Metrics.mem_peak_bytes in
  let tracer = Trace.create ~clock:(fun () -> 0.0) () in
  let config =
    Config.default
    |> Config.with_trace (Some tracer)
    |> Config.with_mem_budget (Some (0.4 *. peak)) (* below the retry ladder *)
  in
  with_session ~config rt @@ fun s ->
  let o, _ = Session.submit s group_prog ~tables:[ ("rows", rows 200) ] in
  (match o with
  | Emma.Failed { reason; metrics } ->
      Alcotest.(check bool) "reason is non-empty" true (String.length reason > 0);
      Alcotest.(check bool) "partial metrics surfaced" true
        (metrics.Metrics.sim_time_s >= 0.0);
      Alcotest.(check int) "cache counters stamped on failure" 1
        metrics.Metrics.plan_cache_misses
  | Emma.Finished _ -> Alcotest.fail "expected an OOM failure"
  | Emma.Timed_out _ -> Alcotest.fail "expected a failure, not a timeout");
  match terminal_instants tracer with
  | [ e ] -> Alcotest.(check string) "terminal instant status" "failed" (status_of e)
  | l -> Alcotest.failf "expected exactly one terminal instant, got %d" (List.length l)

let test_finished_emits_terminal () =
  let tracer = Trace.create ~clock:(fun () -> 0.0) () in
  let config = Config.with_trace (Some tracer) Config.default in
  with_session ~config rt @@ fun s ->
  let o, _ = Session.submit s sum_prog ~tables:[ ("rows", rows 10) ] in
  ignore (finished o);
  match terminal_instants tracer with
  | [ e ] -> Alcotest.(check string) "terminal instant status" "finished" (status_of e)
  | l -> Alcotest.failf "expected exactly one terminal instant, got %d" (List.length l)

let suite =
  [ ( "session",
      [ Alcotest.test_case "submit: miss then hit, metrics stamped" `Quick
          test_miss_then_hit;
        Alcotest.test_case "uncached session never hits" `Quick test_uncached_session;
        Alcotest.test_case "schema change misses, same shape hits" `Quick
          test_schema_sensitivity;
        Alcotest.test_case "config.domains owns a pool across close" `Quick
          test_owned_pool_lifecycle;
        Alcotest.test_case "run_on shims == Config path" `Quick
          test_run_on_shim_equivalence;
        Alcotest.test_case "timeout keeps metrics + terminal trace" `Quick
          test_timeout_keeps_linkage;
        Alcotest.test_case "failure keeps metrics + terminal trace" `Quick
          test_failure_keeps_linkage;
        Alcotest.test_case "finished queries emit the terminal instant" `Quick
          test_finished_emits_terminal ] ) ]
