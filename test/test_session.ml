(* Emma.Session: the reusable engine handle behind run_on and emma serve.

   Covers session lifecycle (owned vs borrowed pools), the plan-cache
   submit path (miss → hit, schema sensitivity, cache counters stamped
   into per-query metrics), the deprecated-shim equivalence of run_on,
   and the failure-path linkage fix: Failed and Timed_out queries still
   surface their Metrics.t and a terminal Trace instant. *)

module S = Emma_lang.Surface
module Value = Emma.Value
module Metrics = Emma.Metrics
module Config = Emma.Config
module Session = Emma.Session
module Cluster = Emma.Cluster
module Trace = Emma_util.Trace

let rows n =
  List.init n (fun i ->
      Value.record [ ("a", Value.Int i); ("b", Value.Int (i mod 5)) ])

let sum_prog =
  S.program
    ~ret:S.(sum (map (lam "x" (fun x -> field x "a")) (read "rows")))
    []

let rt = Emma.spark ~timeout_s:3600.0 ()

let with_session ?config rt f =
  let s = Session.create ?config rt in
  Fun.protect ~finally:(fun () -> Session.close s) (fun () -> f s)

let finished = function
  | Emma.Finished r -> r
  | Emma.Failed { reason; _ } -> Alcotest.failf "query failed: %s" reason
  | Emma.Timed_out _ -> Alcotest.fail "query timed out"
  | Emma.Cancelled _ -> Alcotest.fail "query cancelled"

let cache_status =
  Alcotest.testable
    (fun ppf s ->
      Format.pp_print_string ppf
        (match s with
        | Session.Hit -> "Hit"
        | Session.Miss -> "Miss"
        | Session.Uncached -> "Uncached"))
    ( = )

let test_miss_then_hit () =
  with_session ~config:(Config.with_plan_cache (Some 4) Config.default) rt
  @@ fun s ->
  let tables = [ ("rows", rows 40) ] in
  let o1, i1 = Session.submit s sum_prog ~tables in
  let o2, i2 = Session.submit s sum_prog ~tables in
  Alcotest.check cache_status "first submit compiles cold" Session.Miss
    i1.Session.si_cache;
  Alcotest.check cache_status "repeat submit hits" Session.Hit i2.Session.si_cache;
  let r1 = finished o1 and r2 = finished o2 in
  Helpers.check_value "hit value identical" r1.Emma.value r2.Emma.value;
  Alcotest.(check (float 0.0)) "hit cost-model time identical"
    r1.Emma.metrics.Metrics.sim_time_s r2.Emma.metrics.Metrics.sim_time_s;
  Alcotest.(check bool) "hit compile charge is cheaper" true
    (i2.Session.si_compile_s < i1.Session.si_compile_s);
  (* cache counters are stamped into the per-query metrics *)
  Alcotest.(check int) "miss counted" 1 r1.Emma.metrics.Metrics.plan_cache_misses;
  Alcotest.(check int) "hit counted" 1 r2.Emma.metrics.Metrics.plan_cache_hits;
  match Session.plan_cache_stats s with
  | None -> Alcotest.fail "cached session reports no stats"
  | Some st ->
      Alcotest.(check int) "stats hits" 1 st.Emma.Plan_cache.hits;
      Alcotest.(check int) "stats misses" 1 st.Emma.Plan_cache.misses;
      Alcotest.(check int) "stats entries" 1 st.Emma.Plan_cache.entries

let test_uncached_session () =
  with_session ~config:(Config.with_plan_cache None Config.default) rt @@ fun s ->
  let tables = [ ("rows", rows 10) ] in
  let _, i1 = Session.submit s sum_prog ~tables in
  let _, i2 = Session.submit s sum_prog ~tables in
  Alcotest.check cache_status "no cache: first" Session.Uncached i1.Session.si_cache;
  Alcotest.check cache_status "no cache: repeat" Session.Uncached i2.Session.si_cache;
  Alcotest.(check bool) "no stats" true (Session.plan_cache_stats s = None)

let test_schema_sensitivity () =
  let t1 = [ ("rows", rows 10) ] in
  let t2 =
    [ ( "rows",
        List.init 10 (fun i ->
            Value.record
              [ ("a", Value.Int i);
                ("b", Value.Int (i mod 5));
                ("c", Value.Bool true) ]) ) ]
  in
  Alcotest.(check bool) "schema fingerprints differ" true
    (Session.schema_of_tables t1 <> Session.schema_of_tables t2);
  with_session rt @@ fun s ->
  let _, i1 = Session.submit s sum_prog ~tables:t1 in
  let _, i2 = Session.submit s sum_prog ~tables:t2 in
  let _, i3 = Session.submit s sum_prog ~tables:t1 in
  Alcotest.check cache_status "cold" Session.Miss i1.Session.si_cache;
  Alcotest.check cache_status "same plan, new schema misses" Session.Miss
    i2.Session.si_cache;
  Alcotest.check cache_status "original schema still cached" Session.Hit
    i3.Session.si_cache;
  (* same shape, fresh data: still a hit *)
  let _, i4 = Session.submit s sum_prog ~tables:[ ("rows", rows 33) ] in
  Alcotest.check cache_status "same shape over fresh rows hits" Session.Hit
    i4.Session.si_cache

let test_owned_pool_lifecycle () =
  let config = Config.with_domains (Some 2) Config.default in
  let s = Session.create ~config rt in
  let cfg = Session.config s in
  Alcotest.(check bool) "resolved config pins a pool" true (cfg.Config.pool <> None);
  let o, _ = Session.submit s sum_prog ~tables:[ ("rows", rows 20) ] in
  ignore (finished o);
  Session.close s;
  Alcotest.(check pass) "close released the owned pool" () ()

let test_run_on_shim_equivalence () =
  (* the deprecated per-knob shim and the Config path produce identical
     outcomes *)
  let tables = [ ("rows", rows 40) ] in
  let algo = Emma.parallelize sum_prog in
  let via_knobs = Emma.run_on_exn ~udf_mode:Emma.Engine.Interp rt algo ~tables in
  let via_config =
    Emma.run_on_exn
      ~config:(Config.with_udf_mode Config.Interp Config.default)
      rt algo ~tables
  in
  Helpers.check_value "values equal" via_knobs.Emma.value via_config.Emma.value;
  Alcotest.(check (float 0.0)) "cost-model time equal"
    via_knobs.Emma.metrics.Metrics.sim_time_s
    via_config.Emma.metrics.Metrics.sim_time_s;
  Alcotest.(check int) "udf invocations equal"
    via_knobs.Emma.metrics.Metrics.udf_invocations
    via_config.Emma.metrics.Metrics.udf_invocations

let terminal_instants tracer =
  List.filter
    (fun (e : Trace.event) ->
      e.Trace.ev_name = "query_terminal" && e.Trace.ev_cat = "session")
    (Trace.events tracer)

let status_of (e : Trace.event) =
  match List.assoc_opt "status" e.Trace.ev_args with
  | Some (Trace.A_str s) -> s
  | _ -> "?"

let test_timeout_keeps_linkage () =
  let tracer = Trace.create ~clock:(fun () -> 0.0) () in
  let config = Config.with_trace (Some tracer) Config.default in
  let rt =
    Emma.spark
      ~cluster:(Cluster.paper_cluster ~data_scale:1e6 ())
      ~timeout_s:0.5 ()
  in
  with_session ~config rt @@ fun s ->
  let o, _ = Session.submit s sum_prog ~tables:[ ("rows", rows 300) ] in
  (match o with
  | Emma.Timed_out { at_s; metrics } ->
      Alcotest.(check bool) "clock past limit" true (at_s > 0.5);
      Alcotest.(check bool) "partial metrics surfaced" true
        (metrics.Metrics.sim_time_s >= 0.0);
      Alcotest.(check int) "cache counters stamped on timeout" 1
        (metrics.Metrics.plan_cache_misses)
  | _ -> Alcotest.fail "expected a timeout");
  match terminal_instants tracer with
  | [ e ] -> Alcotest.(check string) "terminal instant status" "timed_out" (status_of e)
  | l -> Alcotest.failf "expected exactly one terminal instant, got %d" (List.length l)

(* a grouping program reserves per-key state, so a budget far below its
   peak OOM-fails even after the retry ladder (no spilling) *)
let group_prog =
  S.program
    ~ret:S.(count (var "d"))
    [ S.s_let "d"
        S.(
          for_
            [ gen "g" (group_by (lam "x" (fun x -> field x "b")) (read "rows")) ]
            ~yield:
              (record
                 [ ( "a",
                     sum
                       (map (lam "x" (fun x -> field x "a")) (field (var "g") "values"))
                   );
                   ("b", field (var "g") "key") ])) ]

let test_failure_keeps_linkage () =
  let unbounded = Emma.run_on_exn rt (Emma.parallelize group_prog)
      ~tables:[ ("rows", rows 200) ] in
  let peak = unbounded.Emma.metrics.Metrics.mem_peak_bytes in
  let tracer = Trace.create ~clock:(fun () -> 0.0) () in
  let config =
    Config.default
    |> Config.with_trace (Some tracer)
    |> Config.with_mem_budget (Some (0.4 *. peak)) (* below the retry ladder *)
  in
  with_session ~config rt @@ fun s ->
  let o, _ = Session.submit s group_prog ~tables:[ ("rows", rows 200) ] in
  (match o with
  | Emma.Failed { reason; metrics } ->
      Alcotest.(check bool) "reason is non-empty" true (String.length reason > 0);
      Alcotest.(check bool) "partial metrics surfaced" true
        (metrics.Metrics.sim_time_s >= 0.0);
      Alcotest.(check int) "cache counters stamped on failure" 1
        metrics.Metrics.plan_cache_misses
  | Emma.Finished _ -> Alcotest.fail "expected an OOM failure"
  | Emma.Timed_out _ -> Alcotest.fail "expected a failure, not a timeout"
  | Emma.Cancelled _ -> Alcotest.fail "expected a failure, not a cancellation");
  match terminal_instants tracer with
  | [ e ] -> Alcotest.(check string) "terminal instant status" "failed" (status_of e)
  | l -> Alcotest.failf "expected exactly one terminal instant, got %d" (List.length l)

let test_finished_emits_terminal () =
  let tracer = Trace.create ~clock:(fun () -> 0.0) () in
  let config = Config.with_trace (Some tracer) Config.default in
  with_session ~config rt @@ fun s ->
  let o, _ = Session.submit s sum_prog ~tables:[ ("rows", rows 10) ] in
  ignore (finished o);
  match terminal_instants tracer with
  | [ e ] -> Alcotest.(check string) "terminal instant status" "finished" (status_of e)
  | l -> Alcotest.failf "expected exactly one terminal instant, got %d" (List.length l)

(* ---------------------------------------------------------------- *)
(* Cancellation: token, per-query deadline, and their classification *)
(* ---------------------------------------------------------------- *)

let test_cancel_token () =
  let tracer = Trace.create ~clock:(fun () -> 0.0) () in
  let config = Config.with_trace (Some tracer) Config.default in
  with_session ~config rt @@ fun s ->
  let cancel = Emma.Cancel.create () in
  Emma.Cancel.request ~reason:"tenant went away" cancel;
  let o, _ = Session.submit ~cancel s sum_prog ~tables:[ ("rows", rows 200) ] in
  (match o with
  | Emma.Cancelled { at_s; reason; metrics } ->
      Alcotest.(check string) "reason is the request reason" "tenant went away"
        reason;
      Alcotest.(check (float 0.0)) "at_s is the metrics clock"
        metrics.Metrics.sim_time_s at_s;
      Alcotest.(check int) "cancellation counted" 1
        metrics.Metrics.cancellations;
      Alcotest.(check int) "cache counters stamped on cancel" 1
        metrics.Metrics.plan_cache_misses
  | _ -> Alcotest.fail "expected a cancelled outcome");
  match terminal_instants tracer with
  | [ e ] -> Alcotest.(check string) "terminal instant status" "cancelled" (status_of e)
  | l -> Alcotest.failf "expected exactly one terminal instant, got %d" (List.length l)

let test_deadline_cancels () =
  let rt_big =
    Emma.spark ~cluster:(Cluster.paper_cluster ~data_scale:1e6 ()) ~timeout_s:3600.0 ()
  in
  with_session rt_big @@ fun s ->
  let config = Config.with_deadline_s (Some 0.5) Config.default in
  let o, _ = Session.submit ~config s sum_prog ~tables:[ ("rows", rows 300) ] in
  match o with
  | Emma.Cancelled { at_s; reason; metrics } ->
      Alcotest.(check bool) "clock past the deadline" true (at_s > 0.5);
      Alcotest.(check bool) "reason names the deadline" true
        (String.length reason > 0
        && String.sub reason 0 (min 8 (String.length reason)) = "deadline");
      Alcotest.(check int) "cancellation counted" 1 metrics.Metrics.cancellations
  | _ -> Alcotest.fail "expected the deadline to cancel the query"

let test_timeout_conflict_rejected () =
  (* one validated source of truth: runtime knob and Config may not disagree *)
  let rt10 = Emma.spark ~timeout_s:10.0 () in
  let conflicting = Config.with_timeout_s (Some 20.0) Config.default in
  (match Session.create ~config:conflicting rt10 with
  | exception Invalid_argument msg ->
      Alcotest.(check bool) "error names both values" true
        (String.length msg > 0)
  | s ->
      Session.close s;
      Alcotest.fail "conflicting timeouts should be rejected");
  (* equal values are fine, and either side alone wins *)
  let agreeing = Config.with_timeout_s (Some 10.0) Config.default in
  let s = Session.create ~config:agreeing rt10 in
  Alcotest.(check (option (float 0.0))) "agreeing timeout resolves"
    (Some 10.0) (Session.config s).Config.timeout_s;
  Session.close s;
  let s = Session.create ~config:(Config.with_timeout_s (Some 7.0) Config.default)
      (Emma.spark ()) in
  Alcotest.(check (option (float 0.0))) "config-only timeout wins"
    (Some 7.0) (Session.config s).Config.timeout_s;
  Session.close s;
  let s = Session.create rt10 in
  Alcotest.(check (option (float 0.0))) "runtime-only timeout wins"
    (Some 10.0) (Session.config s).Config.timeout_s;
  Session.close s

let test_would_hit_is_uncounted () =
  with_session ~config:(Config.with_plan_cache (Some 4) Config.default) rt
  @@ fun s ->
  let tables = [ ("rows", rows 20) ] in
  Alcotest.(check bool) "cold cache: no hit" false
    (Session.would_hit s sum_prog ~tables);
  let _ = Session.submit s sum_prog ~tables in
  Alcotest.(check bool) "after a submit: would hit" true
    (Session.would_hit s sum_prog ~tables);
  (* peeking never moves the counted stats *)
  let before = Session.plan_cache_stats s in
  for _ = 1 to 5 do
    ignore (Session.would_hit s sum_prog ~tables)
  done;
  Alcotest.(check bool) "peeks left stats untouched" true
    (Session.plan_cache_stats s = before);
  (* an uncached session never would-hits *)
  with_session ~config:(Config.with_plan_cache None Config.default) rt
  @@ fun s2 ->
  ignore (Session.submit s2 sum_prog ~tables);
  Alcotest.(check bool) "uncached session: never" false
    (Session.would_hit s2 sum_prog ~tables)

(* exec.mli documents that [timeout_s] fires mid-recovery: recovery
   charges (retry backoff) flow through the same clock the timeout
   watches. Classified-outcome version of the raw-engine test in
   test_faults.ml: the session surfaces Timed_out with the partial
   metrics proving retries had already started. *)
let loop_prog iters =
  S.program
    ~ret:(S.var "acc")
    [ S.s_let "xs" S.(map (lam "x" (fun x -> field x "a")) (read "rows"));
      S.s_var "acc" (S.int_ 0);
      S.s_var "i" (S.int_ 0);
      S.while_
        S.(var "i" < int_ iters)
        [ S.assign "acc" S.(var "acc" + sum (var "xs"));
          S.assign "i" S.(var "i" + int_ 1) ] ]

let test_timeout_mid_recovery_classified () =
  let slow_retries =
    let l = Cluster.laptop () in
    { l with
      Cluster.recovery =
        { l.Cluster.recovery with Cluster.retry_backoff_s = 30.0 } }
  in
  let rt = { (Emma.spark ()) with Emma.Session.cluster = slow_retries } in
  let tables = [ ("rows", rows 20) ] in
  let storm =
    Emma.Faults.scripted
      (List.init 8 (fun part ->
           Emma.Faults.Task_fail { barrier = 1; part; attempts = 3 }))
  in
  let tracer = Trace.create ~clock:(fun () -> 0.0) () in
  (* clean run prices the deadline; the storm must blow past it *)
  let m_clean =
    with_session rt @@ fun s ->
    let o, _ = Session.submit s (loop_prog 3) ~tables in
    (finished o).Emma.metrics
  in
  let deadline = m_clean.Metrics.sim_time_s +. 10.0 in
  let config =
    Config.default
    |> Config.with_faults storm
    |> Config.with_timeout_s (Some deadline)
    |> Config.with_trace (Some tracer)
  in
  with_session ~config rt @@ fun s ->
  let o, _ = Session.submit s (loop_prog 3) ~tables in
  (match o with
  | Emma.Timed_out { at_s; metrics } ->
      Alcotest.(check bool) "aborted past the deadline" true (at_s >= deadline);
      Alcotest.(check bool) "retries had started: timeout landed mid-recovery"
        true (metrics.Metrics.retries > 0);
      Alcotest.(check (float 0.0)) "at_s is the metrics clock"
        metrics.Metrics.sim_time_s at_s
  | _ -> Alcotest.fail "retry storm should have hit the timeout");
  match terminal_instants tracer with
  | [ e ] -> Alcotest.(check string) "terminal instant status" "timed_out" (status_of e)
  | l -> Alcotest.failf "expected exactly one terminal instant, got %d" (List.length l)

let suite =
  [ ( "session",
      [ Alcotest.test_case "submit: miss then hit, metrics stamped" `Quick
          test_miss_then_hit;
        Alcotest.test_case "uncached session never hits" `Quick test_uncached_session;
        Alcotest.test_case "schema change misses, same shape hits" `Quick
          test_schema_sensitivity;
        Alcotest.test_case "config.domains owns a pool across close" `Quick
          test_owned_pool_lifecycle;
        Alcotest.test_case "run_on shims == Config path" `Quick
          test_run_on_shim_equivalence;
        Alcotest.test_case "timeout keeps metrics + terminal trace" `Quick
          test_timeout_keeps_linkage;
        Alcotest.test_case "failure keeps metrics + terminal trace" `Quick
          test_failure_keeps_linkage;
        Alcotest.test_case "finished queries emit the terminal instant" `Quick
          test_finished_emits_terminal;
        Alcotest.test_case "cancel token classifies + keeps linkage" `Quick
          test_cancel_token;
        Alcotest.test_case "deadline_s cancels with the budget reason" `Quick
          test_deadline_cancels;
        Alcotest.test_case "conflicting timeouts are rejected" `Quick
          test_timeout_conflict_rejected;
        Alcotest.test_case "would_hit peeks without counting" `Quick
          test_would_hit_is_uncounted;
        Alcotest.test_case "timeout mid-recovery is classified" `Quick
          test_timeout_mid_recovery_classified ] ) ]
