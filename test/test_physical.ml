(* Statement inlining and the physical passes in isolation. *)

module Expr = Emma_lang.Expr
module S = Emma_lang.Surface
module P = Emma_dataflow.Plan
module Cprog = Emma_dataflow.Cprog
module Sinline = Emma_compiler.Sinline
module Physical = Emma_compiler.Physical
module Translate = Emma_compiler.Translate
module Normalize = Emma_comp.Normalize

(* ---- statement inlining --------------------------------------------- *)

let count_lets prog = List.length (List.filter (function Expr.SLet _ -> true | _ -> false) prog.Expr.body)

let test_single_use_inlined () =
  let prog =
    S.program
      ~ret:S.unit_
      [ S.s_let "a" S.(map (lam "x" (fun x -> x)) (read "t"));
        S.s_let "b" S.(count (var "a"));
        S.write "out" S.(bag_of [ var "b" ]) ]
  in
  let inlined = Sinline.program prog in
  Alcotest.(check int) "both vals inlined" 0 (count_lets inlined)

let test_multi_use_kept () =
  let prog =
    S.program
      ~ret:S.(count (var "a") + count (var "a"))
      [ S.s_let "a" S.(map (lam "x" (fun x -> x)) (read "t")) ]
  in
  Alcotest.(check int) "multi-use binding kept" 1 (count_lets (Sinline.program prog))

let test_use_in_loop_not_inlined () =
  let prog =
    S.program
      ~ret:S.unit_
      [ S.s_let "a" S.(map (lam "x" (fun x -> x)) (read "t"));
        S.s_var "i" (S.int_ 0);
        S.while_
          S.(var "i" < int_ 2)
          [ S.s_let "c" S.(count (var "a")); S.assign "i" S.(var "i" + int_ 1) ] ]
  in
  (* inlining would move the map into the loop: must not happen *)
  Alcotest.(check int) "loop-crossing binding kept" 1 (count_lets (Sinline.program prog))

let test_scalar_rhs_not_inlined () =
  let prog =
    S.program ~ret:S.(var "k" + var "k") [ S.s_let "k" S.(int_ 1 + int_ 2) ]
  in
  (* scalar arithmetic is not a comprehended RHS: left in place *)
  Alcotest.(check int) "scalar binding kept" 1 (count_lets (Sinline.program prog))

let test_stateful_rhs_never_inlined () =
  let prog =
    S.program
      ~ret:S.unit_
      [ S.s_let "st" (S.stateful ~key:(S.lam "x" (fun x -> S.field x "id")) (S.read "t"));
        S.s_let "d" (S.update (S.var "st") (S.lam "x" (fun _ -> S.none_)));
        S.write "out" (S.var "d") ]
  in
  let inlined = Sinline.program prog in
  Alcotest.(check int) "stateful update binding kept" 2 (count_lets inlined)

(* ---- caching ---------------------------------------------------------- *)

let compile_nophys prog =
  Translate.program (Normalize.program (Sinline.program prog))

let has_cache prog_c =
  let found = ref false in
  Cprog.iter_plans
    (fun p -> P.fold_plan (fun () -> function P.Cache _ -> found := true | _ -> ()) () p)
    prog_c;
  !found

let test_cache_single_use_not_inserted () =
  let prog =
    S.program ~ret:S.(count (var "a"))
      [ S.s_var "a" S.(map (lam "x" (fun x -> x)) (read "t")) ]
  in
  let c = compile_nophys prog in
  let c', cached = Physical.insert_caching c in
  Alcotest.(check (list string)) "nothing cached" [] cached;
  Alcotest.(check bool) "no cache node" false (has_cache c')

let test_cache_loop_use_inserted () =
  let prog =
    S.program ~ret:S.unit_
      [ S.s_var "a" S.(map (lam "x" (fun x -> x)) (read "t"));
        S.s_var "i" (S.int_ 0);
        S.while_
          S.(var "i" < int_ 2)
          [ S.s_var "c" S.(count (var "a")); S.assign "i" S.(var "i" + int_ 1) ] ]
  in
  let c = compile_nophys prog in
  let c', cached = Physical.insert_caching c in
  Alcotest.(check (list string)) "a cached" [ "a" ] cached;
  Alcotest.(check bool) "cache node present" true (has_cache c')

let test_cache_broadcast_ref_counts () =
  (* a bag referenced only from inside UDFs (broadcast) still counts *)
  let prog =
    S.program ~ret:S.unit_
      [ S.s_var "small" S.(map (lam "x" (fun x -> x)) (read "s"));
        S.s_var "r1"
          S.(count (map (lam "x" (fun x -> tup [ x; count (var "small") ])) (read "t")));
        S.s_var "r2"
          S.(count (map (lam "x" (fun x -> tup [ x; count (var "small") ])) (read "t"))) ]
  in
  let _, cached = Physical.insert_caching (compile_nophys prog) in
  Alcotest.(check bool) "broadcast-only references trigger caching" true
    (List.mem "small" cached)

(* ---- partition pulling ------------------------------------------------ *)

let test_partition_pull_loop_invariant () =
  let prog =
    S.program ~ret:S.unit_
      [ S.s_let "xs" S.(map (lam "x" (fun x -> x)) (read "t1"));
        S.s_var "i" (S.int_ 0);
        S.while_
          S.(var "i" < int_ 2)
          [ S.s_let "j"
              S.(
                count
                  (for_
                     [ gen "a" (var "xs");
                       gen "b" (read "t2");
                       when_ (field (var "a") "k" = field (var "b") "k") ]
                     ~yield:(var "a")));
            S.assign "i" S.(var "i" + int_ 1) ] ]
  in
  let c = compile_nophys prog in
  let _, pulled = Physical.partition_pulling c in
  Alcotest.(check (list string)) "xs gets the join partitioning" [ "xs" ] pulled

let test_partition_pull_skips_reassigned () =
  let prog =
    S.program ~ret:S.unit_
      [ S.s_var "xs" S.(map (lam "x" (fun x -> x)) (read "t1"));
        S.s_var "i" (S.int_ 0);
        S.while_
          S.(var "i" < int_ 2)
          [ S.s_let "j"
              S.(
                count
                  (for_
                     [ gen "a" (var "xs");
                       gen "b" (read "t2");
                       when_ (field (var "a") "k" = field (var "b") "k") ]
                     ~yield:(var "a")));
            S.assign "xs" S.(map (lam "x" (fun x -> x)) (read "t1"));
            S.assign "i" S.(var "i" + int_ 1) ] ]
  in
  let _, pulled = Physical.partition_pulling (compile_nophys prog) in
  Alcotest.(check (list string)) "loop-variant binding not pulled" [] pulled

let test_partition_key_through_filter () =
  (* the key traces through a filter down to the scan *)
  let prog =
    S.program ~ret:S.unit_
      [ S.s_let "xs" S.(map (lam "x" (fun x -> x)) (read "t1"));
        S.s_var "i" (S.int_ 0);
        S.while_
          S.(var "i" < int_ 2)
          [ S.s_let "j"
              S.(
                count
                  (for_
                     [ gen "a" (var "xs");
                       when_ (field (var "a") "v" > int_ 0);
                       gen "b" (read "t2");
                       when_ (field (var "a") "k" = field (var "b") "k") ]
                     ~yield:(var "a")));
            S.assign "i" S.(var "i" + int_ 1) ] ]
  in
  let _, pulled = Physical.partition_pulling (compile_nophys prog) in
  Alcotest.(check (list string)) "traced through the filter" [ "xs" ] pulled

(* ---- broadcast annotation --------------------------------------------- *)

let test_broadcast_annotation_on_program () =
  let prog =
    S.program ~ret:S.unit_
      [ S.s_let "c" (S.read "centroids");
        S.s_var "r" S.(count (map (lam "x" (fun x -> tup [ x; count (var "c") ])) (read "t"))) ]
  in
  let c = Physical.annotate_broadcasts (compile_nophys prog) in
  let bcs = ref [] in
  Cprog.iter_plans (fun p -> bcs := P.broadcast_vars p @ !bcs) c;
  Alcotest.(check bool) "c is a broadcast variable" true (List.mem "c" !bcs)

let suite =
  [ ( "sinline",
      [ Alcotest.test_case "single use inlined" `Quick test_single_use_inlined;
        Alcotest.test_case "multi use kept" `Quick test_multi_use_kept;
        Alcotest.test_case "loop use not inlined" `Quick test_use_in_loop_not_inlined;
        Alcotest.test_case "scalar rhs kept" `Quick test_scalar_rhs_not_inlined;
        Alcotest.test_case "stateful rhs kept" `Quick test_stateful_rhs_never_inlined ] );
    ( "physical",
      [ Alcotest.test_case "no cache for single use" `Quick test_cache_single_use_not_inserted;
        Alcotest.test_case "cache for loop use" `Quick test_cache_loop_use_inserted;
        Alcotest.test_case "broadcast refs count" `Quick test_cache_broadcast_ref_counts;
        Alcotest.test_case "pull loop-invariant" `Quick test_partition_pull_loop_invariant;
        Alcotest.test_case "skip reassigned" `Quick test_partition_pull_skips_reassigned;
        Alcotest.test_case "trace through filter" `Quick test_partition_key_through_filter;
        Alcotest.test_case "broadcast annotation" `Quick test_broadcast_annotation_on_program
      ] ) ]
