module Value = Emma_value.Value
module Csv = Emma_io.Csv
open Helpers

let sample_rows =
  [ Value.record
      [ ("id", Value.Int 1);
        ("name", Value.String "plain");
        ("score", Value.Float 1.5);
        ("ok", Value.Bool true);
        ("pos", Value.Vector [| 1.0; -2.5 |]);
        ("body", Value.blob ~bytes:1000 ~tag:7) ];
    Value.record
      [ ("id", Value.Int (-2));
        ("name", Value.String "with, comma and \"quotes\"\nand newline");
        ("score", Value.Float (-0.125));
        ("ok", Value.Bool false);
        ("pos", Value.Vector [||]);
        ("body", Value.blob ~bytes:0 ~tag:0) ] ]

let test_roundtrip () =
  let back = Csv.of_string (Csv.to_string sample_rows) in
  check_bag "round trip" sample_rows back

let test_header_format () =
  let s = Csv.to_string sample_rows in
  let header = List.hd (String.split_on_char '\n' s) in
  Alcotest.(check string) "typed header"
    "id:int,name:string,score:float,ok:bool,pos:vector,body:blob" header

let test_unsupported () =
  let expect_unsupported rows =
    match Csv.to_string rows with
    | exception Csv.Unsupported _ -> ()
    | _ -> Alcotest.fail "expected Unsupported"
  in
  expect_unsupported [];
  expect_unsupported [ Value.Int 1 ];
  expect_unsupported [ Value.record [ ("xs", Value.bag [ Value.Int 1 ]) ] ]

let test_parse_errors () =
  let expect_error s =
    match Csv.of_string s with
    | exception Csv.Parse_error _ -> ()
    | _ -> Alcotest.failf "expected Parse_error on %S" s
  in
  expect_error "";
  expect_error "a\n1\n";
  (* no :type *)
  expect_error "a:int\nnotanint\n";
  expect_error "a:int,b:int\n1\n";
  (* wrong arity *)
  expect_error "a:string\n\"unterminated\n"

let test_files_and_dirs () =
  let dir = Filename.temp_file "emma_csv" "" in
  Sys.remove dir;
  let t1 = [ Value.record [ ("k", Value.Int 1) ]; Value.record [ ("k", Value.Int 2) ] ] in
  let t2 = [ Value.record [ ("v", Value.Float 0.5) ] ] in
  Csv.write_tables ~dir [ ("alpha", t1); ("beta", t2) ];
  let tables = Csv.read_tables ~dir in
  Alcotest.(check (list string)) "table names" [ "alpha"; "beta" ] (List.map fst tables);
  check_bag "alpha" t1 (List.assoc "alpha" tables);
  check_bag "beta" t2 (List.assoc "beta" tables);
  (* cleanup *)
  Array.iter (fun f -> Sys.remove (Filename.concat dir f)) (Sys.readdir dir);
  Sys.rmdir dir

let test_workload_roundtrip () =
  (* generated workloads survive the CSV round trip *)
  let cfg = Emma_workloads.Tpch_gen.of_scale_factor 0.0001 in
  let lineitem = Emma_workloads.Tpch_gen.lineitem ~seed:1 cfg in
  check_bag "tpch lineitem" lineitem (Csv.of_string (Csv.to_string lineitem));
  let emails =
    Emma_workloads.Email_gen.emails ~seed:1
      (Emma_workloads.Email_gen.paper_config ~physical_emails:20)
  in
  check_bag "emails (blob bodies)" emails (Csv.of_string (Csv.to_string emails))

let scalar_record_gen =
  QCheck2.Gen.(
    list_size (int_range 1 8)
      (map2
         (fun i s ->
           Value.record
             [ ("i", Value.Int i);
               ("s", Value.String s);
               ("f", Value.Float (float_of_int i /. 3.0)) ])
         (int_range (-1000) 1000)
         (string_size ~gen:(oneofl [ 'a'; ','; '"'; '\n'; 'z' ]) (int_bound 6))))

let prop_roundtrip =
  Helpers.qcheck_case "csv round trip on adversarial strings" ~count:100 scalar_record_gen
    (fun rows ->
      let back = Csv.of_string (Csv.to_string rows) in
      Value.equal (Value.bag rows) (Value.bag back))

let suite =
  [ ( "csv",
      [ Alcotest.test_case "round trip" `Quick test_roundtrip;
        Alcotest.test_case "typed header" `Quick test_header_format;
        Alcotest.test_case "unsupported shapes" `Quick test_unsupported;
        Alcotest.test_case "parse errors" `Quick test_parse_errors;
        Alcotest.test_case "files and directories" `Quick test_files_and_dirs;
        Alcotest.test_case "workload round trip" `Quick test_workload_roundtrip;
        prop_roundtrip ] ) ]
