(* Metrics rendering and the machine-readable report path.

   to_rows/pp formatting is pinned (fixed precisions; OCaml's Printf
   always uses the C locale's dot decimal point), so the rendered rows
   are byte-stable across hosts — these tests pin the exact strings.
   to_json round-trips through the strict Json parser, and the Chrome
   escaper is exercised on adversarial strings. *)

module Metrics = Emma_engine.Metrics
module Json = Emma_util.Json

let sample () =
  let m = Metrics.create () in
  m.Metrics.sim_time_s <- 123.456;
  m.Metrics.shuffle_bytes <- 1.5e9;
  m.Metrics.broadcast_bytes <- 2048.0;
  m.Metrics.dfs_read_bytes <- 3.0e6;
  m.Metrics.dfs_write_bytes <- 999.0;
  m.Metrics.collect_bytes <- 1.0e12;
  m.Metrics.parallelize_bytes <- 0.0;
  m.Metrics.spilled_bytes <- 12345.0;
  m.Metrics.jobs <- 3;
  m.Metrics.stages <- 14;
  m.Metrics.recomputes <- 2;
  m.Metrics.cache_hits <- 5;
  m.Metrics.cache_losses <- 1;
  m.Metrics.udf_invocations <- 4242;
  m.Metrics.wall_time_s <- 0.1234567;
  m.Metrics.par_stages <- 9;
  m.Metrics.par_tasks <- 2880;
  m.Metrics.retries <- 7;
  m.Metrics.fetch_failures <- 3;
  m.Metrics.executor_losses <- 1;
  m.Metrics.blacklisted_nodes <- 2;
  m.Metrics.recomputed_partitions <- 320;
  m.Metrics.speculative_launches <- 6;
  m.Metrics.speculative_wins <- 4;
  m.Metrics.checkpoints <- 5;
  m.Metrics.checkpoint_bytes <- 4.5e6;
  m.Metrics.loop_restores <- 2;
  m.Metrics.mem_peak_bytes <- 6.4e7;
  m.Metrics.mem_spills <- 11;
  m.Metrics.mem_spill_bytes <- 2.5e9;
  m.Metrics.oom_kills <- 3;
  m.Metrics.cache_evictions <- 8;
  m.Metrics.evicted_bytes <- 1024.0;
  m.Metrics.jobs_queued <- 4;
  m.Metrics.queue_wait_s <- 4.26;
  m.Metrics.checkpoint_corruptions <- 1;
  m.Metrics.plan_cache_hits <- 9;
  m.Metrics.plan_cache_misses <- 2;
  m.Metrics.plan_cache_evictions <- 1;
  m.Metrics.wal_appends <- 12;
  m.Metrics.wal_bytes <- 2560.0;
  m.Metrics.wal_fsyncs <- 6;
  m.Metrics.recovery_replayed <- 1;
  m

let test_to_rows_pinned () =
  let rows = Metrics.to_rows (sample ()) in
  let check k v = Alcotest.(check (option string)) k (Some v) (List.assoc_opt k rows) in
  check "sim time" "123.5 s";
  check "shuffled" "1.50 GB";
  check "broadcast" "2.05 KB";
  check "dfs read" "3.00 MB";
  check "dfs write" "999 B";
  check "collected" "1.00 TB";
  check "jobs" "3";
  (* wall time is pinned at %.6f — six fractional digits, dot separator *)
  check "wall time" "0.123457 s";
  check "par tasks" "2880";
  check "retries" "7";
  check "fetch failures" "3";
  check "executor losses" "1";
  check "blacklisted" "2";
  check "recomputed parts" "320";
  check "spec launches" "6";
  check "spec wins" "4";
  check "checkpoints" "5";
  check "checkpoint bytes" "4.50 MB";
  check "loop restores" "2";
  check "mem peak" "64.00 MB";
  check "mem spills" "11";
  check "oom kills" "3";
  check "cache evictions" "8";
  check "evicted bytes" "1.02 KB";
  check "jobs queued" "4";
  check "queue wait" "4.3 s";
  check "ckpt corruptions" "1";
  check "plan hits" "9";
  check "plan misses" "2";
  check "plan evictions" "1";
  check "wal appends" "12";
  check "wal bytes" "2.56 KB";
  check "wal fsyncs" "6";
  check "recovery replayed" "1"

let test_pp_renders_rows () =
  let s = Format.asprintf "%a" Metrics.pp (sample ()) in
  List.iter
    (fun needle ->
      Alcotest.(check bool) ("pp mentions " ^ needle) true
        (Test_explain.contains s needle))
    [ "sim time"; "123.5 s"; "wall time"; "0.123457 s" ]

let test_to_json_roundtrip () =
  let m = sample () in
  match Json.parse (Metrics.to_json_string m) with
  | Error e -> Alcotest.failf "report JSON does not parse: %s" e
  | Ok j ->
      let num k =
        match Json.member k j with
        | Some (Json.Float f) -> f
        | Some (Json.Int i) -> float_of_int i
        | _ -> Alcotest.failf "field %s missing" k
      in
      Alcotest.(check (float 1e-6)) "sim_time_s" 123.456 (num "sim_time_s");
      Alcotest.(check (float 0.0)) "shuffle_bytes" 1.5e9 (num "shuffle_bytes");
      Alcotest.(check (float 0.0)) "jobs" 3.0 (num "jobs");
      Alcotest.(check (float 0.0)) "udf_invocations" 4242.0 (num "udf_invocations");
      Alcotest.(check (float 1e-6)) "wall_time_s" 0.123457 (num "wall_time_s");
      Alcotest.(check (float 0.0)) "retries" 7.0 (num "retries");
      Alcotest.(check (float 0.0)) "executor_losses" 1.0 (num "executor_losses");
      Alcotest.(check (float 0.0)) "recomputed_partitions" 320.0
        (num "recomputed_partitions");
      Alcotest.(check (float 0.0)) "speculative_wins" 4.0 (num "speculative_wins");
      Alcotest.(check (float 1e-6)) "checkpoint_bytes" 4.5e6 (num "checkpoint_bytes");
      Alcotest.(check (float 0.0)) "loop_restores" 2.0 (num "loop_restores");
      Alcotest.(check (float 0.0)) "mem_peak_bytes" 6.4e7 (num "mem_peak_bytes");
      Alcotest.(check (float 0.0)) "mem_spills" 11.0 (num "mem_spills");
      Alcotest.(check (float 0.0)) "oom_kills" 3.0 (num "oom_kills");
      Alcotest.(check (float 0.0)) "cache_evictions" 8.0 (num "cache_evictions");
      Alcotest.(check (float 1e-6)) "queue_wait_s" 4.26 (num "queue_wait_s");
      Alcotest.(check (float 0.0)) "checkpoint_corruptions" 1.0
        (num "checkpoint_corruptions");
      Alcotest.(check (float 0.0)) "plan_cache_hits" 9.0 (num "plan_cache_hits");
      Alcotest.(check (float 0.0)) "plan_cache_misses" 2.0 (num "plan_cache_misses");
      Alcotest.(check (float 0.0)) "plan_cache_evictions" 1.0
        (num "plan_cache_evictions");
      Alcotest.(check (float 0.0)) "wal_appends" 12.0 (num "wal_appends");
      Alcotest.(check (float 0.0)) "wal_bytes" 2560.0 (num "wal_bytes");
      Alcotest.(check (float 0.0)) "wal_fsyncs" 6.0 (num "wal_fsyncs");
      Alcotest.(check (float 0.0)) "recovery_replayed" 1.0
        (num "recovery_replayed")

let test_json_float_pinned () =
  Alcotest.(check string) "floats render %.6f" "[0.100000,123.456700]"
    (Json.to_string (Json.List [ Json.Float 0.1; Json.Float 123.4567 ]));
  Alcotest.(check string) "non-finite floats render null" "[null,null]"
    (Json.to_string (Json.List [ Json.Float nan; Json.Float infinity ]))

(* ---------------------------------------------------------------- *)
(* The escaper under adversarial strings                              *)
(* ---------------------------------------------------------------- *)

let adversarial =
  [ {|plain|};
    {|with "quotes" inside|};
    "back\\slash and \"quote\"";
    "newline\nand\ttab\rand\bback\012feed";
    "control \001\002\031 chars";
    "unicode: héllo wörld — ∑ 日本語";
    "" ]

let test_escape_roundtrip () =
  List.iter
    (fun s ->
      let doc = Json.to_string (Json.Str s) in
      Alcotest.(check bool) ("valid: " ^ String.escaped s) true (Json.is_valid doc);
      match Json.parse doc with
      | Ok (Json.Str s') ->
          Alcotest.(check string) ("round-trip: " ^ String.escaped s) s s'
      | Ok _ -> Alcotest.fail "parsed to non-string"
      | Error e -> Alcotest.failf "parse failed on %s: %s" (String.escaped s) e)
    adversarial

let test_escape_exact () =
  Alcotest.(check string) "quote" {|\"|} (Json.escape {|"|});
  Alcotest.(check string) "backslash" {|\\|} (Json.escape {|\|});
  Alcotest.(check string) "newline" {|\n|} (Json.escape "\n");
  Alcotest.(check string) "tab" {|\t|} (Json.escape "\t");
  Alcotest.(check string) "nul" {|\u0000|} (Json.escape "\000");
  Alcotest.(check string) "utf8 passes through" "é" (Json.escape "é")

let test_parse_rejects_garbage () =
  List.iter
    (fun s ->
      match Json.parse s with
      | Ok _ -> Alcotest.failf "parser accepted %S" s
      | Error _ -> ())
    [ ""; "{"; "[1,]"; {|{"a":}|}; "1 2"; {|"unterminated|}; "\"raw\nnewline\"" ]

let suite =
  [ ( "metrics",
      [ Alcotest.test_case "to_rows formatting pinned" `Quick test_to_rows_pinned;
        Alcotest.test_case "pp renders the rows" `Quick test_pp_renders_rows;
        Alcotest.test_case "to_json round-trips" `Quick test_to_json_roundtrip;
        Alcotest.test_case "json floats pinned %.6f" `Quick test_json_float_pinned;
        Alcotest.test_case "escape round-trips adversarial strings" `Quick
          test_escape_roundtrip;
        Alcotest.test_case "escape exact forms" `Quick test_escape_exact;
        Alcotest.test_case "parser rejects malformed input" `Quick
          test_parse_rejects_garbage ] ) ]
