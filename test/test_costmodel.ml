(* Cost-model behaviour of the simulated engine: the qualitative effects
   the paper's figures rely on must hold by construction. *)

module Value = Emma_value.Value
module S = Emma_lang.Surface
module Pipeline = Emma_compiler.Pipeline
module Cluster = Emma_engine.Cluster
module Metrics = Emma_engine.Metrics

let run ?(profile = Cluster.spark_like) ?(cluster = Cluster.laptop ()) ?opts prog tables =
  let algo = Emma.parallelize ?opts prog in
  match Emma.run_on Emma.{ cluster; profile; timeout_s = None } algo ~tables with
  | Emma.Finished { metrics; value; _ } -> (metrics, value)
  | Emma.Failed { reason; _ } -> Alcotest.failf "engine failed: %s" reason
  | Emma.Timed_out _ -> Alcotest.fail "timed out"
  | Emma.Cancelled _ -> Alcotest.fail "cancelled"

let keyed_rows n =
  List.init n (fun i ->
      Value.record
        [ ("key", Value.Int (i mod 13));
          ("value", Value.Int i);
          ("payload", Value.blob ~bytes:100 ~tag:i) ])

let group_min_prog = Emma_programs.Group_min.program Emma_programs.Group_min.default_params

let test_fusion_cuts_shuffle () =
  let tables = [ ("dataset", keyed_rows 500) ] in
  let fused, v1 = run group_min_prog tables in
  let unfused, v2 = run ~opts:(Pipeline.with_ ~fuse:false ()) group_min_prog tables in
  Helpers.check_value "same answer" v1 v2;
  Alcotest.(check bool) "aggBy shuffles far less than groupBy" true
    (fused.Metrics.shuffle_bytes *. 5.0 < unfused.Metrics.shuffle_bytes);
  Alcotest.(check bool) "and is not slower" true
    (fused.Metrics.sim_time_s <= unfused.Metrics.sim_time_s +. 1e-9)

let join_prog =
  S.program
    ~ret:
      S.(
        count
          (for_
             [ gen "x" (read "big");
               gen "y" (read "small");
               when_ (field (var "x") "key" = field (var "y") "key") ]
             ~yield:(tup [ var "x"; var "y" ])))
    []

let test_join_strategy_by_size () =
  (* small build side under the threshold: broadcast join, no shuffle *)
  let small = keyed_rows 5 in
  let big = keyed_rows 400 in
  let m_bc, _ = run join_prog [ ("big", big); ("small", small) ] in
  Alcotest.(check bool) "broadcast join avoids shuffling the big side" true
    (m_bc.Metrics.shuffle_bytes = 0.0 && m_bc.Metrics.broadcast_bytes > 0.0);
  (* forced repartition join *)
  let cluster = { (Cluster.laptop ()) with join_strategy = Cluster.Force_repartition } in
  let m_rp, _ = run ~cluster join_prog [ ("big", big); ("small", small) ] in
  Alcotest.(check bool) "repartition join shuffles" true (m_rp.Metrics.shuffle_bytes > 0.0)

let test_jit_cost_based_choice () =
  (* above the threshold the strategy is cost-based: a side much smaller
     than the other is still broadcast when that is cheaper *)
  let cluster = { (Cluster.laptop ()) with broadcast_threshold = 1.0 } in
  let small = keyed_rows 10 in
  let big = keyed_rows 800 in
  let m, _ = run ~cluster join_prog [ ("big", big); ("small", small) ] in
  Alcotest.(check bool) "cost model picks broadcast above the threshold" true
    (m.Metrics.shuffle_bytes = 0.0 && m.Metrics.broadcast_bytes > 0.0)

let test_copartitioned_join_skips_shuffle () =
  (* two aggBy outputs keyed the same way: joining them needs no shuffle *)
  let prog =
    S.program
      ~ret:
        S.(
          count
            (for_
               [ gen "a"
                   (group_by (lam "x" (fun x -> field x "key")) (read "t1"));
                 gen "b"
                   (group_by (lam "x" (fun x -> field x "key")) (read "t2"));
                 when_ (field (var "a") "key" = field (var "b") "key") ]
               ~yield:(tup [ var "a"; var "b" ])))
      []
  in
  let cluster = { (Cluster.laptop ()) with join_strategy = Cluster.Force_repartition } in
  let m, _ = run ~cluster prog [ ("t1", keyed_rows 100); ("t2", keyed_rows 80) ] in
  (* the groupBys shuffle; the join on their outputs must not add more *)
  let m2, _ =
    run ~cluster
      (S.program
         ~ret:
           S.(
             count (group_by (lam "x" (fun x -> field x "key")) (read "t1"))
             + count (group_by (lam "x" (fun x -> field x "key")) (read "t2")))
         [])
      [ ("t1", keyed_rows 100); ("t2", keyed_rows 80) ]
  in
  Alcotest.(check bool) "join after groupBy adds no shuffle" true
    (m.Metrics.shuffle_bytes <= m2.Metrics.shuffle_bytes +. 1e-9)

let test_flink_broadcast_pricier () =
  (* same program without unnesting: the exists broadcast costs more on
     the Flink profile (its broadcast_factor), as in Fig. 4 *)
  let prog =
    S.program
      ~ret:
        S.(
          count
            (for_
               [ gen "x" (read "big");
                 when_
                   (exists
                      (lam "y" (fun y -> field y "key" = field (var "x") "key"))
                      (var "bl")) ]
               ~yield:(var "x")))
      [ S.s_let "bl" (S.read "small") ]
  in
  let opts = Pipeline.with_ ~unnest:false () in
  let tables = [ ("big", keyed_rows 200); ("small", keyed_rows 150) ] in
  let m_spark, _ = run ~opts prog tables in
  let m_flink, _ = run ~profile:Cluster.flink_like ~opts prog tables in
  Alcotest.(check bool) "flink pays more for broadcast" true
    (m_flink.Metrics.broadcast_bytes >= m_spark.Metrics.broadcast_bytes
    && m_flink.Metrics.sim_time_s > 0.0)

let loop_prog =
  S.program
    ~ret:S.(var "acc")
    [ S.s_let "xs" S.(map (lam "x" (fun x -> x)) (read "t"));
      S.s_var "acc" (S.int_ 0);
      S.s_var "i" (S.int_ 0);
      S.while_
        S.(var "i" < int_ 5)
        [ S.assign "acc" S.(var "acc" + count (var "xs"));
          S.assign "i" S.(var "i" + int_ 1) ] ]

let test_flink_cache_pays_io () =
  let tables = [ ("t", keyed_rows 300) ] in
  let m_spark, _ = run loop_prog tables in
  let m_flink, _ = run ~profile:Cluster.flink_like loop_prog tables in
  (* both cache xs; Spark's cache is free to reuse, Flink's costs DFS I/O *)
  Alcotest.(check bool) "spark cache hits" true (m_spark.Metrics.cache_hits >= 4);
  Alcotest.(check bool) "flink cache writes to DFS" true (m_flink.Metrics.dfs_write_bytes > 0.0);
  Alcotest.(check bool) "flink cache reads from DFS on reuse" true
    (m_flink.Metrics.dfs_read_bytes > m_spark.Metrics.dfs_read_bytes)

let test_timeout_enforced () =
  let algo = Emma.parallelize loop_prog in
  let rt =
    Emma.
      { cluster = Cluster.paper_cluster ~data_scale:1e6 ();
        profile = Cluster.spark_like;
        timeout_s = Some 0.5 }
  in
  match Emma.run_on rt algo ~tables:[ ("t", keyed_rows 300) ] with
  | Emma.Timed_out { at_s; _ } -> Alcotest.(check bool) "clock past limit" true (at_s > 0.5)
  | _ -> Alcotest.fail "expected a timeout"

let test_data_scale_scales_costs () =
  let prog = S.program ~ret:S.(count (read "t")) [] in
  let tables = [ ("t", keyed_rows 100) ] in
  let m1, _ = run ~cluster:(Cluster.laptop ()) prog tables in
  let m2, _ =
    run ~cluster:{ (Cluster.laptop ()) with data_scale = 1000.0 } prog tables
  in
  Alcotest.(check bool) "dfs read scales linearly" true
    (Float.abs ((m2.Metrics.dfs_read_bytes /. m1.Metrics.dfs_read_bytes) -. 1000.0) < 1.0)

let test_table_scale_override () =
  let prog = S.program ~ret:S.(count (read "t")) [] in
  let tables = [ ("t", keyed_rows 100) ] in
  let cluster =
    { (Cluster.laptop ()) with data_scale = 1000.0; table_scales = [ ("t", 1.0) ] }
  in
  let m1, _ = run ~cluster:(Cluster.laptop ()) prog tables in
  let m_override, _ = run ~cluster prog tables in
  Alcotest.(check (float 1.0)) "override wins over data_scale"
    m1.Metrics.dfs_read_bytes m_override.Metrics.dfs_read_bytes

let test_aggregation_collapses_scale () =
  (* the aggBy output is per-key: collecting it must cost the same no
     matter the input scale *)
  let tables = [ ("dataset", keyed_rows 200) ] in
  let m1, v1 = run group_min_prog tables in
  let m2, v2 =
    run ~cluster:{ (Cluster.laptop ()) with data_scale = 500.0 } group_min_prog tables
  in
  Helpers.check_value "same answer at any scale" v1 v2;
  Alcotest.(check (float 1.0)) "collected bytes identical" m1.Metrics.collect_bytes
    m2.Metrics.collect_bytes

let suite =
  [ ( "cost_model",
      [ Alcotest.test_case "fusion cuts shuffle" `Quick test_fusion_cuts_shuffle;
        Alcotest.test_case "join strategy by size" `Quick test_join_strategy_by_size;
        Alcotest.test_case "JIT cost-based choice" `Quick test_jit_cost_based_choice;
        Alcotest.test_case "co-partitioned join skips shuffle" `Quick
          test_copartitioned_join_skips_shuffle;
        Alcotest.test_case "flink broadcast pricier" `Quick test_flink_broadcast_pricier;
        Alcotest.test_case "flink cache pays IO" `Quick test_flink_cache_pays_io;
        Alcotest.test_case "timeout enforced" `Quick test_timeout_enforced;
        Alcotest.test_case "data_scale scales costs" `Quick test_data_scale_scales_costs;
        Alcotest.test_case "table scale override" `Quick test_table_scale_override;
        Alcotest.test_case "aggregation collapses scale" `Quick test_aggregation_collapses_scale
      ] ) ]
