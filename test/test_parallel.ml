(* Differential tests for the multicore execution backend.

   The engine runs per-partition operator work on a Domain pool; these
   tests pin down the contract of that parallelism:
   - results are identical to the native DataBag evaluation and to the
     sequential engine, for any domain count;
   - every cost-model metric (sim_time_s, shuffle bytes, stages, even
     udf_invocations) is bit-identical across domain counts — wall_time_s
     is the only field allowed to vary;
   - repeated runs under parallelism are byte-identical (TPC-H Q1/Q3 20×);
   - injected cache-loss schedules recover through lineage the same way
     whatever the domain count;
   - split PRNG streams drawn from worker domains reproduce the sequential
     stream exactly. *)

module Value = Emma_value.Value
module S = Emma_lang.Surface
module Cluster = Emma_engine.Cluster
module Metrics = Emma_engine.Metrics
module Engine = Emma_engine.Exec
module Faults = Emma_engine.Faults
module Pool = Emma_util.Pool
module Prng = Emma_util.Prng
module W = Emma_workloads
module Pr = Emma_programs
open Helpers

(* every cost-model field; deliberately NOT wall_time_s / par_stages /
   par_tasks, which describe the host execution rather than the model *)
let cost_sig (m : Metrics.t) =
  ( ( m.Metrics.sim_time_s,
      m.Metrics.shuffle_bytes,
      m.Metrics.broadcast_bytes,
      m.Metrics.dfs_read_bytes,
      m.Metrics.dfs_write_bytes,
      m.Metrics.collect_bytes,
      m.Metrics.parallelize_bytes ),
    ( m.Metrics.spilled_bytes,
      m.Metrics.jobs,
      m.Metrics.stages,
      m.Metrics.recomputes,
      m.Metrics.cache_hits,
      m.Metrics.cache_losses,
      m.Metrics.udf_invocations ) )

let laptop_rt () =
  Emma.
    { cluster = Cluster.laptop (); profile = Cluster.spark_like; timeout_s = None }

let with_pool domains f =
  let pool = Pool.create ~domains in
  Fun.protect ~finally:(fun () -> Pool.shutdown pool) (fun () -> f pool)

let run_at ~domains prog tables =
  with_pool domains (fun pool ->
      let algo = Emma.parallelize prog in
      let r = Emma.run_on_exn ~pool (laptop_rt ()) algo ~tables in
      (r.Emma.value, r.Emma.metrics))

(* ---------------------------------------------------------------- *)
(* Random pipelines: engine at 1/2/4 domains ≡ native, equal metrics  *)
(* ---------------------------------------------------------------- *)

let domains_under_test = [ 1; 2; 4 ]

let prop_differential =
  qcheck_case "random pipelines: engine(1/2/4 domains) = native, equal cost metrics"
    ~count:25
    QCheck2.Gen.(pair Helpers.terminated_pipeline_gen Helpers.rows_gen)
    (fun (e, rows) ->
      let prog = S.program ~ret:e [] in
      let tables = [ ("rows", rows) ] in
      let native, _ = Emma.run_native (Emma.parallelize prog) ~tables in
      let runs = List.map (fun d -> run_at ~domains:d prog tables) domains_under_test in
      let v1, m1 = List.hd runs in
      Value.equal native v1
      && List.for_all
           (fun (v, m) -> Value.equal v1 v && cost_sig m1 = cost_sig m)
           runs)

(* deterministic corpus exercising the shuffle/join/group/stateful paths
   the random pipelines don't reach *)
let corpus_tables =
  [ ("t1", List.init 13 (fun i -> Helpers.row (i - 6) (i mod 4)));
    ("t2", List.init 9 (fun i -> Helpers.row i (i mod 3))) ]

let corpus_progs =
  let mk bag =
    S.program
      ~ret:S.(count (var "d") + sum (map (lam "x" (fun x -> field x "a")) (var "d")))
      [ S.s_let "d" bag ]
  in
  [ ( "repartition join",
      mk
        S.(
          for_
            [ gen "x" (read "t1");
              gen "y" (read "t2");
              when_ (field (var "x") "b" = field (var "y") "b") ]
            ~yield:
              (record
                 [ ("a", field (var "x") "a" + field (var "y") "a");
                   ("b", field (var "x") "b") ])) );
    ( "semi-join (exists)",
      mk
        S.(
          for_
            [ gen "x" (read "t1");
              when_ (exists (lam "y" (fun y -> field y "b" = field (var "x") "b")) (read "t2")) ]
            ~yield:(var "x")) );
    ( "group + fold",
      mk
        S.(
          for_
            [ gen "g" (group_by (lam "x" (fun x -> field x "b")) (read "t1")) ]
            ~yield:
              (record
                 [ ("a", sum (map (lam "x" (fun x -> field x "a")) (field (var "g") "values")));
                   ("b", field (var "g") "key") ])) );
    ("distinct of union", mk S.(distinct (union (read "t1") (read "t2"))));
    ("minus", mk S.(minus (read "t1") (read "t2"))) ]

let test_corpus_domain_invariance () =
  List.iter
    (fun (name, prog) ->
      let native, _ = Emma.run_native (Emma.parallelize prog) ~tables:corpus_tables in
      let v1, m1 = run_at ~domains:1 prog corpus_tables in
      check_value (name ^ ": native = engine") native v1;
      List.iter
        (fun d ->
          let v, m = run_at ~domains:d prog corpus_tables in
          check_value (Printf.sprintf "%s: value at %d domains" name d) v1 v;
          Alcotest.(check bool)
            (Printf.sprintf "%s: cost metrics at %d domains" name d)
            true
            (cost_sig m1 = cost_sig m);
          Alcotest.(check int)
            (Printf.sprintf "%s: udf count at %d domains" name d)
            m1.Metrics.udf_invocations m.Metrics.udf_invocations)
        [ 2; 4 ])
    corpus_progs

(* udf_invocations is tallied in domain-local cells and merged at barriers;
   this pins the total to the sequential count on a map-only program where
   the expected number is easy to state *)
let test_udf_tally_exact () =
  let n = 200 in
  let rows = List.init n (fun i -> Helpers.row i (i mod 5)) in
  let prog =
    S.program
      ~ret:S.(sum (map (lam "x" (fun x -> field x "a + b")) (var "d")))
      [ S.s_let "d"
          S.(
            map
              (lam "x" (fun x ->
                   record [ ("a + b", field x "a" + field x "b") ]))
              (read "rows")) ]
  in
  let _, m1 = run_at ~domains:1 prog [ ("rows", rows) ] in
  Alcotest.(check bool) "sequential run counts udfs" true (m1.Metrics.udf_invocations > 0);
  List.iter
    (fun d ->
      let _, m = run_at ~domains:d prog [ ("rows", rows) ] in
      Alcotest.(check int)
        (Printf.sprintf "udf invocations at %d domains" d)
        m1.Metrics.udf_invocations m.Metrics.udf_invocations)
    [ 2; 4; 8 ]

(* ---------------------------------------------------------------- *)
(* TPC-H determinism: 20 repeated parallel runs, byte-identical        *)
(* ---------------------------------------------------------------- *)

let render v m = (Format.asprintf "%a" Value.pp v, cost_sig m)

let determinism_check name prog tables =
  let reference = (fun (v, m) -> render v m) (run_at ~domains:1 prog tables) in
  with_pool 4 (fun pool ->
      let algo = Emma.parallelize prog in
      for i = 1 to 20 do
        let r = Emma.run_on_exn ~pool (laptop_rt ()) algo ~tables in
        let got = render r.Emma.value r.Emma.metrics in
        if got <> reference then
          Alcotest.failf "%s: run %d under 4 domains differs from sequential" name i
      done)

let test_q1_determinism () =
  let cfg = W.Tpch_gen.of_scale_factor 0.0002 in
  let lineitem = W.Tpch_gen.lineitem ~seed:7 cfg in
  determinism_check "TPC-H Q1"
    (Pr.Tpch_q1.program Pr.Tpch_q1.default_params)
    [ ("lineitem", lineitem) ]

let test_q3_determinism () =
  let cfg = W.Tpch_gen.of_scale_factor 0.0003 in
  let lineitem = W.Tpch_gen.lineitem ~seed:7 cfg in
  let orders = W.Tpch_gen.orders ~seed:7 cfg in
  let customer = W.Tpch_gen.customer ~seed:7 cfg in
  determinism_check "TPC-H Q3"
    (Pr.Tpch_q3.program Pr.Tpch_q3.default_params)
    [ ("lineitem", lineitem); ("orders", orders); ("customer", customer) ]

(* ---------------------------------------------------------------- *)
(* Fault injection under parallelism                                   *)
(* ---------------------------------------------------------------- *)

let loop_prog iters =
  S.program
    ~ret:(S.var "acc")
    [ S.s_let "xs" S.(map (lam "x" (fun x -> field x "a")) (read "t"));
      S.s_var "acc" (S.int_ 0);
      S.s_var "i" (S.int_ 0);
      S.while_
        S.(var "i" < int_ iters)
        [ S.assign "acc" S.(var "acc" + sum (var "xs"));
          S.assign "i" S.(var "i" + int_ 1) ] ]

let fault_tables = [ ("t", List.init 20 (fun i -> Helpers.row i (i mod 3))) ]

let run_faulty ~domains ~cache_loss_at prog tables =
  with_pool domains (fun pool ->
      let ctx = ctx_with tables in
      let eng =
        Engine.create
          ~faults:(Faults.of_cache_loss_at cache_loss_at)
          ~pool ~cluster:(Cluster.laptop ()) ~profile:Cluster.spark_like ctx
      in
      let v = Engine.run eng (Emma.parallelize prog).Emma.compiled in
      (v, Engine.metrics eng))

let test_faults_domain_independent () =
  List.iter
    (fun cache_loss_at ->
      let v1, m1 = run_faulty ~domains:1 ~cache_loss_at (loop_prog 5) fault_tables in
      List.iter
        (fun d ->
          let v, m = run_faulty ~domains:d ~cache_loss_at (loop_prog 5) fault_tables in
          check_value (Printf.sprintf "value at %d domains" d) v1 v;
          Alcotest.(check int)
            (Printf.sprintf "cache losses at %d domains" d)
            m1.Metrics.cache_losses m.Metrics.cache_losses;
          Alcotest.(check int)
            (Printf.sprintf "recomputes at %d domains" d)
            m1.Metrics.recomputes m.Metrics.recomputes;
          Alcotest.(check bool)
            (Printf.sprintf "all cost metrics at %d domains" d)
            true
            (cost_sig m1 = cost_sig m))
        [ 2; 4 ])
    [ []; [ 1 ]; [ 2; 4 ]; List.init 50 (fun i -> i + 1) ]

let prop_faults_parallel =
  qcheck_case "random fault schedules: recovery independent of domain count" ~count:15
    QCheck2.Gen.(pair Helpers.rows_gen (list_size (int_bound 6) (int_range 1 10)))
    (fun (rows, losses) ->
      let tables = [ ("t", rows) ] in
      let v1, m1 = run_faulty ~domains:1 ~cache_loss_at:losses (loop_prog 3) tables in
      let v4, m4 = run_faulty ~domains:4 ~cache_loss_at:losses (loop_prog 3) tables in
      Value.equal v1 v4 && cost_sig m1 = cost_sig m4)

(* ---------------------------------------------------------------- *)
(* Split PRNG streams drawn on worker domains                          *)
(* ---------------------------------------------------------------- *)

let test_split_streams_parallel_deterministic () =
  let draw_all streams =
    Array.map (fun g -> List.init 100 (fun _ -> Prng.next_int64 g)) streams
  in
  (* sequential reference: split then drain each stream in order *)
  let expected = draw_all (Prng.split_n (Prng.create 99) 16) in
  (* same streams drained concurrently on a pool: each worker owns exactly
     one stream, so the draws race on nothing *)
  with_pool 4 (fun pool ->
      let streams = Prng.split_n (Prng.create 99) 16 in
      let got = Pool.parmap pool (fun g -> List.init 100 (fun _ -> Prng.next_int64 g)) streams in
      Alcotest.(check bool) "parallel draws reproduce sequential streams" true
        (expected = got));
  (* split_n itself is order-deterministic *)
  let a = Prng.split_n (Prng.create 5) 8 and b = Prng.split_n (Prng.create 5) 8 in
  Alcotest.(check bool) "split_n reproducible" true (draw_all a = draw_all b)

let suite =
  [ ( "parallel_execution",
      [ prop_differential;
        Alcotest.test_case "corpus: joins/groups domain-invariant" `Quick
          test_corpus_domain_invariance;
        Alcotest.test_case "udf tally exact across domains" `Quick test_udf_tally_exact;
        Alcotest.test_case "TPC-H Q1 20x deterministic under 4 domains" `Quick
          test_q1_determinism;
        Alcotest.test_case "TPC-H Q3 20x deterministic under 4 domains" `Quick
          test_q3_determinism;
        Alcotest.test_case "fault recovery domain-independent" `Quick
          test_faults_domain_independent;
        prop_faults_parallel;
        Alcotest.test_case "split PRNG streams on workers" `Quick
          test_split_streams_parallel_deterministic ] ) ]
