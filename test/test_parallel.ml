(* Differential tests for the multicore execution backend.

   The engine runs per-partition operator work on a Domain pool; these
   tests pin down the contract of that parallelism:
   - results are identical to the native DataBag evaluation and to the
     sequential engine, for any domain count;
   - every cost-model metric (sim_time_s, shuffle bytes, stages, even
     udf_invocations) is bit-identical across domain counts — wall_time_s
     is the only field allowed to vary;
   - repeated runs under parallelism are byte-identical (TPC-H Q1/Q3 20×);
   - injected cache-loss schedules recover through lineage the same way
     whatever the domain count;
   - split PRNG streams drawn from worker domains reproduce the sequential
     stream exactly. *)

module Value = Emma_value.Value
module S = Emma_lang.Surface
module Cluster = Emma_engine.Cluster
module Metrics = Emma_engine.Metrics
module Engine = Emma_engine.Exec
module Faults = Emma_engine.Faults
module Pool = Emma_util.Pool
module Prng = Emma_util.Prng
module W = Emma_workloads
module Pr = Emma_programs
open Helpers

(* every cost-model field; deliberately NOT wall_time_s / par_stages /
   par_tasks, which describe the host execution rather than the model *)
let cost_sig (m : Metrics.t) =
  ( ( m.Metrics.sim_time_s,
      m.Metrics.shuffle_bytes,
      m.Metrics.broadcast_bytes,
      m.Metrics.dfs_read_bytes,
      m.Metrics.dfs_write_bytes,
      m.Metrics.collect_bytes,
      m.Metrics.parallelize_bytes ),
    ( m.Metrics.spilled_bytes,
      m.Metrics.jobs,
      m.Metrics.stages,
      m.Metrics.recomputes,
      m.Metrics.cache_hits,
      m.Metrics.cache_losses,
      m.Metrics.udf_invocations ) )

let laptop_rt () =
  Emma.
    { cluster = Cluster.laptop (); profile = Cluster.spark_like; timeout_s = None }

let with_pool domains f =
  let pool = Pool.create ~domains () in
  Fun.protect ~finally:(fun () -> Pool.shutdown pool) (fun () -> f pool)

let run_at ?chunk ~domains prog tables =
  with_pool domains (fun pool ->
      let algo = Emma.parallelize prog in
      let r = Emma.run_on_exn ?chunk ~pool (laptop_rt ()) algo ~tables in
      (r.Emma.value, r.Emma.metrics))

(* ---------------------------------------------------------------- *)
(* Random pipelines: engine at 1/2/4 domains ≡ native, equal metrics  *)
(* ---------------------------------------------------------------- *)

let domains_under_test = [ 1; 2; 4; 8 ]

let prop_differential =
  qcheck_case "random pipelines: engine(1/2/4/8 domains) = native, equal cost metrics"
    ~count:25
    QCheck2.Gen.(pair Helpers.terminated_pipeline_gen Helpers.rows_gen)
    (fun (e, rows) ->
      let prog = S.program ~ret:e [] in
      let tables = [ ("rows", rows) ] in
      let native, _ = Emma.run_native (Emma.parallelize prog) ~tables in
      let runs = List.map (fun d -> run_at ~domains:d prog tables) domains_under_test in
      let v1, m1 = List.hd runs in
      Value.equal native v1
      && List.for_all
           (fun (v, m) -> Value.equal v1 v && cost_sig m1 = cost_sig m)
           runs)

(* deterministic corpus exercising the shuffle/join/group/stateful paths
   the random pipelines don't reach *)
let corpus_tables =
  [ ("t1", List.init 13 (fun i -> Helpers.row (i - 6) (i mod 4)));
    ("t2", List.init 9 (fun i -> Helpers.row i (i mod 3))) ]

let corpus_progs =
  let mk bag =
    S.program
      ~ret:S.(count (var "d") + sum (map (lam "x" (fun x -> field x "a")) (var "d")))
      [ S.s_let "d" bag ]
  in
  [ ( "repartition join",
      mk
        S.(
          for_
            [ gen "x" (read "t1");
              gen "y" (read "t2");
              when_ (field (var "x") "b" = field (var "y") "b") ]
            ~yield:
              (record
                 [ ("a", field (var "x") "a" + field (var "y") "a");
                   ("b", field (var "x") "b") ])) );
    ( "semi-join (exists)",
      mk
        S.(
          for_
            [ gen "x" (read "t1");
              when_ (exists (lam "y" (fun y -> field y "b" = field (var "x") "b")) (read "t2")) ]
            ~yield:(var "x")) );
    ( "group + fold",
      mk
        S.(
          for_
            [ gen "g" (group_by (lam "x" (fun x -> field x "b")) (read "t1")) ]
            ~yield:
              (record
                 [ ("a", sum (map (lam "x" (fun x -> field x "a")) (field (var "g") "values")));
                   ("b", field (var "g") "key") ])) );
    ("distinct of union", mk S.(distinct (union (read "t1") (read "t2"))));
    ("minus", mk S.(minus (read "t1") (read "t2"))) ]

let test_corpus_domain_invariance () =
  List.iter
    (fun (name, prog) ->
      let native, _ = Emma.run_native (Emma.parallelize prog) ~tables:corpus_tables in
      let v1, m1 = run_at ~domains:1 prog corpus_tables in
      check_value (name ^ ": native = engine") native v1;
      List.iter
        (fun d ->
          let v, m = run_at ~domains:d prog corpus_tables in
          check_value (Printf.sprintf "%s: value at %d domains" name d) v1 v;
          Alcotest.(check bool)
            (Printf.sprintf "%s: cost metrics at %d domains" name d)
            true
            (cost_sig m1 = cost_sig m);
          Alcotest.(check int)
            (Printf.sprintf "%s: udf count at %d domains" name d)
            m1.Metrics.udf_invocations m.Metrics.udf_invocations)
        [ 2; 4 ])
    corpus_progs

(* udf_invocations is tallied in domain-local cells and merged at barriers;
   this pins the total to the sequential count on a map-only program where
   the expected number is easy to state *)
let test_udf_tally_exact () =
  let n = 200 in
  let rows = List.init n (fun i -> Helpers.row i (i mod 5)) in
  let prog =
    S.program
      ~ret:S.(sum (map (lam "x" (fun x -> field x "a + b")) (var "d")))
      [ S.s_let "d"
          S.(
            map
              (lam "x" (fun x ->
                   record [ ("a + b", field x "a" + field x "b") ]))
              (read "rows")) ]
  in
  let _, m1 = run_at ~domains:1 prog [ ("rows", rows) ] in
  Alcotest.(check bool) "sequential run counts udfs" true (m1.Metrics.udf_invocations > 0);
  List.iter
    (fun d ->
      let _, m = run_at ~domains:d prog [ ("rows", rows) ] in
      Alcotest.(check int)
        (Printf.sprintf "udf invocations at %d domains" d)
        m1.Metrics.udf_invocations m.Metrics.udf_invocations)
    [ 2; 4; 8 ]

(* ---------------------------------------------------------------- *)
(* Zipf skew: stealing + chunking never move results or cost metrics  *)
(* ---------------------------------------------------------------- *)

(* Zipf(alpha)-distributed keys: partition skew with real teeth — the
   groupBy shuffle concentrates the head key's rows in one partition, and
   the downstream flatMap/map work over it is what adaptive chunking
   splits and idle domains steal. *)
let zipf_rows ~seed ~alpha ~keys ~n =
  let w = Array.init keys (fun k -> (float_of_int (k + 1)) ** -.alpha) in
  let total = Array.fold_left ( +. ) 0.0 w in
  let acc = ref 0.0 in
  let cdf =
    Array.map
      (fun x ->
        acc := !acc +. (x /. total);
        !acc)
      w
  in
  let draw u =
    let rec go k = if k >= keys - 1 || u <= cdf.(k) then k else go (k + 1) in
    go 0
  in
  let g = Prng.create seed in
  List.init n (fun _ ->
      Value.record
        [ ("a", Value.Int (Prng.int_in g (-50) 50));
          ("b", Value.Int (draw (Prng.unit_float g))) ])

(* groupBy the skewed key, then flatMap the group values back out and
   transform them: the flatMap output keeps the groups' partition
   placement, so the map stages downstream run over genuinely skewed
   partitions (chunked + stolen under the new pool). *)
let skew_group_prog =
  S.program
    ~ret:S.(sum (map (lam "x" (fun x -> field x "a")) (var "out")))
    [ S.s_let "out"
        S.(
          map
            (lam "x" (fun x ->
                 record [ ("a", field x "a" + field x "b"); ("b", field x "b") ]))
            (flat_map
               (lam "g" (fun g -> field g "values"))
               (group_by (lam "x" (fun x -> field x "b")) (read "skewed")))) ]

(* repartition join on the skewed key: both the routing stage (chunked)
   and the per-partition hash build (never chunked) see the skew *)
let skew_join_prog =
  S.program
    ~ret:S.(count (var "out") + sum (map (lam "x" (fun x -> field x "a")) (var "out")))
    [ S.s_let "out"
        S.(
          for_
            [ gen "x" (read "skewed");
              gen "y" (read "dims");
              when_ (field (var "x") "b" = field (var "y") "b") ]
            ~yield:
              (record
                 [ ("a", field (var "x") "a" * field (var "y") "a");
                   ("b", field (var "x") "b") ])) ]

let chunk_specs =
  [ ("chunk=1", Engine.Chunk_fixed 1);
    ("chunk=auto", Engine.Chunk_auto);
    ("chunk=64", Engine.Chunk_fixed 64) ]

let test_skew_differential () =
  let tables =
    [ ("skewed", zipf_rows ~seed:11 ~alpha:1.4 ~keys:24 ~n:600);
      ("dims", List.init 24 (fun k -> Helpers.row (k * 3) k)) ]
  in
  List.iter
    (fun (name, prog) ->
      let native, _ = Emma.run_native (Emma.parallelize prog) ~tables in
      let v1, m1 = run_at ~chunk:(Engine.Chunk_fixed 1) ~domains:1 prog tables in
      check_value (name ^ ": native = engine") native v1;
      List.iter
        (fun d ->
          List.iter
            (fun (cname, chunk) ->
              let v, m = run_at ~chunk ~domains:d prog tables in
              check_value (Printf.sprintf "%s: value at %d domains, %s" name d cname) v1 v;
              Alcotest.(check bool)
                (Printf.sprintf "%s: cost metrics at %d domains, %s" name d cname)
                true
                (cost_sig m1 = cost_sig m))
            chunk_specs)
        domains_under_test)
    [ ("zipf groupBy", skew_group_prog); ("zipf join", skew_join_prog) ]

(* the deterministic corpus again, this time sweeping the chunk policy:
   joins/groups/distinct/minus must not notice chunking either *)
let test_corpus_chunk_invariance () =
  List.iter
    (fun (name, prog) ->
      let v1, m1 = run_at ~chunk:(Engine.Chunk_fixed 1) ~domains:1 prog corpus_tables in
      List.iter
        (fun (cname, chunk) ->
          let v, m = run_at ~chunk ~domains:4 prog corpus_tables in
          check_value (Printf.sprintf "%s: value under %s" name cname) v1 v;
          Alcotest.(check bool)
            (Printf.sprintf "%s: cost metrics under %s" name cname)
            true
            (cost_sig m1 = cost_sig m))
        chunk_specs)
    corpus_progs

let prop_random_chunk_sizes =
  qcheck_case "random fixed chunk sizes: pipelines invariant" ~count:20
    QCheck2.Gen.(triple (int_range 1 100) Helpers.terminated_pipeline_gen Helpers.rows_gen)
    (fun (k, e, rows) ->
      let prog = S.program ~ret:e [] in
      let tables = [ ("rows", rows) ] in
      let v1, m1 = run_at ~chunk:(Engine.Chunk_fixed 1) ~domains:1 prog tables in
      let v, m = run_at ~chunk:(Engine.Chunk_fixed k) ~domains:4 prog tables in
      Value.equal v1 v && cost_sig m1 = cost_sig m)

(* the new scheduling counters are part of the report surface: rendered
   rows and JSON both carry them, and they never appear in cost_sig *)
let test_steal_counters_reported () =
  let _, m =
    run_at ~chunk:Engine.Chunk_auto ~domains:4 skew_group_prog
      [ ("skewed", zipf_rows ~seed:3 ~alpha:1.2 ~keys:16 ~n:200) ]
  in
  let rows = Metrics.to_rows m in
  List.iter
    (fun label ->
      Alcotest.(check bool) (label ^ " in to_rows") true (List.mem_assoc label rows))
    [ "par chunks"; "par steals"; "par steal misses" ];
  match Metrics.to_json m with
  | Emma_util.Json.Obj fields ->
      List.iter
        (fun key ->
          Alcotest.(check bool) (key ^ " in to_json") true (List.mem_assoc key fields))
        [ "par_chunks"; "par_steals"; "par_steal_misses" ]
  | _ -> Alcotest.fail "Metrics.to_json is not an object"

let prop_skew_alpha =
  qcheck_case "random Zipf exponents: cost metrics chunk- and domain-invariant"
    ~count:10
    QCheck2.Gen.(pair (int_range 0 25) (int_range 50 300))
    (fun (alpha10, n) ->
      let tables =
        [ ("skewed", zipf_rows ~seed:n ~alpha:(float_of_int alpha10 /. 10.0) ~keys:12 ~n) ]
      in
      let v1, m1 = run_at ~chunk:(Engine.Chunk_fixed 1) ~domains:1 skew_group_prog tables in
      List.for_all
        (fun (d, chunk) ->
          let v, m = run_at ~chunk ~domains:d skew_group_prog tables in
          Value.equal v1 v && cost_sig m1 = cost_sig m)
        [ (2, Engine.Chunk_fixed 3); (8, Engine.Chunk_auto); (8, Engine.Chunk_fixed 64) ])

(* ---------------------------------------------------------------- *)
(* TPC-H determinism: 20 repeated parallel runs, byte-identical        *)
(* ---------------------------------------------------------------- *)

let render v m = (Format.asprintf "%a" Value.pp v, cost_sig m)

let determinism_check ?(domains = 4) ?(faults = Faults.none) name prog tables =
  let reference =
    (fun (v, m) -> render v m)
      (with_pool 1 (fun pool ->
           let r =
             Emma.run_on_exn ~faults ~pool (laptop_rt ()) (Emma.parallelize prog) ~tables
           in
           (r.Emma.value, r.Emma.metrics)))
  in
  with_pool domains (fun pool ->
      let algo = Emma.parallelize prog in
      for i = 1 to 20 do
        let r = Emma.run_on_exn ~faults ~pool (laptop_rt ()) algo ~tables in
        let got = render r.Emma.value r.Emma.metrics in
        if got <> reference then
          Alcotest.failf "%s: run %d under %d domains differs from sequential" name i
            domains
      done)

let test_q1_determinism () =
  let cfg = W.Tpch_gen.of_scale_factor 0.0002 in
  let lineitem = W.Tpch_gen.lineitem ~seed:7 cfg in
  determinism_check "TPC-H Q1"
    (Pr.Tpch_q1.program Pr.Tpch_q1.default_params)
    [ ("lineitem", lineitem) ]

let test_q3_determinism () =
  let cfg = W.Tpch_gen.of_scale_factor 0.0003 in
  let lineitem = W.Tpch_gen.lineitem ~seed:7 cfg in
  let orders = W.Tpch_gen.orders ~seed:7 cfg in
  let customer = W.Tpch_gen.customer ~seed:7 cfg in
  determinism_check "TPC-H Q3"
    (Pr.Tpch_q3.program Pr.Tpch_q3.default_params)
    [ ("lineitem", lineitem); ("orders", orders); ("customer", customer) ]

(* the hard case from the issue: 8 oversubscribed domains stealing chunks
   WHILE a seeded chaos plan injects retries/stragglers/speculation — the
   fault draws are keyed on logical stage/partition ids, so recovery and
   results must replay byte-identically under any steal schedule *)
let test_q1_determinism_chaos_stealing () =
  let cfg = W.Tpch_gen.of_scale_factor 0.0002 in
  let lineitem = W.Tpch_gen.lineitem ~seed:7 cfg in
  determinism_check ~domains:8 ~faults:(Faults.seeded 21) "TPC-H Q1 + chaos"
    (Pr.Tpch_q1.program Pr.Tpch_q1.default_params)
    [ ("lineitem", lineitem) ]

let test_q3_determinism_chaos_stealing () =
  let cfg = W.Tpch_gen.of_scale_factor 0.0003 in
  let lineitem = W.Tpch_gen.lineitem ~seed:7 cfg in
  let orders = W.Tpch_gen.orders ~seed:7 cfg in
  let customer = W.Tpch_gen.customer ~seed:7 cfg in
  determinism_check ~domains:8 ~faults:(Faults.seeded 22) "TPC-H Q3 + chaos"
    (Pr.Tpch_q3.program Pr.Tpch_q3.default_params)
    [ ("lineitem", lineitem); ("orders", orders); ("customer", customer) ]

(* ---------------------------------------------------------------- *)
(* Fault injection under parallelism                                   *)
(* ---------------------------------------------------------------- *)

let loop_prog iters =
  S.program
    ~ret:(S.var "acc")
    [ S.s_let "xs" S.(map (lam "x" (fun x -> field x "a")) (read "t"));
      S.s_var "acc" (S.int_ 0);
      S.s_var "i" (S.int_ 0);
      S.while_
        S.(var "i" < int_ iters)
        [ S.assign "acc" S.(var "acc" + sum (var "xs"));
          S.assign "i" S.(var "i" + int_ 1) ] ]

let fault_tables = [ ("t", List.init 20 (fun i -> Helpers.row i (i mod 3))) ]

let run_faulty ?chunk ~domains ~cache_loss_at prog tables =
  with_pool domains (fun pool ->
      let ctx = ctx_with tables in
      let eng =
        Engine.create
          ~faults:(Faults.of_cache_loss_at cache_loss_at)
          ?chunk ~pool ~cluster:(Cluster.laptop ()) ~profile:Cluster.spark_like ctx
      in
      let v = Engine.run eng (Emma.parallelize prog).Emma.compiled in
      (v, Engine.metrics eng))

let test_faults_domain_independent () =
  List.iter
    (fun cache_loss_at ->
      let v1, m1 = run_faulty ~domains:1 ~cache_loss_at (loop_prog 5) fault_tables in
      List.iter
        (fun d ->
          let v, m = run_faulty ~domains:d ~cache_loss_at (loop_prog 5) fault_tables in
          check_value (Printf.sprintf "value at %d domains" d) v1 v;
          Alcotest.(check int)
            (Printf.sprintf "cache losses at %d domains" d)
            m1.Metrics.cache_losses m.Metrics.cache_losses;
          Alcotest.(check int)
            (Printf.sprintf "recomputes at %d domains" d)
            m1.Metrics.recomputes m.Metrics.recomputes;
          Alcotest.(check bool)
            (Printf.sprintf "all cost metrics at %d domains" d)
            true
            (cost_sig m1 = cost_sig m))
        [ 2; 4 ])
    [ []; [ 1 ]; [ 2; 4 ]; List.init 50 (fun i -> i + 1) ]

(* injected faults key on the LOGICAL partition count, never chunk count:
   a fault plan must replay identically under every chunk policy *)
let test_faults_chunk_independent () =
  let losses = [ 1; 3 ] in
  let v1, m1 =
    run_faulty ~chunk:(Engine.Chunk_fixed 1) ~domains:1 ~cache_loss_at:losses
      (loop_prog 5) fault_tables
  in
  List.iter
    (fun (cname, chunk) ->
      let v, m = run_faulty ~chunk ~domains:8 ~cache_loss_at:losses (loop_prog 5) fault_tables in
      check_value (Printf.sprintf "value under %s" cname) v1 v;
      Alcotest.(check int)
        (Printf.sprintf "cache losses under %s" cname)
        m1.Metrics.cache_losses m.Metrics.cache_losses;
      Alcotest.(check bool)
        (Printf.sprintf "cost metrics under %s" cname)
        true
        (cost_sig m1 = cost_sig m))
    [ ("chunk=1", Engine.Chunk_fixed 1);
      ("chunk=auto", Engine.Chunk_auto);
      ("chunk=64", Engine.Chunk_fixed 64) ]

let prop_faults_parallel =
  qcheck_case "random fault schedules: recovery independent of domain count" ~count:15
    QCheck2.Gen.(pair Helpers.rows_gen (list_size (int_bound 6) (int_range 1 10)))
    (fun (rows, losses) ->
      let tables = [ ("t", rows) ] in
      let v1, m1 = run_faulty ~domains:1 ~cache_loss_at:losses (loop_prog 3) tables in
      let v4, m4 = run_faulty ~domains:4 ~cache_loss_at:losses (loop_prog 3) tables in
      Value.equal v1 v4 && cost_sig m1 = cost_sig m4)

(* ---------------------------------------------------------------- *)
(* Split PRNG streams drawn on worker domains                          *)
(* ---------------------------------------------------------------- *)

let test_split_streams_parallel_deterministic () =
  let draw_all streams =
    Array.map (fun g -> List.init 100 (fun _ -> Prng.next_int64 g)) streams
  in
  (* sequential reference: split then drain each stream in order *)
  let expected = draw_all (Prng.split_n (Prng.create 99) 16) in
  (* same streams drained concurrently on a pool: each worker owns exactly
     one stream, so the draws race on nothing *)
  with_pool 4 (fun pool ->
      let streams = Prng.split_n (Prng.create 99) 16 in
      let got = Pool.parmap pool (fun g -> List.init 100 (fun _ -> Prng.next_int64 g)) streams in
      Alcotest.(check bool) "parallel draws reproduce sequential streams" true
        (expected = got));
  (* split_n itself is order-deterministic *)
  let a = Prng.split_n (Prng.create 5) 8 and b = Prng.split_n (Prng.create 5) 8 in
  Alcotest.(check bool) "split_n reproducible" true (draw_all a = draw_all b)

let suite =
  [ ( "parallel_execution",
      [ prop_differential;
        Alcotest.test_case "corpus: joins/groups domain-invariant" `Quick
          test_corpus_domain_invariance;
        Alcotest.test_case "udf tally exact across domains" `Quick test_udf_tally_exact;
        Alcotest.test_case "zipf skew: groupBy/join invariant across domains x chunks"
          `Quick test_skew_differential;
        Alcotest.test_case "corpus: joins/groups chunk-invariant" `Quick
          test_corpus_chunk_invariance;
        prop_random_chunk_sizes;
        Alcotest.test_case "steal/chunk counters in report surface" `Quick
          test_steal_counters_reported;
        prop_skew_alpha;
        Alcotest.test_case "TPC-H Q1 20x deterministic under 4 domains" `Quick
          test_q1_determinism;
        Alcotest.test_case "TPC-H Q3 20x deterministic under 4 domains" `Quick
          test_q3_determinism;
        Alcotest.test_case "TPC-H Q1 20x deterministic: 8 domains + chaos" `Quick
          test_q1_determinism_chaos_stealing;
        Alcotest.test_case "TPC-H Q3 20x deterministic: 8 domains + chaos" `Quick
          test_q3_determinism_chaos_stealing;
        Alcotest.test_case "fault recovery domain-independent" `Quick
          test_faults_domain_independent;
        Alcotest.test_case "fault recovery chunk-independent" `Quick
          test_faults_chunk_independent;
        prop_faults_parallel;
        Alcotest.test_case "split PRNG streams on workers" `Quick
          test_split_streams_parallel_deterministic ] ) ]
