module Value = Emma_value.Value
module Expr = Emma_lang.Expr
module S = Emma_lang.Surface
module Normalize = Emma_comp.Normalize
module Fusion = Emma_compiler.Fusion
open Helpers

let has_agg_by e = Expr.exists_expr (function Expr.AggBy _ -> true | _ -> false) e
let has_group_by e = Expr.exists_expr (function Expr.GroupBy _ -> true | _ -> false) e

(* for (g <- rows.groupBy(_.b)) yield (g.key, g.values.count()) *)
let group_count_query =
  S.(
    for_
      [ gen "g" (group_by (lam "x" (fun x -> field x "b")) (read "rows")) ]
      ~yield:(tup [ field (var "g") "key"; count (field (var "g") "values") ]))

let test_count_fuses () =
  let stats = Fusion.fresh_stats () in
  let fused = Fusion.expr ~stats (Normalize.normalize group_count_query) in
  Alcotest.(check bool) "aggBy introduced" true (has_agg_by fused);
  Alcotest.(check bool) "groupBy eliminated" false (has_group_by fused);
  Alcotest.(check int) "one group fused" 1 stats.Fusion.fused_groups;
  Alcotest.(check int) "one fold fused" 1 stats.Fusion.fused_folds

let test_count_fusion_preserves_semantics () =
  let rows = [ Helpers.row 1 0; Helpers.row 2 0; Helpers.row 3 1 ] in
  let tables = [ ("rows", rows) ] in
  let normalized = Normalize.normalize group_count_query in
  assert_equiv ~tables "fused = unfused" normalized (Fusion.expr normalized)

(* the k-means new-centroids pattern: two folds over the same group *)
let kmeans_like_query =
  S.(
    for_
      [ gen "g" (group_by (lam "x" (fun x -> field x "b")) (read "rows")) ]
      ~yield:
        (let_ "s" (sum (map (lam "x" (fun x -> field x "a")) (field (var "g") "values")))
           (fun s ->
             let_ "c" (count (field (var "g") "values")) (fun c ->
                 record [ ("key", field (var "g") "key"); ("mean", s / c) ]))))

let test_banana_split () =
  let stats = Fusion.fresh_stats () in
  let fused = Fusion.expr ~stats (Normalize.normalize kmeans_like_query) in
  Alcotest.(check bool) "aggBy introduced" true (has_agg_by fused);
  Alcotest.(check int) "two folds fused into one aggBy" 2 stats.Fusion.fused_folds;
  Alcotest.(check int) "one group" 1 stats.Fusion.fused_groups

let test_banana_split_semantics () =
  let rows = [ Helpers.row 4 0; Helpers.row 6 0; Helpers.row 10 1 ] in
  let tables = [ ("rows", rows) ] in
  let normalized = Normalize.normalize kmeans_like_query in
  assert_equiv ~tables "banana-split semantics" normalized (Fusion.expr normalized)

(* guarded fold over group values also fuses *)
let guarded_query =
  S.(
    for_
      [ gen "g" (group_by (lam "x" (fun x -> field x "b")) (read "rows")) ]
      ~yield:
        (count
           (with_filter (lam "x" (fun x -> field x "a" > int_ 0)) (field (var "g") "values"))))

let test_guarded_fold_fuses () =
  let fused = Fusion.expr (Normalize.normalize guarded_query) in
  Alcotest.(check bool) "guarded fold fuses" true (has_agg_by fused)

let test_guarded_fold_semantics () =
  let rows = [ Helpers.row (-1) 0; Helpers.row 2 0; Helpers.row 3 1 ] in
  let tables = [ ("rows", rows) ] in
  let normalized = Normalize.normalize guarded_query in
  assert_equiv ~tables "guarded fusion semantics" normalized (Fusion.expr normalized)

(* when group values escape (returned whole), fusion must NOT fire *)
let escaping_query =
  S.(
    for_
      [ gen "g" (group_by (lam "x" (fun x -> field x "b")) (read "rows")) ]
      ~yield:(tup [ field (var "g") "key"; field (var "g") "values" ]))

let test_escaping_values_not_fused () =
  let fused = Fusion.expr (Normalize.normalize escaping_query) in
  Alcotest.(check bool) "no aggBy" false (has_agg_by fused);
  Alcotest.(check bool) "groupBy kept" true (has_group_by fused)

(* mixed: one fold plus a raw use -> not fused *)
let mixed_query =
  S.(
    for_
      [ gen "g" (group_by (lam "x" (fun x -> field x "b")) (read "rows")) ]
      ~yield:(tup [ count (field (var "g") "values"); distinct (field (var "g") "values") ]))

let test_mixed_not_fused () =
  let fused = Fusion.expr (Normalize.normalize mixed_query) in
  Alcotest.(check bool) "mixed use keeps groupBy" true (has_group_by fused)

(* duplicate folds are deduplicated by banana split *)
let dedup_query =
  S.(
    for_
      [ gen "g" (group_by (lam "x" (fun x -> field x "b")) (read "rows")) ]
      ~yield:
        (tup
           [ count (field (var "g") "values");
             count (field (var "g") "values") ]))

let test_dedup () =
  let stats = Fusion.fresh_stats () in
  let _ = Fusion.expr ~stats (Normalize.normalize dedup_query) in
  Alcotest.(check int) "identical folds share a slot" 1 stats.Fusion.fused_folds

let prop_fusion_preserves_semantics =
  Helpers.qcheck_case "fusion preserves semantics on random groupings" ~count:100
    Helpers.rows_gen
    (fun rows ->
      let tables = [ ("rows", rows) ] in
      let q = Normalize.normalize kmeans_like_query in
      (* mean division can hit empty groups only if rows is empty; count>0 in groups *)
      Value.equal (eval_expr ~tables q) (eval_expr ~tables (Fusion.expr q)))

let suite =
  [ ( "fold_group_fusion",
      [ Alcotest.test_case "count fuses to aggBy" `Quick test_count_fuses;
        Alcotest.test_case "count fusion semantics" `Quick test_count_fusion_preserves_semantics;
        Alcotest.test_case "banana split (two folds)" `Quick test_banana_split;
        Alcotest.test_case "banana split semantics" `Quick test_banana_split_semantics;
        Alcotest.test_case "guarded fold fuses" `Quick test_guarded_fold_fuses;
        Alcotest.test_case "guarded fold semantics" `Quick test_guarded_fold_semantics;
        Alcotest.test_case "escaping values not fused" `Quick test_escaping_values_not_fused;
        Alcotest.test_case "mixed use not fused" `Quick test_mixed_not_fused;
        Alcotest.test_case "duplicate folds dedup" `Quick test_dedup;
        prop_fusion_preserves_semantics ] ) ]
