module Prng = Emma_util.Prng
module Vec = Emma_util.Vec
module Dist = Emma_util.Dist
module Tbl = Emma_util.Tbl

(* ---- PRNG ----------------------------------------------------------- *)

let test_prng_deterministic () =
  let a = Prng.create 42 and b = Prng.create 42 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Prng.next_int64 a) (Prng.next_int64 b)
  done

let test_prng_copy_independent () =
  let a = Prng.create 1 in
  let _ = Prng.next_int64 a in
  let b = Prng.copy a in
  Alcotest.(check int64) "copy continues identically" (Prng.next_int64 a) (Prng.next_int64 b);
  let _ = Prng.next_int64 a in
  (* advancing one does not affect the other *)
  let b1 = Prng.next_int64 b and b2 = Prng.next_int64 b in
  Alcotest.(check bool) "streams diverge independently" true (b1 <> b2)

let test_prng_split () =
  let a = Prng.create 7 in
  let b = Prng.split a in
  let xs = List.init 50 (fun _ -> Prng.next_int64 a) in
  let ys = List.init 50 (fun _ -> Prng.next_int64 b) in
  Alcotest.(check bool) "split streams differ" true (xs <> ys)

let prop_int_in_bounds =
  Helpers.qcheck_case "Prng.int stays in bounds" ~count:200
    QCheck2.Gen.(pair small_int (int_range 1 1000))
    (fun (seed, bound) ->
      let rng = Prng.create seed in
      let x = Prng.int rng bound in
      x >= 0 && x < bound)

let prop_int_in_range =
  Helpers.qcheck_case "Prng.int_in inclusive range" ~count:200
    QCheck2.Gen.(triple small_int (int_range (-50) 50) (int_range 0 100))
    (fun (seed, lo, span) ->
      let rng = Prng.create seed in
      let x = Prng.int_in rng lo (lo + span) in
      x >= lo && x <= lo + span)

let prop_unit_float_range =
  Helpers.qcheck_case "unit_float in [0,1)" ~count:200 QCheck2.Gen.small_int (fun seed ->
      let rng = Prng.create seed in
      let x = Prng.unit_float rng in
      x >= 0.0 && x < 1.0)

let test_gaussian_moments () =
  let rng = Prng.create 3 in
  let n = 20_000 in
  let xs = List.init n (fun _ -> Prng.gaussian rng ~mean:10.0 ~stddev:2.0) in
  let mean = List.fold_left ( +. ) 0.0 xs /. float_of_int n in
  let var =
    List.fold_left (fun acc x -> acc +. ((x -. mean) ** 2.0)) 0.0 xs /. float_of_int n
  in
  Alcotest.(check bool) "mean ≈ 10" true (Float.abs (mean -. 10.0) < 0.1);
  Alcotest.(check bool) "stddev ≈ 2" true (Float.abs (sqrt var -. 2.0) < 0.1)

let test_pareto_min () =
  let rng = Prng.create 4 in
  for _ = 1 to 1000 do
    let x = Prng.pareto rng ~alpha:1.5 ~x_min:2.0 in
    if x < 2.0 then Alcotest.fail "pareto below x_min"
  done

let test_shuffle_permutation () =
  let rng = Prng.create 5 in
  let a = Array.init 50 Fun.id in
  Prng.shuffle rng a;
  let sorted = Array.copy a in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "shuffle is a permutation" (Array.init 50 Fun.id) sorted

(* ---- Vec ------------------------------------------------------------ *)

let test_vec_ops () =
  let a = [| 1.0; 2.0 |] and b = [| 3.0; 4.0 |] in
  Alcotest.(check bool) "add" true (Vec.equal (Vec.add a b) [| 4.0; 6.0 |]);
  Alcotest.(check bool) "sub" true (Vec.equal (Vec.sub b a) [| 2.0; 2.0 |]);
  Alcotest.(check (float 1e-9)) "dot" 11.0 (Vec.dot a b);
  Alcotest.(check (float 1e-9)) "dist" (sqrt 8.0) (Vec.dist a b);
  Alcotest.(check bool) "scale" true (Vec.equal (Vec.scale 2.0 a) [| 2.0; 4.0 |]);
  Alcotest.(check bool) "div" true (Vec.equal (Vec.div_scalar b 2.0) [| 1.5; 2.0 |])

let test_vec_dim_mismatch () =
  match Vec.add [| 1.0 |] [| 1.0; 2.0 |] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "expected Invalid_argument"

(* ---- Dist ----------------------------------------------------------- *)

let test_dist_in_range () =
  let rng = Prng.create 6 in
  List.iter
    (fun d ->
      for _ = 1 to 500 do
        let k = Dist.draw d rng in
        if k < 0 || k >= 100 then Alcotest.failf "%s out of range: %d" (Dist.name d) k
      done)
    [ Dist.Uniform { n_keys = 100 };
      Dist.Gaussian { n_keys = 100; stddev_frac = 0.05 };
      Dist.Pareto { n_keys = 100; hot_frac = 0.35 } ]

let test_pareto_hot_key () =
  let rng = Prng.create 7 in
  let h = Dist.histogram (Dist.Pareto { n_keys = 100; hot_frac = 0.35 }) rng ~samples:20_000 in
  let frac0 = float_of_int h.(0) /. 20_000.0 in
  Alcotest.(check bool) "≈35% of draws on key 0" true (Float.abs (frac0 -. 0.35) < 0.03)

let test_uniform_flat () =
  let rng = Prng.create 8 in
  let h = Dist.histogram (Dist.Uniform { n_keys = 10 }) rng ~samples:50_000 in
  Array.iter
    (fun c ->
      let frac = float_of_int c /. 50_000.0 in
      Alcotest.(check bool) "each key ≈10%" true (Float.abs (frac -. 0.1) < 0.02))
    h

let test_gaussian_concentrated () =
  let rng = Prng.create 9 in
  let h = Dist.histogram (Dist.Gaussian { n_keys = 100; stddev_frac = 0.05 }) rng ~samples:20_000 in
  (* the central ±2σ band holds most of the mass *)
  let central = ref 0 in
  for k = 40 to 60 do
    central := !central + h.(k)
  done;
  Alcotest.(check bool) "mass concentrated around the center" true
    (float_of_int !central /. 20_000.0 > 0.9)

(* ---- Tbl ------------------------------------------------------------ *)

let test_tbl_render () =
  let s = Tbl.render ~title:"t" ~header:[ "a"; "bb" ] [ [ "1"; "2" ]; [ "333" ] ] in
  Alcotest.(check bool) "contains title" true (String.length s > 0);
  (* short rows are padded, long cells widen columns *)
  Alcotest.(check bool) "contains padded cell" true
    (String.split_on_char '\n' s |> List.exists (fun l -> String.length l > 8))

let suite =
  [ ( "util",
      [ Alcotest.test_case "prng deterministic" `Quick test_prng_deterministic;
        Alcotest.test_case "prng copy" `Quick test_prng_copy_independent;
        Alcotest.test_case "prng split" `Quick test_prng_split;
        prop_int_in_bounds;
        prop_int_in_range;
        prop_unit_float_range;
        Alcotest.test_case "gaussian moments" `Quick test_gaussian_moments;
        Alcotest.test_case "pareto min" `Quick test_pareto_min;
        Alcotest.test_case "shuffle permutation" `Quick test_shuffle_permutation;
        Alcotest.test_case "vec ops" `Quick test_vec_ops;
        Alcotest.test_case "vec dim mismatch" `Quick test_vec_dim_mismatch;
        Alcotest.test_case "dist in range" `Quick test_dist_in_range;
        Alcotest.test_case "pareto hot key ≈35%" `Quick test_pareto_hot_key;
        Alcotest.test_case "uniform flat" `Quick test_uniform_flat;
        Alcotest.test_case "gaussian concentrated" `Quick test_gaussian_concentrated;
        Alcotest.test_case "tbl render" `Quick test_tbl_render ] ) ]
