module Value = Emma_value.Value
module G = Emma_graph.Graph
module S = Emma_lang.Surface
module P = Emma_dataflow.Plan
open Helpers

let eval_cells ~tables e = Value.to_bag (eval_expr ~tables e)

let triangle_graph =
  (* two directed triangles sharing the edge 1->2, plus noise *)
  [ (1, 2); (2, 3); (3, 1); (2, 4); (4, 1); (5, 6) ]

let test_reverse_undirect () =
  let tables = [ ("edges", G.edges_of_list [ (1, 2); (2, 3) ]) ] in
  check_bag "reverse"
    (G.edges_of_list [ (2, 1); (3, 2) ])
    (eval_cells ~tables (G.reverse (S.read "edges")));
  check_bag "undirect"
    (G.edges_of_list [ (1, 2); (2, 1); (2, 3); (3, 2) ])
    (eval_cells ~tables (G.undirect (S.read "edges")))

let test_degrees () =
  let tables = [ ("edges", G.edges_of_list triangle_graph) ] in
  let got =
    eval_cells ~tables (G.out_degrees (S.read "edges"))
    |> List.map (fun r ->
           (Value.to_int (Value.field r "id"), Value.to_int (Value.field r "degree")))
    |> List.sort compare
  in
  Alcotest.(check (list (pair int int))) "out degrees"
    (G.out_degrees_reference triangle_graph) got

let test_vertices_and_count () =
  let tables = [ ("edges", G.edges_of_list triangle_graph) ] in
  Alcotest.(check int) "vertices" 6
    (List.length (eval_cells ~tables (G.vertices (S.read "edges"))));
  check_value "edge count" (Value.int 6) (eval_expr ~tables (G.edge_count (S.read "edges")))

let test_triangles () =
  let tables = [ ("edges", G.edges_of_list triangle_graph) ] in
  let expected = G.triangle_count_reference triangle_graph in
  check_value "triangle count (native)" (Value.int expected)
    (eval_expr ~tables (G.triangle_count (S.read "edges")));
  (* each directed 3-cycle contributes 3 rotations *)
  Alcotest.(check int) "two triangles, three rotations each" 6 expected

let test_triangles_compile_to_composite_semijoin () =
  let prog = S.program ~ret:(G.triangle_count (S.read "edges")) [] in
  let algo = Emma.parallelize prog in
  Alcotest.(check int) "one eq-join" 1
    algo.Emma.report.Emma.Pipeline.translation.Emma_compiler.Translate.eq_joins;
  Alcotest.(check int) "one semi-join (composite key, post-join)" 1
    algo.Emma.report.Emma.Pipeline.translation.Emma_compiler.Translate.semi_joins;
  Alcotest.(check int) "no broadcast-filter fallback" 0
    algo.Emma.report.Emma.Pipeline.translation.Emma_compiler.Translate.broadcast_filters

let test_triangles_on_engine () =
  let tables = [ ("edges", G.edges_of_list triangle_graph) ] in
  let prog = S.program ~ret:(G.triangle_count (S.read "edges")) [] in
  let algo = Emma.parallelize prog in
  let native, _ = Emma.run_native algo ~tables in
  match
    Emma.run_on
      Emma.
        { cluster = Emma_engine.Cluster.laptop ();
          profile = Emma_engine.Cluster.spark_like;
          timeout_s = None }
      algo ~tables
  with
  | Emma.Finished { value; _ } -> check_value "engine = native" native value
  | _ -> Alcotest.fail "engine run failed"

let test_two_hop () =
  let tables = [ ("edges", G.edges_of_list [ (1, 2); (2, 3); (2, 4); (3, 1) ]) ] in
  check_bag "two-hop pairs"
    [ Value.record [ ("src", Value.Int 1); ("dst", Value.Int 3) ];
      Value.record [ ("src", Value.Int 1); ("dst", Value.Int 4) ];
      Value.record [ ("src", Value.Int 2); ("dst", Value.Int 1) ];
      Value.record [ ("src", Value.Int 3); ("dst", Value.Int 2) ] ]
    (eval_cells ~tables (G.two_hop_neighbors (S.read "edges")))

let prop_triangles_match_oracle =
  Helpers.qcheck_case "triangle count = oracle on random graphs" ~count:30
    QCheck2.Gen.(list_size (int_bound 20) (pair (int_range 0 6) (int_range 0 6)))
    (fun pairs ->
      let pairs = List.filter (fun (a, b) -> a <> b) pairs in
      let tables = [ ("edges", G.edges_of_list pairs) ] in
      let v = eval_expr ~tables (G.triangle_count (S.read "edges")) in
      Value.to_int v = G.triangle_count_reference pairs)

let prop_degrees_sum_to_edges =
  Helpers.qcheck_case "Σ out-degrees = edge count" ~count:30
    QCheck2.Gen.(list_size (int_bound 25) (pair (int_range 0 8) (int_range 0 8)))
    (fun pairs ->
      let tables = [ ("edges", G.edges_of_list pairs) ] in
      let degs = eval_cells ~tables (G.out_degrees (S.read "edges")) in
      let total =
        List.fold_left (fun acc r -> acc + Value.to_int (Value.field r "degree")) 0 degs
      in
      total = List.length pairs)

let test_adjacency_conversion () =
  let cfg = Emma_workloads.Graph_gen.default ~n_vertices:40 in
  let adj = Emma_workloads.Graph_gen.adjacency ~seed:21 cfg in
  let edges = G.edges_of_adjacency adj in
  Alcotest.(check int) "edge count preserved"
    (Emma_workloads.Graph_gen.edge_count adj)
    (List.length edges)

let suite =
  [ ( "graph",
      [ Alcotest.test_case "reverse + undirect" `Quick test_reverse_undirect;
        Alcotest.test_case "degrees" `Quick test_degrees;
        Alcotest.test_case "vertices + edge count" `Quick test_vertices_and_count;
        Alcotest.test_case "triangles (native)" `Quick test_triangles;
        Alcotest.test_case "triangles compile to join+semijoin" `Quick
          test_triangles_compile_to_composite_semijoin;
        Alcotest.test_case "triangles on engine" `Quick test_triangles_on_engine;
        Alcotest.test_case "two-hop neighbors" `Quick test_two_hop;
        Alcotest.test_case "adjacency conversion" `Quick test_adjacency_conversion;
        prop_triangles_match_oracle;
        prop_degrees_sum_to_edges ] ) ]
