module Value = Emma_value.Value
module Pipeline = Emma_compiler.Pipeline
module W = Emma_workloads
module Pr = Emma_programs
open Helpers

let laptop_rt ?(profile = Emma_engine.Cluster.spark_like) () =
  Emma.{ cluster = Emma_engine.Cluster.laptop (); profile; timeout_s = None }

let engine_run ?opts prog tables =
  let algo = Emma.parallelize ?opts prog in
  match Emma.run_on (laptop_rt ()) algo ~tables with
  | Emma.Finished r -> r
  | Emma.Failed { reason; _ } -> Alcotest.failf "engine failed: %s" reason
  | Emma.Timed_out _ -> Alcotest.fail "engine timed out"
  | Emma.Cancelled _ -> Alcotest.fail "engine cancelled"

let sort_values vs = List.sort Value.compare vs

(* ------------------------- k-means --------------------------------- *)

let kmeans_setup () =
  let params = { Pr.Kmeans.default_params with max_iters = 12 } in
  let cfg = W.Points_gen.default ~n_points:200 ~k:3 in
  let points = W.Points_gen.points ~seed:42 cfg in
  let centroids0 = W.Points_gen.initial_centroids ~seed:42 cfg in
  (params, cfg, points, centroids0)

let test_kmeans_native_vs_oracle () =
  let params, _, points, centroids0 = kmeans_setup () in
  let prog = Pr.Kmeans.program params in
  let algo = Emma.parallelize prog in
  let native, _ =
    Emma.run_native algo ~tables:[ ("points", points); ("centroids0", centroids0) ]
  in
  let oracle = Pr.Kmeans.reference ~params ~points ~centroids0 in
  (* centroids match the plain-OCaml Lloyd oracle up to float noise *)
  let by_cid vs =
    List.sort
      (fun a b -> Value.compare (Value.field a "cid") (Value.field b "cid"))
      vs
  in
  let native_cs = by_cid (Value.to_bag native) and oracle_cs = by_cid oracle in
  Alcotest.(check int) "same number of centroids" (List.length oracle_cs)
    (List.length native_cs);
  List.iter2
    (fun a b ->
      let pa = Value.to_vector (Value.field a "pos") in
      let pb = Value.to_vector (Value.field b "pos") in
      Alcotest.(check bool) "centroid close" true (Emma_util.Vec.dist pa pb < 1e-6))
    native_cs oracle_cs

let test_kmeans_engine_matches_native () =
  let params, _, points, centroids0 = kmeans_setup () in
  let prog = Pr.Kmeans.program params in
  let tables = [ ("points", points); ("centroids0", centroids0) ] in
  let algo = Emma.parallelize prog in
  let native, _ = Emma.run_native algo ~tables in
  let r = engine_run prog tables in
  (* centroid sums combine in different orders on the engine, so compare
     with a float tolerance *)
  let by_cid v =
    Value.to_bag v
    |> List.sort (fun a b -> Value.compare (Value.field a "cid") (Value.field b "cid"))
  in
  let a = by_cid native and b = by_cid r.Emma.value in
  Alcotest.(check int) "same centroid count" (List.length a) (List.length b);
  List.iter2
    (fun x y ->
      check_value "same cid" (Value.field x "cid") (Value.field y "cid");
      let px = Value.to_vector (Value.field x "pos") in
      let py = Value.to_vector (Value.field y "pos") in
      Alcotest.(check bool) "centroid close" true (Emma_util.Vec.dist px py < 1e-6))
    a b

let test_kmeans_optimizations_fire () =
  let params, _, _, _ = kmeans_setup () in
  let algo = Emma.parallelize (Pr.Kmeans.program params) in
  Alcotest.(check bool) "fusion" true (Pipeline.applied_group_fusion algo.Emma.report);
  Alcotest.(check bool) "caching" true (Pipeline.applied_caching algo.Emma.report);
  Alcotest.(check bool) "points cached" true
    (List.mem "points" algo.Emma.report.Pipeline.cached_vars)

(* ------------------------- PageRank -------------------------------- *)

let pagerank_setup () =
  let cfg = W.Graph_gen.default ~n_vertices:40 in
  let vertices = W.Graph_gen.adjacency ~seed:7 cfg in
  let params =
    { (Pr.Pagerank.default_params ~n_pages:40) with iterations = 5 }
  in
  (params, vertices)

let ranks_table vs =
  List.map
    (fun r -> (Value.to_int (Value.field r "id"), Value.to_float (Value.field r "rank")))
    vs
  |> List.sort compare

let test_pagerank_native_vs_oracle () =
  let params, vertices = pagerank_setup () in
  let prog = Pr.Pagerank.program params in
  let algo = Emma.parallelize prog in
  let native, _ = Emma.run_native algo ~tables:[ ("vertices", vertices) ] in
  let oracle = Pr.Pagerank.reference ~params ~vertices in
  let a = ranks_table (Value.to_bag native) and b = ranks_table oracle in
  Alcotest.(check int) "same vertices" (List.length b) (List.length a);
  List.iter2
    (fun (i, r1) (j, r2) ->
      Alcotest.(check int) "same id" i j;
      Alcotest.(check bool) "rank close" true (Float.abs (r1 -. r2) < 1e-9))
    a b

let test_pagerank_engine_matches_native () =
  let params, vertices = pagerank_setup () in
  let prog = Pr.Pagerank.program params in
  let tables = [ ("vertices", vertices) ] in
  let algo = Emma.parallelize prog in
  let native, _ = Emma.run_native algo ~tables in
  let r = engine_run prog tables in
  (* fold combine order differs between partitions and the native tree, so
     ranks agree only up to float associativity *)
  let a = ranks_table (Value.to_bag native) in
  let b = ranks_table (Value.to_bag r.Emma.value) in
  Alcotest.(check int) "same vertices" (List.length a) (List.length b);
  List.iter2
    (fun (i, r1) (j, r2) ->
      Alcotest.(check int) "same id" i j;
      Alcotest.(check bool) "rank close" true (Float.abs (r1 -. r2) < 1e-9))
    a b

let test_pagerank_rank_conservation () =
  (* on a graph with no dangling vertices, total rank stays ~1 *)
  let cfg = { (W.Graph_gen.default ~n_vertices:30) with avg_degree = 6 } in
  let vertices =
    W.Graph_gen.undirected_adjacency ~seed:11 cfg
    |> List.filter (fun v -> Value.to_bag (Value.field v "neighbors") <> [])
  in
  let n = List.length vertices in
  let params = { (Pr.Pagerank.default_params ~n_pages:n) with iterations = 8 } in
  let prog = Pr.Pagerank.program params in
  let algo = Emma.parallelize prog in
  let native, _ = Emma.run_native algo ~tables:[ ("vertices", vertices) ] in
  let total =
    List.fold_left
      (fun acc r -> acc +. Value.to_float (Value.field r "rank"))
      0.0 (Value.to_bag native)
  in
  Alcotest.(check bool) "total rank ≈ 1" true (Float.abs (total -. 1.0) < 0.05)

(* --------------------- Connected Components ------------------------ *)

let test_connected_components () =
  let cfg = { (W.Graph_gen.default ~n_vertices:30) with avg_degree = 3 } in
  let vertices = W.Graph_gen.undirected_adjacency ~seed:3 cfg in
  let prog = Pr.Connected_components.program Pr.Connected_components.default_params in
  let tables = [ ("vertices", vertices) ] in
  let algo = Emma.parallelize prog in
  let native, native_ctx = Emma.run_native algo ~tables in
  (* oracle comparison on the written output *)
  let oracle = Pr.Connected_components.reference ~vertices in
  let written = Emma.Eval.read_table native_ctx "components" in
  check_value "components match union-find"
    (Value.bag (sort_values oracle))
    (Value.bag (sort_values written));
  (* engine agreement *)
  let r = engine_run prog tables in
  check_value "cc engine = native" native r.Emma.value

(* ------------------------- Spam workflow --------------------------- *)

let spam_setup () =
  let cfg =
    { (W.Email_gen.paper_config ~physical_emails:60) with
      body_bytes_avg = 1000;
      server_info_bytes = 100 }
  in
  let emails = W.Email_gen.emails ~seed:5 cfg in
  let blacklist = W.Email_gen.blacklist ~seed:5 cfg in
  let params = { Pr.Spam_workflow.default_params with n_classifiers = 4 } in
  (params, emails, blacklist)

let test_spam_workflow () =
  let params, emails, blacklist = spam_setup () in
  let prog = Pr.Spam_workflow.program params in
  let tables = [ ("emails_raw", emails); ("blacklist_raw", blacklist) ] in
  let algo = Emma.parallelize prog in
  let native, _ = Emma.run_native algo ~tables in
  let best, hits = Pr.Spam_workflow.reference ~params ~emails ~blacklist in
  check_value "native = oracle" (Value.tuple [ Value.int best; Value.int hits ]) native;
  let r = engine_run prog tables in
  check_value "engine = native" native r.Emma.value;
  (* and with every optimization disabled *)
  let r0 = engine_run ~opts:Pipeline.no_opts prog tables in
  check_value "unoptimized engine = native" native r0.Emma.value

let test_spam_workflow_report () =
  let params, _, _ = spam_setup () in
  let algo = Emma.parallelize (Pr.Spam_workflow.program params) in
  let r = algo.Emma.report in
  Alcotest.(check bool) "unnesting" true (Pipeline.applied_unnesting r);
  Alcotest.(check bool) "caching" true (Pipeline.applied_caching r);
  Alcotest.(check bool) "partition pulling" true (Pipeline.applied_partition_pulling r);
  Alcotest.(check bool) "no fusion" false (Pipeline.applied_group_fusion r)

(* ------------------------- group-min (Fig. 5) ----------------------- *)

let test_group_min () =
  let cfg = W.Keyed_gen.paper_config ~n_tuples:300 (W.Keyed_gen.pareto ~n_keys:20) in
  let rows = W.Keyed_gen.tuples ~seed:9 cfg in
  let prog = Pr.Group_min.program Pr.Group_min.default_params in
  let tables = [ ("dataset", rows) ] in
  let algo = Emma.parallelize prog in
  let native, _ = Emma.run_native algo ~tables in
  check_value "native = oracle"
    (Value.bag (sort_values (Pr.Group_min.reference rows)))
    (Value.bag (sort_values (Value.to_bag native)));
  let r = engine_run prog tables in
  check_value "engine = native" native r.Emma.value;
  Alcotest.(check bool) "fusion applies" true
    (Pipeline.applied_group_fusion algo.Emma.report)

(* ------------------------- word count ------------------------------ *)

let test_wordcount () =
  let docs =
    Pr.Wordcount.docs_of_strings
      [ "a b a"; "c b"; ""; "a a a" ]
  in
  let prog = Pr.Wordcount.program Pr.Wordcount.default_params in
  let tables = [ ("docs", docs) ] in
  let algo = Emma.parallelize prog in
  let native, _ = Emma.run_native algo ~tables in
  let got =
    Value.to_bag native
    |> List.map (fun r ->
           (Value.to_string_exn (Value.field r "word"), Value.to_int (Value.field r "n")))
    |> List.sort compare
  in
  Alcotest.(check (list (pair string int))) "native vs oracle"
    (Pr.Wordcount.reference docs) got;
  Alcotest.(check (list (pair string int))) "expected counts"
    [ ("a", 5); ("b", 2); ("c", 1) ] got;
  let r = engine_run prog tables in
  check_value "engine = native" native r.Emma.value;
  (* the dependent generator compiles to a flatMap, the count fuses *)
  Alcotest.(check bool) "fusion applied" true (Pipeline.applied_group_fusion algo.Emma.report)

let suite =
  [ ( "programs",
      [ Alcotest.test_case "kmeans: native vs oracle" `Quick test_kmeans_native_vs_oracle;
        Alcotest.test_case "kmeans: engine vs native" `Quick test_kmeans_engine_matches_native;
        Alcotest.test_case "kmeans: optimizations fire" `Quick test_kmeans_optimizations_fire;
        Alcotest.test_case "pagerank: native vs oracle" `Quick test_pagerank_native_vs_oracle;
        Alcotest.test_case "pagerank: engine vs native" `Quick test_pagerank_engine_matches_native;
        Alcotest.test_case "pagerank: rank conservation" `Quick test_pagerank_rank_conservation;
        Alcotest.test_case "connected components" `Quick test_connected_components;
        Alcotest.test_case "spam workflow" `Quick test_spam_workflow;
        Alcotest.test_case "spam workflow report" `Quick test_spam_workflow_report;
        Alcotest.test_case "group-min query" `Quick test_group_min;
        Alcotest.test_case "word count" `Quick test_wordcount ] ) ]
