module Expr = Emma_lang.Expr
module S = Emma_lang.Surface
module P = Emma_dataflow.Plan
module Normalize = Emma_comp.Normalize
module Translate = Emma_compiler.Translate
module Pipeline = Emma_compiler.Pipeline

let plan_has pred p = P.fold_plan (fun acc n -> acc || pred n) false p

let to_plan ?unnest e = Translate.to_plan ?unnest (Normalize.normalize e)

let test_filter_pushdown () =
  let e =
    S.(for_ [ gen "x" (read "t"); when_ (field (var "x") "a" > int_ 0) ] ~yield:(var "x"))
  in
  match to_plan e with
  | P.Filter (_, P.Read "t") -> ()
  | p -> Alcotest.failf "expected filter over read, got:@.%s" (P.to_string p)

let test_map_over_filter () =
  let e =
    S.(
      for_
        [ gen "x" (read "t"); when_ (field (var "x") "a" > int_ 0) ]
        ~yield:(S.field (var "x") "a"))
  in
  match to_plan e with
  | P.Map (_, P.Filter (_, P.Read "t")) -> ()
  | p -> Alcotest.failf "expected map(filter(read)), got:@.%s" (P.to_string p)

let test_eq_join () =
  let e =
    S.(
      for_
        [ gen "x" (read "t1");
          gen "y" (read "t2");
          when_ (field (var "x") "k" = field (var "y") "k") ]
        ~yield:(tup [ var "x"; var "y" ]))
  in
  let p = to_plan e in
  Alcotest.(check bool) "has eq_join" true
    (plan_has (function P.Eq_join _ -> true | _ -> false) p);
  Alcotest.(check bool) "no cross" false (plan_has (function P.Cross _ -> true | _ -> false) p)

let test_cross () =
  let e =
    S.(for_ [ gen "x" (read "t1"); gen "y" (read "t2") ] ~yield:(tup [ var "x"; var "y" ]))
  in
  let p = to_plan e in
  Alcotest.(check bool) "has cross" true (plan_has (function P.Cross _ -> true | _ -> false) p)

let test_semi_join_from_exists () =
  (* the paper's blacklist example (§4.2.1) *)
  let e =
    S.(
      for_
        [ gen "e" (read "emails");
          when_
            (exists
               (lam "b" (fun b -> field b "ip" = field (var "e") "ip"))
               (read "blacklist")) ]
        ~yield:(var "e"))
  in
  (match to_plan e with
  | P.Semi_join { left = P.Read "emails"; right = P.Read "blacklist"; _ } -> ()
  | p -> Alcotest.failf "expected semi_join, got:@.%s" (P.to_string p));
  (* with unnesting disabled the exists stays a broadcast filter *)
  let stats = Translate.fresh_stats () in
  let p = Translate.to_plan ~unnest:false ~stats (Normalize.normalize e) in
  Alcotest.(check bool) "no semi_join without unnesting" false
    (plan_has (function P.Semi_join _ -> true | _ -> false) p);
  Alcotest.(check int) "counted as broadcast filter" 1 stats.Translate.broadcast_filters

let test_semi_join_with_extra_conjuncts () =
  (* TPC-H Q4 shape: exists with an equality and a y-only conjunct *)
  let e =
    S.(
      for_
        [ gen "o" (read "orders");
          when_
            (exists
               (lam "li" (fun li ->
                    (field li "orderKey" = field (var "o") "orderKey")
                    && (field li "commitDate" < field li "receiptDate")))
               (read "lineitem")) ]
        ~yield:(field (var "o") "orderPriority"))
  in
  let p = to_plan e in
  (* the y-only conjunct must be pushed as a filter under the semijoin's
     right input *)
  let ok =
    plan_has
      (function
        | P.Semi_join { right = P.Filter (_, P.Read "lineitem"); _ } -> true
        | _ -> false)
      p
  in
  Alcotest.(check bool) "semi_join with prefiltered right input" true ok

let test_dependent_generator_flatmap () =
  (* y ranges over a bag inside x: must become a flatMap UDF *)
  let e =
    S.(
      for_
        [ gen "x" (read "t"); gen "y" (field (var "x") "items") ]
        ~yield:(var "y"))
  in
  let p = to_plan e in
  Alcotest.(check bool) "has flat_map" true
    (plan_has (function P.Flat_map _ -> true | _ -> false) p)

let test_fold_plan () =
  let e = S.(sum (map (lam "x" (fun x -> field x "a")) (read "t"))) in
  match to_plan e with
  | P.Fold (_, P.Map (_, P.Read "t")) -> ()
  | P.Fold (_, P.Read "t") -> ()
  | p -> Alcotest.failf "expected fold plan, got:@.%s" (P.to_string p)

let test_broadcast_annotation () =
  (* a UDF referencing a driver variable gets a broadcast annotation *)
  let e = S.(map (lam "x" (fun x -> vdist x (var "c"))) (read "t")) in
  let p = P.annotate_broadcasts ~bound:Emma_util.Strset.empty (to_plan e) in
  let bcs = P.broadcast_vars p in
  Alcotest.(check (list string)) "captured driver var" [ "c" ] bcs

(* --- full pipeline on a program --------------------------------------- *)

let spamlike_program =
  (* simplified Listing 5 shape: loop over classifiers, exists filter *)
  S.program
    ~ret:(S.var "best")
    [ S.s_let "emails" S.(map (lam "e" (fun e -> e)) (read "emails_raw"));
      S.s_let "blacklist" (S.read "blacklist_raw");
      S.s_var "i" (S.int_ 0);
      S.s_var "best" (S.int_ (-1));
      S.while_
        S.(var "i" < int_ 3)
        [ S.s_let "bad"
            S.(
              for_
                [ gen "e" (var "emails");
                  when_ (field (var "e") "score" > var "i");
                  when_
                    (exists
                       (lam "b" (fun b -> field b "ip" = field (var "e") "ip"))
                       (var "blacklist")) ]
                ~yield:(var "e"));
          S.s_let "cnt" S.(count (var "bad"));
          S.s_if S.(var "cnt" > var "best") [ S.assign "best" (S.var "cnt") ] [];
          S.assign "i" S.(var "i" + int_ 1) ] ]

let test_pipeline_spamlike () =
  let cprog, report = Pipeline.compile spamlike_program in
  Alcotest.(check bool) "unnesting applied" true (Pipeline.applied_unnesting report);
  Alcotest.(check bool) "caching applied" true (Pipeline.applied_caching report);
  Alcotest.(check bool) "partition pulling applied" true
    (Pipeline.applied_partition_pulling report);
  Alcotest.(check bool) "no fusion (no groupBy)" false (Pipeline.applied_group_fusion report);
  (* emails and blacklist are loop-invariant and used in the loop: cached *)
  Alcotest.(check bool) "emails cached" true (List.mem "emails" report.Pipeline.cached_vars);
  Alcotest.(check bool) "blacklist cached" true
    (List.mem "blacklist" report.Pipeline.cached_vars);
  (* and the cached plans carry an enforced partitioning on ip *)
  let has_partition = ref false in
  Emma_dataflow.Cprog.iter_plans
    (fun p ->
      if plan_has (function P.Partition_by _ -> true | _ -> false) p then has_partition := true)
    cprog;
  Alcotest.(check bool) "partition enforced at producer" true !has_partition

let test_pipeline_group_query () =
  let prog =
    S.program
      ~ret:S.unit_
      [ S.s_let "r"
          S.(
            for_
              [ gen "g" (group_by (lam "x" (fun x -> field x "key")) (read "data")) ]
              ~yield:
                (record
                   [ ("key", field (var "g") "key");
                     ("min",
                      min_by (lam "v" (fun v -> to_float v))
                        (map (lam "x" (fun x -> field x "value")) (field (var "g") "values")))
                   ]));
        S.write "out" (S.var "r") ]
  in
  let _, report = Pipeline.compile prog in
  Alcotest.(check bool) "fusion applied" true (Pipeline.applied_group_fusion report);
  Alcotest.(check bool) "no caching (no reuse)" false (Pipeline.applied_caching report)

let suite =
  [ ( "translate",
      [ Alcotest.test_case "filter pushdown" `Quick test_filter_pushdown;
        Alcotest.test_case "map over filter" `Quick test_map_over_filter;
        Alcotest.test_case "eq join" `Quick test_eq_join;
        Alcotest.test_case "cross" `Quick test_cross;
        Alcotest.test_case "semi join from exists" `Quick test_semi_join_from_exists;
        Alcotest.test_case "semi join with conjuncts" `Quick test_semi_join_with_extra_conjuncts;
        Alcotest.test_case "dependent generator flatmap" `Quick test_dependent_generator_flatmap;
        Alcotest.test_case "fold plan" `Quick test_fold_plan;
        Alcotest.test_case "broadcast annotation" `Quick test_broadcast_annotation;
        Alcotest.test_case "pipeline: spam-like program" `Quick test_pipeline_spamlike;
        Alcotest.test_case "pipeline: group query" `Quick test_pipeline_group_query ] ) ]
