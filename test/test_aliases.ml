(* The extended DataBag fold aliases (Listing 3's full set) and the native
   iteration cost behaviour. *)

module Value = Emma_value.Value
module S = Emma_lang.Surface
module Pipeline = Emma_compiler.Pipeline
open Helpers

let ints xs = S.bag_of (List.map S.int_ xs)

let test_product () =
  check_value "product" (Value.float 24.0)
    (eval_expr (S.product (S.map (S.lam "x" (fun x -> S.to_float x)) (ints [ 1; 2; 3; 4 ]))));
  check_value "empty product" (Value.float 1.0) (eval_expr (S.product (ints [])))

let test_plain_min_max () =
  check_value "min_" (Value.some (Value.int 1)) (eval_expr (S.min_ (ints [ 3; 1; 2 ])));
  check_value "max_" (Value.some (Value.int 3)) (eval_expr (S.max_ (ints [ 3; 1; 2 ])));
  check_value "min_ empty" Value.none (eval_expr (S.min_ (ints [])));
  check_value "min_ on strings" (Value.some (Value.string "a"))
    (eval_expr (S.min_ (S.bag_of [ S.str "b"; S.str "a" ])))

let test_avg () =
  check_value "avg" (Value.float 2.0) (eval_expr (S.avg (ints [ 1; 2; 3 ])));
  check_value "avg floats" (Value.float 0.5)
    (eval_expr (S.avg (S.bag_of [ S.float_ 0.0; S.float_ 1.0 ])))

let test_avg_fuses () =
  (* avg over group values fuses into one aggBy slot *)
  let q =
    S.(
      for_
        [ gen "g" (group_by (lam "x" (fun x -> field x "b")) (read "rows")) ]
        ~yield:
          (record
             [ ("key", field (var "g") "key");
               ("mean", avg (map (lam "x" (fun x -> field x "a")) (field (var "g") "values")))
             ]))
  in
  let stats = Emma_compiler.Fusion.fresh_stats () in
  let fused = Emma_compiler.Fusion.expr ~stats (Emma_comp.Normalize.normalize q) in
  Alcotest.(check int) "one fold slot" 1 stats.Emma_compiler.Fusion.fused_folds;
  Alcotest.(check bool) "aggBy present" true
    (Emma_lang.Expr.exists_expr (function Emma_lang.Expr.AggBy _ -> true | _ -> false) fused);
  (* and the fused query is still correct *)
  let rows = [ Helpers.row 2 0; Helpers.row 4 0; Helpers.row 9 1 ] in
  assert_equiv ~tables:[ ("rows", rows) ] "avg fusion semantics"
    (Emma_comp.Normalize.normalize q) fused

let prop_avg_matches_reference =
  Helpers.qcheck_case "avg = sum/count" ~count:60
    QCheck2.Gen.(list_size (int_range 1 15) (int_range (-50) 50))
    (fun xs ->
      let v = eval_expr (S.avg (ints xs)) in
      let expected =
        float_of_int (List.fold_left ( + ) 0 xs) /. float_of_int (List.length xs)
      in
      Float.abs (Value.to_float v -. expected) < 1e-9)

let prop_min_is_list_min =
  Helpers.qcheck_case "min_ = List minimum" ~count:60
    QCheck2.Gen.(list_size (int_bound 15) (int_range (-100) 100))
    (fun xs ->
      let v = eval_expr (S.min_ (ints xs)) in
      match (xs, Value.to_option v) with
      | [], None -> true
      | xs, Some m -> Value.to_int m = List.fold_left min max_int xs
      | _ -> false)

(* ---- native iterations ------------------------------------------------ *)

let loop_prog iters =
  S.program
    ~ret:S.(var "acc")
    [ S.s_var "acc" (S.int_ 0);
      S.s_var "i" (S.int_ 0);
      S.while_
        S.(var "i" < int_ iters)
        [ S.assign "acc" S.(var "acc" + count (read "t"));
          S.assign "i" S.(var "i" + int_ 1) ] ]

let test_native_iterations_cheaper () =
  let tables = [ ("t", List.init 10 Value.int) ] in
  let overheads profile =
    (* same cluster, same program; isolate the per-job submission cost by
       comparing 1 vs 9 iterations under each profile *)
    let run iters =
      let algo = Emma.parallelize ~opts:Pipeline.no_opts (loop_prog iters) in
      match
        Emma.run_on
          Emma.{ cluster = Emma_engine.Cluster.laptop (); profile; timeout_s = None }
          algo ~tables
      with
      | Emma.Finished { metrics; _ } -> metrics.Emma.Metrics.sim_time_s
      | _ -> Alcotest.fail "run failed"
    in
    (run 9 -. run 1) /. 8.0 (* marginal cost per extra iteration *)
  in
  let spark_marginal = overheads Emma_engine.Cluster.spark_like in
  let flink_marginal = overheads Emma_engine.Cluster.flink_like in
  let spark_job = Emma_engine.Cluster.spark_like.Emma_engine.Cluster.job_overhead_s in
  let flink_job = Emma_engine.Cluster.flink_like.Emma_engine.Cluster.job_overhead_s in
  Alcotest.(check bool) "spark pays the full job overhead per iteration" true
    (spark_marginal >= spark_job);
  Alcotest.(check bool) "flink's native iterations pay a fraction" true
    (flink_marginal < 0.5 *. flink_job)

let suite =
  [ ( "fold_aliases",
      [ Alcotest.test_case "product" `Quick test_product;
        Alcotest.test_case "plain min/max" `Quick test_plain_min_max;
        Alcotest.test_case "avg" `Quick test_avg;
        Alcotest.test_case "avg fuses to one slot" `Quick test_avg_fuses;
        prop_avg_matches_reference;
        prop_min_is_list_min;
        Alcotest.test_case "native iterations cheaper" `Quick test_native_iterations_cheaper ] )
  ]
