(* CLI argument hygiene: invalid flag values die with a one-line
   actionable error and exit code 2 — before any work is scheduled —
   and the chaos-rates parser rejects rather than clamps.

   The spawn tests run the real binary (../bin/emma_cli.exe, a declared
   test dependency) so they cover the actual wiring, not a re-creation
   of it. *)

module Faults = Emma_engine.Faults

(* ---------------------------------------------------------------- *)
(* Faults.rates_of_string                                             *)
(* ---------------------------------------------------------------- *)

let test_rates_parse_ok () =
  match Faults.rates_of_string "task=0.1,oom=0.5,slow=4" with
  | Error e -> Alcotest.failf "expected a parse, got: %s" e
  | Ok r ->
      Alcotest.(check (float 0.0)) "task" 0.1 r.Faults.task_fail;
      Alcotest.(check (float 0.0)) "oom" 0.5 r.Faults.oom_kill;
      Alcotest.(check (float 0.0)) "slow" 4.0 r.Faults.straggler_slowdown;
      Alcotest.(check (float 0.0)) "unlisted keys stay 0" 0.0 r.Faults.loop_loss

let expect_error name input =
  match Faults.rates_of_string input with
  | Ok _ -> Alcotest.failf "%s: %S should have been rejected" name input
  | Error e ->
      Alcotest.(check bool) (name ^ ": error is one line") false
        (String.contains e '\n')

let test_rates_rejected () =
  expect_error "probability above 1" "task=1.5";
  expect_error "negative probability" "exec=-0.1";
  expect_error "oom out of range" "oom=2";
  expect_error "slowdown below 1" "slow=0.5";
  expect_error "unknown key" "bogus=0.1";
  expect_error "not a number" "task=abc";
  expect_error "missing value" "task"

(* ---------------------------------------------------------------- *)
(* The binary: bad flag values exit 2 before doing any work           *)
(* ---------------------------------------------------------------- *)

(* under `dune runtest` the cwd is _build/default/test; under
   `dune exec test/test_main.exe` it is the project root *)
let cli =
  let candidates =
    [ "../bin/emma_cli.exe"; "_build/default/bin/emma_cli.exe" ]
  in
  match List.find_opt Sys.file_exists candidates with
  | Some p -> p
  | None -> List.hd candidates

let run_cli args =
  Sys.command (Filename.quote_command cli args ^ " >/dev/null 2>&1")

let test_bad_flags_exit_2 () =
  List.iter
    (fun (name, args) ->
      Alcotest.(check int) name 2 (run_cli ("run" :: "q1" :: args)))
    [ ("zero memory budget", [ "--mem-per-slot"; "0" ]);
      ("negative memory budget", [ "--mem-per-slot=-5" ]);
      ("negative checkpoint interval", [ "--checkpoint-every=-1" ]);
      ("zero checkpoint interval", [ "--checkpoint-every"; "0" ]);
      ("zero max-inflight", [ "--max-inflight"; "0" ]);
      ("chaos probability out of range", [ "--chaos-seed"; "1"; "--chaos-rates"; "task=1.5" ]);
      ("unknown chaos key", [ "--chaos-seed"; "1"; "--chaos-rates"; "bogus=0.1" ]);
      ("chaos rates without a seed", [ "--chaos-rates"; "task=0.1" ]) ]

let test_bad_chunk_exits_2 () =
  List.iter
    (fun (name, args) ->
      Alcotest.(check int) name 2 (run_cli ("run" :: "q1" :: args)))
    [ ("zero chunk", [ "--chunk"; "0" ]);
      ("negative chunk", [ "--chunk=-4" ]);
      ("non-numeric chunk", [ "--chunk"; "banana" ]) ]

let test_chunk_accepted () =
  Alcotest.(check int) "--chunk auto exits 0" 0 (run_cli [ "run"; "q1"; "--chunk"; "auto" ]);
  Alcotest.(check int) "--chunk 64 exits 0" 0
    (run_cli [ "run"; "q1"; "--chunk"; "64"; "--domains"; "4" ])

let test_valid_flags_accepted () =
  (* the validations must not reject a legitimate governed run *)
  Alcotest.(check int) "governed run exits 0" 0
    (run_cli [ "run"; "q1"; "--mem-per-slot"; "1e6"; "--spill"; "--max-inflight"; "4" ])

(* run/bench/serve share Config.of_cli, so the new flags get the same
   exit-2 hygiene on every subcommand *)
let test_bad_udf_mode_exits_2 () =
  Alcotest.(check int) "--udf-mode bogus exits 2" 2
    (run_cli [ "run"; "q1"; "--udf-mode"; "bogus" ]);
  Alcotest.(check int) "--udf-mode interp exits 0" 0
    (run_cli [ "run"; "q1"; "--udf-mode"; "interp" ])

let test_bad_plan_cache_exits_2 () =
  List.iter
    (fun (name, args) -> Alcotest.(check int) name 2 (run_cli args))
    [ ("negative plan cache", [ "serve"; "--events"; "2"; "--plan-cache=-3" ]);
      ("garbage plan cache", [ "serve"; "--events"; "2"; "--plan-cache"; "0x" ]) ]

let test_bad_serve_flags_exit_2 () =
  List.iter
    (fun (name, args) -> Alcotest.(check int) name 2 (run_cli ("serve" :: args)))
    [ ("zero events", [ "--events"; "0" ]);
      ("non-positive rate", [ "--events"; "2"; "--rate"; "0" ]);
      ("non-positive zipf", [ "--events"; "2"; "--zipf=-1" ]);
      ("zero tenant weight", [ "--events"; "2"; "--tenants"; "a:0" ]);
      ("unknown serve query", [ "--events"; "2"; "--queries"; "nope" ]);
      ("bad udf mode through serve", [ "--events"; "2"; "--udf-mode"; "bogus" ]) ]

let test_serve_accepted () =
  Alcotest.(check int) "tiny sim serve exits 0" 0
    (run_cli
       [ "serve"; "--events"; "4"; "--queries"; "group-min"; "--tenants";
         "acme:2,beta"; "--seed"; "3" ])

(* robustness flags (--deadline / --max-queue / --breaker / --drain-after)
   validate through the same Config.of_cli path: one-line exit-2 errors *)
let test_bad_robustness_flags_exit_2 () =
  List.iter
    (fun (name, args) -> Alcotest.(check int) name 2 (run_cli args))
    [ ("zero deadline (run)", [ "run"; "q1"; "--deadline"; "0" ]);
      ("zero timeout (run)", [ "run"; "q1"; "--timeout"; "0" ]);
      ("negative deadline (serve)", [ "serve"; "--events"; "2"; "--deadline=-1" ]);
      ("zero max-queue", [ "serve"; "--events"; "2"; "--max-queue"; "0" ]);
      ("negative max-queue", [ "serve"; "--events"; "2"; "--max-queue=-4" ]);
      ("zero breaker threshold", [ "serve"; "--events"; "2"; "--breaker"; "0" ]);
      ("garbage breaker", [ "serve"; "--events"; "2"; "--breaker"; "lots" ]);
      ("zero breaker cool-down", [ "serve"; "--events"; "2"; "--breaker"; "3:0" ]);
      ("negative drain-after", [ "serve"; "--events"; "2"; "--drain-after=-1" ]) ]

let test_robustness_flags_accepted () =
  Alcotest.(check int) "generous deadline run exits 0" 0
    (run_cli [ "run"; "group-min"; "--deadline"; "1e9" ]);
  Alcotest.(check int) "serve with the full robustness set exits 0" 0
    (run_cli
       [ "serve"; "--events"; "4"; "--queries"; "group-min"; "--deadline"; "1e9";
         "--max-queue"; "8"; "--breaker"; "3:20"; "--drain-after"; "1e9" ])

let test_tight_deadline_exits_3 () =
  (* a vanishing per-query budget cancels at the first safepoint; the CLI
     maps Cancelled to the same exit code as a timeout *)
  Alcotest.(check int) "--deadline 1e-9 exits 3" 3
    (run_cli [ "run"; "group-min"; "--deadline"; "1e-9" ])

let test_conflicting_timeouts_exit_2 () =
  (* serve builds its runtime with a legacy default timeout; an explicit
     conflicting --timeout must die in validation, not race it *)
  Alcotest.(check int) "conflicting --timeout exits 2" 2
    (run_cli [ "serve"; "--events"; "2"; "--timeout"; "7" ]);
  Alcotest.(check int) "agreeing --timeout exits 0" 0
    (run_cli
       [ "serve"; "--events"; "2"; "--queries"; "group-min"; "--timeout"; "3600" ])

(* durability flags (--wal / --recover / --wal-sync / --snapshot-every /
   --wal-crash) validate through Config.of_cli and the serve wiring *)

let rec rm_rf path =
  if Sys.file_exists path then
    if Sys.is_directory path then begin
      Array.iter (fun f -> rm_rf (Filename.concat path f)) (Sys.readdir path);
      Sys.rmdir path
    end
    else Sys.remove path

let with_temp_dir f =
  let d =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "emma-test-cli-%d" (Unix.getpid ()))
  in
  rm_rf d;
  Fun.protect ~finally:(fun () -> rm_rf d) (fun () -> f d)

let with_temp_file contents f =
  let path = Filename.temp_file "emma-test-arrivals" ".txt" in
  Out_channel.with_open_bin path (fun oc -> Out_channel.output_string oc contents);
  Fun.protect ~finally:(fun () -> Sys.remove path) (fun () -> f path)

let test_bad_wal_flags_exit_2 () =
  with_temp_dir @@ fun dir ->
  List.iter
    (fun (name, args) ->
      Alcotest.(check int) name 2
        (run_cli ("serve" :: "--events" :: "2" :: args)))
    [ ("--wal-sync without --wal", [ "--wal-sync"; "always" ]);
      ("bad --wal-sync value", [ "--wal"; dir; "--wal-sync"; "sometimes" ]);
      ("zero batch", [ "--wal"; dir; "--wal-sync"; "batch:0" ]);
      ("--snapshot-every without --wal", [ "--snapshot-every"; "4" ]);
      ("zero --snapshot-every", [ "--wal"; dir; "--snapshot-every"; "0" ]);
      ("--wal-crash without --wal", [ "--wal-crash"; "3" ]);
      ("garbage --wal-crash", [ "--wal"; dir; "--wal-crash"; "x" ]);
      ("--wal plus --recover", [ "--wal"; dir; "--recover"; dir ]);
      ("empty --wal path", [ "--wal"; "" ]);
      ("--wal in real mode", [ "--wal"; dir; "--mode"; "real" ]) ]

let test_wal_roundtrip_exits_0 () =
  with_temp_dir @@ fun dir ->
  let base = [ "serve"; "--events"; "4"; "--queries"; "group-min" ] in
  Alcotest.(check int) "journaled serve exits 0" 0
    (run_cli (base @ [ "--wal"; dir; "--wal-sync"; "batch:8";
                       "--snapshot-every"; "2" ]));
  Alcotest.(check bool) "journal segment written" true
    (Array.exists
       (fun f -> Filename.check_suffix f ".seg")
       (Sys.readdir dir));
  Alcotest.(check int) "recovery of a complete journal exits 0" 0
    (run_cli (base @ [ "--recover"; dir ]))

(* --arrivals: malformed or truncated trace files die with exit 2 before
   any query is scheduled, as does a trace naming an unknown tenant *)
let test_bad_arrivals_exit_2 () =
  let serve file = run_cli [ "serve"; "--arrivals"; file ] in
  Alcotest.(check int) "nonexistent arrivals file" 2
    (serve "/nonexistent/arrivals.txt");
  List.iter
    (fun (name, contents) ->
      with_temp_file contents (fun file ->
          Alcotest.(check int) name 2 (serve file)))
    [ ("truncated line (missing query field)", "0.5 acme q1\n1.0 acme\n");
      ("too many fields", "0.5 acme q1 extra\n");
      ("non-numeric arrival time", "abc acme q1\n");
      ("negative arrival time", "-1.0 acme q1\n");
      ("unknown tenant in the trace", "0.5 nobody q1\n");
      ("unknown query in the trace", "0.5 acme nope\n") ]

let test_arrivals_accepted () =
  with_temp_file "# comment\n0.500000 acme q1\n\n1.000000 beta group-min\n"
    (fun file ->
      Alcotest.(check int) "well-formed arrivals file exits 0" 0
        (run_cli
           [ "serve"; "--arrivals"; file; "--tenants"; "acme:2,beta";
             "--queries"; "q1,group-min" ]))

let suite =
  [ ( "cli_args",
      [ Alcotest.test_case "chaos rates parse" `Quick test_rates_parse_ok;
        Alcotest.test_case "chaos rates rejected, not clamped" `Quick
          test_rates_rejected;
        Alcotest.test_case "bad flag values exit 2" `Quick test_bad_flags_exit_2;
        Alcotest.test_case "bad --chunk values exit 2" `Quick test_bad_chunk_exits_2;
        Alcotest.test_case "--chunk auto/N accepted" `Quick test_chunk_accepted;
        Alcotest.test_case "valid flags accepted" `Quick test_valid_flags_accepted;
        Alcotest.test_case "bad --udf-mode exits 2" `Quick test_bad_udf_mode_exits_2;
        Alcotest.test_case "bad --plan-cache exits 2" `Quick
          test_bad_plan_cache_exits_2;
        Alcotest.test_case "bad serve flags exit 2" `Quick
          test_bad_serve_flags_exit_2;
        Alcotest.test_case "tiny serve run accepted" `Quick test_serve_accepted;
        Alcotest.test_case "bad robustness flags exit 2" `Quick
          test_bad_robustness_flags_exit_2;
        Alcotest.test_case "robustness flags accepted" `Quick
          test_robustness_flags_accepted;
        Alcotest.test_case "tight --deadline exits 3" `Quick
          test_tight_deadline_exits_3;
        Alcotest.test_case "conflicting timeouts exit 2" `Quick
          test_conflicting_timeouts_exit_2;
        Alcotest.test_case "bad wal flags exit 2" `Quick
          test_bad_wal_flags_exit_2;
        Alcotest.test_case "wal then recover exits 0" `Quick
          test_wal_roundtrip_exits_0;
        Alcotest.test_case "bad arrivals files exit 2" `Quick
          test_bad_arrivals_exit_2;
        Alcotest.test_case "arrivals file accepted" `Quick
          test_arrivals_accepted ] )
  ]
