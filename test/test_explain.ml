(* Golden-file tests for `emma explain`.

   The explain text is a deterministic function of (program, opts): the
   compile runs under Expr.with_fresh_reset, so generated names do not
   depend on whatever else the process compiled first. These tests pin the
   rendering for four registry programs against committed golden files.

   Regenerate after an intentional compiler/renderer change with

     EMMA_UPDATE_GOLDEN=1 dune runtest

   which rewrites the files in test/golden/ (in the source tree) and
   fails nothing. *)

module Explain = Emma_compiler.Explain
module Pipeline = Emma_compiler.Pipeline
module Pr = Emma_programs

let cases =
  [ ("q1", Pr.Tpch_q1.program Pr.Tpch_q1.default_params);
    ("q3", Pr.Tpch_q3.program Pr.Tpch_q3.default_params);
    ("kmeans", Pr.Kmeans.program Pr.Kmeans.default_params);
    ("spam", Pr.Spam_workflow.program Pr.Spam_workflow.default_params) ]

let update_golden = Sys.getenv_opt "EMMA_UPDATE_GOLDEN" = Some "1"

(* Tests execute in _build/default/test; golden updates must land in the
   source tree (strip the "/_build/default" segment from the cwd) so they
   can be committed. Reads try the source tree first, then the sandbox
   copy dune stages via the (deps (glob_files golden/*.txt)) stanza. *)
let find_sub hay needle =
  let n = String.length needle in
  let rec go i =
    if i + n > String.length hay then None
    else if String.sub hay i n = needle then Some i
    else go (i + 1)
  in
  go 0

let contains hay needle = find_sub hay needle <> None

let golden_dir_candidates () =
  let cwd = Sys.getcwd () in
  let seg = "/_build/default" in
  let src =
    match find_sub cwd seg with
    | Some i ->
        (* under dune runtest: cwd is _build/default/test *)
        [ Filename.concat
            (String.sub cwd 0 i
            ^ String.sub cwd
                (i + String.length seg)
                (String.length cwd - i - String.length seg))
            "golden" ]
    | None ->
        (* under dune exec from the project root *)
        [ Filename.concat cwd "test/golden" ]
  in
  src @ [ Filename.concat cwd "golden" ]

let golden_write_dirs () =
  match golden_dir_candidates () with
  | src :: rest ->
      (* source tree first so the update can be committed; also refresh
         the staged _build copy when it exists *)
      src :: List.filter (fun d -> Sys.file_exists d) rest
  | [] -> []

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let write_file path s =
  let oc = open_out_bin path in
  output_string oc s;
  close_out oc

let golden_test name prog () =
  let got = Explain.to_string (Explain.run prog) in
  let file = Printf.sprintf "explain_%s.txt" name in
  let dirs = golden_dir_candidates () in
  if update_golden then
    List.iter
      (fun dir ->
        if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
        write_file (Filename.concat dir file) got)
      (golden_write_dirs ())
  else
    let path =
      List.find_opt (fun d -> Sys.file_exists (Filename.concat d file)) dirs
    in
    match path with
    | None ->
        Alcotest.failf "golden file %s missing; run EMMA_UPDATE_GOLDEN=1 dune runtest"
          file
    | Some dir ->
        let expected = read_file (Filename.concat dir file) in
        if got <> expected then
          Alcotest.failf
            "explain %s drifted from golden/%s (if intentional, regenerate with \
             EMMA_UPDATE_GOLDEN=1 dune runtest).\n\
             --- expected ---\n\
             %s\n\
             --- got ---\n\
             %s"
            name file expected got

(* The rendering must not depend on process history: compiling other
   programs in between (which advances the global fresh-name counter)
   must not change the text. *)
let test_explain_stable () =
  let prog = Pr.Kmeans.program Pr.Kmeans.default_params in
  let first = Explain.to_string (Explain.run prog) in
  List.iter (fun (_, p) -> ignore (Emma.parallelize p)) cases;
  let second = Explain.to_string (Explain.run prog) in
  Alcotest.(check string) "explain is history-independent" first second

(* Every explain carries the udf-compile analysis phase: always enabled,
   never changing the plans (no-op), and reporting the staged-UDF counts
   the engine will compile at run time. *)
let test_explain_udf_compile_phase () =
  let prog = Pr.Tpch_q1.program Pr.Tpch_q1.default_params in
  let t = Explain.run prog in
  let ph =
    match
      List.find_opt (fun o -> o.Pipeline.ph_name = "udf-compile") t.Explain.phases
    with
    | Some ph -> ph
    | None -> Alcotest.fail "explain has no udf-compile phase"
  in
  Alcotest.(check bool) "udf-compile enabled" true ph.Pipeline.ph_enabled;
  Alcotest.(check bool) "udf-compile is analysis-only" false ph.Pipeline.ph_changed;
  Alcotest.(check int) "udf-compile preserves node count" ph.Pipeline.ph_before
    ph.Pipeline.ph_after;
  let has k = List.mem_assoc k ph.Pipeline.ph_detail in
  Alcotest.(check bool) "reports udf count" true (has "udfs");
  Alcotest.(check bool) "reports fold algebras" true (has "fold algebras");
  Alcotest.(check bool) "reports closed udfs" true (has "closed");
  (* Q1 is a map/filter/aggBy pipeline: it must stage at least one UDF and
     one fold algebra. *)
  let n k = int_of_string (List.assoc k ph.Pipeline.ph_detail) in
  Alcotest.(check bool) "q1 stages udfs" true (n "udfs" > 0);
  Alcotest.(check bool) "q1 stages a fold algebra" true (n "fold algebras" > 0)

(* Disabled optimizations show up as "off" phases and "not applied". *)
let test_explain_opts () =
  let prog = Pr.Tpch_q1.program Pr.Tpch_q1.default_params in
  let opts = { Pipeline.default_opts with Pipeline.fuse = false } in
  let t = Explain.run ~opts prog in
  let fusion =
    List.find (fun o -> o.Pipeline.ph_name = "fusion") t.Explain.phases
  in
  Alcotest.(check bool) "fusion phase disabled" false fusion.Pipeline.ph_enabled;
  let s = Explain.to_string t in
  Alcotest.(check bool) "report says fusion not applied" true
    (contains s "fold-group fusion   not applied")

let suite =
  [ ( "explain_golden",
      List.map
        (fun (name, prog) ->
          Alcotest.test_case ("golden: " ^ name) `Quick (golden_test name prog))
        cases
      @ [ Alcotest.test_case "history-independent" `Quick test_explain_stable;
          Alcotest.test_case "udf-compile phase" `Quick test_explain_udf_compile_phase;
          Alcotest.test_case "disabled opts rendered" `Quick test_explain_opts ] ) ]
