module Value = Emma_value.Value
module Expr = Emma_lang.Expr
module S = Emma_lang.Surface
module Resugar = Emma_comp.Resugar
module Normalize = Emma_comp.Normalize
open Helpers

(* --- resugaring shapes ------------------------------------------------ *)

let test_resugar_map () =
  let e = S.(map (lam "x" (fun x -> x + int_ 1)) (read "t")) in
  match Resugar.expr e with
  | Expr.Comp { head = _; quals = [ Expr.QGen ("x", Expr.Read _) ]; alg = Expr.Alg_bag } -> ()
  | e -> Alcotest.failf "map did not resugar: %s" (Emma_lang.Pretty.expr_to_string e)

let test_resugar_fold () =
  let e = S.(sum (read "t")) in
  match Resugar.expr e with
  | Expr.Comp { quals = [ Expr.QGen (_, Expr.Read _) ]; alg = Expr.Alg_fold fns; _ } ->
      Alcotest.(check bool) "sum tag" true (fns.Expr.f_tag = Expr.Tag_sum)
  | e -> Alcotest.failf "fold did not resugar: %s" (Emma_lang.Pretty.expr_to_string e)

let test_resugar_filter () =
  let e = S.(with_filter (lam "x" (fun x -> x > int_ 0)) (read "t")) in
  match Resugar.expr e with
  | Expr.Comp { head = Expr.Var x; quals = [ Expr.QGen (x', _); Expr.QGuard _ ]; _ }
    when x = x' ->
      ()
  | e -> Alcotest.failf "filter did not resugar: %s" (Emma_lang.Pretty.expr_to_string e)

(* --- the paper's running example -------------------------------------- *)

(* distances = ctrds.flatMap(x => newCtrds.withFilter(y => x.id == y.id)
                                          .map(y => dist(x, y)))
   must normalize to
   [[ dist(x,y) | x <- ctrds, y <- newCtrds, x.id == y.id ]] *)
let test_paper_distances_example () =
  let desugared =
    S.(
      flat_map
        (lam "x" (fun x ->
             map
               (lam "y" (fun y -> vdist (field x "pos") (field y "pos")))
               (with_filter (lam "y" (fun y -> field x "id" = field y "id")) (var "newCtrds"))))
        (var "ctrds"))
  in
  let normalized = Normalize.normalize desugared in
  (match normalized with
  | Expr.Comp
      { head = Expr.Prim (Emma_lang.Prim.Vdist, _);
        quals =
          [ Expr.QGen (_, Expr.Var "ctrds");
            Expr.QGen (_, Expr.Var "newCtrds");
            Expr.QGuard (Expr.Prim (Emma_lang.Prim.Eq, _)) ];
        alg = Expr.Alg_bag } ->
      ()
  | e ->
      Alcotest.failf "unexpected normal form:@.%s" (Emma_lang.Pretty.expr_to_string e));
  (* and the sum over it becomes a single fold comprehension *)
  let summed = Normalize.normalize (S.sum desugared) in
  match summed with
  | Expr.Comp { quals = [ _; _; _ ]; alg = Expr.Alg_fold fns; _ } ->
      Alcotest.(check bool) "sum algebra" true (fns.Expr.f_tag = Expr.Tag_sum)
  | e -> Alcotest.failf "sum did not fuse: %s" (Emma_lang.Pretty.expr_to_string e)

let test_exists_canonicalized () =
  (* blacklist example: the exists guard must survive normalization in
     canonical form (identity single), ready for semi-join extraction. *)
  let e =
    S.(
      for_
        [ gen "e" (read "emails");
          when_ (exists (lam "b" (fun b -> field b "ip" = field (var "e") "ip")) (read "bl")) ]
        ~yield:(var "e"))
  in
  match Normalize.normalize e with
  | Expr.Comp { quals = [ Expr.QGen (_, _); Expr.QGuard (Expr.Comp inner) ]; _ } -> begin
      match inner.Expr.alg with
      | Expr.Alg_fold fns ->
          Alcotest.(check bool) "exists tag" true (fns.Expr.f_tag = Expr.Tag_exists);
          (match fns.Expr.f_single with
          | Expr.Lam (x, Expr.Var y) when x = y -> ()
          | _ -> Alcotest.fail "exists single not canonicalized to identity");
          (* the head must now be the applied predicate *)
          (match inner.Expr.head with
          | Expr.Prim (Emma_lang.Prim.Eq, _) -> ()
          | e -> Alcotest.failf "head is not the predicate: %s" (Emma_lang.Pretty.expr_to_string e))
      | Expr.Alg_bag -> Alcotest.fail "inner algebra should be a fold"
    end
  | e -> Alcotest.failf "unexpected normal form: %s" (Emma_lang.Pretty.expr_to_string e)

let test_guard_splitting () =
  let e =
    S.(
      for_
        [ gen "x" (read "t"); when_ ((var "x" > int_ 0) && (var "x" < int_ 10)) ]
        ~yield:(var "x"))
  in
  match Normalize.normalize e with
  | Expr.Comp { quals = [ Expr.QGen _; Expr.QGuard g1; Expr.QGuard g2 ]; _ } ->
      (match (g1, g2) with
      | Expr.Prim (Emma_lang.Prim.Gt, _), Expr.Prim (Emma_lang.Prim.Lt, _) -> ()
      | _ -> Alcotest.fail "guards not split in order")
  | e -> Alcotest.failf "unexpected: %s" (Emma_lang.Pretty.expr_to_string e)

let test_inline_lets () =
  let e =
    Expr.Let ("tmp", S.(int_ 1 + int_ 2), S.(Expr.Var "tmp" * int_ 10))
  in
  (match Normalize.inline_lets e with
  | Expr.Let _ -> Alcotest.fail "single-use let not inlined"
  | _ -> ());
  (* multi-use expensive RHS is kept *)
  let e2 = Expr.Let ("t", S.(sum (read "x")), S.(Expr.Var "t" + Expr.Var "t")) in
  match Normalize.inline_lets e2 with
  | Expr.Let _ -> ()
  | _ -> Alcotest.fail "multi-use let should not be inlined"

(* --- semantic preservation (the big property) -------------------------- *)

let tables_of rows = [ ("rows", rows) ]

let prop_normalize_preserves_semantics =
  Helpers.qcheck_case "normalize preserves semantics on random pipelines" ~count:150
    QCheck2.Gen.(pair Helpers.rows_gen Helpers.terminated_pipeline_gen)
    (fun (rows, e) ->
      let v1 = eval_expr ~tables:(tables_of rows) e in
      let v2 = eval_expr ~tables:(tables_of rows) (Normalize.normalize e) in
      Value.equal v1 v2)

let prop_inline_preserves_semantics =
  Helpers.qcheck_case "inline_lets preserves semantics" ~count:80
    QCheck2.Gen.(pair Helpers.rows_gen Helpers.pipeline_gen)
    (fun (rows, e) ->
      let wrapped = Expr.Let ("t", e, S.(count (Expr.Var "t"))) in
      Value.equal
        (eval_expr ~tables:(tables_of rows) wrapped)
        (eval_expr ~tables:(tables_of rows) (Normalize.inline_lets wrapped)))

(* Structural invariants of normal forms: after normalization no sugar
   survives — every map/flatMap/withFilter/fold chain has been absorbed
   into a comprehension and every flatten eliminated. *)
let normal_form_ok e =
  not
    (Expr.exists_expr
       (function
         | Expr.Map _ | Expr.FlatMap _ | Expr.Filter _ | Expr.Fold _ | Expr.Flatten _ -> true
         | _ -> false)
       e)

let prop_normal_form_is_comprehended =
  Helpers.qcheck_case "normal forms contain no uncomprehended operators" ~count:120
    Helpers.terminated_pipeline_gen
    (fun e -> normal_form_ok (Normalize.normalize e))

let test_paper_programs_normal_form () =
  List.iter
    (fun (name, prog) ->
      let normalized = Emma_compiler.Pipeline.normalized prog in
      Expr.iter_program_exprs
        (fun e ->
          if not (normal_form_ok e) then
            Alcotest.failf "%s: uncomprehended operator survives normalization" name)
        normalized)
    [ ("kmeans", Emma_programs.Kmeans.(program default_params));
      ("pagerank", Emma_programs.Pagerank.(program (default_params ~n_pages:10)));
      ("cc", Emma_programs.Connected_components.(program default_params));
      ("spam", Emma_programs.Spam_workflow.(program default_params));
      ("q1", Emma_programs.Tpch_q1.(program default_params));
      ("q3", Emma_programs.Tpch_q3.(program default_params));
      ("q4", Emma_programs.Tpch_q4.(program default_params)) ]

let prop_normalize_idempotent_semantics =
  Helpers.qcheck_case "normalize is semantically idempotent" ~count:60
    QCheck2.Gen.(pair Helpers.rows_gen Helpers.terminated_pipeline_gen)
    (fun (rows, e) ->
      let tables = [ ("rows", rows) ] in
      let n1 = Normalize.normalize e in
      let n2 = Normalize.normalize_expr n1 in
      Value.equal (eval_expr ~tables n1) (eval_expr ~tables n2))

let suite =
  [ ( "normalize",
      [ Alcotest.test_case "resugar map" `Quick test_resugar_map;
        Alcotest.test_case "resugar fold" `Quick test_resugar_fold;
        Alcotest.test_case "resugar filter" `Quick test_resugar_filter;
        Alcotest.test_case "paper distances example" `Quick test_paper_distances_example;
        Alcotest.test_case "exists canonicalization" `Quick test_exists_canonicalized;
        Alcotest.test_case "guard splitting" `Quick test_guard_splitting;
        Alcotest.test_case "let inlining" `Quick test_inline_lets;
        prop_normalize_preserves_semantics;
        prop_inline_preserves_semantics;
        prop_normal_form_is_comprehended;
        Alcotest.test_case "paper programs normalize fully" `Quick
          test_paper_programs_normal_form;
        prop_normalize_idempotent_semantics ] ) ]
