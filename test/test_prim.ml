module Value = Emma_value.Value
module Prim = Emma_lang.Prim

let i = Value.int
let f = Value.float
let b = Value.bool
let s = Value.string
let apply = Prim.apply

let check = Helpers.check_value

let test_arith () =
  check "add int" (i 5) (apply Prim.Add [ i 2; i 3 ]);
  check "add mixed" (f 5.5) (apply Prim.Add [ i 2; f 3.5 ]);
  check "sub" (i (-1)) (apply Prim.Sub [ i 2; i 3 ]);
  check "mul" (i 6) (apply Prim.Mul [ i 2; i 3 ]);
  check "div int" (i 2) (apply Prim.Div [ i 7; i 3 ]);
  check "div float" (f 3.5) (apply Prim.Div [ f 7.0; f 2.0 ]);
  check "mod" (i 1) (apply Prim.Mod [ i 7; i 3 ]);
  check "neg int" (i (-2)) (apply Prim.Neg [ i 2 ]);
  check "neg float" (f (-2.5)) (apply Prim.Neg [ f 2.5 ]);
  check "abs" (i 4) (apply Prim.Abs [ i (-4) ]);
  check "sqrt" (f 3.0) (apply Prim.Sqrt [ f 9.0 ]);
  check "floor" (f 2.0) (apply Prim.Floor [ f 2.9 ]);
  check "to_float" (f 2.0) (apply Prim.To_float [ i 2 ]);
  check "to_int truncates" (i 2) (apply Prim.To_int [ f 2.9 ]);
  check "min2" (i 1) (apply Prim.Min2 [ i 1; i 2 ]);
  check "max2" (i 2) (apply Prim.Max2 [ i 1; i 2 ])

let test_arith_errors () =
  let expect_error name fn =
    match fn () with
    | exception Value.Type_error _ -> ()
    | _ -> Alcotest.failf "%s: expected Type_error" name
  in
  expect_error "div by zero" (fun () -> apply Prim.Div [ i 1; i 0 ]);
  expect_error "mod by zero" (fun () -> apply Prim.Mod [ i 1; i 0 ]);
  expect_error "add strings" (fun () -> apply Prim.Add [ s "a"; s "b" ]);
  expect_error "neg bool" (fun () -> apply Prim.Neg [ b true ])

let test_comparisons () =
  check "eq" (b true) (apply Prim.Eq [ i 1; i 1 ]);
  check "eq across shapes" (b false) (apply Prim.Eq [ i 1; f 1.0 ]);
  check "ne" (b true) (apply Prim.Ne [ i 1; i 2 ]);
  check "lt" (b true) (apply Prim.Lt [ i 1; i 2 ]);
  check "le" (b true) (apply Prim.Le [ i 2; i 2 ]);
  check "gt strings" (b true) (apply Prim.Gt [ s "b"; s "a" ]);
  check "ge" (b false) (apply Prim.Ge [ i 1; i 2 ])

let test_bool () =
  check "and" (b false) (apply Prim.And [ b true; b false ]);
  check "or" (b true) (apply Prim.Or [ b true; b false ]);
  check "not" (b false) (apply Prim.Not [ b true ])

let test_strings () =
  check "concat" (s "ab") (apply Prim.Str_concat [ s "a"; s "b" ]);
  check "len" (i 3) (apply Prim.Str_len [ s "abc" ]);
  check "contains yes" (b true) (apply Prim.Str_contains [ s "hello"; s "ell" ]);
  check "contains no" (b false) (apply Prim.Str_contains [ s "hello"; s "xyz" ]);
  check "contains empty" (b true) (apply Prim.Str_contains [ s "hello"; s "" ])

let test_vectors () =
  let v a = Value.vector a in
  check "vadd" (v [| 4.0; 6.0 |]) (apply Prim.Vadd [ v [| 1.0; 2.0 |]; v [| 3.0; 4.0 |] ]);
  check "vsub" (v [| 2.0; 2.0 |]) (apply Prim.Vsub [ v [| 3.0; 4.0 |]; v [| 1.0; 2.0 |] ]);
  check "vscale" (v [| 2.0; 4.0 |]) (apply Prim.Vscale [ f 2.0; v [| 1.0; 2.0 |] ]);
  check "vdiv" (v [| 1.0; 2.0 |]) (apply Prim.Vdiv_scalar [ v [| 2.0; 4.0 |]; f 2.0 ]);
  check "vdot" (f 11.0) (apply Prim.Vdot [ v [| 1.0; 2.0 |]; v [| 3.0; 4.0 |] ]);
  check "vdist" (f 5.0) (apply Prim.Vdist [ v [| 0.0; 0.0 |]; v [| 3.0; 4.0 |] ]);
  check "vzeros" (v [| 0.0; 0.0; 0.0 |]) (apply Prim.Vzeros [ i 3 ])

let test_options () =
  check "some" (Value.some (i 1)) (apply Prim.Mk_some [ i 1 ]);
  check "none" Value.none (apply Prim.Mk_none []);
  check "is_some" (b true) (apply Prim.Is_some [ Value.some (i 1) ]);
  check "is_some none" (b false) (apply Prim.Is_some [ Value.none ]);
  check "opt_get" (i 1) (apply Prim.Opt_get [ Value.some (i 1) ]);
  check "get_or default" (i 9) (apply Prim.Opt_get_or [ Value.none; i 9 ]);
  check "get_or present" (i 1) (apply Prim.Opt_get_or [ Value.some (i 1); i 9 ]);
  match apply Prim.Opt_get [ Value.none ] with
  | exception Value.Type_error _ -> ()
  | _ -> Alcotest.fail "opt_get None should raise"

let test_blobs () =
  check "mk_blob" (Value.blob ~bytes:100 ~tag:7) (apply Prim.Mk_blob [ i 100; i 7 ]);
  check "blob_bytes" (i 100) (apply Prim.Blob_bytes [ Value.blob ~bytes:100 ~tag:7 ])

let test_arity_checked () =
  match apply Prim.Add [ i 1 ] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "arity mismatch should raise"

let test_name_roundtrip () =
  List.iter
    (fun p ->
      match Prim.of_name (Prim.name p) with
      | Some p' when p = p' -> ()
      | _ -> Alcotest.failf "of_name (name %s) failed" (Prim.name p))
    [ Prim.Add; Prim.Vdist; Prim.Mk_blob; Prim.Str_contains; Prim.Hash_value; Prim.Opt_get ]

let prop_min2_commutative =
  Helpers.qcheck_case "min2/max2 commutative and idempotent" ~count:100
    QCheck2.Gen.(pair small_int small_int)
    (fun (x, y) ->
      Value.equal (apply Prim.Min2 [ i x; i y ]) (apply Prim.Min2 [ i y; i x ])
      && Value.equal (apply Prim.Max2 [ i x; i y ]) (apply Prim.Max2 [ i y; i x ])
      && Value.equal (apply Prim.Min2 [ i x; i x ]) (i x))

let prop_hash_stable =
  Helpers.qcheck_case "hash prim = Value.hash" ~count:50 QCheck2.Gen.small_int (fun x ->
      Value.equal (apply Prim.Hash_value [ i x ]) (i (Value.hash (i x))))

let suite =
  [ ( "prim",
      [ Alcotest.test_case "arithmetic" `Quick test_arith;
        Alcotest.test_case "arithmetic errors" `Quick test_arith_errors;
        Alcotest.test_case "comparisons" `Quick test_comparisons;
        Alcotest.test_case "booleans" `Quick test_bool;
        Alcotest.test_case "strings" `Quick test_strings;
        Alcotest.test_case "vectors" `Quick test_vectors;
        Alcotest.test_case "options" `Quick test_options;
        Alcotest.test_case "blobs" `Quick test_blobs;
        Alcotest.test_case "arity checked" `Quick test_arity_checked;
        Alcotest.test_case "name round trip" `Quick test_name_roundtrip;
        prop_min2_commutative;
        prop_hash_stable ] ) ]
