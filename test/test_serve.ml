(* Emma_serve + Plan_cache correctness.

   - qcheck differential: for random pipelines, a plan-cache hit is
     bit-identical to a cold compile — value and cost-model metrics — at
     1, 2, 4 and 8 domains;
   - key sensitivity: the cache key moves with the plan, the compile
     opts and the table schema, and nothing else;
   - LRU eviction is deterministic (recency order, refreshed by probes);
   - the fair-share scheduler is starvation-free: a light tenant's
     queries are not parked behind a flooding tenant's backlog;
   - the sim-mode replay fingerprint is invariant across 20 replays and
     across 1/2/4/8-domain pools;
   - Arrival traces round-trip through the text format and reject
     malformed lines with one-line errors. *)

module S = Emma_lang.Surface
module Value = Emma.Value
module Metrics = Emma.Metrics
module Config = Emma.Config
module Session = Emma.Session
module Plan_cache = Emma.Plan_cache
module Pipeline = Emma_compiler.Pipeline
module Pool = Emma_util.Pool
module Serve = Emma_serve.Serve
module Arrival = Emma_serve.Arrival

let rows n =
  List.init n (fun i ->
      Value.record [ ("a", Value.Int i); ("b", Value.Int (i mod 5)) ])

let sum_prog =
  S.program
    ~ret:S.(sum (map (lam "x" (fun x -> field x "a")) (read "rows")))
    []

let count_prog = S.program ~ret:S.(count (read "rows")) []
let rt = Emma.spark ~timeout_s:3600.0 ()

let with_session ?config rt f =
  let s = Session.create ?config rt in
  Fun.protect ~finally:(fun () -> Session.close s) (fun () -> f s)

let finished_exn = function
  | Emma.Finished r -> r
  | Emma.Failed { reason; _ } -> Alcotest.failf "query failed: %s" reason
  | Emma.Timed_out _ -> Alcotest.fail "query timed out"
  | Emma.Cancelled _ -> Alcotest.fail "query cancelled"

(* ---------------------------------------------------------------- *)
(* qcheck differential: hit == cold, bit-identical, at 1/2/4/8 domains *)
(* ---------------------------------------------------------------- *)

let cost_fields (m : Metrics.t) =
  ( m.Metrics.sim_time_s,
    m.Metrics.shuffle_bytes,
    m.Metrics.broadcast_bytes,
    m.Metrics.stages,
    m.Metrics.jobs,
    m.Metrics.udf_invocations )

let prop_cached_equals_cold (e, data) =
  let prog = S.program ~ret:e [] in
  let tables = [ ("rows", data) ] in
  let reference = ref None in
  List.iter
    (fun domains ->
      let pool = Pool.create ~domains () in
      Fun.protect ~finally:(fun () -> Pool.shutdown pool) @@ fun () ->
      let config =
        Config.default |> Config.with_pool (Some pool)
        |> Config.with_plan_cache (Some 4)
      in
      with_session ~config rt @@ fun s ->
      let o_cold, i_cold = Session.submit s prog ~tables in
      let o_hit, i_hit = Session.submit s prog ~tables in
      if i_cold.Session.si_cache <> Session.Miss then
        QCheck2.Test.fail_report "first submit did not miss";
      if i_hit.Session.si_cache <> Session.Hit then
        QCheck2.Test.fail_report "second submit did not hit";
      let r_cold = finished_exn o_cold and r_hit = finished_exn o_hit in
      if not (Value.equal r_cold.Emma.value r_hit.Emma.value) then
        QCheck2.Test.fail_report "cached value differs from cold compile";
      if cost_fields r_cold.Emma.metrics <> cost_fields r_hit.Emma.metrics then
        QCheck2.Test.fail_report "cached cost metrics differ from cold compile";
      (* and both match the reference from the first domain count *)
      match !reference with
      | None -> reference := Some (r_cold.Emma.value, cost_fields r_cold.Emma.metrics)
      | Some (v0, c0) ->
          if not (Value.equal v0 r_cold.Emma.value) then
            QCheck2.Test.fail_reportf "value moved at %d domains" domains;
          if c0 <> cost_fields r_cold.Emma.metrics then
            QCheck2.Test.fail_reportf "cost metrics moved at %d domains" domains)
    [ 1; 2; 4; 8 ];
  true

let qcheck_differential =
  Helpers.qcheck_case ~count:15 "plan-cache hit == cold compile at 1/2/4/8 domains"
    QCheck2.Gen.(pair Helpers.terminated_pipeline_gen Helpers.rows_gen)
    prop_cached_equals_cold

(* ---------------------------------------------------------------- *)
(* Key sensitivity                                                    *)
(* ---------------------------------------------------------------- *)

let test_key_sensitivity () =
  let k = Pipeline.normalized_key in
  let same a b = a.Pipeline.ck_text = b.Pipeline.ck_text in
  Alcotest.(check bool) "same program, same key" true (same (k sum_prog) (k sum_prog));
  Alcotest.(check bool) "different program, different key" false
    (same (k sum_prog) (k count_prog));
  Alcotest.(check bool) "opts move the key" false
    (same (k ~opts:Pipeline.default_opts sum_prog) (k ~opts:Pipeline.no_opts sum_prog));
  Alcotest.(check bool) "schema moves the key" false
    (same (k ~schema:"rows=bag<{a:int}>" sum_prog) (k ~schema:"rows=bag<{a:float}>" sum_prog));
  Alcotest.(check bool) "crc follows the text" true
    ((k sum_prog).Pipeline.ck_crc = (k sum_prog).Pipeline.ck_crc)

(* ---------------------------------------------------------------- *)
(* LRU determinism                                                    *)
(* ---------------------------------------------------------------- *)

let test_lru_eviction_deterministic () =
  let plan = Pipeline.compile count_prog in
  let key s = { Pipeline.ck_crc = String.length s; ck_text = s } in
  let pc = Plan_cache.create ~capacity:2 in
  Alcotest.(check int) "store k1" 0 (Plan_cache.store pc (key "k1") plan);
  Alcotest.(check int) "store k2" 0 (Plan_cache.store pc (key "k2") plan);
  (* refresh k1: k2 becomes the least recently used entry *)
  Alcotest.(check bool) "probe k1 hits" true (Plan_cache.probe pc (key "k1") <> None);
  Alcotest.(check int) "store k3 evicts one" 1 (Plan_cache.store pc (key "k3") plan);
  Alcotest.(check bool) "k2 was the victim" true (Plan_cache.probe pc (key "k2") = None);
  Alcotest.(check bool) "k1 survived" true (Plan_cache.probe pc (key "k1") <> None);
  Alcotest.(check bool) "k3 resident" true (Plan_cache.probe pc (key "k3") <> None);
  let st = Plan_cache.stats pc in
  Alcotest.(check int) "evictions counted" 1 st.Plan_cache.evictions;
  Alcotest.(check int) "population at capacity" 2 st.Plan_cache.entries;
  (* same crc, different text: a collision must not alias *)
  let k_a = { Pipeline.ck_crc = 42; ck_text = "alpha" } in
  let k_b = { Pipeline.ck_crc = 42; ck_text = "bravo" } in
  let pc2 = Plan_cache.create ~capacity:4 in
  ignore (Plan_cache.store pc2 k_a plan);
  Alcotest.(check bool) "crc collision does not alias" true
    (Plan_cache.probe pc2 k_b = None)

let test_plan_cache_capacity_validated () =
  Alcotest.check_raises "capacity 0 rejected"
    (Invalid_argument "Plan_cache.create: capacity must be >= 1") (fun () ->
      ignore (Plan_cache.create ~capacity:0))

(* ---------------------------------------------------------------- *)
(* Serve: fixtures                                                    *)
(* ---------------------------------------------------------------- *)

let workload =
  [ ("sum", (sum_prog, [ ("rows", rows 30) ]));
    ("count", (count_prog, [ ("rows", rows 30) ])) ]

let tenants = [ Serve.tenant ~weight:2 "acme"; Serve.tenant "beta" ]

let small_trace =
  Arrival.generate ~seed:5 ~rate:3.0 ~alpha:1.1 ~tenants:[ "acme"; "beta" ]
    ~queries:[ "sum"; "count" ] ~n:12

let sim ?(pool : Pool.t option) ?(config = Config.default) events =
  let config =
    match pool with None -> config | Some p -> Config.with_pool (Some p) config
  in
  with_session ~config rt @@ fun s -> Serve.run_sim s tenants workload events

(* ---------------------------------------------------------------- *)
(* Replay invariance                                                  *)
(* ---------------------------------------------------------------- *)

let test_replay_fingerprint_20x () =
  let fp0 = Serve.fingerprint (sim small_trace) in
  for i = 2 to 20 do
    let fp = Serve.fingerprint (sim small_trace) in
    if fp <> fp0 then Alcotest.failf "replay %d produced a different fingerprint" i
  done

let test_replay_fingerprint_across_domains () =
  let fp0 = Serve.fingerprint (sim small_trace) in
  List.iter
    (fun domains ->
      let pool = Pool.create ~domains () in
      Fun.protect ~finally:(fun () -> Pool.shutdown pool) @@ fun () ->
      let fp = Serve.fingerprint (sim ~pool small_trace) in
      if fp <> fp0 then Alcotest.failf "fingerprint moved at %d domains" domains)
    [ 1; 2; 4; 8 ]

(* ---------------------------------------------------------------- *)
(* Fair share                                                         *)
(* ---------------------------------------------------------------- *)

let test_starvation_freedom () =
  (* tenant "acme" floods 24 queries at t=0; "beta" submits 3. On one
     service lane, deficit round-robin must interleave beta instead of
     parking it behind the flood. *)
  let flood =
    List.init 24 (fun _ -> { Arrival.at_s = 0.0; tenant = "acme"; query = "count" })
  in
  let light =
    List.init 3 (fun _ -> { Arrival.at_s = 0.0; tenant = "beta"; query = "count" })
  in
  let events = flood @ light in
  let config =
    Config.default |> Config.with_max_inflight (Some 1)
    |> Config.with_plan_cache (Some 4)
  in
  let c = sim ~config events in
  Alcotest.(check int) "every query ran" 27 (List.length c.Serve.sv_results);
  Alcotest.(check int) "one lane" 1 c.Serve.sv_lanes;
  let beta_last_finish =
    List.fold_left
      (fun acc (r : Serve.query_result) ->
        if r.Serve.qr_tenant = "beta" then max acc r.Serve.qr_finish_s else acc)
      0.0 c.Serve.sv_results
  in
  Alcotest.(check bool) "light tenant finishes well before the makespan" true
    (beta_last_finish < 0.5 *. c.Serve.sv_makespan_s);
  (* per-tenant accounting adds up *)
  List.iter
    (fun (tc : Serve.tenant_counters) ->
      let expect = if tc.Serve.tc_name = "acme" then 24 else 3 in
      Alcotest.(check int) (tc.Serve.tc_name ^ " admissions") expect
        tc.Serve.tc_admissions)
    c.Serve.sv_tenants

(* ---------------------------------------------------------------- *)
(* Overload control: shedding, breakers, ladder, drain                *)
(* ---------------------------------------------------------------- *)

let one_lane =
  Config.default |> Config.with_max_inflight (Some 1)
  |> Config.with_plan_cache (Some 8)

let flood ~tenant ~query n = List.init n (fun _ -> { Arrival.at_s = 0.0; tenant; query })

let sim_policy ?(config = one_lane) ~policy events ~workload =
  with_session ~config rt @@ fun s -> Serve.run_sim ~policy s tenants workload events

let count_shed reason c =
  List.length
    (List.filter (fun (sh : Serve.shed_record) -> sh.Serve.sh_reason = reason)
       c.Serve.sv_shed)

let test_deadline_sheds_and_cancels () =
  (* price one query, then set a budget half its service time: the first
     dispatch is cancelled mid-run at the engine safepoint, and every
     queued query's wait alone exceeds the budget, so the rest shed *)
  let baseline =
    sim_policy ~policy:Serve.no_policy ~workload (flood ~tenant:"acme" ~query:"count" 1)
  in
  let service = (List.hd baseline.Serve.sv_results).Serve.qr_service_s in
  let deadline = 0.5 *. service in
  let policy = { Serve.no_policy with Serve.pl_deadline_s = Some deadline } in
  let c = sim_policy ~policy ~workload (flood ~tenant:"acme" ~query:"count" 10) in
  Alcotest.(check int) "every submission accounted" 10
    (List.length c.Serve.sv_results + List.length c.Serve.sv_shed);
  Alcotest.(check int) "one query was admitted" 1 (List.length c.Serve.sv_results);
  (match (List.hd c.Serve.sv_results).Serve.qr_outcome with
  | Emma.Cancelled { at_s; _ } ->
      Alcotest.(check bool) "cancelled past the budget" true (at_s > deadline)
  | _ -> Alcotest.fail "the admitted query should be cancelled mid-run");
  Alcotest.(check int) "the rest shed on queue wait" 9
    (count_shed Serve.Shed_deadline c);
  Alcotest.(check int) "cancellation counted" 1 c.Serve.sv_cancelled;
  (* shed decisions are replay-stable *)
  let c2 = sim_policy ~policy ~workload (flood ~tenant:"acme" ~query:"count" 10) in
  Alcotest.(check string) "fingerprint stable" (Serve.fingerprint c)
    (Serve.fingerprint c2)

let test_queue_bound_sheds_deterministically () =
  let policy = { Serve.no_policy with Serve.pl_max_queue = Some 2 } in
  let events = flood ~tenant:"acme" ~query:"count" 8 in
  let c = sim_policy ~policy ~workload events in
  Alcotest.(check int) "every submission accounted" 8
    (List.length c.Serve.sv_results + List.length c.Serve.sv_shed);
  Alcotest.(check int) "queue bound shed the overflow" 6
    (count_shed Serve.Shed_queue_full c);
  Alcotest.(check int) "the bounded queue ran" 2 (List.length c.Serve.sv_results);
  let acme =
    List.find (fun (tc : Serve.tenant_counters) -> tc.Serve.tc_name = "acme")
      c.Serve.sv_tenants
  in
  Alcotest.(check int) "tc_max_queue is the bound" 2 acme.Serve.tc_max_queue;
  Alcotest.(check int) "tenant sheds counted" 6 acme.Serve.tc_shed;
  (* the victim pick is seeded: same seed, same fingerprint, 20x *)
  let fp0 = Serve.fingerprint c in
  for i = 2 to 20 do
    let fp = Serve.fingerprint (sim_policy ~policy ~workload events) in
    if fp <> fp0 then Alcotest.failf "queue-full replay %d moved" i
  done

(* a grouping query over enough rows OOM-fails under a tenant budget of
   0.4x its unbounded peak; count stays under it, so the same tenant can
   fail K times and still succeed its half-open probe *)
let group_prog =
  S.program
    ~ret:S.(count (var "d"))
    [ S.s_let "d"
        S.(
          for_
            [ gen "g" (group_by (lam "x" (fun x -> field x "b")) (read "rows")) ]
            ~yield:
              (record
                 [ ( "a",
                     sum
                       (map (lam "x" (fun x -> field x "a")) (field (var "g") "values"))
                   );
                   ("b", field (var "g") "key") ])) ]

let test_breaker_cycle () =
  let tables = [ ("rows", rows 200) ] in
  let peak =
    (Emma.run_on_exn rt (Emma.parallelize group_prog) ~tables).Emma.metrics
      .Metrics.mem_peak_bytes
  in
  let wl = ("group", (group_prog, tables)) :: workload in
  let bad = Serve.tenant ~mem_budget:(0.4 *. peak) "bad" in
  let tenants = [ bad; Serve.tenant "good" ] in
  let policy =
    { Serve.no_policy with
      Serve.pl_breaker = Some { Config.br_threshold = 2; br_cooldown_s = 1.0 } }
  in
  let events =
    [ { Arrival.at_s = 0.0; tenant = "bad"; query = "group" };
      { Arrival.at_s = 0.0; tenant = "bad"; query = "group" };
      { Arrival.at_s = 0.0; tenant = "bad"; query = "group" };
      (* well past the cool-down: the half-open probe, which succeeds *)
      { Arrival.at_s = 1e6; tenant = "bad"; query = "count" } ]
  in
  let c =
    with_session ~config:one_lane rt @@ fun s ->
    Serve.run_sim ~policy s tenants wl events
  in
  Alcotest.(check int) "every submission accounted" 4
    (List.length c.Serve.sv_results + List.length c.Serve.sv_shed);
  Alcotest.(check int) "circuit opened once" 1 c.Serve.sv_breaker_opens;
  Alcotest.(check int) "half-opened once" 1 c.Serve.sv_breaker_half_opens;
  Alcotest.(check int) "closed after the probe" 1 c.Serve.sv_breaker_closes;
  Alcotest.(check int) "open circuit fast-failed the third query" 1
    (count_shed Serve.Shed_breaker c);
  let bad_tc =
    List.find (fun (tc : Serve.tenant_counters) -> tc.Serve.tc_name = "bad")
      c.Serve.sv_tenants
  in
  Alcotest.(check int) "per-tenant opens counted" 1 bad_tc.Serve.tc_breaker_opens;
  let failed, finished =
    List.partition
      (fun (r : Serve.query_result) ->
        match r.Serve.qr_outcome with Emma.Failed _ -> true | _ -> false)
      c.Serve.sv_results
  in
  Alcotest.(check int) "two consecutive OOM failures tripped it" 2
    (List.length failed);
  Alcotest.(check int) "the probe finished" 1 (List.length finished)

let test_ladder_degrades_before_shedding () =
  (* backlog of 12 on one lane with a ladder step of 2: deep backlog runs
     plan-cache-only (cold compiles shed), mid backlog runs degraded
     (halved dop, then no speculation), and degradation never changes a
     result *)
  let policy = { Serve.no_policy with Serve.pl_degrade_depth = Some 2 } in
  let events = flood ~tenant:"acme" ~query:"count" 12 in
  let c = sim_policy ~policy ~workload events in
  Alcotest.(check int) "every submission accounted" 12
    (List.length c.Serve.sv_results + List.length c.Serve.sv_shed);
  Alcotest.(check bool) "deep backlog shed cold compiles" true
    (count_shed Serve.Shed_degraded c > 0);
  Alcotest.(check bool) "some queries ran degraded" true (c.Serve.sv_degraded > 0);
  Alcotest.(check bool) "some queries ran clean once the backlog drained" true
    (List.exists (fun (r : Serve.query_result) -> r.Serve.qr_degrade = 0)
       c.Serve.sv_results);
  (* degradation moves dop and speculation, never results *)
  let reference = (finished_exn (List.hd c.Serve.sv_results).Serve.qr_outcome).Emma.value in
  List.iter
    (fun (r : Serve.query_result) ->
      if not (Value.equal reference (finished_exn r.Serve.qr_outcome).Emma.value)
      then Alcotest.failf "degraded sub %d changed the result" r.Serve.qr_sub)
    c.Serve.sv_results

let test_drain_cutoff_sim () =
  let policy = { Serve.no_policy with Serve.pl_drain_after_s = Some 1.0 } in
  let at t = { Arrival.at_s = t; tenant = "acme"; query = "count" } in
  let c = sim_policy ~policy ~workload [ at 0.0; at 0.5; at 2.0; at 3.0 ] in
  Alcotest.(check int) "admitted before the cutoff" 2
    (List.length c.Serve.sv_results);
  Alcotest.(check int) "shed after the cutoff" 2 (count_shed Serve.Shed_drain c)

let test_policy_fingerprint_across_domains () =
  (* the full policy stack at once: all decisions are coordinator-side
     and seed-deterministic, so the fingerprint must not move across
     replays or pool sizes *)
  let policy =
    { Serve.pl_seed = 7;
      pl_deadline_s = Some 2.0;
      pl_max_queue = Some 3;
      pl_breaker = Some { Config.br_threshold = 2; br_cooldown_s = 5.0 };
      pl_drain_after_s = Some 6.0;
      pl_degrade_depth = Some 2 }
  in
  let events =
    Arrival.generate ~seed:9 ~rate:6.0 ~alpha:1.2 ~tenants:[ "acme"; "beta" ]
      ~queries:[ "sum"; "count" ] ~n:24
  in
  let run pool =
    let config =
      match pool with
      | None -> one_lane
      | Some p -> Config.with_pool (Some p) one_lane
    in
    with_session ~config rt @@ fun s -> Serve.run_sim ~policy s tenants workload events
  in
  let c0 = run None in
  Alcotest.(check bool) "the burst trace sheds under this policy" true
    (c0.Serve.sv_shed <> []);
  let fp0 = Serve.fingerprint c0 in
  for i = 2 to 20 do
    if Serve.fingerprint (run None) <> fp0 then
      Alcotest.failf "policy replay %d moved the fingerprint" i
  done;
  List.iter
    (fun domains ->
      let pool = Pool.create ~domains () in
      Fun.protect ~finally:(fun () -> Pool.shutdown pool) @@ fun () ->
      if Serve.fingerprint (run (Some pool)) <> fp0 then
        Alcotest.failf "policy fingerprint moved at %d domains" domains)
    [ 1; 2; 4; 8 ]

let test_concurrent_drain_sheds_all () =
  (* a pre-fired drain controller stops every admission: the whole trace
     is shed as Shed_drain, counted, never silently dropped *)
  let dctl = Serve.drain_controller () in
  Serve.drain dctl;
  Serve.drain dctl (* idempotent *);
  Alcotest.(check bool) "draining" true (Serve.draining dctl);
  let c =
    with_session ~config:one_lane rt @@ fun s ->
    Serve.run_concurrent ~drain:dctl s tenants workload small_trace
  in
  Alcotest.(check int) "nothing admitted" 0 (List.length c.Serve.sv_results);
  Alcotest.(check int) "everything shed" (List.length small_trace)
    (count_shed Serve.Shed_drain c)

let test_unknown_names_rejected () =
  let bad_tenant = [ { Arrival.at_s = 0.0; tenant = "ghost"; query = "sum" } ] in
  let bad_query = [ { Arrival.at_s = 0.0; tenant = "acme"; query = "nope" } ] in
  let raises name events =
    match sim events with
    | exception Invalid_argument _ -> ()
    | _ -> Alcotest.failf "%s: expected Invalid_argument" name
  in
  raises "unknown tenant" bad_tenant;
  raises "unknown query" bad_query

(* ---------------------------------------------------------------- *)
(* Arrival traces                                                     *)
(* ---------------------------------------------------------------- *)

let test_arrival_roundtrip () =
  let txt = Arrival.to_string small_trace in
  match Arrival.of_string txt with
  | Error e -> Alcotest.failf "round-trip failed: %s" e
  | Ok events ->
      Alcotest.(check int) "length" (List.length small_trace) (List.length events);
      Alcotest.(check string) "byte-stable" txt (Arrival.to_string events)

let test_arrival_parse_errors () =
  List.iter
    (fun (name, txt) ->
      match Arrival.of_string txt with
      | Ok _ -> Alcotest.failf "%s: expected a parse error" name
      | Error e ->
          Alcotest.(check bool) (name ^ ": one-line error") false
            (String.contains e '\n'))
    [ ("missing fields", "1.0 acme\n");
      ("bad time", "x acme sum\n");
      ("negative time", "-1.0 acme sum\n") ]

let test_arrival_generate_deterministic () =
  let a = Arrival.generate ~seed:9 ~rate:2.0 ~alpha:1.2 ~tenants:[ "t1"; "t2" ]
            ~queries:[ "q" ] ~n:50 in
  let b = Arrival.generate ~seed:9 ~rate:2.0 ~alpha:1.2 ~tenants:[ "t1"; "t2" ]
            ~queries:[ "q" ] ~n:50 in
  Alcotest.(check string) "same seed, same trace" (Arrival.to_string a)
    (Arrival.to_string b);
  let c = Arrival.generate ~seed:10 ~rate:2.0 ~alpha:1.2 ~tenants:[ "t1"; "t2" ]
            ~queries:[ "q" ] ~n:50 in
  Alcotest.(check bool) "different seed, different trace" true
    (Arrival.to_string a <> Arrival.to_string c);
  (* arrivals are sorted and non-negative *)
  let rec monotone = function
    | a :: (b :: _ as rest) -> a.Arrival.at_s <= b.Arrival.at_s && monotone rest
    | _ -> true
  in
  Alcotest.(check bool) "monotone non-negative" true
    (monotone a && List.for_all (fun e -> e.Arrival.at_s >= 0.0) a)

let suite =
  [ ( "serve",
      [ qcheck_differential;
        Alcotest.test_case "cache key sensitivity" `Quick test_key_sensitivity;
        Alcotest.test_case "LRU eviction deterministic" `Quick
          test_lru_eviction_deterministic;
        Alcotest.test_case "plan-cache capacity validated" `Quick
          test_plan_cache_capacity_validated;
        Alcotest.test_case "sim fingerprint stable over 20 replays" `Quick
          test_replay_fingerprint_20x;
        Alcotest.test_case "sim fingerprint stable across 1/2/4/8 domains" `Quick
          test_replay_fingerprint_across_domains;
        Alcotest.test_case "fair share is starvation-free" `Quick
          test_starvation_freedom;
        Alcotest.test_case "deadline sheds the queue, cancels in-flight" `Quick
          test_deadline_sheds_and_cancels;
        Alcotest.test_case "queue bound sheds deterministically" `Quick
          test_queue_bound_sheds_deterministically;
        Alcotest.test_case "breaker open/half-open/close cycle" `Quick
          test_breaker_cycle;
        Alcotest.test_case "ladder degrades before shedding" `Quick
          test_ladder_degrades_before_shedding;
        Alcotest.test_case "drain cutoff sheds late arrivals" `Quick
          test_drain_cutoff_sim;
        Alcotest.test_case "full policy fingerprint stable across domains" `Quick
          test_policy_fingerprint_across_domains;
        Alcotest.test_case "concurrent drain sheds the whole trace" `Quick
          test_concurrent_drain_sheds_all;
        Alcotest.test_case "unknown tenant/query rejected" `Quick
          test_unknown_names_rejected;
        Alcotest.test_case "arrival trace round-trips" `Quick test_arrival_roundtrip;
        Alcotest.test_case "arrival parse errors are one line" `Quick
          test_arrival_parse_errors;
        Alcotest.test_case "arrival generation deterministic" `Quick
          test_arrival_generate_deterministic ] ) ]
