module Databag = Emma_databag.Databag
module Stateful_bag = Emma_databag.Stateful_bag

let bag_int = Alcotest.testable (Databag.pp Fmt.int) (Databag.equal_as_bags ~cmp:Int.compare)

let test_constructors () =
  Alcotest.check bag_int "of_list round trip"
    (Databag.of_list [ 1; 2; 3 ])
    (Databag.union (Databag.singleton 1) (Databag.of_list [ 2; 3 ]));
  Alcotest.(check int) "size" 3 (Databag.size (Databag.of_list [ 1; 1; 2 ]));
  Alcotest.(check bool) "empty is empty" true (Databag.is_empty Databag.empty);
  Alcotest.(check bool) "union with empty" true
    (Databag.equal_as_bags (Databag.union Databag.empty (Databag.singleton 5))
       (Databag.singleton 5))

let test_fold_aliases () =
  let xs = Databag.of_list [ 3.0; 5.0; 7.0 ] in
  Alcotest.(check (float 1e-9)) "sum" 15.0 (Databag.sum xs);
  Alcotest.(check (float 1e-9)) "product" 105.0 (Databag.product xs);
  Alcotest.(check int) "count" 2 (Databag.count (fun x -> x > 4.0) xs);
  Alcotest.(check bool) "exists" true (Databag.exists (fun x -> x = 5.0) xs);
  Alcotest.(check bool) "forall" false (Databag.for_all (fun x -> x > 4.0) xs);
  Alcotest.(check (option (float 1e-9))) "min_by" (Some 3.0) (Databag.min_by Fun.id xs);
  Alcotest.(check (option (float 1e-9))) "max_by" (Some 7.0) (Databag.max_by Fun.id xs);
  Alcotest.(check (option (float 1e-9))) "min on empty" None (Databag.min_by Fun.id Databag.empty)

let test_monad_ops () =
  let xs = Databag.of_list [ 1; 2; 3 ] in
  Alcotest.check bag_int "map" (Databag.of_list [ 2; 4; 6 ]) (Databag.map (fun x -> 2 * x) xs);
  Alcotest.check bag_int "filter" (Databag.of_list [ 2; 3 ])
    (Databag.filter (fun x -> x > 1) xs);
  Alcotest.check bag_int "flat_map"
    (Databag.of_list [ 1; 1; 2; 2; 3; 3 ])
    (Databag.flat_map (fun x -> Databag.of_list [ x; x ]) xs)

let test_group_by () =
  let xs = Databag.of_list [ 1; 2; 3; 4; 5 ] in
  let groups = Databag.group_by (fun x -> x mod 2) xs in
  Alcotest.(check int) "two groups" 2 (Databag.size groups);
  let evens =
    Databag.to_list groups
    |> List.find (fun (g : (_, _) Databag.grp) -> g.key = 0)
  in
  Alcotest.check bag_int "even group values" (Databag.of_list [ 2; 4 ]) evens.values

let test_minus_distinct () =
  let xs = Databag.of_list [ 1; 1; 2; 3 ] in
  Alcotest.check bag_int "minus cancels one occurrence"
    (Databag.of_list [ 1; 3 ])
    (Databag.minus xs (Databag.of_list [ 1; 2; 9 ]));
  Alcotest.check bag_int "distinct" (Databag.of_list [ 1; 2; 3 ]) (Databag.distinct xs)

(* Fold well-definedness: the result must not depend on the union-tree
   shape when (e, s, u) satisfy the unit/assoc/comm equations. *)
let prop_fold_shape_independent =
  Helpers.qcheck_case "fold is union-tree-shape independent"
    QCheck2.Gen.(list_size (int_bound 30) (int_range (-100) 100))
    (fun xs ->
      let bag = Databag.of_list xs in
      let left_deep = Databag.rebalance_left bag in
      let fold b = Databag.fold ~empty:0 ~single:(fun x -> x) ~union:( + ) b in
      fold bag = fold left_deep
      && Databag.size bag = Databag.size left_deep
      && Databag.min_opt bag = Databag.min_opt left_deep)

let prop_union_commutative =
  Helpers.qcheck_case "union is commutative up to bag equality"
    QCheck2.Gen.(pair (list_size (int_bound 10) small_int) (list_size (int_bound 10) small_int))
    (fun (xs, ys) ->
      let a = Databag.of_list xs and b = Databag.of_list ys in
      Databag.equal_as_bags (Databag.union a b) (Databag.union b a))

let prop_group_by_partitions =
  Helpers.qcheck_case "group_by partitions the input"
    QCheck2.Gen.(list_size (int_bound 20) (int_range 0 10))
    (fun xs ->
      let bag = Databag.of_list xs in
      let groups = Databag.group_by (fun x -> x mod 3) bag in
      let reassembled =
        Databag.to_list groups
        |> List.concat_map (fun (g : (_, _) Databag.grp) -> Databag.to_list g.values)
      in
      Databag.equal_as_bags bag (Databag.of_list reassembled)
      && Databag.to_list groups
         |> List.for_all (fun (g : (_, _) Databag.grp) ->
                Databag.for_all (fun x -> x mod 3 = g.key) g.values))

let prop_minus_size =
  Helpers.qcheck_case "minus multiset arithmetic"
    QCheck2.Gen.(pair (list_size (int_bound 15) (int_bound 5)) (list_size (int_bound 15) (int_bound 5)))
    (fun (xs, ys) ->
      let count v l = List.length (List.filter (Int.equal v) l) in
      let diff = Databag.to_list (Databag.minus (Databag.of_list xs) (Databag.of_list ys)) in
      List.for_all (fun v -> count v diff = max 0 (count v xs - count v ys)) [ 0; 1; 2; 3; 4; 5 ])

(* ---- StatefulBag ---------------------------------------------------- *)

type cell = { id : int; v : int }

let test_stateful_update () =
  let init = Databag.of_list [ { id = 1; v = 10 }; { id = 2; v = 20 } ] in
  let st = Stateful_bag.create ~key:(fun c -> c.id) init in
  let delta = Stateful_bag.update st (fun c -> if c.v > 15 then Some { c with v = 0 } else None) in
  Alcotest.(check int) "one change" 1 (Databag.size delta);
  Alcotest.(check (option int)) "state updated" (Some 0)
    (Option.map (fun c -> c.v) (Stateful_bag.find st 2));
  Alcotest.(check (option int)) "other unchanged" (Some 10)
    (Option.map (fun c -> c.v) (Stateful_bag.find st 1))

let test_stateful_messages () =
  let init = Databag.of_list [ { id = 1; v = 0 }; { id = 2; v = 0 } ] in
  let st = Stateful_bag.create ~key:(fun c -> c.id) init in
  let msgs = Databag.of_list [ (1, 5); (1, 7); (9, 100) ] in
  let delta =
    Stateful_bag.update_with_messages st ~msg_key:fst msgs (fun c (_, m) ->
        Some { c with v = c.v + m })
  in
  Alcotest.(check int) "one element changed (deduplicated in delta)" 1 (Databag.size delta);
  Alcotest.(check (option int)) "messages threaded" (Some 12)
    (Option.map (fun c -> c.v) (Stateful_bag.find st 1));
  Alcotest.(check (option int)) "unmatched message dropped" (Some 0)
    (Option.map (fun c -> c.v) (Stateful_bag.find st 2))

let test_stateful_duplicate_key () =
  let init = Databag.of_list [ { id = 1; v = 0 }; { id = 1; v = 1 } ] in
  match Stateful_bag.create ~key:(fun c -> c.id) init with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "expected Invalid_argument on duplicate keys"

let suite =
  [ ( "databag",
      [ Alcotest.test_case "constructors" `Quick test_constructors;
        Alcotest.test_case "fold aliases" `Quick test_fold_aliases;
        Alcotest.test_case "monad ops" `Quick test_monad_ops;
        Alcotest.test_case "group_by" `Quick test_group_by;
        Alcotest.test_case "minus/distinct" `Quick test_minus_distinct;
        prop_fold_shape_independent;
        prop_union_commutative;
        prop_group_by_partitions;
        prop_minus_size ] );
    ( "stateful_bag",
      [ Alcotest.test_case "point-wise update" `Quick test_stateful_update;
        Alcotest.test_case "update with messages" `Quick test_stateful_messages;
        Alcotest.test_case "duplicate key rejected" `Quick test_stateful_duplicate_key ] ) ]
