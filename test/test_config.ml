(* Emma.Config: the consolidated knob record and the one shared CLI
   validation path (Config.of_cli) used by run, bench and serve. *)

module Config = Emma_engine.Config
module Faults = Emma_engine.Faults
module Json = Emma_util.Json

let ok = function Ok v -> v | Error e -> Alcotest.failf "unexpected error: %s" e

let err name = function
  | Ok _ -> Alcotest.failf "%s: expected a validation error" name
  | Error e ->
      Alcotest.(check bool) (name ^ ": error message is non-empty") true
        (String.length e > 0);
      Alcotest.(check bool) (name ^ ": error is one line") false
        (String.contains e '\n')

let test_default () =
  let c = Config.default in
  Alcotest.(check bool) "compiled UDFs" true (c.Config.udf_mode = Config.Compiled);
  Alcotest.(check bool) "auto chunking" true (c.Config.chunk = Config.Chunk_auto);
  Alcotest.(check (option int)) "64-entry plan cache" (Some 64) c.Config.plan_cache;
  Alcotest.(check bool) "no chaos" true (c.Config.faults == Faults.none);
  Alcotest.(check (option int)) "unbounded admission" None c.Config.max_inflight;
  Alcotest.(check bool) "no spill" false c.Config.spill

let test_setters_functional () =
  let c = Config.default in
  let c' =
    Config.with_spill true
      (Config.with_mem_budget (Some 1e6)
         (Config.with_plan_cache None (Config.with_udf_mode Config.Interp c)))
  in
  Alcotest.(check bool) "original untouched" true
    (c.Config.spill = false && c.Config.plan_cache = Some 64);
  Alcotest.(check bool) "updated" true
    (c'.Config.spill && c'.Config.plan_cache = None
    && c'.Config.udf_mode = Config.Interp
    && c'.Config.mem_budget = Some 1e6)

let test_parse_udf_mode () =
  Alcotest.(check bool) "interp" true (ok (Config.parse_udf_mode "interp") = Config.Interp);
  Alcotest.(check bool) "compiled" true
    (ok (Config.parse_udf_mode "compiled") = Config.Compiled);
  err "bogus mode" (Config.parse_udf_mode "bogus")

let test_parse_chunk () =
  Alcotest.(check bool) "auto" true (ok (Config.parse_chunk "auto") = Config.Chunk_auto);
  Alcotest.(check bool) "fixed" true
    (ok (Config.parse_chunk "64") = Config.Chunk_fixed 64);
  err "zero rows" (Config.parse_chunk "0");
  err "negative" (Config.parse_chunk "-3");
  err "garbage" (Config.parse_chunk "12x")

let test_parse_plan_cache () =
  Alcotest.(check (option int)) "off" None (ok (Config.parse_plan_cache "off"));
  Alcotest.(check (option int)) "zero disables" None (ok (Config.parse_plan_cache "0"));
  Alcotest.(check (option int)) "capacity" (Some 16) (ok (Config.parse_plan_cache "16"));
  err "negative capacity" (Config.parse_plan_cache "-3");
  err "garbage" (Config.parse_plan_cache "0x")

let test_of_cli_happy () =
  let c =
    ok
      (Config.of_cli ~udf_mode:"interp" ~chunk:"32" ~chaos_seed:7
         ~chaos_rates:"task=0.1" ~checkpoint_every:2 ~mem_per_slot:4096.0
         ~spill:true ~max_inflight:3 ~domains:4 ~plan_cache:"off" ())
  in
  Alcotest.(check bool) "udf mode" true (c.Config.udf_mode = Config.Interp);
  Alcotest.(check bool) "chunk" true (c.Config.chunk = Config.Chunk_fixed 32);
  Alcotest.(check bool) "chaos on" true (c.Config.faults != Faults.none);
  Alcotest.(check (option int)) "checkpoint" (Some 2) c.Config.checkpoint_every;
  Alcotest.(check bool) "mem budget" true (c.Config.mem_budget = Some 4096.0);
  Alcotest.(check bool) "spill" true c.Config.spill;
  Alcotest.(check (option int)) "max inflight" (Some 3) c.Config.max_inflight;
  Alcotest.(check (option int)) "domains" (Some 4) c.Config.domains;
  Alcotest.(check (option int)) "plan cache off" None c.Config.plan_cache

let test_of_cli_defaults () =
  let c = ok (Config.of_cli ()) in
  Alcotest.(check bool) "no flags = default" true (c = Config.default)

let test_of_cli_rejections () =
  err "--udf-mode bogus" (Config.of_cli ~udf_mode:"bogus" ());
  err "--chunk 0" (Config.of_cli ~chunk:"0" ());
  err "--plan-cache -1" (Config.of_cli ~plan_cache:"-1" ());
  err "--checkpoint-every 0" (Config.of_cli ~checkpoint_every:0 ());
  err "--mem-per-slot -5" (Config.of_cli ~mem_per_slot:(-5.0) ());
  err "--mem-per-slot nan" (Config.of_cli ~mem_per_slot:Float.nan ());
  err "--max-inflight 0" (Config.of_cli ~max_inflight:0 ());
  err "--domains 0" (Config.of_cli ~domains:0 ());
  err "--chaos-rates without seed" (Config.of_cli ~chaos_rates:"0.1,0.0,0.0" ());
  err "malformed chaos rates" (Config.of_cli ~chaos_seed:1 ~chaos_rates:"a,b" ())

let test_parse_breaker () =
  Alcotest.(check bool) "off" true (ok (Config.parse_breaker "off") = None);
  (match ok (Config.parse_breaker "3") with
  | Some { Config.br_threshold = 3; br_cooldown_s = cd } ->
      Alcotest.(check bool) "default cool-down is positive" true (cd > 0.0)
  | _ -> Alcotest.fail "K alone should parse with the default cool-down");
  Alcotest.(check bool) "K:COOLDOWN" true
    (ok (Config.parse_breaker "5:12.5")
    = Some { Config.br_threshold = 5; br_cooldown_s = 12.5 });
  err "zero threshold" (Config.parse_breaker "0");
  err "negative threshold" (Config.parse_breaker "-2");
  err "zero cool-down" (Config.parse_breaker "3:0");
  err "negative cool-down" (Config.parse_breaker "3:-1");
  err "garbage" (Config.parse_breaker "many");
  err "garbage cool-down" (Config.parse_breaker "3:soon")

let test_of_cli_robustness_flags () =
  let c =
    ok
      (Config.of_cli ~timeout:30.0 ~deadline:2.5 ~max_queue:8 ~breaker:"3:20"
         ~drain_after:60.0 ())
  in
  Alcotest.(check (option (float 0.0))) "timeout" (Some 30.0) c.Config.timeout_s;
  Alcotest.(check (option (float 0.0))) "deadline" (Some 2.5) c.Config.deadline_s;
  Alcotest.(check (option int)) "max queue" (Some 8) c.Config.max_queue;
  Alcotest.(check bool) "breaker" true
    (c.Config.breaker = Some { Config.br_threshold = 3; br_cooldown_s = 20.0 });
  Alcotest.(check (option (float 0.0))) "drain after" (Some 60.0)
    c.Config.drain_after_s;
  (* defaults: everything off *)
  let d = ok (Config.of_cli ()) in
  Alcotest.(check bool) "robustness knobs default off" true
    (d.Config.timeout_s = None && d.Config.deadline_s = None
    && d.Config.max_queue = None && d.Config.breaker = None
    && d.Config.drain_after_s = None);
  (* rejections, one line each *)
  err "--timeout 0" (Config.of_cli ~timeout:0.0 ());
  err "--deadline 0" (Config.of_cli ~deadline:0.0 ());
  err "--deadline -1" (Config.of_cli ~deadline:(-1.0) ());
  err "--deadline nan" (Config.of_cli ~deadline:Float.nan ());
  err "--max-queue 0" (Config.of_cli ~max_queue:0 ());
  err "--breaker 0" (Config.of_cli ~breaker:"0" ());
  err "--breaker garbage" (Config.of_cli ~breaker:"lots" ());
  err "--drain-after -1" (Config.of_cli ~drain_after:(-1.0) ())

let test_of_cli_base () =
  let base = Config.with_plan_cache (Some 8) Config.default in
  let c = ok (Config.of_cli ~base ~spill:true ~mem_per_slot:64.0 ()) in
  Alcotest.(check (option int)) "base survives absent flags" (Some 8)
    c.Config.plan_cache;
  Alcotest.(check bool) "flag overrides" true c.Config.spill

let test_to_json () =
  match Json.parse (Json.to_string (Config.to_json Config.default)) with
  | Error e -> Alcotest.failf "config JSON does not parse: %s" e
  | Ok j ->
      Alcotest.(check bool) "udf_mode" true
        (Json.member "udf_mode" j = Some (Json.Str "compiled"));
      Alcotest.(check bool) "chunk" true
        (Json.member "chunk" j = Some (Json.Str "auto"));
      Alcotest.(check bool) "plan_cache" true
        (Json.member "plan_cache" j = Some (Json.Int 64))

let suite =
  [ ( "config",
      [ Alcotest.test_case "default knobs" `Quick test_default;
        Alcotest.test_case "setters are functional" `Quick test_setters_functional;
        Alcotest.test_case "parse_udf_mode" `Quick test_parse_udf_mode;
        Alcotest.test_case "parse_chunk" `Quick test_parse_chunk;
        Alcotest.test_case "parse_plan_cache" `Quick test_parse_plan_cache;
        Alcotest.test_case "of_cli accepts the full flag set" `Quick test_of_cli_happy;
        Alcotest.test_case "of_cli with no flags is default" `Quick
          test_of_cli_defaults;
        Alcotest.test_case "of_cli rejects bad flags with one-line errors" `Quick
          test_of_cli_rejections;
        Alcotest.test_case "of_cli base config survives absent flags" `Quick
          test_of_cli_base;
        Alcotest.test_case "parse_breaker" `Quick test_parse_breaker;
        Alcotest.test_case "of_cli robustness flags" `Quick
          test_of_cli_robustness_flags;
        Alcotest.test_case "to_json is well-formed" `Quick test_to_json ] ) ]
