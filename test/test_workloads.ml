module Value = Emma_value.Value
module W = Emma_workloads

let test_emails_shape () =
  let cfg = W.Email_gen.paper_config ~physical_emails:100 in
  let emails = W.Email_gen.emails ~seed:1 cfg in
  Alcotest.(check int) "count" 100 (List.length emails);
  List.iter
    (fun e ->
      let ip = Value.to_int (Value.field e "ip") in
      Alcotest.(check bool) "ip in space" true (ip >= 0 && ip < cfg.W.Email_gen.ip_space);
      let score = Value.to_float (Value.field e "score") in
      Alcotest.(check bool) "score range" true (score >= 0.0 && score < 100.0);
      match Value.field e "body" with
      | Value.Blob { bytes; _ } ->
          Alcotest.(check bool) "body sized" true
            (bytes >= cfg.W.Email_gen.body_bytes_avg / 2
            && bytes <= (cfg.W.Email_gen.body_bytes_avg * 3 / 2) + 1)
      | _ -> Alcotest.fail "body should be a blob")
    emails

let test_emails_deterministic () =
  let cfg = W.Email_gen.paper_config ~physical_emails:50 in
  Alcotest.(check bool) "same seed, same data" true
    (W.Email_gen.emails ~seed:9 cfg = W.Email_gen.emails ~seed:9 cfg);
  Alcotest.(check bool) "different seed, different data" true
    (W.Email_gen.emails ~seed:9 cfg <> W.Email_gen.emails ~seed:10 cfg)

let test_blacklist_overlap () =
  let cfg = { (W.Email_gen.paper_config ~physical_emails:400) with blacklist_hit_rate = 0.5 } in
  let bl = W.Email_gen.blacklist ~seed:1 cfg in
  Alcotest.(check int) "count" cfg.W.Email_gen.n_blacklist (List.length bl);
  let in_space =
    List.length
      (List.filter (fun b -> Value.to_int (Value.field b "ip") < cfg.W.Email_gen.ip_space) bl)
  in
  let frac = float_of_int in_space /. float_of_int (List.length bl) in
  Alcotest.(check bool) "≈ half the blacklist overlaps the corpus IP space" true
    (frac > 0.3 && frac < 0.7)

let test_points_clustered () =
  let cfg = W.Points_gen.default ~n_points:500 ~k:3 in
  let centers = W.Points_gen.centers ~seed:5 cfg in
  let points = W.Points_gen.points ~seed:5 cfg in
  Alcotest.(check int) "count" 500 (List.length points);
  (* every point lies close to some generating center *)
  List.iter
    (fun p ->
      let pos = Value.to_vector (Value.field p "pos") in
      let nearest = List.fold_left (fun acc c -> min acc (Emma_util.Vec.dist c pos)) infinity centers in
      Alcotest.(check bool) "near a center" true (nearest < 6.0 *. cfg.W.Points_gen.spread))
    points

let test_initial_centroids_distinct () =
  let cfg = W.Points_gen.default ~n_points:10 ~k:4 in
  let cs = W.Points_gen.initial_centroids ~seed:5 cfg in
  Alcotest.(check int) "k centroids" 4 (List.length cs);
  let cids = List.map (fun c -> Value.to_int (Value.field c "cid")) cs in
  Alcotest.(check (list int)) "cids 0..k-1" [ 0; 1; 2; 3 ] (List.sort compare cids)

let test_graph_shape () =
  let cfg = W.Graph_gen.default ~n_vertices:200 in
  let adj = W.Graph_gen.adjacency ~seed:11 cfg in
  Alcotest.(check int) "one record per vertex" 200 (List.length adj);
  List.iter
    (fun v ->
      let id = Value.to_int (Value.field v "id") in
      List.iter
        (fun n ->
          let n = Value.to_int n in
          Alcotest.(check bool) "neighbor in range, no self-loop" true
            (n >= 0 && n < 200 && n <> id))
        (Value.to_bag (Value.field v "neighbors")))
    adj;
  Alcotest.(check bool) "has edges" true (W.Graph_gen.edge_count adj > 200)

let test_graph_skew () =
  let cfg = { (W.Graph_gen.default ~n_vertices:400) with alpha = 1.3 } in
  let adj = W.Graph_gen.adjacency ~seed:12 cfg in
  (* in-degree distribution should be heavy-tailed: the max in-degree is
     far above the average *)
  let indeg = Array.make 400 0 in
  List.iter
    (fun v ->
      List.iter
        (fun n -> indeg.(Value.to_int n) <- indeg.(Value.to_int n) + 1)
        (Value.to_bag (Value.field v "neighbors")))
    adj;
  let max_d = Array.fold_left max 0 indeg in
  let avg = float_of_int (Array.fold_left ( + ) 0 indeg) /. 400.0 in
  Alcotest.(check bool) "hub exists" true (float_of_int max_d > 5.0 *. avg)

let test_undirected_symmetric () =
  let cfg = W.Graph_gen.default ~n_vertices:100 in
  let adj = W.Graph_gen.undirected_adjacency ~seed:13 cfg in
  let neighbors = Hashtbl.create 100 in
  List.iter
    (fun v ->
      Hashtbl.replace neighbors
        (Value.to_int (Value.field v "id"))
        (List.map Value.to_int (Value.to_bag (Value.field v "neighbors"))))
    adj;
  Hashtbl.iter
    (fun id ns ->
      List.iter
        (fun n ->
          let back = Option.value (Hashtbl.find_opt neighbors n) ~default:[] in
          if not (List.mem id back) then Alcotest.failf "edge %d->%d not symmetric" id n)
        ns)
    neighbors

let test_keyed_tuples () =
  let cfg = W.Keyed_gen.paper_config ~n_tuples:1000 (W.Keyed_gen.pareto ~n_keys:50) in
  let rows = W.Keyed_gen.tuples ~seed:14 cfg in
  Alcotest.(check int) "count" 1000 (List.length rows);
  List.iter
    (fun r ->
      let k = Value.to_int (Value.field r "key") in
      Alcotest.(check bool) "key in range" true (k >= 0 && k < 50);
      let p = Value.to_string_exn (Value.field r "payload") in
      Alcotest.(check bool) "payload 3-10 chars" true
        (String.length p >= 3 && String.length p <= 10))
    rows;
  (* hot key holds roughly 35% *)
  let hot = List.length (List.filter (fun r -> Value.to_int (Value.field r "key") = 0) rows) in
  Alcotest.(check bool) "pareto hot key" true (hot > 250 && hot < 450)

let test_tpch_rows () =
  let cfg = W.Tpch_gen.of_scale_factor 0.0005 in
  let lineitem = W.Tpch_gen.lineitem ~seed:15 cfg in
  let orders = W.Tpch_gen.orders ~seed:15 cfg in
  Alcotest.(check int) "lineitem cardinality" 3000 (List.length lineitem);
  Alcotest.(check int) "orders cardinality" 750 (List.length orders);
  List.iter
    (fun l ->
      let ok = Value.to_int (Value.field l "orderKey") in
      Alcotest.(check bool) "FK into orders" true (ok >= 0 && ok < 750);
      let d = Value.to_float (Value.field l "discount") in
      Alcotest.(check bool) "discount range" true (d >= 0.0 && d <= 0.10 +. 1e-9);
      let ship = Value.to_int (Value.field l "shipDate") in
      let receipt = Value.to_int (Value.field l "receiptDate") in
      Alcotest.(check bool) "receipt after ship" true (receipt > ship))
    lineitem;
  let priorities =
    List.sort_uniq compare
      (List.map (fun o -> Value.to_string_exn (Value.field o "orderPriority")) orders)
  in
  Alcotest.(check int) "five priorities" 5 (List.length priorities)

let suite =
  [ ( "workloads",
      [ Alcotest.test_case "emails shape" `Quick test_emails_shape;
        Alcotest.test_case "emails deterministic" `Quick test_emails_deterministic;
        Alcotest.test_case "blacklist overlap" `Quick test_blacklist_overlap;
        Alcotest.test_case "points clustered" `Quick test_points_clustered;
        Alcotest.test_case "initial centroids" `Quick test_initial_centroids_distinct;
        Alcotest.test_case "graph shape" `Quick test_graph_shape;
        Alcotest.test_case "graph skew" `Quick test_graph_skew;
        Alcotest.test_case "undirected symmetric" `Quick test_undirected_symmetric;
        Alcotest.test_case "keyed tuples" `Quick test_keyed_tuples;
        Alcotest.test_case "tpch rows" `Quick test_tpch_rows ] ) ]
