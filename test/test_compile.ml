(* Differential tests for the staged UDF compiler (Emma_lang.Compile).

   The interpreter is the oracle: on random generated pipelines and on
   targeted programs, compiled evaluation must agree with Eval on values,
   on classified errors (same exception constructor, same message), and —
   through the engine — on every cost-model metric, at any domain count.
   Only wall-clock time may differ between the modes. *)

module Value = Emma_value.Value
module Expr = Emma_lang.Expr
module Eval = Emma_lang.Eval
module Compile = Emma_lang.Compile
module S = Emma_lang.Surface
module Cluster = Emma_engine.Cluster
module Metrics = Emma_engine.Metrics
module Engine = Emma_engine.Exec
module Pool = Emma_util.Pool
open Helpers

(* ---------------------------------------------------------------- *)
(* Outcome classification: a compiled run must either produce the    *)
(* same value or raise the same classified error as the oracle.      *)
(* ---------------------------------------------------------------- *)

type outcome = Val of Value.t | Err of string

let classify f =
  match f () with
  | v -> Val v
  | exception Eval.Eval_error m -> Err ("Eval_error: " ^ m)
  | exception Value.Type_error m -> Err ("Type_error: " ^ m)
  | exception Invalid_argument m -> Err ("Invalid_argument: " ^ m)

let outcome_testable : outcome Alcotest.testable =
  Alcotest.testable
    (fun fmt -> function
      | Val v -> Format.fprintf fmt "Val %a" Value.pp v
      | Err m -> Format.fprintf fmt "Err %s" m)
    (fun a b ->
      match (a, b) with
      | Val x, Val y -> Value.equal x y
      | Err x, Err y -> String.equal x y
      | _ -> false)

let both ?(tables = []) ?(env = Eval.empty_env) e =
  let ctx = ctx_with tables in
  let interp = classify (fun () -> Eval.eval_value ctx env e) in
  let compiled = classify (fun () -> Compile.value ctx env e) in
  (interp, compiled)

let check_parity ?tables ?env msg e =
  let interp, compiled = both ?tables ?env e in
  Alcotest.check outcome_testable msg interp compiled

(* ---------------------------------------------------------------- *)
(* Engine-level differential: both modes, full cost signature         *)
(* ---------------------------------------------------------------- *)

(* every cost-model field (wall_time_s / par_* describe the host run) *)
let cost_sig (m : Metrics.t) =
  ( ( m.Metrics.sim_time_s,
      m.Metrics.shuffle_bytes,
      m.Metrics.broadcast_bytes,
      m.Metrics.dfs_read_bytes,
      m.Metrics.dfs_write_bytes,
      m.Metrics.collect_bytes,
      m.Metrics.parallelize_bytes ),
    ( m.Metrics.spilled_bytes,
      m.Metrics.jobs,
      m.Metrics.stages,
      m.Metrics.recomputes,
      m.Metrics.cache_hits,
      m.Metrics.cache_losses,
      m.Metrics.udf_invocations ) )

let run_mode ?pool mode prog tables =
  let ctx = ctx_with tables in
  let eng =
    Engine.create ?pool ~udf_mode:mode ~cluster:(Cluster.laptop ())
      ~profile:Cluster.spark_like ctx
  in
  let v = Engine.run eng (Emma.parallelize prog).Emma.compiled in
  (v, cost_sig (Engine.metrics eng))

let check_engine_parity ?pool msg prog tables =
  let vi, mi = run_mode ?pool Engine.Interp prog tables in
  let vc, mc = run_mode ?pool Engine.Compiled prog tables in
  check_value (msg ^ ": value") vi vc;
  Alcotest.(check bool) (msg ^ ": cost metrics bit-identical") true (mi = mc)

let rows_tables rows = [ ("rows", rows) ]

(* ---------------------------------------------------------------- *)
(* Random programs (qcheck)                                           *)
(* ---------------------------------------------------------------- *)

let gen_pipeline_with_rows =
  QCheck2.Gen.pair terminated_pipeline_gen rows_gen

(* Expression-level: staged evaluation is observationally the oracle. *)
let qcheck_value_parity =
  qcheck_case ~count:300 "compiled ≡ interpreted (values)" gen_pipeline_with_rows
    (fun (e, rows) ->
      let interp, compiled = both ~tables:(rows_tables rows) e in
      (match interp with
      | Val _ -> ()
      | Err m -> QCheck2.Test.fail_reportf "generated program errored: %s" m);
      interp = compiled
      ||
      match (interp, compiled) with
      | Val x, Val y -> Value.equal x y
      | _ -> false)

(* Engine-level: identical results AND identical cost metrics (counters,
   udf_invocations, simulated time) between the modes, on the default
   domain pool (sized by EMMA_TEST_DOMAINS: the tier-1 suite runs this at
   both 2 and 4 domains; the smoke alias covers 1). *)
let qcheck_engine_parity =
  qcheck_case ~count:40 "compiled ≡ interpreted (engine metrics)"
    gen_pipeline_with_rows (fun (e, rows) ->
      let prog = S.program ~ret:e [] in
      let vi, mi = run_mode Engine.Interp prog (rows_tables rows) in
      let vc, mc = run_mode Engine.Compiled prog (rows_tables rows) in
      Value.equal vi vc && mi = mc)

(* Same program, same mode, 1/2/4 domains: compiled execution keeps the
   engine's domain-count invariance (results and cost metrics fixed). *)
let test_domain_invariance () =
  let prog =
    S.program
      ~ret:
        S.(
          sum
            (map
               (lam "x" (fun x -> field x "a" * int_ 3 + field x "b"))
               (with_filter (lam "x" (fun x -> field x "a" > int_ 2)) (read "rows"))))
      []
  in
  let tables = rows_tables (List.init 24 (fun i -> row i (i mod 4))) in
  let runs =
    List.map
      (fun domains ->
        let pool = Pool.create ~domains () in
        Fun.protect
          ~finally:(fun () -> Pool.shutdown pool)
          (fun () ->
            let vi, mi = run_mode ~pool Engine.Interp prog tables in
            let vc, mc = run_mode ~pool Engine.Compiled prog tables in
            check_value
              (Printf.sprintf "mode parity at %d domains" domains)
              vi vc;
            Alcotest.(check bool)
              (Printf.sprintf "metric parity at %d domains" domains)
              true (mi = mc);
            (vc, mc)))
      [ 1; 2; 4 ]
  in
  match runs with
  | (v1, m1) :: rest ->
      List.iter
        (fun (v, m) ->
          check_value "value invariant across domain counts" v1 v;
          Alcotest.(check bool) "metrics invariant across domain counts" true (m1 = m))
        rest
  | [] -> assert false

(* ---------------------------------------------------------------- *)
(* Targeted coverage                                                  *)
(* ---------------------------------------------------------------- *)

(* Captured driver bindings — the compile-time inlining path — including a
   captured closure, which must keep interpreter semantics. *)
let test_engine_driver_closure () =
  let prog =
    S.program
      ~ret:
        S.(
          sum
            (map
               (lam "x" (fun x -> app (var "scale") (field x "a")))
               (read "rows")))
      [ S.s_let "k" (S.int_ 10);
        S.s_let "scale" (S.lam "v" (fun v -> S.(v * var "k"))) ]
  in
  check_engine_parity "driver-bound closure" prog
    (rows_tables (List.init 8 (fun i -> row i 0)))

let test_engine_broadcast_bag () =
  (* a bag-valued capture is broadcast and scanned per element *)
  let prog =
    S.program
      ~ret:
        S.(
          count
            (with_filter
               (lam "x" (fun x -> exists (lam "y" (fun y -> y = field x "a")) (var "good")))
               (read "rows")))
      [ S.s_let "good" (S.bag_of [ S.int_ 1; S.int_ 3; S.int_ 5 ]) ]
  in
  check_engine_parity "broadcast bag capture" prog
    (rows_tables (List.init 10 (fun i -> row i 1)))

let test_engine_group_agg () =
  (* group-then-fold fuses to an aggBy, exercising the compiled key UDF
     and the compiled fold algebra on the reduce side *)
  let prog =
    S.program
      ~ret:
        S.(
          sum
            (for_
               [ gen "g" (group_by (lam "x" (fun x -> field x "b")) (read "rows")) ]
               ~yield:
                 (sum
                    (map (lam "x" (fun x -> field x "a")) (field (var "g") "values")))))
      []
  in
  check_engine_parity "aggBy fold algebra" prog
    (rows_tables (List.init 15 (fun i -> row i (i mod 3))));
  (* and the AggBy node itself, expression-level *)
  let fns =
    { Expr.f_empty = S.int_ 0;
      f_single = S.lam "x" (fun x -> S.field x "a");
      f_union = S.lam2 "u" "v" (fun u v -> S.(u + v));
      f_tag = Expr.Tag_generic }
  in
  check_parity ~tables:(rows_tables (List.init 9 (fun i -> row i (i mod 2))))
    "AggBy expression"
    (Expr.AggBy (S.lam "x" (fun x -> S.field x "b"), fns, S.read "rows"))

let test_engine_stateful () =
  (* stateful create/update flows through compiled key and update UDFs *)
  let prog =
    S.program
      ~ret:S.(sum (map (lam "x" (fun x -> field x "v")) (state_bag (var "st"))))
      [ S.s_let "st"
          (S.stateful
             ~key:(S.lam "x" (fun x -> S.field x "id"))
             S.(
               map
                 (lam "x" (fun x ->
                      record [ ("id", field x "a"); ("v", field x "b") ]))
                 (read "rows")));
        S.s_let "_delta"
          (S.update (S.var "st")
             (S.lam "x"
                (fun x ->
                  S.some_
                    (S.record
                       [ ("id", S.field x "id"); ("v", S.(field x "v" + int_ 100)) ])))) ]
  in
  check_engine_parity "stateful update" prog
    (rows_tables (List.init 6 (fun i -> row i (i * 2))))

(* Comprehension generators shadowing an outer binder of the same name. *)
let test_comp_shadowing () =
  let e =
    Expr.Comp
      { head = S.var "x";
        quals =
          [ Expr.QGen ("x", S.bag_of [ S.int_ 1 ]);
            Expr.QGen ("x", S.bag_of [ S.int_ 10; S.int_ 20 ]) ];
        alg = Expr.Alg_bag }
  in
  check_parity "inner generator shadows outer" e

(* Let can bind a closure that a deeper application uses. *)
let test_let_bound_closure () =
  let e =
    S.let_ "f"
      (S.lam "x" (fun x -> S.(x + int_ 1)))
      (fun f -> S.sum (S.map f (S.bag_of [ S.int_ 1; S.int_ 2; S.int_ 3 ])))
  in
  check_parity "let-bound closure" e

(* Statically dead error code must not raise at compile time: the
   interpreter never evaluates the untaken branch, so neither may we. *)
let test_dead_branch_not_evaluated () =
  let e =
    S.if_ (S.bool_ false) S.(int_ 1 / int_ 0) (S.int_ 42)
  in
  check_parity "dead division is never evaluated" e;
  let interp, _ = both e in
  Alcotest.check outcome_testable "and the live branch wins" (Val (Value.int 42)) interp

(* Constant folding must preserve error *timing*: a folded subterm that
   raises does so once per evaluation, not at compile time. *)
let test_folded_error_still_raises () =
  check_parity "static div-by-zero" S.(int_ 1 / int_ 0);
  check_parity "static mod-by-zero" S.(int_ 5 mod int_ 0);
  check_parity "static bad projection" (Expr.Proj (S.tup [ S.int_ 1 ], 7));
  check_parity "static missing field"
    (Expr.Field (S.record [ ("a", S.int_ 1) ], "nope"))

(* fn2's inner binder shadows the outer one when the names coincide,
   exactly like the interpreter's bind order. *)
let test_fn2_shadowing () =
  let ctx = ctx_with [] in
  let body = S.var "x" in
  let compiled = Compile.fn2 ctx Eval.empty_env ~param1:"x" ~param2:"x" body in
  let interp a b =
    let env = Eval.bind "x" (Eval.V a) Eval.empty_env in
    let env = Eval.bind "x" (Eval.V b) env in
    Eval.eval_value ctx env body
  in
  check_value "fn2 shadowing: compiled sees param2"
    (interp (Value.int 1) (Value.int 2))
    (compiled (Value.int 1) (Value.int 2));
  check_value "fn2 shadowing yields the inner binder" (Value.int 2)
    (compiled (Value.int 1) (Value.int 2))

(* Curried closures captured from the environment still apply step-wise:
   one App forces ("expected a value, got a function" parity), two-step
   application via a fold union works. *)
let test_captured_curried_closure () =
  let curried = S.lam "a" (fun a -> S.lam "b" (fun b -> S.(a + b))) in
  let env_expr body = S.let_ "f" curried (fun _ -> body) in
  (* fold union uses two-step application *)
  check_parity "curried closure as fold union"
    (env_expr
       (Expr.Fold
          ( { Expr.f_empty = S.int_ 0;
              f_single = S.lam "x" (fun x -> x);
              f_union = S.var "f";
              f_tag = Expr.Tag_generic },
            S.bag_of [ S.int_ 1; S.int_ 2; S.int_ 4 ] )));
  (* a single App of the curried closure must fail identically *)
  check_parity "single application of curried closure errors"
    (env_expr (S.app (S.var "f") (S.int_ 1)))

let suite =
  [ ( "compile_differential",
      [ qcheck_value_parity;
        qcheck_engine_parity;
        Alcotest.test_case "1/2/4-domain invariance" `Quick test_domain_invariance;
        Alcotest.test_case "driver closure" `Quick test_engine_driver_closure;
        Alcotest.test_case "broadcast bag" `Quick test_engine_broadcast_bag;
        Alcotest.test_case "aggBy algebra" `Quick test_engine_group_agg;
        Alcotest.test_case "stateful update" `Quick test_engine_stateful;
        Alcotest.test_case "comprehension shadowing" `Quick test_comp_shadowing;
        Alcotest.test_case "let-bound closure" `Quick test_let_bound_closure;
        Alcotest.test_case "dead branch" `Quick test_dead_branch_not_evaluated;
        Alcotest.test_case "folded errors" `Quick test_folded_error_still_raises;
        Alcotest.test_case "fn2 shadowing" `Quick test_fn2_shadowing;
        Alcotest.test_case "captured curried closure" `Quick test_captured_curried_closure
      ] ) ]
