module Value = Emma_value.Value
module Expr = Emma_lang.Expr
module P = Emma_dataflow.Plan
module Cprog = Emma_dataflow.Cprog
module Pdata = Emma_engine.Pdata

(* ---- Plan helpers ---------------------------------------------------- *)

let key_udf field = P.udf_of_expr (Expr.Lam ("x", Expr.Field (Expr.Var "x", field)))

let test_udf_alpha_equal () =
  let a = P.udf_of_expr (Expr.Lam ("x", Expr.Field (Expr.Var "x", "ip"))) in
  let b = P.udf_of_expr (Expr.Lam ("y", Expr.Field (Expr.Var "y", "ip"))) in
  let c = P.udf_of_expr (Expr.Lam ("x", Expr.Field (Expr.Var "x", "id"))) in
  Alcotest.(check bool) "alpha-equal keys" true (P.udf_alpha_equal a b);
  Alcotest.(check bool) "different fields differ" false (P.udf_alpha_equal a c)

let test_udf_eta_expansion () =
  (* a non-lambda UDF argument is eta-expanded *)
  let u = P.udf_of_expr (Expr.Var "f") in
  match u.P.body with
  | Expr.App (Expr.Var "f", Expr.Var p) when p = u.P.param -> ()
  | _ -> Alcotest.fail "expected eta expansion"

let test_result_kind () =
  let fold_fns =
    Expr.
      { f_empty = Const (Value.Int 0);
        f_single = Lam ("x", Var "x");
        f_union = Lam ("a", Lam ("b", Prim (Emma_lang.Prim.Add, [ Var "a"; Var "b" ])));
        f_tag = Tag_sum }
  in
  Alcotest.(check bool) "read is a bag" true (P.result_kind (P.Read "t") = P.Rbag);
  Alcotest.(check bool) "fold is scalar" true
    (P.result_kind (P.Fold (fold_fns, P.Read "t")) = P.Rscalar);
  Alcotest.(check bool) "cache preserves kind" true
    (P.result_kind (P.Cache (P.Read "t")) = P.Rbag);
  Alcotest.(check bool) "stateful create" true
    (P.result_kind (P.Stateful_create { key = key_udf "id"; init = P.Read "t" }) = P.Rstateful)

let test_scanned_and_counts () =
  let p =
    P.Union (P.Scan "a", P.Filter (key_udf "f", P.Scan "b"))
  in
  Alcotest.(check (list string)) "scans collected" [ "a"; "b" ]
    (List.sort compare (P.scanned_vars p));
  Alcotest.(check int) "node count" 4 (P.node_count p)

let test_plan_pp_total () =
  (* the printer must handle every constructor without raising *)
  let fns =
    Expr.
      { f_empty = Const (Value.Int 0);
        f_single = Lam ("x", Var "x");
        f_union = Lam ("a", Lam ("b", Var "a"));
        f_tag = Tag_generic }
  in
  let plans =
    [ P.Read "t"; P.Scan "x"; P.Local (Expr.BagOf []);
      P.Map (key_udf "f", P.Read "t");
      P.Flat_map (key_udf "f", P.Read "t");
      P.Filter (key_udf "f", P.Read "t");
      P.Eq_join { lkey = key_udf "k"; rkey = key_udf "k"; left = P.Read "a"; right = P.Read "b" };
      P.Semi_join { lkey = key_udf "k"; rkey = key_udf "k"; left = P.Read "a"; right = P.Read "b" };
      P.Cross (P.Read "a", P.Read "b");
      P.Group_by (key_udf "k", P.Read "t");
      P.Agg_by { key = key_udf "k"; fold = fns; input = P.Read "t" };
      P.Fold (fns, P.Read "t");
      P.Union (P.Read "a", P.Read "b");
      P.Minus (P.Read "a", P.Read "b");
      P.Distinct (P.Read "t");
      P.Cache (P.Read "t");
      P.Partition_by (key_udf "k", P.Read "t");
      P.Stateful_create { key = key_udf "id"; init = P.Read "t" };
      P.Stateful_read "s";
      P.Stateful_update { state = "s"; udf = key_udf "f" };
      P.Stateful_update_msgs
        { state = "s";
          msg_key = key_udf "id";
          messages = P.Read "m";
          udf = P.udf2_of_expr (Expr.Lam ("a", Expr.Lam ("b", Expr.Var "a"))) } ]
  in
  List.iter (fun p -> Alcotest.(check bool) "prints" true (String.length (P.to_string p) > 0)) plans

let test_cprog_pp_and_helpers () =
  let rhs = Cprog.rhs_of_plan (P.Read "t") in
  Alcotest.(check bool) "plan_of_rhs round trip" true
    (match Cprog.plan_of_rhs rhs with Some (P.Read "t") -> true | _ -> false);
  let prog =
    Cprog.
      { cbody =
          [ CLet ("x", rhs);
            CWhile (rhs_of_expr (Expr.Const (Value.Bool false)), [ CAssign ("x", rhs) ]) ];
        cret = Cprog.rhs_of_expr (Expr.Var "x") }
  in
  Alcotest.(check bool) "cprog prints" true (String.length (Cprog.to_string prog) > 0);
  let depths = ref [] in
  Cprog.iter_stmts_with_depth (fun d _ -> depths := d :: !depths) prog;
  Alcotest.(check (list int)) "loop body depth" [ 0; 0; 1 ] (List.sort compare !depths)

(* ---- Pdata ----------------------------------------------------------- *)

let test_pdata_roundtrip () =
  let vs = List.init 10 Value.int in
  let pd = Pdata.of_list ~nparts:4 vs in
  Alcotest.(check int) "4 partitions" 4 (Pdata.nparts pd);
  Alcotest.(check int) "records" 10 (Pdata.records pd);
  Helpers.check_bag "round trip" vs (Pdata.to_list pd)

let test_pdata_repartition () =
  let vs = List.init 20 Value.int in
  let key = P.udf_of_expr (Expr.Lam ("x", Expr.Var "x")) in
  let pd = Pdata.repartition ~nparts:4 ~key Fun.id (Pdata.of_list ~nparts:4 vs) in
  Alcotest.(check bool) "co-partitioned after repartition" true (Pdata.co_partitioned pd key);
  (* element placement matches the hash *)
  Array.iteri
    (fun part vs ->
      List.iter
        (fun v -> Alcotest.(check int) "placement" part (abs (Value.hash v) mod 4))
        vs)
    pd.Pdata.parts;
  Helpers.check_bag "content preserved" vs (Pdata.to_list pd)

let test_pdata_mult_propagation () =
  let vs = List.init 8 Value.int in
  let pd = Pdata.of_list ~rmult:10.0 ~bmult:20.0 ~nparts:2 vs in
  Alcotest.(check (float 1e-9)) "logical records" 80.0 (Pdata.logical_records pd);
  Alcotest.(check (float 1e-9)) "logical bytes" (20.0 *. Pdata.bytes pd) (Pdata.logical_bytes pd);
  let filtered = Pdata.map_parts_preserving (List.filter (fun _ -> true)) pd in
  Alcotest.(check (float 1e-9)) "mult preserved" 10.0 filtered.Pdata.rmult;
  let u = Pdata.union pd (Pdata.of_list ~nparts:2 vs) in
  Alcotest.(check (float 1e-9)) "union takes max" 10.0 u.Pdata.rmult

let test_pdata_key_property () =
  let key = P.udf_of_expr (Expr.Lam ("x", Expr.Var "x")) in
  let pd = Pdata.repartition ~nparts:2 ~key Fun.id (Pdata.of_list ~nparts:2 [ Value.int 1 ]) in
  Alcotest.(check bool) "map_parts clears key" false
    (Pdata.co_partitioned (Pdata.map_parts Fun.id pd) key);
  Alcotest.(check bool) "preserving keeps key" true
    (Pdata.co_partitioned (Pdata.map_parts_preserving Fun.id pd) key);
  Alcotest.(check bool) "union clears key" false
    (Pdata.co_partitioned (Pdata.union pd pd) key)

let suite =
  [ ( "plan",
      [ Alcotest.test_case "udf alpha equality" `Quick test_udf_alpha_equal;
        Alcotest.test_case "udf eta expansion" `Quick test_udf_eta_expansion;
        Alcotest.test_case "result kinds" `Quick test_result_kind;
        Alcotest.test_case "scans and counts" `Quick test_scanned_and_counts;
        Alcotest.test_case "plan printer total" `Quick test_plan_pp_total;
        Alcotest.test_case "cprog helpers" `Quick test_cprog_pp_and_helpers ] );
    ( "pdata",
      [ Alcotest.test_case "round trip" `Quick test_pdata_roundtrip;
        Alcotest.test_case "repartition" `Quick test_pdata_repartition;
        Alcotest.test_case "multiplier propagation" `Quick test_pdata_mult_propagation;
        Alcotest.test_case "key property" `Quick test_pdata_key_property ] ) ]
