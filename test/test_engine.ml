module Value = Emma_value.Value
module S = Emma_lang.Surface
module Pipeline = Emma_compiler.Pipeline
open Helpers

let laptop_rt ?(profile = Emma_engine.Cluster.spark_like) () =
  Emma.{ cluster = Emma_engine.Cluster.laptop (); profile; timeout_s = None }

(* Compile with the given opts, run on the engine, and compare against
   native evaluation of the source program. *)
let check_agreement ?(opts = Pipeline.default_opts) ?(profile = Emma_engine.Cluster.spark_like)
    msg tables prog =
  let algo = Emma.parallelize ~opts prog in
  let native, _ = Emma.run_native algo ~tables in
  match Emma.run_on (laptop_rt ~profile ()) algo ~tables with
  | Emma.Finished { value; _ } -> check_value msg native value
  | Emma.Failed { reason; _ } -> Alcotest.failf "%s: engine failed: %s" msg reason
  | Emma.Timed_out _ -> Alcotest.failf "%s: engine timed out" msg
  | Emma.Cancelled _ -> Alcotest.failf "%s: engine cancelled" msg

let rows_table n =
  List.init n (fun i -> Helpers.row (i mod 7) (i mod 3))

let test_simple_map () =
  let prog =
    S.program
      ~ret:S.(sum (map (lam "x" (fun x -> field x "a")) (read "rows")))
      []
  in
  check_agreement "sum of map" [ ("rows", rows_table 20) ] prog

let test_join_program () =
  let prog =
    S.program
      ~ret:
        S.(
          count
            (for_
               [ gen "x" (read "t1");
                 gen "y" (read "t2");
                 when_ (field (var "x") "a" = field (var "y") "a") ]
               ~yield:(tup [ var "x"; var "y" ])))
      []
  in
  check_agreement "join count" [ ("t1", rows_table 15); ("t2", rows_table 9) ] prog

let test_semijoin_program () =
  let prog =
    S.program
      ~ret:
        S.(
          count
            (for_
               [ gen "x" (read "t1");
                 when_
                   (exists
                      (lam "y" (fun y -> field y "a" = field (var "x") "a"))
                      (read "t2")) ]
               ~yield:(var "x")))
      []
  in
  let tables = [ ("t1", rows_table 20); ("t2", rows_table 4) ] in
  check_agreement "semijoin count" tables prog;
  (* multiplicity check: several matches on the right must not duplicate
     left elements — compare against unnesting disabled too *)
  check_agreement ~opts:(Pipeline.with_ ~unnest:false ()) "broadcast filter count" tables prog

let test_groupby_program () =
  let prog =
    S.program
      ~ret:
        S.(
          for_
            [ gen "g" (group_by (lam "x" (fun x -> field x "b")) (read "rows")) ]
            ~yield:
              (record
                 [ ("key", field (var "g") "key");
                   ("total", sum (map (lam "x" (fun x -> field x "a")) (field (var "g") "values")));
                   ("n", count (field (var "g") "values")) ]))
      []
  in
  let tables = [ ("rows", rows_table 25) ] in
  check_agreement "fused group aggregation" tables prog;
  check_agreement ~opts:(Pipeline.with_ ~fuse:false ()) "unfused group aggregation" tables prog

let test_cross_and_cache () =
  let prog =
    S.program
      ~ret:S.(var "total")
      [ S.s_let "xs" S.(map (lam "x" (fun x -> field x "a")) (read "rows"));
        S.s_var "total" (S.int_ 0);
        S.s_var "i" (S.int_ 0);
        S.while_
          S.(var "i" < int_ 3)
          [ S.assign "total" S.(var "total" + sum (var "xs") + count (var "xs"));
            S.assign "i" S.(var "i" + int_ 1) ] ]
  in
  let tables = [ ("rows", rows_table 12) ] in
  check_agreement "loop with cached binding" tables prog;
  check_agreement ~opts:(Pipeline.with_ ~cache:false ()) "loop without caching" tables prog

let test_write_sink () =
  let prog =
    S.program
      [ S.s_let "out" S.(map (lam "x" (fun x -> field x "a")) (read "rows"));
        S.write "sink" (S.var "out") ]
  in
  let tables = [ ("rows", rows_table 8) ] in
  let algo = Emma.parallelize prog in
  let _, native_ctx = Emma.run_native algo ~tables in
  match Emma.run_on (laptop_rt ()) algo ~tables with
  | Emma.Finished { ctx; _ } ->
      check_value "sink contents agree"
        (Value.bag (Emma.Eval.read_table native_ctx "sink"))
        (Value.bag (Emma.Eval.read_table ctx "sink"))
  | _ -> Alcotest.fail "engine run failed"

let test_stateful_program () =
  (* connected-components-like point updates through the engine *)
  let prog =
    S.program
      ~ret:S.(state_bag (var "st"))
      [ S.s_let "st"
          (S.stateful
             ~key:(S.lam "x" (fun x -> S.field x "id"))
             (S.read "cells"));
        S.s_var "i" (S.int_ 0);
        S.while_
          S.(var "i" < int_ 2)
          [ S.s_let "delta"
              (S.update_msgs (S.var "st")
                 ~msg_key:(S.lam "m" (fun m -> S.proj m 0))
                 ~messages:
                   S.(
                     for_
                       [ gen "c" (state_bag (var "st")) ]
                       ~yield:(tup [ field (var "c") "id"; field (var "c") "v" ]))
                 (S.lam2 "s" "m" (fun s m ->
                      S.some_
                        (S.record
                           [ ("id", S.field s "id"); ("v", S.(field s "v" + proj m 1)) ]))));
            S.assign "i" S.(var "i" + int_ 1) ] ]
  in
  let cells =
    [ Value.record [ ("id", Value.int 1); ("v", Value.int 1) ];
      Value.record [ ("id", Value.int 2); ("v", Value.int 10) ] ]
  in
  check_agreement "stateful loop" [ ("cells", cells) ] prog

let test_metrics_sane () =
  let prog =
    S.program ~ret:S.(sum (map (lam "x" (fun x -> field x "a")) (read "rows"))) []
  in
  let algo = Emma.parallelize prog in
  match Emma.run_on (laptop_rt ()) algo ~tables:[ ("rows", rows_table 50) ] with
  | Emma.Finished { metrics; _ } ->
      Alcotest.(check bool) "time advanced" true (metrics.Emma.Metrics.sim_time_s > 0.0);
      Alcotest.(check bool) "one job" true (metrics.Emma.Metrics.jobs >= 1);
      Alcotest.(check bool) "dfs read charged" true (metrics.Emma.Metrics.dfs_read_bytes > 0.0)
  | _ -> Alcotest.fail "run failed"

let test_caching_reduces_recomputes () =
  let prog =
    S.program
      ~ret:S.(var "acc")
      [ S.s_let "xs" S.(map (lam "x" (fun x -> field x "a")) (read "rows"));
        S.s_var "acc" (S.int_ 0);
        S.s_var "i" (S.int_ 0);
        S.while_
          S.(var "i" < int_ 4)
          [ S.assign "acc" S.(var "acc" + sum (var "xs"));
            S.assign "i" S.(var "i" + int_ 1) ] ]
  in
  let tables = [ ("rows", rows_table 30) ] in
  let run opts =
    let algo = Emma.parallelize ~opts prog in
    match Emma.run_on (laptop_rt ()) algo ~tables with
    | Emma.Finished { metrics; _ } -> metrics
    | _ -> Alcotest.fail "run failed"
  in
  let with_cache = run Pipeline.default_opts in
  let without = run (Pipeline.with_ ~cache:false ~partition:false ()) in
  Alcotest.(check bool) "cache hits occur" true (with_cache.Emma.Metrics.cache_hits >= 3);
  Alcotest.(check bool) "uncached recomputes more" true
    (without.Emma.Metrics.recomputes > with_cache.Emma.Metrics.recomputes);
  Alcotest.(check bool) "cached run is faster" true
    (with_cache.Emma.Metrics.sim_time_s < without.Emma.Metrics.sim_time_s)

let test_groupby_oom () =
  (* a single huge group: Spark-like fails, Flink-like spills *)
  let rows =
    List.init 64 (fun i ->
        Value.record
          [ ("k", Value.int 0); ("payload", Value.blob ~bytes:20_000_000 ~tag:i) ])
  in
  let prog =
    S.program
      ~ret:
        S.(
          count
            (group_by (lam "x" (fun x -> field x "k")) (read "rows")))
      []
  in
  let contains_sub hay needle =
    let nh = String.length hay and nn = String.length needle in
    let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
    nn = 0 || go 0
  in
  let algo = Emma.parallelize ~opts:(Pipeline.with_ ~fuse:false ()) prog in
  (match Emma.run_on (laptop_rt ()) algo ~tables:[ ("rows", rows) ] with
  | Emma.Failed { reason; _ } ->
      Alcotest.(check bool) "OOM reported" true (contains_sub reason "memory")
  | _ -> Alcotest.fail "spark-like should fail on a huge group");
  match
    Emma.run_on (laptop_rt ~profile:Emma_engine.Cluster.flink_like ()) algo
      ~tables:[ ("rows", rows) ]
  with
  | Emma.Finished { metrics; _ } ->
      Alcotest.(check bool) "flink-like spilled" true (metrics.Emma.Metrics.spilled_bytes > 0.0)
  | _ -> Alcotest.fail "flink-like should spill and finish"

let prop_engine_matches_native =
  Helpers.qcheck_case "engine = native on random pipelines" ~count:60
    QCheck2.Gen.(pair Helpers.rows_gen Helpers.terminated_pipeline_gen)
    (fun (rows, e) ->
      let prog = S.program ~ret:e [] in
      let tables = [ ("rows", rows) ] in
      let algo = Emma.parallelize prog in
      let native, _ = Emma.run_native algo ~tables in
      match Emma.run_on (laptop_rt ()) algo ~tables with
      | Emma.Finished { value; _ } -> Value.equal native value
      | _ -> false)

let prop_engine_matches_native_noopt =
  Helpers.qcheck_case "engine = native with optimizations off" ~count:40
    QCheck2.Gen.(pair Helpers.rows_gen Helpers.terminated_pipeline_gen)
    (fun (rows, e) ->
      let prog = S.program ~ret:e [] in
      let tables = [ ("rows", rows) ] in
      let algo = Emma.parallelize ~opts:Pipeline.no_opts prog in
      let native, _ = Emma.run_native algo ~tables in
      match Emma.run_on (laptop_rt ()) algo ~tables with
      | Emma.Finished { value; _ } -> Value.equal native value
      | _ -> false)

let suite =
  [ ( "engine",
      [ Alcotest.test_case "simple map+fold" `Quick test_simple_map;
        Alcotest.test_case "join" `Quick test_join_program;
        Alcotest.test_case "semijoin multiplicity" `Quick test_semijoin_program;
        Alcotest.test_case "group by (fused and not)" `Quick test_groupby_program;
        Alcotest.test_case "loop + cache" `Quick test_cross_and_cache;
        Alcotest.test_case "write sink" `Quick test_write_sink;
        Alcotest.test_case "stateful loop" `Quick test_stateful_program;
        Alcotest.test_case "metrics sane" `Quick test_metrics_sane;
        Alcotest.test_case "caching reduces recomputes" `Quick test_caching_reduces_recomputes;
        Alcotest.test_case "groupby OOM vs spill" `Quick test_groupby_oom;
        prop_engine_matches_native;
        prop_engine_matches_native_noopt ] ) ]
