(* Failure injection: losing cached results mid-run must be invisible to
   program semantics — the engine recovers them through lineage, paying
   only recomputation cost. *)

module Value = Emma_value.Value
module S = Emma_lang.Surface
module Cluster = Emma_engine.Cluster
module Engine = Emma_engine.Exec
open Helpers

let loop_prog iters =
  S.program
    ~ret:(S.var "acc")
    [ S.s_let "xs" S.(map (lam "x" (fun x -> field x "a")) (read "t"));
      S.s_var "acc" (S.int_ 0);
      S.s_var "i" (S.int_ 0);
      S.while_
        S.(var "i" < int_ iters)
        [ S.assign "acc" S.(var "acc" + sum (var "xs"));
          S.assign "i" S.(var "i" + int_ 1) ] ]

let run_with ?(cache_loss_at = []) prog tables =
  let ctx = Emma.Eval.create_ctx () in
  List.iter (fun (n, rows) -> Emma.Eval.register_table ctx n rows) tables;
  let eng =
    Engine.create ~cache_loss_at ~cluster:(Cluster.laptop ()) ~profile:Cluster.spark_like ctx
  in
  let v = Engine.run eng (Emma.parallelize prog).Emma.compiled in
  (v, Engine.metrics eng)

let tables = [ ("t", List.init 20 (fun i -> Helpers.row i (i mod 3))) ]

let test_result_unchanged () =
  let clean, m_clean = run_with (loop_prog 5) tables in
  let faulty, m_faulty = run_with ~cache_loss_at:[ 2; 4 ] (loop_prog 5) tables in
  check_value "results identical under failures" clean faulty;
  Alcotest.(check int) "two losses recovered" 2 m_faulty.Emma.Metrics.cache_losses;
  Alcotest.(check int) "no losses in the clean run" 0 m_clean.Emma.Metrics.cache_losses

let test_recovery_costs_time () =
  let _, m_clean = run_with (loop_prog 5) tables in
  let _, m_faulty = run_with ~cache_loss_at:[ 1 ] (loop_prog 5) tables in
  Alcotest.(check bool) "recovery re-executes lineage" true
    (m_faulty.Emma.Metrics.recomputes > m_clean.Emma.Metrics.recomputes);
  Alcotest.(check bool) "recovery costs simulated time" true
    (m_faulty.Emma.Metrics.sim_time_s > m_clean.Emma.Metrics.sim_time_s)

let test_recovered_copy_is_reused () =
  (* after recovery the re-materialized cache serves later hits *)
  let _, m = run_with ~cache_loss_at:[ 1 ] (loop_prog 6) tables in
  Alcotest.(check bool) "later iterations hit the recovered cache" true
    (m.Emma.Metrics.cache_hits >= 4)

let test_every_hit_lost () =
  (* worst case: every single cache access fails — still correct *)
  let clean, _ = run_with (loop_prog 4) tables in
  let faulty, m = run_with ~cache_loss_at:(List.init 50 (fun i -> i + 1)) (loop_prog 4) tables in
  check_value "correct under total cache loss" clean faulty;
  Alcotest.(check int) "no surviving hits" 0 m.Emma.Metrics.cache_hits

let prop_faults_never_change_results =
  Helpers.qcheck_case "random fault schedules never change results" ~count:40
    QCheck2.Gen.(pair Helpers.rows_gen (list_size (int_bound 6) (int_range 1 10)))
    (fun (rows, losses) ->
      let prog = loop_prog 3 in
      let tables = [ ("t", rows) ] in
      let clean, _ = run_with prog tables in
      let faulty, _ = run_with ~cache_loss_at:losses prog tables in
      Value.equal clean faulty)

let suite =
  [ ( "fault_injection",
      [ Alcotest.test_case "results unchanged" `Quick test_result_unchanged;
        Alcotest.test_case "recovery costs time" `Quick test_recovery_costs_time;
        Alcotest.test_case "recovered copy reused" `Quick test_recovered_copy_is_reused;
        Alcotest.test_case "total cache loss" `Quick test_every_hit_lost;
        prop_faults_never_change_results ] ) ]
