(* The chaos subsystem's contract: for ANY fault plan — seeded, scripted,
   or the legacy cache_loss_at schedule — results are bit-identical to the
   fault-free run, at any domain count. Injected failures may only cost
   simulated time and move the clearly-scoped recovery counters.

   Covered here:
   - the legacy cache-loss channel (losing cached results mid-run);
   - scripted plans: task retries, job failure at the attempt bound,
     blacklisting, shuffle-fetch retries, stragglers ± speculation,
     executor loss with lineage recomputation;
   - seeded plans: differential vs native at 1/2/4 domains (qcheck),
     20× metrics determinism for a fixed seed;
   - loop checkpointing: PageRank and k-means resume from checkpoints
     with identical output;
   - Engine_timeout firing mid-recovery (a retry storm is aborted). *)

module Value = Emma_value.Value
module S = Emma_lang.Surface
module Cluster = Emma_engine.Cluster
module Metrics = Emma_engine.Metrics
module Engine = Emma_engine.Exec
module Faults = Emma_engine.Faults
module Pool = Emma_util.Pool
module W = Emma_workloads
module Pr = Emma_programs
open Helpers

let loop_prog iters =
  S.program
    ~ret:(S.var "acc")
    [ S.s_let "xs" S.(map (lam "x" (fun x -> field x "a")) (read "t"));
      S.s_var "acc" (S.int_ 0);
      S.s_var "i" (S.int_ 0);
      S.while_
        S.(var "i" < int_ iters)
        [ S.assign "acc" S.(var "acc" + sum (var "xs"));
          S.assign "i" S.(var "i" + int_ 1) ] ]

let map_prog =
  S.program ~ret:S.(sum (map (lam "x" (fun x -> field x "a")) (read "t"))) []

(* group-then-fold fuses to an aggBy, whose reduce side shuffles *)
let group_prog =
  S.program
    ~ret:S.(count (var "d") + sum (map (lam "x" (fun x -> field x "a")) (var "d")))
    [ S.s_let "d"
        S.(
          for_
            [ gen "g" (group_by (lam "x" (fun x -> field x "b")) (read "t")) ]
            ~yield:
              (record
                 [ ( "a",
                     sum (map (lam "x" (fun x -> field x "a")) (field (var "g") "values"))
                   );
                   ("b", field (var "g") "key") ])) ]

let run_engine ?faults ?checkpoint_every ?timeout_s ?cluster ?pool ?udf_mode prog
    tables =
  let cluster = match cluster with Some c -> c | None -> Cluster.laptop () in
  let ctx = ctx_with tables in
  let eng =
    Engine.create ?timeout_s ?faults ?checkpoint_every ?pool ?udf_mode ~cluster
      ~profile:Cluster.spark_like ctx
  in
  let v = Engine.run eng (Emma.parallelize prog).Emma.compiled in
  (v, Engine.metrics eng)

let run_with ?(cache_loss_at = []) prog tables =
  run_engine ~faults:(Faults.of_cache_loss_at cache_loss_at) prog tables

let tables = [ ("t", List.init 20 (fun i -> Helpers.row i (i mod 3))) ]

(* every cost-model field (wall_time_s / par_* describe the host run) *)
let cost_sig (m : Metrics.t) =
  ( ( m.Metrics.sim_time_s,
      m.Metrics.shuffle_bytes,
      m.Metrics.broadcast_bytes,
      m.Metrics.dfs_read_bytes,
      m.Metrics.dfs_write_bytes,
      m.Metrics.collect_bytes,
      m.Metrics.parallelize_bytes ),
    ( m.Metrics.spilled_bytes,
      m.Metrics.jobs,
      m.Metrics.stages,
      m.Metrics.recomputes,
      m.Metrics.cache_hits,
      m.Metrics.cache_losses,
      m.Metrics.udf_invocations ) )

let recovery_sig (m : Metrics.t) =
  ( ( m.Metrics.retries,
      m.Metrics.fetch_failures,
      m.Metrics.executor_losses,
      m.Metrics.blacklisted_nodes,
      m.Metrics.recomputed_partitions ),
    ( m.Metrics.speculative_launches,
      m.Metrics.speculative_wins,
      m.Metrics.checkpoints,
      m.Metrics.checkpoint_bytes,
      m.Metrics.loop_restores ) )

let zero_recovery = ((0, 0, 0, 0, 0), (0, 0, 0, 0.0, 0))

let with_pool domains f =
  let pool = Pool.create ~domains () in
  Fun.protect ~finally:(fun () -> Pool.shutdown pool) (fun () -> f pool)

(* ---------------------------------------------------------------- *)
(* Legacy cache-loss channel (the deprecated ?cache_loss_at API)      *)
(* ---------------------------------------------------------------- *)

let test_result_unchanged () =
  let clean, m_clean = run_with (loop_prog 5) tables in
  let faulty, m_faulty = run_with ~cache_loss_at:[ 2; 4 ] (loop_prog 5) tables in
  check_value "results identical under failures" clean faulty;
  Alcotest.(check int) "two losses recovered" 2 m_faulty.Emma.Metrics.cache_losses;
  Alcotest.(check int) "no losses in the clean run" 0 m_clean.Emma.Metrics.cache_losses

let test_recovery_costs_time () =
  let _, m_clean = run_with (loop_prog 5) tables in
  let _, m_faulty = run_with ~cache_loss_at:[ 1 ] (loop_prog 5) tables in
  Alcotest.(check bool) "recovery re-executes lineage" true
    (m_faulty.Emma.Metrics.recomputes > m_clean.Emma.Metrics.recomputes);
  Alcotest.(check bool) "recovery costs simulated time" true
    (m_faulty.Emma.Metrics.sim_time_s > m_clean.Emma.Metrics.sim_time_s)

let test_recovered_copy_is_reused () =
  (* after recovery the re-materialized cache serves later hits *)
  let _, m = run_with ~cache_loss_at:[ 1 ] (loop_prog 6) tables in
  Alcotest.(check bool) "later iterations hit the recovered cache" true
    (m.Emma.Metrics.cache_hits >= 4)

let test_every_hit_lost () =
  (* worst case: every single cache access fails — still correct *)
  let clean, _ = run_with (loop_prog 4) tables in
  let faulty, m = run_with ~cache_loss_at:(List.init 50 (fun i -> i + 1)) (loop_prog 4) tables in
  check_value "correct under total cache loss" clean faulty;
  Alcotest.(check int) "no surviving hits" 0 m.Emma.Metrics.cache_hits

let test_legacy_wrapper_is_a_plan () =
  (* Faults.of_cache_loss_at is a thin wrapper over scripted Cache_loss
     events: the wrapper and the hand-written plan behave identically *)
  let explicit = Faults.scripted [ Faults.Cache_loss 2; Faults.Cache_loss 4 ] in
  let v_plan, m_plan = run_engine ~faults:explicit (loop_prog 5) tables in
  let v_wrap, m_wrap = run_with ~cache_loss_at:[ 2; 4 ] (loop_prog 5) tables in
  check_value "same result" v_wrap v_plan;
  Alcotest.(check bool) "same cost metrics" true (cost_sig m_wrap = cost_sig m_plan);
  Alcotest.(check bool) "same recovery metrics" true
    (recovery_sig m_wrap = recovery_sig m_plan)

let prop_faults_never_change_results =
  Helpers.qcheck_case "random fault schedules never change results" ~count:40
    QCheck2.Gen.(pair Helpers.rows_gen (list_size (int_bound 6) (int_range 1 10)))
    (fun (rows, losses) ->
      let prog = loop_prog 3 in
      let tables = [ ("t", rows) ] in
      let clean, _ = run_with prog tables in
      let faulty, _ = run_with ~cache_loss_at:losses prog tables in
      Value.equal clean faulty)

(* ---------------------------------------------------------------- *)
(* Empty plans are inert                                              *)
(* ---------------------------------------------------------------- *)

let test_empty_plans_inert () =
  let clean, m_clean = run_engine (loop_prog 5) tables in
  Alcotest.(check bool) "clean run touches no recovery counter" true
    (recovery_sig m_clean = zero_recovery);
  List.iter
    (fun (name, faults) ->
      let v, m = run_engine ~faults (loop_prog 5) tables in
      check_value (name ^ ": same result") clean v;
      Alcotest.(check bool) (name ^ ": same cost metrics") true
        (cost_sig m_clean = cost_sig m);
      Alcotest.(check bool) (name ^ ": no recovery activity") true
        (recovery_sig m = zero_recovery))
    [ ("none", Faults.none);
      ("zero rates", Faults.seeded ~rates:Faults.zero_rates 123);
      ("empty script", Faults.scripted []) ]

(* ---------------------------------------------------------------- *)
(* Scripted plans: each channel, surgically                           *)
(* ---------------------------------------------------------------- *)

let test_scripted_task_retries () =
  let clean, m_clean = run_engine map_prog tables in
  let faults =
    Faults.scripted [ Faults.Task_fail { barrier = 1; part = 0; attempts = 2 } ]
  in
  let v, m = run_engine ~faults map_prog tables in
  check_value "result survives two failed attempts" clean v;
  Alcotest.(check int) "both failures counted as retries" 2 m.Emma.Metrics.retries;
  Alcotest.(check bool) "backoff charged to the clock" true
    (m.Emma.Metrics.sim_time_s > m_clean.Emma.Metrics.sim_time_s)

let test_scripted_attempts_exhausted_fails_job () =
  (* scripted counts are not capped: reaching max_task_attempts (4) is an
     unrecoverable job failure, exactly like Spark's task.maxFailures *)
  let faults =
    Faults.scripted [ Faults.Task_fail { barrier = 1; part = 0; attempts = 4 } ]
  in
  match run_engine ~faults map_prog tables with
  | _ -> Alcotest.fail "job should have failed at the attempt bound"
  | exception Engine.Engine_failure _ -> ()

let test_blacklisting () =
  (* laptop = 4 nodes; attempt [a] of partition [p] is placed on node
     (p + a) mod 4, and blacklist_after = 3. These single-attempt failures
     all land on node 0, so the third blacklists it — and the fourth event
     is suppressed because the scheduler no longer places tasks there. *)
  let clean, _ = run_engine (loop_prog 3) tables in
  let faults =
    Faults.scripted
      [ Faults.Task_fail { barrier = 1; part = 0; attempts = 1 };
        Faults.Task_fail { barrier = 1; part = 4; attempts = 1 };
        Faults.Task_fail { barrier = 2; part = 0; attempts = 1 };
        Faults.Task_fail { barrier = 3; part = 0; attempts = 1 } ]
  in
  let v, m = run_engine ~faults (loop_prog 3) tables in
  check_value "result unchanged" clean v;
  Alcotest.(check int) "node 0 blacklisted" 1 m.Emma.Metrics.blacklisted_nodes;
  Alcotest.(check int) "post-blacklist failure suppressed" 3 m.Emma.Metrics.retries

let test_scripted_fetch_failures () =
  let clean, m_clean = run_engine group_prog tables in
  let faults =
    Faults.scripted [ Faults.Fetch_fail { shuffle = 1; part = 0; times = 3 } ]
  in
  let v, m = run_engine ~faults group_prog tables in
  check_value "aggregation survives lost chunks" clean v;
  Alcotest.(check int) "three re-fetches" 3 m.Emma.Metrics.fetch_failures;
  Alcotest.(check bool) "re-fetch charged to the clock" true
    (m.Emma.Metrics.sim_time_s > m_clean.Emma.Metrics.sim_time_s)

let test_straggler_speculation () =
  let clean, m_clean = run_engine map_prog tables in
  let faults =
    Faults.scripted [ Faults.Straggle { stage = 1; part = 0; slowdown = 6.0 } ]
  in
  let v, m = run_engine ~faults map_prog tables in
  check_value "straggler does not change the result" clean v;
  Alcotest.(check int) "speculative copy launched" 1 m.Emma.Metrics.speculative_launches;
  Alcotest.(check int) "copy finished first" 1 m.Emma.Metrics.speculative_wins;
  Alcotest.(check bool) "stage stretched by the straggler" true
    (m.Emma.Metrics.sim_time_s > m_clean.Emma.Metrics.sim_time_s);
  (* without speculation the barrier waits for the full 6× task *)
  let no_spec =
    let l = Cluster.laptop () in
    { l with Cluster.recovery = { l.Cluster.recovery with Cluster.speculate = false } }
  in
  let v', m' = run_engine ~cluster:no_spec ~faults map_prog tables in
  check_value "still correct without speculation" clean v';
  Alcotest.(check int) "no copies launched" 0 m'.Emma.Metrics.speculative_launches;
  Alcotest.(check bool) "speculation caps the slowdown at 2x" true
    (m'.Emma.Metrics.sim_time_s > m.Emma.Metrics.sim_time_s)

let test_scripted_executor_loss () =
  let clean, m_clean = run_engine (loop_prog 5) tables in
  let faults = Faults.scripted [ Faults.Exec_loss { barrier = 3; node = 0 } ] in
  let v, m = run_engine ~faults (loop_prog 5) tables in
  check_value "loop result survives the node death" clean v;
  Alcotest.(check int) "one executor lost" 1 m.Emma.Metrics.executor_losses;
  Alcotest.(check bool) "its cached partitions were recovered via lineage" true
    (m.Emma.Metrics.cache_losses > m_clean.Emma.Metrics.cache_losses
    && m.Emma.Metrics.recomputed_partitions > 0);
  Alcotest.(check bool) "recovery costs simulated time" true
    (m.Emma.Metrics.sim_time_s > m_clean.Emma.Metrics.sim_time_s)

(* ---------------------------------------------------------------- *)
(* Seeded plans: differential vs native, deterministic metrics        *)
(* ---------------------------------------------------------------- *)

let prop_seeded_differential =
  qcheck_case
    "random pipelines x seeded fault plans at 1/2/4 domains = native" ~count:15
    QCheck2.Gen.(
      triple Helpers.terminated_pipeline_gen Helpers.rows_gen (int_bound 9999))
    (fun (e, rows, seed) ->
      let prog = S.program ~ret:e [] in
      let tables = [ ("rows", rows) ] in
      let faults = Faults.seeded seed in
      let native, _ = Emma.run_native (Emma.parallelize prog) ~tables in
      let runs =
        List.map
          (fun domains ->
            with_pool domains (fun pool -> run_engine ~faults ~pool prog tables))
          [ 1; 2; 4 ]
      in
      let v1, m1 = List.hd runs in
      Value.equal native v1
      && List.for_all
           (fun (v, m) ->
             Value.equal v1 v
             && cost_sig m1 = cost_sig m
             && recovery_sig m1 = recovery_sig m)
           runs)

let test_seeded_metrics_deterministic () =
  (* a fixed seed is a fixed plan: 20 repeated runs under 4 domains carry
     byte-identical cost AND recovery metrics, equal to the sequential run *)
  let faults = Faults.seeded 42 in
  let render (v, m) =
    (Format.asprintf "%a" Value.pp v, cost_sig m, recovery_sig m)
  in
  let reference =
    with_pool 1 (fun pool -> render (run_engine ~faults ~pool (loop_prog 4) tables))
  in
  with_pool 4 (fun pool ->
      for i = 1 to 20 do
        let got = render (run_engine ~faults ~pool (loop_prog 4) tables) in
        if got <> reference then
          Alcotest.failf "seeded run %d under 4 domains differs from sequential" i
      done)

let test_seeded_plan_actually_injects () =
  (* guards the differential suite against vacuity: the default rates do
     inject on this workload *)
  let faults = Faults.seeded 42 in
  let clean, m_clean = run_engine (loop_prog 4) tables in
  let v, m = run_engine ~faults (loop_prog 4) tables in
  check_value "seeded chaos never changes the result" clean v;
  Alcotest.(check bool) "some faults injected" true (recovery_sig m <> zero_recovery);
  Alcotest.(check bool) "chaos costs simulated time" true
    (m.Emma.Metrics.sim_time_s > m_clean.Emma.Metrics.sim_time_s)

(* ---------------------------------------------------------------- *)
(* Loop checkpointing: resume with identical output                   *)
(* ---------------------------------------------------------------- *)

let pagerank_setup () =
  let cfg = W.Graph_gen.default ~n_vertices:60 in
  ( Pr.Pagerank.program (Pr.Pagerank.default_params ~n_pages:60),
    [ ("vertices", W.Graph_gen.adjacency ~seed:3 cfg) ] )

let test_pagerank_checkpoint_resume () =
  let prog, tables = pagerank_setup () in
  let clean, m_clean = run_engine prog tables in
  Alcotest.(check int) "no checkpoints without the option" 0
    m_clean.Emma.Metrics.checkpoints;
  (* two driver losses mid-iteration; StatefulBag ranks restored from the
     every-2-iterations checkpoint *)
  let faults = Faults.scripted [ Faults.Loop_loss 3; Faults.Loop_loss 6 ] in
  let v, m = run_engine ~faults ~checkpoint_every:2 prog tables in
  check_value "ranks identical after two restores" clean v;
  Alcotest.(check int) "two restores" 2 m.Emma.Metrics.loop_restores;
  Alcotest.(check bool) "checkpoints were written" true (m.Emma.Metrics.checkpoints > 0);
  Alcotest.(check bool) "checkpoint bytes accounted" true
    (m.Emma.Metrics.checkpoint_bytes > 0.0);
  Alcotest.(check bool) "checkpoint + restore cost simulated time" true
    (m.Emma.Metrics.sim_time_s > m_clean.Emma.Metrics.sim_time_s);
  (* with checkpointing off the loop restarts from its entry snapshot —
     slower, but still bit-identical *)
  let v', m' = run_engine ~faults prog tables in
  check_value "ranks identical after entry restarts" clean v';
  Alcotest.(check int) "no checkpoints written" 0 m'.Emma.Metrics.checkpoints;
  Alcotest.(check int) "restores still honoured" 2 m'.Emma.Metrics.loop_restores

let test_corrupt_checkpoint_skipped () =
  (* every checkpoint record carries a CRC32; a corrupted record is
     detected on restore, counted, and skipped in favour of the previous
     good one. Checkpoints at iterations 2 and 4; the loss hits at 5 with
     the iteration-4 record corrupted, so recovery restarts from 2. *)
  let prog, tables = pagerank_setup () in
  let clean, _ = run_engine prog tables in
  let v, m =
    run_engine
      ~faults:(Faults.scripted [ Faults.Ckpt_corrupt 2; Faults.Loop_loss 5 ])
      ~checkpoint_every:2 prog tables
  in
  check_value "identical result despite the corrupted checkpoint" clean v;
  Alcotest.(check int) "corruption detected once" 1
    m.Emma.Metrics.checkpoint_corruptions;
  Alcotest.(check int) "one restore" 1 m.Emma.Metrics.loop_restores;
  (* falling back to an older checkpoint replays more iterations than
     the same loss with the newest checkpoint intact *)
  let v', m' =
    run_engine
      ~faults:(Faults.scripted [ Faults.Loop_loss 5 ])
      ~checkpoint_every:2 prog tables
  in
  check_value "reference recovery agrees" clean v';
  Alcotest.(check int) "no corruption without the injection" 0
    m'.Emma.Metrics.checkpoint_corruptions;
  Alcotest.(check bool) "the older restart replays more work" true
    (m.Emma.Metrics.sim_time_s > m'.Emma.Metrics.sim_time_s)

let test_all_checkpoints_corrupt_falls_back_to_entry () =
  (* with every written checkpoint corrupted, recovery walks the whole
     chain and lands on the loop-entry snapshot (which never leaves the
     driver, so it cannot corrupt) — still bit-identical *)
  let prog, tables = pagerank_setup () in
  let clean, _ = run_engine prog tables in
  let v, m =
    run_engine
      ~faults:
        (Faults.scripted
           [ Faults.Ckpt_corrupt 1; Faults.Ckpt_corrupt 2; Faults.Loop_loss 5 ])
      ~checkpoint_every:2 prog tables
  in
  check_value "entry-snapshot fallback is correct" clean v;
  Alcotest.(check int) "both written checkpoints rejected" 2
    m.Emma.Metrics.checkpoint_corruptions;
  Alcotest.(check int) "one restore" 1 m.Emma.Metrics.loop_restores

let test_unread_corruption_is_harmless () =
  (* a corrupted checkpoint that is never restored from costs nothing
     and is never counted — detection happens on read, like a real DFS *)
  let prog, tables = pagerank_setup () in
  let clean, m_clean = run_engine ~checkpoint_every:2 prog tables in
  let v, m =
    run_engine
      ~faults:(Faults.scripted [ Faults.Ckpt_corrupt 1 ])
      ~checkpoint_every:2 prog tables
  in
  check_value "same result" clean v;
  Alcotest.(check int) "nothing detected" 0 m.Emma.Metrics.checkpoint_corruptions;
  Alcotest.(check bool) "cost metrics identical" true (cost_sig m = cost_sig m_clean)

let test_kmeans_checkpoint_resume () =
  let cfg = W.Points_gen.default ~n_points:200 ~k:3 in
  let tables =
    [ ("points", W.Points_gen.points ~seed:2 cfg);
      ("centroids0", W.Points_gen.initial_centroids ~seed:2 cfg) ]
  in
  let prog = Pr.Kmeans.program Pr.Kmeans.default_params in
  let clean, _ = run_engine prog tables in
  let faults = Faults.scripted [ Faults.Loop_loss 1 ] in
  let v, m = run_engine ~faults ~checkpoint_every:1 prog tables in
  check_value "centroids identical after a restore" clean v;
  Alcotest.(check int) "one restore" 1 m.Emma.Metrics.loop_restores;
  Alcotest.(check bool) "checkpointed every iteration" true
    (m.Emma.Metrics.checkpoints >= 1)

let test_seeded_loop_loss_bounded () =
  (* loss rate 1.0: every boundary wants to kill the driver; the restart
     cap guarantees progress and the result is still exact *)
  let prog, tables = pagerank_setup () in
  let clean, _ = run_engine prog tables in
  let faults =
    Faults.seeded ~rates:{ Faults.zero_rates with Faults.loop_loss = 1.0 } 5
  in
  let v, m = run_engine ~faults ~checkpoint_every:1 prog tables in
  check_value "exact under loss rate 1.0" clean v;
  Alcotest.(check bool) "restarts honoured up to the cap" true
    (m.Emma.Metrics.loop_restores >= 1
    && m.Emma.Metrics.loop_restores
       <= (Cluster.laptop ()).Cluster.recovery.Cluster.max_loop_restarts)

(* ---------------------------------------------------------------- *)
(* Staged UDFs under failure                                           *)
(* ---------------------------------------------------------------- *)

(* Recovery re-invokes UDFs: lineage recomputation and checkpoint resume
   replay the staged closures. The `--udf-mode` knob must be invisible to
   the fault model — same values and byte-identical cost AND recovery
   counters in both modes, whatever the chaos plan. *)

let check_mode_parity_under name ?checkpoint_every ~faults prog tables =
  let vi, mi =
    run_engine ~faults ?checkpoint_every ~udf_mode:Engine.Interp prog tables
  in
  let vc, mc =
    run_engine ~faults ?checkpoint_every ~udf_mode:Engine.Compiled prog tables
  in
  check_value (name ^ ": same value") vi vc;
  Alcotest.(check bool) (name ^ ": cost metrics bit-identical") true
    (cost_sig mi = cost_sig mc);
  Alcotest.(check bool) (name ^ ": recovery metrics bit-identical") true
    (recovery_sig mi = recovery_sig mc)

let test_compiled_udfs_under_seeded_chaos () =
  List.iter
    (fun (name, prog) ->
      List.iter
        (fun seed ->
          check_mode_parity_under
            (Printf.sprintf "%s/seed %d" name seed)
            ~faults:(Faults.seeded seed) prog tables)
        [ 7; 42 ])
    [ ("loop", loop_prog 4); ("map", map_prog); ("group", group_prog) ]

let test_compiled_lineage_recompute () =
  (* executor loss drops cached partitions; they are rebuilt by re-running
     the staged closures over their lineage *)
  let faults = Faults.scripted [ Faults.Exec_loss { barrier = 3; node = 0 } ] in
  check_mode_parity_under "executor loss" ~faults (loop_prog 5) tables;
  let clean, _ = run_engine (loop_prog 5) tables in
  let v, m = run_engine ~faults ~udf_mode:Engine.Compiled (loop_prog 5) tables in
  check_value "compiled recomputation is exact" clean v;
  Alcotest.(check bool) "recomputation actually ran" true
    (m.Emma.Metrics.recomputed_partitions > 0)

let test_compiled_checkpoint_resume () =
  (* driver losses mid-loop: the StatefulBag ranks are restored from a
     checkpoint and the remaining iterations replay through the compiled
     closures *)
  let prog, pr_tables = pagerank_setup () in
  let faults = Faults.scripted [ Faults.Loop_loss 3; Faults.Loop_loss 6 ] in
  check_mode_parity_under "pagerank resume" ~checkpoint_every:2 ~faults prog
    pr_tables;
  let clean, _ = run_engine prog pr_tables in
  let v, m =
    run_engine ~faults ~checkpoint_every:2 ~udf_mode:Engine.Compiled prog pr_tables
  in
  check_value "compiled resume is exact" clean v;
  Alcotest.(check int) "both restores honoured" 2 m.Emma.Metrics.loop_restores

(* ---------------------------------------------------------------- *)
(* Engine_timeout fires mid-recovery                                   *)
(* ---------------------------------------------------------------- *)

let test_timeout_aborts_retry_storm () =
  (* recovery charges flow through the same clock the timeout watches, so
     a retry storm that would blow past the deadline is aborted instead of
     silently retried to completion *)
  let slow_retries =
    let l = Cluster.laptop () in
    { l with
      Cluster.recovery = { l.Cluster.recovery with Cluster.retry_backoff_s = 30.0 } }
  in
  let storm =
    Faults.scripted
      (List.init 8 (fun part -> Faults.Task_fail { barrier = 1; part; attempts = 3 }))
  in
  let clean, m_clean = run_engine ~cluster:slow_retries (loop_prog 3) tables in
  let deadline = m_clean.Emma.Metrics.sim_time_s +. 10.0 in
  (* sanity: the deadline is generous for a fault-free run... *)
  let v, _ = run_engine ~cluster:slow_retries ~timeout_s:deadline (loop_prog 3) tables in
  check_value "clean run fits the deadline" clean v;
  (* ...and the storm itself is recoverable when there is no deadline *)
  let v', m' = run_engine ~cluster:slow_retries ~faults:storm (loop_prog 3) tables in
  check_value "storm recovers without a deadline" clean v';
  Alcotest.(check bool) "storm charged real backoff" true
    (m'.Emma.Metrics.sim_time_s > deadline);
  match
    run_engine ~cluster:slow_retries ~faults:storm ~timeout_s:deadline (loop_prog 3)
      tables
  with
  | _ -> Alcotest.fail "retry storm should have hit the timeout"
  | exception Engine.Engine_timeout at ->
      Alcotest.(check bool) "aborted past the deadline, mid-recovery" true
        (at >= deadline)

let suite =
  [ ( "fault_injection",
      [ Alcotest.test_case "results unchanged" `Quick test_result_unchanged;
        Alcotest.test_case "recovery costs time" `Quick test_recovery_costs_time;
        Alcotest.test_case "recovered copy reused" `Quick test_recovered_copy_is_reused;
        Alcotest.test_case "total cache loss" `Quick test_every_hit_lost;
        Alcotest.test_case "cache_loss_at = scripted plan" `Quick
          test_legacy_wrapper_is_a_plan;
        prop_faults_never_change_results;
        Alcotest.test_case "empty plans are inert" `Quick test_empty_plans_inert ] );
    ( "fault_injection_scripted",
      [ Alcotest.test_case "task retries" `Quick test_scripted_task_retries;
        Alcotest.test_case "attempt bound fails the job" `Quick
          test_scripted_attempts_exhausted_fails_job;
        Alcotest.test_case "blacklisting" `Quick test_blacklisting;
        Alcotest.test_case "shuffle-fetch retries" `Quick test_scripted_fetch_failures;
        Alcotest.test_case "stragglers and speculation" `Quick
          test_straggler_speculation;
        Alcotest.test_case "executor loss recovers via lineage" `Quick
          test_scripted_executor_loss ] );
    ( "fault_injection_seeded",
      [ prop_seeded_differential;
        Alcotest.test_case "20x deterministic metrics for a fixed seed" `Quick
          test_seeded_metrics_deterministic;
        Alcotest.test_case "seeded plan actually injects" `Quick
          test_seeded_plan_actually_injects ] );
    ( "loop_checkpointing",
      [ Alcotest.test_case "pagerank resumes from checkpoints" `Quick
          test_pagerank_checkpoint_resume;
        Alcotest.test_case "corrupt checkpoint detected and skipped" `Quick
          test_corrupt_checkpoint_skipped;
        Alcotest.test_case "all-corrupt falls back to loop entry" `Quick
          test_all_checkpoints_corrupt_falls_back_to_entry;
        Alcotest.test_case "unread corruption is harmless" `Quick
          test_unread_corruption_is_harmless;
        Alcotest.test_case "kmeans resumes from a checkpoint" `Quick
          test_kmeans_checkpoint_resume;
        Alcotest.test_case "loss rate 1.0 stays bounded" `Quick
          test_seeded_loop_loss_bounded;
        Alcotest.test_case "timeout aborts a retry storm" `Quick
          test_timeout_aborts_retry_storm ] );
    ( "fault_injection_udf_modes",
      [ Alcotest.test_case "seeded chaos: interp = compiled" `Quick
          test_compiled_udfs_under_seeded_chaos;
        Alcotest.test_case "lineage recompute: interp = compiled" `Quick
          test_compiled_lineage_recompute;
        Alcotest.test_case "checkpoint resume: interp = compiled" `Quick
          test_compiled_checkpoint_resume ] ) ]
