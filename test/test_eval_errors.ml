(* Interpreter error paths: failures must be clean [Eval_error]/[Type_error]
   exceptions with informative messages, never assertion failures. *)

module Value = Emma_value.Value
module Eval = Emma_lang.Eval
module S = Emma_lang.Surface
open Helpers

let expect_eval_error e =
  match eval_expr e with
  | exception Eval.Eval_error _ -> ()
  | exception Value.Type_error _ -> ()
  | v -> Alcotest.failf "expected an error, got %s" (Value.to_display v)

let test_unbound_variable () = expect_eval_error (S.var "nope")

let test_unknown_table () =
  match eval_expr (S.read "missing") with
  | exception Eval.Eval_error m ->
      Alcotest.(check bool) "names the table" true
        (String.length m > 0
        && String.split_on_char '"' m |> List.exists (String.equal "missing"))
  | _ -> Alcotest.fail "expected Eval_error"

let test_apply_non_function () = expect_eval_error (S.app (S.int_ 1) (S.int_ 2))

let test_fold_over_non_bag () = expect_eval_error (S.count (S.int_ 1))

let test_guard_non_bool () =
  expect_eval_error
    S.(for_ [ gen "x" (bag_of [ int_ 1 ]); when_ (int_ 5) ] ~yield:(var "x"))

let test_range_empty () =
  check_value "inverted range is empty" (Value.bag [])
    (eval_expr (S.range (S.int_ 5) (S.int_ 1)))

let test_stateful_key_change_rejected () =
  let p =
    S.program ~ret:S.unit_
      [ S.s_let "st"
          (S.stateful ~key:(S.lam "x" (fun x -> S.field x "id"))
             (S.bag_of [ S.record [ ("id", S.int_ 1) ] ]));
        S.s_let "_d"
          (S.update (S.var "st")
             (S.lam "x" (fun _ -> S.some_ (S.record [ ("id", S.int_ 99) ])))) ]
  in
  match run_program p with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "changing the element key must be rejected"

let test_stateful_duplicate_keys_rejected () =
  let p =
    S.program ~ret:S.unit_
      [ S.s_let "st"
          (S.stateful ~key:(S.lam "x" (fun x -> S.field x "id"))
             (S.bag_of
                [ S.record [ ("id", S.int_ 1) ]; S.record [ ("id", S.int_ 1) ] ])) ]
  in
  match run_program p with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "duplicate state keys must be rejected"

let test_assign_unbound () =
  let p = S.program [ S.assign "ghost" (S.int_ 1) ] in
  match run_program p with
  | exception Eval.Eval_error _ -> ()
  | _ -> Alcotest.fail "assignment to unbound variable must fail"

let test_closures_in_driver () =
  (* functions can be let-bound at driver level and applied in UDFs *)
  let p =
    S.program
      ~ret:S.(sum (map (var "double") (bag_of [ int_ 1; int_ 2 ])))
      [ S.s_let "double" (S.lam "x" (fun x -> S.(x * int_ 2))) ]
  in
  check_value "driver-bound UDF" (Value.int 6) (run_program p)

let test_shadowing_in_comprehension () =
  (* an inner generator shadows an outer one of the same name *)
  let e =
    Emma_lang.Expr.Comp
      { head = S.var "x";
        quals =
          [ Emma_lang.Expr.QGen ("x", S.bag_of [ S.int_ 1 ]);
            Emma_lang.Expr.QGen ("x", S.bag_of [ S.int_ 10; S.int_ 20 ]) ];
        alg = Emma_lang.Expr.Alg_bag }
  in
  check_value "inner shadows outer"
    (Value.bag [ Value.int 10; Value.int 20 ])
    (eval_expr e)

let suite =
  [ ( "eval_errors",
      [ Alcotest.test_case "unbound variable" `Quick test_unbound_variable;
        Alcotest.test_case "unknown table" `Quick test_unknown_table;
        Alcotest.test_case "apply non-function" `Quick test_apply_non_function;
        Alcotest.test_case "fold over non-bag" `Quick test_fold_over_non_bag;
        Alcotest.test_case "guard non-bool" `Quick test_guard_non_bool;
        Alcotest.test_case "inverted range" `Quick test_range_empty;
        Alcotest.test_case "stateful key change" `Quick test_stateful_key_change_rejected;
        Alcotest.test_case "stateful duplicate keys" `Quick test_stateful_duplicate_keys_rejected;
        Alcotest.test_case "assign unbound" `Quick test_assign_unbound;
        Alcotest.test_case "driver-bound closures" `Quick test_closures_in_driver;
        Alcotest.test_case "comprehension shadowing" `Quick test_shadowing_in_comprehension ] )
  ]
