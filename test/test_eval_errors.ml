(* Interpreter error paths: failures must be clean [Eval_error]/[Type_error]
   exceptions with informative messages, never assertion failures. *)

module Value = Emma_value.Value
module Eval = Emma_lang.Eval
module S = Emma_lang.Surface
open Helpers

let expect_eval_error e =
  match eval_expr e with
  | exception Eval.Eval_error _ -> ()
  | exception Value.Type_error _ -> ()
  | v -> Alcotest.failf "expected an error, got %s" (Value.to_display v)

let test_unbound_variable () = expect_eval_error (S.var "nope")

let test_unknown_table () =
  match eval_expr (S.read "missing") with
  | exception Eval.Eval_error m ->
      Alcotest.(check bool) "names the table" true
        (String.length m > 0
        && String.split_on_char '"' m |> List.exists (String.equal "missing"))
  | _ -> Alcotest.fail "expected Eval_error"

let test_apply_non_function () = expect_eval_error (S.app (S.int_ 1) (S.int_ 2))

let test_fold_over_non_bag () = expect_eval_error (S.count (S.int_ 1))

let test_guard_non_bool () =
  expect_eval_error
    S.(for_ [ gen "x" (bag_of [ int_ 1 ]); when_ (int_ 5) ] ~yield:(var "x"))

let test_range_empty () =
  check_value "inverted range is empty" (Value.bag [])
    (eval_expr (S.range (S.int_ 5) (S.int_ 1)))

let test_stateful_key_change_rejected () =
  let p =
    S.program ~ret:S.unit_
      [ S.s_let "st"
          (S.stateful ~key:(S.lam "x" (fun x -> S.field x "id"))
             (S.bag_of [ S.record [ ("id", S.int_ 1) ] ]));
        S.s_let "_d"
          (S.update (S.var "st")
             (S.lam "x" (fun _ -> S.some_ (S.record [ ("id", S.int_ 99) ])))) ]
  in
  match run_program p with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "changing the element key must be rejected"

let test_stateful_duplicate_keys_rejected () =
  let p =
    S.program ~ret:S.unit_
      [ S.s_let "st"
          (S.stateful ~key:(S.lam "x" (fun x -> S.field x "id"))
             (S.bag_of
                [ S.record [ ("id", S.int_ 1) ]; S.record [ ("id", S.int_ 1) ] ])) ]
  in
  match run_program p with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "duplicate state keys must be rejected"

let test_assign_unbound () =
  let p = S.program [ S.assign "ghost" (S.int_ 1) ] in
  match run_program p with
  | exception Eval.Eval_error _ -> ()
  | _ -> Alcotest.fail "assignment to unbound variable must fail"

let test_closures_in_driver () =
  (* functions can be let-bound at driver level and applied in UDFs *)
  let p =
    S.program
      ~ret:S.(sum (map (var "double") (bag_of [ int_ 1; int_ 2 ])))
      [ S.s_let "double" (S.lam "x" (fun x -> S.(x * int_ 2))) ]
  in
  check_value "driver-bound UDF" (Value.int 6) (run_program p)

(* --- error parity: interpreter vs staged compiler ---------------------
   Both UDF modes must classify failures identically: same exception
   constructor AND same message, so `--udf-mode` never changes what a
   failing program reports. The staged compiler constant-folds aggressively;
   these cases pin that folding may not upgrade, downgrade or re-word an
   error. *)

module Compile = Emma_lang.Compile

let classify f =
  match f () with
  | v -> Ok v
  | exception Eval.Eval_error m -> Error ("Eval_error: " ^ m)
  | exception Value.Type_error m -> Error ("Type_error: " ^ m)
  | exception Invalid_argument m -> Error ("Invalid_argument: " ^ m)

let check_error_parity name e =
  let ctx = ctx_with [] in
  let interp = classify (fun () -> Eval.eval_value ctx Eval.empty_env e) in
  let compiled = classify (fun () -> Compile.value ctx Eval.empty_env e) in
  (match interp with
  | Error _ -> ()
  | Ok v ->
      Alcotest.failf "%s: expected the oracle to fail, got %s" name
        (Value.to_display v));
  let pp_outcome fmt = function
    | Ok v -> Format.fprintf fmt "Ok %s" (Value.to_display v)
    | Error m -> Format.fprintf fmt "Error %S" m
  in
  Alcotest.check (Alcotest.testable pp_outcome ( = )) name interp compiled

let test_error_parity_arith () =
  check_error_parity "div by zero" S.(int_ 1 / int_ 0);
  check_error_parity "mod by zero" S.(int_ 7 mod int_ 0);
  (* the divisor is dynamic: folding must not pre-raise *)
  check_error_parity "dynamic div by zero"
    S.(app (lam "d" (fun d -> int_ 1 / d)) (int_ 0))

let test_error_parity_projection () =
  check_error_parity "projection out of bounds"
    (Emma_lang.Expr.Proj (S.tup [ S.int_ 1; S.int_ 2 ], 7));
  check_error_parity "missing record field"
    (S.field (S.record [ ("a", S.int_ 1) ]) "zzz");
  check_error_parity "projection of non-tuple" (Emma_lang.Expr.Proj (S.int_ 3, 0))

let test_error_parity_prim_arity () =
  (* hand-built Prim nodes with the wrong arity (Surface can't produce
     these); both modes must report the same arity message *)
  check_error_parity "prim arity 2 got 1"
    (Emma_lang.Expr.Prim (Emma_lang.Prim.Add, [ S.int_ 1 ]));
  check_error_parity "prim arity 1 got 3"
    (Emma_lang.Expr.Prim (Emma_lang.Prim.Neg, [ S.int_ 1; S.int_ 2; S.int_ 3 ]))

let test_error_parity_apply () =
  check_error_parity "apply non-function" (S.app (S.int_ 1) (S.int_ 2));
  check_error_parity "unbound variable" (S.var "nope");
  check_error_parity "fold over non-bag" (S.count (S.int_ 1));
  check_error_parity "guard non-bool"
    S.(for_ [ gen "x" (bag_of [ int_ 1 ]); when_ (int_ 5) ] ~yield:(var "x"))

let test_shadowing_in_comprehension () =
  (* an inner generator shadows an outer one of the same name *)
  let e =
    Emma_lang.Expr.Comp
      { head = S.var "x";
        quals =
          [ Emma_lang.Expr.QGen ("x", S.bag_of [ S.int_ 1 ]);
            Emma_lang.Expr.QGen ("x", S.bag_of [ S.int_ 10; S.int_ 20 ]) ];
        alg = Emma_lang.Expr.Alg_bag }
  in
  check_value "inner shadows outer"
    (Value.bag [ Value.int 10; Value.int 20 ])
    (eval_expr e)

let suite =
  [ ( "eval_errors",
      [ Alcotest.test_case "unbound variable" `Quick test_unbound_variable;
        Alcotest.test_case "unknown table" `Quick test_unknown_table;
        Alcotest.test_case "apply non-function" `Quick test_apply_non_function;
        Alcotest.test_case "fold over non-bag" `Quick test_fold_over_non_bag;
        Alcotest.test_case "guard non-bool" `Quick test_guard_non_bool;
        Alcotest.test_case "inverted range" `Quick test_range_empty;
        Alcotest.test_case "stateful key change" `Quick test_stateful_key_change_rejected;
        Alcotest.test_case "stateful duplicate keys" `Quick test_stateful_duplicate_keys_rejected;
        Alcotest.test_case "assign unbound" `Quick test_assign_unbound;
        Alcotest.test_case "driver-bound closures" `Quick test_closures_in_driver;
        Alcotest.test_case "comprehension shadowing" `Quick test_shadowing_in_comprehension;
        Alcotest.test_case "mode parity: arithmetic errors" `Quick test_error_parity_arith;
        Alcotest.test_case "mode parity: projection errors" `Quick test_error_parity_projection;
        Alcotest.test_case "mode parity: prim arity errors" `Quick test_error_parity_prim_arity;
        Alcotest.test_case "mode parity: apply/fold errors" `Quick test_error_parity_apply ] )
  ]
