module Value = Emma_value.Value
module Expr = Emma_lang.Expr
module Eval = Emma_lang.Eval
module S = Emma_lang.Surface
open Helpers

let iv = Value.int
let ibag xs = Value.bag (List.map iv xs)

let test_arith () =
  check_value "int arith" (iv 7) (eval_expr S.(int_ 1 + (int_ 2 * int_ 3)));
  check_value "mixed promotes" (Value.float 2.5) (eval_expr S.(float_ 2.0 + (int_ 1 / float_ 2.0)));
  check_value "float div" (Value.float 0.5) (eval_expr S.(float_ 1.0 / float_ 2.0));
  check_value "comparison" (Value.bool true) (eval_expr S.(int_ 1 < int_ 2));
  check_value "if" (iv 10) (eval_expr S.(if_ (bool_ true) (int_ 10) (int_ 20)))

let test_lambda_let () =
  check_value "beta" (iv 9) (eval_expr S.(app (lam "x" (fun x -> x * x)) (int_ 3)));
  check_value "let" (iv 5) (eval_expr S.(let_ "x" (int_ 2) (fun x -> x + int_ 3)));
  (* closures capture their environment *)
  check_value "closure"
    (iv 42)
    (eval_expr
       S.(
         let_ "k" (int_ 40) (fun k ->
             app (lam "x" (fun x -> x + k)) (int_ 2))))

let test_bag_ops () =
  check_value "map" (ibag [ 2; 4; 6 ])
    (eval_expr S.(map (lam "x" (fun x -> x * int_ 2)) (bag_of [ int_ 1; int_ 2; int_ 3 ])));
  check_value "filter" (ibag [ 2; 3 ])
    (eval_expr S.(with_filter (lam "x" (fun x -> x > int_ 1)) (bag_of [ int_ 1; int_ 2; int_ 3 ])));
  check_value "range" (ibag [ 1; 2; 3 ]) (eval_expr S.(range (int_ 1) (int_ 3)));
  check_value "sum" (iv 6) (eval_expr S.(sum (range (int_ 1) (int_ 3))));
  check_value "count" (iv 3) (eval_expr S.(count (range (int_ 1) (int_ 3))));
  check_value "exists" (Value.bool true)
    (eval_expr S.(exists (lam "x" (fun x -> x = int_ 2)) (range (int_ 1) (int_ 3))));
  check_value "min_by" (Value.some (iv 1))
    (eval_expr S.(min_by (lam "x" (fun x -> to_float x)) (range (int_ 1) (int_ 3))));
  check_value "distinct" (ibag [ 1; 2 ])
    (eval_expr S.(distinct (bag_of [ int_ 1; int_ 1; int_ 2 ])));
  check_value "minus" (ibag [ 1 ])
    (eval_expr S.(minus (bag_of [ int_ 1; int_ 1 ]) (bag_of [ int_ 1 ])))

let test_group_by () =
  let groups =
    eval_expr
      S.(group_by (lam "x" (fun x -> x mod int_ 2)) (range (int_ 1) (int_ 4)))
  in
  let gs = Value.to_bag groups in
  Alcotest.(check int) "two groups" 2 (List.length gs);
  let even = List.find (fun g -> Value.equal (Value.field g "key") (iv 0)) gs in
  check_value "group values" (ibag [ 2; 4 ]) (Value.field even "values")

let test_for_desugaring () =
  (* for (x <- xs) yield x*x  ==  xs.map(x => x*x) *)
  let e1 = S.(for_ [ gen "x" (range (int_ 1) (int_ 3)) ] ~yield:(var "x" * var "x")) in
  (match e1 with
  | Expr.Map (Expr.Lam ("x", _), Expr.Range _) -> ()
  | _ -> Alcotest.fail "single-generator for_ should desugar to Map");
  check_value "map result" (ibag [ 1; 4; 9 ]) (eval_expr e1);
  (* two generators + guard: flatMap over withFilter *)
  let e2 =
    S.(
      for_
        [ gen "x" (range (int_ 1) (int_ 3));
          gen "y" (range (int_ 1) (int_ 3));
          when_ (var "x" < var "y") ]
        ~yield:(tup [ var "x"; var "y" ]))
  in
  (match e2 with
  | Expr.FlatMap (Expr.Lam ("x", Expr.Map (_, Expr.Filter _)), _) -> ()
  | _ -> Alcotest.fail "for_ with guard should desugar to flatMap/withFilter/map");
  check_value "join result"
    (Value.bag
       [ Value.tuple [ iv 1; iv 2 ]; Value.tuple [ iv 1; iv 3 ]; Value.tuple [ iv 2; iv 3 ] ])
    (eval_expr e2)

let test_comp_eval () =
  (* Comprehension views evaluate like their desugared counterparts. *)
  let c =
    Expr.Comp
      { head = S.(var "x" + var "y");
        quals =
          [ Expr.QGen ("x", S.(range (int_ 1) (int_ 2)));
            Expr.QGen ("y", S.(range (int_ 10) (int_ 11)));
            Expr.QGuard S.(var "x" = int_ 1) ];
        alg = Expr.Alg_bag }
  in
  check_value "comp" (ibag [ 11; 12 ]) (eval_expr c)

let test_subst_capture () =
  (* subst y := x inside λx.y must rename the binder. *)
  let body = Expr.Lam ("x", Expr.Var "y") in
  let substituted = Expr.subst "y" (Expr.Var "x") body in
  match substituted with
  | Expr.Lam (x', Expr.Var "x") when x' <> "x" -> ()
  | e -> Alcotest.failf "capture! got %s" (Emma_lang.Pretty.expr_to_string e)

let test_beta_reduce () =
  let e = Expr.App (Expr.Lam ("x", S.(var "x" + var "x")), S.int_ 5) in
  check_value "beta_reduce preserves semantics" (eval_expr e) (eval_expr (Expr.beta_reduce e));
  match Expr.beta_reduce e with
  | Expr.Prim _ -> ()
  | e -> Alcotest.failf "expected reduced prim, got %s" (Emma_lang.Pretty.expr_to_string e)

let test_program_driver () =
  (* var/assign/while: sum of 1..5 computed driver-side. *)
  let p =
    S.program
      ~ret:S.(var "acc")
      [ S.s_var "i" (S.int_ 1);
        S.s_var "acc" (S.int_ 0);
        S.while_
          S.(var "i" <= int_ 5)
          [ S.assign "acc" S.(var "acc" + var "i"); S.assign "i" S.(var "i" + int_ 1) ] ]
  in
  check_value "while loop" (iv 15) (run_program p)

let test_program_tables () =
  let p =
    S.program
      ~ret:S.(sum (read "out"))
      [ S.s_let "xs" (S.read "input");
        S.write "out" S.(map (lam "x" (fun x -> x * int_ 10)) (var "xs")) ]
  in
  check_value "read+write" (iv 60) (run_program ~tables:[ ("input", [ iv 1; iv 2; iv 3 ]) ] p)

let test_stateful_in_program () =
  let p =
    S.program
      ~ret:S.(state_bag (var "st"))
      [ S.s_let "st"
          (S.stateful
             ~key:(S.lam "x" (fun x -> S.field x "id"))
             (S.bag_of
                [ S.record [ ("id", S.int_ 1); ("v", S.int_ 0) ];
                  S.record [ ("id", S.int_ 2); ("v", S.int_ 0) ] ]));
        S.s_let "delta"
          (S.update_msgs (S.var "st")
             ~msg_key:(S.lam "m" (fun m -> S.proj m 0))
             ~messages:(S.bag_of [ S.tup [ S.int_ 1; S.int_ 7 ] ])
             (S.lam2 "s" "m" (fun s m ->
                  S.some_ (S.record [ ("id", S.field s "id"); ("v", S.proj m 1) ])))) ]
  in
  let result = run_program p in
  check_value "stateful update visible in state"
    (Value.bag
       [ Value.record [ ("id", iv 1); ("v", iv 7) ];
         Value.record [ ("id", iv 2); ("v", iv 0) ] ])
    result

let prop_for_matches_reference =
  Helpers.qcheck_case "for_ comprehension = nested-loop reference" ~count:60
    QCheck2.Gen.(pair (list_size (int_bound 6) (int_range 0 9)) (list_size (int_bound 6) (int_range 0 9)))
    (fun (xs, ys) ->
      let exp =
        S.(
          for_
            [ gen "x" (bag_of (List.map int_ xs));
              gen "y" (bag_of (List.map int_ ys));
              when_ (var "x" = var "y") ]
            ~yield:(var "x" + var "y"))
      in
      let expected =
        List.concat_map (fun x -> List.filter_map (fun y -> if x = y then Some (x + y) else None) ys) xs
      in
      Value.equal (eval_expr exp) (ibag expected))

let prop_occurrences_free_vars =
  Helpers.qcheck_case "occurrences agrees with free_vars" ~count:60 Helpers.pipeline_gen
    (fun e ->
      let fv = Expr.free_vars e in
      Emma_util.Strset.for_all (fun x -> Emma_comp.Normalize.occurrences x e > 0) fv
      && Emma_comp.Normalize.occurrences "___absent" e = 0)

let suite =
  [ ( "lang",
      [ Alcotest.test_case "arithmetic" `Quick test_arith;
        Alcotest.test_case "lambda/let" `Quick test_lambda_let;
        Alcotest.test_case "bag operators" `Quick test_bag_ops;
        Alcotest.test_case "group_by" `Quick test_group_by;
        Alcotest.test_case "for_ desugaring" `Quick test_for_desugaring;
        Alcotest.test_case "comprehension eval" `Quick test_comp_eval;
        Alcotest.test_case "capture-avoiding subst" `Quick test_subst_capture;
        Alcotest.test_case "beta_reduce" `Quick test_beta_reduce;
        Alcotest.test_case "driver while-loop" `Quick test_program_driver;
        Alcotest.test_case "driver tables" `Quick test_program_tables;
        Alcotest.test_case "stateful bag in program" `Quick test_stateful_in_program;
        prop_for_matches_reference;
        prop_occurrences_free_vars ] ) ]
