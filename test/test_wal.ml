(* Emma_util.Wal + serve crash recovery.

   - qcheck framing: random record batches round-trip through
     append/reopen, across segment rotations, and EVERY prefix
     truncation of the final record's frame drops exactly that record;
   - a flipped payload byte fails the CRC and truncates the journal at
     the corrupted record;
   - snapshots: newest-valid wins, a corrupted newest falls back to the
     older one, compaction deletes fully-covered segments and the
     journal reopens with a non-zero [first_seq];
   - serve recovery: for a small trace, recovery from every record
     boundary of the journal — and from every boundary with snapshots
     on — reproduces the uninterrupted run's fingerprint bit-identically
     with every submission id accounted exactly once, and journaling
     itself never moves the fingerprint;
   - recovering against the wrong trace raises [Recovery_error] instead
     of silently diverging. *)

module Wal = Emma_util.Wal
module Crc32 = Emma_util.Crc32
module S = Emma_lang.Surface
module Value = Emma.Value
module Metrics = Emma.Metrics
module Config = Emma.Config
module Session = Emma.Session
module Serve = Emma_serve.Serve
module Arrival = Emma_serve.Arrival

(* ---------------------------------------------------------------- *)
(* Fixtures                                                           *)
(* ---------------------------------------------------------------- *)

let rec rm_rf path =
  if Sys.file_exists path then
    if Sys.is_directory path then begin
      Array.iter (fun f -> rm_rf (Filename.concat path f)) (Sys.readdir path);
      Sys.rmdir path
    end
    else Sys.remove path

let fresh_dir =
  let counter = ref 0 in
  fun () ->
    incr counter;
    let d =
      Filename.concat
        (Filename.get_temp_dir_name ())
        (Printf.sprintf "emma-test-wal-%d-%d" (Unix.getpid ()) !counter)
    in
    rm_rf d;
    d

let with_dir f =
  let d = fresh_dir () in
  Fun.protect ~finally:(fun () -> rm_rf d) (fun () -> f d)

let put_u32 v =
  let b = Bytes.create 4 in
  Bytes.set_uint8 b 0 ((v lsr 24) land 0xFF);
  Bytes.set_uint8 b 1 ((v lsr 16) land 0xFF);
  Bytes.set_uint8 b 2 ((v lsr 8) land 0xFF);
  Bytes.set_uint8 b 3 (v land 0xFF);
  Bytes.to_string b

let frame payload =
  put_u32 (String.length payload) ^ put_u32 (Crc32.string payload) ^ payload

let write_all ?sync ?segment_bytes ~dir records =
  let w = Wal.create ?sync ?segment_bytes ~dir () in
  List.iter (fun r -> ignore (Wal.append w r)) records;
  Wal.close w

let read_records dir =
  let w = Wal.create ~dir () in
  Fun.protect ~finally:(fun () -> Wal.close w) (fun () -> Wal.records w)

let reopen dir = Array.to_list (read_records dir)

(* ---------------------------------------------------------------- *)
(* Framing                                                            *)
(* ---------------------------------------------------------------- *)

let record_gen =
  (* arbitrary bytes, including NULs and newlines — framing is binary *)
  QCheck2.Gen.(string_size ~gen:(char_range '\000' '\255') (int_range 0 64))

let prop_roundtrip =
  Helpers.qcheck_case "wal: batches round-trip through reopen" ~count:60
    QCheck2.Gen.(
      pair (list_size (int_range 0 40) record_gen) (int_range 32 256))
    (fun (records, segment_bytes) ->
      with_dir (fun dir ->
          write_all ~segment_bytes ~dir records;
          reopen dir = records))

let prop_final_record_truncations =
  (* every prefix-truncation length of the final record's frame loses
     exactly that record; the rest of the journal survives *)
  Helpers.qcheck_case "wal: every torn tail of the last record truncates it"
    ~count:25
    QCheck2.Gen.(pair (list_size (int_range 0 6) record_gen) record_gen)
    (fun (prefix, last) ->
      with_dir (fun dir ->
          write_all ~dir (prefix @ [ last ]);
          let seg = Filename.concat dir "journal-0000000000.seg" in
          let full = In_channel.with_open_bin seg In_channel.input_all in
          let frame_len = 8 + String.length last in
          let keep = String.length full - frame_len in
          let ok = ref true in
          for cut = 0 to frame_len - 1 do
            let torn = String.sub full 0 (keep + cut) in
            Out_channel.with_open_bin seg (fun oc ->
                Out_channel.output_string oc torn);
            if reopen dir <> prefix then ok := false
          done;
          !ok))

let test_flipped_byte_truncates () =
  with_dir (fun dir ->
      let records = [ "alpha"; "bravo"; "charlie"; "delta" ] in
      write_all ~dir records;
      let seg = Filename.concat dir "journal-0000000000.seg" in
      let b =
        Bytes.of_string (In_channel.with_open_bin seg In_channel.input_all)
      in
      (* payload byte of record 2 ("charlie"): 2 frames + header in *)
      let off = (8 + 5) + (8 + 5) + 8 in
      Bytes.set_uint8 b off (Bytes.get_uint8 b off lxor 0x01);
      Out_channel.with_open_bin seg (fun oc -> Out_channel.output_bytes oc b);
      Alcotest.(check (list string))
        "corrupted record and its suffix are dropped" [ "alpha"; "bravo" ]
        (reopen dir);
      (* the truncated journal accepts fresh appends *)
      let w = Wal.create ~dir () in
      ignore (Wal.append w "echo");
      Wal.close w;
      Alcotest.(check (list string))
        "append after truncation" [ "alpha"; "bravo"; "echo" ] (reopen dir))

let test_rotation_and_count () =
  with_dir (fun dir ->
      let records = List.init 20 (fun i -> Printf.sprintf "record-%03d" i) in
      write_all ~segment_bytes:64 ~dir records;
      let segs =
        Sys.readdir dir |> Array.to_list
        |> List.filter (fun f -> Filename.check_suffix f ".seg")
      in
      Alcotest.(check bool) "small segments rotate" true (List.length segs > 1);
      let w = Wal.create ~dir () in
      Alcotest.(check int) "count spans segments" 20 (Wal.count w);
      Alcotest.(check int) "first_seq 0 before compaction" 0 (Wal.first_seq w);
      Alcotest.(check (list string))
        "records ordered across segments" records
        (Array.to_list (Wal.records w));
      Wal.close w)

let test_append_indices_and_stats () =
  with_dir (fun dir ->
      let w = Wal.create ~sync:Wal.Sync_always ~dir () in
      Alcotest.(check int) "first append is record 0" 0 (Wal.append w "a");
      Alcotest.(check int) "second append is record 1" 1 (Wal.append w "b");
      let s = Wal.stats w in
      Alcotest.(check int) "appends counted" 2 s.Wal.wa_appends;
      Alcotest.(check int) "framed bytes counted" (8 + 1 + 8 + 1) s.Wal.wa_bytes;
      Alcotest.(check bool) "sync_always fsyncs per append" true
        (s.Wal.wa_fsyncs >= 2);
      Wal.close w;
      let w2 = Wal.create ~dir () in
      Alcotest.(check int) "reopen appends after the tail" 2 (Wal.append w2 "c");
      Wal.close w2)

let test_sync_policy_parse () =
  let ok s v =
    match Wal.sync_policy_of_string s with
    | Ok p -> Alcotest.(check string) s v (Wal.sync_policy_to_string p)
    | Error e -> Alcotest.failf "%S rejected: %s" s e
  in
  ok "none" "none";
  ok "always" "always";
  ok "batch:16" "batch:16";
  List.iter
    (fun s ->
      match Wal.sync_policy_of_string s with
      | Ok _ -> Alcotest.failf "%S should have been rejected" s
      | Error e ->
          Alcotest.(check bool) "one-line error" false (String.contains e '\n'))
    [ "sometimes"; "batch:0"; "batch:-1"; "batch:x"; "batch:"; "" ]

let test_crash_spec_parse () =
  (match Wal.crash_spec_of_string "7" with
  | Ok (Wal.Crash_after 7) -> ()
  | _ -> Alcotest.fail "\"7\" should parse as Crash_after 7");
  (match Wal.crash_spec_of_string "7:3" with
  | Ok (Wal.Crash_torn (7, 3)) -> ()
  | _ -> Alcotest.fail "\"7:3\" should parse as Crash_torn (7, 3)");
  List.iter
    (fun s ->
      match Wal.crash_spec_of_string s with
      | Ok _ -> Alcotest.failf "%S should have been rejected" s
      | Error _ -> ())
    [ "0"; "-1"; "x"; "3:"; "3:x"; "" ]

let test_write_atomic () =
  with_dir (fun dir ->
      Sys.mkdir dir 0o755;
      let path = Filename.concat dir "out.txt" in
      Wal.write_atomic path "first";
      Alcotest.(check string) "written" "first"
        (In_channel.with_open_bin path In_channel.input_all);
      Wal.write_atomic path "second";
      Alcotest.(check string) "overwritten atomically" "second"
        (In_channel.with_open_bin path In_channel.input_all);
      Alcotest.(check (list string))
        "no temp files left behind" [ "out.txt" ]
        (Array.to_list (Sys.readdir dir)))

(* ---------------------------------------------------------------- *)
(* Snapshots                                                          *)
(* ---------------------------------------------------------------- *)

let test_snapshot_newest_wins_and_fallback () =
  with_dir (fun dir ->
      let w = Wal.create ~dir () in
      for i = 0 to 9 do
        ignore (Wal.append w (Printf.sprintf "r%d" i))
      done;
      Wal.write_snapshot w ~covers:4 "state-at-4";
      Wal.write_snapshot w ~covers:8 "state-at-8";
      (match Wal.load_snapshot w with
      | Some (8, "state-at-8") -> ()
      | Some (c, _) -> Alcotest.failf "newest snapshot should win, got covers=%d" c
      | None -> Alcotest.fail "no snapshot loaded");
      Wal.close w;
      (* corrupt the newest: recovery must fall back to the older one *)
      let newest = Filename.concat dir "snap-0000000008.snap" in
      let b =
        Bytes.of_string (In_channel.with_open_bin newest In_channel.input_all)
      in
      Bytes.set_uint8 b (Bytes.length b - 1) (Bytes.get_uint8 b (Bytes.length b - 1) lxor 0xFF);
      Out_channel.with_open_bin newest (fun oc -> Out_channel.output_bytes oc b);
      let w2 = Wal.create ~dir () in
      (match Wal.load_snapshot w2 with
      | Some (4, "state-at-4") -> ()
      | Some (c, _) -> Alcotest.failf "fallback picked covers=%d" c
      | None -> Alcotest.fail "older snapshot should have been usable");
      Wal.close w2;
      (* corrupt the older one too: full replay (None) *)
      let older = Filename.concat dir "snap-0000000004.snap" in
      let b2 =
        Bytes.of_string (In_channel.with_open_bin older In_channel.input_all)
      in
      Bytes.set_uint8 b2 9 (Bytes.get_uint8 b2 9 lxor 0xFF);
      Out_channel.with_open_bin older (fun oc -> Out_channel.output_bytes oc b2);
      let w3 = Wal.create ~dir () in
      Alcotest.(check bool) "both corrupt -> full replay" true
        (Wal.load_snapshot w3 = None);
      Wal.close w3)

let test_snapshot_compaction () =
  with_dir (fun dir ->
      (* tiny segments so compaction has whole files to delete *)
      let w = Wal.create ~segment_bytes:64 ~dir () in
      for i = 0 to 29 do
        ignore (Wal.append w (Printf.sprintf "record-%03d" i))
      done;
      Wal.write_snapshot w ~covers:20 "s20";
      Wal.write_snapshot w ~covers:25 "s25";
      Wal.close w;
      let w2 = Wal.create ~dir () in
      Alcotest.(check bool) "compaction dropped leading segments" true
        (Wal.first_seq w2 > 0);
      Alcotest.(check bool) "compaction never outruns the oldest snapshot" true
        (Wal.first_seq w2 <= 20);
      Alcotest.(check int) "count preserved" 30 (Wal.count w2);
      let recs = Wal.records w2 in
      Alcotest.(check string) "suffix records intact"
        (Printf.sprintf "record-%03d" (Wal.first_seq w2))
        recs.(0);
      (match Wal.load_snapshot w2 with
      | Some (25, "s25") -> ()
      | _ -> Alcotest.fail "newest snapshot survives compaction");
      Wal.close w2)

(* ---------------------------------------------------------------- *)
(* Serve recovery: exhaustive boundary sweep on a small trace         *)
(* ---------------------------------------------------------------- *)

let rows n =
  List.init n (fun i ->
      Value.record [ ("a", Value.Int i); ("b", Value.Int (i mod 5)) ])

let sum_prog =
  S.program
    ~ret:S.(sum (map (lam "x" (fun x -> field x "a")) (read "rows")))
    []

let count_prog = S.program ~ret:S.(count (read "rows")) []

let workload =
  [ ("sum", (sum_prog, [ ("rows", rows 30) ]));
    ("count", (count_prog, [ ("rows", rows 30) ])) ]

let tenants = [ Serve.tenant ~weight:2 "acme"; Serve.tenant "beta" ]

let small_trace =
  Arrival.generate ~seed:5 ~rate:3.0 ~alpha:1.1 ~tenants:[ "acme"; "beta" ]
    ~queries:[ "sum"; "count" ] ~n:12

let rt = Emma.spark ~timeout_s:3600.0 ()

(* deadline + tight queues so sheds and cancellations are in the journal *)
let config =
  Config.default
  |> Config.with_plan_cache (Some 4)
  |> Config.with_deadline_s (Some 20.0)
  |> Config.with_max_queue (Some 3)

let with_session f =
  let s = Session.create ~config rt in
  Fun.protect ~finally:(fun () -> Session.close s) (fun () -> f s)

let journaled ?snapshot_every dir =
  with_session (fun s ->
      let w = Wal.create ~dir () in
      let durability = { Serve.du_wal = w; du_snapshot_every = snapshot_every } in
      Fun.protect
        ~finally:(fun () -> Wal.close w)
        (fun () -> Serve.run_sim ~durability s tenants workload small_trace))

let recovered ?snapshot_every dir =
  with_session (fun s ->
      let w = Wal.create ~dir () in
      let durability = { Serve.du_wal = w; du_snapshot_every = snapshot_every } in
      Fun.protect
        ~finally:(fun () -> Wal.close w)
        (fun () -> Serve.recover_sim ~durability s tenants workload small_trace))

let reconciled (c : Serve.counters) =
  let n = List.length small_trace in
  let ids =
    List.map (fun (r : Serve.query_result) -> r.Serve.qr_sub) c.Serve.sv_results
    @ List.map (fun (s : Serve.shed_record) -> s.Serve.sh_sub) c.Serve.sv_shed
  in
  List.sort compare ids = List.init n (fun i -> i)

(* forge a crashed journal: the first [k] reference records (+ [tail]) *)
let forge ?(tail = "") ?snaps_from records k =
  let dir = fresh_dir () in
  Sys.mkdir dir 0o755;
  let oc = open_out_bin (Filename.concat dir "journal-0000000000.seg") in
  for i = 0 to k - 1 do
    output_string oc (frame records.(i))
  done;
  output_string oc tail;
  close_out oc;
  (match snaps_from with
  | Some src ->
      Array.iter
        (fun f ->
          if Filename.check_suffix f ".snap" then
            Out_channel.with_open_bin (Filename.concat dir f) (fun oc ->
                Out_channel.output_string oc
                  (In_channel.with_open_bin (Filename.concat src f)
                     In_channel.input_all)))
        (Sys.readdir src)
  | None -> ());
  dir

let test_recovery_every_boundary () =
  with_dir (fun ref_dir ->
      let reference = journaled ref_dir in
      let fp = Serve.fingerprint reference in
      Alcotest.(check bool) "reference reconciled" true (reconciled reference);
      (* journaling itself never moves the fingerprint *)
      let plain =
        with_session (fun s -> Serve.run_sim s tenants workload small_trace)
      in
      Alcotest.(check string) "journaled = plain fingerprint" fp
        (Serve.fingerprint plain);
      let records = read_records ref_dir in
      let n = Array.length records in
      Alcotest.(check bool) "journal is non-trivial" true (n > 12);
      for k = 0 to n do
        let dir = forge records k in
        let c = recovered dir in
        if Serve.fingerprint c <> fp then
          Alcotest.failf "boundary %d/%d: fingerprint diverged" k n;
        if not (reconciled c) then
          Alcotest.failf "boundary %d/%d: submission lost or duplicated" k n;
        (* the recovered journal converges to the uninterrupted one *)
        let recs = read_records dir in
        if recs <> records then
          Alcotest.failf "boundary %d/%d: journal did not converge" k n;
        rm_rf dir
      done)

let test_recovery_with_snapshots () =
  with_dir (fun ref_dir ->
      let plain = with_dir (fun d -> Serve.fingerprint (journaled d)) in
      let reference = journaled ~snapshot_every:3 ref_dir in
      let fp = Serve.fingerprint reference in
      Alcotest.(check string) "snapshotting never moves the fingerprint" plain fp;
      let records = read_records ref_dir in
      let n = Array.length records in
      (* sweep every boundary with the retained snapshots alongside; a
         snapshot covering more records than the crashed journal holds
         must be skipped, not trusted *)
      for k = 0 to n do
        let dir = forge ~snaps_from:ref_dir records k in
        let c = recovered ~snapshot_every:3 dir in
        if Serve.fingerprint c <> fp then
          Alcotest.failf "snapshot boundary %d/%d: fingerprint diverged" k n;
        if not (reconciled c) then
          Alcotest.failf "snapshot boundary %d/%d: submission lost" k n;
        rm_rf dir
      done)

let test_recovery_metrics_marked () =
  with_dir (fun dir ->
      let reference = journaled dir in
      (* journaled run: every admitted query carries its journal cost *)
      let appends =
        List.fold_left
          (fun acc (r : Serve.query_result) ->
            let m = Session.metrics_of_outcome r.Serve.qr_outcome in
            acc + m.Metrics.wal_appends)
          0 reference.Serve.sv_results
      in
      Alcotest.(check bool) "wal_appends accounted per query" true (appends > 0);
      let c = recovered dir in
      let replayed =
        List.length
          (List.filter
             (fun (r : Serve.query_result) ->
               (Session.metrics_of_outcome r.Serve.qr_outcome)
                 .Metrics.recovery_replayed > 0)
             c.Serve.sv_results)
      in
      Alcotest.(check int) "every outcome replayed from the journal, none re-run"
        (List.length reference.Serve.sv_results)
        replayed)

let test_recovery_rejects_wrong_trace () =
  with_dir (fun dir ->
      ignore (journaled dir);
      let other =
        Arrival.generate ~seed:6 ~rate:3.0 ~alpha:1.1
          ~tenants:[ "acme"; "beta" ] ~queries:[ "sum"; "count" ] ~n:12
      in
      match
        with_session (fun s ->
            let w = Wal.create ~dir () in
            let durability = { Serve.du_wal = w; du_snapshot_every = None } in
            Fun.protect
              ~finally:(fun () -> Wal.close w)
              (fun () -> Serve.recover_sim ~durability s tenants workload other))
      with
      | _ -> Alcotest.fail "recovering the wrong trace should raise"
      | exception Serve.Recovery_error m ->
          Alcotest.(check bool) "error is one line" false (String.contains m '\n'))

let suite =
  [ ( "wal",
      [ prop_roundtrip;
        prop_final_record_truncations;
        Alcotest.test_case "flipped byte truncates at the record" `Quick
          test_flipped_byte_truncates;
        Alcotest.test_case "segment rotation preserves order" `Quick
          test_rotation_and_count;
        Alcotest.test_case "append indices and stats" `Quick
          test_append_indices_and_stats;
        Alcotest.test_case "sync policy parse" `Quick test_sync_policy_parse;
        Alcotest.test_case "crash spec parse" `Quick test_crash_spec_parse;
        Alcotest.test_case "write_atomic" `Quick test_write_atomic;
        Alcotest.test_case "snapshot fallback on corruption" `Quick
          test_snapshot_newest_wins_and_fallback;
        Alcotest.test_case "snapshot compaction" `Quick test_snapshot_compaction ] );
    ( "recovery",
      [ Alcotest.test_case "every crash boundary recovers bit-identically"
          `Quick test_recovery_every_boundary;
        Alcotest.test_case "every boundary with snapshots on" `Quick
          test_recovery_with_snapshots;
        Alcotest.test_case "replayed outcomes are marked, not re-run" `Quick
          test_recovery_metrics_marked;
        Alcotest.test_case "wrong trace raises Recovery_error" `Quick
          test_recovery_rejects_wrong_trace ] )
  ]
