module Value = Emma_value.Value
module M = Emma_matrix.Matrix
module S = Emma_lang.Surface
open Helpers

(* dense oracles *)
let dense_mul a b =
  let n = Array.length a and m = Array.length b.(0) and k = Array.length b in
  Array.init n (fun i ->
      Array.init m (fun j ->
          let acc = ref 0.0 in
          for l = 0 to k - 1 do
            acc := !acc +. (a.(i).(l) *. b.(l).(j))
          done;
          !acc))

let dense_close a b =
  Array.for_all2 (fun ra rb -> Array.for_all2 (fun x y -> Float.abs (x -. y) < 1e-9) ra rb) a b

let rand_dense rng n m =
  Array.init n (fun _ ->
      Array.init m (fun _ ->
          if Emma_util.Prng.bool rng then 0.0 else Emma_util.Prng.float rng 10.0 -. 5.0))

let eval_cells ~tables e = Value.to_bag (eval_expr ~tables e)

let test_roundtrip () =
  let a = [| [| 1.0; 0.0 |]; [| 2.5; -3.0 |] |] in
  let back = M.dense_of_cells ~rows:2 ~cols:2 (M.cells_of_dense a) in
  Alcotest.(check bool) "dense round trip" true (dense_close a back)

let test_scale_transpose () =
  let a = [| [| 1.0; 2.0 |]; [| 3.0; 4.0 |] |] in
  let tables = [ ("a", M.cells_of_dense a) ] in
  let scaled = M.dense_of_cells ~rows:2 ~cols:2 (eval_cells ~tables (M.scale 2.0 (S.read "a"))) in
  Alcotest.(check bool) "scale" true
    (dense_close scaled [| [| 2.0; 4.0 |]; [| 6.0; 8.0 |] |]);
  let t = M.dense_of_cells ~rows:2 ~cols:2 (eval_cells ~tables (M.transpose (S.read "a"))) in
  Alcotest.(check bool) "transpose" true (dense_close t [| [| 1.0; 3.0 |]; [| 2.0; 4.0 |] |])

let test_add () =
  let a = [| [| 1.0; 0.0 |]; [| 0.0; 2.0 |] |] in
  let b = [| [| 0.5; 1.0 |]; [| 0.0; -2.0 |] |] in
  let tables = [ ("a", M.cells_of_dense a); ("b", M.cells_of_dense b) ] in
  let s =
    M.dense_of_cells ~rows:2 ~cols:2 (eval_cells ~tables (M.add (S.read "a") (S.read "b")))
  in
  Alcotest.(check bool) "add" true (dense_close s [| [| 1.5; 1.0 |]; [| 0.0; 0.0 |] |])

let test_multiply_small () =
  let a = [| [| 1.0; 2.0 |]; [| 3.0; 4.0 |] |] in
  let b = [| [| 5.0; 6.0 |]; [| 7.0; 8.0 |] |] in
  let tables = [ ("a", M.cells_of_dense a); ("b", M.cells_of_dense b) ] in
  let p =
    M.dense_of_cells ~rows:2 ~cols:2
      (eval_cells ~tables (M.multiply (S.read "a") (S.read "b")))
  in
  Alcotest.(check bool) "2x2 product" true (dense_close p (dense_mul a b))

let test_matvec () =
  let a = [| [| 1.0; 2.0 |]; [| 3.0; 4.0 |] |] in
  let x = [| 1.0; -1.0 |] in
  let tables = [ ("a", M.cells_of_dense a); ("x", M.vector_cells x) ] in
  let y =
    M.dense_of_vector_cells ~dim:2 (eval_cells ~tables (M.matvec (S.read "a") (S.read "x")))
  in
  Alcotest.(check (float 1e-9)) "y0" (-1.0) y.(0);
  Alcotest.(check (float 1e-9)) "y1" (-1.0) y.(1)

let test_scalars () =
  let a = [| [| 3.0; 0.0 |]; [| 4.0; 2.0 |] |] in
  let tables = [ ("a", M.cells_of_dense a) ] in
  check_value "frobenius²" (Value.float 29.0) (eval_expr ~tables (M.frobenius_norm2 (S.read "a")));
  check_value "trace" (Value.float 5.0) (eval_expr ~tables (M.trace (S.read "a")))

let test_multiply_compiles_to_join_and_aggby () =
  let prog = S.program ~ret:S.unit_ [ S.s_let "r" (M.multiply (S.read "a") (S.read "b")); S.write "out" (S.var "r") ] in
  let algo = Emma.parallelize prog in
  let module P = Emma_dataflow.Plan in
  let has pred =
    let found = ref false in
    Emma.Cprog.iter_plans
      (fun p -> P.fold_plan (fun () n -> if pred n then found := true) () p)
      algo.Emma.compiled;
    !found
  in
  Alcotest.(check bool) "matmul uses an eq-join" true
    (has (function P.Eq_join _ -> true | _ -> false));
  Alcotest.(check bool) "matmul's sum is fused into aggBy" true
    (has (function P.Agg_by _ -> true | _ -> false));
  Alcotest.(check bool) "no groupBy survives" false
    (has (function P.Group_by _ -> true | _ -> false))

let prop_multiply_matches_dense =
  Helpers.qcheck_case "matrix product = dense oracle (native and engine)" ~count:25
    QCheck2.Gen.(triple (int_range 1 4) (int_range 1 4) (int_range 1 4))
    (fun (n, k, m) ->
      let rng = Emma_util.Prng.create ((n * 100) + (k * 10) + m) in
      let a = rand_dense rng n k and b = rand_dense rng k m in
      let tables = [ ("a", M.cells_of_dense a); ("b", M.cells_of_dense b) ] in
      let prog =
        S.program ~ret:(S.var "r") [ S.s_let "r" (M.multiply (S.read "a") (S.read "b")) ]
      in
      let algo = Emma.parallelize prog in
      let native, _ = Emma.run_native algo ~tables in
      let oracle = dense_mul a b in
      let native_ok =
        dense_close (M.dense_of_cells ~rows:n ~cols:m (Value.to_bag native)) oracle
      in
      let engine_ok =
        match
          Emma.run_on
            Emma.
              { cluster = Emma_engine.Cluster.laptop ();
                profile = Emma_engine.Cluster.spark_like;
                timeout_s = None }
            algo ~tables
        with
        | Emma.Finished { value; _ } ->
            dense_close (M.dense_of_cells ~rows:n ~cols:m (Value.to_bag value)) oracle
        | _ -> false
      in
      native_ok && engine_ok)

let prop_transpose_involution =
  Helpers.qcheck_case "transpose is an involution" ~count:30
    QCheck2.Gen.(pair (int_range 1 5) (int_range 1 5))
    (fun (n, m) ->
      let rng = Emma_util.Prng.create ((n * 10) + m) in
      let a = rand_dense rng n m in
      let tables = [ ("a", M.cells_of_dense a) ] in
      let tt = eval_cells ~tables (M.transpose (M.transpose (S.read "a"))) in
      dense_close (M.dense_of_cells ~rows:n ~cols:m tt) a)

let suite =
  [ ( "matrix",
      [ Alcotest.test_case "dense round trip" `Quick test_roundtrip;
        Alcotest.test_case "scale + transpose" `Quick test_scale_transpose;
        Alcotest.test_case "add" `Quick test_add;
        Alcotest.test_case "multiply 2x2" `Quick test_multiply_small;
        Alcotest.test_case "matvec" `Quick test_matvec;
        Alcotest.test_case "scalar folds" `Quick test_scalars;
        Alcotest.test_case "matmul compiles to join+aggBy" `Quick
          test_multiply_compiles_to_join_and_aggby;
        prop_multiply_matches_dense;
        prop_transpose_involution ] ) ]
