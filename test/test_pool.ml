(* Unit tests for the worker-Domain pool: parmap correctness on edge-case
   sizes, deterministic exception propagation that leaves the pool
   reusable, idempotent shutdown that joins every domain, and nested
   parmap (which must not deadlock thanks to caller participation) — plus
   a scheduling-adversarial layer for the work-stealing deques: random
   nested-parmap trees with random durations at 1/2/4/8 domains, random
   failure sets, a stolen-chunk exception case, a 1000-tiny-batch stress,
   and differential runs against the retained legacy single-queue pool. *)

module Pool = Emma_util.Pool
module Pool_legacy = Emma_util.Pool_legacy

let with_pool domains f =
  let p = Pool.create ~domains () in
  Fun.protect ~finally:(fun () -> Pool.shutdown p) (fun () -> f p)

let ints n = Array.init n Fun.id

let test_parmap_empty () =
  with_pool 4 (fun p ->
      Alcotest.(check (array int)) "empty in, empty out" [||]
        (Pool.parmap p (fun x -> x * 2) [||]))

let test_parmap_singleton () =
  with_pool 4 (fun p ->
      Alcotest.(check (array int)) "one element" [| 14 |]
        (Pool.parmap p (fun x -> x * 2) [| 7 |]))

let test_parmap_matches_sequential () =
  List.iter
    (fun domains ->
      with_pool domains (fun p ->
          List.iter
            (fun n ->
              let xs = ints n in
              Alcotest.(check (array int))
                (Printf.sprintf "%d domains, %d tasks" domains n)
                (Array.map (fun x -> (x * x) + 1) xs)
                (Pool.parmap p (fun x -> (x * x) + 1) xs))
            [ 0; 1; 2; 3; 7; 64; 257 ]))
    [ 1; 2; 4 ]

(* parmap must preserve index order, not completion order *)
let test_parmap_order_independent_of_timing () =
  with_pool 4 (fun p ->
      let xs = ints 50 in
      let slow_then_fast i =
        if i < 5 then (for _ = 0 to 200_000 do ignore (Sys.opaque_identity i) done);
        i * 10
      in
      Alcotest.(check (array int)) "index order preserved"
        (Array.map (fun i -> i * 10) xs)
        (Pool.parmap p slow_then_fast xs))

let test_float_results () =
  (* regression: the result array must be allocated compatibly with
     OCaml's unboxed float-array representation *)
  with_pool 2 (fun p ->
      Alcotest.(check (array (float 1e-9))) "float results" [| 0.5; 1.5; 2.5; 3.5 |]
        (Pool.parmap p (fun i -> float_of_int i +. 0.5) (ints 4)))

exception Boom of int

let test_exception_lowest_index () =
  with_pool 4 (fun p ->
      (* several tasks fail; the one a sequential left-to-right run would
         hit first must be the one re-raised *)
      let f i = if i mod 3 = 2 then raise (Boom i) else i in
      (match Pool.parmap p f (ints 20) with
      | _ -> Alcotest.fail "expected Boom"
      | exception Boom i -> Alcotest.(check int) "lowest failing index" 2 i);
      (* and the pool must remain fully usable afterwards *)
      Alcotest.(check (array int)) "pool reusable after exception"
        (Array.map succ (ints 100))
        (Pool.parmap p succ (ints 100)))

let test_exception_sequential_path () =
  (* the 1-domain fallback raises the same exception at the same index *)
  with_pool 1 (fun p ->
      match Pool.parmap p (fun i -> if i >= 1 then raise (Boom i) else i) (ints 5) with
      | _ -> Alcotest.fail "expected Boom"
      | exception Boom i -> Alcotest.(check int) "lowest failing index" 1 i)

let test_nested_parmap () =
  (* outer tasks each submit an inner batch; every worker can be blocked
     inside an outer task, so this deadlocks unless submitters drain their
     own batches *)
  with_pool 2 (fun p ->
      let inner j = Array.fold_left ( + ) 0 (Pool.parmap p (fun x -> x * j) (ints 10)) in
      let got = Pool.parmap p inner (ints 8) in
      Alcotest.(check (array int)) "nested totals"
        (Array.map (fun j -> 45 * j) (ints 8))
        got)

let test_deeply_nested_parmap () =
  with_pool 4 (fun p ->
      let rec depth d =
        if d = 0 then 1
        else Array.fold_left ( + ) 0 (Pool.parmap p (fun _ -> depth (d - 1)) (ints 3))
      in
      Alcotest.(check int) "3^4 leaves" 81 (depth 4))

let test_shutdown_idempotent () =
  let p = Pool.create ~domains:4 () in
  Pool.shutdown p;
  Pool.shutdown p;
  (* after shutdown the pool degrades to sequential execution rather than
     hanging on dead workers *)
  Alcotest.(check (array int)) "parmap after shutdown is sequential"
    (Array.map succ (ints 10))
    (Pool.parmap p succ (ints 10))

let test_shutdown_joins () =
  (* create/shutdown many pools; if shutdown leaked running domains this
     would exhaust the runtime's domain limit and Domain.spawn would raise *)
  for _ = 1 to 200 do
    let p = Pool.create ~domains:4 () in
    ignore (Pool.parmap p succ (ints 8));
    Pool.shutdown p
  done

let test_default_pool_switch () =
  let before = Pool.default_domains () in
  Fun.protect ~finally:(fun () -> Pool.set_default_domains before) @@ fun () ->
  Pool.set_default_domains 3;
  Alcotest.(check int) "size recorded" 3 (Pool.default_domains ());
  Alcotest.(check int) "pool built at that size" 3 (Pool.size (Pool.default ()));
  Pool.set_default_domains 1;
  Alcotest.(check int) "resize rebuilds" 1 (Pool.size (Pool.default ()))

(* ------------------------------------------------------------------ *)
(* Scheduling-adversarial suite                                         *)
(* ------------------------------------------------------------------ *)

(* Shared long-lived pools for the qcheck properties: stealing needs real
   worker domains, but creating pools per generated input would dominate
   the run. Shutdown is idempotent, so at_exit cleanup is safe. *)
let pool_at =
  let tbl = Hashtbl.create 4 in
  fun d ->
    match Hashtbl.find_opt tbl d with
    | Some p -> p
    | None ->
        let p = Pool.create ~domains:d () in
        Hashtbl.add tbl d p;
        at_exit (fun () -> Pool.shutdown p);
        p

let legacy_at =
  let tbl = Hashtbl.create 4 in
  fun d ->
    match Hashtbl.find_opt tbl d with
    | Some p -> p
    | None ->
        let p = Pool_legacy.create ~domains:d in
        Hashtbl.add tbl d p;
        at_exit (fun () -> Pool_legacy.shutdown p);
        p

let adversarial_domains = [ 1; 2; 4; 8 ]

(* Busy work whose duration the generators randomize: long enough that a
   worker can be mid-task while its deque is robbed, short enough that
   thousands of tasks stay fast. *)
let spin k =
  for _ = 1 to k * 40 do
    ignore (Sys.opaque_identity k)
  done

(* Random nested-parmap trees: inner nodes fan out through the pool under
   test (every level can steal from every other), leaves spin a random
   duration. The value is a pure function of the tree, so any scheduling
   divergence — a lost task, a duplicated steal, a misordered result —
   shows up against the sequential reference. *)
type tree = Leaf of int | Node of tree list

let rec tree_ref = function
  | Leaf k -> k
  | Node ts -> List.fold_left (fun acc t -> acc + tree_ref t) 0 ts

let rec tree_eval p = function
  | Leaf k ->
      spin k;
      k
  | Node ts ->
      Array.fold_left ( + ) 0
        (Pool.parmap p (tree_eval p) (Array.of_list ts))

let tree_gen =
  let open QCheck2.Gen in
  sized_size (int_bound 3)
  @@ fix (fun self n ->
         if n = 0 then map (fun k -> Leaf k) (int_bound 60)
         else
           frequency
             [ (1, map (fun k -> Leaf k) (int_bound 60));
               (3, map (fun ts -> Node ts) (list_size (int_range 1 4) (self (n - 1))))
             ])

let test_random_trees_deterministic =
  Helpers.qcheck_case "random nested trees agree at 1/2/4/8 domains" ~count:60
    tree_gen (fun t ->
      let expect = tree_ref t in
      List.for_all (fun d -> tree_eval (pool_at d) t = expect) adversarial_domains)

(* Random failure sets: whichever domain observes a failure first — owner
   or thief — the exception propagated must be the one a sequential
   left-to-right run hits first, and the pool must stay usable. *)
let failure_gen =
  QCheck2.Gen.(
    pair (int_range 1 48) (list_size (int_range 1 6) (pair (int_bound 47) (int_bound 30))))

let test_random_failures_lowest_index =
  Helpers.qcheck_case "random failure sets raise the lowest index" ~count:60
    failure_gen (fun (n, fails) ->
      let fails = List.filter (fun (i, _) -> i < n) fails in
      let f i =
        match List.assoc_opt i fails with
        | Some delay ->
            spin delay;
            raise (Boom i)
        | None ->
            spin (i mod 7);
            i
      in
      List.for_all
        (fun d ->
          let p = pool_at d in
          let got =
            match Pool.parmap p f (ints n) with
            | rs -> `Ok (Array.to_list rs)
            | exception Boom i -> `Boom i
          in
          let expect =
            match fails with
            | [] -> `Ok (List.init n (fun i -> i))
            | _ :: _ -> `Boom (List.fold_left (fun a (i, _) -> min a i) max_int fails)
          in
          (* reusable immediately after, whatever happened *)
          got = expect
          && Pool.parmap p succ (ints 16) = Array.map succ (ints 16))
        adversarial_domains)

(* Differential against the legacy single-queue pool, kept as oracle: same
   batch, same outcome — results or exception choice. *)
let test_differential_vs_legacy =
  Helpers.qcheck_case "work-stealing pool ≡ legacy pool" ~count:60 failure_gen
    (fun (n, fails) ->
      let fails = List.filter (fun (i, _) -> i < n) fails in
      let f i =
        match List.assoc_opt i fails with
        | Some delay ->
            spin delay;
            raise (Boom i)
        | None -> (i * i) + 1
      in
      let run map = match map f (ints n) with
        | rs -> `Ok (Array.to_list rs)
        | exception Boom i -> `Boom i
      in
      run (Pool_legacy.parmap (legacy_at 4)) = run (Pool.parmap (pool_at 4)))

(* Same property at 8 oversubscribed domains, where preemption makes the
   steal schedule maximally chaotic. *)
let test_differential_vs_legacy_8 =
  Helpers.qcheck_case "work-stealing pool ≡ legacy pool (8 domains)" ~count:40
    failure_gen (fun (n, fails) ->
      let fails = List.filter (fun (i, _) -> i < n) fails in
      let f i =
        match List.assoc_opt i fails with
        | Some delay ->
            spin delay;
            raise (Boom i)
        | None -> i * 3
      in
      let run map = match map f (ints n) with
        | rs -> `Ok (Array.to_list rs)
        | exception Boom i -> `Boom i
      in
      run (Pool_legacy.parmap (legacy_at 8)) = run (Pool.parmap (pool_at 8)))

(* Random durations must never leak into result ORDER: parmap returns by
   task index, not completion order, whatever got stolen. *)
let durations_gen =
  QCheck2.Gen.(list_size (int_range 1 64) (int_bound 40))

let test_random_durations_preserve_order =
  Helpers.qcheck_case "random durations: results in index order" ~count:60
    durations_gen (fun durations ->
      let work = Array.of_list durations in
      let f i =
        spin work.(i);
        i * 1000
      in
      List.for_all
        (fun d ->
          Pool.parmap (pool_at d) f (ints (Array.length work))
          = Array.init (Array.length work) (fun i -> i * 1000))
        adversarial_domains)

(* The victim-order seed steers who steals what — it must never steer
   results or exception choice. *)
let seeded_at =
  let tbl = Hashtbl.create 4 in
  fun seed ->
    match Hashtbl.find_opt tbl seed with
    | Some p -> p
    | None ->
        let p = Pool.create ~seed ~domains:4 () in
        Hashtbl.add tbl seed p;
        at_exit (fun () -> Pool.shutdown p);
        p

let test_seed_invisible =
  Helpers.qcheck_case "victim-order seed never affects results" ~count:40
    failure_gen (fun (n, fails) ->
      let fails = List.filter (fun (i, _) -> i < n) fails in
      let f i =
        match List.assoc_opt i fails with
        | Some delay ->
            spin delay;
            raise (Boom i)
        | None -> i + 7
      in
      let run p = match Pool.parmap p f (ints n) with
        | rs -> `Ok (Array.to_list rs)
        | exception Boom i -> `Boom i
      in
      let reference = run (seeded_at 100) in
      List.for_all (fun seed -> run (seeded_at seed) = reference) [ 200; 300 ])

(* A slow first task parks the submitting domain while idle workers steal
   the tail; a failure in a stolen task must still lose to nothing — the
   lowest FAILING index wins, however early the steal observed its Boom. *)
let test_exception_in_stolen_chunk () =
  let p = pool_at 8 in
  let f i =
    if i = 0 then spin 2_000 (* pin the submitter: the tail gets stolen *)
    else if i = 5 then (spin 50; raise (Boom 5))
    else if i = 29 then raise (Boom 29);
    i
  in
  (match Pool.parmap p f (ints 32) with
  | _ -> Alcotest.fail "expected Boom"
  | exception Boom i -> Alcotest.(check int) "lowest failing index, not first observed" 5 i);
  Alcotest.(check (array int)) "pool reusable after failed batch"
    (Array.map succ (ints 64))
    (Pool.parmap p succ (ints 64))

(* Only a stolen-range task fails. *)
let test_exception_only_in_tail () =
  let p = pool_at 8 in
  let f i =
    if i = 0 then spin 2_000 else if i = 30 then raise (Boom 30);
    i
  in
  (match Pool.parmap p f (ints 32) with
  | _ -> Alcotest.fail "expected Boom"
  | exception Boom i -> Alcotest.(check int) "tail failure propagates" 30 i);
  Alcotest.(check (array int)) "pool reusable"
    (Array.map succ (ints 8))
    (Pool.parmap p succ (ints 8))

(* 1000 tiny batches: the wakeup/sleep path (pending counter + broadcast)
   is exercised far more often than the steady-state steal path; a lost
   wakeup deadlocks, a stale batch pointer corrupts a later result. *)
let test_thousand_tiny_batches () =
  let p = pool_at 8 in
  for round = 1 to 1000 do
    let n = round mod 4 in
    let got = Pool.parmap p (fun i -> i + round) (ints n) in
    if got <> Array.map (fun i -> i + round) (ints n) then
      Alcotest.failf "round %d corrupted" round
  done

(* Every task of every batch is counted exactly once, stolen or not. *)
let test_tasks_counted_once () =
  let p = pool_at 8 in
  let before = (Pool.stats p).Pool.tasks_run in
  ignore (Pool.parmap p (fun i -> spin (i mod 11); i) (ints 64));
  let after = (Pool.stats p).Pool.tasks_run in
  Alcotest.(check int) "64 tasks claimed exactly once" 64 (after - before)

(* Steal statistics are cumulative and non-negative — the cursor the
   engine diffs against (Exec.account_steals) depends on monotonicity. *)
let test_stats_monotone () =
  let p = pool_at 8 in
  let s0 = Pool.stats p in
  ignore (Pool.parmap p (fun i -> spin (i mod 13); i) (ints 200));
  let s1 = Pool.stats p in
  Alcotest.(check bool) "tasks monotone" true (s1.Pool.tasks_run >= s0.Pool.tasks_run + 200);
  Alcotest.(check bool) "steals monotone" true (s1.Pool.steals >= s0.Pool.steals);
  Alcotest.(check bool) "misses monotone" true
    (s1.Pool.steal_misses >= s0.Pool.steal_misses);
  ignore (Pool.parmap p Fun.id (ints 10));
  let s2 = Pool.stats p in
  Alcotest.(check bool) "still monotone" true
    (s2.Pool.tasks_run >= s1.Pool.tasks_run + 10 && s2.Pool.steals >= s1.Pool.steals)

(* A big balanced batch: nothing skewed to win, nothing allowed to lose. *)
let test_large_balanced_batch () =
  let p = pool_at 8 in
  Alcotest.(check (array int)) "2000 tasks"
    (Array.init 2000 (fun i -> (i * 7) mod 1009))
    (Pool.parmap p (fun i -> (i * 7) mod 1009) (ints 2000))

(* Unboxed float results survive the stealing path too. *)
let test_float_results_stolen () =
  let p = pool_at 8 in
  Alcotest.(check (array (float 1e-9))) "float results under stealing"
    (Array.init 64 (fun i -> float_of_int i *. 0.25))
    (Pool.parmap p (fun i -> spin (i mod 5); float_of_int i *. 0.25) (ints 64))

(* An inner batch's failure surfaces through its outer task, and the
   OUTER batch then applies the lowest-index rule to its own indices. *)
let test_nested_failure_propagates () =
  let p = pool_at 4 in
  let inner outer_i inner_i =
    if outer_i >= 2 && inner_i = outer_i + 1 then raise (Boom (outer_i * 10 + inner_i));
    inner_i
  in
  let outer i = Array.fold_left ( + ) 0 (Pool.parmap p (inner i) (ints 8)) in
  (match Pool.parmap p outer (ints 6) with
  | _ -> Alcotest.fail "expected Boom"
  | exception Boom v ->
      (* outer 2 is the lowest failing outer task; its inner batch fails
         first (and only) at inner index 3 *)
      Alcotest.(check int) "outer 2 / inner 3" 23 v);
  Alcotest.(check (array int)) "pool reusable after nested failure"
    (Array.map succ (ints 12))
    (Pool.parmap p succ (ints 12))

(* The tier-1 domain knob: honored up to 8, clamped above so a wild value
   cannot exhaust the runtime's domain limit. *)
let test_test_domains_clamped () =
  let ceiling = max 8 (Domain.recommended_domain_count ()) in
  Alcotest.(check bool) "within [1, ceiling]" true
    (Helpers.test_domains >= 1 && Helpers.test_domains <= ceiling)

let suite =
  [ ( "pool",
      [ Alcotest.test_case "parmap empty" `Quick test_parmap_empty;
        Alcotest.test_case "parmap singleton" `Quick test_parmap_singleton;
        Alcotest.test_case "parmap matches sequential" `Quick test_parmap_matches_sequential;
        Alcotest.test_case "order independent of timing" `Quick
          test_parmap_order_independent_of_timing;
        Alcotest.test_case "float results" `Quick test_float_results;
        Alcotest.test_case "exception: lowest index, pool reusable" `Quick
          test_exception_lowest_index;
        Alcotest.test_case "exception: sequential path agrees" `Quick
          test_exception_sequential_path;
        Alcotest.test_case "nested parmap" `Quick test_nested_parmap;
        Alcotest.test_case "deeply nested parmap" `Quick test_deeply_nested_parmap;
        Alcotest.test_case "shutdown idempotent" `Quick test_shutdown_idempotent;
        Alcotest.test_case "shutdown joins domains" `Quick test_shutdown_joins;
        Alcotest.test_case "default pool switch" `Quick test_default_pool_switch ] );
    ( "pool adversarial",
      [ test_random_trees_deterministic;
        test_random_failures_lowest_index;
        test_differential_vs_legacy;
        test_differential_vs_legacy_8;
        test_random_durations_preserve_order;
        test_seed_invisible;
        Alcotest.test_case "exception in stolen chunk" `Quick
          test_exception_in_stolen_chunk;
        Alcotest.test_case "exception only in stolen tail" `Quick
          test_exception_only_in_tail;
        Alcotest.test_case "nested failure propagates outer-lowest" `Quick
          test_nested_failure_propagates;
        Alcotest.test_case "1000 tiny batches" `Quick test_thousand_tiny_batches;
        Alcotest.test_case "large balanced batch" `Quick test_large_balanced_batch;
        Alcotest.test_case "float results under stealing" `Quick
          test_float_results_stolen;
        Alcotest.test_case "tasks counted exactly once" `Quick
          test_tasks_counted_once;
        Alcotest.test_case "steal stats monotone" `Quick test_stats_monotone;
        Alcotest.test_case "EMMA_TEST_DOMAINS clamped" `Quick
          test_test_domains_clamped ] ) ]
