(* Unit tests for the worker-Domain pool: parmap correctness on edge-case
   sizes, deterministic exception propagation that leaves the pool
   reusable, idempotent shutdown that joins every domain, and nested
   parmap (which must not deadlock thanks to caller participation). *)

module Pool = Emma_util.Pool

let with_pool domains f =
  let p = Pool.create ~domains in
  Fun.protect ~finally:(fun () -> Pool.shutdown p) (fun () -> f p)

let ints n = Array.init n Fun.id

let test_parmap_empty () =
  with_pool 4 (fun p ->
      Alcotest.(check (array int)) "empty in, empty out" [||]
        (Pool.parmap p (fun x -> x * 2) [||]))

let test_parmap_singleton () =
  with_pool 4 (fun p ->
      Alcotest.(check (array int)) "one element" [| 14 |]
        (Pool.parmap p (fun x -> x * 2) [| 7 |]))

let test_parmap_matches_sequential () =
  List.iter
    (fun domains ->
      with_pool domains (fun p ->
          List.iter
            (fun n ->
              let xs = ints n in
              Alcotest.(check (array int))
                (Printf.sprintf "%d domains, %d tasks" domains n)
                (Array.map (fun x -> (x * x) + 1) xs)
                (Pool.parmap p (fun x -> (x * x) + 1) xs))
            [ 0; 1; 2; 3; 7; 64; 257 ]))
    [ 1; 2; 4 ]

(* parmap must preserve index order, not completion order *)
let test_parmap_order_independent_of_timing () =
  with_pool 4 (fun p ->
      let xs = ints 50 in
      let slow_then_fast i =
        if i < 5 then (for _ = 0 to 200_000 do ignore (Sys.opaque_identity i) done);
        i * 10
      in
      Alcotest.(check (array int)) "index order preserved"
        (Array.map (fun i -> i * 10) xs)
        (Pool.parmap p slow_then_fast xs))

let test_float_results () =
  (* regression: the result array must be allocated compatibly with
     OCaml's unboxed float-array representation *)
  with_pool 2 (fun p ->
      Alcotest.(check (array (float 1e-9))) "float results" [| 0.5; 1.5; 2.5; 3.5 |]
        (Pool.parmap p (fun i -> float_of_int i +. 0.5) (ints 4)))

exception Boom of int

let test_exception_lowest_index () =
  with_pool 4 (fun p ->
      (* several tasks fail; the one a sequential left-to-right run would
         hit first must be the one re-raised *)
      let f i = if i mod 3 = 2 then raise (Boom i) else i in
      (match Pool.parmap p f (ints 20) with
      | _ -> Alcotest.fail "expected Boom"
      | exception Boom i -> Alcotest.(check int) "lowest failing index" 2 i);
      (* and the pool must remain fully usable afterwards *)
      Alcotest.(check (array int)) "pool reusable after exception"
        (Array.map succ (ints 100))
        (Pool.parmap p succ (ints 100)))

let test_exception_sequential_path () =
  (* the 1-domain fallback raises the same exception at the same index *)
  with_pool 1 (fun p ->
      match Pool.parmap p (fun i -> if i >= 1 then raise (Boom i) else i) (ints 5) with
      | _ -> Alcotest.fail "expected Boom"
      | exception Boom i -> Alcotest.(check int) "lowest failing index" 1 i)

let test_nested_parmap () =
  (* outer tasks each submit an inner batch; every worker can be blocked
     inside an outer task, so this deadlocks unless submitters drain their
     own batches *)
  with_pool 2 (fun p ->
      let inner j = Array.fold_left ( + ) 0 (Pool.parmap p (fun x -> x * j) (ints 10)) in
      let got = Pool.parmap p inner (ints 8) in
      Alcotest.(check (array int)) "nested totals"
        (Array.map (fun j -> 45 * j) (ints 8))
        got)

let test_deeply_nested_parmap () =
  with_pool 4 (fun p ->
      let rec depth d =
        if d = 0 then 1
        else Array.fold_left ( + ) 0 (Pool.parmap p (fun _ -> depth (d - 1)) (ints 3))
      in
      Alcotest.(check int) "3^4 leaves" 81 (depth 4))

let test_shutdown_idempotent () =
  let p = Pool.create ~domains:4 in
  Pool.shutdown p;
  Pool.shutdown p;
  (* after shutdown the pool degrades to sequential execution rather than
     hanging on dead workers *)
  Alcotest.(check (array int)) "parmap after shutdown is sequential"
    (Array.map succ (ints 10))
    (Pool.parmap p succ (ints 10))

let test_shutdown_joins () =
  (* create/shutdown many pools; if shutdown leaked running domains this
     would exhaust the runtime's domain limit and Domain.spawn would raise *)
  for _ = 1 to 200 do
    let p = Pool.create ~domains:4 in
    ignore (Pool.parmap p succ (ints 8));
    Pool.shutdown p
  done

let test_default_pool_switch () =
  let before = Pool.default_domains () in
  Fun.protect ~finally:(fun () -> Pool.set_default_domains before) @@ fun () ->
  Pool.set_default_domains 3;
  Alcotest.(check int) "size recorded" 3 (Pool.default_domains ());
  Alcotest.(check int) "pool built at that size" 3 (Pool.size (Pool.default ()));
  Pool.set_default_domains 1;
  Alcotest.(check int) "resize rebuilds" 1 (Pool.size (Pool.default ()))

let suite =
  [ ( "pool",
      [ Alcotest.test_case "parmap empty" `Quick test_parmap_empty;
        Alcotest.test_case "parmap singleton" `Quick test_parmap_singleton;
        Alcotest.test_case "parmap matches sequential" `Quick test_parmap_matches_sequential;
        Alcotest.test_case "order independent of timing" `Quick
          test_parmap_order_independent_of_timing;
        Alcotest.test_case "float results" `Quick test_float_results;
        Alcotest.test_case "exception: lowest index, pool reusable" `Quick
          test_exception_lowest_index;
        Alcotest.test_case "exception: sequential path agrees" `Quick
          test_exception_sequential_path;
        Alcotest.test_case "nested parmap" `Quick test_nested_parmap;
        Alcotest.test_case "deeply nested parmap" `Quick test_deeply_nested_parmap;
        Alcotest.test_case "shutdown idempotent" `Quick test_shutdown_idempotent;
        Alcotest.test_case "shutdown joins domains" `Quick test_shutdown_joins;
        Alcotest.test_case "default pool switch" `Quick test_default_pool_switch ] ) ]
