module Infer = Emma_types.Infer
module S = Emma_lang.Surface
module Value = Emma_value.Value
module Pr = Emma_programs
module W = Emma_workloads

let expect_ok ?schemas name prog =
  match Infer.check_program ?schemas prog with
  | Ok _ -> ()
  | Error m -> Alcotest.failf "%s should typecheck, got: %s" name m

let expect_error ?schemas name prog =
  match Infer.check_program ?schemas prog with
  | Error _ -> ()
  | Ok t -> Alcotest.failf "%s should be ill-typed, inferred %s" name (Infer.ty_to_string t)

(* ---- basic expressions ----------------------------------------------- *)

let tstr t = Infer.ty_to_string (Infer.infer_expr [] t)

let test_scalars () =
  Alcotest.(check string) "int literal" "int" (tstr (S.int_ 1));
  Alcotest.(check string) "arith widens" "num" (tstr S.(int_ 1 + float_ 0.5));
  Alcotest.(check string) "comparison" "bool" (tstr S.(int_ 1 < int_ 2));
  Alcotest.(check string) "tuple" "(int * string)" (tstr (S.tup [ S.int_ 1; S.str "x" ]));
  Alcotest.(check string) "option" "int option" (tstr (S.some_ (S.int_ 1)))

let test_lambda_and_records () =
  (* λx. x.ip gets an open row *)
  let t = Infer.infer_expr [] (S.lam "x" (fun x -> S.field x "ip")) in
  match Infer.resolve t with
  | Infer.Tfun (arg, _) -> begin
      match Infer.resolve arg with
      | Infer.Trecord _ -> ()
      | t -> Alcotest.failf "expected open record argument, got %s" (Infer.ty_to_string t)
    end
  | t -> Alcotest.failf "expected a function, got %s" (Infer.ty_to_string t)

let test_bag_operations () =
  Alcotest.(check string) "bag of ints" "int bag" (tstr (S.bag_of [ S.int_ 1; S.int_ 2 ]));
  Alcotest.(check string) "sum of ints stays int" "int"
    (tstr (S.sum (S.bag_of [ S.int_ 1 ])));
  Alcotest.(check string) "count" "int" (tstr (S.count (S.bag_of [ S.str "a" ])));
  Alcotest.(check string) "exists" "bool"
    (tstr (S.exists (S.lam "x" (fun x -> S.(x > int_ 0))) (S.bag_of [ S.int_ 1 ])))

let test_group_by_shape () =
  let t =
    Infer.infer_expr []
      (S.group_by
         (S.lam "x" (fun x -> S.field x "k"))
         (S.bag_of [ S.record [ ("k", S.int_ 1); ("v", S.str "a") ] ]))
  in
  Alcotest.(check string) "group record type"
    "{key : int; values : {k : int; v : string} bag} bag" (Infer.ty_to_string t)

let test_expr_errors () =
  let ill e =
    match Infer.infer_expr [] e with
    | exception Infer.Type_error _ -> ()
    | t -> Alcotest.failf "expected type error, got %s" (Infer.ty_to_string t)
  in
  ill S.(int_ 1 + str "x");
  ill S.(if_ (int_ 1) (int_ 2) (int_ 3));
  ill S.(if_ (bool_ true) (int_ 1) (str "x"));
  ill (S.app (S.int_ 1) (S.int_ 2));
  ill (S.count (S.int_ 3));
  ill (S.field (S.record [ ("a", S.int_ 1) ]) "b");
  ill (S.proj (S.tup [ S.int_ 1 ]) 4);
  ill S.(union (bag_of [ int_ 1 ]) (bag_of [ str "x" ]));
  ill S.(not_ (int_ 1))

(* ---- paper programs all typecheck ------------------------------------- *)

let kmeans_schemas =
  let cfg = W.Points_gen.default ~n_points:3 ~k:2 in
  [ ("points", Infer.schema_of_rows (W.Points_gen.points ~seed:1 cfg));
    ("centroids0", Infer.schema_of_rows (W.Points_gen.initial_centroids ~seed:1 cfg)) ]

let test_paper_programs_typecheck () =
  let graph_schema =
    [ ("vertices",
       Infer.schema_of_rows (W.Graph_gen.adjacency ~seed:1 (W.Graph_gen.default ~n_vertices:5)))
    ]
  in
  let tpch =
    let cfg = W.Tpch_gen.of_scale_factor 0.00001 in
    [ ("lineitem", Infer.schema_of_rows (W.Tpch_gen.lineitem ~seed:1 cfg));
      ("orders", Infer.schema_of_rows (W.Tpch_gen.orders ~seed:1 cfg));
      ("customer", Infer.schema_of_rows (W.Tpch_gen.customer ~seed:1 cfg)) ]
  in
  expect_ok ~schemas:kmeans_schemas "kmeans" (Pr.Kmeans.program Pr.Kmeans.default_params);
  expect_ok ~schemas:graph_schema "pagerank"
    (Pr.Pagerank.program (Pr.Pagerank.default_params ~n_pages:10));
  expect_ok ~schemas:graph_schema "pagerank (epsilon)"
    (Pr.Pagerank.program_with_epsilon (Pr.Pagerank.default_params ~n_pages:10));
  expect_ok ~schemas:graph_schema "cc"
    (Pr.Connected_components.program Pr.Connected_components.default_params);
  expect_ok "spam" (Pr.Spam_workflow.program Pr.Spam_workflow.default_params);
  expect_ok ~schemas:tpch "q1" (Pr.Tpch_q1.program Pr.Tpch_q1.default_params);
  expect_ok ~schemas:tpch "q3" (Pr.Tpch_q3.program Pr.Tpch_q3.default_params);
  expect_ok ~schemas:tpch "q4" (Pr.Tpch_q4.program Pr.Tpch_q4.default_params);
  expect_ok "group-min" (Pr.Group_min.program Pr.Group_min.default_params);
  expect_ok "wordcount" (Pr.Wordcount.program Pr.Wordcount.default_params)

let test_inferred_result_types () =
  (* with concrete schemas, the result type is fully concrete *)
  match
    Infer.check_program ~schemas:kmeans_schemas (Pr.Kmeans.program Pr.Kmeans.default_params)
  with
  | Ok t ->
      Alcotest.(check string) "kmeans returns centroids"
        "{cid : int; pos : vector} bag" (Infer.ty_to_string t)
  | Error m -> Alcotest.failf "kmeans: %s" m

(* ---- seeded program errors -------------------------------------------- *)

let test_field_typo_caught () =
  (* same kmeans but reading .poss instead of .pos in the distance UDF *)
  let bad =
    S.program
      ~ret:S.unit_
      [ S.s_let "nearest"
          S.(
            for_
              [ gen "p" (read "points") ]
              ~yield:
                (opt_get
                   (min_by
                      (lam "c" (fun c -> vdist (field c "pos") (field (var "p") "poss")))
                      (read "centroids0")))) ]
  in
  expect_error ~schemas:kmeans_schemas "field typo" bad

let test_join_key_type_clash () =
  let schemas =
    [ ("a", Infer.schema_of_rows [ Value.record [ ("k", Value.Int 1) ] ]);
      ("b", Infer.schema_of_rows [ Value.record [ ("k", Value.String "x") ] ]) ]
  in
  let prog =
    S.program ~ret:S.unit_
      [ S.s_let "j"
          S.(
            for_
              [ gen "x" (read "a");
                gen "y" (read "b");
                when_ (field (var "x") "k" = field (var "y") "k") ]
              ~yield:(var "x")) ]
  in
  expect_error ~schemas "join key type clash" prog

let test_assignment_type_change () =
  let prog =
    S.program ~ret:S.unit_
      [ S.s_var "x" (S.int_ 1); S.assign "x" (S.str "nope") ]
  in
  expect_error "reassignment at a different type" prog

let test_write_scalar_rejected () =
  expect_error "writing a scalar" (S.program [ S.write "out" (S.int_ 1) ])

let test_sink_schema_consistency () =
  (* two writes to the same sink must agree *)
  let prog =
    S.program
      [ S.write "out" (S.bag_of [ S.int_ 1 ]);
        S.write "out" (S.bag_of [ S.str "x" ]) ]
  in
  expect_error "conflicting sink writes" prog

let test_stateful_shapes () =
  let prog udf =
    S.program ~ret:S.unit_
      [ S.s_let "st"
          (S.stateful ~key:(S.lam "x" (fun x -> S.field x "id")) (S.read "cells"));
        S.s_let "d" (S.update (S.var "st") udf) ]
  in
  let schemas =
    [ ("cells", Infer.schema_of_rows [ Value.record [ ("id", Value.Int 1) ] ]) ]
  in
  expect_ok ~schemas "well-typed stateful update"
    (prog (S.lam "x" (fun x -> S.some_ x)));
  (* UDF returning a bare element instead of an option *)
  expect_error ~schemas "update UDF must return an option" (prog (S.lam "x" (fun x -> x)))

(* soundness direction: random (well-typed by construction) pipelines
   always typecheck, and with schemas matching the actual tables their
   native evaluation never raises Type_error *)
let prop_random_pipelines_typecheck =
  Helpers.qcheck_case "random pipelines typecheck and run cleanly" ~count:80
    QCheck2.Gen.(pair Helpers.rows_gen Helpers.terminated_pipeline_gen)
    (fun (rows, e) ->
      let prog = S.program ~ret:e [] in
      let schemas = [ ("rows", Infer.schema_of_rows rows) ] in
      match Infer.check_program ~schemas prog with
      | Error _ -> false
      | Ok _ -> (
          match Helpers.eval_expr ~tables:[ ("rows", rows) ] e with
          | _ -> true
          | exception Value.Type_error _ -> false))

let suite =
  [ ( "types",
      [ Alcotest.test_case "scalars" `Quick test_scalars;
        Alcotest.test_case "lambda + open records" `Quick test_lambda_and_records;
        Alcotest.test_case "bag operations" `Quick test_bag_operations;
        Alcotest.test_case "groupBy shape" `Quick test_group_by_shape;
        Alcotest.test_case "expression errors" `Quick test_expr_errors;
        Alcotest.test_case "paper programs typecheck" `Quick test_paper_programs_typecheck;
        Alcotest.test_case "inferred result types" `Quick test_inferred_result_types;
        Alcotest.test_case "field typo caught" `Quick test_field_typo_caught;
        Alcotest.test_case "join key clash" `Quick test_join_key_type_clash;
        Alcotest.test_case "assignment type change" `Quick test_assignment_type_change;
        Alcotest.test_case "write scalar rejected" `Quick test_write_scalar_rejected;
        Alcotest.test_case "sink schema consistency" `Quick test_sink_schema_consistency;
        Alcotest.test_case "stateful shapes" `Quick test_stateful_shapes;
        prop_random_pipelines_typecheck ] ) ]
