(* Pretty-printer totality and shape: every program and every plan in the
   repository must render without raising, and the printed form must carry
   the constructs a reader needs to see. *)

module Pretty = Emma_lang.Pretty
module Pr = Emma_programs
module P = Emma_dataflow.Plan
module S = Emma_lang.Surface

let all_programs =
  [ ("kmeans", Pr.Kmeans.(program default_params));
    ("pagerank", Pr.Pagerank.(program (default_params ~n_pages:10)));
    ("pagerank-eps", Pr.Pagerank.(program_with_epsilon (default_params ~n_pages:10)));
    ("cc", Pr.Connected_components.(program default_params));
    ("spam", Pr.Spam_workflow.(program default_params));
    ("q1", Pr.Tpch_q1.(program default_params));
    ("q3", Pr.Tpch_q3.(program default_params));
    ("q4", Pr.Tpch_q4.(program default_params));
    ("group-min", Pr.Group_min.(program default_params));
    ("wordcount", Pr.Wordcount.(program default_params)) ]

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  nn = 0 || go 0

let test_programs_print () =
  List.iter
    (fun (name, prog) ->
      let s = Pretty.program_to_string prog in
      if String.length s < 50 then Alcotest.failf "%s prints suspiciously short" name)
    all_programs

let test_source_shows_constructs () =
  let s = Pretty.program_to_string Pr.Kmeans.(program default_params) in
  List.iter
    (fun needle ->
      if not (contains s needle) then Alcotest.failf "kmeans source lacks %S" needle)
    [ "while"; "groupBy"; "minBy"; "read"; "write"; ".map" ]

let test_compiled_plans_print () =
  List.iter
    (fun (name, prog) ->
      let algo = Emma.parallelize prog in
      let s = Emma.Cprog.to_string algo.Emma.compiled in
      if String.length s < 50 then Alcotest.failf "%s compiled form too short" name;
      Emma.Cprog.iter_plans
        (fun p ->
          if String.length (P.to_string p) = 0 then Alcotest.failf "%s: empty plan print" name;
          let dot = P.to_dot p in
          if not (contains dot "digraph") then Alcotest.failf "%s: bad dot output" name)
        algo.Emma.compiled)
    all_programs

let test_comprehension_notation () =
  (* normalized comprehensions print in the paper's [[ e | qs ]] notation *)
  let e =
    Emma_comp.Normalize.normalize
      S.(
        for_
          [ gen "x" (read "t"); when_ (var "x" > int_ 0) ]
          ~yield:(var "x"))
  in
  let s = Pretty.expr_to_string e in
  Alcotest.(check bool) "uses [[ ... ]] notation" true
    (contains s "[[" && contains s "]]" && contains s "<-")

let test_dot_quoting () =
  (* labels containing quotes must be escaped *)
  let p = P.Read "weird\"table" in
  let dot = P.to_dot p in
  Alcotest.(check bool) "escaped quotes" true (contains dot "weird\\\"table")

let suite =
  [ ( "pretty",
      [ Alcotest.test_case "programs print" `Quick test_programs_print;
        Alcotest.test_case "source shows constructs" `Quick test_source_shows_constructs;
        Alcotest.test_case "compiled plans print" `Quick test_compiled_plans_print;
        Alcotest.test_case "comprehension notation" `Quick test_comprehension_notation;
        Alcotest.test_case "dot quoting" `Quick test_dot_quoting ] ) ]
