(* Tests for the span tracer and its engine/compiler instrumentation.

   Unit tests drive Trace directly with a deterministic injected clock;
   the property tests run random compiled pipelines with tracing on vs
   off at 1/2/4 domains and require byte-identical results and
   bit-identical cost metrics (tracing is pure observation — the cost
   model never sees it), plus well-formed span trees and valid Chrome
   JSON. *)

module Value = Emma_value.Value
module S = Emma_lang.Surface
module Cluster = Emma_engine.Cluster
module Metrics = Emma_engine.Metrics
module Trace = Emma_util.Trace
module Json = Emma_util.Json
module Pool = Emma_util.Pool
open Helpers

(* ---------------------------------------------------------------- *)
(* Unit: span mechanics under a deterministic clock                    *)
(* ---------------------------------------------------------------- *)

let counter_clock () =
  let t = ref 0.0 in
  fun () ->
    t := !t +. 0.001;
    !t

let test_span_nesting () =
  let tr = Trace.create ~clock:(counter_clock ()) () in
  let r =
    Trace.span tr ~cat:"outer" "a" (fun () ->
        Trace.span tr "b" (fun () -> ());
        Trace.instant tr "tick";
        Trace.counter tr "bytes" 42.0;
        17)
  in
  Alcotest.(check int) "span returns the thunk's value" 17 r;
  let evs = Trace.events tr in
  Alcotest.(check int) "B a, B b, E b, I, C, E a" 6 (List.length evs);
  (match Trace.well_formed tr with
  | Ok () -> ()
  | Error m -> Alcotest.failf "well_formed: %s" m);
  let names = List.map (fun e -> (e.Trace.ev_name, e.Trace.ev_ph)) evs in
  Alcotest.(check bool) "event order" true
    (names
    = [ ("a", Trace.B); ("b", Trace.B); ("b", Trace.E); ("tick", Trace.I);
        ("bytes", Trace.C); ("a", Trace.E) ])

let test_span_exception_balanced () =
  let tr = Trace.create ~clock:(counter_clock ()) () in
  (try Trace.span tr "boom" (fun () -> failwith "x") with Failure _ -> ());
  (match Trace.well_formed tr with
  | Ok () -> ()
  | Error m -> Alcotest.failf "balanced after raise: %s" m);
  match List.rev (Trace.events tr) with
  | e :: _ ->
      Alcotest.(check bool) "end event tagged error" true
        (List.mem ("error", Trace.A_bool true) e.Trace.ev_args)
  | [] -> Alcotest.fail "no events"

let test_monotone_clamp () =
  (* a clock that goes backwards must still yield monotone timestamps *)
  let seq = ref [ 0.5; 0.1; 0.9; 0.2; 1.0 ] in
  let clock () =
    match !seq with
    | [] -> 2.0
    | t :: rest ->
        seq := rest;
        t
  in
  let tr = Trace.create ~clock () in
  Trace.span tr "a" (fun () -> Trace.span tr "b" (fun () -> Trace.instant tr "i"));
  match Trace.well_formed tr with
  | Ok () -> ()
  | Error m -> Alcotest.failf "monotone: %s" m

let test_disabled_noop () =
  let r = Trace.span Trace.disabled "x" (fun () -> 3) in
  Alcotest.(check int) "disabled span runs thunk" 3 r;
  Trace.instant Trace.disabled "i";
  Trace.counter Trace.disabled "c" 1.0;
  Alcotest.(check int) "disabled records nothing" 0
    (List.length (Trace.events Trace.disabled))

let test_chrome_json_valid () =
  let tr = Trace.create ~clock:(counter_clock ()) () in
  Trace.span tr ~cat:"compile" {|weird "name"
with newline \ and unicode é|}
    ~args:[ ("k", Trace.A_str "v\"\n"); ("n", Trace.A_float 1.5) ]
    (fun () -> Trace.instant tr "i");
  let doc = Trace.to_chrome_json tr in
  match Json.parse doc with
  | Error m -> Alcotest.failf "chrome JSON does not parse: %s" m
  | Ok j -> (
      match Json.member "traceEvents" j with
      | Some (Json.List evs) ->
          Alcotest.(check int) "B, I, E" 3 (List.length evs)
      | _ -> Alcotest.fail "traceEvents missing")

let test_text_tree () =
  let tr = Trace.create ~clock:(counter_clock ()) () in
  Trace.span tr "outer" (fun () -> Trace.span tr "inner" (fun () -> ()));
  let s = Trace.to_text_tree tr in
  Alcotest.(check bool) "mentions both spans" true
    (Test_explain.contains s "outer" && Test_explain.contains s "inner")

(* ---------------------------------------------------------------- *)
(* Property: tracing never changes results or cost metrics            *)
(* ---------------------------------------------------------------- *)

let laptop_rt () =
  Emma.
    { cluster = Cluster.laptop (); profile = Cluster.spark_like; timeout_s = None }

let with_pool domains f =
  let pool = Pool.create ~domains () in
  Fun.protect ~finally:(fun () -> Pool.shutdown pool) (fun () -> f pool)

(* everything except wall_time_s, which measures the host *)
let metrics_sig (m : Metrics.t) =
  ( ( m.Metrics.sim_time_s,
      m.Metrics.shuffle_bytes,
      m.Metrics.broadcast_bytes,
      m.Metrics.dfs_read_bytes,
      m.Metrics.dfs_write_bytes,
      m.Metrics.collect_bytes,
      m.Metrics.parallelize_bytes,
      m.Metrics.spilled_bytes ),
    ( m.Metrics.jobs,
      m.Metrics.stages,
      m.Metrics.recomputes,
      m.Metrics.cache_hits,
      m.Metrics.cache_losses,
      m.Metrics.udf_invocations,
      m.Metrics.par_stages,
      m.Metrics.par_tasks ) )

let run_at ~domains ~trace prog tables =
  with_pool domains (fun pool ->
      let algo = Emma.parallelize prog in
      let r = Emma.run_on_exn ~pool ~trace (laptop_rt ()) algo ~tables in
      (Format.asprintf "%a" Value.pp r.Emma.value, metrics_sig r.Emma.metrics))

let prop_trace_invariant =
  qcheck_case "tracing on/off: identical results and cost metrics at 1/2/4 domains"
    ~count:20
    QCheck2.Gen.(pair Helpers.terminated_pipeline_gen Helpers.rows_gen)
    (fun (e, rows) ->
      let prog = S.program ~ret:e [] in
      let tables = [ ("rows", rows) ] in
      List.for_all
        (fun domains ->
          let off = run_at ~domains ~trace:Trace.disabled prog tables in
          let tr = Trace.create () in
          let on = run_at ~domains ~trace:tr prog tables in
          off = on
          && (match Trace.well_formed tr with Ok () -> true | Error _ -> false)
          && Json.is_valid (Trace.to_chrome_json tr))
        [ 1; 2; 4 ])

let prop_span_trees_well_formed =
  qcheck_case "engine span trees: balanced, monotone, valid Chrome JSON" ~count:15
    Helpers.rows_gen
    (fun rows ->
      let prog =
        S.program
          ~ret:
            S.(
              sum
                (map
                   (lam "x" (fun x -> field x "a"))
                   (with_filter (lam "x" (fun x -> field x "b" < int_ 3)) (read "rows"))))
          []
      in
      let tr = Trace.create () in
      let _ = run_at ~domains:4 ~trace:tr prog [ ("rows", rows) ] in
      (match Trace.well_formed tr with Ok () -> true | Error _ -> false)
      && Json.is_valid (Trace.to_chrome_json tr))

(* The CLI-visible contract: a traced q3-style run produces job, stage and
   task spans, and the compile phases land in the same tracer via the
   ambient global. *)
let test_span_categories () =
  let tr = Trace.create () in
  Trace.set_global tr;
  Fun.protect
    ~finally:(fun () -> Trace.set_global Trace.disabled)
    (fun () ->
      let prog =
        S.program
          ~ret:S.(count (for_ [ gen "x" (read "rows") ] ~yield:(var "x")))
          []
      in
      let rows = List.init 16 (fun i -> Helpers.row i (i mod 3)) in
      let algo = Emma.parallelize prog in
      let r = Emma.run_on_exn (laptop_rt ()) algo ~tables:[ ("rows", rows) ] in
      ignore r.Emma.value;
      let cats =
        List.sort_uniq compare
          (List.map (fun e -> e.Trace.ev_cat) (Trace.events tr))
      in
      List.iter
        (fun c ->
          Alcotest.(check bool) (Printf.sprintf "category %S present" c) true
            (List.mem c cats))
        [ "compile"; "job"; "stage"; "task" ])

let suite =
  [ ( "trace",
      [ Alcotest.test_case "span nesting and event order" `Quick test_span_nesting;
        Alcotest.test_case "balanced on exception" `Quick test_span_exception_balanced;
        Alcotest.test_case "timestamps clamped monotone" `Quick test_monotone_clamp;
        Alcotest.test_case "disabled tracer is a no-op" `Quick test_disabled_noop;
        Alcotest.test_case "chrome JSON parses (adversarial names)" `Quick
          test_chrome_json_valid;
        Alcotest.test_case "text tree renders spans" `Quick test_text_tree;
        Alcotest.test_case "compile+run span categories" `Quick test_span_categories;
        prop_trace_invariant;
        prop_span_trees_well_formed ] ) ]
