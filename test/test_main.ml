let () =
  Alcotest.run "emma"
    (Test_value.suite @ Test_databag.suite @ Test_lang.suite @ Test_normalize.suite
   @ Test_fusion.suite @ Test_translate.suite @ Test_engine.suite @ Test_programs.suite @ Test_tpch.suite @ Test_util.suite @ Test_workloads.suite @ Test_costmodel.suite @ Test_physical.suite @ Test_endtoend.suite @ Test_matrix.suite @ Test_prim.suite @ Test_plan_pdata.suite @ Test_antijoin.suite @ Test_csv.suite @ Test_aliases.suite @ Test_engine_edge.suite @ Test_faults.suite @ Test_graph.suite @ Test_types.suite @ Test_pretty.suite @ Test_eval_errors.suite @ Test_robustness.suite @ Test_pool.suite @ Test_parallel.suite @ Test_trace.suite @ Test_explain.suite
   @ Test_metrics.suite @ Test_memman.suite @ Test_cli_args.suite
   @ Test_compile.suite @ Test_config.suite @ Test_session.suite
   @ Test_serve.suite @ Test_wal.suite)
