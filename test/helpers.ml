(* Shared test utilities: value testables, semantic-equivalence checks, and
   qcheck generators for random pipelines over a base table. *)

module Value = Emma_value.Value
module Expr = Emma_lang.Expr
module Eval = Emma_lang.Eval
module S = Emma_lang.Surface

(* The tier-1 suite routes engine partition work through the default domain
   pool; EMMA_TEST_DOMAINS sets its size (default 2, so every engine test
   also exercises the multicore path; set 1 to force sequential). Requests
   up to 8 are always honored — running 8 domains on fewer cores is exactly
   the oversubscribed preemption schedule the work-stealing pool must
   tolerate — and anything above is clamped to the host's recommended
   domain count so a wild value cannot exhaust the runtime's domain limit.
   Results and cost-model metrics are identical at every size — that is
   itself what test_parallel.ml checks. *)
let test_domains =
  let ceiling = max 8 (Domain.recommended_domain_count ()) in
  match Option.bind (Sys.getenv_opt "EMMA_TEST_DOMAINS") int_of_string_opt with
  | Some n when n >= 1 -> min n ceiling
  | _ -> 2

let () = Emma_util.Pool.set_default_domains test_domains

let value_testable : Value.t Alcotest.testable =
  Alcotest.testable Value.pp Value.equal

let check_value = Alcotest.check value_testable

(* Bags compare order-insensitively through Value.compare already. *)
let check_bag msg expected actual =
  Alcotest.check value_testable msg (Value.bag expected) (Value.bag actual)

let ctx_with tables =
  let ctx = Eval.create_ctx () in
  List.iter (fun (name, rows) -> Eval.register_table ctx name rows) tables;
  ctx

let eval_expr ?(tables = []) e = Eval.eval_value (ctx_with tables) Eval.empty_env e

let run_program ?(tables = []) p = Eval.eval_program (ctx_with tables) p

(* Check that a rewrite preserved semantics on the given tables. *)
let assert_equiv ?(tables = []) msg e1 e2 =
  check_value msg (eval_expr ~tables e1) (eval_expr ~tables e2)

(* ------------------------------------------------------------------ *)
(* Random pipelines for property tests                                  *)
(* ------------------------------------------------------------------ *)

(* Rows of shape {a : int; b : int}. *)
let row a b = Value.record [ ("a", Value.Int a); ("b", Value.Int b) ]

let rows_gen =
  QCheck2.Gen.(
    list_size (int_bound 12)
      (map2 (fun a b -> row a b) (int_range (-20) 20) (int_range 0 5)))

(* A random chain of DataBag operators over the "rows" table, written
   against the desugared surface (exactly what user code looks like). *)
let pipeline_gen =
  let open QCheck2.Gen in
  let base = pure (S.read "rows") in
  let step e_gen =
    e_gen >>= fun e ->
    oneof
      [ (* map: project/transform the record *)
        pure
          (S.map
             (S.lam "x" (fun x ->
                  S.record [ ("a", S.(field x "a" + int_ 1)); ("b", S.field x "b") ]))
             e);
        (* filter on a *)
        (int_range (-10) 10 >|= fun k ->
         S.with_filter (S.lam "x" (fun x -> S.(field x "a" > int_ k))) e);
        (* flatMap duplicating the element *)
        pure (S.flat_map (S.lam "x" (fun x -> S.bag_of [ x; x ])) e);
        (* union with itself filtered *)
        pure (S.union e (S.with_filter (S.lam "x" (fun x -> S.(field x "b" = int_ 0))) e))
      ]
  in
  int_bound 4 >>= fun depth ->
  let rec build n acc = if n = 0 then acc else build (n - 1) (step acc) in
  build depth base

(* Optionally terminate the pipeline with an aggregate. *)
let terminated_pipeline_gen =
  let open QCheck2.Gen in
  pipeline_gen >>= fun e ->
  oneofl
    [ e;
      S.sum (S.map (S.lam "x" (fun x -> S.field x "a")) e);
      S.count e;
      S.exists (S.lam "x" (fun x -> S.(field x "a" > int_ 5))) e ]

let qcheck_case ?(count = 100) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name gen prop)
