(* Anti-join extraction: negated exists (and forall via ¬∃¬) compile to
   Anti_join combinators and preserve semantics under every execution
   strategy. *)

module Value = Emma_value.Value
module Expr = Emma_lang.Expr
module S = Emma_lang.Surface
module P = Emma_dataflow.Plan
module Normalize = Emma_comp.Normalize
module Translate = Emma_compiler.Translate
module Pipeline = Emma_compiler.Pipeline
open Helpers

let plan_has pred p = P.fold_plan (fun acc n -> acc || pred n) false p
let to_plan ?unnest ?stats e = Translate.to_plan ?unnest ?stats (Normalize.normalize e)

let not_exists_query =
  (* orders with no matching lineitem: a classic NOT EXISTS *)
  S.(
    for_
      [ gen "o" (read "orders");
        when_
          (not_
             (exists
                (lam "l" (fun l -> field l "ok" = field (var "o") "ok"))
                (read "lineitem"))) ]
      ~yield:(var "o"))

let test_not_exists_becomes_anti_join () =
  let stats = Translate.fresh_stats () in
  let p = to_plan ~stats not_exists_query in
  Alcotest.(check bool) "anti_join present" true
    (plan_has (function P.Anti_join _ -> true | _ -> false) p);
  Alcotest.(check int) "counted" 1 stats.Translate.anti_joins;
  (* and with unnesting off it stays a broadcast filter *)
  let stats0 = Translate.fresh_stats () in
  let p0 = to_plan ~unnest:false ~stats:stats0 not_exists_query in
  Alcotest.(check bool) "no anti_join without unnesting" false
    (plan_has (function P.Anti_join _ -> true | _ -> false) p0);
  Alcotest.(check int) "fallback counted" 1 stats0.Translate.broadcast_filters

let forall_query =
  (* orders where every matching lineitem shipped on time — a forall whose
     inner predicate mixes an equality with a per-lineitem condition *)
  S.(
    for_
      [ gen "o" (read "orders");
        when_
          (forall
             (lam "l" (fun l ->
                  not_ (field l "ok" = field (var "o") "ok")
                  || (field l "ship" <= field l "due")))
             (read "lineitem")) ]
      ~yield:(var "o"))

let test_forall_normalizes_to_not_exists () =
  let n = Normalize.normalize forall_query in
  let has_forall =
    Expr.exists_expr
      (function
        | Expr.Comp { alg = Expr.Alg_fold { f_tag = Expr.Tag_forall; _ }; _ } -> true
        | _ -> false)
      n
  in
  Alcotest.(check bool) "forall eliminated" false has_forall;
  let has_not_exists =
    Expr.exists_expr
      (function
        | Expr.Prim
            (Emma_lang.Prim.Not, [ Expr.Comp { alg = Expr.Alg_fold { f_tag = Expr.Tag_exists; _ }; _ } ])
          ->
            true
        | _ -> false)
      n
  in
  Alcotest.(check bool) "rewritten to ¬∃" true has_not_exists

(* semantics: engine with anti-join = engine without = native *)
let order ok = Value.record [ ("ok", Value.Int ok) ]

let lineitem ok ship due =
  Value.record [ ("ok", Value.Int ok); ("ship", Value.Int ship); ("due", Value.Int due) ]

let run_all prog tables =
  let algo = Emma.parallelize prog in
  let native, _ = Emma.run_native algo ~tables in
  let engine opts =
    let rt =
      Emma.
        { cluster = Emma_engine.Cluster.laptop ();
          profile = Emma_engine.Cluster.spark_like;
          timeout_s = None }
    in
    match Emma.run_on rt (Emma.parallelize ~opts prog) ~tables with
    | Emma.Finished { value; _ } -> value
    | _ -> Alcotest.fail "engine run failed"
  in
  (native, engine Pipeline.default_opts, engine Pipeline.no_opts)

let test_not_exists_semantics () =
  let tables =
    [ ("orders", List.map order [ 1; 2; 3; 4 ]);
      ("lineitem", [ lineitem 1 5 9; lineitem 3 9 5; lineitem 3 1 2 ]) ]
  in
  let prog = S.program ~ret:(S.var "r") [ S.s_let "r" not_exists_query ] in
  let native, with_aj, without = run_all prog tables in
  check_value "anti-join = native" native with_aj;
  check_value "broadcast fallback = native" native without;
  (* orders 2 and 4 have no lineitems *)
  check_value "expected rows" (Value.bag [ order 2; order 4 ]) native

let test_forall_semantics () =
  let tables =
    [ ("orders", List.map order [ 1; 2; 3 ]);
      ("lineitem", [ lineitem 1 5 9; lineitem 3 9 5; lineitem 3 1 2 ]) ]
  in
  let prog = S.program ~ret:(S.var "r") [ S.s_let "r" forall_query ] in
  let native, with_opt, without = run_all prog tables in
  check_value "optimized = native" native with_opt;
  check_value "fallback = native" native without;
  (* order 1: lineitem on time; order 2: vacuous; order 3: one late *)
  check_value "expected rows" (Value.bag [ order 1; order 2 ]) native

let prop_anti_join_agrees =
  Helpers.qcheck_case "anti-join = broadcast filter = native on random tables" ~count:60
    QCheck2.Gen.(pair (list_size (int_bound 12) (int_range 0 6)) (list_size (int_bound 12) (int_range 0 6)))
    (fun (os, ls) ->
      let tables =
        [ ("orders", List.map order os);
          ("lineitem", List.map (fun k -> lineitem k 0 1) ls) ]
      in
      let prog = S.program ~ret:(S.var "r") [ S.s_let "r" not_exists_query ] in
      let native, with_aj, without = run_all prog tables in
      Value.equal native with_aj && Value.equal native without)

let test_repartition_anti_join () =
  (* force the repartition strategy with a tiny broadcast threshold *)
  let cluster =
    { (Emma_engine.Cluster.laptop ()) with
      join_strategy = Emma_engine.Cluster.Force_repartition }
  in
  let tables =
    [ ("orders", List.map order (List.init 30 Fun.id));
      ("lineitem", List.map (fun k -> lineitem (2 * k) 0 1) (List.init 10 Fun.id)) ]
  in
  let prog = S.program ~ret:(S.var "r") [ S.s_let "r" not_exists_query ] in
  let algo = Emma.parallelize prog in
  let native, _ = Emma.run_native algo ~tables in
  match
    Emma.run_on
      Emma.{ cluster; profile = Emma_engine.Cluster.spark_like; timeout_s = None }
      algo ~tables
  with
  | Emma.Finished { value; metrics; _ } ->
      check_value "repartition anti-join agrees" native value;
      Alcotest.(check bool) "shuffled" true (metrics.Emma.Metrics.shuffle_bytes > 0.0)
  | _ -> Alcotest.fail "engine run failed"

let suite =
  [ ( "anti_join",
      [ Alcotest.test_case "not-exists extraction" `Quick test_not_exists_becomes_anti_join;
        Alcotest.test_case "forall normalizes to ¬∃" `Quick test_forall_normalizes_to_not_exists;
        Alcotest.test_case "not-exists semantics" `Quick test_not_exists_semantics;
        Alcotest.test_case "forall semantics" `Quick test_forall_semantics;
        Alcotest.test_case "repartition strategy" `Quick test_repartition_anti_join;
        prop_anti_join_agrees ] ) ]
