module Value = Emma_value.Value
module Pipeline = Emma_compiler.Pipeline
module W = Emma_workloads
module Pr = Emma_programs
open Helpers

let laptop_rt () =
  Emma.
    { cluster = Emma_engine.Cluster.laptop ();
      profile = Emma_engine.Cluster.spark_like;
      timeout_s = None }

let sort_values vs = List.sort Value.compare vs

let tpch_tables ~seed sf =
  let cfg = W.Tpch_gen.of_scale_factor sf in
  let lineitem = W.Tpch_gen.lineitem ~seed cfg in
  let orders = W.Tpch_gen.orders ~seed cfg in
  (lineitem, orders)

(* Q1 results carry floats; compare with tolerance after sorting by key. *)
let check_q1_rows msg expected actual =
  let key r =
    ( Value.to_string_exn (Value.field r "returnFlag"),
      Value.to_string_exn (Value.field r "lineStatus") )
  in
  let sort rs = List.sort (fun a b -> compare (key a) (key b)) rs in
  let expected = sort expected and actual = sort actual in
  Alcotest.(check int) (msg ^ ": group count") (List.length expected) (List.length actual);
  List.iter2
    (fun e a ->
      Alcotest.(check (pair string string)) (msg ^ ": keys") (key e) (key a);
      List.iter
        (fun col ->
          let ve = Value.to_number (Value.field e col) in
          let va = Value.to_number (Value.field a col) in
          let tol = 1e-6 *. (1.0 +. Float.abs ve) in
          if Float.abs (ve -. va) > tol then
            Alcotest.failf "%s: %s differs: %g vs %g" msg col ve va)
        [ "sumQty"; "sumBasePrice"; "sumDiscPrice"; "sumCharge"; "avgQty"; "avgPrice";
          "avgDisc" ];
      Alcotest.(check int) (msg ^ ": countOrder")
        (Value.to_int (Value.field e "countOrder"))
        (Value.to_int (Value.field a "countOrder")))
    expected actual

let test_q1 () =
  let lineitem, _ = tpch_tables ~seed:21 0.0003 in
  let prog = Pr.Tpch_q1.program Pr.Tpch_q1.default_params in
  let tables = [ ("lineitem", lineitem) ] in
  let algo = Emma.parallelize prog in
  let native, _ = Emma.run_native algo ~tables in
  check_q1_rows "native vs reference" (Emma_tpch.Reference.q1 lineitem) (Value.to_bag native);
  (match Emma.run_on (laptop_rt ()) algo ~tables with
  | Emma.Finished { value; _ } ->
      check_q1_rows "engine vs reference" (Emma_tpch.Reference.q1 lineitem) (Value.to_bag value)
  | _ -> Alcotest.fail "engine run failed");
  Alcotest.(check bool) "fusion applies to Q1" true
    (Pipeline.applied_group_fusion algo.Emma.report);
  Alcotest.(check bool) "no unnesting in Q1" false
    (Pipeline.applied_unnesting algo.Emma.report)

let test_q1_six_folds_fuse () =
  let algo = Emma.parallelize (Pr.Tpch_q1.program Pr.Tpch_q1.default_params) in
  (* six distinct aggregates collapse into one aggBy *)
  Alcotest.(check int) "one fused group" 1 algo.Emma.report.Pipeline.fusion.Emma_compiler.Fusion.fused_groups;
  Alcotest.(check int) "six folds" 6 algo.Emma.report.Pipeline.fusion.Emma_compiler.Fusion.fused_folds

let test_q4 () =
  let lineitem, orders = tpch_tables ~seed:22 0.0005 in
  let prog = Pr.Tpch_q4.program Pr.Tpch_q4.default_params in
  let tables = [ ("lineitem", lineitem); ("orders", orders) ] in
  let algo = Emma.parallelize prog in
  let native, _ = Emma.run_native algo ~tables in
  check_value "native vs reference"
    (Value.bag (sort_values (Emma_tpch.Reference.q4 ~orders ~lineitem)))
    (Value.bag (sort_values (Value.to_bag native)));
  (match Emma.run_on (laptop_rt ()) algo ~tables with
  | Emma.Finished { value; _ } -> check_value "engine = native" native value
  | _ -> Alcotest.fail "engine run failed");
  Alcotest.(check bool) "unnesting applies to Q4" true
    (Pipeline.applied_unnesting algo.Emma.report);
  Alcotest.(check bool) "fusion applies to Q4" true
    (Pipeline.applied_group_fusion algo.Emma.report)

let test_q4_no_unnesting_same_result () =
  let lineitem, orders = tpch_tables ~seed:23 0.0003 in
  let prog = Pr.Tpch_q4.program Pr.Tpch_q4.default_params in
  let tables = [ ("lineitem", lineitem); ("orders", orders) ] in
  let algo = Emma.parallelize ~opts:Pipeline.no_opts prog in
  let native, _ = Emma.run_native algo ~tables in
  match Emma.run_on (laptop_rt ()) algo ~tables with
  | Emma.Finished { value; _ } -> check_value "unoptimized engine = native" native value
  | _ -> Alcotest.fail "engine run failed"

let test_q3 () =
  let cfg = W.Tpch_gen.of_scale_factor 0.0005 in
  let lineitem = W.Tpch_gen.lineitem ~seed:33 cfg in
  let orders = W.Tpch_gen.orders ~seed:33 cfg in
  let customer = W.Tpch_gen.customer ~seed:33 cfg in
  let prog = Pr.Tpch_q3.program Pr.Tpch_q3.default_params in
  let tables = [ ("lineitem", lineitem); ("orders", orders); ("customer", customer) ] in
  let algo = Emma.parallelize prog in
  let native, _ = Emma.run_native algo ~tables in
  (* revenue is a float sum: compare keyed with tolerance *)
  let by_key rows =
    rows
    |> List.map (fun r ->
           ( Value.to_int (Value.field r "orderKey"),
             Value.to_float (Value.field r "revenue") ))
    |> List.sort compare
  in
  let expected =
    by_key (Emma_tpch.Reference.q3 ~customer ~orders ~lineitem Pr.Tpch_q3.default_params)
  in
  let check_rows msg rows =
    let got = by_key rows in
    Alcotest.(check int) (msg ^ ": rows") (List.length expected) (List.length got);
    List.iter2
      (fun (k1, r1) (k2, r2) ->
        Alcotest.(check int) (msg ^ ": key") k1 k2;
        if Float.abs (r1 -. r2) > 1e-6 *. (1.0 +. Float.abs r1) then
          Alcotest.failf "%s: revenue %g vs %g" msg r1 r2)
      expected got
  in
  check_rows "native vs reference" (Value.to_bag native);
  (match Emma.run_on (laptop_rt ()) algo ~tables with
  | Emma.Finished { value; _ } -> check_rows "engine vs reference" (Value.to_bag value)
  | _ -> Alcotest.fail "engine run failed");
  (* two chained equi-joins and one fused aggregation *)
  Alcotest.(check int) "two eq-joins" 2
    algo.Emma.report.Pipeline.translation.Emma_compiler.Translate.eq_joins;
  Alcotest.(check bool) "fusion applies" true (Pipeline.applied_group_fusion algo.Emma.report)

let test_date_arith () =
  let d1 = W.Tpch_gen.date 1992 1 1 and d2 = W.Tpch_gen.date 1992 2 1 in
  Alcotest.(check int) "january has 31 days" 31 (d2 - d1);
  Alcotest.(check int) "leap february 1992" 29
    (W.Tpch_gen.date 1992 3 1 - W.Tpch_gen.date 1992 2 1);
  Alcotest.(check int) "non-leap february 1993" 28
    (W.Tpch_gen.date 1993 3 1 - W.Tpch_gen.date 1993 2 1);
  Alcotest.(check bool) "dates ordered" true
    (W.Tpch_gen.date 1996 12 1 > W.Tpch_gen.date 1993 10 1)

let suite =
  [ ( "tpch",
      [ Alcotest.test_case "date arithmetic" `Quick test_date_arith;
        Alcotest.test_case "Q1 (native, engine, reference)" `Quick test_q1;
        Alcotest.test_case "Q1 six folds fuse" `Quick test_q1_six_folds_fuse;
        Alcotest.test_case "Q4 (native, engine, reference)" `Quick test_q4;
        Alcotest.test_case "Q3 three-way join" `Quick test_q3;
        Alcotest.test_case "Q4 without unnesting" `Quick test_q4_no_unnesting_same_result ] ) ]
