(* Memory governance contract (Memman + its Exec integration):

   - observe-only: with no budget set (or an ample one) the engine is
     bit-identical to a world without the subsystem — every cost-model
     field, not just the result;
   - spill-to-disk: under ANY positive budget with spilling on, results
     and all non-time, non-memory counters match the unbounded run;
     only sim_time_s and the mem_* channels move (qcheck, 1/2/4 domains);
   - OOM-kill ladder: spilling off, a budget below the peak kills and
     retries at halved parallelism while a node can still hold the
     state, and fails cleanly once it cannot;
   - LRU cache eviction: a cache budget too small for the working set
     evicts and recomputes through lineage, deterministically;
   - eviction vs faults: an injected cache loss during eviction activity
     recomputes the lost bag exactly once (the registry is consistent);
   - admission control: --max-inflight queues submissions and charges
     the wait, changing nothing but time and the queue counters;
   - the chaos OOM channel (scripted and seeded) only costs time. *)

module Value = Emma_value.Value
module S = Emma_lang.Surface
module Cluster = Emma_engine.Cluster
module Metrics = Emma_engine.Metrics
module Engine = Emma_engine.Exec
module Faults = Emma_engine.Faults
module Memman = Emma_engine.Memman
module Pipeline = Emma_compiler.Pipeline
module Pool = Emma_util.Pool
open Helpers

(* ---------------------------------------------------------------- *)
(* Harness                                                            *)
(* ---------------------------------------------------------------- *)

let run_engine ?faults ?mem_budget ?spill ?max_inflight ?opts ?pool prog tables =
  let ctx = ctx_with tables in
  let eng =
    Engine.create ?faults ?mem_budget ?spill ?max_inflight ?pool
      ~cluster:(Cluster.laptop ()) ~profile:Cluster.spark_like ctx
  in
  let v = Engine.run eng (Emma.parallelize ?opts prog).Emma.compiled in
  (v, Engine.metrics eng)

let tables = [ ("t", List.init 20 (fun i -> Helpers.row i (i mod 3))) ]

(* group-then-fold fuses to an aggBy whose combined state is reserved *)
let group_prog =
  S.program
    ~ret:S.(count (var "d") + sum (map (lam "x" (fun x -> field x "a")) (var "d")))
    [ S.s_let "d"
        S.(
          for_
            [ gen "g" (group_by (lam "x" (fun x -> field x "b")) (read "t")) ]
            ~yield:
              (record
                 [ ( "a",
                     sum (map (lam "x" (fun x -> field x "a")) (field (var "g") "values"))
                   );
                   ("b", field (var "g") "key") ])) ]

let loop_prog iters =
  S.program
    ~ret:(S.var "acc")
    [ S.s_let "xs" S.(map (lam "x" (fun x -> field x "a")) (read "t"));
      S.s_var "acc" (S.int_ 0);
      S.s_var "i" (S.int_ 0);
      S.while_
        S.(var "i" < int_ iters)
        [ S.assign "acc" S.(var "acc" + sum (var "xs"));
          S.assign "i" S.(var "i" + int_ 1) ] ]

(* two Mem-cached bags read every iteration — the LRU working set *)
let two_bag_loop iters =
  S.program
    ~ret:(S.var "acc")
    [ S.s_let "xs" S.(map (lam "x" (fun x -> field x "a")) (read "t"));
      S.s_let "ys" S.(map (lam "x" (fun x -> field x "a" + int_ 1)) (read "t"));
      S.s_var "acc" (S.int_ 0);
      S.s_var "i" (S.int_ 0);
      S.while_
        S.(var "i" < int_ iters)
        [ S.assign "acc" S.(var "acc" + sum (var "xs") + sum (var "ys"));
          S.assign "i" S.(var "i" + int_ 1) ] ]

(* caching off: no LRU registry traffic, so under a spill budget every
   counter except sim_time_s and the mem_* channels must be untouched *)
let no_cache = { Pipeline.default_opts with Pipeline.cache = false }

(* logical bytes of one cached bag of two_bag_loop at laptop scale 1:
   20 ints, as the registry accounts them *)
let bag_bytes =
  List.fold_left
    (fun acc i -> acc +. float_of_int (Value.byte_size (Value.Int i)))
    0.0
    (List.init 20 (fun i -> i))

(* laptop cluster shape the budgets below are written against *)
let slots_per_node = 2
let dop = 8

(* every cost-model field except sim_time_s and wall_time_s *)
let invariant_sig (m : Metrics.t) =
  ( ( m.Metrics.shuffle_bytes,
      m.Metrics.broadcast_bytes,
      m.Metrics.dfs_read_bytes,
      m.Metrics.dfs_write_bytes,
      m.Metrics.collect_bytes,
      m.Metrics.parallelize_bytes,
      m.Metrics.spilled_bytes ),
    ( m.Metrics.jobs,
      m.Metrics.stages,
      m.Metrics.recomputes,
      m.Metrics.cache_hits,
      m.Metrics.cache_losses,
      m.Metrics.udf_invocations ),
    ( m.Metrics.retries,
      m.Metrics.fetch_failures,
      m.Metrics.executor_losses,
      m.Metrics.blacklisted_nodes,
      m.Metrics.recomputed_partitions,
      m.Metrics.checkpoints,
      m.Metrics.loop_restores ) )

let mem_sig (m : Metrics.t) =
  ( ( m.Metrics.mem_peak_bytes,
      m.Metrics.mem_spills,
      m.Metrics.mem_spill_bytes,
      m.Metrics.oom_kills ),
    ( m.Metrics.cache_evictions,
      m.Metrics.evicted_bytes,
      m.Metrics.jobs_queued,
      m.Metrics.queue_wait_s,
      m.Metrics.checkpoint_corruptions ) )

(* everything the cost model produces (wall_time_s measures the host) *)
let full_sig m = (m.Metrics.sim_time_s, invariant_sig m, mem_sig m)

let with_pool domains f =
  let pool = Pool.create ~domains () in
  Fun.protect ~finally:(fun () -> Pool.shutdown pool) (fun () -> f pool)

(* ---------------------------------------------------------------- *)
(* Memman unit tests                                                  *)
(* ---------------------------------------------------------------- *)

let mk ?budget ?spill ?max_inflight () =
  Memman.create ?budget ?spill ?max_inflight ~slots_per_node:2 ~dop:8 ()

let test_create_validates () =
  let invalid f = try ignore (f ()); false with Invalid_argument _ -> true in
  Alcotest.(check bool) "budget 0 rejected" true (invalid (fun () -> mk ~budget:0.0 ()));
  Alcotest.(check bool) "negative budget rejected" true
    (invalid (fun () -> mk ~budget:(-1.0) ()));
  Alcotest.(check bool) "max_inflight 0 rejected" true
    (invalid (fun () -> mk ~max_inflight:0 ()));
  Alcotest.(check bool) "unbounded accountant is not governed" false
    (Memman.governed (mk ()))

let test_reserve_verdicts () =
  (* unbounded: always Fits, but the peak is still tracked *)
  let t = mk () in
  Alcotest.(check bool) "unbounded fits" true
    (Memman.reserve t ~needs:[| 1e12; 3.0 |] = Memman.Fits);
  Alcotest.(check (float 0.0)) "peak tracked" 1e12 (Memman.peak t);
  (* budget 10, slots_per_node 2 → a node holds at most 20 *)
  let t = mk ~budget:10.0 () in
  Alcotest.(check bool) "under budget fits" true
    (Memman.reserve t ~needs:[| 9.0; 10.0 |] = Memman.Fits);
  Alcotest.(check bool) "one halving suffices" true
    (Memman.reserve t ~needs:[| 15.0; 5.0 |] = Memman.Kill { attempts = 1 });
  Alcotest.(check bool) "past node memory is fatal" true
    (Memman.reserve t ~needs:[| 25.0; 5.0 |] = Memman.Fatal);
  Alcotest.(check (float 0.0)) "peak is the largest slot" 25.0 (Memman.peak t);
  (* same overflow with spilling on: one slot over by 15 *)
  let t = mk ~budget:10.0 ~spill:true () in
  Alcotest.(check bool) "overflow spills instead" true
    (Memman.reserve t ~needs:[| 25.0; 5.0 |]
    = Memman.Spill { slots = 1; bytes = 15.0 })

let test_lru_registry () =
  (* budget 10 × dop 8 → cache capacity 80 *)
  let t = mk ~budget:10.0 () in
  let evicted = ref [] in
  let reg name bytes =
    Memman.register t ~bytes ~evict:(fun () -> evicted := name :: !evicted)
  in
  let a = reg "a" 30.0 in
  let b = reg "b" 30.0 in
  Alcotest.(check bool) "a admitted" true (a.Memman.admitted <> None);
  Alcotest.(check bool) "b admitted" true (b.Memman.admitted <> None);
  Alcotest.(check (float 0.0)) "both resident" 60.0 (Memman.cached_bytes t);
  (* touch a, then admit c: b is now the least recently used *)
  Option.iter (Memman.touch t) a.Memman.admitted;
  let c = reg "c" 30.0 in
  Alcotest.(check (list string)) "LRU victim is b" [ "b" ] !evicted;
  Alcotest.(check bool) "eviction sizes reported" true (c.Memman.evicted = [ 30.0 ]);
  (* forget drops without the evict callback (the loss already did it) *)
  Option.iter (Memman.forget t) a.Memman.admitted;
  Alcotest.(check (float 0.0)) "forgotten bytes released" 30.0 (Memman.cached_bytes t);
  Alcotest.(check (list string)) "forget never calls evict" [ "b" ] !evicted;
  (* a bag bigger than the whole capacity is not cached at all *)
  let big = reg "big" 100.0 in
  Alcotest.(check bool) "oversized bag rejected" true (big.Memman.admitted = None);
  (* ungoverned: the registry is inert *)
  let u = Memman.register (mk ()) ~bytes:1e9 ~evict:(fun () -> assert false) in
  Alcotest.(check bool) "ungoverned registry is inert" true (u.Memman.admitted = None)

let test_admission_gate () =
  let t = mk ~max_inflight:1 () in
  Alcotest.(check (float 0.0)) "first job admitted free" 0.0
    (Memman.admit_job t ~now:0.0);
  Memman.job_done t ~release:5.0;
  Alcotest.(check (float 0.0)) "second waits for the release" 4.0
    (Memman.admit_job t ~now:1.0);
  Memman.job_done t ~release:9.0;
  Alcotest.(check (float 0.0)) "a free slot costs nothing" 0.0
    (Memman.admit_job t ~now:20.0);
  Memman.job_done t ~release:21.0;
  let u = mk () in
  Alcotest.(check (float 0.0)) "no gate when off" 0.0 (Memman.admit_job u ~now:0.0)

(* ---------------------------------------------------------------- *)
(* Observe-only and ample budgets: bit-identical engine behaviour     *)
(* ---------------------------------------------------------------- *)

let test_ample_budget_identity () =
  let base_v, base_m = run_engine group_prog tables in
  Alcotest.(check bool) "peak observed even unbounded" true
    (base_m.Metrics.mem_peak_bytes > 0.0);
  List.iter
    (fun (name, mem_budget, spill) ->
      let v, m = run_engine ~mem_budget ~spill group_prog tables in
      check_value (name ^ ": same result") base_v v;
      Alcotest.(check bool) (name ^ ": every cost-model field identical") true
        (full_sig m = full_sig base_m))
    [ ("ample budget", 1e12, false);
      ("ample budget + spill", 1e12, true);
      (* the documented spill-off minimum: budget = the unbounded peak *)
      ("budget = peak", base_m.Metrics.mem_peak_bytes, false) ]

(* ---------------------------------------------------------------- *)
(* Spill-to-disk                                                      *)
(* ---------------------------------------------------------------- *)

let test_spill_only_moves_time_and_mem () =
  let base_v, base_m = run_engine ~opts:no_cache group_prog tables in
  let v, m = run_engine ~opts:no_cache ~mem_budget:1.0 ~spill:true group_prog tables in
  check_value "result identical under a 1-byte budget" base_v v;
  Alcotest.(check bool) "it actually spilled" true (m.Metrics.mem_spills > 0);
  Alcotest.(check bool) "spilled bytes counted" true (m.Metrics.mem_spill_bytes > 0.0);
  Alcotest.(check bool) "spilling costs simulated time" true
    (m.Metrics.sim_time_s > base_m.Metrics.sim_time_s);
  Alcotest.(check bool) "all other counters untouched" true
    (invariant_sig m = invariant_sig base_m);
  Alcotest.(check (float 0.0)) "same reservations, same peak"
    base_m.Metrics.mem_peak_bytes m.Metrics.mem_peak_bytes;
  Alcotest.(check int) "no kills when spilling" 0 m.Metrics.oom_kills

let prop_budget_invariance =
  (* the governing invariant, at 1, 2 and 4 domains: for ANY budget with
     spilling on, results are bit-identical to the unbounded run and the
     cost metrics (including every memory counter) are identical across
     domain counts *)
  Helpers.qcheck_case "any spill budget: identical results, domain-invariant metrics"
    ~count:12
    QCheck2.Gen.(pair Helpers.rows_gen (map float_of_int (int_range 1 4096)))
    (fun (rows, budget) ->
      let tables = [ ("t", rows) ] in
      let run ?mem_budget ?spill pool =
        run_engine ?mem_budget ?spill ~opts:no_cache ~pool group_prog tables
      in
      with_pool 2 (fun pool ->
          let base_v, base_m = run pool in
          let v2, m2 = run ~mem_budget:budget ~spill:true pool in
          Value.equal base_v v2
          && invariant_sig m2 = invariant_sig base_m
          && m2.Metrics.sim_time_s >= base_m.Metrics.sim_time_s
          && with_pool 1 (fun p1 ->
                 let v1, m1 = run ~mem_budget:budget ~spill:true p1 in
                 Value.equal v1 v2 && full_sig m1 = full_sig m2)
          && with_pool 4 (fun p4 ->
                 let v4, m4 = run ~mem_budget:budget ~spill:true p4 in
                 Value.equal v4 v2 && full_sig m4 = full_sig m2)))

let test_spill_deterministic () =
  let v1, m1 = run_engine ~mem_budget:2.0 ~spill:true group_prog tables in
  let v2, m2 = run_engine ~mem_budget:2.0 ~spill:true group_prog tables in
  check_value "same result twice" v1 v2;
  Alcotest.(check bool) "same metrics twice" true (full_sig m1 = full_sig m2)

(* ---------------------------------------------------------------- *)
(* OOM-kill ladder (spilling disabled)                                *)
(* ---------------------------------------------------------------- *)

let test_oom_kill_and_retry () =
  let base_v, base_m = run_engine ~opts:no_cache group_prog tables in
  let peak = base_m.Metrics.mem_peak_bytes in
  Alcotest.(check bool) "program reserves state" true (peak > 0.0);
  (* 0.75 × peak: the largest slot overflows, one halving rescues it *)
  let v, m = run_engine ~opts:no_cache ~mem_budget:(0.75 *. peak) group_prog tables in
  check_value "killed attempt retried to the same result" base_v v;
  Alcotest.(check bool) "at least one OOM kill" true (m.Metrics.oom_kills > 0);
  Alcotest.(check bool) "kills cost simulated time" true
    (m.Metrics.sim_time_s > base_m.Metrics.sim_time_s);
  Alcotest.(check bool) "nothing else moves" true
    (invariant_sig m = invariant_sig base_m);
  Alcotest.(check int) "no spilling happened" 0 m.Metrics.mem_spills

let test_oom_past_node_memory_fails () =
  (* 0.4 × peak: even one slot per node (2 × budget) cannot hold the
     state — a clean, actionable failure *)
  let _, base_m = run_engine ~opts:no_cache group_prog tables in
  let budget = 0.4 *. base_m.Metrics.mem_peak_bytes in
  match run_engine ~opts:no_cache ~mem_budget:budget group_prog tables with
  | _ -> Alcotest.fail "expected Engine_failure"
  | exception Engine.Engine_failure msg ->
      let contains hay needle =
        let nh = String.length hay and nn = String.length needle in
        let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
        go 0
      in
      Alcotest.(check bool) "message names the condition" true
        (contains msg "out of memory")

(* ---------------------------------------------------------------- *)
(* Chaos OOM channel                                                  *)
(* ---------------------------------------------------------------- *)

let test_chaos_oom_scripted () =
  let base_v, base_m = run_engine ~opts:no_cache group_prog tables in
  let v, m =
    run_engine ~opts:no_cache
      ~faults:(Faults.scripted [ Faults.Oom_kill 1 ])
      group_prog tables
  in
  check_value "result survives an injected kill" base_v v;
  Alcotest.(check int) "exactly one kill" 1 m.Metrics.oom_kills;
  Alcotest.(check bool) "the kill costs time" true
    (m.Metrics.sim_time_s > base_m.Metrics.sim_time_s);
  Alcotest.(check bool) "nothing else moves" true
    (invariant_sig m = invariant_sig base_m)

let test_chaos_oom_seeded () =
  let base_v, _ = run_engine ~opts:no_cache group_prog tables in
  let rates = { Faults.zero_rates with Faults.oom_kill = 1.0 } in
  let v, m =
    run_engine ~opts:no_cache ~faults:(Faults.seeded ~rates 7) group_prog tables
  in
  check_value "result survives kills at every reservation" base_v v;
  Alcotest.(check bool) "kills injected" true (m.Metrics.oom_kills > 0);
  let v', m' =
    run_engine ~opts:no_cache ~faults:(Faults.seeded ~rates 7) group_prog tables
  in
  check_value "seeded chaos is deterministic" v v';
  Alcotest.(check bool) "same metrics for the same seed" true
    (full_sig m = full_sig m')

(* ---------------------------------------------------------------- *)
(* LRU cache eviction                                                 *)
(* ---------------------------------------------------------------- *)

(* budget so the cache holds exactly one of the two bags *)
let one_bag_budget = (bag_bytes +. 1.0) /. float_of_int dop

(* budget so the cache holds both bags comfortably *)
let two_bag_budget = ((2.0 *. bag_bytes) +. 16.0) /. float_of_int dop

let test_eviction_thrash () =
  let base_v, base_m = run_engine (two_bag_loop 4) tables in
  let v, m =
    run_engine ~mem_budget:one_bag_budget ~spill:true (two_bag_loop 4) tables
  in
  check_value "thrashing never changes the result" base_v v;
  Alcotest.(check bool) "bags were evicted" true (m.Metrics.cache_evictions > 0);
  Alcotest.(check bool) "evicted bytes counted" true (m.Metrics.evicted_bytes > 0.0);
  Alcotest.(check bool) "evicted bags recomputed through lineage" true
    (m.Metrics.recomputes > base_m.Metrics.recomputes);
  Alcotest.(check int) "alternating access thrashes every hit away" 0
    m.Metrics.cache_hits;
  Alcotest.(check bool) "recomputation costs simulated time" true
    (m.Metrics.sim_time_s > base_m.Metrics.sim_time_s);
  (* deterministic: same budget, same evictions, twice *)
  let v', m' =
    run_engine ~mem_budget:one_bag_budget ~spill:true (two_bag_loop 4) tables
  in
  check_value "eviction is deterministic" v v';
  Alcotest.(check bool) "same metrics twice" true (full_sig m = full_sig m')

let test_room_for_the_working_set () =
  (* with both bags resident nothing is evicted and the run is identical
     to unbounded *)
  let base_v, base_m = run_engine (two_bag_loop 4) tables in
  let v, m =
    run_engine ~mem_budget:two_bag_budget ~spill:true (two_bag_loop 4) tables
  in
  check_value "same result" base_v v;
  Alcotest.(check int) "no evictions" 0 m.Metrics.cache_evictions;
  Alcotest.(check bool) "identical to the unbounded run" true
    (full_sig m = full_sig base_m)

(* ---------------------------------------------------------------- *)
(* Eviction vs faults: the registry stays consistent                  *)
(* ---------------------------------------------------------------- *)

let test_loss_under_governance_recomputes_once () =
  (* a cache loss while the LRU registry is active: the lost bag is
     forgotten (not evicted) and recomputed exactly once *)
  let clean_v, clean_m =
    run_engine ~mem_budget:two_bag_budget ~spill:true (two_bag_loop 4) tables
  in
  let v, m =
    run_engine ~mem_budget:two_bag_budget ~spill:true
      ~faults:(Faults.scripted [ Faults.Cache_loss 3 ])
      (two_bag_loop 4) tables
  in
  check_value "result identical under the loss" clean_v v;
  Alcotest.(check int) "one loss" 1 m.Metrics.cache_losses;
  Alcotest.(check int) "recomputed exactly once" (clean_m.Metrics.recomputes + 1)
    m.Metrics.recomputes;
  Alcotest.(check int) "the lost hit is the only one missing"
    (clean_m.Metrics.cache_hits - 1) m.Metrics.cache_hits;
  Alcotest.(check int) "a loss is never an eviction" 0 m.Metrics.cache_evictions;
  (* governance changed nothing about the recovery itself *)
  let _, ungoverned_m =
    run_engine
      ~faults:(Faults.scripted [ Faults.Cache_loss 3 ])
      (two_bag_loop 4) tables
  in
  Alcotest.(check int) "same recomputes as the ungoverned recovery"
    ungoverned_m.Metrics.recomputes m.Metrics.recomputes;
  Alcotest.(check int) "same hits as the ungoverned recovery"
    ungoverned_m.Metrics.cache_hits m.Metrics.cache_hits

let test_eviction_plus_faults_domain_invariant () =
  (* losses layered on live eviction activity, across domain counts *)
  let run pool =
    run_engine ~mem_budget:one_bag_budget ~spill:true
      ~faults:(Faults.scripted [ Faults.Cache_loss 1; Faults.Cache_loss 2 ])
      ~pool (two_bag_loop 4) tables
  in
  let base_v, _ = run_engine (two_bag_loop 4) tables in
  with_pool 2 (fun p2 ->
      let v2, m2 = run p2 in
      check_value "correct under eviction + losses" base_v v2;
      with_pool 1 (fun p1 ->
          let v1, m1 = run p1 in
          check_value "1 domain: same result" v2 v1;
          Alcotest.(check bool) "1 domain: same metrics" true
            (full_sig m1 = full_sig m2));
      with_pool 4 (fun p4 ->
          let v4, m4 = run p4 in
          check_value "4 domains: same result" v2 v4;
          Alcotest.(check bool) "4 domains: same metrics" true
            (full_sig m4 = full_sig m2)))

(* ---------------------------------------------------------------- *)
(* Admission control                                                  *)
(* ---------------------------------------------------------------- *)

let test_admission_queues_jobs () =
  let base_v, base_m = run_engine (loop_prog 5) tables in
  let v, m = run_engine ~max_inflight:1 (loop_prog 5) tables in
  check_value "gating changes no result" base_v v;
  Alcotest.(check bool) "submissions queued" true (m.Metrics.jobs_queued > 0);
  Alcotest.(check bool) "queue wait charged" true (m.Metrics.queue_wait_s > 0.0);
  Alcotest.(check bool) "the wait shows up in simulated time" true
    (m.Metrics.sim_time_s > base_m.Metrics.sim_time_s);
  Alcotest.(check bool) "nothing but time and the queue counters" true
    (invariant_sig m = invariant_sig base_m)

let test_generous_admission_is_free () =
  let base_v, base_m = run_engine (loop_prog 5) tables in
  let v, m = run_engine ~max_inflight:64 (loop_prog 5) tables in
  check_value "same result" base_v v;
  Alcotest.(check int) "nothing queued" 0 m.Metrics.jobs_queued;
  Alcotest.(check bool) "identical to the ungated run" true
    (full_sig m = full_sig base_m)

let test_engine_create_validates () =
  let ctx = ctx_with tables in
  let invalid f = try ignore (f ()); false with Invalid_argument _ -> true in
  Alcotest.(check bool) "Engine.create rejects budget 0" true
    (invalid (fun () ->
         Engine.create ~mem_budget:0.0 ~cluster:(Cluster.laptop ())
           ~profile:Cluster.spark_like ctx));
  Alcotest.(check bool) "Engine.create rejects max_inflight 0" true
    (invalid (fun () ->
         Engine.create ~max_inflight:0 ~cluster:(Cluster.laptop ())
           ~profile:Cluster.spark_like ctx))

let suite =
  [ ( "memman",
      [ Alcotest.test_case "create validates its arguments" `Quick
          test_create_validates;
        Alcotest.test_case "reserve verdicts" `Quick test_reserve_verdicts;
        Alcotest.test_case "LRU registry" `Quick test_lru_registry;
        Alcotest.test_case "admission gate" `Quick test_admission_gate;
        Alcotest.test_case "engine create validates" `Quick
          test_engine_create_validates ] );
    ( "memman_budgets",
      [ Alcotest.test_case "ample budgets are bit-identical" `Quick
          test_ample_budget_identity;
        Alcotest.test_case "spill moves only time and mem counters" `Quick
          test_spill_only_moves_time_and_mem;
        prop_budget_invariance;
        Alcotest.test_case "spilling is deterministic" `Quick
          test_spill_deterministic;
        Alcotest.test_case "OOM kill retries at halved parallelism" `Quick
          test_oom_kill_and_retry;
        Alcotest.test_case "past node memory fails cleanly" `Quick
          test_oom_past_node_memory_fails;
        Alcotest.test_case "chaos OOM channel (scripted)" `Quick
          test_chaos_oom_scripted;
        Alcotest.test_case "chaos OOM channel (seeded)" `Quick
          test_chaos_oom_seeded ] );
    ( "memman_cache",
      [ Alcotest.test_case "eviction thrash stays correct" `Quick
          test_eviction_thrash;
        Alcotest.test_case "a fitting working set is untouched" `Quick
          test_room_for_the_working_set;
        Alcotest.test_case "loss during governance recomputes once" `Quick
          test_loss_under_governance_recomputes_once;
        Alcotest.test_case "eviction + faults, domain-invariant" `Quick
          test_eviction_plus_faults_domain_invariant;
        Alcotest.test_case "admission control queues jobs" `Quick
          test_admission_queues_jobs;
        Alcotest.test_case "generous admission is free" `Quick
          test_generous_admission_is_free ] ) ]
