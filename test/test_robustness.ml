(* Compiler robustness: awkward but legal programs must survive the whole
   pipeline with semantics intact (native = engine, optimized = not). *)

module Value = Emma_value.Value
module S = Emma_lang.Surface
module Pipeline = Emma_compiler.Pipeline
open Helpers

let agree ?(also_no_opts = true) prog tables =
  let algo = Emma.parallelize prog in
  let native, _ = Emma.run_native algo ~tables in
  let engine opts =
    let rt =
      Emma.
        { cluster = Emma_engine.Cluster.laptop ();
          profile = Emma_engine.Cluster.spark_like;
          timeout_s = None }
    in
    match Emma.run_on rt (Emma.parallelize ~opts prog) ~tables with
    | Emma.Finished { value; _ } -> value
    | Emma.Failed { reason; _ } -> Alcotest.failf "engine failed: %s" reason
    | Emma.Timed_out _ -> Alcotest.fail "timed out"
    | Emma.Cancelled _ -> Alcotest.fail "cancelled"
  in
  check_value "engine(default) = native" native (engine Pipeline.default_opts);
  if also_no_opts then check_value "engine(no opts) = native" native (engine Pipeline.no_opts);
  native

let rows_ab = List.init 10 (fun i -> Helpers.row (i - 3) (i mod 4))

let test_three_level_nesting () =
  (* triple nesting with a dependent innermost generator *)
  let prog =
    S.program
      ~ret:
        S.(
          sum
            (for_
               [ gen "g" (group_by (lam "x" (fun x -> field x "b")) (read "t"));
                 gen "v" (field (var "g") "values");
                 gen "w" (bag_of [ field (var "v") "a"; int_ 1 ]) ]
               ~yield:(var "w")))
      []
  in
  ignore (agree prog [ ("t", rows_ab) ])

let test_computed_join_keys () =
  (* join keys are arithmetic expressions, not plain field accesses *)
  let prog =
    S.program
      ~ret:
        S.(
          count
            (for_
               [ gen "x" (read "t1");
                 gen "y" (read "t2");
                 when_ (field (var "x") "a" + int_ 1 = field (var "y") "a" - int_ 1) ]
               ~yield:(tup [ var "x"; var "y" ])))
      []
  in
  let algo = Emma.parallelize prog in
  Alcotest.(check int) "computed keys still join" 1
    algo.Emma.report.Pipeline.translation.Emma_compiler.Translate.eq_joins;
  ignore (agree prog [ ("t1", rows_ab); ("t2", rows_ab) ])

let test_nested_exists () =
  (* exists whose predicate itself contains an exists: the outer one can
     never unnest (inner quantifier blocks classification) and must fall
     back to a broadcast filter, with identical results *)
  let prog =
    S.program
      ~ret:
        S.(
          count
            (for_
               [ gen "x" (read "t1");
                 when_
                   (exists
                      (lam "y" (fun y ->
                           (field y "b" = field (var "x") "b")
                           && exists (lam "z" (fun z -> field z "a" = field y "a")) (read "t3")))
                      (read "t2")) ]
               ~yield:(var "x")))
      []
  in
  ignore
    (agree prog
       [ ("t1", rows_ab);
         ("t2", List.filteri (fun i _ -> i mod 2 = 0) rows_ab);
         ("t3", List.filteri (fun i _ -> i mod 3 = 0) rows_ab) ])

let test_self_join () =
  let prog =
    S.program
      ~ret:
        S.(
          count
            (for_
               [ gen "x" (read "t");
                 gen "y" (read "t");
                 when_ (field (var "x") "b" = field (var "y") "b") ]
               ~yield:(tup [ var "x"; var "y" ])))
      []
  in
  ignore (agree prog [ ("t", rows_ab) ])

let test_join_then_group_then_filter () =
  (* a longer chain: join → group → fused count → driver filter *)
  let prog =
    S.program
      ~ret:
        S.(
          count
            (with_filter
               (lam "r" (fun r -> field r "n" > int_ 2))
               (for_
                  [ gen "g"
                      (group_by
                         (lam "p" (fun p -> field (proj p 0) "b"))
                         (for_
                            [ gen "x" (read "t1");
                              gen "y" (read "t2");
                              when_ (field (var "x") "b" = field (var "y") "b") ]
                            ~yield:(tup [ var "x"; var "y" ]))) ]
                  ~yield:
                    (record
                       [ ("b", field (var "g") "key");
                         ("n", count (field (var "g") "values")) ]))))
      []
  in
  ignore (agree prog [ ("t1", rows_ab); ("t2", rows_ab) ])

let test_guard_using_both_joined_sides () =
  (* a residual non-equi guard across the joined pair survives as a filter *)
  let prog =
    S.program
      ~ret:
        S.(
          count
            (for_
               [ gen "x" (read "t1");
                 gen "y" (read "t2");
                 when_ (field (var "x") "b" = field (var "y") "b");
                 when_ (field (var "x") "a" < field (var "y") "a") ]
               ~yield:(var "x")))
      []
  in
  ignore (agree prog [ ("t1", rows_ab); ("t2", rows_ab) ])

let test_union_of_comprehensions () =
  let prog =
    S.program
      ~ret:
        S.(
          count
            (union
               (for_ [ gen "x" (read "t1"); when_ (field (var "x") "a" > int_ 0) ]
                  ~yield:(var "x"))
               (for_ [ gen "x" (read "t2"); when_ (field (var "x") "a" < int_ 0) ]
                  ~yield:(var "x"))))
      []
  in
  ignore (agree prog [ ("t1", rows_ab); ("t2", rows_ab) ])

let test_fold_of_fold () =
  (* a fold whose input is built from another fold via the driver *)
  let prog =
    S.program
      ~ret:S.(var "total" + count (read "t1"))
      [ S.s_let "per_group"
          S.(
            for_
              [ gen "g" (group_by (lam "x" (fun x -> field x "b")) (read "t1")) ]
              ~yield:(count (field (var "g") "values")));
        S.s_let "total" S.(sum (var "per_group")) ]
  in
  ignore (agree prog [ ("t1", rows_ab) ])

let suite =
  [ ( "robustness",
      [ Alcotest.test_case "three-level nesting" `Quick test_three_level_nesting;
        Alcotest.test_case "computed join keys" `Quick test_computed_join_keys;
        Alcotest.test_case "nested exists" `Quick test_nested_exists;
        Alcotest.test_case "self join" `Quick test_self_join;
        Alcotest.test_case "join → group → filter" `Quick test_join_then_group_then_filter;
        Alcotest.test_case "residual non-equi guard" `Quick test_guard_using_both_joined_sides;
        Alcotest.test_case "union of comprehensions" `Quick test_union_of_comprehensions;
        Alcotest.test_case "fold of fold via driver" `Quick test_fold_of_fold ] ) ]
