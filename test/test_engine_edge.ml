(* Engine edge cases: empty inputs, empty groups, degenerate programs,
   scoping corners, error reporting. *)

module Value = Emma_value.Value
module S = Emma_lang.Surface
module Pipeline = Emma_compiler.Pipeline
open Helpers

let run ?(opts = Pipeline.default_opts) prog tables =
  let algo = Emma.parallelize ~opts prog in
  let rt =
    Emma.
      { cluster = Emma_engine.Cluster.laptop ();
        profile = Emma_engine.Cluster.spark_like;
        timeout_s = None }
  in
  Emma.run_on rt algo ~tables

let run_value ?opts prog tables =
  match run ?opts prog tables with
  | Emma.Finished { value; _ } -> value
  | Emma.Failed { reason; _ } -> Alcotest.failf "engine failed: %s" reason
  | Emma.Timed_out _ -> Alcotest.fail "timed out"
  | Emma.Cancelled _ -> Alcotest.fail "cancelled"

let test_empty_table () =
  let prog =
    S.program
      ~ret:
        S.(
          tup
            [ count (read "t");
              sum (map (lam "x" (fun x -> field x "a")) (read "t"));
              count (group_by (lam "x" (fun x -> field x "b")) (read "t"));
              count (distinct (read "t"))
            ])
      []
  in
  check_value "all folds on empty input"
    (Value.tuple [ Value.int 0; Value.int 0; Value.int 0; Value.int 0 ])
    (run_value prog [ ("t", []) ])

let test_empty_join_sides () =
  let join a b =
    S.(
      count
        (for_
           [ gen "x" (read a);
             gen "y" (read b);
             when_ (field (var "x") "a" = field (var "y") "a") ]
           ~yield:(var "x")))
  in
  let prog = S.program ~ret:S.(tup [ join "t" "e"; join "e" "t"; join "e" "e" ]) [] in
  check_value "joins with empty sides"
    (Value.tuple [ Value.int 0; Value.int 0; Value.int 0 ])
    (run_value prog [ ("t", [ Helpers.row 1 1 ]); ("e", []) ])

let test_zero_iteration_loop () =
  let prog =
    S.program ~ret:(S.var "acc")
      [ S.s_var "acc" (S.int_ 7);
        S.s_var "i" (S.int_ 5);
        S.while_
          S.(var "i" < int_ 3)
          [ S.assign "acc" S.(var "acc" + count (read "t")) ] ]
  in
  check_value "loop body never runs" (Value.int 7) (run_value prog [ ("t", [ Value.int 1 ]) ])

let test_unknown_table_is_failure () =
  let prog = S.program ~ret:S.(count (read "nope")) [] in
  match run prog [] with
  | Emma.Failed { reason; _ } ->
      Alcotest.(check bool) "mentions the table" true
        (String.length reason > 0)
  | _ -> Alcotest.fail "expected a clean engine failure"

let test_shadowing_in_branches () =
  (* a val re-defined inside a branch must not leak out *)
  let prog =
    S.program ~ret:(S.var "x")
      [ S.s_var "x" (S.int_ 1);
        S.s_if (S.bool_ true)
          [ S.s_let "x" (S.int_ 99); S.s_var "unused" (S.var "x") ]
          [];
        S.assign "x" S.(var "x" + int_ 1) ]
  in
  check_value "branch scope" (Value.int 2) (run_value prog [])

let test_distinct_of_records () =
  let rows = [ Helpers.row 1 2; Helpers.row 1 2; Helpers.row 3 4 ] in
  check_value "distinct over records"
    (Value.int 2)
    (run_value (S.program ~ret:S.(count (distinct (read "t"))) []) [ ("t", rows) ])

let test_minus_on_engine () =
  let prog = S.program ~ret:S.(minus (read "a") (read "b")) [] in
  let a = [ Value.int 1; Value.int 1; Value.int 2 ] and b = [ Value.int 1 ] in
  check_value "multiset minus"
    (Value.bag [ Value.int 1; Value.int 2 ])
    (run_value prog [ ("a", a); ("b", b) ])

let test_group_of_single_key () =
  (* all rows in one group: one output record with all values nested *)
  let rows = List.init 9 (fun i -> Helpers.row i 0) in
  let prog =
    S.program
      ~ret:
        S.(
          for_
            [ gen "g" (group_by (lam "x" (fun x -> field x "b")) (read "t")) ]
            ~yield:(count (field (var "g") "values")))
      []
  in
  check_value "single group" (Value.bag [ Value.int 9 ]) (run_value prog [ ("t", rows) ])

let test_nested_loops () =
  let prog =
    S.program ~ret:(S.var "acc")
      [ S.s_var "acc" (S.int_ 0);
        S.s_var "i" (S.int_ 0);
        S.while_
          S.(var "i" < int_ 3)
          [ S.s_var "j" (S.int_ 0);
            S.while_
              S.(var "j" < int_ 2)
              [ S.assign "acc" S.(var "acc" + count (read "t"));
                S.assign "j" S.(var "j" + int_ 1) ];
            S.assign "i" S.(var "i" + int_ 1) ] ]
  in
  check_value "nested loops" (Value.int 18) (run_value prog [ ("t", [ Value.int 0; Value.int 1; Value.int 2 ]) ])

let test_write_overwrites () =
  let prog =
    S.program
      [ S.write "out" (S.read "t");
        S.write "out" S.(map (lam "x" (fun x -> x + int_ 1)) (read "t")) ]
  in
  let algo = Emma.parallelize prog in
  let rt =
    Emma.
      { cluster = Emma_engine.Cluster.laptop ();
        profile = Emma_engine.Cluster.spark_like;
        timeout_s = None }
  in
  match Emma.run_on rt algo ~tables:[ ("t", [ Value.int 1 ]) ] with
  | Emma.Finished { ctx; _ } ->
      check_bag "last write wins" [ Value.int 2 ] (Emma.Eval.read_table ctx "out")
  | _ -> Alcotest.fail "run failed"

let test_pagerank_epsilon_variant () =
  let cfg = Emma_workloads.Graph_gen.default ~n_vertices:25 in
  let vertices = Emma_workloads.Graph_gen.undirected_adjacency ~seed:4 cfg in
  let params = Emma_programs.Pagerank.default_params ~n_pages:25 in
  let prog = Emma_programs.Pagerank.program_with_epsilon ~epsilon:1e-8 params in
  let algo = Emma.parallelize prog in
  let native, _ = Emma.run_native algo ~tables:[ ("vertices", vertices) ] in
  (* converged ranks ≈ fixed-iteration oracle run long enough *)
  let oracle =
    Emma_programs.Pagerank.reference ~params:{ params with iterations = 80 } ~vertices
  in
  let table rows =
    rows
    |> List.map (fun r ->
           (Value.to_int (Value.field r "id"), Value.to_float (Value.field r "rank")))
    |> List.sort compare
  in
  let a = table (Value.to_bag native) and b = table oracle in
  List.iter2
    (fun (i, r1) (j, r2) ->
      Alcotest.(check int) "id" i j;
      Alcotest.(check bool) "converged rank close" true (Float.abs (r1 -. r2) < 1e-5))
    a b;
  (* and the engine agrees with native *)
  let v = run_value prog [ ("vertices", vertices) ] in
  let c = table (Value.to_bag v) in
  List.iter2
    (fun (i, r1) (j, r2) ->
      Alcotest.(check int) "id" i j;
      Alcotest.(check bool) "engine close" true (Float.abs (r1 -. r2) < 1e-9))
    a c

let test_stateful_read_snapshot () =
  (* binding bag() then mutating the state: the binding must keep the
     snapshot, exactly as the native evaluator binds eagerly *)
  let prog =
    S.program
      ~ret:S.(tup [ count (with_filter (lam "c" (fun c -> field c "v" > int_ 0)) (var "before"));
                    count (with_filter (lam "c" (fun c -> field c "v" > int_ 0))
                             (state_bag (var "st"))) ])
      [ S.s_let "st"
          (S.stateful ~key:(S.lam "x" (fun x -> S.field x "id")) (S.read "cells"));
        S.s_let "before" (S.state_bag (S.var "st"));
        S.s_let "_d"
          (S.update (S.var "st")
             (S.lam "c" (fun c ->
                  S.some_ (S.record [ ("id", S.field c "id"); ("v", S.int_ 1) ])))) ]
  in
  let cells =
    [ Value.record [ ("id", Value.int 1); ("v", Value.int 0) ];
      Value.record [ ("id", Value.int 2); ("v", Value.int 0) ] ]
  in
  let tables = [ ("cells", cells) ] in
  let algo = Emma.parallelize prog in
  let native, _ = Emma.run_native algo ~tables in
  check_value "native snapshot semantics" (Value.tuple [ Value.int 0; Value.int 2 ]) native;
  check_value "engine matches native snapshot" native (run_value prog tables)

let test_execution_trace () =
  let prog =
    S.program
      ~ret:S.(count (with_filter (lam "x" (fun x -> field x "a" > int_ 0)) (read "t")))
      []
  in
  let ctx = Emma.Eval.create_ctx () in
  Emma.Eval.register_table ctx "t" (List.init 10 (fun i -> Helpers.row (i - 5) 0));
  let eng =
    Emma_engine.Exec.create ~cluster:(Emma_engine.Cluster.laptop ())
      ~profile:Emma_engine.Cluster.spark_like ctx
  in
  let _ = Emma_engine.Exec.run eng (Emma.parallelize prog).Emma.compiled in
  let ops = List.map (fun e -> e.Emma_engine.Exec.ev_op) (Emma_engine.Exec.trace eng) in
  Alcotest.(check (list string)) "operator order" [ "filter"; "fold" ] ops;
  let filter_ev = List.hd (Emma_engine.Exec.trace eng) in
  Alcotest.(check (float 1e-9)) "filter saw all records" 10.0
    filter_ev.Emma_engine.Exec.ev_records

let suite =
  [ ( "engine_edge",
      [ Alcotest.test_case "empty table folds" `Quick test_empty_table;
        Alcotest.test_case "empty join sides" `Quick test_empty_join_sides;
        Alcotest.test_case "zero-iteration loop" `Quick test_zero_iteration_loop;
        Alcotest.test_case "unknown table" `Quick test_unknown_table_is_failure;
        Alcotest.test_case "branch scoping" `Quick test_shadowing_in_branches;
        Alcotest.test_case "distinct of records" `Quick test_distinct_of_records;
        Alcotest.test_case "multiset minus" `Quick test_minus_on_engine;
        Alcotest.test_case "single-key group" `Quick test_group_of_single_key;
        Alcotest.test_case "nested loops" `Quick test_nested_loops;
        Alcotest.test_case "write overwrites" `Quick test_write_overwrites;
        Alcotest.test_case "pagerank epsilon variant" `Quick test_pagerank_epsilon_variant;
        Alcotest.test_case "execution trace" `Quick test_execution_trace;
        Alcotest.test_case "stateful read snapshot" `Quick test_stateful_read_snapshot ] )
  ]
