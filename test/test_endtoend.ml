(* End-to-end property: random *driver programs* (loops, assignments,
   joins, groupings, exists) must produce identical results under
   - native host-language evaluation,
   - the engine with every optimization enabled,
   - the engine with every optimization disabled,
   on both engine profiles. This is the repository's strongest invariant:
   the whole compiler pipeline and the distributed runtime are
   semantics-preserving. *)

module Value = Emma_value.Value
module S = Emma_lang.Surface
module Pipeline = Emma_compiler.Pipeline
open Helpers

(* --- random program generator ----------------------------------------- *)

(* integer-valued aggregate over a pipeline; programs accumulate these in
   a loop variable so results are scalars (no float-order sensitivity) *)
let agg_gen pipeline =
  QCheck2.Gen.oneofl
    [ S.count pipeline;
      S.sum (S.map (S.lam "x" (fun x -> S.field x "a")) pipeline);
      S.(if_ (exists (lam "x" (fun x -> field x "a" > int_ 3)) pipeline) (int_ 1) (int_ 0)) ]

let joinish_gen =
  let open QCheck2.Gen in
  oneofl
    [ (* join t1 x t2 on b *)
      S.(
        for_
          [ gen "x" (read "t1");
            gen "y" (read "t2");
            when_ (field (var "x") "b" = field (var "y") "b") ]
          ~yield:(record [ ("a", field (var "x") "a" + field (var "y") "a"); ("b", field (var "x") "b") ]));
      (* semijoin via exists *)
      S.(
        for_
          [ gen "x" (read "t1");
            when_ (exists (lam "y" (fun y -> field y "b" = field (var "x") "b")) (read "t2")) ]
          ~yield:(var "x"));
      (* group + fold *)
      S.(
        for_
          [ gen "g" (group_by (lam "x" (fun x -> field x "b")) (read "t1")) ]
          ~yield:
            (record
               [ ("a", sum (map (lam "x" (fun x -> field x "a")) (field (var "g") "values")));
                 ("b", field (var "g") "key") ]));
      (* plain pipeline *)
      S.(with_filter (lam "x" (fun x -> field x "a" > int_ 0)) (read "t1"));
      (* union & distinct *)
      S.(distinct (union (read "t1") (read "t2"))) ]

let program_gen =
  let open QCheck2.Gen in
  joinish_gen >>= fun bag1 ->
  joinish_gen >>= fun bag2 ->
  agg_gen (S.var "data") >>= fun agg ->
  int_range 1 3 >|= fun iters ->
  S.program
    ~ret:S.(var "acc")
    [ S.s_let "data" bag1;
      S.s_let "other" bag2;
      S.s_var "acc" S.(count (var "other"));
      S.s_var "i" (S.int_ 0);
      S.while_
        S.(var "i" < int_ iters)
        [ S.assign "acc" S.(var "acc" + agg);
          S.s_if
            S.(var "acc" > int_ 100)
            [ S.assign "acc" S.(var "acc" - int_ 7) ]
            [ S.assign "acc" S.(var "acc" + int_ 1) ];
          S.assign "i" S.(var "i" + int_ 1) ] ]

let tables_gen =
  QCheck2.Gen.(pair Helpers.rows_gen Helpers.rows_gen)
  |> QCheck2.Gen.map (fun (r1, r2) -> [ ("t1", r1); ("t2", r2) ])

let run_engine ~profile ~opts prog tables =
  let algo = Emma.parallelize ~opts prog in
  let rt =
    Emma.{ cluster = Emma_engine.Cluster.laptop (); profile; timeout_s = None }
  in
  match Emma.run_on rt algo ~tables with
  | Emma.Finished { value; _ } -> Ok value
  | Emma.Failed { reason; _ } -> Error reason
  | Emma.Timed_out _ -> Error "timeout"
  | Emma.Cancelled _ -> Error "cancelled"

let agree prog tables =
  let algo = Emma.parallelize prog in
  let native, _ = Emma.run_native algo ~tables in
  let runs =
    [ run_engine ~profile:Emma_engine.Cluster.spark_like ~opts:Pipeline.default_opts prog tables;
      run_engine ~profile:Emma_engine.Cluster.spark_like ~opts:Pipeline.no_opts prog tables;
      run_engine ~profile:Emma_engine.Cluster.flink_like ~opts:Pipeline.default_opts prog tables;
      run_engine ~profile:Emma_engine.Cluster.flink_like
        ~opts:(Pipeline.with_ ~cache:false ~partition:false ()) prog tables ]
  in
  List.for_all
    (function Ok v -> Value.equal native v | Error _ -> false)
    runs

let prop_full_agreement =
  Helpers.qcheck_case "native = engine(all opts) = engine(no opts), both profiles" ~count:40
    QCheck2.Gen.(pair program_gen tables_gen)
    (fun (prog, tables) -> agree prog tables)

(* deterministic regression corpus: one program per generator branch *)
let test_corpus () =
  let tables = [ ("t1", List.init 9 (fun i -> Helpers.row (i - 4) (i mod 3)));
                 ("t2", List.init 7 (fun i -> Helpers.row i (i mod 2))) ] in
  let progs =
    let mk bag =
      S.program ~ret:S.(count (var "d") + sum (map (lam "x" (fun x -> field x "a")) (var "d")))
        [ S.s_let "d" bag ]
    in
    [ mk S.(for_
              [ gen "x" (read "t1"); gen "y" (read "t2");
                when_ (field (var "x") "b" = field (var "y") "b") ]
              ~yield:(record [ ("a", field (var "x") "a"); ("b", field (var "y") "b") ]));
      mk S.(for_
              [ gen "x" (read "t1");
                when_ (exists (lam "y" (fun y -> field y "b" = field (var "x") "b")) (read "t2")) ]
              ~yield:(var "x"));
      mk S.(distinct (union (read "t1") (read "t2")));
      mk S.(minus (read "t1") (read "t2")) ]
  in
  List.iteri
    (fun i prog ->
      if not (agree prog tables) then Alcotest.failf "corpus program %d disagreed" i)
    progs

let suite =
  [ ( "end_to_end",
      [ prop_full_agreement; Alcotest.test_case "regression corpus" `Quick test_corpus ] ) ]
