module Value = Emma_value.Value

let test_accessors () =
  Alcotest.(check int) "to_int" 42 (Value.to_int (Value.int 42));
  Alcotest.(check bool) "to_bool" true (Value.to_bool (Value.bool true));
  Alcotest.(check (float 0.0)) "to_number promotes int" 3.0 (Value.to_number (Value.int 3));
  Helpers.check_value "proj" (Value.int 2) (Value.proj (Value.tuple [ Value.int 1; Value.int 2 ]) 1);
  Helpers.check_value "field"
    (Value.string "x")
    (Value.field (Value.record [ ("name", Value.string "x") ]) "name")

let test_accessor_errors () =
  let expect_type_error f =
    match f () with
    | exception Value.Type_error _ -> ()
    | _ -> Alcotest.fail "expected Type_error"
  in
  expect_type_error (fun () -> Value.to_int (Value.float 1.0));
  expect_type_error (fun () -> Value.field (Value.record [ ("a", Value.int 1) ]) "b");
  expect_type_error (fun () -> Value.proj (Value.tuple [ Value.int 1 ]) 3);
  expect_type_error (fun () -> Value.to_bag (Value.int 1))

let test_set_field () =
  let r = Value.record [ ("a", Value.int 1); ("b", Value.int 2) ] in
  Helpers.check_value "set_field updates"
    (Value.record [ ("a", Value.int 9); ("b", Value.int 2) ])
    (Value.set_field r "a" (Value.int 9));
  match Value.set_field r "zz" Value.unit with
  | exception Value.Type_error _ -> ()
  | _ -> Alcotest.fail "expected Type_error for unknown field"

let test_bag_order_insensitive () =
  let b1 = Value.bag [ Value.int 1; Value.int 2; Value.int 2 ] in
  let b2 = Value.bag [ Value.int 2; Value.int 1; Value.int 2 ] in
  let b3 = Value.bag [ Value.int 1; Value.int 2 ] in
  Alcotest.(check bool) "equal bags" true (Value.equal b1 b2);
  Alcotest.(check bool) "multiplicity matters" false (Value.equal b1 b3);
  Alcotest.(check int) "hash agrees" (Value.hash b1) (Value.hash b2)

let test_int_float_distinct () =
  Alcotest.(check bool) "Int 1 <> Float 1." false
    (Value.equal (Value.int 1) (Value.float 1.0))

let test_byte_size () =
  Alcotest.(check int) "int" 8 (Value.byte_size (Value.int 1));
  Alcotest.(check int) "blob" 100_000 (Value.byte_size (Value.blob ~bytes:100_000 ~tag:1));
  Alcotest.(check int) "string" (8 + 5) (Value.byte_size (Value.string "hello"));
  Alcotest.(check int) "tuple" (8 + 16) (Value.byte_size (Value.tuple [ Value.int 1; Value.int 2 ]));
  Alcotest.(check int) "vector" (8 + 24) (Value.byte_size (Value.vector [| 1.0; 2.0; 3.0 |]))

(* Random value generator for order/hash laws. *)
let value_gen =
  let open QCheck2.Gen in
  sized @@ fix (fun self n ->
      let scalar =
        oneof
          [ pure Value.unit;
            map Value.bool bool;
            map Value.int (int_range (-5) 5);
            map Value.float (oneofl [ 0.0; 1.5; -2.25 ]);
            map Value.string (string_size ~gen:(char_range 'a' 'c') (int_bound 3)) ]
      in
      if n <= 0 then scalar
      else
        oneof
          [ scalar;
            map Value.tuple (list_size (int_bound 3) (self (n / 2)));
            map Value.bag (list_size (int_bound 3) (self (n / 2)));
            map (fun v -> Value.some v) (self (n / 2)) ])

let prop_compare_total =
  Helpers.qcheck_case "compare is a total order (antisymmetry)"
    QCheck2.Gen.(pair value_gen value_gen)
    (fun (a, b) ->
      let c1 = Value.compare a b and c2 = Value.compare b a in
      (c1 = 0) = (c2 = 0) && (c1 > 0) = (c2 < 0))

let prop_hash_consistent =
  Helpers.qcheck_case "equal values hash equally"
    QCheck2.Gen.(pair value_gen value_gen)
    (fun (a, b) -> (not (Value.equal a b)) || Value.hash a = Value.hash b)

let prop_compare_reflexive =
  Helpers.qcheck_case "compare is reflexive" value_gen (fun v -> Value.compare v v = 0)

let prop_bag_permutation =
  Helpers.qcheck_case "bags are permutation-invariant"
    QCheck2.Gen.(list_size (int_bound 6) value_gen)
    (fun vs -> Value.equal (Value.bag vs) (Value.bag (List.rev vs)))

let suite =
  [ ( "value",
      [ Alcotest.test_case "accessors" `Quick test_accessors;
        Alcotest.test_case "accessor errors" `Quick test_accessor_errors;
        Alcotest.test_case "set_field" `Quick test_set_field;
        Alcotest.test_case "bag order-insensitive" `Quick test_bag_order_insensitive;
        Alcotest.test_case "int/float distinct" `Quick test_int_float_distinct;
        Alcotest.test_case "byte_size" `Quick test_byte_size;
        prop_compare_total;
        prop_hash_consistent;
        prop_compare_reflexive;
        prop_bag_permutation ] ) ]
