# Convenience targets; everything is plain dune underneath.

.PHONY: all build test test-parallel test-parallel8 explain-golden trace-check chaos-smoke mem-smoke udf-smoke pool-smoke serve-smoke overload-smoke crash-smoke check bench bench-scaleup bench-faults bench-memory bench-udf bench-serve bench-overload bench-recovery clean

all: build

build:
	dune build

# Tier-1 suite. helpers.ml reads EMMA_TEST_DOMAINS (default 2), so this
# already exercises the multicore execution path.
test:
	dune runtest

# Same suite pinned to 4 domains — the configuration the determinism and
# fault-recovery tests are written against.
test-parallel:
	EMMA_TEST_DOMAINS=4 dune runtest --force

# And pinned to 8 domains: oversubscribed on most hosts, which is exactly
# the preemption-heavy schedule the work-stealing pool must stay
# deterministic under.
test-parallel8:
	EMMA_TEST_DOMAINS=8 dune runtest --force

# Golden-file checks for `emma explain` (part of the default `dune runtest`;
# this target runs just that suite). Regenerate intentionally-changed goldens
# with EMMA_UPDATE_GOLDEN=1 dune runtest --force.
explain-golden:
	dune exec test/test_main.exe -- test explain_golden

# Tracer well-formedness and cost-model-invariance properties (also part of
# the default `dune runtest`).
trace-check:
	dune exec test/test_main.exe -- test trace

# One seeded chaos scenario (fault injection + loop checkpointing) per
# example program; the engine must recover transparently or the alias fails.
chaos-smoke:
	dune build @chaos-smoke --force

# TPC-H Q1 and k-means under a tiny per-slot memory budget with spilling
# on: spill counters must move and results must stay bit-identical.
mem-smoke:
	dune build @mem-smoke --force

# TPC-H Q1 and Q3 in both UDF modes (interpreted oracle vs staged-compiled):
# results and cost-model metrics must be bit-identical.
udf-smoke:
	dune build @udf-smoke --force

# Short scheduling stress of the work-stealing pool at 8 oversubscribed
# domains: nested trees, tiny-batch churn, exception storm, legacy-pool
# differential.
pool-smoke:
	dune build @pool-smoke --force

# Multi-tenant service gate: deterministic replay fingerprint, plan-cache
# hits that never change a result, cache counters in every query's metrics.
serve-smoke:
	dune build @serve-smoke --force

# Robustness gate: Zipf burst under tight deadlines (nonzero sheds, no
# silent loss, fingerprint stable at 2 and 8 domains) plus a scripted
# circuit-breaker open/half-open/close cycle.
overload-smoke:
	dune build @overload-smoke --force

# Durability gate: SIGKILL journaled serve runs at scripted append
# indices (incl. a torn write, a snapshot-based recovery and a double
# crash), recover each, and require the replay fingerprint and journal
# bytes to match an uninterrupted run exactly.
crash-smoke:
	dune build @crash-smoke --force

# The full pre-merge flow: build, tier-1 tests on 2, 4 and 8 domains,
# chaos smoke, memory smoke, UDF-mode differential smoke, pool stress,
# service-layer smoke, crash-recovery smoke.
check: build test test-parallel test-parallel8 chaos-smoke mem-smoke udf-smoke pool-smoke serve-smoke overload-smoke crash-smoke

bench:
	dune exec bench/main.exe

# Multicore wall-clock scale-up experiment (1/2/4/8 domains).
bench-scaleup:
	dune build @bench-scaleup --force

# Chaos & recovery-overhead experiment (fault-rate and checkpoint sweeps).
bench-faults:
	dune build @bench-faults --force

# Memory-governance experiment (budget, spill, OOM and eviction sweeps).
bench-memory:
	dune exec bench/main.exe -- memory

# Staged-UDF-compilation wall-clock experiment (writes BENCH_udf_compile.json).
bench-udf:
	dune exec bench/main.exe -- udf

# Multi-tenant service experiment: plan cache on vs off under a Zipf
# arrival trace (writes BENCH_serve.json).
bench-serve:
	dune exec bench/main.exe -- serve

# Overload-control experiment: burst trace under deadline-aware shedding +
# degradation vs the policy-off serve (writes BENCH_overload.json).
bench-overload:
	dune exec bench/main.exe -- overload

# Crash-recovery experiment: exhaustive crash-point injection sweep over
# a journaled serve trace + recovery time with/without snapshots (writes
# BENCH_recovery.json).
bench-recovery:
	dune exec bench/main.exe -- recovery

clean:
	dune clean
