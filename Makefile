# Convenience targets; everything is plain dune underneath.

.PHONY: all build test test-parallel bench bench-scaleup clean

all: build

build:
	dune build

# Tier-1 suite. helpers.ml reads EMMA_TEST_DOMAINS (default 2), so this
# already exercises the multicore execution path.
test:
	dune runtest

# Same suite pinned to 4 domains — the configuration the determinism and
# fault-recovery tests are written against.
test-parallel:
	EMMA_TEST_DOMAINS=4 dune runtest --force

bench:
	dune exec bench/main.exe

# Multicore wall-clock scale-up experiment (1/2/4/8 domains).
bench-scaleup:
	dune build @bench-scaleup --force

clean:
	dune clean
