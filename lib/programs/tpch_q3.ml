module S = Emma_lang.Surface
module Value = Emma_value.Value

type params = {
  customer_table : string;
  orders_table : string;
  lineitem_table : string;
  segment : string;
  cutoff : int;
}

let default_params =
  {
    customer_table = "customer";
    orders_table = "orders";
    lineitem_table = "lineitem";
    segment = "BUILDING";
    cutoff = Emma_workloads.Tpch_gen.date 1995 3 15;
  }

let program params =
  let open S in
  let joined =
    for_
      [ gen "c" (read params.customer_table);
        when_ (field (var "c") "mktSegment" = str params.segment);
        gen "o" (read params.orders_table);
        when_ (field (var "c") "custKey" = field (var "o") "custKey");
        when_ (field (var "o") "orderDate" < int_ params.cutoff);
        gen "l" (read params.lineitem_table);
        when_ (field (var "l") "orderKey" = field (var "o") "orderKey");
        when_ (field (var "l") "shipDate" > int_ params.cutoff) ]
      ~yield:
        (record
           [ ("orderKey", field (var "o") "orderKey");
             ("orderDate", field (var "o") "orderDate");
             ("shipPriority", field (var "o") "shipPriority");
             ("rev",
              field (var "l") "extendedPrice" * (float_ 1.0 - field (var "l") "discount")) ])
  in
  let result =
    for_
      [ gen "g"
          (group_by
             (lam "x" (fun x ->
                  tup [ field x "orderKey"; field x "orderDate"; field x "shipPriority" ]))
             joined) ]
      ~yield:
        (record
           [ ("orderKey", proj (field (var "g") "key") 0);
             ("revenue", sum (map (lam "x" (fun x -> field x "rev")) (field (var "g") "values")));
             ("orderDate", proj (field (var "g") "key") 1);
             ("shipPriority", proj (field (var "g") "key") 2) ])
  in
  program ~ret:(var "result") [ s_let "result" result; write "q3_out" (var "result") ]

let reference ~customer ~orders ~lineitem params =
  let building = Hashtbl.create 64 in
  List.iter
    (fun c ->
      if String.equal (Value.to_string_exn (Value.field c "mktSegment")) params.segment then
        Hashtbl.replace building (Value.to_int (Value.field c "custKey")) ())
    customer;
  let order_info = Hashtbl.create 256 in
  List.iter
    (fun o ->
      if
        Hashtbl.mem building (Value.to_int (Value.field o "custKey"))
        && Value.to_int (Value.field o "orderDate") < params.cutoff
      then
        Hashtbl.replace order_info
          (Value.to_int (Value.field o "orderKey"))
          ( Value.to_int (Value.field o "orderDate"),
            Value.to_int (Value.field o "shipPriority") ))
    orders;
  let revenue = Hashtbl.create 256 in
  List.iter
    (fun l ->
      let ok = Value.to_int (Value.field l "orderKey") in
      if Value.to_int (Value.field l "shipDate") > params.cutoff && Hashtbl.mem order_info ok
      then begin
        let r =
          Value.to_float (Value.field l "extendedPrice")
          *. (1.0 -. Value.to_float (Value.field l "discount"))
        in
        let cur = Option.value (Hashtbl.find_opt revenue ok) ~default:0.0 in
        Hashtbl.replace revenue ok (cur +. r)
      end)
    lineitem;
  Hashtbl.fold
    (fun ok rev acc ->
      let date, prio = Hashtbl.find order_info ok in
      Value.record
        [ ("orderKey", Value.Int ok);
          ("revenue", Value.Float rev);
          ("orderDate", Value.Int date);
          ("shipPriority", Value.Int prio) ]
      :: acc)
    revenue []
