(** Word count — the paper's §1 point of departure ("vanilla MapReduce is a
    perfect fit for generalized processing and aggregation of a single
    collection"). Documents are records [{id; words : bag of string}]; the
    program flattens them with a dependent generator and counts occurrences
    per word, which fold-group fusion compiles to the map-side-combining
    shape hand-written MapReduce programs use. *)

type params = { docs_table : string; output_table : string }

val default_params : params

val program : params -> Emma_lang.Expr.program
(** Writes [{word; n}] rows to [output_table] and returns them. *)

val docs_of_strings : string list -> Emma_value.Value.t list
(** Split whitespace-separated strings into document records. *)

val reference : Emma_value.Value.t list -> (string * int) list
(** Plain-OCaml oracle, sorted by word. *)
