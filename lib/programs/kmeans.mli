(** Lloyd's k-means clustering in Emma — the paper's Listing 4.

    The program text contains no parallelism primitives: the
    nearest-centroid search is a [minBy] over the [ctrds] driver variable
    (compiled into a broadcast variable), the new centroids are a plain
    group-then-fold (fold-group fusion turns it into an [aggBy]), and
    convergence is tested with a join between old and new centroids. *)

type params = {
  dim : int;
  epsilon : float;
  max_iters : int;
  points_table : string;
  centroids_table : string;
  output_table : string;
}

val default_params : params
(** 2-D points, epsilon 0.001, at most 20 iterations, tables
    ["points"] / ["centroids0"] / ["solutions"]. *)

val program : params -> Emma_lang.Expr.program
(** Inputs: [points_table] with records [{id; pos : vector}];
    [centroids_table] with records [{cid; pos}]. Writes the final cluster
    assignments to [output_table]; the program's value is the bag of final
    centroids. *)

val reference :
  params:params ->
  points:Emma_value.Value.t list ->
  centroids0:Emma_value.Value.t list ->
  Emma_value.Value.t list
(** Independent plain-OCaml Lloyd iteration used as a test oracle. *)
