(** TPC-H Query 4 in Emma — the paper's Listing 9 (Appendix A.2.2). The
    [exists] subquery retains SQL-level declarativity; unnesting turns it
    into a logical semi-join whose broadcast/repartition strategy the
    engine picks just-in-time, and the final per-priority count goes
    through fold-group fusion. *)

type params = {
  orders_table : string;
  lineitem_table : string;
  date_min : int;
  date_max : int;
}

val default_params : params
(** Tables ["orders"] / ["lineitem"], order-date window
    1993-07-01 to 1993-10-01 (TPC-H's specification of Q4). *)

val program : params -> Emma_lang.Expr.program
(** Writes [{orderPriority; orderCount}] rows to ["q4_out"] and returns
    them. *)
