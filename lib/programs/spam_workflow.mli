(** The data-parallel workflow of the paper's §5.1 (Listing 5): select the
    spam classifier minimizing the number of non-spam emails originating
    from blacklisted servers.

    This is the Figure-4 program: the [exists] predicate exercises
    unnesting (broadcast filter vs. repartition semi-join), [emails] and
    [blacklist] are loop-invariant (caching), both join sides key on [ip]
    (partition pulling), and the count is evaluated twice per iteration
    exactly as in the listing. *)

type params = {
  n_classifiers : int;
  emails_table : string;
  blacklist_table : string;
}

val default_params : params
(** 8 classifiers, tables ["emails_raw"] / ["blacklist_raw"]. *)

val is_spam : Emma_lang.Expr.expr -> Emma_lang.Expr.expr -> Emma_lang.Expr.expr
(** [is_spam email c]: classifier [c]'s spam predicate (a score
    threshold derived from the classifier index). *)

val extract_features : Emma_lang.Expr.expr
(** The feature-extraction UDF: reads the full email body and keeps
    [{id; ip; score; features}] with a feature payload of ~1/5 the body. *)

val program : params -> Emma_lang.Expr.program
(** Inputs: [emails_table] with [{id; ip; score; body}], [blacklist_table]
    with [{ip; info}]. The program's value is the pair
    [(best classifier index, its hit count)]. *)

val reference :
  params:params ->
  emails:Emma_value.Value.t list ->
  blacklist:Emma_value.Value.t list ->
  int * int
(** Independent oracle computing the same selection. *)
