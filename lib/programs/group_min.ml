(** The group-aggregation query of the paper's Appendix B (Fig. 5):

    {[ for (g <- dataset.groupBy(_.key))
       yield (g.key, g.values.map(_.value).min()) ]}

    With fold-group fusion the minimum is computed by map-side combiners;
    without it the full groups are shuffled and materialized — which is
    what makes the Pareto-skewed variant fail on a non-spilling engine. *)

module S = Emma_lang.Surface

type params = { dataset_table : string }

let default_params = { dataset_table = "dataset" }

let program params =
  let open S in
  let result =
    for_
      [ gen "g" (group_by (lam "x" (fun x -> field x "key")) (read params.dataset_table)) ]
      ~yield:
        (record
           [ ("key", field (var "g") "key");
             ("min",
              opt_get
                (min_by
                   (lam "v" (fun v -> to_float v))
                   (map (lam "x" (fun x -> field x "value")) (field (var "g") "values")))) ])
  in
  program ~ret:(var "r") [ s_let "r" result; write "group_min_out" (var "r") ]

(* ------------------------------------------------------------------ *)

module Value = Emma_value.Value

let reference rows =
  let mins : (int, int ref) Hashtbl.t = Hashtbl.create 64 in
  List.iter
    (fun r ->
      let k = Value.to_int (Value.field r "key") in
      let v = Value.to_int (Value.field r "value") in
      match Hashtbl.find_opt mins k with
      | Some m -> if v < !m then m := v
      | None -> Hashtbl.add mins k (ref v))
    rows;
  Hashtbl.fold
    (fun k m acc ->
      Value.record [ ("key", Value.Int k); ("min", Value.Int !m) ] :: acc)
    mins []
