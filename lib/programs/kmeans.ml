(** Lloyd's k-means in Emma — the paper's Listing 4.

    Nothing in the algorithm body mentions parallelism: the nearest-centroid
    search is an ordinary [minBy] over the [ctrds] driver variable (which
    the compiler turns into a broadcast variable), the new centroids are a
    plain group-then-fold (which fold-group fusion turns into [aggBy]), and
    the convergence test is a join between the old and new centroids. *)

module S = Emma_lang.Surface
module Expr = Emma_lang.Expr

type params = {
  dim : int;  (** point dimensionality, needed for the vector-sum unit *)
  epsilon : float;  (** convergence threshold on total centroid movement *)
  max_iters : int;  (** safety bound on iterations *)
  points_table : string;
  centroids_table : string;  (** initial centroids *)
  output_table : string;
}

let default_params =
  {
    dim = 2;
    epsilon = 0.001;
    max_iters = 20;
    points_table = "points";
    centroids_table = "centroids0";
    output_table = "solutions";
  }

(* nearest centroid for point [p], searching the [ctrds] driver variable *)
let nearest_cid p =
  S.(
    field
      (opt_get
         (min_by (lam "c" (fun c -> vdist (field c "pos") (field p "pos"))) (var "ctrds")))
      "cid")

let assign_clusters =
  (* for (p <- points) yield Solution(nearest.cid, p) *)
  S.(
    for_
      [ gen "p" (var "points") ]
      ~yield:(record [ ("cid", nearest_cid (var "p")); ("p", var "p") ]))

let program params =
  let open S in
  let new_centroids =
    (* for (clr <- clusters) yield Point(clr.key, sum/cnt) *)
    for_
      [ gen "clr" (group_by (lam "s" (fun s -> field s "cid")) assign_clusters) ]
      ~yield:
        (let_ "sum"
           (vsum ~dim:params.dim
              (map (lam "x" (fun x -> field (field x "p") "pos")) (field (var "clr") "values")))
           (fun sum_ ->
             let_ "cnt" (count (field (var "clr") "values")) (fun cnt ->
                 record
                   [ ("cid", field (var "clr") "key"); ("pos", vdiv sum_ (to_float cnt)) ])))
  in
  let total_change =
    (* sum of distances between same-id old and new centroids *)
    sum
      (for_
         [ gen "x" (var "ctrds");
           gen "y" (var "newCtrds");
           when_ (field (var "x") "cid" = field (var "y") "cid") ]
         ~yield:(vdist (field (var "x") "pos") (field (var "y") "pos")))
  in
  program
    ~ret:(var "ctrds")
    [ s_let "points" (read params.points_table);
      s_var "ctrds" (read params.centroids_table);
      s_var "change" (float_ infinity);
      s_var "iters" (int_ 0);
      while_
        ((var "change" > float_ params.epsilon) && (var "iters" < int_ params.max_iters))
        [ s_let "newCtrds" new_centroids;
          assign "change" total_change;
          assign "ctrds" (var "newCtrds");
          assign "iters" (var "iters" + int_ 1) ];
      write params.output_table assign_clusters ]

(* ------------------------------------------------------------------ *)
(* Independent oracle: plain-OCaml Lloyd iterations                      *)
(* ------------------------------------------------------------------ *)

module Value = Emma_value.Value
module Vec = Emma_util.Vec

let reference ~params ~points ~centroids0 =
  let pos r = Value.to_vector (Value.field r "pos") in
  let cid r = Value.to_int (Value.field r "cid") in
  let step ctrds =
    let assign p =
      List.fold_left
        (fun (best_c, best_d) c ->
          let d = Vec.dist (pos c) (pos p) in
          if d < best_d then (Some c, d) else (best_c, best_d))
        (None, infinity) ctrds
      |> fst |> Option.get
    in
    let sums = Hashtbl.create 8 in
    List.iter
      (fun p ->
        let c = cid (assign p) in
        let s, n =
          Option.value (Hashtbl.find_opt sums c) ~default:(Vec.zeros params.dim, 0)
        in
        Hashtbl.replace sums c (Vec.add s (pos p), n + 1))
      points;
    Hashtbl.fold
      (fun c (s, n) acc ->
        Value.record
          [ ("cid", Value.Int c); ("pos", Value.Vector (Vec.div_scalar s (float_of_int n))) ]
        :: acc)
      sums []
  in
  let rec loop ctrds change iters =
    if change <= params.epsilon || iters >= params.max_iters then ctrds
    else
      let next = step ctrds in
      let change =
        List.fold_left
          (fun acc x ->
            match List.find_opt (fun y -> cid y = cid x) next with
            | Some y -> acc +. Vec.dist (pos x) (pos y)
            | None -> acc)
          0.0 ctrds
      in
      loop next change (iters + 1)
  in
  loop centroids0 infinity 0
