(** Connected Components in Emma — the paper's Listing 7 (Appendix A.1.2):
    semi-naive max-label propagation over a [StatefulBag], iterating while
    the changed delta is non-empty. The input graph must be symmetric. *)

type params = { vertices_table : string; output_table : string }

val default_params : params
(** Tables ["vertices"] / ["components"]. *)

val program : params -> Emma_lang.Expr.program
(** Input: [vertices_table] with records [{id; neighbors : bag of int}]
    (symmetric). Writes [{id; component}] to [output_table]; the program's
    value is the final state. *)

val reference : vertices:Emma_value.Value.t list -> Emma_value.Value.t list
(** Union-find oracle labelling each vertex with the maximum id of its
    component. *)
