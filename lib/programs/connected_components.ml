(** Connected Components in Emma — the paper's Listing 7 (Appendix A.1.2):
    semi-naive label propagation over a [StatefulBag]. Each vertex starts
    with its own id as component label; the changed delta seeds the next
    round's messages, and the loop runs until the delta is empty. *)

module S = Emma_lang.Surface

type params = { vertices_table : string; output_table : string }

let default_params = { vertices_table = "vertices"; output_table = "components" }

let program params =
  let open S in
  let initial_state =
    (* State(v.id, v.neighbors, component = v.id) *)
    for_
      [ gen "v" (var "vertices") ]
      ~yield:
        (record
           [ ("id", field (var "v") "id");
             ("neighbors", field (var "v") "neighbors");
             ("component", field (var "v") "id") ])
  in
  let messages =
    (* for (s <- delta; n <- s.neighbors) yield Message(n, s.component) *)
    for_
      [ gen "s" (var "delta"); gen "n" (field (var "s") "neighbors") ]
      ~yield:(record [ ("receiver", var "n"); ("component", field (var "s") "component") ])
  in
  let updates =
    for_
      [ gen "g" (group_by (lam "m" (fun m -> field m "receiver")) (var "msgs")) ]
      ~yield:
        (record
           [ ("id", field (var "g") "key");
             ("component",
              opt_get
                (max_by (lam "c" (fun c -> to_float c))
                   (map (lam "m" (fun m -> field m "component")) (field (var "g") "values"))))
           ])
  in
  program
    ~ret:(state_bag (var "state"))
    [ s_let "vertices" (read params.vertices_table);
      s_let "state" (stateful ~key:(lam "s" (fun s -> field s "id")) initial_state);
      s_var "delta" (state_bag (var "state"));
      while_
        (not_ (is_empty (var "delta")))
        [ s_let "msgs" messages;
          s_let "updates" updates;
          assign "delta"
            (update_msgs (var "state")
               ~msg_key:(lam "u" (fun u -> field u "id"))
               ~messages:(var "updates")
               (lam2 "s" "u" (fun s u ->
                    if_
                      (field u "component" > field s "component")
                      (some_
                         (record
                            [ ("id", field s "id");
                              ("neighbors", field s "neighbors");
                              ("component", field u "component") ]))
                      none_))) ];
      write params.output_table
        (for_
           [ gen "s" (state_bag (var "state")) ]
           ~yield:
             (record
                [ ("id", field (var "s") "id"); ("component", field (var "s") "component") ]))
    ]

(* ------------------------------------------------------------------ *)
(* Independent oracle: union-find                                       *)
(* ------------------------------------------------------------------ *)

module Value = Emma_value.Value

let reference ~vertices =
  let ids = List.map (fun v -> Value.to_int (Value.field v "id")) vertices in
  let parent = Hashtbl.create (List.length ids) in
  List.iter (fun i -> Hashtbl.replace parent i i) ids;
  let rec find i =
    let p = Hashtbl.find parent i in
    if p = i then i
    else begin
      let r = find p in
      Hashtbl.replace parent i r;
      r
    end
  in
  let union a b =
    let ra = find a and rb = find b in
    if ra <> rb then Hashtbl.replace parent (min ra rb) (max ra rb)
  in
  List.iter
    (fun v ->
      let id = Value.to_int (Value.field v "id") in
      List.iter
        (fun n -> union id (Value.to_int n))
        (Value.to_bag (Value.field v "neighbors")))
    vertices;
  List.map
    (fun v ->
      let id = Value.to_int (Value.field v "id") in
      Value.record [ ("id", Value.Int id); ("component", Value.Int (find id)) ])
    vertices
