(** TPC-H Query 3 ("shipping priority") in Emma — an extension beyond the
    paper's evaluation set, exercising the multi-join translation path: the
    customer–orders–lineitem three-way comprehension becomes a chain of two
    repartition equi-joins, and the revenue sum fuses into an [aggBy] keyed
    by (orderKey, orderDate, shipPriority). *)

type params = {
  customer_table : string;
  orders_table : string;
  lineitem_table : string;
  segment : string;
  cutoff : int;  (** orderDate < cutoff and shipDate > cutoff *)
}

val default_params : params
(** Segment BUILDING, cutoff 1995-03-15 (the TPC-H specification). *)

val program : params -> Emma_lang.Expr.program
(** Writes [{orderKey; revenue; orderDate; shipPriority}] rows to
    ["q3_out"] and returns them. *)

val reference :
  customer:Emma_value.Value.t list ->
  orders:Emma_value.Value.t list ->
  lineitem:Emma_value.Value.t list ->
  params ->
  Emma_value.Value.t list
(** Hand-written oracle. *)
