(** TPC-H Query 1 in Emma — the paper's Listing 8 (Appendix A.2.1).

    The six base aggregates are written as independent folds over the group
    values; fold-group fusion (banana split) collapses them into a single
    [aggBy], which is what other dataflow APIs force the programmer to
    build by hand. *)

module S = Emma_lang.Surface

type params = { lineitem_table : string; cutoff : int }

let default_params =
  { lineitem_table = "lineitem"; cutoff = Emma_workloads.Tpch_gen.date 1996 12 1 }

let program params =
  let open S in
  let filtered =
    for_
      [ gen "l" (read params.lineitem_table);
        when_ (field (var "l") "shipDate" <= int_ params.cutoff) ]
      ~yield:(var "l")
  in
  let values = field (var "g") "values" in
  let result =
    for_
      [ gen "g"
          (group_by
             (lam "l" (fun l -> tup [ field l "returnFlag"; field l "lineStatus" ]))
             filtered) ]
      ~yield:
        (let_ "sumQty" (sum (map (lam "l" (fun l -> field l "quantity")) values))
           (fun sum_qty ->
             let_ "sumBasePrice" (sum (map (lam "l" (fun l -> field l "extendedPrice")) values))
               (fun sum_base ->
                 let_ "sumDiscPrice"
                   (sum
                      (map
                         (lam "l" (fun l ->
                              field l "extendedPrice" * (float_ 1.0 - field l "discount")))
                         values))
                   (fun sum_disc_price ->
                     let_ "sumCharge"
                       (sum
                          (map
                             (lam "l" (fun l ->
                                  field l "extendedPrice"
                                  * (float_ 1.0 - field l "discount")
                                  * (float_ 1.0 + field l "tax")))
                             values))
                       (fun sum_charge ->
                         let_ "countOrder" (count values) (fun count_order ->
                             let_ "sumDiscount"
                               (sum (map (lam "l" (fun l -> field l "discount")) values))
                               (fun sum_discount ->
                                 record
                                   [ ("returnFlag", proj (field (var "g") "key") 0);
                                     ("lineStatus", proj (field (var "g") "key") 1);
                                     ("sumQty", sum_qty);
                                     ("sumBasePrice", sum_base);
                                     ("sumDiscPrice", sum_disc_price);
                                     ("sumCharge", sum_charge);
                                     ("avgQty", sum_qty / to_float count_order);
                                     ("avgPrice", sum_base / to_float count_order);
                                     ("avgDisc", sum_discount / to_float count_order);
                                     ("countOrder", count_order) ])))))))
  in
  program ~ret:(var "result") [ s_let "result" result; write "q1_out" (var "result") ]
