(** TPC-H Query 4 in Emma — the paper's Listing 9 (Appendix A.2.2).

    The [exists] subquery keeps the SQL level of declarativity; the
    unnesting rule turns it into a logical semi-join whose execution
    strategy (broadcast vs. repartition) the engine picks just-in-time.
    The final count per priority goes through fold-group fusion. *)

module S = Emma_lang.Surface

type params = {
  orders_table : string;
  lineitem_table : string;
  date_min : int;
  date_max : int;
}

let default_params =
  {
    orders_table = "orders";
    lineitem_table = "lineitem";
    date_min = Emma_workloads.Tpch_gen.date 1993 7 1;
    date_max = Emma_workloads.Tpch_gen.date 1993 10 1;
  }

let program params =
  let open S in
  let join =
    for_
      [ gen "o" (read params.orders_table);
        when_
          ((field (var "o") "orderDate" >= int_ params.date_min)
          && (field (var "o") "orderDate" < int_ params.date_max));
        when_
          (exists
             (lam "li" (fun li ->
                  (field li "orderKey" = field (var "o") "orderKey")
                  && (field li "commitDate" < field li "receiptDate")))
             (read params.lineitem_table)) ]
      ~yield:(record [ ("orderPriority", field (var "o") "orderPriority") ])
  in
  let result =
    for_
      [ gen "g" (group_by (lam "x" (fun x -> field x "orderPriority")) join) ]
      ~yield:
        (record
           [ ("orderPriority", field (var "g") "key");
             ("orderCount", count (field (var "g") "values")) ])
  in
  program ~ret:(var "result") [ s_let "result" result; write "q4_out" (var "result") ]
