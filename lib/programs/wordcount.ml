module S = Emma_lang.Surface
module Value = Emma_value.Value

type params = { docs_table : string; output_table : string }

let default_params = { docs_table = "docs"; output_table = "wordcounts" }

let program params =
  let open S in
  let result =
    for_
      [ gen "g"
          (group_by
             (lam "w" (fun w -> w))
             (* flatten documents into words: a dependent generator *)
             (for_
                [ gen "d" (read params.docs_table); gen "w" (field (var "d") "words") ]
                ~yield:(var "w"))) ]
      ~yield:
        (record
           [ ("word", field (var "g") "key"); ("n", count (field (var "g") "values")) ])
  in
  program ~ret:(var "result") [ s_let "result" result; write params.output_table (var "result") ]

let docs_of_strings texts =
  List.mapi
    (fun i text ->
      let words =
        String.split_on_char ' ' text
        |> List.filter (fun w -> not (String.equal w ""))
        |> List.map (fun w -> Value.String w)
      in
      Value.record [ ("id", Value.Int i); ("words", Value.bag words) ])
    texts

let reference docs =
  let counts : (string, int ref) Hashtbl.t = Hashtbl.create 64 in
  List.iter
    (fun d ->
      List.iter
        (fun w ->
          let w = Value.to_string_exn w in
          match Hashtbl.find_opt counts w with
          | Some r -> incr r
          | None -> Hashtbl.add counts w (ref 1))
        (Value.to_bag (Value.field d "words")))
    docs;
  Hashtbl.fold (fun w r acc -> (w, !r) :: acc) counts [] |> List.sort compare
