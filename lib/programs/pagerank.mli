(** PageRank in Emma — the paper's Listing 6 (Appendix A.1.1).

    Ranks live in a [StatefulBag] keyed by vertex id; each iteration joins
    ranks with the adjacency lists, fans rank messages out to neighbors
    (a dependent generator compiled to a flatMap), sums messages per
    receiver (fused to [aggBy]) and updates the state with the damped
    formula. Vertices that receive no messages keep their rank — the
    message-driven semantics of the listing. *)

type params = {
  damping : float;
  iterations : int;
  n_pages : int;
  vertices_table : string;
  output_table : string;
}

val default_params : n_pages:int -> params
(** Damping 0.85, 10 iterations, tables ["vertices"] / ["ranks"]. *)

val program : params -> Emma_lang.Expr.program
(** Input: [vertices_table] with records [{id; neighbors : bag of int}].
    Writes final ranks [{id; rank}] to [output_table] and returns them. *)

val program_with_epsilon :
  ?epsilon:float -> ?max_iters:int -> params -> Emma_lang.Expr.program
(** Convergence-driven variant (the appendix's suggested termination
    criterion): iterates until the summed absolute rank change falls below
    [epsilon], joining each round's updates against the current state to
    observe the change. The [iterations] field of [params] is ignored. *)

val reference :
  params:params -> vertices:Emma_value.Value.t list -> Emma_value.Value.t list
(** Independent plain-OCaml PageRank with the same message semantics. *)
