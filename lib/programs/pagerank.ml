(** PageRank in Emma — the paper's Listing 6 (Appendix A.1.1).

    Ranks live in a [StatefulBag] keyed by vertex id. Each iteration joins
    the current ranks with the adjacency lists, fans a [RankMessage] out to
    every neighbor (a dependent generator — the compiler emits a flatMap),
    aggregates the messages per receiving vertex (fold-group fusion turns
    the [groupBy]+[sum] into an [aggBy]), and point-wise updates the rank
    state with the damped formula. *)

module S = Emma_lang.Surface

type params = {
  damping : float;
  iterations : int;
  n_pages : int;
  vertices_table : string;
  output_table : string;
}

let default_params ~n_pages =
  { damping = 0.85; iterations = 10; n_pages; vertices_table = "vertices"; output_table = "ranks" }

let program params =
  let open S in
  let initial_ranks =
    (* every page starts at rank 1/N *)
    for_
      [ gen "v" (var "vertices") ]
      ~yield:
        (record
           [ ("id", field (var "v") "id");
             ("rank", float_ (1.0 /. float_of_int params.n_pages)) ])
  in
  let messages =
    (* for (p <- ranks.bag(); v <- vertices; n <- v.neighbors; if p.id == v.id)
       yield RankMessage(n, p.rank / v.neighbors.count()) *)
    for_
      [ gen "p" (state_bag (var "ranks"));
        gen "v" (var "vertices");
        when_ (field (var "p") "id" = field (var "v") "id");
        gen "n" (field (var "v") "neighbors") ]
      ~yield:
        (record
           [ ("vertex", var "n");
             ("rank",
              field (var "p") "rank" / to_float (count (field (var "v") "neighbors"))) ])
  in
  let updates =
    for_
      [ gen "g" (group_by (lam "m" (fun m -> field m "vertex")) (var "messages")) ]
      ~yield:
        (let_ "inRanks" (sum (map (lam "m" (fun m -> field m "rank")) (field (var "g") "values")))
           (fun in_ranks ->
             record
               [ ("id", field (var "g") "key");
                 ("rank",
                  float_ ((1.0 -. params.damping) /. float_of_int params.n_pages)
                  + (float_ params.damping * in_ranks)) ]))
  in
  program
    ~ret:(state_bag (var "ranks"))
    [ s_let "vertices" (read params.vertices_table);
      s_let "ranks"
        (stateful ~key:(lam "r" (fun r -> field r "id")) initial_ranks);
      s_var "iter" (int_ 0);
      while_
        (var "iter" < int_ params.iterations)
        [ s_let "messages" messages;
          s_let "updates" updates;
          s_let "_delta"
            (update_msgs (var "ranks")
               ~msg_key:(lam "u" (fun u -> field u "id"))
               ~messages:(var "updates")
               (lam2 "s" "u" (fun s u ->
                    some_ (record [ ("id", field s "id"); ("rank", field u "rank") ]))));
          assign "iter" (var "iter" + int_ 1) ];
      write params.output_table (state_bag (var "ranks")) ]

(* Variant with a convergence criterion instead of a fixed iteration
   count, as the appendix notes "in principle a termination criterion
   based on global rank change can be used as well": the loop runs until
   the summed absolute rank change of an iteration's delta drops below
   epsilon. The delta bag is exactly what the StatefulBag update returns,
   so the criterion costs one extra fold per iteration. *)
let program_with_epsilon ?(epsilon = 1e-6) ?(max_iters = 50) params =
  let open S in
  let initial_ranks =
    for_
      [ gen "v" (var "vertices") ]
      ~yield:
        (record
           [ ("id", field (var "v") "id");
             ("rank", float_ (1.0 /. float_of_int params.n_pages)) ])
  in
  let messages =
    for_
      [ gen "p" (state_bag (var "ranks"));
        gen "v" (var "vertices");
        when_ (field (var "p") "id" = field (var "v") "id");
        gen "n" (field (var "v") "neighbors") ]
      ~yield:
        (record
           [ ("vertex", var "n");
             ("rank",
              field (var "p") "rank" / to_float (count (field (var "v") "neighbors"))) ])
  in
  let updates =
    for_
      [ gen "g" (group_by (lam "m" (fun m -> field m "vertex")) (var "messages"));
        gen "p" (state_bag (var "ranks"));
        when_ (field (var "p") "id" = field (var "g") "key") ]
      ~yield:
        (let_ "inRanks" (sum (map (lam "m" (fun m -> field m "rank")) (field (var "g") "values")))
           (fun in_ranks ->
             record
               [ ("id", field (var "g") "key");
                 ("old", field (var "p") "rank");
                 ("rank",
                  float_ ((1.0 -. params.damping) /. float_of_int params.n_pages)
                  + (float_ params.damping * in_ranks)) ]))
  in
  program
    ~ret:(state_bag (var "ranks"))
    [ s_let "vertices" (read params.vertices_table);
      s_let "ranks" (stateful ~key:(lam "r" (fun r -> field r "id")) initial_ranks);
      s_var "change" (float_ infinity);
      s_var "iter" (int_ 0);
      while_
        ((var "change" > float_ epsilon) && (var "iter" < int_ max_iters))
        [ s_let "messages" messages;
          s_let "updates" updates;
          assign "change"
            (sum
               (for_
                  [ gen "u" (var "updates") ]
                  ~yield:
                    (let_ "d" (field (var "u") "rank" - field (var "u") "old") (fun d ->
                         if_ (d < float_ 0.0) (float_ 0.0 - d) d))));
          s_let "_delta"
            (update_msgs (var "ranks")
               ~msg_key:(lam "u" (fun u -> field u "id"))
               ~messages:(var "updates")
               (lam2 "s" "u" (fun s u ->
                    some_ (record [ ("id", field s "id"); ("rank", field u "rank") ]))));
          assign "iter" (var "iter" + int_ 1) ];
      write params.output_table (state_bag (var "ranks")) ]

(* ------------------------------------------------------------------ *)
(* Independent oracle                                                    *)
(* ------------------------------------------------------------------ *)

module Value = Emma_value.Value

(* Plain-OCaml PageRank with the same "message" semantics: a vertex that
   receives no messages keeps its previous rank (the listing's update is
   message-driven). *)
let reference ~params ~vertices =
  let n = List.length vertices in
  let adjacency =
    List.map
      (fun v ->
        ( Value.to_int (Value.field v "id"),
          List.map Value.to_int (Value.to_bag (Value.field v "neighbors")) ))
      vertices
  in
  let ranks = Hashtbl.create n in
  List.iter (fun (id, _) -> Hashtbl.replace ranks id (1.0 /. float_of_int params.n_pages)) adjacency;
  for _ = 1 to params.iterations do
    let incoming = Hashtbl.create n in
    List.iter
      (fun (id, ns) ->
        match ns with
        | [] -> ()
        | ns ->
            let share = Hashtbl.find ranks id /. float_of_int (List.length ns) in
            List.iter
              (fun m ->
                let cur = Option.value (Hashtbl.find_opt incoming m) ~default:0.0 in
                Hashtbl.replace incoming m (cur +. share))
              ns)
      adjacency;
    Hashtbl.iter
      (fun id total ->
        if Hashtbl.mem ranks id then
          Hashtbl.replace ranks id
            (((1.0 -. params.damping) /. float_of_int params.n_pages)
            +. (params.damping *. total)))
      incoming
  done;
  Hashtbl.fold
    (fun id r acc -> Value.record [ ("id", Value.Int id); ("rank", Value.Float r) ] :: acc)
    ranks []
