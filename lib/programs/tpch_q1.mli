(** TPC-H Query 1 in Emma — the paper's Listing 8 (Appendix A.2.1). The six
    base aggregates are written as independent folds over the group values;
    banana-split fuses them into a single [aggBy], which other dataflow
    APIs force the programmer to assemble by hand. *)

type params = { lineitem_table : string; cutoff : int }

val default_params : params
(** Table ["lineitem"], shipDate cutoff 1996-12-01 (the paper's
    predicate). *)

val program : params -> Emma_lang.Expr.program
(** Writes the aggregate rows to ["q1_out"] and returns them: one record
    per (returnFlag, lineStatus) with sums, averages and the count. *)
