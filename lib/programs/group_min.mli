(** The group-aggregation query of the paper's Appendix B (Figure 5):
    minimum value per key. With fold-group fusion the minimum is computed
    by map-side combiners; without it the full groups are shuffled and
    materialized, which is what breaks the Pareto-skewed variant on a
    non-spilling engine. *)

type params = { dataset_table : string }

val default_params : params
(** Table ["dataset"] with records [{key; value; payload}]. *)

val program : params -> Emma_lang.Expr.program
(** Writes [{key; min}] rows to ["group_min_out"] and returns them. *)

val reference : Emma_value.Value.t list -> Emma_value.Value.t list
(** Plain-OCaml oracle. *)
