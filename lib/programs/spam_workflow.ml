(** The data-parallel workflow of the paper's §5.1 (Listing 5): select the
    spam classifier minimizing the number of non-spam emails that originate
    from blacklisted servers.

    The workflow reads the email corpus, extracts features (an expensive
    map over ~100 KB bodies), reads the blacklist, and loops over the
    candidate classifiers. The inner [exists] predicate is the unnesting
    showcase (broadcast filter vs. repartition semi-join), [emails] and
    [blacklist] are loop-invariant (caching), and both sides of the join
    key on [ip] (partition pulling). The count is evaluated twice per
    iteration, exactly as in Listing 5 lines 20-21. *)

module S = Emma_lang.Surface

type params = {
  n_classifiers : int;
  emails_table : string;
  blacklist_table : string;
}

let default_params =
  { n_classifiers = 8; emails_table = "emails_raw"; blacklist_table = "blacklist_raw" }

(* Classifier [i] flags an email as spam when its score exceeds a
   threshold derived from [i]; emails the classifier does NOT flag are the
   "non-spam" set. *)
let is_spam email i = S.(field email "score" > (float_ 45.0 + (to_float i * float_ 5.0)))

(* Feature extraction reads the full email body (which is what makes the
   map expensive) and keeps {id; ip; score; features}, where the feature
   vector is ~1/5 of the body size — so the cached/joined dataset is
   substantial but much smaller than the corpus. *)
let extract_features =
  S.(
    lam "e" (fun e ->
        record
          [ ("id", field e "id");
            ("ip", field e "ip");
            ("score", field e "score");
            ("features", mk_blob (blob_bytes (field e "body") / int_ 5) (field e "id")) ]))

let program params =
  let open S in
  let non_spam_from_blacklisted =
    for_
      [ gen "email" (var "emails");
        when_ (not_ (is_spam (var "email") (var "c")));
        when_
          (exists
             (lam "b" (fun b -> field b "ip" = field (var "email") "ip"))
             (var "blacklist")) ]
      ~yield:(var "email")
  in
  program
    ~ret:(tup [ var "minClassifier"; var "minHits" ])
    [ s_let "emails" (map extract_features (read params.emails_table));
      s_let "blacklist" (read params.blacklist_table);
      s_var "minHits" (int_ (-1));
      s_var "minClassifier" (int_ (-1));
      s_var "c" (int_ 0);
      while_
        (var "c" < int_ params.n_classifiers)
        [ s_let "nonSpamFromBlServer" non_spam_from_blacklisted;
          (* the count is evaluated twice, as in Listing 5 *)
          s_if
            ((var "minHits" < int_ 0) || (count (var "nonSpamFromBlServer") < var "minHits"))
            [ assign "minHits" (count (var "nonSpamFromBlServer"));
              assign "minClassifier" (var "c") ]
            [];
          assign "c" (var "c" + int_ 1) ] ]

(* ------------------------------------------------------------------ *)
(* Independent oracle                                                    *)
(* ------------------------------------------------------------------ *)

module Value = Emma_value.Value

let reference ~params ~emails ~blacklist =
  let bl_ips = Hashtbl.create 64 in
  List.iter (fun b -> Hashtbl.replace bl_ips (Value.to_int (Value.field b "ip")) ()) blacklist;
  let hits c =
    List.length
      (List.filter
         (fun e ->
           let score = Value.to_float (Value.field e "score") in
           let threshold = 45.0 +. (float_of_int c *. 5.0) in
           (not (score > threshold)) && Hashtbl.mem bl_ips (Value.to_int (Value.field e "ip")))
         emails)
  in
  let best = ref (-1) and best_hits = ref (-1) in
  for c = 0 to params.n_classifiers - 1 do
    let h = hits c in
    if !best_hits < 0 || h < !best_hits then begin
      best_hits := h;
      best := c
    end
  done;
  (!best, !best_hits)
