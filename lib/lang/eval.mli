(** Reference interpreter for the embedded language — the paper's "host
    language execution" mode (§3.1): every DataBag operator runs natively on
    {!Emma_databag.Databag}, with no parallel runtime involved. The
    simulated engine's results are cross-checked against this interpreter,
    and every compiler rewrite is property-tested with it. *)

module Value = Emma_value.Value

type ctx
(** Runtime context: the named tables visible to [Read]/[SWrite]. *)

val create_ctx : unit -> ctx
val register_table : ctx -> string -> Value.t list -> unit
val read_table : ctx -> string -> Value.t list
(** Raises [Eval_error] if the table was never registered or written. *)

val table_names : ctx -> string list

exception Eval_error of string

type rvalue =
  | V of Value.t
  | Clo of closure
  | St of (Value.t, Value.t) Emma_databag.Stateful_bag.t
      (** stateful-bag handles live only in the driver environment *)

and closure

type env

val empty_env : env
val bind : string -> rvalue -> env -> env
val lookup : env -> string -> rvalue

val lookup_opt : env -> string -> rvalue option
(** Like [lookup] but returns [None] instead of raising; the staged
    compiler ({!Compile}) uses it to resolve captured bindings at
    compile time. *)

val eval : ctx -> env -> Expr.expr -> rvalue
val eval_value : ctx -> env -> Expr.expr -> Value.t
(** Like [eval] but requires a first-class value (not a closure/stateful). *)

val apply_rv : ctx -> rvalue -> Value.t -> Value.t
(** Applies an evaluated UDF to a value. *)

val apply2_rv : ctx -> rvalue -> Value.t -> Value.t -> Value.t
(** Applies an evaluated curried binary UDF to two values. *)

val apply_step : ctx -> rvalue -> Value.t -> rvalue
(** One application step that does {e not} force the result to a value:
    applying a curried closure yields the inner closure. This is the
    building block [apply2_rv] composes; {!Compile} uses it to wrap
    interpreter closures captured from the environment. Error messages
    match {!apply_rv}. *)

val eval_program : ctx -> Expr.program -> Value.t
(** Runs the driver program: executes statements in order (writing sinks
    into [ctx]) and returns the value of the program's [ret] expression. *)
