module Value = Emma_value.Value
module Databag = Emma_databag.Databag
module Stateful_bag = Emma_databag.Stateful_bag
open Expr

exception Eval_error of string

let fail fmt = Printf.ksprintf (fun s -> raise (Eval_error s)) fmt

type ctx = { tables : (string, Value.t list) Hashtbl.t }

let create_ctx () = { tables = Hashtbl.create 16 }
let register_table ctx name rows = Hashtbl.replace ctx.tables name rows

let read_table ctx name =
  match Hashtbl.find_opt ctx.tables name with
  | Some rows -> rows
  | None -> fail "read: unknown table %S" name

let table_names ctx = Hashtbl.fold (fun k _ acc -> k :: acc) ctx.tables []

type rvalue =
  | V of Value.t
  | Clo of closure
  | St of (Value.t, Value.t) Stateful_bag.t

and closure = { c_env : env; c_param : string; c_body : Expr.expr }
and env = (string * rvalue ref) list

let empty_env = []
let bind x v env = (x, ref v) :: env

let lookup env x =
  match List.assoc_opt x env with
  | Some r -> !r
  | None -> fail "unbound variable %s" x

let lookup_opt env x = Option.map ( ! ) (List.assoc_opt x env)

let lookup_ref env x =
  match List.assoc_opt x env with
  | Some r -> r
  | None -> fail "unbound variable %s" x

let as_value = function
  | V v -> v
  | Clo _ -> fail "expected a value, got a function"
  | St _ -> fail "expected a value, got a stateful bag"

let as_bag rv = Value.to_bag (as_value rv)

(* ------------------------------------------------------------------ *)

let rec eval ctx env e : rvalue =
  match e with
  | Const v -> V v
  | Var x -> lookup env x
  | Lam (x, b) -> Clo { c_env = env; c_param = x; c_body = b }
  | App (f, a) ->
      let fv = eval ctx env f in
      let av = eval_value ctx env a in
      V (apply_rv ctx fv av)
  | Tuple es -> V (Value.tuple (List.map (eval_value ctx env) es))
  | Proj (a, i) -> V (Value.proj (eval_value ctx env a) i)
  | Record fields -> V (Value.record (List.map (fun (n, x) -> (n, eval_value ctx env x)) fields))
  | Field (a, n) -> V (Value.field (eval_value ctx env a) n)
  | Prim (p, args) -> V (Prim.apply p (List.map (eval_value ctx env) args))
  | If (c, t, el) ->
      if Value.to_bool (eval_value ctx env c) then eval ctx env t else eval ctx env el
  | Let (x, a, b) ->
      let av = eval ctx env a in
      eval ctx (bind x av env) b
  | BagOf es -> V (Value.bag (List.map (eval_value ctx env) es))
  | Range (lo, hi) ->
      let lo = Value.to_int (eval_value ctx env lo) in
      let hi = Value.to_int (eval_value ctx env hi) in
      if hi < lo then V (Value.bag [])
      else V (Value.bag (List.init (hi - lo + 1) (fun i -> Value.Int (lo + i))))
  | Read (Src_table t) -> V (Value.bag (read_table ctx t))
  | Map (f, xs) ->
      let fv = eval ctx env f in
      let elems = as_bag (eval ctx env xs) in
      V (Value.bag (List.map (apply_rv ctx fv) elems))
  | FlatMap (f, xs) ->
      let fv = eval ctx env f in
      let elems = as_bag (eval ctx env xs) in
      V (Value.bag (List.concat_map (fun x -> Value.to_bag (apply_rv ctx fv x)) elems))
  | Filter (p, xs) ->
      let pv = eval ctx env p in
      let elems = as_bag (eval ctx env xs) in
      V (Value.bag (List.filter (fun x -> Value.to_bool (apply_rv ctx pv x)) elems))
  | GroupBy (k, xs) ->
      let kv = eval ctx env k in
      let elems = as_bag (eval ctx env xs) in
      let groups =
        Databag.group_by ~cmp:Value.compare (apply_rv ctx kv) (Databag.of_list elems)
      in
      let to_record (g : (_, _) Databag.grp) =
        Value.record [ ("key", g.key); ("values", Value.bag (Databag.to_list g.values)) ]
      in
      V (Value.bag (List.map to_record (Databag.to_list groups)))
  | Fold (fns, xs) ->
      let elems = as_bag (eval ctx env xs) in
      V (eval_fold ctx env fns elems)
  | AggBy (k, fns, xs) ->
      let kv = eval ctx env k in
      let elems = as_bag (eval ctx env xs) in
      let groups =
        Databag.group_by ~cmp:Value.compare (apply_rv ctx kv) (Databag.of_list elems)
      in
      let to_record (g : (_, _) Databag.grp) =
        Value.record
          [ ("key", g.key); ("agg", eval_fold ctx env fns (Databag.to_list g.values)) ]
      in
      V (Value.bag (List.map to_record (Databag.to_list groups)))
  | Union (a, b) -> V (Value.bag (as_bag (eval ctx env a) @ as_bag (eval ctx env b)))
  | Minus (a, b) ->
      let xs = Databag.of_list (as_bag (eval ctx env a)) in
      let ys = Databag.of_list (as_bag (eval ctx env b)) in
      V (Value.bag (Databag.to_list (Databag.minus ~cmp:Value.compare xs ys)))
  | Distinct a ->
      let xs = Databag.of_list (as_bag (eval ctx env a)) in
      V (Value.bag (Databag.to_list (Databag.distinct ~cmp:Value.compare xs)))
  | Comp c -> V (eval_comp ctx env c)
  | Flatten a ->
      let outer = as_bag (eval ctx env a) in
      V (Value.bag (List.concat_map Value.to_bag outer))
  | Stateful_create { key; init } ->
      let kv = eval ctx env key in
      let init_elems = as_bag (eval ctx env init) in
      St
        (Stateful_bag.create
           ~key:(apply_rv ctx kv)
           ~cmp:Value.compare
           (Databag.of_list init_elems))
  | Stateful_bag a -> begin
      match eval ctx env a with
      | St st -> V (Value.bag (Databag.to_list (Stateful_bag.bag st)))
      | _ -> fail "bag(): expected a stateful bag"
    end
  | Stateful_update { state; udf } -> begin
      match eval ctx env state with
      | St st ->
          let u = eval ctx env udf in
          let delta = Stateful_bag.update st (fun x -> Value.to_option (apply_rv ctx u x)) in
          V (Value.bag (Databag.to_list delta))
      | _ -> fail "update: expected a stateful bag"
    end
  | Stateful_update_msgs { state; msg_key; messages; udf } -> begin
      match eval ctx env state with
      | St st ->
          let kf = eval ctx env msg_key in
          let msgs = as_bag (eval ctx env messages) in
          let u = eval ctx env udf in
          let apply_udf x m =
            (* The binary UDF is curried in the embedded language. *)
            Value.to_option (apply2_rv ctx u x m)
          in
          let delta =
            Stateful_bag.update_with_messages st ~msg_key:(apply_rv ctx kf)
              (Databag.of_list msgs) apply_udf
          in
          V (Value.bag (Databag.to_list delta))
      | _ -> fail "update: expected a stateful bag"
    end

and eval_value ctx env e = as_value (eval ctx env e)

and apply_rv ctx fv arg =
  match fv with
  | Clo { c_env; c_param; c_body } -> eval_value ctx (bind c_param (V arg) c_env) c_body
  | V _ -> fail "cannot apply a non-function value"
  | St _ -> fail "cannot apply a stateful bag"

and apply2_rv ctx fv a b =
  match fv with
  | Clo { c_env; c_param; c_body } ->
      let inner = eval ctx (bind c_param (V a) c_env) c_body in
      apply_rv ctx inner b
  | _ -> fail "cannot apply a non-function value"

and eval_fold ctx env fns elems =
  let empty = eval_value ctx env fns.f_empty in
  let single = eval ctx env fns.f_single in
  let union = eval ctx env fns.f_union in
  Databag.fold ~empty
    ~single:(apply_rv ctx single)
    ~union:(fun a b -> apply2_rv ctx union a b)
    (Databag.of_list elems)

and eval_comp ctx env { head; quals; alg } =
  (* Nested-loop comprehension semantics; yields the multiset of head
     values, then interprets it under the comprehension's algebra. *)
  let results = ref [] in
  let rec go env = function
    | [] -> results := eval_value ctx env head :: !results
    | QGen (x, src) :: rest ->
        let elems = as_bag (eval ctx env src) in
        List.iter (fun v -> go (bind x (V v) env) rest) elems
    | QGuard p :: rest -> if Value.to_bool (eval_value ctx env p) then go env rest
  in
  go env quals;
  let produced = List.rev !results in
  match alg with
  | Alg_bag -> Value.bag produced
  | Alg_fold fns -> eval_fold ctx env fns produced

(* One application step without forcing the result: the staged compiler
   ({!Compile}) uses this to wrap captured interpreter closures, so a
   curried closure applied in two steps behaves exactly like
   [apply2_rv]. *)
let apply_step ctx fv arg =
  match fv with
  | Clo { c_env; c_param; c_body } -> eval ctx (bind c_param (V arg) c_env) c_body
  | V _ -> fail "cannot apply a non-function value"
  | St _ -> fail "cannot apply a stateful bag"

(* ------------------------------------------------------------------ *)
(* Driver programs                                                      *)
(* ------------------------------------------------------------------ *)

let eval_program ctx { body; ret } =
  (* The driver environment is a mutable stack of scopes: entering a block
     pushes, leaving restores — Scala-like lexical scoping for vals/vars. *)
  let rec exec_block env stmts = List.fold_left exec_stmt env stmts
  and exec_stmt env = function
    | SLet (x, e) | SVar (x, e) -> bind x (eval ctx env e) env
    | SAssign (x, e) ->
        let r = lookup_ref env x in
        r := eval ctx env e;
        env
    | SWhile (c, body) ->
        let rec loop () =
          if Value.to_bool (eval_value ctx env c) then begin
            (* Bindings made inside the body are scoped to the iteration. *)
            ignore (exec_block env body);
            loop ()
          end
        in
        loop ();
        env
    | SIf (c, t, e) ->
        ignore (exec_block env (if Value.to_bool (eval_value ctx env c) then t else e));
        env
    | SWrite (Snk_table name, e) ->
        Hashtbl.replace ctx.tables name (as_bag (eval ctx env e));
        env
  in
  let env = exec_block empty_env body in
  eval_value ctx env ret
