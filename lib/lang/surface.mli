(** Surface syntax: smart constructors for writing embedded Emma programs in
    OCaml, including a [for_] comprehension form that desugars into
    [map]/[flatMap]/[withFilter] chains {e exactly} like the Scala compiler
    does (§6.19 of the Scala spec) — so the compiler pipeline's
    comprehension-recovery step receives the same post-desugar trees the
    paper's macro sees. *)

open Expr

(** {1 Literals and variables} *)

val unit_ : expr
val bool_ : bool -> expr
val int_ : int -> expr
val float_ : float -> expr
val str : string -> expr
val vec : float list -> expr
val var : string -> expr
val lam : string -> (expr -> expr) -> expr
(** [lam "x" (fun x -> body)] builds [Lam] with a hygiene-free name; the
    callback receives [Var "x"]. *)

val lam2 : string -> string -> (expr -> expr -> expr) -> expr
val app : expr -> expr -> expr
val let_ : string -> expr -> (expr -> expr) -> expr

(** {1 Tuples, records, options} *)

val tup : expr list -> expr
val proj : expr -> int -> expr
val record : (string * expr) list -> expr
val field : expr -> string -> expr
val some_ : expr -> expr
val none_ : expr
val opt_get : expr -> expr
val is_some : expr -> expr

(** {1 Operators} *)

val ( + ) : expr -> expr -> expr
val ( - ) : expr -> expr -> expr
val ( * ) : expr -> expr -> expr
val ( / ) : expr -> expr -> expr
val ( mod ) : expr -> expr -> expr
val ( = ) : expr -> expr -> expr
val ( <> ) : expr -> expr -> expr
val ( < ) : expr -> expr -> expr
val ( <= ) : expr -> expr -> expr
val ( > ) : expr -> expr -> expr
val ( >= ) : expr -> expr -> expr
val ( && ) : expr -> expr -> expr
val ( || ) : expr -> expr -> expr
val not_ : expr -> expr
val if_ : expr -> expr -> expr -> expr
val to_float : expr -> expr
val min2 : expr -> expr -> expr
val max2 : expr -> expr -> expr

val mk_blob : expr -> expr -> expr
(** [mk_blob bytes tag]: an opaque payload of the given logical size. *)

val blob_bytes : expr -> expr
(** Logical size of a blob. *)

(** {1 Vector operations} *)

val vadd : expr -> expr -> expr
val vdiv : expr -> expr -> expr
val vdist : expr -> expr -> expr
val vzeros : expr -> expr

(** {1 DataBag operators (desugared form)} *)

val bag_of : expr list -> expr
val range : expr -> expr -> expr
val read : string -> expr
val write : string -> expr -> stmt
val map : expr -> expr -> expr
val flat_map : expr -> expr -> expr
val with_filter : expr -> expr -> expr
val group_by : expr -> expr -> expr
val union : expr -> expr -> expr
val minus : expr -> expr -> expr
val distinct : expr -> expr

(** {1 Folds and aliases} *)

val fold : empty:expr -> single:expr -> union:expr -> expr -> expr
val sum : expr -> expr
(** Numeric sum; works uniformly on int/float bags (and vectors via
    [vsum]). *)

val vsum : dim:int -> expr -> expr
(** Sum of a bag of vectors of the given dimension. *)

val product : expr -> expr
(** Numeric product (float). *)

val count : expr -> expr
val exists : expr -> expr -> expr
val forall : expr -> expr -> expr
val is_empty : expr -> expr
val min_by : expr -> expr -> expr
(** [min_by f xs]: [Option]-valued minimum by a numeric measure [f]. *)

val max_by : expr -> expr -> expr

val min_ : expr -> expr
(** [Option]-valued minimum under the structural order. *)

val max_ : expr -> expr

val avg : expr -> expr
(** Numeric mean, computed as a single (sum, count) pair fold — one
    banana-split slot when used over group values. Division by zero on an
    empty bag surfaces as a [Type_error], like [opt_get] on [minBy]. *)

(** {1 Comprehension syntax} *)

type squal
val gen : string -> expr -> squal
(** [gen "x" xs] is the generator [x <- xs]. *)

val when_ : expr -> squal
(** A guard. Must follow at least one generator, as in Scala. *)

val for_ : squal list -> yield:expr -> expr
(** Desugars to monad-operator chains following the Scala scheme:
    {ul
    {- [for (x <- xs) yield e] ⟹ [xs.map(x => e)]}
    {- [for (x <- xs; if p; ...) yield e] ⟹
       [for (x <- xs.withFilter(x => p); ...) yield e]}
    {- [for (x <- xs; y <- ys; ...) yield e] ⟹
       [xs.flatMap(x => for (y <- ys; ...) yield e)]}}
    Raises [Invalid_argument] on an empty qualifier list or a leading
    guard. *)

(** {1 Stateful bags} *)

val stateful : key:expr -> expr -> expr
val state_bag : expr -> expr
val update : expr -> expr -> expr
val update_msgs : expr -> msg_key:expr -> messages:expr -> expr -> expr

(** {1 Statements} *)

val s_let : string -> expr -> stmt
val s_var : string -> expr -> stmt
val assign : string -> expr -> stmt
val while_ : expr -> stmt list -> stmt
val s_if : expr -> stmt list -> stmt list -> stmt
val program : ?ret:expr -> stmt list -> program
