(** Pretty-printing of embedded-language terms, comprehensions and programs.
    The output uses the paper's notation where it exists: comprehensions
    print as [[[ head | q1, q2, ... ]]^alg], folds as [fold(e, s, u)]. *)

val pp_expr : Format.formatter -> Expr.expr -> unit
val pp_qual : Format.formatter -> Expr.qual -> unit
val pp_stmt : Format.formatter -> Expr.stmt -> unit
val pp_program : Format.formatter -> Expr.program -> unit
val expr_to_string : Expr.expr -> string
val program_to_string : Expr.program -> string
val fold_tag_name : Expr.fold_tag -> string
