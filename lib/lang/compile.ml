(* Staged compilation of embedded-language terms: a partial-evaluation /
   normalization-by-evaluation pass that walks an [Expr] tree ONCE and
   produces an OCaml closure over [Value.t], so per-tuple evaluation pays
   neither tree dispatch nor string-keyed environment lookups.

   The interpreter ({!Eval}) remains the semantics: every case below mirrors
   the corresponding [Eval.eval] case, including its evaluation order and
   the exact classified errors it raises ([Eval_error], [Value.Type_error],
   [Invalid_argument]) — the differential test-suite holds the two modes to
   byte-identical behaviour. *)

module Value = Emma_value.Value
module Databag = Emma_databag.Databag
module Stateful_bag = Emma_databag.Stateful_bag
open Expr

let fail fmt = Printf.ksprintf (fun s -> raise (Eval.Eval_error s)) fmt

(* ------------------------------------------------------------------ *)
(* Semantic values                                                      *)
(* ------------------------------------------------------------------ *)

(* The compiled counterpart of [Eval.rvalue]: functions are host closures
   rather than (env, param, body) triples. *)
type sv =
  | Sval of Value.t
  | Sfun of (Value.t -> sv)
  | Sst of (Value.t, Value.t) Stateful_bag.t

(* Mirrors [Eval.as_value]. *)
let force = function
  | Sval v -> v
  | Sfun _ -> fail "expected a value, got a function"
  | Sst _ -> fail "expected a value, got a stateful bag"

(* Mirrors [Eval.apply_rv]: apply and force the result to a value. *)
let apply1 fv arg =
  match fv with
  | Sfun f -> force (f arg)
  | Sval _ -> fail "cannot apply a non-function value"
  | Sst _ -> fail "cannot apply a stateful bag"

(* Mirrors [Eval.apply2_rv]: the intermediate application step is not
   forced, so curried closures work, and anything else reports the same
   error [apply2_rv]'s catch-all does. *)
let apply2 fv a b =
  match fv with
  | Sfun f -> apply1 (f a) b
  | Sval _ | Sst _ -> fail "cannot apply a non-function value"

(* Imports an interpreter value captured from the driver environment.
   Closures stay interpreted — they run via [Eval.apply_step] — but the
   lookup that found them happened once, at compile time. *)
let rec of_rvalue ctx (rv : Eval.rvalue) : sv =
  match rv with
  | Eval.V v -> Sval v
  | Eval.St st -> Sst st
  | Eval.Clo _ -> Sfun (fun v -> of_rvalue ctx (Eval.apply_step ctx rv v))

(* ------------------------------------------------------------------ *)
(* Staged code                                                          *)
(* ------------------------------------------------------------------ *)

(* A compiled expression either evaluated completely at compile time
   ([Static]) or is residual code over the runtime environment — a list of
   semantic values indexed positionally, innermost binder first. Residual
   code whose result is statically known to be a first-class value is kept
   at the [Value.t] level ([Dynv]): chains of such nodes (all arithmetic,
   projections, bag operators) call through to each other directly, paying
   neither an [Sval] box nor a [force] match per node. *)
type code =
  | Static of sv
  | Dyn of (sv list -> sv)
  | Dynv of (sv list -> Value.t)

let is_static = function Static _ -> true | Dyn _ | Dynv _ -> false

let stage = function
  | Static sv -> fun _ -> sv
  | Dyn f -> f
  | Dynv f -> fun env -> Sval (f env)

(* Stage to a first-class value; forcing a static non-value raises per
   evaluation, exactly when the interpreter would. *)
let vstage = function
  | Static (Sval v) -> fun _ -> v
  | Static sv -> fun _ -> force sv
  | Dyn f -> fun env -> force (f env)
  | Dynv f -> f

(* Stage a bag source: the value is forced first, then viewed as a bag, so
   the classified error order matches [Eval.as_bag]. *)
let bstage c =
  let g = vstage c in
  fun env -> Value.to_bag (g env)

(* [true] when evaluating the code can only produce a first-class value —
   the condition for staying at the [Dynv] level. *)
let valueish = function Static (Sval _) | Dynv _ -> true | Static _ | Dyn _ -> false

let classified = function
  | Eval.Eval_error _ | Value.Type_error _ | Invalid_argument _ -> true
  | _ -> false

(* Constant-fold [f], but turn a classified failure into residual code that
   re-raises at every evaluation — compiling never raises, and the error
   surfaces only if (and as often as) the interpreter would raise it. *)
let static_or_raiser f =
  match f () with
  | sv -> Static sv
  | exception e when classified e -> Dyn (fun _ -> raise e)

(* Compile-time environment. [Cdyn] entries occupy a runtime slot;
   [Cstatic] entries were evaluated at compile time and occupy none. *)
type centry = Cdyn of string | Cstatic of string * sv

(* A compiled comprehension qualifier: generator sources stage straight to
   element lists, guards to (boolean) values. *)
type cqual = CGen of (sv list -> Value.t list) | CGuard of (sv list -> Value.t)

let rec resolve cenv x i =
  match cenv with
  | [] -> None
  | Cdyn y :: rest ->
      if String.equal y x then Some (Dyn (slot i)) else resolve rest x (i + 1)
  | Cstatic (y, sv) :: rest ->
      if String.equal y x then Some (Static sv) else resolve rest x i

and slot i : sv list -> sv =
  match i with
  | 0 -> ( function v :: _ -> v | [] -> invalid_arg "Compile.slot" )
  | 1 -> ( function _ :: v :: _ -> v | _ -> invalid_arg "Compile.slot" )
  | 2 -> ( function _ :: _ :: v :: _ -> v | _ -> invalid_arg "Compile.slot" )
  | i -> fun env -> List.nth env i

(* ------------------------------------------------------------------ *)
(* The compiler                                                         *)
(* ------------------------------------------------------------------ *)

(* NOTE on sequencing: OCaml evaluates function arguments right-to-left, so
   every residual body below [let]-binds its pieces explicitly to preserve
   the interpreter's evaluation (and error) order. [Union] is the one
   exception: [Eval] itself uses operator-argument order there, so the
   residual code uses the identical expression shape. *)

let rec comp ctx base cenv (e : Expr.expr) : code =
  match e with
  | Const v -> Static (Sval v)
  | Var x -> begin
      match resolve cenv x 0 with
      | Some c -> c
      | None -> begin
          match Eval.lookup_opt base x with
          | Some rv -> Static (of_rvalue ctx rv)
          | None ->
              let exn = Eval.Eval_error ("unbound variable " ^ x) in
              Dyn (fun _ -> raise exn)
        end
    end
  | Lam (x, b) -> begin
      match comp ctx base (Cdyn x :: cenv) b with
      | Static sv_b -> Static (Sfun (fun _ -> sv_b))
      | (Dyn _ | Dynv _) as cb ->
          let fb = stage cb in
          Dyn (fun env -> Sfun (fun v -> fb (Sval v :: env)))
    end
  | App (f, a) ->
      (* Never folded: folding applications of self-applying closures could
         diverge at compile time; the interpreter only pays when it runs.
         The result is forced ([apply1]), so the node is value-typed. *)
      let gf = stage (comp ctx base cenv f) in
      let ga = vstage (comp ctx base cenv a) in
      Dynv
        (fun env ->
          let fv = gf env in
          let av = ga env in
          apply1 fv av)
  | Tuple es ->
      comp_nary ctx base cenv es (fun vs -> Value.tuple vs)
  | Proj (a, i) -> begin
      match comp ctx base cenv a with
      | Static _ as c ->
          let g = vstage c in
          static_or_raiser (fun () -> Sval (Value.proj (g []) i))
      | (Dyn _ | Dynv _) as c ->
          let g = vstage c in
          Dynv (fun env -> Value.proj (g env) i)
    end
  | Record fields ->
      let names = List.map fst fields in
      comp_nary ctx base cenv (List.map snd fields) (fun vs ->
          Value.record (List.combine names vs))
  | Field (a, n) -> begin
      match comp ctx base cenv a with
      | Static _ as c ->
          let g = vstage c in
          static_or_raiser (fun () -> Sval (Value.field (g []) n))
      | (Dyn _ | Dynv _) as c ->
          let g = vstage c in
          Dynv (fun env -> Value.field (g env) n)
    end
  | Prim (p, args) ->
      let cs = List.map (comp ctx base cenv) args in
      let gs = List.map vstage cs in
      if List.length args <> Prim.arity p then
        (* [Eval] evaluates the arguments before [Prim.apply] checks the
           arity, so argument errors take precedence here too. *)
        let msg =
          Printf.sprintf "prim %s: arity %d expected, got %d" (Prim.name p)
            (Prim.arity p) (List.length args)
        in
        Dyn
          (fun env ->
            let _ = List.map (fun g -> g env) gs in
            invalid_arg msg)
      else if List.for_all is_static cs then
        static_or_raiser (fun () ->
            Sval (Prim.apply p (List.map (fun g -> g []) gs)))
      else begin
        match gs with
        | [ g ] -> Dynv (fun env -> Prim.apply1 p (g env))
        | [ g1; g2 ] ->
            Dynv
              (fun env ->
                let a = g1 env in
                let b = g2 env in
                Prim.apply2 p a b)
        | gs -> Dynv (fun env -> Prim.apply p (List.map (fun g -> g env) gs))
      end
  | If (c, t, el) -> begin
      match comp ctx base cenv c with
      | Static _ as cc -> begin
          let gc = vstage cc in
          match Value.to_bool (gc []) with
          | b -> comp ctx base cenv (if b then t else el)
          | exception exn when classified exn -> Dyn (fun _ -> raise exn)
        end
      | (Dyn _ | Dynv _) as cc ->
          let gc = vstage cc in
          let ct = comp ctx base cenv t in
          let ce = comp ctx base cenv el in
          if valueish ct && valueish ce then
            let gt = vstage ct and ge = vstage ce in
            Dynv (fun env -> if Value.to_bool (gc env) then gt env else ge env)
          else
            let gt = stage ct and ge = stage ce in
            Dyn (fun env -> if Value.to_bool (gc env) then gt env else ge env)
    end
  | Let (x, a, b) -> begin
      match comp ctx base cenv a with
      | Static sv ->
          (* The binding is a pure compile-time value: inline it and spend
             no runtime slot. *)
          comp ctx base (Cstatic (x, sv) :: cenv) b
      | (Dyn _ | Dynv _) as ca ->
          let fa = stage ca in
          let cb = comp ctx base (Cdyn x :: cenv) b in
          if valueish cb then
            let fb = vstage cb in
            Dynv
              (fun env ->
                let av = fa env in
                fb (av :: env))
          else
            let fb = stage cb in
            Dyn
              (fun env ->
                let av = fa env in
                fb (av :: env))
    end
  | BagOf es -> comp_nary ctx base cenv es (fun vs -> Value.bag vs)
  | Range (lo, hi) ->
      let clo = comp ctx base cenv lo in
      let chi = comp ctx base cenv hi in
      let glo = vstage clo in
      let ghi = vstage chi in
      let run env =
        let lo = Value.to_int (glo env) in
        let hi = Value.to_int (ghi env) in
        if hi < lo then Value.bag []
        else Value.bag (List.init (hi - lo + 1) (fun i -> Value.Int (lo + i)))
      in
      if is_static clo && is_static chi then
        static_or_raiser (fun () -> Sval (run []))
      else Dynv run
  | Read (Src_table t) ->
      (* Tables are mutated by [SWrite] between evaluations, so reads stay
         residual. *)
      Dynv (fun _ -> Value.bag (Eval.read_table ctx t))
  | Map (f, xs) ->
      let gf = stage (comp ctx base cenv f) in
      let gxs = bstage (comp ctx base cenv xs) in
      Dynv
        (fun env ->
          let fv = gf env in
          let elems = gxs env in
          Value.bag (List.map (fun x -> apply1 fv x) elems))
  | FlatMap (f, xs) ->
      let gf = stage (comp ctx base cenv f) in
      let gxs = bstage (comp ctx base cenv xs) in
      Dynv
        (fun env ->
          let fv = gf env in
          let elems = gxs env in
          Value.bag (List.concat_map (fun x -> Value.to_bag (apply1 fv x)) elems))
  | Filter (p, xs) ->
      let gp = stage (comp ctx base cenv p) in
      let gxs = bstage (comp ctx base cenv xs) in
      Dynv
        (fun env ->
          let pv = gp env in
          let elems = gxs env in
          Value.bag (List.filter (fun x -> Value.to_bool (apply1 pv x)) elems))
  | GroupBy (k, xs) ->
      let gk = stage (comp ctx base cenv k) in
      let gxs = bstage (comp ctx base cenv xs) in
      Dynv
        (fun env ->
          let kv = gk env in
          let elems = gxs env in
          let groups =
            Databag.group_by ~cmp:Value.compare
              (fun x -> apply1 kv x)
              (Databag.of_list elems)
          in
          let to_record (g : (_, _) Databag.grp) =
            Value.record
              [ ("key", g.key); ("values", Value.bag (Databag.to_list g.values)) ]
          in
          Value.bag (List.map to_record (Databag.to_list groups)))
  | Fold (fns, xs) ->
      let gxs = bstage (comp ctx base cenv xs) in
      let run_fold = comp_fold ctx base cenv fns in
      Dynv
        (fun env ->
          let elems = gxs env in
          run_fold env elems)
  | AggBy (k, fns, xs) ->
      let gk = stage (comp ctx base cenv k) in
      let gxs = bstage (comp ctx base cenv xs) in
      let run_fold = comp_fold ctx base cenv fns in
      Dynv
        (fun env ->
          let kv = gk env in
          let elems = gxs env in
          let groups =
            Databag.group_by ~cmp:Value.compare
              (fun x -> apply1 kv x)
              (Databag.of_list elems)
          in
          let to_record (g : (_, _) Databag.grp) =
            Value.record
              [ ("key", g.key); ("agg", run_fold env (Databag.to_list g.values)) ]
          in
          Value.bag (List.map to_record (Databag.to_list groups)))
  | Union (a, b) ->
      let ga = bstage (comp ctx base cenv a) in
      let gb = bstage (comp ctx base cenv b) in
      Dynv (fun env -> Value.bag (ga env @ gb env))
  | Minus (a, b) ->
      let ga = bstage (comp ctx base cenv a) in
      let gb = bstage (comp ctx base cenv b) in
      Dynv
        (fun env ->
          let xs = Databag.of_list (ga env) in
          let ys = Databag.of_list (gb env) in
          Value.bag (Databag.to_list (Databag.minus ~cmp:Value.compare xs ys)))
  | Distinct a ->
      let ga = bstage (comp ctx base cenv a) in
      Dynv
        (fun env ->
          let xs = Databag.of_list (ga env) in
          Value.bag (Databag.to_list (Databag.distinct ~cmp:Value.compare xs)))
  | Comp { head; quals; alg } ->
      let cquals, cenv' = comp_quals ctx base cenv quals in
      let ghead = vstage (comp ctx base cenv' head) in
      let run_alg =
        match alg with
        | Alg_bag -> fun _env produced -> Value.bag produced
        | Alg_fold fns ->
            (* The algebra evaluates in the comprehension's outer scope. *)
            let run_fold = comp_fold ctx base cenv fns in
            fun env produced -> run_fold env produced
      in
      Dynv
        (fun env ->
          let results = ref [] in
          let rec go env = function
            | [] -> results := ghead env :: !results
            | CGen gsrc :: rest ->
                let elems = gsrc env in
                List.iter (fun v -> go (Sval v :: env) rest) elems
            | CGuard gp :: rest -> if Value.to_bool (gp env) then go env rest
          in
          go env cquals;
          let produced = List.rev !results in
          run_alg env produced)
  | Flatten a ->
      let ga = bstage (comp ctx base cenv a) in
      Dynv
        (fun env ->
          let outer = ga env in
          Value.bag (List.concat_map Value.to_bag outer))
  | Stateful_create { key; init } ->
      let gkey = stage (comp ctx base cenv key) in
      let ginit = bstage (comp ctx base cenv init) in
      Dyn
        (fun env ->
          let kv = gkey env in
          let init_elems = ginit env in
          Sst
            (Stateful_bag.create
               ~key:(fun x -> apply1 kv x)
               ~cmp:Value.compare
               (Databag.of_list init_elems)))
  | Stateful_bag a ->
      let ga = stage (comp ctx base cenv a) in
      Dynv
        (fun env ->
          match ga env with
          | Sst st -> Value.bag (Databag.to_list (Stateful_bag.bag st))
          | _ -> fail "bag(): expected a stateful bag")
  | Stateful_update { state; udf } ->
      let gstate = stage (comp ctx base cenv state) in
      let gudf = stage (comp ctx base cenv udf) in
      Dynv
        (fun env ->
          match gstate env with
          | Sst st ->
              let u = gudf env in
              let delta =
                Stateful_bag.update st (fun x -> Value.to_option (apply1 u x))
              in
              Value.bag (Databag.to_list delta)
          | _ -> fail "update: expected a stateful bag")
  | Stateful_update_msgs { state; msg_key; messages; udf } ->
      let gstate = stage (comp ctx base cenv state) in
      let gkey = stage (comp ctx base cenv msg_key) in
      let gmsgs = bstage (comp ctx base cenv messages) in
      let gudf = stage (comp ctx base cenv udf) in
      Dynv
        (fun env ->
          match gstate env with
          | Sst st ->
              let kf = gkey env in
              let msgs = gmsgs env in
              let u = gudf env in
              let delta =
                Stateful_bag.update_with_messages st
                  ~msg_key:(fun m -> apply1 kf m)
                  (Databag.of_list msgs)
                  (fun x m -> Value.to_option (apply2 u x m))
              in
              Value.bag (Databag.to_list delta)
          | _ -> fail "update: expected a stateful bag")

(* n-ary value constructors (tuples, records, bag literals): fold when every
   piece is static, otherwise emit one residual body. *)
and comp_nary ctx base cenv es build =
  let cs = List.map (comp ctx base cenv) es in
  let gs = List.map vstage cs in
  if List.for_all is_static cs then
    static_or_raiser (fun () -> Sval (build (List.map (fun g -> g []) gs)))
  else Dynv (fun env -> build (List.map (fun g -> g env) gs))

(* Fold algebras re-evaluate [empty]/[single]/[union] per run (and [AggBy]
   per group), exactly like [Eval.eval_fold]. *)
and comp_fold ctx base cenv (fns : Expr.fold_fns) =
  let vempty = vstage (comp ctx base cenv fns.f_empty) in
  let gsingle = stage (comp ctx base cenv fns.f_single) in
  let gunion = stage (comp ctx base cenv fns.f_union) in
  fun env elems ->
    let empty = vempty env in
    let single = gsingle env in
    let union = gunion env in
    Databag.fold ~empty
      ~single:(fun x -> apply1 single x)
      ~union:(fun a b -> apply2 union a b)
      (Databag.of_list elems)

and comp_quals ctx base cenv = function
  | [] -> ([], cenv)
  | QGen (x, src) :: rest ->
      (* The source is evaluated before the binder is in scope. *)
      let gsrc = bstage (comp ctx base cenv src) in
      let qs, cenv' = comp_quals ctx base (Cdyn x :: cenv) rest in
      (CGen gsrc :: qs, cenv')
  | QGuard p :: rest ->
      let gp = vstage (comp ctx base cenv p) in
      let qs, cenv' = comp_quals ctx base cenv rest in
      (CGuard gp :: qs, cenv')

(* ------------------------------------------------------------------ *)
(* Entry points                                                         *)
(* ------------------------------------------------------------------ *)

let fn ctx base ~param body =
  let f = vstage (comp ctx base [ Cdyn param ] body) in
  fun v -> f [ Sval v ]

let fn2 ctx base ~param1 ~param2 body =
  (* [param2] is the inner binder, so it shadows [param1] when the names
     coincide — matching the interpreter's bind order. *)
  let f = vstage (comp ctx base [ Cdyn param2; Cdyn param1 ] body) in
  fun a b -> f [ Sval b; Sval a ]

let fold_fns ctx base (fns : Expr.fold_fns) =
  (* Evaluated eagerly, like the engine's interpreted fold runtime. *)
  let empty = vstage (comp ctx base [] fns.f_empty) [] in
  let single = stage (comp ctx base [] fns.f_single) [] in
  let union = stage (comp ctx base [] fns.f_union) [] in
  (empty, (fun x -> apply1 single x), (fun a b -> apply2 union a b))

let value ctx base e = vstage (comp ctx base [] e) []
