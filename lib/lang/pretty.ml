open Expr
module Value = Emma_value.Value

let fold_tag_name = function
  | Tag_generic -> "fold"
  | Tag_sum -> "sum"
  | Tag_count -> "count"
  | Tag_exists -> "exists"
  | Tag_forall -> "forall"
  | Tag_min_by -> "minBy"
  | Tag_max_by -> "maxBy"
  | Tag_is_empty -> "isEmpty"

let rec pp_expr ppf e =
  match e with
  | Const v -> Value.pp ppf v
  | Var x -> Fmt.string ppf x
  | Lam (x, b) -> Fmt.pf ppf "(%s => %a)" x pp_expr b
  | App (f, a) -> Fmt.pf ppf "%a(%a)" pp_expr f pp_expr a
  | Tuple es -> Fmt.pf ppf "(%a)" (Fmt.list ~sep:(Fmt.any ", ") pp_expr) es
  | Proj (a, i) -> Fmt.pf ppf "%a._%d" pp_expr a (i + 1)
  | Record fields ->
      Fmt.pf ppf "{%a}"
        (Fmt.list ~sep:(Fmt.any ", ") (fun ppf (n, v) -> Fmt.pf ppf "%s = %a" n pp_expr v))
        fields
  | Field (a, n) -> Fmt.pf ppf "%a.%s" pp_expr a n
  | Prim (p, [ a; b ]) when Prim.arity p = 2 ->
      Fmt.pf ppf "(%a %s %a)" pp_expr a (prim_symbol p) pp_expr b
  | Prim (p, args) ->
      Fmt.pf ppf "%s(%a)" (Prim.name p) (Fmt.list ~sep:(Fmt.any ", ") pp_expr) args
  | If (c, t, e) -> Fmt.pf ppf "(if %a then %a else %a)" pp_expr c pp_expr t pp_expr e
  | Let (x, a, b) -> Fmt.pf ppf "@[<v>let %s = %a in@ %a@]" x pp_expr a pp_expr b
  | BagOf es -> Fmt.pf ppf "DataBag(%a)" (Fmt.list ~sep:(Fmt.any ", ") pp_expr) es
  | Range (a, b) -> Fmt.pf ppf "DataBag(%a to %a)" pp_expr a pp_expr b
  | Read (Src_table t) -> Fmt.pf ppf "read(%S)" t
  | Map (f, xs) -> Fmt.pf ppf "%a@,.map(%a)" pp_expr xs pp_expr f
  | FlatMap (f, xs) -> Fmt.pf ppf "%a@,.flatMap(%a)" pp_expr xs pp_expr f
  | Filter (p, xs) -> Fmt.pf ppf "%a@,.withFilter(%a)" pp_expr xs pp_expr p
  | GroupBy (k, xs) -> Fmt.pf ppf "%a@,.groupBy(%a)" pp_expr xs pp_expr k
  | Fold (fns, xs) -> Fmt.pf ppf "%a@,.%a" pp_expr xs pp_fold fns
  | AggBy (k, fns, xs) ->
      Fmt.pf ppf "%a@,.aggBy(%a, %a)" pp_expr xs pp_expr k pp_fold fns
  | Union (a, b) -> Fmt.pf ppf "%a.plus(%a)" pp_expr a pp_expr b
  | Minus (a, b) -> Fmt.pf ppf "%a.minus(%a)" pp_expr a pp_expr b
  | Distinct a -> Fmt.pf ppf "%a.distinct()" pp_expr a
  | Comp c -> pp_comp ppf c
  | Flatten a -> Fmt.pf ppf "flatten %a" pp_expr a
  | Stateful_create { key; init } ->
      Fmt.pf ppf "stateful(key = %a, %a)" pp_expr key pp_expr init
  | Stateful_bag a -> Fmt.pf ppf "%a.bag()" pp_expr a
  | Stateful_update { state; udf } -> Fmt.pf ppf "%a.update(%a)" pp_expr state pp_expr udf
  | Stateful_update_msgs { state; msg_key; messages; udf } ->
      Fmt.pf ppf "%a.update(%a by %a)(%a)" pp_expr state pp_expr messages pp_expr msg_key
        pp_expr udf

and prim_symbol p =
  match p with
  | Prim.Add -> "+"
  | Prim.Sub -> "-"
  | Prim.Mul -> "*"
  | Prim.Div -> "/"
  | Prim.Mod -> "%"
  | Prim.Eq -> "=="
  | Prim.Ne -> "!="
  | Prim.Lt -> "<"
  | Prim.Le -> "<="
  | Prim.Gt -> ">"
  | Prim.Ge -> ">="
  | Prim.And -> "&&"
  | Prim.Or -> "||"
  | p -> Prim.name p

and pp_fold ppf fns =
  match fns.f_tag with
  | Tag_generic ->
      Fmt.pf ppf "fold(%a, %a, %a)" pp_expr fns.f_empty pp_expr fns.f_single pp_expr
        fns.f_union
  | tag -> Fmt.pf ppf "%s(%a)" (fold_tag_name tag) pp_expr fns.f_single

and pp_comp ppf { head; quals; alg } =
  Fmt.pf ppf "[[ %a | %a ]]^%a" pp_expr head
    (Fmt.list ~sep:(Fmt.any ", ") pp_qual)
    quals pp_alg alg

and pp_qual ppf = function
  | QGen (x, src) -> Fmt.pf ppf "%s <- %a" x pp_expr src
  | QGuard p -> pp_expr ppf p

and pp_alg ppf = function
  | Alg_bag -> Fmt.string ppf "Bag"
  | Alg_fold fns -> pp_fold ppf fns

let rec pp_stmt ppf = function
  | SLet (x, e) -> Fmt.pf ppf "@[<hov 2>val %s =@ %a@]" x pp_expr e
  | SVar (x, e) -> Fmt.pf ppf "@[<hov 2>var %s =@ %a@]" x pp_expr e
  | SAssign (x, e) -> Fmt.pf ppf "@[<hov 2>%s =@ %a@]" x pp_expr e
  | SWhile (c, body) ->
      Fmt.pf ppf "@[<v 2>while (%a) {@ %a@]@ }" pp_expr c
        (Fmt.list ~sep:Fmt.cut pp_stmt) body
  | SIf (c, t, []) ->
      Fmt.pf ppf "@[<v 2>if (%a) {@ %a@]@ }" pp_expr c (Fmt.list ~sep:Fmt.cut pp_stmt) t
  | SIf (c, t, e) ->
      Fmt.pf ppf "@[<v 2>if (%a) {@ %a@]@ @[<v 2>} else {@ %a@]@ }" pp_expr c
        (Fmt.list ~sep:Fmt.cut pp_stmt) t
        (Fmt.list ~sep:Fmt.cut pp_stmt) e
  | SWrite (Snk_table t, e) -> Fmt.pf ppf "@[<hov 2>write(%S,@ %a)@]" t pp_expr e

let pp_program ppf { body; ret } =
  Fmt.pf ppf "@[<v>%a@ return %a@]" (Fmt.list ~sep:Fmt.cut pp_stmt) body pp_expr ret

let expr_to_string e = Fmt.str "%a" pp_expr e
let program_to_string p = Fmt.str "%a" pp_program p
