open Expr
module Value = Emma_value.Value

let unit_ = Const Value.Unit
let bool_ b = Const (Value.Bool b)
let int_ n = Const (Value.Int n)
let float_ f = Const (Value.Float f)
let str s = Const (Value.String s)
let vec fs = Const (Value.Vector (Array.of_list fs))
let var x = Var x
let lam x f = Lam (x, f (Var x))
let lam2 x y f = Lam (x, Lam (y, f (Var x) (Var y)))
let app f a = App (f, a)
let let_ x e f = Let (x, e, f (Var x))

let tup es = Tuple es
let proj e i = Proj (e, i)
let record fields = Record fields
let field e n = Field (e, n)
let some_ e = Prim (Prim.Mk_some, [ e ])
let none_ = Prim (Prim.Mk_none, [])
let opt_get e = Prim (Prim.Opt_get, [ e ])
let is_some e = Prim (Prim.Is_some, [ e ])

let ( + ) a b = Prim (Prim.Add, [ a; b ])
let ( - ) a b = Prim (Prim.Sub, [ a; b ])
let ( * ) a b = Prim (Prim.Mul, [ a; b ])
let ( / ) a b = Prim (Prim.Div, [ a; b ])
let ( mod ) a b = Prim (Prim.Mod, [ a; b ])
let ( = ) a b = Prim (Prim.Eq, [ a; b ])
let ( <> ) a b = Prim (Prim.Ne, [ a; b ])
let ( < ) a b = Prim (Prim.Lt, [ a; b ])
let ( <= ) a b = Prim (Prim.Le, [ a; b ])
let ( > ) a b = Prim (Prim.Gt, [ a; b ])
let ( >= ) a b = Prim (Prim.Ge, [ a; b ])
let ( && ) a b = Prim (Prim.And, [ a; b ])
let ( || ) a b = Prim (Prim.Or, [ a; b ])
let not_ a = Prim (Prim.Not, [ a ])
let if_ c t e = If (c, t, e)
let to_float a = Prim (Prim.To_float, [ a ])
let min2 a b = Prim (Prim.Min2, [ a; b ])
let max2 a b = Prim (Prim.Max2, [ a; b ])

let mk_blob bytes tag = Prim (Prim.Mk_blob, [ bytes; tag ])
let blob_bytes b = Prim (Prim.Blob_bytes, [ b ])
let vadd a b = Prim (Prim.Vadd, [ a; b ])
let vdiv a b = Prim (Prim.Vdiv_scalar, [ a; b ])
let vdist a b = Prim (Prim.Vdist, [ a; b ])
let vzeros n = Prim (Prim.Vzeros, [ n ])

let bag_of es = BagOf es
let range lo hi = Range (lo, hi)
let read t = Read (Src_table t)
let write t e = SWrite (Snk_table t, e)
let map f xs = Map (f, xs)
let flat_map f xs = FlatMap (f, xs)
let with_filter p xs = Filter (p, xs)
let group_by k xs = GroupBy (k, xs)
let union a b = Union (a, b)
let minus a b = Minus (a, b)
let distinct a = Distinct a

(* -- folds ----------------------------------------------------------- *)

let fold ~empty ~single ~union xs =
  Fold ({ f_empty = empty; f_single = single; f_union = union; f_tag = Tag_generic }, xs)

let id_lam = lam "x" Fun.id

let sum xs =
  Fold
    ( { f_empty = int_ 0;
        f_single = id_lam;
        f_union = lam2 "a" "b" ( + );
        f_tag = Tag_sum },
      xs )

let vsum ~dim xs =
  Fold
    ( { f_empty = vzeros (int_ dim);
        f_single = id_lam;
        f_union = lam2 "a" "b" vadd;
        f_tag = Tag_sum },
      xs )

let count xs =
  Fold
    ( { f_empty = int_ 0;
        f_single = lam "x" (fun _ -> int_ 1);
        f_union = lam2 "a" "b" ( + );
        f_tag = Tag_count },
      xs )

let exists p xs =
  Fold
    ( { f_empty = bool_ false;
        f_single = p;
        f_union = lam2 "a" "b" ( || );
        f_tag = Tag_exists },
      xs )

let forall p xs =
  Fold
    ( { f_empty = bool_ true;
        f_single = p;
        f_union = lam2 "a" "b" ( && );
        f_tag = Tag_forall },
      xs )

let product xs =
  Fold
    ( { f_empty = float_ 1.0;
        f_single = id_lam;
        f_union = lam2 "a" "b" ( * );
        f_tag = Tag_generic },
      xs )

let is_empty xs =
  Fold
    ( { f_empty = bool_ true;
        f_single = lam "x" (fun _ -> bool_ false);
        f_union = lam2 "a" "b" ( && );
        f_tag = Tag_is_empty },
      xs )

(* minBy/maxBy carry their measure inside the union function and wrap
   candidates in Option, like the DataBag API's minBy alias. *)
let extremum_by tag better f xs =
  let pick =
    lam2 "a" "b" (fun a b ->
        if_ (is_some a)
          (if_ (is_some b)
             (if_ (better (app f (opt_get a)) (app f (opt_get b))) a b)
             a)
          b)
  in
  Fold
    ({ f_empty = none_; f_single = lam "x" (fun x -> some_ x); f_union = pick; f_tag = tag }, xs)

let min_by f xs = extremum_by Tag_min_by ( <= ) f xs
let max_by f xs = extremum_by Tag_max_by ( >= ) f xs

(* plain min/max on comparable elements (Option-valued, like minBy) *)
let extremum tag pick xs =
  let merge =
    lam2 "a" "b" (fun a b ->
        if_ (is_some a) (if_ (is_some b) (some_ (pick (opt_get a) (opt_get b))) a) b)
  in
  Fold
    ({ f_empty = none_; f_single = lam "x" (fun x -> some_ x); f_union = merge; f_tag = tag }, xs)

let min_ xs = extremum Tag_min_by min2 xs
let max_ xs = extremum Tag_max_by max2 xs

(* average as a single pair-fold: banana split keeps it one aggBy slot
   when it occurs over group values *)
let avg xs =
  let pair_fold =
    Fold
      ( { f_empty = tup [ float_ 0.0; int_ 0 ];
          f_single = lam "x" (fun x -> tup [ to_float x; int_ 1 ]);
          f_union =
            lam2 "a" "b" (fun a b -> tup [ proj a 0 + proj b 0; proj a 1 + proj b 1 ]);
          f_tag = Tag_generic },
        xs )
  in
  Let ("$avg", pair_fold, proj (Var "$avg") 0 / to_float (proj (Var "$avg") 1))

(* -- comprehensions --------------------------------------------------- *)

type squal = SGen of string * expr | SGuard of expr

let gen x xs = SGen (x, xs)
let when_ p = SGuard p

let rec for_ quals ~yield =
  match quals with
  | [] -> invalid_arg "for_: empty qualifier list"
  | SGuard _ :: _ -> invalid_arg "for_: a guard cannot precede every generator"
  | [ SGen (x, xs) ] -> Map (Lam (x, yield), xs)
  | SGen (x, xs) :: SGuard p :: rest ->
      (* for (x <- xs; if p; rest) == for (x <- xs.withFilter(x => p); rest) *)
      for_ (SGen (x, Filter (Lam (x, p), xs)) :: rest) ~yield
  | SGen (x, xs) :: rest -> FlatMap (Lam (x, for_ rest ~yield), xs)

(* -- stateful bags ----------------------------------------------------- *)

let stateful ~key init = Stateful_create { key; init }
let state_bag s = Stateful_bag s
let update s udf = Stateful_update { state = s; udf }

let update_msgs s ~msg_key ~messages udf =
  Stateful_update_msgs { state = s; msg_key; messages; udf }

(* -- statements -------------------------------------------------------- *)

let s_let x e = SLet (x, e)
let s_var x e = SVar (x, e)
let assign x e = SAssign (x, e)
let while_ c body = SWhile (c, body)
let s_if c t e = SIf (c, t, e)
let program ?(ret = unit_) body = { body; ret }
