(** Staged compilation of embedded-language terms.

    A partial-evaluation / normalization-by-evaluation pass in the spirit of
    {e Stream Fusion, to Completeness} and {e Embedding by Normalisation}
    (see PAPERS.md): each fused UDF body emitted by the compiler pipeline is
    walked {e once} and turned into a nested OCaml closure over
    {!Emma_value.Value}, so per-tuple evaluation performs no tree dispatch
    and no string-keyed environment lookups. Variables bound by the UDF's
    own binders become positional slots; names captured from the driver
    environment (broadcast values, constants) are resolved and inlined at
    compile time.

    The reference interpreter ({!Eval}) remains the semantics and serves as
    the differential-testing oracle: compiled closures produce the same
    values, raise the same classified errors ([Eval.Eval_error],
    [Emma_value.Value.Type_error], [Invalid_argument]) with the same
    messages, and observe the same evaluation order. Compilation itself
    never raises — a subterm that would fail at runtime compiles into code
    that re-raises that error exactly when the interpreter would.

    Compilation never calls {!Expr.fresh}, so it cannot perturb the
    deterministic names in tooling output. *)

val fn :
  Eval.ctx -> Eval.env -> param:string -> Expr.expr -> Emma_value.Value.t -> Emma_value.Value.t
(** [fn ctx env ~param body] compiles the unary UDF [fun param -> body]
    under the captured environment [env]; the returned closure behaves like
    [fun v -> Eval.eval_value ctx (Eval.bind param (V v) env) body]. *)

val fn2 :
  Eval.ctx ->
  Eval.env ->
  param1:string ->
  param2:string ->
  Expr.expr ->
  Emma_value.Value.t ->
  Emma_value.Value.t ->
  Emma_value.Value.t
(** Binary (uncurried at the plan level) UDF; [param2] is the inner binder
    and shadows [param1] if the names coincide, like the interpreter's bind
    order. *)

val fold_fns :
  Eval.ctx ->
  Eval.env ->
  Expr.fold_fns ->
  Emma_value.Value.t
  * (Emma_value.Value.t -> Emma_value.Value.t)
  * (Emma_value.Value.t -> Emma_value.Value.t -> Emma_value.Value.t)
(** Compiles a fold algebra to [(empty, single, union)]. The three
    expressions are evaluated eagerly (when [fold_fns] is called), matching
    the engine's interpreted fold runtime. *)

val value : Eval.ctx -> Eval.env -> Expr.expr -> Emma_value.Value.t
(** Whole-expression evaluation via staging; observationally equivalent to
    {!Eval.eval_value}. Used by the differential test-suite. *)
