module Value = Emma_value.Value

type t =
  | Add | Sub | Mul | Div | Mod | Neg
  | Eq | Ne | Lt | Le | Gt | Ge
  | And | Or | Not
  | Min2 | Max2 | Abs | Sqrt | Floor | To_float | To_int
  | Vadd | Vsub | Vscale | Vdiv_scalar | Vdist | Vdot | Vzeros
  | Str_concat | Str_len | Str_contains
  | Is_some | Opt_get | Opt_get_or | Mk_some | Mk_none
  | Mk_blob | Blob_bytes
  | Hash_value

let name = function
  | Add -> "add" | Sub -> "sub" | Mul -> "mul" | Div -> "div" | Mod -> "mod" | Neg -> "neg"
  | Eq -> "eq" | Ne -> "ne" | Lt -> "lt" | Le -> "le" | Gt -> "gt" | Ge -> "ge"
  | And -> "and" | Or -> "or" | Not -> "not"
  | Min2 -> "min2" | Max2 -> "max2" | Abs -> "abs" | Sqrt -> "sqrt" | Floor -> "floor"
  | To_float -> "to_float" | To_int -> "to_int"
  | Vadd -> "vadd" | Vsub -> "vsub" | Vscale -> "vscale" | Vdiv_scalar -> "vdiv_scalar"
  | Vdist -> "vdist" | Vdot -> "vdot" | Vzeros -> "vzeros"
  | Str_concat -> "str_concat" | Str_len -> "str_len" | Str_contains -> "str_contains"
  | Is_some -> "is_some" | Opt_get -> "opt_get" | Opt_get_or -> "opt_get_or"
  | Mk_some -> "some" | Mk_none -> "none"
  | Mk_blob -> "mk_blob" | Blob_bytes -> "blob_bytes"
  | Hash_value -> "hash"

let all =
  [ Add; Sub; Mul; Div; Mod; Neg; Eq; Ne; Lt; Le; Gt; Ge; And; Or; Not; Min2; Max2; Abs;
    Sqrt; Floor; To_float; To_int; Vadd; Vsub; Vscale; Vdiv_scalar; Vdist; Vdot; Vzeros;
    Str_concat; Str_len; Str_contains; Is_some; Opt_get; Opt_get_or; Mk_some; Mk_none;
    Mk_blob; Blob_bytes; Hash_value ]

let of_name s = List.find_opt (fun p -> String.equal (name p) s) all

let arity = function
  | Neg | Not | Abs | Sqrt | Floor | To_float | To_int | Str_len | Is_some | Opt_get
  | Mk_some | Hash_value | Vzeros | Blob_bytes -> 1
  | Mk_none -> 0
  | Add | Sub | Mul | Div | Mod | Eq | Ne | Lt | Le | Gt | Ge | And | Or | Min2 | Max2
  | Vadd | Vsub | Vscale | Vdiv_scalar | Vdist | Vdot | Str_concat | Str_contains
  | Opt_get_or | Mk_blob -> 2

let is_commutative = function
  | Add | Mul | Min2 | Max2 | And | Or | Eq | Ne -> true
  | Sub | Div | Mod | Neg | Lt | Le | Gt | Ge | Not | Abs | Sqrt | Floor | To_float
  | To_int | Vadd | Vsub | Vscale | Vdiv_scalar | Vdist | Vdot | Vzeros | Str_concat
  | Str_len | Str_contains | Is_some | Opt_get | Opt_get_or | Mk_some | Mk_none
  | Hash_value | Mk_blob | Blob_bytes -> false

let type_error fmt = Printf.ksprintf (fun s -> raise (Value.Type_error s)) fmt

(* Numeric binary ops stay in Int when both operands are Int; otherwise they
   promote to Float, like most host languages would. *)
let num2 op_name fi ff a b =
  match (a, b) with
  | Value.Int x, Value.Int y -> Value.Int (fi x y)
  | (Value.Int _ | Value.Float _), (Value.Int _ | Value.Float _) ->
      Value.Float (ff (Value.to_number a) (Value.to_number b))
  | _ -> type_error "%s: expected numbers, got %s and %s" op_name (Value.type_name a) (Value.type_name b)

let cmp2 rel a b = Value.Bool (rel (Value.compare a b) 0)

let bad_application p = invalid_arg (Printf.sprintf "prim %s: bad application" (name p))

(* Arity-specialized evaluators. The staged compiler ({!Compile}) checks
   arity once at compile time and then calls these directly, so a hot
   per-tuple primitive neither allocates an argument list nor re-checks
   its arity; [apply] below dispatches to them, so both evaluation paths
   share one implementation (and one set of error messages). *)

let apply0 p = match p with Mk_none -> Value.none | _ -> bad_application p

let apply1 p a =
  match (p, a) with
  | Neg, Value.Int x -> Value.Int (-x)
  | Neg, Value.Float x -> Value.Float (-.x)
  | Neg, v -> type_error "neg: expected number, got %s" (Value.type_name v)
  | Not, a -> Value.Bool (not (Value.to_bool a))
  | Abs, Value.Int x -> Value.Int (abs x)
  | Abs, Value.Float x -> Value.Float (Float.abs x)
  | Abs, v -> type_error "abs: expected number, got %s" (Value.type_name v)
  | Sqrt, v -> Value.Float (sqrt (Value.to_number v))
  | Floor, v -> Value.Float (Float.floor (Value.to_number v))
  | To_float, v -> Value.Float (Value.to_number v)
  | To_int, Value.Int x -> Value.Int x
  | To_int, Value.Float x -> Value.Int (int_of_float x)
  | To_int, v -> type_error "to_int: expected number, got %s" (Value.type_name v)
  | Vzeros, n -> Value.Vector (Emma_util.Vec.zeros (Value.to_int n))
  | Str_len, a -> Value.Int (String.length (Value.to_string_exn a))
  | Is_some, v -> Value.Bool (Option.is_some (Value.to_option v))
  | Opt_get, v -> begin
      match Value.to_option v with
      | Some x -> x
      | None -> type_error "opt_get: None"
    end
  | Mk_some, v -> Value.some v
  | Blob_bytes, Value.Blob { bytes; _ } -> Value.Int bytes
  | Blob_bytes, v -> type_error "blob_bytes: expected blob, got %s" (Value.type_name v)
  | Hash_value, v -> Value.Int (Value.hash v)
  | _ -> bad_application p

let apply2 p a b =
  match (p, a, b) with
  | Add, a, b -> num2 "add" ( + ) ( +. ) a b
  | Sub, a, b -> num2 "sub" ( - ) ( -. ) a b
  | Mul, a, b -> num2 "mul" ( * ) ( *. ) a b
  | Div, Value.Int x, Value.Int y ->
      if y = 0 then type_error "div: integer division by zero" else Value.Int (x / y)
  | Div, a, b -> Value.Float (Value.to_number a /. Value.to_number b)
  | Mod, Value.Int x, Value.Int y ->
      if y = 0 then type_error "mod: modulo by zero" else Value.Int (x mod y)
  | Mod, _, _ -> type_error "mod: expected ints"
  | Eq, a, b -> Value.Bool (Value.equal a b)
  | Ne, a, b -> Value.Bool (not (Value.equal a b))
  | Lt, a, b -> cmp2 ( < ) a b
  | Le, a, b -> cmp2 ( <= ) a b
  | Gt, a, b -> cmp2 ( > ) a b
  | Ge, a, b -> cmp2 ( >= ) a b
  | And, a, b -> Value.Bool (Value.to_bool a && Value.to_bool b)
  | Or, a, b -> Value.Bool (Value.to_bool a || Value.to_bool b)
  | Min2, a, b -> if Value.compare a b <= 0 then a else b
  | Max2, a, b -> if Value.compare a b >= 0 then a else b
  | Vadd, a, b -> Value.Vector (Emma_util.Vec.add (Value.to_vector a) (Value.to_vector b))
  | Vsub, a, b -> Value.Vector (Emma_util.Vec.sub (Value.to_vector a) (Value.to_vector b))
  | Vscale, c, v -> Value.Vector (Emma_util.Vec.scale (Value.to_number c) (Value.to_vector v))
  | Vdiv_scalar, v, c ->
      Value.Vector (Emma_util.Vec.div_scalar (Value.to_vector v) (Value.to_number c))
  | Vdist, a, b -> Value.Float (Emma_util.Vec.dist (Value.to_vector a) (Value.to_vector b))
  | Vdot, a, b -> Value.Float (Emma_util.Vec.dot (Value.to_vector a) (Value.to_vector b))
  | Str_concat, a, b -> Value.String (Value.to_string_exn a ^ Value.to_string_exn b)
  | Str_contains, hay, needle ->
      let h = Value.to_string_exn hay and n = Value.to_string_exn needle in
      let nh = String.length h and nn = String.length n in
      let rec go i = i + nn <= nh && (String.sub h i nn = n || go (i + 1)) in
      Value.Bool (nn = 0 || go 0)
  | Opt_get_or, v, dflt -> Option.value (Value.to_option v) ~default:dflt
  | Mk_blob, n, tag -> Value.blob ~bytes:(Value.to_int n) ~tag:(Value.to_int tag)
  | _ -> bad_application p

let apply p args =
  let check_arity n = if List.length args <> n then invalid_arg (Printf.sprintf "prim %s: arity %d expected, got %d" (name p) n (List.length args)) in
  check_arity (arity p);
  match args with
  | [] -> apply0 p
  | [ a ] -> apply1 p a
  | [ a; b ] -> apply2 p a b
  | _ -> bad_application p
