(** Abstract syntax of the deeply embedded Emma language.

    This plays the role of the Scala AST in the paper: programs are built
    against the desugared monad-operator form ([Map]/[FlatMap]/[Filter]
    chains — see {!Surface} for the comprehension syntax that desugars into
    them), and the compiler pipeline rewrites these trees. The [Comp] node
    is the {e comprehension view} the pipeline's first step superimposes on
    maximal DataBag expressions (paper §4.1); user programs never contain it
    directly.

    Expressions are untyped; shape errors surface as
    [Emma_value.Value.Type_error] at evaluation time, and every compiler
    rewrite is semantics-preserving by construction (and by the qcheck
    suites that evaluate both sides). *)

type source =
  | Src_table of string  (** named dataset registered with the runtime context *)

type sink = Snk_table of string

(** Well-known fold algebras. [Tag_generic] carries no structural knowledge;
    the tags let rewrite rules recognize folds the paper treats specially
    (notably [Tag_exists] for exists-unnesting, §4.2.1) without requiring
    user annotations. *)
type fold_tag =
  | Tag_generic
  | Tag_sum
  | Tag_count
  | Tag_exists
  | Tag_forall
  | Tag_min_by
  | Tag_max_by
  | Tag_is_empty

type expr =
  | Const of Emma_value.Value.t
  | Var of string
  | Lam of string * expr
  | App of expr * expr
  | Tuple of expr list
  | Proj of expr * int
  | Record of (string * expr) list
  | Field of expr * string
  | Prim of Prim.t * expr list
  | If of expr * expr * expr
  | Let of string * expr * expr
  (* -- DataBag expressions ------------------------------------------- *)
  | BagOf of expr list  (** bag literal: [DataBag(Seq(e1, ..., en))] *)
  | Range of expr * expr  (** [DataBag(lo to hi)]: bag of ints, inclusive *)
  | Read of source
  | Map of expr * expr  (** [Map (f, xs)] where [f] is a [Lam] *)
  | FlatMap of expr * expr
  | Filter of expr * expr  (** [withFilter] *)
  | GroupBy of expr * expr
      (** [GroupBy (k, xs)] yields records [{key; values}] with [values] a
          nested bag — the paper's [Grp] type. *)
  | Fold of fold_fns * expr  (** scalar-valued structural recursion *)
  | AggBy of expr * fold_fns * expr
      (** [AggBy (k, f, xs)]: fused group-and-fold (the paper's [aggBy],
          §4.2.2), yielding records [{key; agg}]. Introduced by the
          fold-group-fusion rewrite; expressible directly too. *)
  | Union of expr * expr  (** [plus] *)
  | Minus of expr * expr
  | Distinct of expr
  (* -- comprehension views (inserted by resugaring) ------------------- *)
  | Comp of comp
  | Flatten of expr  (** flatten of a bag-of-bags-valued comprehension *)
  (* -- stateful bags --------------------------------------------------- *)
  | Stateful_create of { key : expr; init : expr }
      (** converts a DataBag into a StatefulBag keyed by [key] *)
  | Stateful_bag of expr  (** reads the current state as a DataBag *)
  | Stateful_update of { state : expr; udf : expr }
      (** point-wise update; evaluates to the delta bag *)
  | Stateful_update_msgs of { state : expr; msg_key : expr; messages : expr; udf : expr }
      (** update with messages; evaluates to the delta bag *)

and comp = { head : expr; quals : qual list; alg : alg }

and qual =
  | QGen of string * expr  (** generator [x <- xs] *)
  | QGuard of expr  (** filter [p x1 ... xn] *)

and alg =
  | Alg_bag  (** construct a result bag *)
  | Alg_fold of fold_fns  (** evaluate under a fold algebra *)

and fold_fns = {
  f_empty : expr;  (** value substituted for [emp] *)
  f_single : expr;  (** unary [Lam] substituted for [sng] *)
  f_union : expr;  (** binary ([Lam] of [Lam]) substituted for [uni] *)
  f_tag : fold_tag;
}

type stmt =
  | SLet of string * expr  (** [val x = e] *)
  | SVar of string * expr  (** [var x = e] *)
  | SAssign of string * expr
  | SWhile of expr * stmt list
  | SIf of expr * stmt list * stmt list
  | SWrite of sink * expr

type program = { body : stmt list; ret : expr }
(** A driver program: statements followed by a result expression (used by
    tests and the CLI to observe the outcome; [ret] may be [Const Unit]). *)

(** {1 Generic traversal} *)

val map_children : (expr -> expr) -> expr -> expr
(** Applies [f] to every immediate subexpression (not recursively). *)

val rewrite_bottom_up : (expr -> expr) -> expr -> expr
(** Rebuilds the tree bottom-up, applying [f] at every node after its
    children have been rewritten. *)

val rewrite_fixpoint : (expr -> expr option) -> expr -> expr
(** Repeatedly applies the partial rewrite [f] anywhere in the tree
    (innermost-first) until no rule fires anywhere. *)

val iter_exprs : (expr -> unit) -> expr -> unit
(** Pre-order visit of every node. *)

val exists_expr : (expr -> bool) -> expr -> bool

val map_program_exprs : (expr -> expr) -> program -> program
(** Applies [f] to every top-level statement expression (not recursively
    inside them). *)

val iter_program_exprs : (expr -> unit) -> program -> unit

(** {1 Variables} *)

val free_vars : expr -> Emma_util.Strset.t
val comp_bound_vars : qual list -> Emma_util.Strset.t

val fresh : string -> string
(** [fresh hint] generates a globally fresh variable name based on [hint]. *)

val with_fresh_reset : (unit -> 'a) -> 'a
(** Runs [f] with the fresh-name counter reset to zero, restoring the
    previous counter afterwards. Generated names contain ['$'], which user
    programs cannot, so compiling a self-contained program under a reset is
    safe — this is what makes tooling output (e.g. [emma explain] and its
    golden files) deterministic regardless of what was compiled earlier in
    the process. Not for concurrent use. *)

val subst : string -> expr -> expr -> expr
(** [subst x e body] capture-avoidingly substitutes [e] for free
    occurrences of [x] in [body], alpha-renaming binders as needed. *)

val rename_avoiding : Emma_util.Strset.t -> qual list -> expr -> qual list * expr
(** Alpha-renames the generators of a qualifier list (and the dependent
    head/qualifier occurrences) so none of the bound names clashes with the
    given set. *)

val beta_reduce : expr -> expr
(** Normalizes administrative redexes: [App (Lam (x, b), a)] becomes
    [subst x a b], recursively. Used to keep rewritten terms readable. *)

(** {1 Predicates} *)

val is_bag_op : expr -> bool
(** True for nodes whose result is collection-typed (DataBag operators,
    bag literals, comprehensions with a Bag algebra, stateful deltas). *)

val equal : expr -> expr -> bool
(** Structural (alpha-sensitive) equality. *)

val size : expr -> int
(** Number of AST nodes; used by tests and the inliner's size heuristics. *)
