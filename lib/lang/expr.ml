module Strset = Emma_util.Strset

type source = Src_table of string
type sink = Snk_table of string

type fold_tag =
  | Tag_generic
  | Tag_sum
  | Tag_count
  | Tag_exists
  | Tag_forall
  | Tag_min_by
  | Tag_max_by
  | Tag_is_empty

type expr =
  | Const of Emma_value.Value.t
  | Var of string
  | Lam of string * expr
  | App of expr * expr
  | Tuple of expr list
  | Proj of expr * int
  | Record of (string * expr) list
  | Field of expr * string
  | Prim of Prim.t * expr list
  | If of expr * expr * expr
  | Let of string * expr * expr
  | BagOf of expr list
  | Range of expr * expr
  | Read of source
  | Map of expr * expr
  | FlatMap of expr * expr
  | Filter of expr * expr
  | GroupBy of expr * expr
  | Fold of fold_fns * expr
  | AggBy of expr * fold_fns * expr
  | Union of expr * expr
  | Minus of expr * expr
  | Distinct of expr
  | Comp of comp
  | Flatten of expr
  | Stateful_create of { key : expr; init : expr }
  | Stateful_bag of expr
  | Stateful_update of { state : expr; udf : expr }
  | Stateful_update_msgs of { state : expr; msg_key : expr; messages : expr; udf : expr }

and comp = { head : expr; quals : qual list; alg : alg }
and qual = QGen of string * expr | QGuard of expr
and alg = Alg_bag | Alg_fold of fold_fns

and fold_fns = { f_empty : expr; f_single : expr; f_union : expr; f_tag : fold_tag }

type stmt =
  | SLet of string * expr
  | SVar of string * expr
  | SAssign of string * expr
  | SWhile of expr * stmt list
  | SIf of expr * stmt list * stmt list
  | SWrite of sink * expr

type program = { body : stmt list; ret : expr }

(* ------------------------------------------------------------------ *)
(* Generic traversal                                                    *)
(* ------------------------------------------------------------------ *)

let map_fold_fns f fns =
  { fns with f_empty = f fns.f_empty; f_single = f fns.f_single; f_union = f fns.f_union }

let map_qual f = function
  | QGen (x, e) -> QGen (x, f e)
  | QGuard e -> QGuard (f e)

let map_alg f = function
  | Alg_bag -> Alg_bag
  | Alg_fold fns -> Alg_fold (map_fold_fns f fns)

let map_children f e =
  match e with
  | Const _ | Var _ | Read _ -> e
  | Lam (x, b) -> Lam (x, f b)
  | App (a, b) -> App (f a, f b)
  | Tuple es -> Tuple (List.map f es)
  | Proj (a, i) -> Proj (f a, i)
  | Record fields -> Record (List.map (fun (n, x) -> (n, f x)) fields)
  | Field (a, n) -> Field (f a, n)
  | Prim (p, es) -> Prim (p, List.map f es)
  | If (c, t, el) -> If (f c, f t, f el)
  | Let (x, a, b) -> Let (x, f a, f b)
  | BagOf es -> BagOf (List.map f es)
  | Range (a, b) -> Range (f a, f b)
  | Map (fn, xs) -> Map (f fn, f xs)
  | FlatMap (fn, xs) -> FlatMap (f fn, f xs)
  | Filter (p, xs) -> Filter (f p, f xs)
  | GroupBy (k, xs) -> GroupBy (f k, f xs)
  | Fold (fns, xs) -> Fold (map_fold_fns f fns, f xs)
  | AggBy (k, fns, xs) -> AggBy (f k, map_fold_fns f fns, f xs)
  | Union (a, b) -> Union (f a, f b)
  | Minus (a, b) -> Minus (f a, f b)
  | Distinct a -> Distinct (f a)
  | Comp { head; quals; alg } ->
      Comp { head = f head; quals = List.map (map_qual f) quals; alg = map_alg f alg }
  | Flatten a -> Flatten (f a)
  | Stateful_create { key; init } -> Stateful_create { key = f key; init = f init }
  | Stateful_bag a -> Stateful_bag (f a)
  | Stateful_update { state; udf } -> Stateful_update { state = f state; udf = f udf }
  | Stateful_update_msgs { state; msg_key; messages; udf } ->
      Stateful_update_msgs
        { state = f state; msg_key = f msg_key; messages = f messages; udf = f udf }

let rec rewrite_bottom_up f e = f (map_children (rewrite_bottom_up f) e)

let rewrite_fixpoint rule e =
  (* Innermost-first pass; repeat whole passes until a fixpoint. The rule
     budget guards against non-terminating rule sets in development. *)
  let budget = ref 100_000 in
  let changed = ref true in
  let step e =
    match rule e with
    | Some e' ->
        changed := true;
        decr budget;
        if !budget <= 0 then failwith "rewrite_fixpoint: rule budget exceeded";
        e'
    | None -> e
  in
  let result = ref e in
  while !changed do
    changed := false;
    result := rewrite_bottom_up step !result
  done;
  !result

let iter_exprs visit e =
  let rec go e =
    visit e;
    ignore
      (map_children
         (fun c ->
           go c;
           c)
         e)
  in
  go e

let exists_expr pred e =
  let found = ref false in
  iter_exprs (fun x -> if pred x then found := true) e;
  !found

let map_program_exprs f { body; ret } =
  let rec map_stmt = function
    | SLet (x, e) -> SLet (x, f e)
    | SVar (x, e) -> SVar (x, f e)
    | SAssign (x, e) -> SAssign (x, f e)
    | SWhile (c, b) -> SWhile (f c, List.map map_stmt b)
    | SIf (c, t, e) -> SIf (f c, List.map map_stmt t, List.map map_stmt e)
    | SWrite (snk, e) -> SWrite (snk, f e)
  in
  { body = List.map map_stmt body; ret = f ret }

let iter_program_exprs visit p =
  ignore
    (map_program_exprs
       (fun e ->
         visit e;
         e)
       p)

(* ------------------------------------------------------------------ *)
(* Variables                                                            *)
(* ------------------------------------------------------------------ *)

let fv_fold_fns fv fns =
  Strset.union (fv fns.f_empty) (Strset.union (fv fns.f_single) (fv fns.f_union))

let rec free_vars e =
  match e with
  | Const _ | Read _ -> Strset.empty
  | Var x -> Strset.singleton x
  | Lam (x, b) -> Strset.remove x (free_vars b)
  | Let (x, a, b) -> Strset.union (free_vars a) (Strset.remove x (free_vars b))
  | Comp { head; quals; alg } ->
      (* Generators bind left to right: a generator's source sees earlier
         bindings removed only for names it does not rebind. *)
      let rec go bound = function
        | [] ->
            let head_fv = Strset.diff (free_vars head) bound in
            let alg_fv =
              match alg with
              | Alg_bag -> Strset.empty
              | Alg_fold fns -> Strset.diff (fv_fold_fns free_vars fns) bound
            in
            Strset.union head_fv alg_fv
        | QGen (x, src) :: rest ->
            Strset.union (Strset.diff (free_vars src) bound) (go (Strset.add x bound) rest)
        | QGuard p :: rest -> Strset.union (Strset.diff (free_vars p) bound) (go bound rest)
      in
      go Strset.empty quals
  | _ ->
      let acc = ref Strset.empty in
      ignore
        (map_children
           (fun c ->
             acc := Strset.union !acc (free_vars c);
             c)
           e);
      (match e with
      | Fold (fns, _) -> acc := Strset.union !acc (fv_fold_fns free_vars fns)
      | AggBy (_, fns, _) -> acc := Strset.union !acc (fv_fold_fns free_vars fns)
      | _ -> ());
      !acc

let comp_bound_vars quals =
  List.fold_left
    (fun acc -> function QGen (x, _) -> Strset.add x acc | QGuard _ -> acc)
    Strset.empty quals

let fresh_counter = ref 0

let fresh hint =
  incr fresh_counter;
  Printf.sprintf "%s$%d" hint !fresh_counter

let with_fresh_reset f =
  let saved = !fresh_counter in
  fresh_counter := 0;
  Fun.protect ~finally:(fun () -> fresh_counter := saved) f

(* Capture-avoiding substitution. *)
let rec subst x replacement body =
  let fv_repl = free_vars replacement in
  match body with
  | Var y -> if String.equal x y then replacement else body
  | Const _ | Read _ -> body
  | Lam (y, b) ->
      if String.equal x y then body
      else if Strset.mem y fv_repl then begin
        let y' = fresh y in
        Lam (y', subst x replacement (subst y (Var y') b))
      end
      else Lam (y, subst x replacement b)
  | Let (y, a, b) ->
      let a' = subst x replacement a in
      if String.equal x y then Let (y, a', b)
      else if Strset.mem y fv_repl then begin
        let y' = fresh y in
        Let (y', a', subst x replacement (subst y (Var y') b))
      end
      else Let (y, a', subst x replacement b)
  | Comp c -> Comp (subst_comp x replacement c)
  | e -> map_children (subst x replacement) e

and subst_comp x replacement { head; quals; alg } =
  let fv_repl = free_vars replacement in
  (* Walk qualifiers left to right, stopping the substitution when [x] gets
     rebound, and renaming generators that would capture the replacement. *)
  let rec go quals =
    match quals with
    | [] ->
        let head' = subst x replacement head in
        let alg' =
          match alg with
          | Alg_bag -> Alg_bag
          | Alg_fold fns -> Alg_fold (map_fold_fns (subst x replacement) fns)
        in
        ([], head', alg')
    | QGuard p :: rest ->
        let rest', head', alg' = go rest in
        (QGuard (subst x replacement p) :: rest', head', alg')
    | QGen (y, src) :: rest ->
        let src' = subst x replacement src in
        if String.equal y x then (QGen (y, src') :: rest, head, alg)
        else if Strset.mem y fv_repl then begin
          let y' = fresh y in
          let rename e = subst y (Var y') e in
          let rest_renamed = List.map (map_qual rename) rest in
          let head_renamed = rename head in
          let alg_renamed =
            match alg with
            | Alg_bag -> Alg_bag
            | Alg_fold fns -> Alg_fold (map_fold_fns rename fns)
          in
          let rest', head', alg' =
            go_with rest_renamed head_renamed alg_renamed
          in
          (QGen (y', src') :: rest', head', alg')
        end
        else
          let rest', head', alg' = go rest in
          (QGen (y, src') :: rest', head', alg')
  and go_with quals head alg =
    match subst_comp x replacement { head; quals; alg } with
    | { head = h; quals = q; alg = a } -> (q, h, a)
  in
  let quals', head', alg' = go quals in
  { head = head'; quals = quals'; alg = alg' }

let rename_avoiding avoid quals tail_expr =
  (* Renames every generator whose name clashes with [avoid] (or an earlier
     generator), rippling the renaming through later qualifiers and the
     tail expression. *)
  let rec go seen acc quals tail =
    match quals with
    | [] -> (List.rev acc, tail)
    | QGuard p :: rest -> go seen (QGuard p :: acc) rest tail
    | QGen (x, src) :: rest ->
        if Strset.mem x seen || Strset.mem x avoid then begin
          let x' = fresh x in
          let rename e = subst x (Var x') e in
          let rest' = List.map (map_qual rename) rest in
          go (Strset.add x' seen) (QGen (x', src) :: acc) rest' (rename tail)
        end
        else go (Strset.add x seen) (QGen (x, src) :: acc) rest tail
  in
  go Strset.empty [] quals tail_expr

let rec beta_reduce e =
  let e = map_children beta_reduce e in
  match e with
  | App (Lam (x, b), a) -> beta_reduce (subst x a b)
  | e -> e

let is_bag_op = function
  | BagOf _ | Range _ | Read _ | Map _ | FlatMap _ | Filter _ | GroupBy _ | AggBy _
  | Union _ | Minus _ | Distinct _ | Flatten _ | Stateful_bag _ | Stateful_update _
  | Stateful_update_msgs _ ->
      true
  | Comp { alg = Alg_bag; _ } -> true
  | Comp { alg = Alg_fold _; _ } -> false
  | Const _ | Var _ | Lam _ | App _ | Tuple _ | Proj _ | Record _ | Field _ | Prim _
  | If _ | Let _ | Fold _ | Stateful_create _ ->
      false

let equal a b = a = b

let size e =
  let n = ref 0 in
  iter_exprs (fun _ -> incr n) e;
  !n
