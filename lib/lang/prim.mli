(** Primitive (built-in) operations of the embedded expression language.

    Primitives are pure scalar/vector functions — everything collection-typed
    goes through the DataBag operators in {!Expr} instead, because the
    compiler must see collection operations to rewrite them. *)

type t =
  (* arithmetic: polymorphic over Int/Float, following the operand types *)
  | Add | Sub | Mul | Div | Mod | Neg
  (* comparison: structural over any values *)
  | Eq | Ne | Lt | Le | Gt | Ge
  (* boolean *)
  | And | Or | Not
  (* numeric functions *)
  | Min2 | Max2 | Abs | Sqrt | Floor | To_float | To_int
  (* vectors *)
  | Vadd | Vsub | Vscale | Vdiv_scalar | Vdist | Vdot | Vzeros
  (* strings *)
  | Str_concat | Str_len | Str_contains
  (* options *)
  | Is_some | Opt_get | Opt_get_or | Mk_some | Mk_none
  (* blobs: opaque payloads carrying only a logical size *)
  | Mk_blob | Blob_bytes
  (* misc *)
  | Hash_value

val name : t -> string
val arity : t -> int

val of_name : string -> t option
(** Inverse of [name]; used by the CLI. *)

val apply : t -> Emma_value.Value.t list -> Emma_value.Value.t
(** Evaluate a primitive. Raises [Emma_value.Value.Type_error] on shape
    mismatches and [Invalid_argument] on arity mismatches. Numeric binary
    operators promote [Int] to [Float] when operand kinds are mixed. *)

val apply0 : t -> Emma_value.Value.t
val apply1 : t -> Emma_value.Value.t -> Emma_value.Value.t

val apply2 : t -> Emma_value.Value.t -> Emma_value.Value.t -> Emma_value.Value.t
(** Arity-specialized variants of {!apply} that skip the argument-list
    allocation and the runtime arity check; callers (the staged compiler
    in {!Compile}) must have verified [arity p] themselves. Raise
    [Invalid_argument "prim ...: bad application"] if [p] is not of the
    corresponding arity. *)

val is_commutative : t -> bool
(** True for primitives known to be commutative ([Add], [Mul], [Min2],
    [Max2], [And], [Or], [Eq], [Ne]); the fold-fusion well-definedness
    linter uses this. *)
