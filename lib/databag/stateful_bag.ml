(* State is a sorted array of (key, element ref): lookups are binary
   searches, updates mutate in place — the point of a StatefulBag is to
   avoid rebuilding the full bag each iteration. *)

type ('a, 'k) t = {
  key_of : 'a -> 'k;
  cmp : 'k -> 'k -> int;
  entries : ('k * 'a ref) array;
}

let create ~key ?(cmp = Stdlib.compare) bag =
  let entries =
    Databag.to_list bag
    |> List.map (fun x -> (key x, ref x))
    |> List.sort (fun (k1, _) (k2, _) -> cmp k1 k2)
    |> Array.of_list
  in
  Array.iteri
    (fun i (k, _) ->
      if i > 0 then
        let k', _ = entries.(i - 1) in
        if cmp k k' = 0 then invalid_arg "Stateful_bag.create: duplicate key")
    entries;
  { key_of = key; cmp; entries }

let bag t = Databag.of_list (Array.to_list t.entries |> List.map (fun (_, r) -> !r))

let size t = Array.length t.entries

let find_ref t k =
  let rec go lo hi =
    if lo >= hi then None
    else
      let mid = (lo + hi) / 2 in
      let k', r = t.entries.(mid) in
      let c = t.cmp k k' in
      if c = 0 then Some r else if c < 0 then go lo mid else go (mid + 1) hi
  in
  go 0 (Array.length t.entries)

let find t k = Option.map (fun r -> !r) (find_ref t k)

let update t u =
  let delta = ref [] in
  Array.iter
    (fun (k, r) ->
      match u !r with
      | None -> ()
      | Some x' ->
          if t.cmp (t.key_of x') k <> 0 then
            invalid_arg "Stateful_bag.update: UDF changed the element key";
          r := x';
          delta := x' :: !delta)
    t.entries;
  Databag.of_list (List.rev !delta)

let update_with_messages t ~msg_key msgs u =
  let changed : ('k, unit) Hashtbl.t = Hashtbl.create 16 in
  let delta = ref [] in
  List.iter
    (fun m ->
      let k = msg_key m in
      match find_ref t k with
      | None -> ()
      | Some r -> begin
          match u !r m with
          | None -> ()
          | Some x' ->
              if t.cmp (t.key_of x') k <> 0 then
                invalid_arg "Stateful_bag.update_with_messages: UDF changed the element key";
              r := x';
              if not (Hashtbl.mem changed k) then begin
                Hashtbl.add changed k ();
                delta := r :: !delta
              end
        end)
    (Databag.to_list msgs);
  Databag.of_list (List.rev_map (fun r -> !r) !delta)
