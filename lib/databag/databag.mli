(** Homogeneous collections with bag semantics — the paper's core [DataBag]
    abstraction (Listing 3), implemented natively in the host language so
    programs can be developed and debugged locally (paper §3.1, "Host
    Language Execution").

    The representation is the paper's {e union representation}
    ([AlgBag-Union], §2.2.1): a bag is a tree of [emp] / [sng x] /
    [uni l r] constructor applications, and every native computation is
    {e structural recursion} ([fold], §2.2.2) over that tree. Because bags
    are equivalence classes of such trees modulo unit/associativity/
    commutativity, the concrete tree shape is unobservable through this
    interface as long as fold arguments satisfy the well-definedness
    conditions ([u] associative, commutative, with unit [e]); the property
    test-suite checks this for all exported aliases. *)

type 'a t

(** {1 Constructors (the union algebra)} *)

val empty : 'a t
val singleton : 'a -> 'a t

val union : 'a t -> 'a t -> 'a t
(** [union] is the paper's [uni] — also exposed as [plus] in the Listing 3
    API. O(1). *)

val of_list : 'a list -> 'a t
(** Builds a balanced union tree over singletons. *)

val of_array : 'a array -> 'a t
val of_seq : 'a Seq.t -> 'a t

(** {1 Conversion ([fetch])} *)

val to_list : 'a t -> 'a list
(** Element order is the left-to-right leaf order of the current tree and
    carries no semantic meaning. *)

val to_array : 'a t -> 'a array
val to_seq : 'a t -> 'a Seq.t

(** {1 Structural recursion} *)

val fold : empty:'b -> single:('a -> 'b) -> union:('b -> 'b -> 'b) -> 'a t -> 'b
(** [fold ~empty ~single ~union xs] substitutes the three arguments for the
    constructors of the tree representing [xs] and evaluates it. The result
    is independent of the tree shape iff [union] is associative and
    commutative with unit [empty] (§2.2.2, well-definedness conditions). *)

(** {1 Monad operators (enable comprehension syntax)} *)

val map : ('a -> 'b) -> 'a t -> 'b t
val flat_map : ('a -> 'b t) -> 'a t -> 'b t
val filter : ('a -> bool) -> 'a t -> 'a t

(** {1 Nesting} *)

type ('k, 'v) grp = { key : 'k; values : 'v }
(** A group produced by [group_by]: the paper's [Grp] type. [values] is a
    full [DataBag], not an iterator — nesting is first-class. *)

val group_by : ?cmp:('k -> 'k -> int) -> ('a -> 'k) -> 'a t -> ('k, 'a t) grp t
(** Groups elements by key. [cmp] defaults to the polymorphic compare; pass
    an explicit comparator for keys with non-structural equality. The order
    of groups and of values within each group is unspecified. *)

(** {1 Difference, union, duplicate removal} *)

val plus : 'a t -> 'a t -> 'a t
(** Alias for [union] (Listing 3 name). *)

val minus : ?cmp:('a -> 'a -> int) -> 'a t -> 'a t -> 'a t
(** Multiset difference: each occurrence in the subtrahend cancels one
    occurrence in the minuend. *)

val distinct : ?cmp:('a -> 'a -> int) -> 'a t -> 'a t

(** {1 Aggregates — aliases for various folds} *)

val size : 'a t -> int
val is_empty : 'a t -> bool
val sum : float t -> float
val sum_int : int t -> int
val sum_by : ('a -> float) -> 'a t -> float
val product : float t -> float
val count : ('a -> bool) -> 'a t -> int
val exists : ('a -> bool) -> 'a t -> bool
val for_all : ('a -> bool) -> 'a t -> bool
val min_by : ('a -> float) -> 'a t -> 'a option
val max_by : ('a -> float) -> 'a t -> 'a option
val min_opt : ?cmp:('a -> 'a -> int) -> 'a t -> 'a option
val max_opt : ?cmp:('a -> 'a -> int) -> 'a t -> 'a option

(** {1 Miscellaneous} *)

val equal_as_bags : ?cmp:('a -> 'a -> int) -> 'a t -> 'a t -> bool
(** Multiset equality: same elements with the same multiplicities,
    regardless of tree shape or element order. *)

val depth : 'a t -> int
(** Height of the underlying union tree; exposed for tests that check fold
    is shape-independent. *)

val rebalance_left : 'a t -> 'a t
(** Reassociates the tree into a left-deep chain ([AlgBag-Ins] shape)
    without changing the bag value; exposed for the same tests. *)

val pp : (Format.formatter -> 'a -> unit) -> Format.formatter -> 'a t -> unit
