(* Bags in union representation (paper §2.2.1, AlgBag-Union). The concrete
   tree shape is an implementation detail; all observations go through
   [fold], whose well-definedness conditions make the shape unobservable. *)

type 'a t =
  | Emp
  | Sng of 'a
  | Uni of 'a t * 'a t

let empty = Emp
let singleton x = Sng x

let union a b =
  match (a, b) with
  | Emp, b -> b
  | a, Emp -> a
  | a, b -> Uni (a, b)

let plus = union

let of_array arr =
  (* Balanced tree so that fold recursion depth is logarithmic. *)
  let rec build lo hi =
    if lo >= hi then Emp
    else if hi - lo = 1 then Sng arr.(lo)
    else
      let mid = (lo + hi) / 2 in
      Uni (build lo mid, build mid hi)
  in
  build 0 (Array.length arr)

let of_list xs = of_array (Array.of_list xs)
let of_seq s = of_array (Array.of_seq s)

let fold ~empty ~single ~union xs =
  let rec go = function
    | Emp -> empty
    | Sng x -> single x
    | Uni (l, r) -> union (go l) (go r)
  in
  go xs

let to_list xs =
  (* Accumulator-based flatten: avoids quadratic list appends. *)
  let rec go acc = function
    | Emp -> acc
    | Sng x -> x :: acc
    | Uni (l, r) -> go (go acc r) l
  in
  go [] xs

let to_array xs = Array.of_list (to_list xs)
let to_seq xs = List.to_seq (to_list xs)

let map f xs = fold ~empty:Emp ~single:(fun x -> Sng (f x)) ~union xs
let flat_map f xs = fold ~empty:Emp ~single:f ~union xs
let filter p xs = fold ~empty:Emp ~single:(fun x -> if p x then Sng x else Emp) ~union xs

type ('k, 'v) grp = { key : 'k; values : 'v }

let group_by ?(cmp = Stdlib.compare) key xs =
  let elems = to_list xs in
  let tagged = List.map (fun x -> (key x, x)) elems in
  let sorted = List.stable_sort (fun (k1, _) (k2, _) -> cmp k1 k2) tagged in
  let rec split_groups = function
    | [] -> []
    | (k, x) :: rest ->
        let same, others = List.partition (fun (k', _) -> cmp k k' = 0) rest in
        { key = k; values = of_list (x :: List.map snd same) } :: split_groups others
  in
  of_list (split_groups sorted)

let minus ?(cmp = Stdlib.compare) xs ys =
  let remaining = ref (List.sort cmp (to_list ys)) in
  let cancel x =
    (* Remove one occurrence of [x] from the subtrahend if present. *)
    let rec go = function
      | [] -> None
      | y :: rest when cmp x y = 0 -> Some rest
      | y :: rest -> Option.map (fun r -> y :: r) (go rest)
    in
    match go !remaining with
    | Some rest ->
        remaining := rest;
        false
    | None -> true
  in
  of_list (List.filter cancel (to_list xs))

let distinct ?(cmp = Stdlib.compare) xs =
  let sorted = List.sort cmp (to_list xs) in
  let rec dedup = function
    | [] -> []
    | [ x ] -> [ x ]
    | x :: (y :: _ as rest) -> if cmp x y = 0 then dedup rest else x :: dedup rest
  in
  of_list (dedup sorted)

let size xs = fold ~empty:0 ~single:(fun _ -> 1) ~union:( + ) xs
let is_empty xs = fold ~empty:true ~single:(fun _ -> false) ~union:( && ) xs
let sum xs = fold ~empty:0.0 ~single:Fun.id ~union:( +. ) xs
let sum_int xs = fold ~empty:0 ~single:Fun.id ~union:( + ) xs
let sum_by f xs = fold ~empty:0.0 ~single:f ~union:( +. ) xs
let product xs = fold ~empty:1.0 ~single:Fun.id ~union:( *. ) xs
let count p xs = fold ~empty:0 ~single:(fun x -> if p x then 1 else 0) ~union:( + ) xs
let exists p xs = fold ~empty:false ~single:p ~union:( || ) xs
let for_all p xs = fold ~empty:true ~single:p ~union:( && ) xs

let opt_merge better a b =
  match (a, b) with
  | None, o | o, None -> o
  | Some x, Some y -> Some (if better x y then x else y)

let min_by f xs =
  let better (fx, _) (fy, _) = fx <= fy in
  fold ~empty:None ~single:(fun x -> Some (f x, x)) ~union:(opt_merge better) xs
  |> Option.map snd

let max_by f xs =
  let better (fx, _) (fy, _) = fx >= fy in
  fold ~empty:None ~single:(fun x -> Some (f x, x)) ~union:(opt_merge better) xs
  |> Option.map snd

let min_opt ?(cmp = Stdlib.compare) xs =
  fold ~empty:None ~single:Option.some ~union:(opt_merge (fun x y -> cmp x y <= 0)) xs

let max_opt ?(cmp = Stdlib.compare) xs =
  fold ~empty:None ~single:Option.some ~union:(opt_merge (fun x y -> cmp x y >= 0)) xs

let equal_as_bags ?(cmp = Stdlib.compare) xs ys =
  let a = List.sort cmp (to_list xs) and b = List.sort cmp (to_list ys) in
  List.length a = List.length b && List.for_all2 (fun x y -> cmp x y = 0) a b

let depth xs =
  let rec go = function
    | Emp | Sng _ -> 1
    | Uni (l, r) -> 1 + max (go l) (go r)
  in
  go xs

let rebalance_left xs =
  List.fold_left (fun acc x -> union acc (Sng x)) Emp (to_list xs)

let pp pp_elt ppf xs =
  Format.fprintf ppf "{{%a}}"
    (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.fprintf ppf ", ") pp_elt)
    (to_list xs)
