(** Stateful bags (paper §3.1, [StatefulBag]): iterative point-wise
    refinement of a keyed bag. The element key is fixed at creation; updates
    mutate the state in place and return the {e delta} — a stateless
    [Databag] of the elements whose value actually changed — enabling both
    naive and semi-naive iterative dataflows (PageRank, Connected
    Components in Appendix A). *)

type ('a, 'k) t

val create : key:('a -> 'k) -> ?cmp:('k -> 'k -> int) -> 'a Databag.t -> ('a, 'k) t
(** [create ~key bag] converts a stateless bag into a stateful one.
    Raises [Invalid_argument] if two elements share a key — state elements
    must be uniquely keyed, like the paper's [A <: Key[K]] bound implies. *)

val bag : ('a, 'k) t -> 'a Databag.t
(** Current state as a stateless [DataBag] (the [bag()] conversion). *)

val size : ('a, 'k) t -> int

val find : ('a, 'k) t -> 'k -> 'a option

val update : ('a, 'k) t -> ('a -> 'a option) -> 'a Databag.t
(** Point-wise update without messages (Listing 3, line 28): the UDF
    inspects each element and returns [Some updated] to replace it or
    [None] to keep it. Returns the delta of changed elements (their new
    versions). *)

val update_with_messages :
  ('a, 'k) t ->
  msg_key:('b -> 'k) ->
  'b Databag.t ->
  ('a -> 'b -> 'a option) ->
  'a Databag.t
(** Point-wise update with update messages (Listing 3, line 29): each
    message is routed to the state element sharing its key (messages whose
    key matches no element are dropped); the UDF is applied once per
    message, threading updated versions when several messages target the
    same element. Returns the delta of changed elements. *)
