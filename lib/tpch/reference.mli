(** Hand-written reference implementations of TPC-H Q1 and Q4 over the
    generated row values — the independent oracle against which the
    Emma-compiled queries (Appendix A, Listings 8 and 9) are checked. *)

module Value = Emma_value.Value

val q1_cutoff : int
(** The paper's Q1 predicate date: shipDate <= 1996-12-01. *)

val q1 : Value.t list -> Value.t list
(** [q1 lineitem]: one record per (returnFlag, lineStatus) group with the
    eight aggregate columns of the query: [{returnFlag; lineStatus;
    sumQty; sumBasePrice; sumDiscPrice; sumCharge; avgQty; avgPrice;
    avgDisc; countOrder}]. *)

val q4_date_min : int
val q4_date_max : int
(** A three-month order-date window (1993-07-01 to 1993-10-01), per the
    TPC-H specification of Q4. *)

val q4 : orders:Value.t list -> lineitem:Value.t list -> Value.t list
(** [{orderPriority; orderCount}] per priority, counting orders in the date
    window having at least one lineitem with commitDate < receiptDate. *)

val q3 :
  customer:Value.t list ->
  orders:Value.t list ->
  lineitem:Value.t list ->
  Emma_programs.Tpch_q3.params ->
  Value.t list
(** Oracle for the Q3 extension (delegates to
    {!Emma_programs.Tpch_q3.reference}). *)
