module Value = Emma_value.Value
module Tpch_gen = Emma_workloads.Tpch_gen

let q1_cutoff = Tpch_gen.date 1996 12 1

type q1_acc = {
  mutable sum_qty : float;
  mutable sum_base : float;
  mutable sum_disc_price : float;
  mutable sum_charge : float;
  mutable sum_disc : float;
  mutable n : int;
}

let q1 lineitem =
  let groups : (string * string, q1_acc) Hashtbl.t = Hashtbl.create 8 in
  List.iter
    (fun l ->
      if Value.to_int (Value.field l "shipDate") <= q1_cutoff then begin
        let key =
          ( Value.to_string_exn (Value.field l "returnFlag"),
            Value.to_string_exn (Value.field l "lineStatus") )
        in
        let acc =
          match Hashtbl.find_opt groups key with
          | Some a -> a
          | None ->
              let a =
                { sum_qty = 0.0; sum_base = 0.0; sum_disc_price = 0.0; sum_charge = 0.0;
                  sum_disc = 0.0; n = 0 }
              in
              Hashtbl.add groups key a;
              a
        in
        let qty = Value.to_float (Value.field l "quantity") in
        let price = Value.to_float (Value.field l "extendedPrice") in
        let disc = Value.to_float (Value.field l "discount") in
        let tax = Value.to_float (Value.field l "tax") in
        acc.sum_qty <- acc.sum_qty +. qty;
        acc.sum_base <- acc.sum_base +. price;
        acc.sum_disc_price <- acc.sum_disc_price +. (price *. (1.0 -. disc));
        acc.sum_charge <- acc.sum_charge +. (price *. (1.0 -. disc) *. (1.0 +. tax));
        acc.sum_disc <- acc.sum_disc +. disc;
        acc.n <- acc.n + 1
      end)
    lineitem;
  Hashtbl.fold
    (fun (rf, ls) a rows ->
      let nf = float_of_int a.n in
      Value.record
        [ ("returnFlag", Value.String rf);
          ("lineStatus", Value.String ls);
          ("sumQty", Value.Float a.sum_qty);
          ("sumBasePrice", Value.Float a.sum_base);
          ("sumDiscPrice", Value.Float a.sum_disc_price);
          ("sumCharge", Value.Float a.sum_charge);
          ("avgQty", Value.Float (a.sum_qty /. nf));
          ("avgPrice", Value.Float (a.sum_base /. nf));
          ("avgDisc", Value.Float (a.sum_disc /. nf));
          ("countOrder", Value.Int a.n) ]
      :: rows)
    groups []

let q4_date_min = Tpch_gen.date 1993 7 1
let q4_date_max = Tpch_gen.date 1993 10 1

let q4 ~orders ~lineitem =
  (* order keys having at least one late lineitem *)
  let late = Hashtbl.create 1024 in
  List.iter
    (fun l ->
      if Value.to_int (Value.field l "commitDate") < Value.to_int (Value.field l "receiptDate")
      then Hashtbl.replace late (Value.to_int (Value.field l "orderKey")) ())
    lineitem;
  let counts : (string, int ref) Hashtbl.t = Hashtbl.create 8 in
  List.iter
    (fun o ->
      let d = Value.to_int (Value.field o "orderDate") in
      if d >= q4_date_min && d < q4_date_max
         && Hashtbl.mem late (Value.to_int (Value.field o "orderKey"))
      then begin
        let p = Value.to_string_exn (Value.field o "orderPriority") in
        match Hashtbl.find_opt counts p with
        | Some r -> incr r
        | None -> Hashtbl.add counts p (ref 1)
      end)
    orders;
  Hashtbl.fold
    (fun p r rows ->
      Value.record [ ("orderPriority", Value.String p); ("orderCount", Value.Int !r) ] :: rows)
    counts []

let q3 ~customer ~orders ~lineitem params =
  Emma_programs.Tpch_q3.reference ~customer ~orders ~lineitem params
