module Value = Emma_value.Value
module Databag = Emma_databag.Databag
module Stateful_bag = Emma_databag.Stateful_bag
module Expr = Emma_lang.Expr
module Surface = Emma_lang.Surface
module Pretty = Emma_lang.Pretty
module Eval = Emma_lang.Eval
module Plan = Emma_dataflow.Plan
module Cprog = Emma_dataflow.Cprog
module Pipeline = Emma_compiler.Pipeline
module Plan_cache = Emma_compiler.Plan_cache
module Cluster = Emma_engine.Cluster
module Metrics = Emma_engine.Metrics
module Engine = Emma_engine.Exec
module Faults = Emma_engine.Faults
module Config = Emma_engine.Config
module Cancel = Emma_engine.Cancel
module Pool = Emma_util.Pool
module Trace = Emma_util.Trace
module Json = Emma_util.Json
module Explain = Emma_compiler.Explain
module Session = Session

type algorithm = Session.algorithm = {
  source : Expr.program;
  compiled : Cprog.t;
  report : Pipeline.report;
  opts : Pipeline.opts;
}

let parallelize = Session.parallelize

type runtime = Session.runtime = {
  cluster : Cluster.t;
  profile : Cluster.profile;
  timeout_s : float option;
}

let spark = Session.spark
let flink = Session.flink

type run_result = Session.run_result = {
  value : Value.t;
  metrics : Metrics.t;
  ctx : Eval.ctx;
}

type outcome = Session.outcome =
  | Finished of run_result
  | Failed of { reason : string; metrics : Metrics.t }
  | Timed_out of { at_s : float; metrics : Metrics.t }
  | Cancelled of { at_s : float; reason : string; metrics : Metrics.t }

let make_ctx = Session.make_ctx
let metrics_of_outcome = Session.metrics_of_outcome

let run_native algo ~tables =
  let ctx = make_ctx tables in
  let value = Eval.eval_program ctx algo.source in
  (value, ctx)

(* Deprecated shim over Session: folds the legacy per-knob optional
   arguments into a Config (knobs override the corresponding [config]
   field), then runs on a throwaway single-use session. The one-shot
   session never allocates a plan cache and never creates its own pool —
   [pool]/[domains] semantics are unchanged from the historical run_on. *)
let config_of_knobs ?config ?udf_mode ?faults ?checkpoint_every ?mem_budget
    ?spill ?max_inflight ?pool ?chunk ?trace () =
  let base = match config with Some c -> c | None -> Config.default in
  {
    Config.udf_mode = Option.value udf_mode ~default:base.Config.udf_mode;
    faults = Option.value faults ~default:base.Config.faults;
    checkpoint_every =
      (match checkpoint_every with
      | Some _ as k -> k
      | None -> base.Config.checkpoint_every);
    mem_budget =
      (match mem_budget with Some _ as b -> b | None -> base.Config.mem_budget);
    spill = Option.value spill ~default:base.Config.spill;
    max_inflight =
      (match max_inflight with
      | Some _ as k -> k
      | None -> base.Config.max_inflight);
    pool = (match pool with Some _ as p -> p | None -> base.Config.pool);
    chunk = Option.value chunk ~default:base.Config.chunk;
    trace = (match trace with Some _ as tr -> tr | None -> base.Config.trace);
    (* session-only concerns: a one-shot run never owns a pool or a cache *)
    domains = None;
    plan_cache = None;
    (* robustness knobs have no per-knob shims — they ride the base config *)
    timeout_s = base.Config.timeout_s;
    deadline_s = base.Config.deadline_s;
    max_queue = base.Config.max_queue;
    breaker = base.Config.breaker;
    drain_after_s = base.Config.drain_after_s;
    wal_dir = base.Config.wal_dir;
    wal_sync = base.Config.wal_sync;
    snapshot_every = base.Config.snapshot_every;
  }

let run_on ?config ?udf_mode ?faults ?checkpoint_every ?mem_budget ?spill
    ?max_inflight ?pool ?chunk ?trace rt algo ~tables =
  let cfg =
    config_of_knobs ?config ?udf_mode ?faults ?checkpoint_every ?mem_budget
      ?spill ?max_inflight ?pool ?chunk ?trace ()
  in
  let session = Session.create ~config:cfg rt in
  Fun.protect
    ~finally:(fun () -> Session.close session)
    (fun () -> Session.run session algo ~tables)

let run_on_exn ?config ?udf_mode ?faults ?checkpoint_every ?mem_budget ?spill
    ?max_inflight ?pool ?chunk ?trace rt algo ~tables =
  match
    run_on ?config ?udf_mode ?faults ?checkpoint_every ?mem_budget ?spill
      ?max_inflight ?pool ?chunk ?trace rt algo ~tables
  with
  | Finished r -> r
  | Failed { reason; _ } -> failwith ("engine failure: " ^ reason)
  | Timed_out { at_s; _ } -> failwith (Printf.sprintf "engine timeout at %.0f s" at_s)
  | Cancelled { at_s; reason; _ } ->
      failwith (Printf.sprintf "query cancelled at %.0f s: %s" at_s reason)
