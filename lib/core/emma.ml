module Value = Emma_value.Value
module Databag = Emma_databag.Databag
module Stateful_bag = Emma_databag.Stateful_bag
module Expr = Emma_lang.Expr
module Surface = Emma_lang.Surface
module Pretty = Emma_lang.Pretty
module Eval = Emma_lang.Eval
module Plan = Emma_dataflow.Plan
module Cprog = Emma_dataflow.Cprog
module Pipeline = Emma_compiler.Pipeline
module Cluster = Emma_engine.Cluster
module Metrics = Emma_engine.Metrics
module Engine = Emma_engine.Exec
module Faults = Emma_engine.Faults
module Pool = Emma_util.Pool
module Trace = Emma_util.Trace
module Json = Emma_util.Json
module Explain = Emma_compiler.Explain

type algorithm = {
  source : Expr.program;
  compiled : Cprog.t;
  report : Pipeline.report;
  opts : Pipeline.opts;
}

let parallelize ?(opts = Pipeline.default_opts) source =
  let compiled, report = Pipeline.compile ~opts source in
  { source; compiled; report; opts }

type runtime = {
  cluster : Cluster.t;
  profile : Cluster.profile;
  timeout_s : float option;
}

let spark ?(cluster = Cluster.laptop ()) ?timeout_s () =
  { cluster; profile = Cluster.spark_like; timeout_s }

let flink ?(cluster = Cluster.laptop ()) ?timeout_s () =
  { cluster; profile = Cluster.flink_like; timeout_s }

type run_result = { value : Value.t; metrics : Metrics.t; ctx : Eval.ctx }

type outcome =
  | Finished of run_result
  | Failed of { reason : string; metrics : Metrics.t }
  | Timed_out of { at_s : float; metrics : Metrics.t }

let make_ctx tables =
  let ctx = Eval.create_ctx () in
  List.iter (fun (name, rows) -> Eval.register_table ctx name rows) tables;
  ctx

let run_native algo ~tables =
  let ctx = make_ctx tables in
  let value = Eval.eval_program ctx algo.source in
  (value, ctx)

let run_on ?udf_mode ?faults ?checkpoint_every ?mem_budget ?spill ?max_inflight ?pool
    ?chunk ?trace rt algo ~tables =
  let ctx = make_ctx tables in
  let engine =
    Engine.create ?timeout_s:rt.timeout_s ?udf_mode ?faults ?checkpoint_every
      ?mem_budget ?spill ?max_inflight ?pool ?chunk ?trace ~cluster:rt.cluster
      ~profile:rt.profile ctx
  in
  match Engine.run engine algo.compiled with
  | value -> Finished { value; metrics = Engine.metrics engine; ctx }
  | exception Engine.Engine_failure reason -> Failed { reason; metrics = Engine.metrics engine }
  | exception Engine.Engine_timeout at_s -> Timed_out { at_s; metrics = Engine.metrics engine }

let run_on_exn ?udf_mode ?faults ?checkpoint_every ?mem_budget ?spill ?max_inflight
    ?pool ?chunk ?trace rt algo ~tables =
  match
    run_on ?udf_mode ?faults ?checkpoint_every ?mem_budget ?spill ?max_inflight ?pool
      ?chunk ?trace rt algo ~tables
  with
  | Finished r -> r
  | Failed { reason; _ } -> failwith ("engine failure: " ^ reason)
  | Timed_out { at_s; _ } -> failwith (Printf.sprintf "engine timeout at %.0f s" at_s)
