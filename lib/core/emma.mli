(** Emma: implicit parallelism through deep language embedding.

    This is the library façade. Write a driver program against
    {!Surface} (the comprehension syntax that desugars like Scala's), then
    either run it natively on the host-language DataBag implementation —
    for development and debugging, exactly as §3.1 prescribes — or
    [parallelize] it: the compiler pipeline recovers monad comprehensions,
    normalizes and optimizes them, and emits abstract dataflows that the
    simulated distributed engine executes under a Spark-like or Flink-like
    cost profile.

    {[
      let program = Surface.(program ~ret:(sum (read "xs")) []) in
      let algorithm = Emma.parallelize program in
      let result = Emma.run_on (Emma.spark ()) algorithm ~tables:[ "xs", rows ] in
      ...
    ]} *)

module Value = Emma_value.Value
module Databag = Emma_databag.Databag
module Stateful_bag = Emma_databag.Stateful_bag
module Expr = Emma_lang.Expr
module Surface = Emma_lang.Surface
module Pretty = Emma_lang.Pretty
module Eval = Emma_lang.Eval
module Plan = Emma_dataflow.Plan
module Cprog = Emma_dataflow.Cprog
module Pipeline = Emma_compiler.Pipeline
module Cluster = Emma_engine.Cluster
module Metrics = Emma_engine.Metrics
module Engine = Emma_engine.Exec
module Faults = Emma_engine.Faults
module Pool = Emma_util.Pool
module Trace = Emma_util.Trace
module Json = Emma_util.Json
module Explain = Emma_compiler.Explain

type algorithm = {
  source : Expr.program;
  compiled : Cprog.t;
  report : Pipeline.report;
  opts : Pipeline.opts;
}

val parallelize : ?opts:Pipeline.opts -> Expr.program -> algorithm
(** Compiles the bracketed program (paper §3.2, line 6). *)

(** A runtime target: cluster configuration plus engine profile. *)
type runtime = {
  cluster : Cluster.t;
  profile : Cluster.profile;
  timeout_s : float option;
}

val spark : ?cluster:Cluster.t -> ?timeout_s:float -> unit -> runtime
val flink : ?cluster:Cluster.t -> ?timeout_s:float -> unit -> runtime

type run_result = {
  value : Value.t;
  metrics : Metrics.t;
  ctx : Eval.ctx;  (** holds the sink tables the program wrote *)
}

type outcome =
  | Finished of run_result
  | Failed of { reason : string; metrics : Metrics.t }
  | Timed_out of { at_s : float; metrics : Metrics.t }

val run_native : algorithm -> tables:(string * Value.t list) list -> Value.t * Eval.ctx
(** Host-language execution of the {e source} program on the native
    DataBag — the semantic reference. *)

val run_on :
  ?udf_mode:Engine.udf_mode ->
  ?faults:Faults.t ->
  ?checkpoint_every:int ->
  ?mem_budget:float ->
  ?spill:bool ->
  ?max_inflight:int ->
  ?pool:Pool.t ->
  ?chunk:Engine.chunk_spec ->
  ?trace:Trace.t ->
  runtime ->
  algorithm ->
  tables:(string * Value.t list) list ->
  outcome
(** Executes the compiled program on the simulated engine. [pool] selects
    the domain pool per-partition operator work runs on (default
    {!Pool.default}); it affects only wall-clock time, never results or
    cost-model metrics. [chunk] (default [Chunk_auto]) sets the adaptive
    chunking policy: homomorphic operators split partitions into chunks of
    that many rows so the work-stealing pool can steal a skewed
    partition's tail mid-partition — like [pool], it moves only wall
    clock and the par_* counters, never results or cost-model metrics.
    [trace] (default {!Trace.global}) receives
    job/stage/partition spans — pure observation, never consulted by the
    cost model.

    [udf_mode] (default [Compiled]) selects staged-compiled or interpreted
    per-tuple UDF execution; results and all cost-model metrics are
    bit-identical between modes, only wall-clock moves.

    [faults] (default {!Faults.none}) is a deterministic chaos plan the
    engine recovers from — retries, lineage recomputation, speculation,
    blacklisting — without changing results; [checkpoint_every] snapshots
    driver-loop state (CRC-checksummed; corrupted records are skipped on
    restore) every [k] iterations so injected loop losses restart from
    the last good checkpoint.

    [mem_budget] (logical bytes per slot) turns on deterministic memory
    governance: state-building operators past the budget spill to disk
    ([spill:true]) or are OOM-killed and retried at halved parallelism;
    [Mem]-cached bags past [mem_budget × dop] are LRU-evicted and
    rebuilt through lineage. [max_inflight] queues job submissions past
    the in-flight budget. Results stay bit-identical for any sufficient
    budget; only [sim_time_s] and the memory counters move. See
    {!Engine.create}. *)

val run_on_exn :
  ?udf_mode:Engine.udf_mode ->
  ?faults:Faults.t ->
  ?checkpoint_every:int ->
  ?mem_budget:float ->
  ?spill:bool ->
  ?max_inflight:int ->
  ?pool:Pool.t ->
  ?chunk:Engine.chunk_spec ->
  ?trace:Trace.t ->
  runtime ->
  algorithm ->
  tables:(string * Value.t list) list ->
  run_result
(** Like {!run_on} but raises [Failure] on engine failure or timeout. *)
