(** Emma: implicit parallelism through deep language embedding.

    This is the library façade. Write a driver program against
    {!Surface} (the comprehension syntax that desugars like Scala's), then
    either run it natively on the host-language DataBag implementation —
    for development and debugging, exactly as §3.1 prescribes — or
    [parallelize] it: the compiler pipeline recovers monad comprehensions,
    normalizes and optimizes them, and emits abstract dataflows that the
    simulated distributed engine executes under a Spark-like or Flink-like
    cost profile.

    {[
      let program = Surface.(program ~ret:(sum (read "xs")) []) in
      let algorithm = Emma.parallelize program in
      let result = Emma.run_on (Emma.spark ()) algorithm ~tables:[ "xs", rows ] in
      ...
    ]}

    {b Configuration.} Execution knobs travel in one first-class record,
    {!Config.t} (udf mode, chaos plan, checkpointing, memory governance,
    admission, pool, chunking, tracing, domains, plan cache), built with
    [Config.default] and functional [with_*] setters or parsed from raw
    CLI values with [Config.of_cli]. {!Session} binds a [Config] to a
    runtime once and accepts any number of submissions — the substrate of
    [emma serve]. {!run_on}'s per-knob optional arguments are deprecated
    shims kept for one release; see the README migration guide. *)

module Value = Emma_value.Value
module Databag = Emma_databag.Databag
module Stateful_bag = Emma_databag.Stateful_bag
module Expr = Emma_lang.Expr
module Surface = Emma_lang.Surface
module Pretty = Emma_lang.Pretty
module Eval = Emma_lang.Eval
module Plan = Emma_dataflow.Plan
module Cprog = Emma_dataflow.Cprog
module Pipeline = Emma_compiler.Pipeline
module Plan_cache = Emma_compiler.Plan_cache
module Cluster = Emma_engine.Cluster
module Metrics = Emma_engine.Metrics
module Engine = Emma_engine.Exec
module Faults = Emma_engine.Faults
module Config = Emma_engine.Config
module Cancel = Emma_engine.Cancel
module Pool = Emma_util.Pool
module Trace = Emma_util.Trace
module Json = Emma_util.Json
module Explain = Emma_compiler.Explain

module Session = Session
(** Reusable engine handles; see {!Session.create} / {!Session.submit}. *)

type algorithm = Session.algorithm = {
  source : Expr.program;
  compiled : Cprog.t;
  report : Pipeline.report;
  opts : Pipeline.opts;
}

val parallelize : ?opts:Pipeline.opts -> Expr.program -> algorithm
(** Compiles the bracketed program (paper §3.2, line 6). *)

(** A runtime target: cluster configuration plus engine profile. *)
type runtime = Session.runtime = {
  cluster : Cluster.t;
  profile : Cluster.profile;
  timeout_s : float option;
}

val spark : ?cluster:Cluster.t -> ?timeout_s:float -> unit -> runtime
val flink : ?cluster:Cluster.t -> ?timeout_s:float -> unit -> runtime

type run_result = Session.run_result = {
  value : Value.t;
  metrics : Metrics.t;
  ctx : Eval.ctx;  (** holds the sink tables the program wrote *)
}

type outcome = Session.outcome =
  | Finished of run_result
  | Failed of { reason : string; metrics : Metrics.t }
  | Timed_out of { at_s : float; metrics : Metrics.t }
  | Cancelled of { at_s : float; reason : string; metrics : Metrics.t }
      (** cooperative cancellation (a {!Cancel} token or the per-query
          [Config.deadline_s] budget); carries the simulated clock at the
          terminal safepoint and the reason *)

val metrics_of_outcome : outcome -> Metrics.t
(** Every outcome arm — including [Failed], [Timed_out] and [Cancelled] —
    carries the per-query metrics of the partial run. *)

val run_native : algorithm -> tables:(string * Value.t list) list -> Value.t * Eval.ctx
(** Host-language execution of the {e source} program on the native
    DataBag — the semantic reference. *)

val run_on :
  ?config:Config.t ->
  ?udf_mode:Engine.udf_mode ->
  ?faults:Faults.t ->
  ?checkpoint_every:int ->
  ?mem_budget:float ->
  ?spill:bool ->
  ?max_inflight:int ->
  ?pool:Pool.t ->
  ?chunk:Engine.chunk_spec ->
  ?trace:Trace.t ->
  runtime ->
  algorithm ->
  tables:(string * Value.t list) list ->
  outcome
(** Executes the compiled program on the simulated engine — a thin shim
    over a single-use {!Session}.

    {b Deprecated knobs.} The per-knob optional arguments ([udf_mode],
    [faults], [checkpoint_every], [mem_budget], [spill], [max_inflight],
    [pool], [chunk], [trace]) are kept for one release as shims: each,
    when passed, overrides the corresponding field of [config] (default
    {!Config.default}). New code should build a {!Config.t} and pass only
    [?config] — or hold a {!Session} open across runs. The knobs'
    semantics are unchanged; see {!Config.t} for their meaning and
    {!Engine.create} for the execution model (pool/chunk/trace move only
    wall-clock and observability, never results or cost-model metrics;
    faults/memory governance keep results bit-identical to the clean
    run).

    [config.domains] and [config.plan_cache] are session concerns and are
    ignored by this one-shot entry point. *)

val run_on_exn :
  ?config:Config.t ->
  ?udf_mode:Engine.udf_mode ->
  ?faults:Faults.t ->
  ?checkpoint_every:int ->
  ?mem_budget:float ->
  ?spill:bool ->
  ?max_inflight:int ->
  ?pool:Pool.t ->
  ?chunk:Engine.chunk_spec ->
  ?trace:Trace.t ->
  runtime ->
  algorithm ->
  tables:(string * Value.t list) list ->
  run_result
(** Like {!run_on} but raises [Failure] on engine failure or timeout.
    Same deprecation note applies. *)
