(* The session layer: a reusable engine handle binding one Config.

   This module is also the home of the run-facing types ([algorithm],
   [runtime], [outcome]) that the [Emma] façade re-exports with type
   equations — they must live below the façade so [Session] can use them
   without a dependency cycle. *)

module Value = Emma_value.Value
module Expr = Emma_lang.Expr
module Eval = Emma_lang.Eval
module Cprog = Emma_dataflow.Cprog
module Pipeline = Emma_compiler.Pipeline
module Plan_cache = Emma_compiler.Plan_cache
module Cluster = Emma_engine.Cluster
module Metrics = Emma_engine.Metrics
module Engine = Emma_engine.Exec
module Config = Emma_engine.Config
module Cancel = Emma_engine.Cancel
module Pool = Emma_util.Pool
module Trace = Emma_util.Trace

type algorithm = {
  source : Expr.program;
  compiled : Cprog.t;
  report : Pipeline.report;
  opts : Pipeline.opts;
}

let parallelize ?(opts = Pipeline.default_opts) source =
  let compiled, report = Pipeline.compile ~opts source in
  { source; compiled; report; opts }

type runtime = {
  cluster : Cluster.t;
  profile : Cluster.profile;
  timeout_s : float option;
}

let spark ?(cluster = Cluster.laptop ()) ?timeout_s () =
  { cluster; profile = Cluster.spark_like; timeout_s }

let flink ?(cluster = Cluster.laptop ()) ?timeout_s () =
  { cluster; profile = Cluster.flink_like; timeout_s }

type run_result = { value : Value.t; metrics : Metrics.t; ctx : Eval.ctx }

type outcome =
  | Finished of run_result
  | Failed of { reason : string; metrics : Metrics.t }
  | Timed_out of { at_s : float; metrics : Metrics.t }
  | Cancelled of { at_s : float; reason : string; metrics : Metrics.t }

let metrics_of_outcome = function
  | Finished r -> r.metrics
  | Failed { metrics; _ } -> metrics
  | Timed_out { metrics; _ } -> metrics
  | Cancelled { metrics; _ } -> metrics

let make_ctx tables =
  let ctx = Eval.create_ctx () in
  List.iter (fun (name, rows) -> Eval.register_table ctx name rows) tables;
  ctx

(* ------------------------------------------------------------------ *)
(* Sessions                                                             *)
(* ------------------------------------------------------------------ *)

type t = {
  rt : runtime;
  config : Config.t;  (* with [pool] resolved to the session pool *)
  pool : Pool.t;
  owns_pool : bool;
  cache : Plan_cache.t option;
  compile_lock : Mutex.t;
      (* serializes submissions' compile step: the compiler's fresh-name
         counter is a process global and the plan cache must observe a
         deterministic probe/store order; execution itself still runs
         concurrently in real serve mode *)
}

(* Timeout unification: [Session.spark ?timeout_s] (the legacy runtime
   shim) and [Config.timeout_s] must agree. One source set wins; both set
   to the same value is fine; both set and different is a configuration
   error rejected with a one-line message (the CLI maps it to exit 2). *)
let resolve_timeout rt config =
  match (rt.timeout_s, config.Config.timeout_s) with
  | None, t | t, None -> t
  | Some a, Some b when a = b -> Some a
  | Some a, Some b ->
      invalid_arg
        (Printf.sprintf
           "conflicting timeouts: runtime timeout_s %g vs config timeout_s %g \
            (set the timeout in one place only; Config is the canonical home)"
           a b)

let create ?(config = Config.default) rt =
  let config = { config with Config.timeout_s = resolve_timeout rt config } in
  let pool, owns_pool =
    match config.Config.pool with
    | Some p -> (p, false)
    | None -> (
        match config.Config.domains with
        | Some d -> (Pool.create ~domains:d (), true)
        | None -> (Pool.default (), false))
  in
  let cache =
    match config.Config.plan_cache with
    | Some cap -> Some (Plan_cache.create ~capacity:cap)
    | None -> None
  in
  {
    rt;
    config = { config with Config.pool = Some pool };
    pool;
    owns_pool;
    cache;
    compile_lock = Mutex.create ();
  }

let close t = if t.owns_pool then Pool.shutdown t.pool
let config t = t.config
let runtime t = t.rt
let pool t = t.pool
let plan_cache_stats t = Option.map Plan_cache.stats t.cache

let with_lock m f =
  Mutex.lock m;
  Fun.protect ~finally:(fun () -> Mutex.unlock m) f

let tracer_of cfg =
  match cfg.Config.trace with Some tr -> tr | None -> Trace.global ()

(* The satellite fix: every Session-run query — including Failed and
   Timed_out ones — surfaces its per-query Metrics.t (the engine's
   metrics record is returned in every outcome arm) and a terminal Trace
   instant, so service dashboards never lose the linkage for
   partially-run jobs. *)
let terminal_instant tracer outcome =
  if Trace.enabled tracer then begin
    let status, extra =
      match outcome with
      | Finished _ -> ("finished", [])
      | Failed { reason; _ } -> ("failed", [ ("reason", Trace.A_str reason) ])
      | Timed_out { at_s; _ } -> ("timed_out", [ ("at_s", Trace.A_float at_s) ])
      | Cancelled { at_s; reason; _ } ->
          ( "cancelled",
            [
              ("at_s", Trace.A_float at_s); ("reason", Trace.A_str reason);
            ] )
    in
    let m = metrics_of_outcome outcome in
    Trace.instant tracer ~cat:"session"
      ~args:
        (( "status", Trace.A_str status )
        :: ("sim_time_s", Trace.A_float m.Metrics.sim_time_s)
        :: extra)
      "query_terminal"
  end

let run ?config ?cancel ?cluster t algo ~tables =
  let cfg =
    match config with
    | Some c -> { c with Config.pool = Some t.pool }
    | None -> t.config
  in
  (* a per-run config override with no timeout of its own still inherits
     the session's resolved timeout (historically rt.timeout_s applied to
     every run regardless of per-run knobs) *)
  let timeout_s =
    match cfg.Config.timeout_s with
    | Some _ as s -> s
    | None -> t.config.Config.timeout_s
  in
  (* [cluster] narrows the execution slice for this run only — the serve
     degradation ladder halves dop with it; defaults to the runtime's *)
  let cluster = Option.value cluster ~default:t.rt.cluster in
  let ctx = make_ctx tables in
  let engine =
    Engine.create ?timeout_s ?cancel ~config:cfg ~cluster
      ~profile:t.rt.profile ctx
  in
  let outcome =
    match Engine.run engine algo.compiled with
    | value -> Finished { value; metrics = Engine.metrics engine; ctx }
    | exception Engine.Engine_failure reason ->
        Failed { reason; metrics = Engine.metrics engine }
    | exception Engine.Engine_timeout at_s ->
        Timed_out { at_s; metrics = Engine.metrics engine }
    | exception Engine.Engine_cancelled (at_s, reason) ->
        Cancelled { at_s; reason; metrics = Engine.metrics engine }
  in
  terminal_instant (tracer_of cfg) outcome;
  outcome

(* ------------------------------------------------------------------ *)
(* Submission: source program -> plan cache -> run                      *)
(* ------------------------------------------------------------------ *)

(* Structural fingerprint of the input tables — the schema half of the
   plan-cache key. Only shapes participate (field names, type tags,
   element shape of the first row), never data, so re-submitting a query
   over fresh rows of the same shape still hits. *)
let rec value_shape = function
  | Value.Unit -> "unit"
  | Value.Bool _ -> "bool"
  | Value.Int _ -> "int"
  | Value.Float _ -> "float"
  | Value.String _ -> "string"
  | Value.Tuple vs ->
      "(" ^ String.concat "," (Array.to_list (Array.map value_shape vs)) ^ ")"
  | Value.Record fs ->
      "{"
      ^ String.concat ","
          (Array.to_list
             (Array.map (fun (k, v) -> k ^ ":" ^ value_shape v) fs))
      ^ "}"
  | Value.Option None -> "option:_"
  | Value.Option (Some v) -> "option:" ^ value_shape v
  | Value.Vector _ -> "vector"
  | Value.Bag [] -> "bag:_"
  | Value.Bag (v :: _) -> "bag:" ^ value_shape v
  | Value.Blob _ -> "blob"

let schema_of_tables tables =
  tables
  |> List.map (fun (name, rows) ->
         let shape = match rows with [] -> "_" | v :: _ -> value_shape v in
         name ^ "=" ^ shape)
  |> List.sort String.compare
  |> String.concat ";"

type cache_status = Hit | Miss | Uncached

type submit_info = {
  si_cache : cache_status;
  si_compile_s : float;
  si_evictions : int;
}

(* Deterministic compile charge used by serve's latency accounting: a
   cold compile is priced proportionally to source size, a hit pays a
   small constant probe. Charged OUTSIDE the engine (service time = charge
   + sim_time_s), so a query's engine metrics stay bit-identical between
   cached and cold compiles. *)
let cold_compile_s source = 0.05 +. (1.0e-4 *. float_of_int (Pipeline.program_size source))
let hit_compile_s = 0.002

(* Uncounted plan-cache membership: would this submission hit? Used by
   the serve degradation ladder's plan-cache-only rung to shed queries
   that would compile cold, without perturbing the counted probe/store
   sequence the LRU replays from. [false] when the session is uncached. *)
let would_hit ?(opts = Pipeline.default_opts) t source ~tables =
  match t.cache with
  | None -> false
  | Some pc ->
      let schema = schema_of_tables tables in
      Plan_cache.mem pc (Pipeline.normalized_key ~opts ~schema source)

(* The ck_text a [submit] of this program/opts/schema is keyed by.
   Serve snapshots use it to persist cache contents as query names. *)
let plan_key ?(opts = Pipeline.default_opts) source ~tables =
  let schema = schema_of_tables tables in
  (Pipeline.normalized_key ~opts ~schema source).Pipeline.ck_text

(* Current cache keys, least-recently-used first; [] when uncached. *)
let plan_cache_keys t =
  match t.cache with
  | None -> []
  | Some pc ->
      List.map
        (fun k -> k.Pipeline.ck_text)
        (Plan_cache.entries_by_recency pc)

(* Stats-neutral cache warming for recovery replay: insert (compiling
   cold if needed) or refresh the entry with [store]'s tick/eviction
   behavior, bumping no counters. The journaled pre-crash hit/miss/
   eviction counts are reported separately as a base, so warming must
   not count anything itself. No-op on uncached sessions. *)
let prime ?(opts = Pipeline.default_opts) t source ~tables =
  match t.cache with
  | None -> ()
  | Some pc ->
      let schema = schema_of_tables tables in
      let key = Pipeline.normalized_key ~opts ~schema source in
      with_lock t.compile_lock (fun () ->
          if Plan_cache.mem pc key then Plan_cache.touch pc key
          else
            let compiled, report = Pipeline.compile ~opts source in
            Plan_cache.prime pc key (compiled, report))

let submit ?(opts = Pipeline.default_opts) ?config ?cancel ?cluster t source
    ~tables =
  let cfg = match config with Some c -> c | None -> t.config in
  let tracer = tracer_of cfg in
  let schema = schema_of_tables tables in
  let algo, status, evicted =
    with_lock t.compile_lock (fun () ->
        match t.cache with
        | None ->
            let compiled, report = Pipeline.compile ~opts source in
            ({ source; compiled; report; opts }, Uncached, 0)
        | Some pc ->
            let before = Plan_cache.stats pc in
            let compiled, report =
              Pipeline.compile ~opts ~schema ~cache:(Plan_cache.as_cache pc)
                source
            in
            let after = Plan_cache.stats pc in
            let status =
              if after.Plan_cache.hits > before.Plan_cache.hits then Hit
              else Miss
            in
            ( { source; compiled; report; opts },
              status,
              after.Plan_cache.evictions - before.Plan_cache.evictions ))
  in
  (if Trace.enabled tracer then
     let name =
       match status with
       | Hit -> "plan_cache_hit"
       | Miss -> "plan_cache_miss"
       | Uncached -> "plan_cache_off"
     in
     Trace.instant tracer ~cat:"session"
       ~args:[ ("schema", Trace.A_str schema) ]
       name);
  let outcome = run ?config ?cancel ?cluster t algo ~tables in
  let m = metrics_of_outcome outcome in
  (match status with
  | Hit -> m.Metrics.plan_cache_hits <- m.Metrics.plan_cache_hits + 1
  | Miss -> m.Metrics.plan_cache_misses <- m.Metrics.plan_cache_misses + 1
  | Uncached -> ());
  m.Metrics.plan_cache_evictions <- m.Metrics.plan_cache_evictions + evicted;
  let si_compile_s =
    match status with Hit -> hit_compile_s | _ -> cold_compile_s source
  in
  (outcome, { si_cache = status; si_compile_s; si_evictions = evicted })
