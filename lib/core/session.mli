(** Sessions: a reusable engine handle binding one {!Emma_engine.Config}.

    [Emma.run_on] spins up a fresh engine per call and threads nine
    optional knobs through every layer; a session resolves the knobs once
    — including the domain pool (created and owned when
    [config.domains] is set) and the plan cache — and then accepts any
    number of submissions. This is the substrate [Emma_serve] schedules
    multi-tenant traffic on.

    This module also defines the run-facing types ([algorithm],
    [runtime], [outcome]); the [Emma] façade re-exports them with type
    equations, so [Emma.Finished] and [Session]'s [Finished] are the
    same constructor. *)

module Value = Emma_value.Value
module Expr = Emma_lang.Expr
module Eval = Emma_lang.Eval
module Cprog = Emma_dataflow.Cprog
module Pipeline = Emma_compiler.Pipeline
module Plan_cache = Emma_compiler.Plan_cache
module Cluster = Emma_engine.Cluster
module Metrics = Emma_engine.Metrics
module Engine = Emma_engine.Exec
module Config = Emma_engine.Config
module Cancel = Emma_engine.Cancel
module Pool = Emma_util.Pool
module Trace = Emma_util.Trace

type algorithm = {
  source : Expr.program;
  compiled : Cprog.t;
  report : Pipeline.report;
  opts : Pipeline.opts;
}

val parallelize : ?opts:Pipeline.opts -> Expr.program -> algorithm
(** Compiles the bracketed program (paper §3.2, line 6). *)

(** A runtime target: cluster configuration plus engine profile. *)
type runtime = {
  cluster : Cluster.t;
  profile : Cluster.profile;
  timeout_s : float option;
}

val spark : ?cluster:Cluster.t -> ?timeout_s:float -> unit -> runtime
val flink : ?cluster:Cluster.t -> ?timeout_s:float -> unit -> runtime
(** [?timeout_s] is a deprecated shim kept one release: the canonical
    home of the execution timeout is [Config.timeout_s]. {!create}
    accepts either source (or both set to the {e same} value) and rejects
    conflicting values with [Invalid_argument] — the CLI maps that to a
    one-line exit-2 error. *)

type run_result = {
  value : Value.t;
  metrics : Metrics.t;
  ctx : Eval.ctx;  (** holds the sink tables the program wrote *)
}

type outcome =
  | Finished of run_result
  | Failed of { reason : string; metrics : Metrics.t }
  | Timed_out of { at_s : float; metrics : Metrics.t }
  | Cancelled of { at_s : float; reason : string; metrics : Metrics.t }
      (** cooperative cancellation: a {!Cancel} token was requested or the
          per-query [Config.deadline_s] budget ran out; carries the
          simulated clock at the terminal safepoint and the reason *)

val metrics_of_outcome : outcome -> Metrics.t
(** Every outcome arm — including [Failed], [Timed_out] and [Cancelled] —
    carries the per-query metrics of the partial run. *)

val make_ctx : (string * Value.t list) list -> Eval.ctx

type t
(** A session: runtime target + resolved {!Config.t} + domain pool +
    optional plan cache. Cheap to submit to repeatedly; safe to submit to
    from multiple domains (compilation is serialized internally,
    execution is not). *)

val create : ?config:Config.t -> runtime -> t
(** Resolves [config] (default {!Config.default}) once: when
    [config.pool] is unset and [config.domains = Some d] the session
    creates — and owns — a dedicated [d]-domain pool (released by
    {!close}); otherwise it borrows [config.pool] or the ambient
    {!Pool.default}. [config.plan_cache = Some n] equips the session with
    an [n]-entry LRU plan cache ({!Emma_compiler.Plan_cache}).

    Also unifies the legacy [runtime.timeout_s] shim with
    [config.timeout_s]: one source set wins, both set to the same value
    is accepted, and conflicting values raise [Invalid_argument] with a
    one-line message (exit 2 at the CLI). The resolved value lands in
    [config t].timeout_s. *)

val close : t -> unit
(** Shuts down the session-owned pool, if any. Borrowed pools are left
    running. *)

val config : t -> Config.t
(** The resolved config ([pool] always set). *)

val runtime : t -> runtime
val pool : t -> Pool.t

val plan_cache_stats : t -> Plan_cache.stats option
(** [None] when the session was created with [plan_cache = None]. *)

val run :
  ?config:Config.t ->
  ?cancel:Cancel.t ->
  ?cluster:Cluster.t ->
  t ->
  algorithm ->
  tables:(string * Value.t list) list ->
  outcome
(** Executes an already-compiled algorithm on this session's engine
    substrate. [config] overrides the session config for this run only
    (its [pool] field is ignored — the session pool always executes);
    serve uses this for per-tenant memory budgets. A per-run [config]
    without a timeout of its own still inherits the session's resolved
    timeout. [cancel] threads a cooperative cancellation token into the
    engine; [config.deadline_s] sets the per-query budget — either ends
    the run in a classified [Cancelled] outcome. [cluster] narrows the
    execution slice for this run only (the serve degradation ladder
    halves dop with it).

    Unlike historical [run_on], every outcome path also emits a terminal
    Trace instant ([session:query_terminal], tagged with the outcome
    status and final [sim_time_s]) when tracing is enabled, so failed,
    timed-out and cancelled queries keep their trace/metrics linkage. *)

type cache_status =
  | Hit  (** compiled plan reused from the session plan cache *)
  | Miss  (** compiled cold; the cache was populated *)
  | Uncached  (** session has no plan cache *)

type submit_info = {
  si_cache : cache_status;
  si_compile_s : float;
      (** deterministic compile charge for service-time accounting: a
          cold compile prices proportionally to source size, a hit pays a
          small constant probe. Never added to engine metrics — cached
          and cold runs stay bit-identical there. *)
  si_evictions : int;  (** plans evicted by this submission's store *)
}

val submit :
  ?opts:Pipeline.opts ->
  ?config:Config.t ->
  ?cancel:Cancel.t ->
  ?cluster:Cluster.t ->
  t ->
  Expr.program ->
  tables:(string * Value.t list) list ->
  outcome * submit_info
(** The service entry point: compile (or reuse) then run a {e source}
    program. The plan-cache key is {!Pipeline.normalized_key} of the
    normalized program, the compile [opts] and a structural fingerprint
    of [tables] (field names and type tags, never data) — so the same
    query over fresh same-shaped rows hits, while a plan or schema change
    misses. Cache hits/misses/evictions are recorded in the returned
    outcome's {!Metrics.t} ([plan_cache_*] fields) and as Trace instants.
    Results and engine cost metrics are bit-identical between a hit and a
    cold compile (property-tested). *)

val would_hit :
  ?opts:Pipeline.opts ->
  t ->
  Expr.program ->
  tables:(string * Value.t list) list ->
  bool
(** Uncounted plan-cache membership: [true] iff a {!submit} of this
    program/opts/schema would hit right now. Never bumps cache stats or
    LRU recency ({!Plan_cache.mem}), so peeking is free of observable
    side effects — the serve degradation ladder's plan-cache-only rung
    uses it to shed queries that would compile cold. Always [false] on an
    uncached session. *)

val prime :
  ?opts:Pipeline.opts ->
  t ->
  Expr.program ->
  tables:(string * Value.t list) list ->
  unit
(** Stats-neutral cache warming for serve recovery: insert this
    program's plan (compiling cold if absent) or refresh its recency,
    with {!Plan_cache.store}'s tick and eviction behavior but no counter
    bumps. Replaying the journaled hit/miss sequence through [prime]
    reconstructs the uninterrupted run's cache population and LRU order
    exactly; the pre-crash counts are reported as a separate base. No-op
    on an uncached session. *)

val plan_key :
  ?opts:Pipeline.opts ->
  Expr.program ->
  tables:(string * Value.t list) list ->
  string
(** The cache-key text a {!submit} of this program/opts/schema is keyed
    by — serve snapshots persist cache contents as query names via this
    mapping. *)

val plan_cache_keys : t -> string list
(** Current plan-cache key texts, least-recently-used first; [[]] when
    the session is uncached. *)

val schema_of_tables : (string * Value.t list) list -> string
(** The structural table fingerprint used by {!submit} (exposed for
    tests). *)
