(** Synthetic email corpus and mail-server blacklist for the Fig. 4
    data-parallel workflow (paper §5.1): 1 M emails averaging 100 KB
    (100 GB total) and 100 K blacklisted IPs with ~20 KB of server metadata
    each (2 GB total). Bodies and metadata are {!Emma_value.Value.Blob}s,
    so the byte sizes are faithful without materializing the payloads. *)

type config = {
  n_emails : int;
  n_blacklist : int;
  ip_space : int;  (** number of distinct mail-server IPs in the corpus *)
  body_bytes_avg : int;
  server_info_bytes : int;
  blacklist_hit_rate : float;
      (** fraction of corpus IPs that appear in the blacklist *)
}

val paper_config : physical_emails:int -> config
(** Paper-shaped configuration scaled down to [physical_emails] physical
    rows: blacklist sized at 10% of the emails, 100 KB bodies, 20 KB server
    records. Combine with an engine [data_scale] of
    [1_000_000 / physical_emails] to reach the paper's logical volumes. *)

val emails : seed:int -> config -> Emma_value.Value.t list
(** Email records: [{id; ip; score; body}] where [score] in [0, 100) is the
    spam-classifier feature hook and [body] is an opaque blob. *)

val blacklist : seed:int -> config -> Emma_value.Value.t list
(** Blacklist records: [{ip; info}]. A [blacklist_hit_rate] fraction of its
    IPs are drawn from the email IP space (the rest are disjoint). *)
