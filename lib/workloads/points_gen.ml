module Value = Emma_value.Value
module Prng = Emma_util.Prng

type config = { n_points : int; k : int; dim : int; spread : float; box : float }

let default ~n_points ~k = { n_points; k; dim = 2; spread = 1.0; box = 100.0 }

let centers ~seed cfg =
  let rng = Prng.create (seed * 31 + 5) in
  List.init cfg.k (fun _ ->
      Array.init cfg.dim (fun _ -> Prng.float rng cfg.box))

let points ~seed cfg =
  let cs = Array.of_list (centers ~seed cfg) in
  let rng = Prng.create seed in
  List.init cfg.n_points (fun i ->
      let c = cs.(Prng.int rng cfg.k) in
      let pos =
        Array.map (fun x -> Prng.gaussian rng ~mean:x ~stddev:cfg.spread) c
      in
      Value.record [ ("id", Value.Int i); ("pos", Value.Vector pos) ])

let initial_centroids ~seed cfg =
  let cs = centers ~seed cfg in
  let rng = Prng.create (seed + 101) in
  List.mapi
    (fun i c ->
      let pos =
        Array.map (fun x -> x +. Prng.gaussian rng ~mean:0.0 ~stddev:(3.0 *. cfg.spread)) c
      in
      Value.record [ ("cid", Value.Int i); ("pos", Value.Vector pos) ])
    cs
