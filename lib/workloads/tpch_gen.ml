module Value = Emma_value.Value
module Prng = Emma_util.Prng

(* Day-number arithmetic: days since 1992-01-01, valid through 1998. *)
let days_in_month y m =
  match m with
  | 1 | 3 | 5 | 7 | 8 | 10 | 12 -> 31
  | 4 | 6 | 9 | 11 -> 30
  | 2 -> if (y mod 4 = 0 && y mod 100 <> 0) || y mod 400 = 0 then 29 else 28
  | _ -> invalid_arg "days_in_month"

let date y m d =
  if y < 1992 || y > 1999 then invalid_arg "Tpch_gen.date: year out of range";
  let days = ref 0 in
  for yy = 1992 to y - 1 do
    days := !days + if (yy mod 4 = 0 && yy mod 100 <> 0) || yy mod 400 = 0 then 366 else 365
  done;
  for mm = 1 to m - 1 do
    days := !days + days_in_month y mm
  done;
  !days + d - 1

let date_add_days d n = d + n

type config = { n_lineitem : int; n_orders : int; n_customer : int }

let of_scale_factor sf =
  {
    n_lineitem = max 1 (int_of_float (6_000_000.0 *. sf));
    n_orders = max 1 (int_of_float (1_500_000.0 *. sf));
    n_customer = max 1 (int_of_float (150_000.0 *. sf));
  }

let priorities = [| "1-URGENT"; "2-HIGH"; "3-MEDIUM"; "4-NOT SPECIFIED"; "5-LOW" |]
let segments = [| "AUTOMOBILE"; "BUILDING"; "FURNITURE"; "MACHINERY"; "HOUSEHOLD" |]
let return_flags = [| "R"; "A"; "N" |]
let line_statuses = [| "O"; "F" |]

let start_date = date 1992 1 1
let end_date = date 1998 12 1

let orders ~seed cfg =
  let rng = Prng.create seed in
  List.init cfg.n_orders (fun i ->
      Value.record
        [ ("orderKey", Value.Int i);
          ("custKey", Value.Int (Prng.int rng (max 1 cfg.n_customer)));
          ("orderDate", Value.Int (Prng.int_in rng start_date end_date));
          ("orderPriority", Value.String (Prng.pick rng priorities));
          ("shipPriority", Value.Int 0) ])

let customer ~seed cfg =
  let rng = Prng.create (seed + 29) in
  List.init cfg.n_customer (fun i ->
      Value.record
        [ ("custKey", Value.Int i); ("mktSegment", Value.String (Prng.pick rng segments)) ])

let lineitem ~seed cfg =
  let rng = Prng.create (seed + 13) in
  List.init cfg.n_lineitem (fun i ->
      let order_key = Prng.int rng (max 1 cfg.n_orders) in
      let ship = Prng.int_in rng start_date end_date in
      let commit = date_add_days ship (Prng.int_in rng (-30) 60) in
      let receipt = date_add_days ship (Prng.int_in rng 1 30) in
      let quantity = float_of_int (Prng.int_in rng 1 50) in
      let extended_price = quantity *. Prng.float rng 2000.0 in
      Value.record
        [ ("orderKey", Value.Int order_key);
          ("lineNumber", Value.Int i);
          ("quantity", Value.Float quantity);
          ("extendedPrice", Value.Float extended_price);
          ("discount", Value.Float (0.01 *. float_of_int (Prng.int_in rng 0 10)));
          ("tax", Value.Float (0.01 *. float_of_int (Prng.int_in rng 0 8)));
          ("returnFlag", Value.String (Prng.pick rng return_flags));
          ("lineStatus", Value.String (Prng.pick rng line_statuses));
          ("shipDate", Value.Int ship);
          ("commitDate", Value.Int commit);
          ("receiptDate", Value.Int receipt) ])
