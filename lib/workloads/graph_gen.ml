module Value = Emma_value.Value
module Prng = Emma_util.Prng

type config = { n_vertices : int; avg_degree : int; alpha : float }

let default ~n_vertices = { n_vertices; avg_degree = 8; alpha = 1.8 }

(* Target weights w_i ~ Pareto(alpha); endpoints drawn proportional to the
   weights, which yields skewed in-degrees (hubs). *)
let neighbor_lists ~seed cfg =
  let rng = Prng.create seed in
  let weights =
    Array.init cfg.n_vertices (fun _ -> Prng.pareto rng ~alpha:cfg.alpha ~x_min:1.0)
  in
  let total_w = Array.fold_left ( +. ) 0.0 weights in
  (* cumulative table for weighted endpoint sampling *)
  let cumulative = Array.make cfg.n_vertices 0.0 in
  let acc = ref 0.0 in
  Array.iteri
    (fun i w ->
      acc := !acc +. w;
      cumulative.(i) <- !acc)
    weights;
  let sample_endpoint () =
    let x = Prng.float rng total_w in
    (* binary search for the first cumulative >= x *)
    let rec go lo hi =
      if lo >= hi then lo
      else
        let mid = (lo + hi) / 2 in
        if cumulative.(mid) < x then go (mid + 1) hi else go lo mid
    in
    go 0 (cfg.n_vertices - 1)
  in
  Array.init cfg.n_vertices (fun i ->
      let d =
        let raw = Prng.pareto rng ~alpha:cfg.alpha ~x_min:(float_of_int cfg.avg_degree /. 2.0) in
        min (cfg.n_vertices - 1) (int_of_float raw)
      in
      let targets = Hashtbl.create (max 4 d) in
      let attempts = ref 0 in
      while Hashtbl.length targets < d && !attempts < 4 * (d + 1) do
        incr attempts;
        let v = sample_endpoint () in
        if v <> i then Hashtbl.replace targets v ()
      done;
      Hashtbl.fold (fun v () acc -> v :: acc) targets [])

let to_records lists =
  Array.to_list
    (Array.mapi
       (fun i ns ->
         Value.record
           [ ("id", Value.Int i);
             ("neighbors", Value.bag (List.map (fun v -> Value.Int v) (List.sort_uniq Int.compare ns))) ])
       lists)

let adjacency ~seed cfg = to_records (neighbor_lists ~seed cfg)

let edge_count rows =
  List.fold_left
    (fun acc r -> acc + List.length (Value.to_bag (Value.field r "neighbors")))
    0 rows

let undirected_adjacency ~seed cfg =
  let lists = neighbor_lists ~seed cfg in
  let sym = Array.map (fun l -> ref l) lists in
  Array.iteri (fun i l -> List.iter (fun v -> sym.(v) := i :: !(sym.(v))) l) lists;
  to_records (Array.map (fun r -> !r) sym)
