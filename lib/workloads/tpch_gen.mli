(** TPC-H style data generator (dbgen substitute) for queries Q1 and Q4.

    Only the columns those queries touch are generated, with the value
    domains of the TPC-H specification (return flags, line statuses, order
    priorities, discount/tax ranges, date ranges). Dates are integer day
    numbers; see {!date}. Row counts follow the spec's cardinality per
    scale factor (6 M lineitems, 1.5 M orders at SF 1), scaled by
    [physical_sf]; run the engine with [data_scale] to reach the paper's
    SF 50/100. *)

val date : int -> int -> int -> int
(** [date y m d] as a day number (years 1992-1998 per the spec). *)

val date_add_days : int -> int -> int

type config = { n_lineitem : int; n_orders : int; n_customer : int }

val of_scale_factor : float -> config
(** [of_scale_factor sf]: 6,000,000×sf lineitems, 1,500,000×sf orders and
    150,000×sf customers. *)

val lineitem : seed:int -> config -> Emma_value.Value.t list
(** Records [{orderKey; quantity; extendedPrice; discount; tax; returnFlag;
    lineStatus; shipDate; commitDate; receiptDate}]. *)

val orders : seed:int -> config -> Emma_value.Value.t list
(** Records [{orderKey; custKey; orderDate; orderPriority; shipPriority}].
    Lineitems reference these order keys. *)

val customer : seed:int -> config -> Emma_value.Value.t list
(** Records [{custKey; mktSegment}] with the five TPC-H market segments. *)
