(** Power-law directed graphs standing in for the Twitter follower graph
    of §5.2 (Cha et al. dataset, ~2 B edges). Out-degrees follow a
    Pareto-like law (many low-degree vertices, a few hubs), generated with
    a Chung–Lu style attachment so in-degrees are skewed too. *)

type config = {
  n_vertices : int;
  avg_degree : int;
  alpha : float;  (** Pareto shape for the degree distribution *)
}

val default : n_vertices:int -> config

val adjacency : seed:int -> config -> Emma_value.Value.t list
(** Vertex records [{id; neighbors}] where [neighbors] is a bag of vertex
    ids (the vertex-centric representation used by the PageRank and
    Connected Components programs). Every vertex appears exactly once;
    vertices may have empty neighbor bags. *)

val edge_count : Emma_value.Value.t list -> int
(** Total number of directed edges in an adjacency list. *)

val undirected_adjacency : seed:int -> config -> Emma_value.Value.t list
(** Symmetric closure of [adjacency] — used by Connected Components. *)
