module Value = Emma_value.Value
module Prng = Emma_util.Prng

type config = {
  n_emails : int;
  n_blacklist : int;
  ip_space : int;
  body_bytes_avg : int;
  server_info_bytes : int;
  blacklist_hit_rate : float;
}

let paper_config ~physical_emails =
  {
    n_emails = physical_emails;
    n_blacklist = max 1 (physical_emails / 10);
    ip_space = max 4 (physical_emails / 4);
    body_bytes_avg = 100_000;
    server_info_bytes = 20_000;
    blacklist_hit_rate = 0.5;
  }

let emails ~seed cfg =
  let rng = Prng.create seed in
  List.init cfg.n_emails (fun i ->
      let ip = Prng.int rng cfg.ip_space in
      let score = Prng.float rng 100.0 in
      (* body sizes vary ±50% around the average *)
      let body_bytes =
        max 1 (cfg.body_bytes_avg / 2) + Prng.int rng (max 1 cfg.body_bytes_avg)
      in
      Value.record
        [ ("id", Value.Int i);
          ("ip", Value.Int ip);
          ("score", Value.Float score);
          ("body", Value.blob ~bytes:body_bytes ~tag:i) ])

let blacklist ~seed cfg =
  let rng = Prng.create (seed + 7919) in
  List.init cfg.n_blacklist (fun i ->
      let ip =
        if Prng.unit_float rng < cfg.blacklist_hit_rate then Prng.int rng cfg.ip_space
        else cfg.ip_space + i (* disjoint from the corpus IPs *)
      in
      Value.record
        [ ("ip", Value.Int ip); ("info", Value.blob ~bytes:cfg.server_info_bytes ~tag:(1_000_000 + i)) ])
