(** Clustered points for k-means (paper §5.2: 1.6 B points around 3 fixed
    random centers). Points are Gaussian clouds around [k] true centers in
    [dim] dimensions, so Lloyd's algorithm converges quickly and its
    cluster assignments can be checked against the generating truth. *)

type config = { n_points : int; k : int; dim : int; spread : float; box : float }

val default : n_points:int -> k:int -> config

val centers : seed:int -> config -> Emma_util.Vec.t list
(** The true generating centers (deterministic in the seed). *)

val points : seed:int -> config -> Emma_value.Value.t list
(** Point records [{id; pos}] with [pos] a vector. *)

val initial_centroids : seed:int -> config -> Emma_value.Value.t list
(** [k] starting centroids [{cid; pos}] perturbed from the true centers —
    deterministic and distinct from them. *)
