module Value = Emma_value.Value
module Prng = Emma_util.Prng
module Dist = Emma_util.Dist

type config = {
  n_tuples : int;
  n_keys : int;
  dist : Dist.t;
  payload_min : int;
  payload_max : int;
}

let n_keys_of = function
  | Dist.Uniform { n_keys } | Dist.Gaussian { n_keys; _ } | Dist.Pareto { n_keys; _ } ->
      n_keys

let paper_config ~n_tuples dist =
  { n_tuples; n_keys = n_keys_of dist; dist; payload_min = 3; payload_max = 10 }

let uniform ~n_keys = Dist.Uniform { n_keys }
let gaussian ~n_keys = Dist.Gaussian { n_keys; stddev_frac = 0.25 }
let pareto ~n_keys = Dist.Pareto { n_keys; hot_frac = 0.35 }

let tuples ~seed cfg =
  let rng = Prng.create seed in
  List.init cfg.n_tuples (fun _ ->
      let key = Dist.draw cfg.dist rng in
      let value = Prng.int rng 1_000_000 in
      let payload = Prng.string rng ~len:(Prng.int_in rng cfg.payload_min cfg.payload_max) in
      Value.record
        [ ("key", Value.Int key); ("value", Value.Int value); ("payload", Value.String payload) ])

let avg_tuple_bytes cfg =
  (* record overhead 8 + key 8 + value 8 + string (8 + avg len) *)
  8.0 +. 8.0 +. 8.0 +. 8.0
  +. (float_of_int (cfg.payload_min + cfg.payload_max) /. 2.0)
