(** Keyed tuples for the fold-group fusion scalability study (paper
    Appendix B): each tuple is a key (drawn from a configurable
    distribution), an integer value, and a small 3-10 character unicode
    payload; each execution unit receives 5 M tuples (~125 MB). *)

type config = {
  n_tuples : int;
  n_keys : int;
  dist : Emma_util.Dist.t;
  payload_min : int;
  payload_max : int;
}

val paper_config : n_tuples:int -> Emma_util.Dist.t -> config
(** 3-10 character payloads over the given key distribution. *)

val uniform : n_keys:int -> Emma_util.Dist.t
val gaussian : n_keys:int -> Emma_util.Dist.t
val pareto : n_keys:int -> Emma_util.Dist.t
(** The paper's three distributions; Pareto assigns ~35% of tuples to one
    key. *)

val tuples : seed:int -> config -> Emma_value.Value.t list
(** Records [{key; value; payload}]. *)

val avg_tuple_bytes : config -> float
(** Mean logical size of one tuple under the byte-size model. *)
