open Emma_lang.Expr

(* Eta-expand a UDF argument that is not a syntactic lambda, so the MC⁻¹
   rules below always see a binder. *)
let as_lam = function
  | Lam (x, b) -> (x, b)
  | f ->
      let x = fresh "x" in
      (x, App (f, Var x))

let rule e =
  match e with
  | Map (f, xs) ->
      let x, body = as_lam f in
      Some (Comp { head = body; quals = [ QGen (x, xs) ]; alg = Alg_bag })
  | Filter (p, xs) ->
      let x, body = as_lam p in
      Some (Comp { head = Var x; quals = [ QGen (x, xs); QGuard body ]; alg = Alg_bag })
  | FlatMap (f, xs) ->
      let x, body = as_lam f in
      Some (Flatten (Comp { head = body; quals = [ QGen (x, xs) ]; alg = Alg_bag }))
  | Fold (fns, xs) ->
      let x = fresh "x" in
      Some (Comp { head = Var x; quals = [ QGen (x, xs) ]; alg = Alg_fold fns })
  | _ -> None

let expr e = rewrite_fixpoint rule e
let program p = map_program_exprs expr p
