(** Comprehension recovery, step (i) of the [parallelize] pipeline
    (paper §4.1): finds maximal comprehendable terms in the desugared AST
    and "re-sugars" them into monad-comprehension views using the MC⁻¹
    translation scheme:

    {v
    t0.map(x => t)        ⟹  [[ t | x <- MC⁻¹(t0) ]]^Bag
    t0.withFilter(x => t) ⟹  [[ x | x <- MC⁻¹(t0), t ]]^Bag
    t0.flatMap(x => t)    ⟹  flatten [[ t | x <- MC⁻¹(t0) ]]^Bag
    t0.fold(e, s, u)      ⟹  [[ x | x <- MC⁻¹(t0) ]]^fold(e,s,u)
    v}

    Non-comprehended operators ([groupBy], [aggBy], [plus], [minus],
    [distinct], [read], bag literals, stateful operations) remain as
    generator sources and are translated directly to combinators later
    (§4.3.1). UDFs that are not syntactic lambdas are eta-expanded first, so
    every operator argument is comprehendable. *)

val expr : Emma_lang.Expr.expr -> Emma_lang.Expr.expr
(** Rewrites every [Map]/[FlatMap]/[Filter]/[Fold] node in the tree into its
    comprehension view, bottom-up. *)

val program : Emma_lang.Expr.program -> Emma_lang.Expr.program
