open Emma_lang.Expr
module Strset = Emma_util.Strset

let has_stateful_effect e =
  (* [Stateful_bag] is a read of mutable state: moving or duplicating it
     across updates changes what it observes, so inliners must treat it
     like an effect too *)
  exists_expr
    (function
      | Stateful_update _ | Stateful_update_msgs _ | Stateful_create _ | Stateful_bag _ ->
          true
      | _ -> false)
    e

let rec occurrences x e =
  match e with
  | Var y -> if String.equal x y then 1 else 0
  | Const _ | Read _ -> 0
  | Lam (y, b) -> if String.equal x y then 0 else occurrences x b
  | Let (y, a, b) ->
      occurrences x a + if String.equal x y then 0 else occurrences x b
  | Comp { head; quals; alg } ->
      let rec go = function
        | [] ->
            occurrences x head
            +
            (match alg with
            | Alg_bag -> 0
            | Alg_fold fns ->
                occurrences x fns.f_empty + occurrences x fns.f_single
                + occurrences x fns.f_union)
        | QGen (y, src) :: rest ->
            occurrences x src + if String.equal y x then 0 else go rest
        | QGuard p :: rest -> occurrences x p + go rest
      in
      go quals
  | Fold (fns, xs) ->
      occurrences x fns.f_empty + occurrences x fns.f_single + occurrences x fns.f_union
      + occurrences x xs
  | AggBy (k, fns, xs) ->
      occurrences x k + occurrences x fns.f_empty + occurrences x fns.f_single
      + occurrences x fns.f_union + occurrences x xs
  | e ->
      let n = ref 0 in
      ignore
        (map_children
           (fun c ->
             n := !n + occurrences x c;
             c)
           e);
      !n

(* ------------------------------------------------------------------ *)
(* Let inlining                                                         *)
(* ------------------------------------------------------------------ *)

let inline_rule = function
  | Let (x, a, b) when not (has_stateful_effect a) ->
      let n = occurrences x b in
      if n = 0 then Some b
      else if n = 1 || (match a with Var _ | Const _ -> true | _ -> false) then
        Some (subst x a b)
      else None
  | _ -> None

let inline_lets e = rewrite_fixpoint inline_rule e

(* ------------------------------------------------------------------ *)
(* Normalization rules                                                  *)
(* ------------------------------------------------------------------ *)

(* Fresh-rename the binders of spliced qualifiers so they cannot capture
   names used by the surrounding comprehension. *)
let avoid_set head quals alg =
  let quals_fv =
    List.fold_left
      (fun acc -> function
        | QGen (x, src) -> Strset.add x (Strset.union acc (free_vars src))
        | QGuard p -> Strset.union acc (free_vars p))
      Strset.empty quals
  in
  let alg_fv =
    match alg with
    | Alg_bag -> Strset.empty
    | Alg_fold fns ->
        Strset.union (free_vars fns.f_empty)
          (Strset.union (free_vars fns.f_single) (free_vars fns.f_union))
  in
  Strset.union (free_vars head) (Strset.union quals_fv alg_fv)

let subst_alg x repl = function
  | Alg_bag -> Alg_bag
  | Alg_fold fns ->
      Alg_fold
        { fns with
          f_empty = subst x repl fns.f_empty;
          f_single = subst x repl fns.f_single;
          f_union = subst x repl fns.f_union }

let subst_quals x repl quals =
  (* Substitution in a qualifier suffix: stop when x gets rebound. *)
  let rec go = function
    | [] -> []
    | QGuard p :: rest -> QGuard (subst x repl p) :: go rest
    | QGen (y, src) :: rest ->
        let src' = subst x repl src in
        if String.equal y x then QGen (y, src') :: rest else QGen (y, src') :: go rest
  in
  go quals

(* Rule 2: unnest a Bag comprehension bound by a generator. *)
let unnest_generator head quals alg =
  let rec split before = function
    | [] -> None
    | QGen (x, Comp { head = t'; quals = qs'; alg = Alg_bag }) :: after ->
        Some (List.rev before, x, t', qs', after)
    | q :: after -> split (q :: before) after
  in
  match split [] quals with
  | None -> None
  | Some (before, x, t', qs', after) ->
      let avoid =
        Strset.union
          (avoid_set head (before @ after) alg)
          (comp_bound_vars (before @ after))
      in
      let qs_renamed, t_renamed = rename_avoiding avoid qs' t' in
      let head' = subst x t_renamed head in
      let after' = subst_quals x t_renamed after in
      let alg' = subst_alg x t_renamed alg in
      Some { head = head'; quals = before @ qs_renamed @ after'; alg = alg' }

(* Canonical exists guard: head is the applied predicate, single is the
   identity. Combinator translation pattern-matches on this shape. *)
let is_identity_lam = function
  | Lam (x, Var y) -> String.equal x y
  | _ -> false

let canonicalize_quantifier = function
  | Comp { head; quals; alg = Alg_fold fns }
    when (fns.f_tag = Tag_exists || fns.f_tag = Tag_forall)
         && not (is_identity_lam fns.f_single) ->
      let head' = beta_reduce (App (fns.f_single, head)) in
      let x = fresh "x" in
      Some
        (Comp
           { head = head';
             quals;
             alg = Alg_fold { fns with f_single = Lam (x, Var x) } })
  | _ -> None

(* forall = ¬∃¬ : lets the combinator translation reuse the anti-join
   machinery for universally quantified guards. Fires on the canonical
   (identity-single) form only, so it composes with canonicalization. *)
let forall_to_not_exists = function
  | Comp { head; quals; alg = Alg_fold fns }
    when fns.f_tag = Tag_forall && is_identity_lam fns.f_single ->
      let x = fresh "x" in
      Some
        (Prim
           ( Emma_lang.Prim.Not,
             [ Comp
                 { head = Prim (Emma_lang.Prim.Not, [ head ]);
                   quals;
                   alg =
                     Alg_fold
                       { f_empty = Const (Emma_value.Value.Bool false);
                         f_single = Lam (x, Var x);
                         f_union =
                           Lam
                             ( "a",
                               Lam ("b", Prim (Emma_lang.Prim.Or, [ Var "a"; Var "b" ])) );
                         f_tag = Tag_exists } } ]))
  | _ -> None

let rule e =
  match e with
  (* Rule 1: flatten over a comprehension whose head is a Bag comprehension. *)
  | Flatten (Comp { head = Comp { head = h'; quals = qs'; alg = Alg_bag }; quals; alg = Alg_bag })
    ->
      Some (Comp { head = h'; quals = quals @ qs'; alg = Alg_bag })
  (* Rule 1b: flatten over a comprehension whose head is itself a flatten. *)
  | Flatten (Comp { head = Flatten (Comp inner); quals; alg = Alg_bag }) ->
      Some (Flatten (Comp { head = Comp inner; quals; alg = Alg_bag }))
  (* Flatten with an uncomprehended (but bag-valued) head becomes a
     dependent generator. *)
  | Flatten (Comp { head = h; quals; alg = Alg_bag }) ->
      let v = fresh "v" in
      Some (Comp { head = Var v; quals = quals @ [ QGen (v, h) ]; alg = Alg_bag })
  (* Flatten of an arbitrary bag-of-bags expression. *)
  | Flatten e' ->
      let w = fresh "w" and v = fresh "v" in
      Some (Comp { head = Var v; quals = [ QGen (w, e'); QGen (v, Var w) ]; alg = Alg_bag })
  (* Split conjunctive guards: helps filter pushdown and join detection. *)
  | Comp { head; quals; alg }
    when List.exists (function QGuard (Prim (Emma_lang.Prim.And, _)) -> true | _ -> false) quals
    ->
      let split_guard = function
        | QGuard (Prim (Emma_lang.Prim.And, [ p; q ])) -> [ QGuard p; QGuard q ]
        | q -> [ q ]
      in
      Some (Comp { head; quals = List.concat_map split_guard quals; alg })
  | Comp { head; quals; alg } -> begin
      (* Rule 3 (canonicalize quantifier algebras, forall = ¬∃¬),
         then rule 2. *)
      match canonicalize_quantifier e with
      | Some e' -> Some e'
      | None -> begin
          match forall_to_not_exists e with
          | Some e' -> Some e'
          | None -> Option.map (fun c -> Comp c) (unnest_generator head quals alg)
        end
    end
  | _ -> None

let normalize_expr e = rewrite_fixpoint rule e

let normalize e = normalize_expr (Resugar.expr (inline_lets e))

let program p = map_program_exprs normalize p
