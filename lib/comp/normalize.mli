(** Comprehension normalization (paper §4.1) and expression-level inlining.

    The three normalization rules:

    {v
    flatten [[ [[ e | qs' ]] | qs ]]^T      ⟹  [[ e | qs, qs' ]]^T
    [[ t | qs, x <- [[ t'| qs' ]], qs'' ]]^T ⟹  [[ t[t'/x] | qs, qs', qs''[t'/x] ]]^T
    [[ e | qs, [[ p | qs'' ]]^exists, qs' ]]^T — exists guards
    v}

    The second rule performs {e fusion} at compile time: map and fold chains
    collapse into one comprehension (one pipelined task downstream).

    Exists guards (third rule) are {e canonicalized} rather than spliced
    into the qualifier list: splicing `[[ p | y <- ys ]]^exists` as a plain
    generator would change result multiplicities when several [y] witness
    the predicate (the classic caveat of Kim's type-N unnesting), so we
    normalize the guard to the canonical form [[ p | qs'' ]]^exists and let
    the combinator translation turn it into a {e semi-join} — the logical
    join the paper's §4.2.1 asks for, with multiset semantics preserved.
    This deviation is recorded in DESIGN.md.

    Additional administrative rules: conjunctive guards are split, [Flatten]
    over a non-comprehension head becomes a dependent generator, and
    let-bindings that are referenced at most once (and are effect-free) are
    inlined so bigger comprehensions can form. *)

val inline_lets : Emma_lang.Expr.expr -> Emma_lang.Expr.expr
(** Expression-level inlining: substitutes [Let]-bound values referenced at
    most once, provided the bound expression is free of stateful effects. *)

val normalize_expr : Emma_lang.Expr.expr -> Emma_lang.Expr.expr
(** Applies the normalization rules to a fixpoint. The input is expected to
    be in comprehension-view form (output of {!Resugar.expr}). *)

val normalize : Emma_lang.Expr.expr -> Emma_lang.Expr.expr
(** [inline_lets] followed by {!Resugar.expr} followed by
    [normalize_expr]: the complete step (i) of the pipeline for a single
    expression. *)

val program : Emma_lang.Expr.program -> Emma_lang.Expr.program

val has_stateful_effect : Emma_lang.Expr.expr -> bool
(** True if evaluating the expression interacts with mutable stateful-bag
    state — updates (must run exactly once) or reads ([Stateful_bag],
    whose observation must not move across updates). Such expressions must
    not be duplicated, eliminated, or reordered by inlining. *)

val occurrences : string -> Emma_lang.Expr.expr -> int
(** Number of free occurrences of a variable, respecting shadowing. *)
