open Emma_lang.Expr
module Strset = Emma_util.Strset
module Normalize = Emma_comp.Normalize

type stats = { mutable fused_groups : int; mutable fused_folds : int }

let fresh_stats () = { fused_groups = 0; fused_folds = 0 }

(* A candidate fold over the group values of [g]:
   [[ head | y <- g.values, guards... ]]^fold(fns). *)
type candidate = { c_var : string; c_guards : expr list; c_head : expr; c_fns : fold_fns }

(* Canonical form used to deduplicate structurally equal candidates. *)
let canon c =
  let r e = subst c.c_var (Var "$y") e in
  { c_var = "$y";
    c_guards = List.map r c.c_guards;
    c_head = r c.c_head;
    c_fns =
      { c.c_fns with
        f_empty = r c.c_fns.f_empty;
        f_single = r c.c_fns.f_single;
        f_union = r c.c_fns.f_union } }

let candidate_equal a b = canon a = canon b

(* Does [e] match a fold comprehension over [g].values whose only
   dependence on the outer comprehension scope is [g] itself? *)
let match_candidate g outer_bound e =
  match e with
  | Comp { head; quals = QGen (y, Field (Var g', "values")) :: rest; alg = Alg_fold fns }
    when String.equal g g' ->
      let guards =
        List.filter_map (function QGuard p -> Some p | QGen _ -> None) rest
      in
      if List.length guards <> List.length rest then None
      else
        let c = { c_var = y; c_guards = guards; c_head = head; c_fns = fns } in
        let parts =
          (head :: guards) @ [ fns.f_empty; fns.f_single; fns.f_union ]
        in
        let fv =
          List.fold_left (fun acc p -> Strset.union acc (free_vars p)) Strset.empty parts
        in
        let fv = Strset.remove y fv in
        (* Must not capture [g] or any other outer generator. *)
        let illegal = Strset.inter fv (Strset.add g outer_bound) in
        if Strset.is_empty illegal then Some c else None
  | _ -> None

(* Replace candidate folds with placeholders [Proj (Field (Var g, "agg"), i)];
   returns the rewritten expression and the accumulated candidate list. *)
let harvest g outer_bound candidates e =
  let rec go e =
    match match_candidate g outer_bound e with
    | Some c ->
        let idx =
          match
            List.find_index (fun c' -> candidate_equal c c') !candidates
          with
          | Some i -> i
          | None ->
              candidates := !candidates @ [ c ];
              List.length !candidates - 1
        in
        Proj (Field (Var g, "agg"), idx)
    | None -> map_children go e
  in
  go e

let conj = function
  | [] -> Const (Emma_value.Value.Bool true)
  | p :: ps -> List.fold_left (fun acc q -> Prim (Emma_lang.Prim.And, [ acc; q ])) p ps

(* Banana split: build the single fused fold over n-tuples. Guarded
   candidates map non-matching elements to their unit, which is sound by
   the fold well-definedness conditions. *)
let fuse_folds candidates =
  let n = List.length candidates in
  assert (n > 0);
  let x = fresh "x" and a = fresh "a" and b = fresh "b" in
  let empties = List.map (fun c -> c.c_fns.f_empty) candidates in
  let singles =
    List.map
      (fun c ->
        let head' = subst c.c_var (Var x) c.c_head in
        let applied = beta_reduce (App (c.c_fns.f_single, head')) in
        match c.c_guards with
        | [] -> applied
        | gs ->
            let guard = subst c.c_var (Var x) (conj gs) in
            If (guard, applied, c.c_fns.f_empty))
      candidates
  in
  let unions =
    List.mapi
      (fun i c -> beta_reduce (App (App (c.c_fns.f_union, Proj (Var a, i)), Proj (Var b, i))))
      candidates
  in
  { f_empty = Tuple empties;
    f_single = Lam (x, Tuple singles);
    f_union = Lam (a, Lam (b, Tuple unions));
    f_tag = Tag_generic }

(* Try to fuse one groupBy generator of a comprehension. *)
let try_fuse stats { head; quals; alg } =
  let bound = comp_bound_vars quals in
  let rec split before = function
    | [] -> None
    | (QGen (g, GroupBy (k, xs)) as qg) :: after -> begin
        let outer_bound = Strset.remove g bound in
        let candidates = ref [] in
        let head' = harvest g outer_bound candidates head in
        let after' =
          List.map
            (function
              | QGen (y, src) -> QGen (y, harvest g outer_bound candidates src)
              | QGuard p -> QGuard (harvest g outer_bound candidates p))
            after
        in
        let alg' =
          match alg with
          | Alg_bag -> Alg_bag
          | Alg_fold fns ->
              Alg_fold
                { fns with
                  f_empty = harvest g outer_bound candidates fns.f_empty;
                  f_single = harvest g outer_bound candidates fns.f_single;
                  f_union = harvest g outer_bound candidates fns.f_union }
        in
        (* Residual uses of [g] must all be key accesses (or the agg
           projections the harvest itself just introduced). *)
        let strip_keys e =
          rewrite_fixpoint
            (function
              | Field (Var g', ("key" | "agg")) when String.equal g g' ->
                  Some (Const (Emma_value.Value.Unit))
              | _ -> None)
            e
        in
        let residual_exprs =
          (head' :: List.map (function QGen (_, s) -> s | QGuard p -> p) after')
          @
          match alg' with
          | Alg_bag -> []
          | Alg_fold fns -> [ fns.f_empty; fns.f_single; fns.f_union ]
        in
        let uses_g_raw =
          List.exists (fun e -> Normalize.occurrences g (strip_keys e) > 0) residual_exprs
        in
        if !candidates = [] || uses_g_raw then split (qg :: before) after
        else begin
          stats.fused_groups <- stats.fused_groups + 1;
          stats.fused_folds <- stats.fused_folds + List.length !candidates;
          let fused = fuse_folds !candidates in
          let gen' = QGen (g, AggBy (k, fused, xs)) in
          Some { head = head'; quals = List.rev_append before (gen' :: after'); alg = alg' }
        end
      end
    | q :: after -> split (q :: before) after
  in
  split [] quals

let expr ?(stats = fresh_stats ()) e =
  rewrite_fixpoint
    (function
      | Comp c -> Option.map (fun c' -> Comp c') (try_fuse stats c)
      | _ -> None)
    e

let program ?(stats = fresh_stats ()) p = map_program_exprs (expr ?stats:(Some stats)) p
