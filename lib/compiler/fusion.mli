(** Fold-group fusion (paper §4.2.2).

    Candidates are comprehension generators binding to a [groupBy] whose
    group values are consumed {e exclusively} by fold comprehensions. The
    rewrite is the composition of two algebraic laws:

    {ul
    {- {b Banana split}: the tuple of the n candidate folds is one fold over
       n-tuples, built by pairwise application of the original [(e, s, u)]
       triples;}
    {- {b Fold-build fusion} (deforestation): constructing group values with
       the bag constructors and immediately consuming them with the fused
       fold cancels out, turning [groupBy] into [aggBy] — the paper's
       equivalent of replacing [groupBy]+folds with [reduceByKey].}}

    Following the paper, no user annotations are needed: any fold in union
    representation fuses, and folds over {e guarded} group values
    ([[ h | y <- g.values, p ]]^fold) fuse too, by mapping non-matching
    elements to the fold's unit.

    The rewrite fires only when every occurrence of the group variable is
    either [g.key] or one of the candidate folds — otherwise the group must
    genuinely be materialized and the [groupBy] is kept. *)

type stats = { mutable fused_groups : int; mutable fused_folds : int }

val fresh_stats : unit -> stats

val expr : ?stats:stats -> Emma_lang.Expr.expr -> Emma_lang.Expr.expr
(** Applies the rewrite everywhere in a normalized expression. *)

val program : ?stats:stats -> Emma_lang.Expr.program -> Emma_lang.Expr.program
