module Expr = Emma_lang.Expr
module Pretty = Emma_lang.Pretty
module Cprog = Emma_dataflow.Cprog
module Trace = Emma_util.Trace

type t = {
  source : string;
  source_nodes : int;
  phases : Pipeline.phase_obs list;
  report : Pipeline.report;
  final : string;
  final_nodes : int;
}

let run ?(opts = Pipeline.default_opts) p =
  Expr.with_fresh_reset (fun () ->
      let acc = ref [] in
      let compiled, report =
        Pipeline.compile ~opts ~trace:Trace.disabled ~observe:(fun o -> acc := o :: !acc) p
      in
      { source = Pretty.program_to_string p;
        source_nodes = Pipeline.program_size p;
        phases = List.rev !acc;
        report;
        final = Cprog.to_string compiled;
        final_nodes = Pipeline.cprog_size compiled })

let phase_status (o : Pipeline.phase_obs) =
  if not o.Pipeline.ph_enabled then "off"
  else if o.Pipeline.ph_changed then "changed"
  else "no-op"

let detail_suffix (o : Pipeline.phase_obs) =
  match o.Pipeline.ph_detail with
  | [] -> ""
  | kvs ->
      "  ["
      ^ String.concat "; "
          (List.map (fun (k, v) -> k ^ "=" ^ (if v = "" then "-" else v)) kvs)
      ^ "]"

let add_block buf title body =
  Buffer.add_string buf ("-- " ^ title ^ " --\n");
  Buffer.add_string buf body;
  if not (String.length body > 0 && body.[String.length body - 1] = '\n') then
    Buffer.add_char buf '\n';
  Buffer.add_char buf '\n'

let to_string t =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "emma explain\n";
  Buffer.add_string buf "============\n\n";
  add_block buf (Printf.sprintf "source program (%d AST nodes)" t.source_nodes) t.source;
  Buffer.add_string buf "-- pipeline phases --\n";
  List.iter
    (fun (o : Pipeline.phase_obs) ->
      Buffer.add_string buf
        (Printf.sprintf "%-10s %5d -> %5d nodes  %-7s%s\n" o.Pipeline.ph_name
           o.Pipeline.ph_before o.Pipeline.ph_after (phase_status o) (detail_suffix o)))
    t.phases;
  Buffer.add_char buf '\n';
  let r = t.report in
  let fired b = if b then "fired" else "not applied" in
  Buffer.add_string buf "-- optimizations --\n";
  Buffer.add_string buf
    (Printf.sprintf "fold-group fusion   %-12s (groups=%d, folds=%d)\n"
       (fired (Pipeline.applied_group_fusion r))
       r.Pipeline.fusion.Fusion.fused_groups r.Pipeline.fusion.Fusion.fused_folds);
  Buffer.add_string buf
    (Printf.sprintf "exists-unnesting    %-12s (semi-joins=%d, anti-joins=%d)\n"
       (fired (Pipeline.applied_unnesting r))
       r.Pipeline.translation.Translate.semi_joins
       r.Pipeline.translation.Translate.anti_joins);
  Buffer.add_string buf
    (Printf.sprintf "caching             %-12s %s\n"
       (fired (Pipeline.applied_caching r))
       (match r.Pipeline.cached_vars with
       | [] -> ""
       | vs -> "[" ^ String.concat ", " vs ^ "]"));
  Buffer.add_string buf
    (Printf.sprintf "partition pulling   %-12s %s\n"
       (fired (Pipeline.applied_partition_pulling r))
       (match r.Pipeline.partitioned_vars with
       | [] -> ""
       | vs -> "[" ^ String.concat ", " vs ^ "]"));
  Buffer.add_char buf '\n';
  List.iter
    (fun (o : Pipeline.phase_obs) ->
      match o.Pipeline.ph_artifact with
      | Some artifact -> add_block buf ("after " ^ o.Pipeline.ph_name) artifact
      | None -> ())
    t.phases;
  add_block buf (Printf.sprintf "final driver program (%d nodes)" t.final_nodes) t.final;
  Buffer.contents buf

let pp ppf t = Format.pp_print_string ppf (to_string t)
