(** Bounded LRU cache of compiled plans.

    Sessions key each submission with {!Pipeline.normalized_key} (the
    CRC32-indexed rendering of the normalized program + opts + table
    schema) and reuse the compiled {!Emma_dataflow.Cprog.t} + report on a
    hit, skipping the whole normalize/fusion/translate/physical pipeline.
    Compiled programs are immutable, so a cached plan is shared across
    runs without copying.

    Eviction is strict LRU ordered by a monotone use tick — a pure
    function of the probe/store sequence, independent of wall clock,
    domain count and hash order — so serve's sim-mode cache counters
    replay bit-identically. All operations are mutex-guarded for the real
    concurrent mode. *)

type t

type stats = {
  hits : int;  (** probes that found a live entry *)
  misses : int;  (** probes that found nothing *)
  evictions : int;  (** entries dropped to stay within capacity *)
  entries : int;  (** current population *)
}

val create : capacity:int -> t
(** Raises [Invalid_argument] when [capacity < 1] (use no cache at all to
    disable caching). *)

val capacity : t -> int
val stats : t -> stats

val probe : t -> Pipeline.cache_key -> (Emma_dataflow.Cprog.t * Pipeline.report) option
(** Counted: bumps [hits] or [misses], and refreshes recency on a hit. *)

val mem : t -> Pipeline.cache_key -> bool
(** Uncounted membership test: no hit/miss bump, no recency refresh —
    cache stats and LRU order are unchanged. Used by the serve layer's
    plan-cache-only degradation rung to predict whether a submission
    would compile cold, without perturbing the replayable probe/store
    sequence. *)

val store : t -> Pipeline.cache_key -> Emma_dataflow.Cprog.t * Pipeline.report -> int
(** Inserts (or refreshes) the entry and evicts least-recently-used
    entries past capacity; returns the number evicted by this store. *)

val as_cache : t -> Pipeline.cache
(** The {!Pipeline.compile} seam: probe/store closures over this cache. *)

val touch : t -> Pipeline.cache_key -> unit
(** Stats-neutral recency refresh: consumes one tick when the key is
    present (exactly what a counted hit would), bumps no counters; no-op
    when absent. Used by serve recovery to replay journaled cache hits. *)

val prime : t -> Pipeline.cache_key -> Emma_dataflow.Cprog.t * Pipeline.report -> unit
(** Stats-neutral insert-or-refresh with [store]'s tick and eviction
    behavior but no counter bumps. Used by serve recovery to replay
    journaled cache misses and to restore snapshotted cache contents. *)

val entries_by_recency : t -> Pipeline.cache_key list
(** Current keys, least-recently-used first — replaying {!prime} over
    this sequence reconstructs both population and LRU order. Serve
    snapshots persist it (as query names) for recovery. *)
