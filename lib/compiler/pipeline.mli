(** The complete [parallelize] pipeline (paper Fig. 1):

    (i) statement inlining → comprehension recovery → normalization;
    (ii) logical optimization (fold-group fusion; unnesting is realized
    during translation as semi-join extraction);
    (iii) translation to abstract dataflows + physical optimization
    (broadcast insertion, caching, partition pulling).

    Every phase can be toggled for ablation studies; the compilation report
    records which optimizations actually fired, which regenerates the
    paper's Table 1. *)

type opts = {
  inline : bool;
  fuse : bool;  (** fold-group fusion *)
  unnest : bool;  (** exists → semi-join *)
  cache : bool;
  partition : bool;  (** partition pulling *)
}

val default_opts : opts
(** Everything on. *)

val no_opts : opts
(** Only the mandatory phases (recovery, normalization, translation). *)

val with_ : ?inline:bool -> ?fuse:bool -> ?unnest:bool -> ?cache:bool -> ?partition:bool
  -> unit -> opts
(** [default_opts] with selected switches overridden. *)

type report = {
  fusion : Fusion.stats;
  translation : Translate.stats;
  cached_vars : string list;
  partitioned_vars : string list;
}

val applied_group_fusion : report -> bool
val applied_unnesting : report -> bool
val applied_caching : report -> bool
val applied_partition_pulling : report -> bool

val compile : ?opts:opts -> Emma_lang.Expr.program -> Emma_dataflow.Cprog.t * report
(** Runs the pipeline. The result is executable by [Emma_engine] and by the
    compiled-program interpreter used in tests. *)

val normalized : ?opts:opts -> Emma_lang.Expr.program -> Emma_lang.Expr.program
(** The program after the front-end phases only (inline + recover +
    normalize + fuse); exposed for inspection and tests. *)
