(** The complete [parallelize] pipeline (paper Fig. 1):

    (i) statement inlining → comprehension recovery → normalization;
    (ii) logical optimization (fold-group fusion; unnesting is realized
    during translation as semi-join extraction);
    (iii) translation to abstract dataflows + physical optimization
    (broadcast insertion, caching, partition pulling).

    Every phase can be toggled for ablation studies; the compilation report
    records which optimizations actually fired, which regenerates the
    paper's Table 1. *)

type opts = {
  inline : bool;
  fuse : bool;  (** fold-group fusion *)
  unnest : bool;  (** exists → semi-join *)
  cache : bool;
  partition : bool;  (** partition pulling *)
}

val default_opts : opts
(** Everything on. *)

val no_opts : opts
(** Only the mandatory phases (recovery, normalization, translation). *)

val with_ : ?inline:bool -> ?fuse:bool -> ?unnest:bool -> ?cache:bool -> ?partition:bool
  -> unit -> opts
(** [default_opts] with selected switches overridden. *)

type report = {
  fusion : Fusion.stats;
  translation : Translate.stats;
  cached_vars : string list;
  partitioned_vars : string list;
}

val applied_group_fusion : report -> bool
val applied_unnesting : report -> bool
val applied_caching : report -> bool
val applied_partition_pulling : report -> bool

type phase_obs = {
  ph_name : string;  (** inline | normalize | fusion | translate | caching
                         | partition | broadcasts | udf-compile *)
  ph_enabled : bool;  (** false when the phase was switched off by [opts] *)
  ph_before : int;  (** AST/plan node count entering the phase *)
  ph_after : int;  (** node count leaving it *)
  ph_changed : bool;  (** the phase rewrote the artifact *)
  ph_detail : (string * string) list;  (** deterministic per-phase facts
                                           (fusion counts, join counts,
                                           cached/partitioned vars) *)
  ph_artifact : string option;  (** pretty-printed artifact after the
                                    phase, present iff it changed *)
}
(** One pipeline phase as observed by [compile ~observe]. Snapshots are
    only rendered when an observer is installed, so plain compiles pay
    nothing. *)

val program_size : Emma_lang.Expr.program -> int
(** Total AST node count over all statements and the return expression. *)

val cprog_size : Emma_dataflow.Cprog.t -> int
(** Node count of a compiled driver program: driver expressions plus plan
    nodes of every thunk. *)

type cache_key = {
  ck_crc : int;  (** CRC32 of [ck_text] — the cache's index *)
  ck_text : string;
      (** deterministic rendering of (opts fingerprint, table schema,
          front-end-normalized program). Equality of this text is the
          cache's identity, so CRC collisions are harmless. *)
}

type cache = {
  cache_probe : cache_key -> (Emma_dataflow.Cprog.t * report) option;
  cache_store : cache_key -> Emma_dataflow.Cprog.t * report -> unit;
}
(** The plan-cache seam: [compile ~cache] keys the submission, probes
    before doing any back-end work, and stores cold results. The concrete
    LRU lives in {!Plan_cache}; this indirection keeps the pipeline free
    of cache policy. *)

val normalized_key :
  ?opts:opts -> ?schema:string -> Emma_lang.Expr.program -> cache_key
(** The plan-cache key of a submission: the front-end phases (inline +
    normalize + fuse) run under {!Emma_lang.Expr.with_fresh_reset} so
    invented variable names are reproducible, and the rendered program is
    combined with an [opts] fingerprint and the caller's table-[schema]
    fingerprint. Same source modulo alpha-renaming of compiler-invented
    names + same opts + same schema ⇒ same key; any plan-affecting change
    ⇒ different key. *)

val compile :
  ?opts:opts ->
  ?trace:Emma_util.Trace.t ->
  ?observe:(phase_obs -> unit) ->
  ?schema:string ->
  ?cache:cache ->
  Emma_lang.Expr.program ->
  Emma_dataflow.Cprog.t * report
(** Runs the pipeline. The result is executable by [Emma_engine] and by the
    compiled-program interpreter used in tests.

    Every phase is wrapped in a [trace] span (category [compile]) whose
    begin/end attributes carry the before/after node counts; [trace]
    defaults to the ambient {!Emma_util.Trace.global} tracer, which is
    disabled unless the CLI/bench switched it on. [observe] is called once
    per phase, in order, with a {!phase_obs} snapshot — the structured feed
    behind [emma explain].

    With [cache], the submission is keyed by {!normalized_key} (using
    [schema], default [""]) and probed first: a hit returns the cached
    compiled program without running translation/physical phases (no
    spans, no [observe] callbacks); a miss compiles cold and stores.
    Compiled programs are immutable, so sharing them across runs is
    safe. *)

val normalized : ?opts:opts -> Emma_lang.Expr.program -> Emma_lang.Expr.program
(** The program after the front-end phases only (inline + recover +
    normalize + fuse); exposed for inspection and tests. *)
