module P = Emma_dataflow.Plan
module Cprog = Emma_dataflow.Cprog
module Strset = Emma_util.Strset

type report = { cached_vars : string list; partitioned_vars : string list }

(* ------------------------------------------------------------------ *)
(* Caching                                                              *)
(* ------------------------------------------------------------------ *)

(* A bag binding qualifies for caching when the total number of references
   (scans by later dataflows plus UDF broadcast captures) is at least two,
   or when any reference sits in a deeper loop than the definition. *)

let bag_binding = function
  | Cprog.CLet (x, r) | Cprog.CVar (x, r) -> begin
      match Cprog.plan_of_rhs r with
      | Some p when P.result_kind p = P.Rbag -> Some x
      | _ -> None
    end
  | _ -> None

let plan_refs p =
  (* Scan references and UDF captures, by name. Broadcast annotations are
     not filled in yet at this stage, so capture sets are recomputed. *)
  let scans = P.scanned_vars p in
  let p' = P.annotate_broadcasts ~bound:Strset.empty p in
  scans @ P.broadcast_vars p'

let collect_defs_and_refs prog =
  let defs = Hashtbl.create 16 in
  (* definition name -> loop depth *)
  let refs = Hashtbl.create 16 in
  (* name -> (count, max ref depth) *)
  let note_ref depth x =
    let count, d = Option.value (Hashtbl.find_opt refs x) ~default:(0, 0) in
    Hashtbl.replace refs x (count + 1, max d depth)
  in
  Cprog.iter_stmts_with_depth
    (fun depth s ->
      (match bag_binding s with
      | Some x -> if not (Hashtbl.mem defs x) then Hashtbl.add defs x depth
      | None -> ());
      let rhs_of = function
        | Cprog.CLet (_, r) | Cprog.CVar (_, r) | Cprog.CAssign (_, r) | Cprog.CWrite (_, r)
        | Cprog.CWhile (r, _) | Cprog.CIf (r, _, _) ->
            r
      in
      let r = rhs_of s in
      List.iter (fun (_, p) -> List.iter (note_ref depth) (plan_refs p)) r.Cprog.thunks)
    prog;
  (defs, refs)

let wrap_binding_plans names wrap prog =
  (* Rewrites the defining (and reassigning) statements of the given
     bindings, wrapping their bag-valued plan. *)
  let rewrite_for x r =
    if not (List.mem x names) then r
    else
      match Cprog.plan_of_rhs r with
      | Some p when P.result_kind p = P.Rbag ->
          Cprog.{ r with thunks = List.map (fun (n, _) -> (n, wrap x p)) r.thunks }
      | _ -> r
  in
  let rec go_stmt = function
    | Cprog.CLet (x, r) -> Cprog.CLet (x, rewrite_for x r)
    | Cprog.CVar (x, r) -> Cprog.CVar (x, rewrite_for x r)
    | Cprog.CAssign (x, r) -> Cprog.CAssign (x, rewrite_for x r)
    | Cprog.CWhile (c, b) -> Cprog.CWhile (c, List.map go_stmt b)
    | Cprog.CIf (c, t, e) -> Cprog.CIf (c, List.map go_stmt t, List.map go_stmt e)
    | Cprog.CWrite (t, r) -> Cprog.CWrite (t, r)
  in
  Cprog.{ prog with cbody = List.map go_stmt prog.cbody }

let insert_caching prog =
  let defs, refs = collect_defs_and_refs prog in
  let cached =
    Hashtbl.fold
      (fun x def_depth acc ->
        match Hashtbl.find_opt refs x with
        | Some (count, ref_depth) when count >= 2 || ref_depth > def_depth -> x :: acc
        | _ -> acc)
      defs []
  in
  let cached = List.sort String.compare cached in
  (wrap_binding_plans cached (fun _ p -> P.Cache p) prog, cached)

(* ------------------------------------------------------------------ *)
(* Partition pulling                                                    *)
(* ------------------------------------------------------------------ *)

(* Trace a consumer's key through element-preserving operators down to the
   producing scan. *)
let rec trace_to_scan plan =
  match plan with
  | P.Scan v -> Some v
  | P.Filter (_, p) | P.Cache p | P.Partition_by (_, p) -> trace_to_scan p
  | P.Semi_join { left; _ } | P.Anti_join { left; _ } -> trace_to_scan left
  | _ -> None

let key_is_pure (k : P.udf) =
  Strset.is_empty (Strset.remove k.param (Emma_lang.Expr.free_vars k.body))

let collect_desires prog =
  (* name -> list of (key udf, weight) *)
  let desires : (string, (P.udf * int) list) Hashtbl.t = Hashtbl.create 16 in
  let note v k weight =
    if key_is_pure k then begin
      let existing = Option.value (Hashtbl.find_opt desires v) ~default:[] in
      Hashtbl.replace desires v ((k, weight) :: existing)
    end
  in
  let weight_of depth = (4 * depth) + 1 in
  Cprog.iter_stmts_with_depth
    (fun depth s ->
      let rhs_of = function
        | Cprog.CLet (_, r) | Cprog.CVar (_, r) | Cprog.CAssign (_, r) | Cprog.CWrite (_, r)
        | Cprog.CWhile (r, _) | Cprog.CIf (r, _, _) ->
            r
      in
      let w = weight_of depth in
      List.iter
        (fun (_, plan) ->
          P.fold_plan
            (fun () node ->
              match node with
              | P.Eq_join { lkey; rkey; left; right } ->
                  Option.iter (fun v -> note v lkey w) (trace_to_scan left);
                  Option.iter (fun v -> note v rkey w) (trace_to_scan right)
              | P.Semi_join { lkey; rkey; left; right } | P.Anti_join { lkey; rkey; left; right }
                ->
                  Option.iter (fun v -> note v lkey w) (trace_to_scan left);
                  Option.iter (fun v -> note v rkey w) (trace_to_scan right)
              | P.Group_by (k, input) | P.Agg_by { key = k; input; _ } ->
                  Option.iter (fun v -> note v k w) (trace_to_scan input)
              | _ -> ())
            () plan)
        (rhs_of s).Cprog.thunks)
    prog;
  desires

let pick_key entries =
  (* Group alpha-equal keys; pick the highest cumulative weight. *)
  let rec add groups (k, w) =
    match groups with
    | [] -> [ (k, w) ]
    | (k', w') :: rest ->
        if P.udf_alpha_equal k k' then (k', w' + w) :: rest else (k', w') :: add rest (k, w)
  in
  match List.fold_left add [] entries with
  | [] -> None
  | groups ->
      let best = List.fold_left (fun (bk, bw) (k, w) -> if w > bw then (k, w) else (bk, bw))
                   (List.hd groups) (List.tl groups)
      in
      Some (fst best)

let partition_pulling prog =
  let desires = collect_desires prog in
  let chosen =
    Hashtbl.fold
      (fun v entries acc ->
        match pick_key entries with Some k -> (v, k) :: acc | None -> acc)
      desires []
  in
  (* Only pull partitionings onto loop-invariant producers: bindings
     defined at the top level and never reassigned. Enforcing a
     partitioning on a binding that is recomputed every iteration would be
     paid every iteration anyway (the paper's Fig. 4 discussion: without a
     reuse point, pulling has no effect). *)
  let eligible =
    let defined = ref [] and assigned = ref [] in
    Cprog.iter_stmts_with_depth
      (fun depth s ->
        (match bag_binding s with
        | Some x when depth = 0 -> defined := x :: !defined
        | Some _ | None -> ());
        match s with
        | Cprog.CAssign (x, _) -> assigned := x :: !assigned
        | _ -> ())
      prog;
    List.filter (fun x -> not (List.mem x !assigned)) !defined
  in
  let chosen = List.filter (fun (v, _) -> List.mem v eligible) chosen in
  let names = List.sort String.compare (List.map fst chosen) in
  let wrap v p =
    match List.assoc_opt v chosen with
    | Some k -> begin
        (* Keep Cache outermost: Cache (Partition_by (k, p)). *)
        match p with
        | P.Cache inner -> P.Cache (P.Partition_by (k, inner))
        | p -> P.Partition_by (k, p)
      end
    | None -> p
  in
  (wrap_binding_plans names wrap prog, names)

(* ------------------------------------------------------------------ *)

let annotate_broadcasts prog =
  Cprog.map_rhs
    (fun r ->
      Cprog.
        { r with
          thunks =
            List.map
              (fun (n, p) -> (n, P.annotate_broadcasts ~bound:Strset.empty p))
              r.thunks })
    prog

(* ------------------------------------------------------------------ *)

let udf_compile_stats prog =
  (* Counts the UDF sites the engine will stage through
     [Emma_lang.Compile]: reified unary/binary UDFs, fold algebras, and the
     subset of UDFs that capture no driver variables ("closed" — these
     compile to fully environment-free closures). Purely an analysis: the
     plans themselves are not changed. *)
  let udfs = ref 0 and udf2s = ref 0 and folds = ref 0 and closed = ref 0 in
  let udf (u : P.udf) =
    incr udfs;
    if u.P.broadcast = [] then incr closed
  in
  let udf2 (u : P.udf2) =
    incr udf2s;
    if u.P.broadcast2 = [] then incr closed
  in
  Cprog.iter_plans
    (fun plan ->
      P.fold_plan
        (fun () node ->
          match node with
          | P.Map (u, _) | P.Flat_map (u, _) | P.Filter (u, _)
          | P.Group_by (u, _) | P.Partition_by (u, _) ->
              udf u
          | P.Eq_join { lkey; rkey; _ }
          | P.Semi_join { lkey; rkey; _ }
          | P.Anti_join { lkey; rkey; _ } ->
              udf lkey;
              udf rkey
          | P.Agg_by { key; _ } ->
              udf key;
              incr folds
          | P.Fold (_, _) -> incr folds
          | P.Stateful_create { key; _ } -> udf key
          | P.Stateful_update { udf = u; _ } -> udf u
          | P.Stateful_update_msgs { msg_key; udf = u; _ } ->
              udf msg_key;
              udf2 u
          | P.Read _ | P.Scan _ | P.Local _ | P.Cross _ | P.Union _ | P.Minus _
          | P.Distinct _ | P.Cache _ | P.Stateful_read _ ->
              ())
        () plan)
    prog;
  [ ("udfs", string_of_int !udfs);
    ("udf2s", string_of_int !udf2s);
    ("fold algebras", string_of_int !folds);
    ("closed", string_of_int !closed) ]
