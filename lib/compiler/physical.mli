(** Physical optimizations over compiled programs (paper §4.4).

    {b Caching}: bag-valued dataflow results referenced more than once —
    or referenced from a deeper loop level than their definition — are
    forced and cached ([Cache] node). This is the paper's aggressive
    heuristic: it amortizes recomputation under lazy evaluation (e.g. the
    [extractFeatures] map in the Fig. 4 workflow runs once instead of once
    per classifier).

    {b Partition pulling}: for joins and group-based operators consumed
    inside loops, the desired hash partitioning is traced back through
    element-preserving operators ([Filter], the left input of [Semi_join],
    [Cache]) to the producing driver binding, and a [Partition_by] is
    enforced at the producer. Desired partitionings are weighted by loop
    depth, matching the paper's preference for consumers inside loops; with
    caching, the shuffle is then paid once instead of once per iteration.

    {b Broadcast annotation}: UDFs are annotated with the driver variables
    they capture; the engine ships those as broadcast variables. *)

type report = {
  cached_vars : string list;
  partitioned_vars : string list;
}

val insert_caching : Emma_dataflow.Cprog.t -> Emma_dataflow.Cprog.t * string list
(** Returns the transformed program and the names of the cached bindings. *)

val partition_pulling : Emma_dataflow.Cprog.t -> Emma_dataflow.Cprog.t * string list
(** Returns the transformed program and the bindings that received an
    enforced partitioning. *)

val annotate_broadcasts : Emma_dataflow.Cprog.t -> Emma_dataflow.Cprog.t

val udf_compile_stats : Emma_dataflow.Cprog.t -> (string * string) list
(** Analysis for the [udf-compile] explain phase: counts the UDF sites the
    engine stages through {!Emma_lang.Compile} — unary and binary UDFs,
    fold algebras, and how many UDFs are closed (capture no driver
    variables, so they compile to environment-free closures). Does not
    transform the program. *)
