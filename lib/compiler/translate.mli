(** Code generation, step (iii): from comprehension views to abstract
    dataflows (paper §4.3.1, Fig. 2 and Fig. 3a).

    The rewrite is the paper's heuristic state machine: selections are
    pushed into generator sources first ([Filter]), then exists guards
    become {e semi-joins} (the logical joins of §4.2.1, strategy chosen by
    the engine just-in-time), then equality guards become [EqJoin]s, then
    remaining independent generator pairs become [Cross]es, and the residue
    — the head plus any {e dependent} generators and unresolvable guards —
    becomes a trailing [Map]/[FlatMap] whose UDF evaluates locally on each
    element (broadcasting captured driver bags).

    Non-comprehended operators ([groupBy], [aggBy], set operations, I/O,
    stateful bags) are substituted with their combinator directly.

    [program] also splits every statement into driver expression + thunked
    plans (paper §4.3.2): maximal DataBag expressions become plans; scalar
    folds are plans whose results are collected back into driver terms. *)

type stats = {
  mutable semi_joins : int;
  mutable anti_joins : int;
      (** negated-exists (and, via ¬∃¬, forall) guards turned into
          anti-joins *)
  mutable eq_joins : int;
  mutable crosses : int;
  mutable filters : int;
  mutable broadcast_filters : int;
      (** quantifier guards that could not be unnested (or unnesting was
          disabled) and stayed as UDF predicates over a captured bag *)
}

val fresh_stats : unit -> stats

val to_plan : ?unnest:bool -> ?stats:stats -> Emma_lang.Expr.expr -> Emma_dataflow.Plan.t
(** Translates a normalized bag- or fold-valued expression. [unnest]
    (default true) controls whether exists guards become semi-joins. *)

val program :
  ?unnest:bool -> ?stats:stats -> Emma_lang.Expr.program -> Emma_dataflow.Cprog.t
