(** [emma explain]: a deterministic, phase-by-phase account of what the
    pipeline did to a program — the inspectable intermediate artifacts that
    make an optimizer's claims checkable (and golden-testable).

    Output is a pure function of the input program and options: the
    compile runs under {!Emma_lang.Expr.with_fresh_reset}, so generated
    names do not depend on what else was compiled in the process. Nothing
    here executes the program, so the text is workload-independent. *)

type t = {
  source : string;  (** pretty-printed input program *)
  source_nodes : int;
  phases : Pipeline.phase_obs list;  (** in pipeline order *)
  report : Pipeline.report;
  final : string;  (** pretty-printed compiled driver program *)
  final_nodes : int;
}

val run : ?opts:Pipeline.opts -> Emma_lang.Expr.program -> t

val to_string : t -> string
(** The stable text rendering the CLI prints and the golden files commit:
    source, a phase table with node counts and per-phase details, which
    optimizations fired, the plan after every phase that changed it, and
    the final dataflows. Ends with a newline. *)

val pp : Format.formatter -> t -> unit
