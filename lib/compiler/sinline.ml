open Emma_lang.Expr
module Normalize = Emma_comp.Normalize

(* Occurrence counting over statements, distinguishing same-block uses from
   uses nested inside while/if bodies. Counting stops if [x] is shadowed by
   a later definition with the same name. *)

type usage = { same_block : int; nested : int; assigned : bool }

let no_usage = { same_block = 0; nested = 0; assigned = false }

let add a b =
  { same_block = a.same_block + b.same_block;
    nested = a.nested + b.nested;
    assigned = a.assigned || b.assigned }

(* Free occurrences outside any lambda body. Occurrences inside a lambda
   are UDF captures: inlining there would turn a broadcast variable into
   worker-side recomputation, so they must block inlining. *)
let rec occ_no_lam x e =
  match e with
  | Var y -> if String.equal x y then 1 else 0
  | Const _ | Read _ | Lam _ -> 0
  | Let (y, a, b) -> occ_no_lam x a + if String.equal y x then 0 else occ_no_lam x b
  | Comp { head; quals; alg } ->
      let rec go = function
        | [] -> (
            occ_no_lam x head
            +
            match alg with
            | Alg_bag -> 0
            | Alg_fold fns ->
                occ_no_lam x fns.f_empty + occ_no_lam x fns.f_single + occ_no_lam x fns.f_union)
        | QGen (y, src) :: rest -> occ_no_lam x src + if String.equal y x then 0 else go rest
        | QGuard p :: rest -> occ_no_lam x p + go rest
      in
      go quals
  | e ->
      let n = ref 0 in
      ignore
        (map_children
           (fun c ->
             n := !n + occ_no_lam x c;
             c)
           e);
      !n

let stmt_exprs_usage x e =
  let total = Normalize.occurrences x e in
  let outside = occ_no_lam x e in
  { same_block = outside; nested = total - outside; assigned = false }

let usage_in_stmts_no_lam x stmts =
  (* like usage_in_stmts but counting only occurrences outside lambdas
     (the lambda-enclosed ones were accounted as nested above) *)
  let rec go = function
    | [] -> no_usage
    | s :: rest -> begin
        match s with
        | SLet (y, e) | SVar (y, e) ->
            let here = { no_usage with same_block = occ_no_lam x e } in
            if String.equal y x then here else add here (go rest)
        | SAssign (y, e) ->
            let here =
              { no_usage with same_block = occ_no_lam x e; assigned = String.equal y x }
            in
            add here (go rest)
        | SWhile (c, body) ->
            let inner = go body in
            let here =
              { same_block = occ_no_lam x c;
                nested = inner.same_block + inner.nested;
                assigned = inner.assigned }
            in
            add here (go rest)
        | SIf (c, t, e) ->
            let it = go t and ie = go e in
            let here =
              { same_block = occ_no_lam x c;
                nested = it.same_block + it.nested + ie.same_block + ie.nested;
                assigned = it.assigned || ie.assigned }
            in
            add here (go rest)
        | SWrite (_, e) -> add { no_usage with same_block = occ_no_lam x e } (go rest)
      end
  in
  go stmts

let usage_in x stmts ret =
  (* lambda-enclosed occurrences in any statement count as nested *)
  let lam_usage =
    let acc = ref no_usage in
    let rec scan = function
      | SLet (_, e) | SVar (_, e) | SAssign (_, e) | SWrite (_, e) ->
          acc := add !acc { no_usage with nested = (stmt_exprs_usage x e).nested }
      | SWhile (c, body) ->
          acc := add !acc { no_usage with nested = (stmt_exprs_usage x c).nested };
          List.iter scan body
      | SIf (c, t, e) ->
          acc := add !acc { no_usage with nested = (stmt_exprs_usage x c).nested };
          List.iter scan t;
          List.iter scan e
    in
    List.iter scan stmts;
    !acc
  in
  add lam_usage
    (add (usage_in_stmts_no_lam x stmts) (stmt_exprs_usage x ret))

(* Substitute x := e in statements until x is shadowed. *)
let rec subst_stmts x e = function
  | [] -> []
  | s :: rest -> begin
      match s with
      | SLet (y, rhs) ->
          let s' = SLet (y, subst x e rhs) in
          if String.equal y x then s' :: rest else s' :: subst_stmts x e rest
      | SVar (y, rhs) ->
          let s' = SVar (y, subst x e rhs) in
          if String.equal y x then s' :: rest else s' :: subst_stmts x e rest
      | SAssign (y, rhs) -> SAssign (y, subst x e rhs) :: subst_stmts x e rest
      | SWhile (c, body) -> SWhile (subst x e c, subst_stmts x e body) :: subst_stmts x e rest
      | SIf (c, t, el) ->
          SIf (subst x e c, subst_stmts x e t, subst_stmts x e el) :: subst_stmts x e rest
      | SWrite (snk, rhs) -> SWrite (snk, subst x e rhs) :: subst_stmts x e rest
    end

let inlinable e =
  (is_bag_op e
  ||
  match e with
  | Fold _ | Comp { alg = Alg_fold _; _ } -> true
  | _ -> false)
  && not (Normalize.has_stateful_effect e)

(* One inlining pass over a block; [ret] is the expression evaluated after
   the block — the program result for the top-level block, Const Unit for
   nested blocks (their bindings are iteration-scoped and cannot escape).
   Inlining a definition whose single use sits in [ret] must substitute
   into [ret] too, so the pass threads it through. *)
let rec pass_block stmts ret =
  match stmts with
  | [] -> ([], ret, false)
  | SLet (x, e) :: rest when inlinable e ->
      let u = usage_in x rest ret in
      if u.same_block = 1 && u.nested = 0 && not u.assigned then
        (subst_stmts x e rest, subst x e ret, true)
      else
        let rest', ret', changed = pass_block rest ret in
        (SLet (x, e) :: rest', ret', changed)
  | SWhile (c, body) :: rest ->
      let body', _, ch1 = pass_block body (Const Emma_value.Value.Unit) in
      let rest', ret', ch2 = pass_block rest ret in
      (SWhile (c, body') :: rest', ret', ch1 || ch2)
  | SIf (c, t, e) :: rest ->
      let t', _, ch1 = pass_block t (Const Emma_value.Value.Unit) in
      let e', _, ch2 = pass_block e (Const Emma_value.Value.Unit) in
      let rest', ret', ch3 = pass_block rest ret in
      (SIf (c, t', e') :: rest', ret', ch1 || ch2 || ch3)
  | s :: rest ->
      let rest', ret', changed = pass_block rest ret in
      (s :: rest', ret', changed)

let program { body; ret } =
  let rec fix body ret =
    let body', ret', changed = pass_block body ret in
    if changed then fix body' ret' else { body = body'; ret = ret' }
  in
  fix body ret
