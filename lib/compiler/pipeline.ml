module Trace = Emma_util.Trace
module Expr = Emma_lang.Expr
module Pretty = Emma_lang.Pretty
module Plan = Emma_dataflow.Plan
module Cprog = Emma_dataflow.Cprog

type opts = {
  inline : bool;
  fuse : bool;
  unnest : bool;
  cache : bool;
  partition : bool;
}

let default_opts = { inline = true; fuse = true; unnest = true; cache = true; partition = true }
let no_opts = { inline = true; fuse = false; unnest = false; cache = false; partition = false }

let with_ ?(inline = true) ?(fuse = true) ?(unnest = true) ?(cache = true) ?(partition = true)
    () =
  { inline; fuse; unnest; cache; partition }

type report = {
  fusion : Fusion.stats;
  translation : Translate.stats;
  cached_vars : string list;
  partitioned_vars : string list;
}

let applied_group_fusion r = r.fusion.Fusion.fused_groups > 0
let applied_unnesting r = r.translation.Translate.semi_joins > 0
let applied_caching r = r.cached_vars <> []
let applied_partition_pulling r = r.partitioned_vars <> []

(* ------------------------------------------------------------------ *)
(* Phase observation                                                    *)
(* ------------------------------------------------------------------ *)

type phase_obs = {
  ph_name : string;
  ph_enabled : bool;
  ph_before : int;
  ph_after : int;
  ph_changed : bool;
  ph_detail : (string * string) list;
  ph_artifact : string option;
}

let program_size (p : Expr.program) =
  let n = ref 0 in
  Expr.iter_program_exprs (fun e -> n := !n + Expr.size e) p;
  !n

let cprog_size (c : Cprog.t) =
  let n = ref 0 in
  ignore
    (Cprog.map_rhs
       (fun r ->
         n :=
           !n + Expr.size r.Cprog.expr
           + List.fold_left (fun acc (_, pl) -> acc + Plan.node_count pl) 0 r.Cprog.thunks;
         r)
       c);
  !n

(* Run one artifact-preserving phase: emit a compile span recording
   before/after node counts and, when observed, a phase snapshot with the
   pretty-printed artifact (only rendered when an observer is present — a
   plain [compile] never pays for pretty-printing). *)
let run_phase ~trace ~observe ~name ~enabled ~size ~render ?(detail = fun () -> []) x f =
  if not enabled then begin
    (match observe with
    | None -> ()
    | Some obs ->
        let n = size x in
        obs
          { ph_name = name; ph_enabled = false; ph_before = n; ph_after = n;
            ph_changed = false; ph_detail = []; ph_artifact = None });
    x
  end
  else begin
    let before = size x in
    let y =
      Trace.span_f trace ~cat:"compile"
        ~args:[ ("nodes_before", Trace.A_int before) ]
        ~end_args:(fun y -> [ ("nodes_after", Trace.A_int (size y)) ])
        name
        (fun () -> f x)
    in
    (match observe with
    | None -> ()
    | Some obs ->
        let after = size y in
        let before_s = render x and after_s = render y in
        let changed = not (String.equal before_s after_s) in
        obs
          { ph_name = name; ph_enabled = true; ph_before = before; ph_after = after;
            ph_changed = changed; ph_detail = detail ();
            ph_artifact = (if changed then Some after_s else None) });
    y
  end

(* ------------------------------------------------------------------ *)
(* The pipeline                                                         *)
(* ------------------------------------------------------------------ *)

let front_end ~trace ~observe opts fusion_stats p =
  let pphase = run_phase ~trace ~observe ~size:program_size ~render:Pretty.program_to_string in
  let p = pphase ~name:"inline" ~enabled:opts.inline p Sinline.program in
  let p = pphase ~name:"normalize" ~enabled:true p Emma_comp.Normalize.program in
  let p =
    pphase ~name:"fusion" ~enabled:opts.fuse
      ~detail:(fun () ->
        [ ("fused groups", string_of_int fusion_stats.Fusion.fused_groups);
          ("fused folds", string_of_int fusion_stats.Fusion.fused_folds) ])
      p
      (Fusion.program ~stats:fusion_stats)
  in
  p

let normalized ?(opts = default_opts) p =
  front_end ~trace:Trace.disabled ~observe:None opts (Fusion.fresh_stats ()) p

(* ------------------------------------------------------------------ *)
(* Plan-cache seam                                                      *)
(* ------------------------------------------------------------------ *)

type cache_key = { ck_crc : int; ck_text : string }

type cache = {
  cache_probe : cache_key -> (Cprog.t * report) option;
  cache_store : cache_key -> Cprog.t * report -> unit;
}

(* Every opts field participates in the key: an ablation toggle changes
   which plan the pipeline produces, so it must miss. *)
let opts_fingerprint o =
  Printf.sprintf "opts:i%c f%c u%c c%c p%c"
    (if o.inline then '1' else '0')
    (if o.fuse then '1' else '0')
    (if o.unnest then '1' else '0')
    (if o.cache then '1' else '0')
    (if o.partition then '1' else '0')

let normalized_key ?(opts = default_opts) ?(schema = "") p =
  (* Render the front-end-normalized program under a reset fresh-name
     counter: normalization invents variable names from a global counter,
     so without the reset the same source program would render differently
     on every call. With it, textual identity of (normalized program,
     opts, schema) is a stable equality — the CRC32 only indexes; the
     carried text makes collisions harmless. *)
  let text =
    Expr.with_fresh_reset (fun () ->
        Pretty.program_to_string
          (front_end ~trace:Trace.disabled ~observe:None opts
             (Fusion.fresh_stats ()) p))
  in
  let text =
    String.concat "\n" [ opts_fingerprint opts; "schema:" ^ schema; text ]
  in
  { ck_crc = Emma_util.Crc32.string text; ck_text = text }

let compile_cold ?(opts = default_opts) ?trace ?observe p =
  let trace = match trace with Some tr -> tr | None -> Trace.global () in
  let fusion_stats = Fusion.fresh_stats () in
  let translation = Translate.fresh_stats () in
  let p = front_end ~trace ~observe opts fusion_stats p in
  let before = program_size p in
  let c =
    Trace.span_f trace ~cat:"compile"
      ~args:[ ("nodes_before", Trace.A_int before) ]
      ~end_args:(fun c -> [ ("nodes_after", Trace.A_int (cprog_size c)) ])
      "translate"
      (fun () -> Translate.program ~unnest:opts.unnest ~stats:translation p)
  in
  (match observe with
  | None -> ()
  | Some obs ->
      obs
        { ph_name = "translate"; ph_enabled = true; ph_before = before;
          ph_after = cprog_size c; ph_changed = true;
          ph_detail =
            [ ("unnesting", if opts.unnest then "on" else "off");
              ("eq joins", string_of_int translation.Translate.eq_joins);
              ("semi joins", string_of_int translation.Translate.semi_joins);
              ("anti joins", string_of_int translation.Translate.anti_joins);
              ("crosses", string_of_int translation.Translate.crosses);
              ("filters", string_of_int translation.Translate.filters);
              ("broadcast filters", string_of_int translation.Translate.broadcast_filters) ];
          ph_artifact = Some (Cprog.to_string c) });
  let cphase = run_phase ~trace ~observe ~size:cprog_size ~render:Cprog.to_string in
  let cached = ref [] in
  let partitioned = ref [] in
  let c =
    cphase ~name:"caching" ~enabled:opts.cache
      ~detail:(fun () -> [ ("cached vars", String.concat ", " !cached) ])
      c
      (fun c ->
        let c, vs = Physical.insert_caching c in
        cached := vs;
        c)
  in
  let c =
    cphase ~name:"partition" ~enabled:opts.partition
      ~detail:(fun () -> [ ("partitioned vars", String.concat ", " !partitioned) ])
      c
      (fun c ->
        let c, vs = Physical.partition_pulling c in
        partitioned := vs;
        c)
  in
  let c = cphase ~name:"broadcasts" ~enabled:true c Physical.annotate_broadcasts in
  (* Analysis-only phase: reports the UDF sites the engine will stage
     through [Emma_lang.Compile] at run time (the plans are unchanged, so
     it renders as a no-op). *)
  let c =
    cphase ~name:"udf-compile" ~enabled:true
      ~detail:(fun () -> Physical.udf_compile_stats c)
      c
      (fun c -> c)
  in
  ( c,
    { fusion = fusion_stats;
      translation;
      cached_vars = !cached;
      partitioned_vars = !partitioned } )

let compile ?opts ?trace ?observe ?schema ?cache p =
  match cache with
  | None -> compile_cold ?opts ?trace ?observe p
  | Some cache -> (
      let key = normalized_key ?opts ?schema p in
      match cache.cache_probe key with
      | Some hit -> hit
      | None ->
          let r = compile_cold ?opts ?trace ?observe p in
          cache.cache_store key r;
          r)
