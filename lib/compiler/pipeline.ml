type opts = {
  inline : bool;
  fuse : bool;
  unnest : bool;
  cache : bool;
  partition : bool;
}

let default_opts = { inline = true; fuse = true; unnest = true; cache = true; partition = true }
let no_opts = { inline = true; fuse = false; unnest = false; cache = false; partition = false }

let with_ ?(inline = true) ?(fuse = true) ?(unnest = true) ?(cache = true) ?(partition = true)
    () =
  { inline; fuse; unnest; cache; partition }

type report = {
  fusion : Fusion.stats;
  translation : Translate.stats;
  cached_vars : string list;
  partitioned_vars : string list;
}

let applied_group_fusion r = r.fusion.Fusion.fused_groups > 0
let applied_unnesting r = r.translation.Translate.semi_joins > 0
let applied_caching r = r.cached_vars <> []
let applied_partition_pulling r = r.partitioned_vars <> []

let front_end opts fusion_stats p =
  let p = if opts.inline then Sinline.program p else p in
  let p = Emma_comp.Normalize.program p in
  let p = if opts.fuse then Fusion.program ~stats:fusion_stats p else p in
  p

let normalized ?(opts = default_opts) p = front_end opts (Fusion.fresh_stats ()) p

let compile ?(opts = default_opts) p =
  let fusion_stats = Fusion.fresh_stats () in
  let translation = Translate.fresh_stats () in
  let p = front_end opts fusion_stats p in
  let c = Translate.program ~unnest:opts.unnest ~stats:translation p in
  let c, cached_vars = if opts.cache then Physical.insert_caching c else (c, []) in
  let c, partitioned_vars =
    if opts.partition then Physical.partition_pulling c else (c, [])
  in
  let c = Physical.annotate_broadcasts c in
  (c, { fusion = fusion_stats; translation; cached_vars; partitioned_vars })
