(** Statement-level inlining (paper §4.1, "Inlining"): a [val] definition
    whose right-hand side is comprehended (bag- or fold-valued) and that is
    referenced exactly once in the {e following statements of the same
    block} is substituted into its use site, producing bigger
    comprehensions for the normalizer to work on.

    The pass refuses to inline when the definition:
    {ul
    {- is referenced more than once (caching, not inlining, is the right
       optimization there);}
    {- is referenced from inside a nested loop or branch (inlining would
       move the computation across a control-flow barrier and potentially
       into a loop);}
    {- is reassigned later ([var] semantics);}
    {- has stateful effects (updates must run exactly once).}} *)

val program : Emma_lang.Expr.program -> Emma_lang.Expr.program
