open Emma_lang.Expr
module P = Emma_dataflow.Plan
module Cprog = Emma_dataflow.Cprog
module Strset = Emma_util.Strset

type stats = {
  mutable semi_joins : int;
  mutable anti_joins : int;
  mutable eq_joins : int;
  mutable crosses : int;
  mutable filters : int;
  mutable broadcast_filters : int;
}

let fresh_stats () =
  { semi_joins = 0; anti_joins = 0; eq_joins = 0; crosses = 0; filters = 0;
    broadcast_filters = 0 }

(* Work items during comprehension translation: generators whose source
   does not depend on earlier generators carry a plan; dependent generators
   and guards stay as expressions. *)
type titem =
  | TGen of string * P.t
  | TDep of string * expr
  | TGuard of expr

let titem_var = function TGen (x, _) | TDep (x, _) -> Some x | TGuard _ -> None

let bound_vars items =
  List.fold_left
    (fun acc it -> match titem_var it with Some x -> Strset.add x acc | None -> acc)
    Strset.empty items

let is_exists_guard = function
  | Comp { alg = Alg_fold { f_tag = Tag_exists; _ }; _ } -> true
  | _ -> false

(* a negated exists: the anti-join form (forall guards are rewritten to
   this shape by the normalizer via ¬∃¬) *)
let is_anti_guard = function
  | Prim (Emma_lang.Prim.Not, [ g ]) -> is_exists_guard g
  | _ -> false

let udf x body = P.udf_of_expr (Lam (x, body))

let rec conjuncts = function
  | Prim (Emma_lang.Prim.And, [ a; b ]) -> conjuncts a @ conjuncts b
  | p -> [ p ]

let conj = function
  | [] -> Const (Emma_value.Value.Bool true)
  | p :: ps -> List.fold_left (fun acc q -> Prim (Emma_lang.Prim.And, [ acc; q ])) p ps

let tuple1 = function [ e ] -> e | es -> Tuple es

(* ------------------------------------------------------------------ *)

let rec to_plan ?(unnest = true) ?(stats = fresh_stats ()) e : P.t =
  let recur e = to_plan ~unnest ~stats e in
  match e with
  | Read (Src_table t) -> P.Read t
  | Var x -> P.Scan x
  | BagOf _ | Range _ | Const _ -> P.Local e
  | Union (a, b) -> P.Union (recur a, recur b)
  | Minus (a, b) -> P.Minus (recur a, recur b)
  | Distinct a -> P.Distinct (recur a)
  | GroupBy (k, xs) -> P.Group_by (P.udf_of_expr k, recur xs)
  | AggBy (k, fns, xs) -> P.Agg_by { key = P.udf_of_expr k; fold = fns; input = recur xs }
  | Fold (fns, xs) -> P.Fold (fns, recur xs)
  | Map (f, xs) -> P.Map (P.udf_of_expr f, recur xs)
  | FlatMap (f, xs) -> P.Flat_map (P.udf_of_expr f, recur xs)
  | Filter (p, xs) -> P.Filter (P.udf_of_expr p, recur xs)
  | Flatten inner ->
      let x = fresh "x" in
      P.Flat_map (udf x (Var x), recur inner)
  | Comp c -> translate_comp ~unnest ~stats c
  | Stateful_create { key; init } ->
      P.Stateful_create { key = P.udf_of_expr key; init = recur init }
  | Stateful_bag (Var s) -> P.Stateful_read s
  | Stateful_update { state = Var s; udf } ->
      P.Stateful_update { state = s; udf = P.udf_of_expr udf }
  | Stateful_update_msgs { state = Var s; msg_key; messages; udf } ->
      P.Stateful_update_msgs
        { state = s;
          msg_key = P.udf_of_expr msg_key;
          messages = recur messages;
          udf = P.udf2_of_expr udf }
  | Stateful_bag _ | Stateful_update _ | Stateful_update_msgs _ ->
      failwith "translate: stateful bags must be bound to driver variables"
  (* Anything else bag-valued is evaluated in the driver and parallelized
     on demand (e.g. an [If] choosing between two small local bags). *)
  | e -> P.Local e

(* ------------------------------------------------------------------ *)
(* The Fig. 3a state machine                                            *)
(* ------------------------------------------------------------------ *)

and translate_comp ~unnest ~stats { head; quals; alg } =
  let recur e = to_plan ~unnest ~stats e in
  (* Convert qualifiers, deciding generator independence left to right. *)
  let items =
    let rec convert bound = function
      | [] -> []
      | QGen (x, src) :: rest ->
          let it =
            if Strset.is_empty (Strset.inter (free_vars src) bound) then TGen (x, recur src)
            else TDep (x, src)
          in
          it :: convert (Strset.add x bound) rest
      | QGuard p :: rest -> TGuard p :: convert bound rest
    in
    convert Strset.empty quals
  in

  (* -- Pass A: push simple one-variable selections into their source -- *)
  let push_filters items =
    let bound = bound_vars items in
    let rec indep_gens = function
      | [] -> []
      | TGen (x, _) :: rest -> x :: indep_gens rest
      | _ :: rest -> indep_gens rest
    in
    let indep = indep_gens items in
    let try_push p items =
      let deps = Strset.elements (Strset.inter (free_vars p) bound) in
      match deps with
      | [ x ] when List.mem x indep ->
          let rec attach = function
            | [] -> None
            | TGen (y, pl) :: rest when String.equal y x ->
                stats.filters <- stats.filters + 1;
                Some (TGen (y, P.Filter (udf x p, pl)) :: rest)
            | it :: rest -> Option.map (fun r -> it :: r) (attach rest)
          in
          attach items
      | [] -> begin
          (* Driver-only predicate: filter the first independent generator. *)
          match items with
          | TGen (y, pl) :: rest ->
              stats.filters <- stats.filters + 1;
              Some (TGen (y, P.Filter (udf (fresh "_u") p, pl)) :: rest)
          | _ -> None
        end
      | _ -> None
    in
    let rec go acc = function
      | [] -> (List.rev acc, false)
      | TGuard p :: rest when not (is_exists_guard p || is_anti_guard p) -> begin
          match try_push p (List.rev_append acc rest) with
          | Some items' -> (items', true)
          | None -> go (TGuard p :: acc) rest
        end
      | it :: rest -> go (it :: acc) rest
    in
    let rec fix items =
      let items', changed = go [] items in
      if changed then fix items' else items'
    in
    fix items
  in
  let items = push_filters items in

  (* -- Pass B: exists guards become semi-joins, negated exists guards
     become anti-joins ---------------------------------------------------- *)
  let try_semi_join ~anti p items =
    match p with
    | Comp { head = pred; quals = iquals; alg = Alg_fold { f_tag = Tag_exists; _ } } -> begin
        let bound = bound_vars items in
        match iquals with
        | QGen (y, ysrc) :: irest
          when Strset.is_empty (Strset.inter (free_vars ysrc) bound)
               && List.for_all (function QGuard _ -> true | QGen _ -> false) irest -> begin
            let inner_guards =
              List.filter_map (function QGuard g -> Some g | QGen _ -> None) irest
            in
            let cs = List.concat_map conjuncts (pred :: inner_guards) in
            (* Classify conjuncts relative to the (unique) outer generator
               they touch. *)
            let outer_var_of c =
              Strset.elements (Strset.inter (free_vars c) bound)
            in
            let eqs = ref [] and y_only = ref [] and x_only = ref [] in
            let ok = ref true in
            let classify c =
              let fv = free_vars c in
              let outer = outer_var_of c in
              let refs_y = Strset.mem y fv in
              match (outer, refs_y, c) with
              | [], true, _ -> y_only := c :: !y_only
              | [], false, _ -> y_only := c :: !y_only (* driver-only: prefilter *)
              | [ x ], false, _ -> x_only := (x, c) :: !x_only
              | [ x ], true, Prim (Emma_lang.Prim.Eq, [ a; b ]) ->
                  let fa = free_vars a and fb = free_vars b in
                  if Strset.mem x fa && (not (Strset.mem y fa)) && Strset.mem y fb
                     && not (Strset.mem x fb)
                  then eqs := (x, a, b) :: !eqs
                  else if
                    Strset.mem y fa
                    && (not (Strset.mem x fa))
                    && Strset.mem x fb
                    && not (Strset.mem y fb)
                  then eqs := (x, b, a) :: !eqs
                  else ok := false
              | _ -> ok := false
            in
            List.iter classify cs;
            match !eqs with
            | [] -> None
            | (x0, _, _) :: _ when !ok && List.for_all (fun (x, _, _) -> String.equal x x0) !eqs
              -> begin
                (* All equality conjuncts link the same outer generator. *)
                let rec attach = function
                  | [] -> None
                  | TGen (x, pl) :: rest when String.equal x x0 ->
                      let lkeys = List.map (fun (_, a, _) -> a) !eqs in
                      let rkeys = List.map (fun (_, _, b) -> b) !eqs in
                      let right = recur ysrc in
                      let right =
                        match !y_only with
                        | [] -> right
                        | gs -> P.Filter (udf y (conj gs), right)
                      in
                      if anti then begin
                        (* ¬∃(y, A(x) ∧ eq ∧ B(y)) does not factor through
                           x-only conjuncts: bail out if any are present *)
                        if !x_only <> [] then None
                        else begin
                          stats.anti_joins <- stats.anti_joins + 1;
                          let joined =
                            P.Anti_join
                              { lkey = udf x (tuple1 lkeys);
                                rkey = udf y (tuple1 rkeys);
                                left = pl;
                                right }
                          in
                          Some (TGen (x, joined) :: rest)
                        end
                      end
                      else begin
                        let joined =
                          P.Semi_join
                            { lkey = udf x (tuple1 lkeys);
                              rkey = udf y (tuple1 rkeys);
                              left = pl;
                              right }
                        in
                        (* Residual x-only conjuncts stay as a filter above. *)
                        let with_x =
                          match List.filter (fun (x, _) -> String.equal x x0) !x_only with
                          | [] -> joined
                          | gs -> P.Filter (udf x (conj (List.map snd gs)), joined)
                        in
                        if List.exists (fun (x, _) -> not (String.equal x x0)) !x_only then None
                        else begin
                          stats.semi_joins <- stats.semi_joins + 1;
                          Some (TGen (x, with_x) :: rest)
                        end
                      end
                  | it :: rest -> Option.map (fun r -> it :: r) (attach rest)
                in
                attach items
              end
            | _ -> None
          end
        | _ -> None
      end
    | _ -> None
  in
  let quantifier_pass items =
    if not unnest then items
    else begin
      let rec go acc = function
        | [] -> List.rev acc
        | TGuard p :: rest when is_exists_guard p -> begin
            match try_semi_join ~anti:false p (List.rev_append acc rest) with
            | Some items' ->
                (* The guard was consumed; restart on the rewritten list. *)
                let consumed_removed =
                  (* items' is the full list minus nothing: we rebuilt from
                     acc+rest which already excludes this guard. *)
                  items'
                in
                go [] consumed_removed
            | None -> go (TGuard p :: acc) rest
          end
        | TGuard (Prim (Emma_lang.Prim.Not, [ g ])) :: rest when is_exists_guard g -> begin
            match try_semi_join ~anti:true g (List.rev_append acc rest) with
            | Some items' -> go [] items'
            | None -> go (TGuard (Prim (Emma_lang.Prim.Not, [ g ])) :: acc) rest
          end
        | it :: rest -> go (it :: acc) rest
      in
      go [] items
    end
  in
  let items = quantifier_pass items in

  (* -- Pass C: equality guards become equi-joins ---------------------- *)
  let subst_items x repl items =
    List.map
      (function
        | TGen (y, pl) -> TGen (y, pl)
        | TDep (y, src) -> TDep (y, subst x repl src)
        | TGuard p -> TGuard (subst x repl p))
      items
  in
  let find_eq_pair items =
    (* A guard Eq(a, b) where each side references exactly one bound
       variable and the two are distinct independent generators. *)
    let indep =
      List.filter_map (function TGen (x, _) -> Some x | _ -> None) items
    in
    let bound = bound_vars items in
    let rec go acc = function
      | [] -> None
      | TGuard (Prim (Emma_lang.Prim.Eq, [ a; b ])) :: rest -> begin
          let fa = Strset.inter (free_vars a) bound in
          let fb = Strset.inter (free_vars b) bound in
          match (Strset.elements fa, Strset.elements fb) with
          | [ x ], [ y ]
            when (not (String.equal x y)) && List.mem x indep && List.mem y indep ->
              Some (List.rev acc, x, a, y, b, rest)
          | _ -> go (TGuard (Prim (Emma_lang.Prim.Eq, [ a; b ])) :: acc) rest
        end
      | it :: rest -> go (it :: acc) rest
    in
    go [] items
  in
  (* Substitutions for the head and algebra are accumulated here because
     the head is rewritten only once, at the end. *)
  let joined_heads : (string * string * string) list ref = ref [] in
  let rec join_pass items =
    match find_eq_pair items with
    | None -> items
    | Some (before, x, ka, y, kb, after) ->
        (* Gather every other eq guard linking the same pair. *)
        let extra_eqs = ref [] in
        let residue =
          List.filter
            (function
              | TGuard (Prim (Emma_lang.Prim.Eq, [ a; b ])) -> begin
                  let fva = free_vars a and fvb = free_vars b in
                  let only v e = Strset.mem v e && Strset.cardinal (Strset.inter e (bound_vars items)) = 1 in
                  if only x fva && only y fvb then begin
                    extra_eqs := (a, b) :: !extra_eqs;
                    false
                  end
                  else if only y fva && only x fvb then begin
                    extra_eqs := (b, a) :: !extra_eqs;
                    false
                  end
                  else true
                end
              | _ -> true)
            (before @ after)
        in
        let plan_of v =
          List.find_map
            (function TGen (w, pl) when String.equal w v -> Some pl | _ -> None)
            items
        in
        (match (plan_of x, plan_of y) with
        | Some plx, Some ply ->
            let all_eqs = (ka, kb) :: List.rev !extra_eqs in
            let lkeys = List.map fst all_eqs and rkeys = List.map snd all_eqs in
            let v = fresh "v" in
            let joined =
              P.Eq_join
                { lkey = udf x (tuple1 lkeys);
                  rkey = udf y (tuple1 rkeys);
                  left = plx;
                  right = ply }
            in
            stats.eq_joins <- stats.eq_joins + 1;
            (* Replace the two generators: the joined generator takes the
               earlier position; occurrences rewrite to projections. *)
            let placed = ref false in
            let items' =
              List.filter_map
                (fun it ->
                  match it with
                  | TGen (w, _) when String.equal w x || String.equal w y ->
                      if !placed then None
                      else begin
                        placed := true;
                        Some (TGen (v, joined))
                      end
                  | it -> Some it)
                residue
            in
            let items' = subst_items x (Proj (Var v, 0)) items' in
            let items' = subst_items y (Proj (Var v, 1)) items' in
            joined_heads := (v, x, y) :: !joined_heads;
            join_pass items'
        | _ -> items)
  in
  let items = join_pass items in
  (* a quantifier whose equality conjuncts straddled two generators can be
     extracted now that the join merged them into one *)
  let items = quantifier_pass items in

  (* Count quantifier guards that survive to the residual UDF. *)
  List.iter
    (function
      | TGuard p when is_exists_guard p || is_anti_guard p ->
          stats.broadcast_filters <- stats.broadcast_filters + 1
      | _ -> ())
    items;

  (* -- Pass D: remaining independent pairs become cross products ------- *)
  let rec cross_pass items =
    let gens = List.filter_map (function TGen (x, p) -> Some (x, p) | _ -> None) items in
    match gens with
    | (x, plx) :: (y, ply) :: _ ->
        let v = fresh "v" in
        stats.crosses <- stats.crosses + 1;
        let placed = ref false in
        let items' =
          List.filter_map
            (fun it ->
              match it with
              | TGen (w, _) when String.equal w x || String.equal w y ->
                  if !placed then None
                  else begin
                    placed := true;
                    Some (TGen (v, P.Cross (plx, ply)))
                  end
              | it -> Some it)
            items
        in
        let items' = subst_items x (Proj (Var v, 0)) items' in
        let items' = subst_items y (Proj (Var v, 1)) items' in
        joined_heads := (v, x, y) :: !joined_heads;
        cross_pass items'
    | _ -> items
  in
  let items = cross_pass items in

  (* Apply the accumulated pair substitutions to head and algebra. *)
  let apply_pair_substs e =
    List.fold_left
      (fun e (v, x, y) -> subst y (Proj (Var v, 1)) (subst x (Proj (Var v, 0)) e))
      e (List.rev !joined_heads)
  in
  let head = apply_pair_substs head in
  let alg =
    match alg with
    | Alg_bag -> Alg_bag
    | Alg_fold fns ->
        Alg_fold
          { fns with
            f_empty = apply_pair_substs fns.f_empty;
            f_single = apply_pair_substs fns.f_single;
            f_union = apply_pair_substs fns.f_union }
  in

  (* -- Residual: one generator plus dependent tail --------------------- *)
  let finish_bag items =
    match items with
    | [] -> P.Local (BagOf [ head ])
    | TGen (x, pl) :: rest ->
        if rest = [] then
          match head with
          | Var x' when String.equal x x' -> pl
          | _ -> P.Map (udf x (beta_reduce head), pl)
        else
          let rest_quals =
            List.map
              (function
                | TDep (y, src) -> QGen (y, src)
                | TGuard p -> QGuard p
                | TGen (y, _) ->
                    (* Unreachable: cross_pass merged all independent
                       generators into one. *)
                    QGen (y, Var y))
              rest
          in
          let body = Comp { head; quals = rest_quals; alg = Alg_bag } in
          P.Flat_map (udf x (beta_reduce body), pl)
    | (TDep _ | TGuard _) :: _ ->
        (* No independent generator at the front: evaluate locally. *)
        P.Local (Comp { head; quals = List.map
                          (function
                            | TDep (y, src) -> QGen (y, src)
                            | TGuard p -> QGuard p
                            | TGen (y, _) -> QGen (y, Var y))
                          items;
                        alg = Alg_bag })
  in
  match alg with
  | Alg_bag -> finish_bag items
  | Alg_fold fns -> P.Fold (fns, finish_bag items)

(* ------------------------------------------------------------------ *)
(* Program translation: split statements into driver expr + thunks      *)
(* ------------------------------------------------------------------ *)

let translatable e =
  is_bag_op e
  ||
  match e with
  | Fold _ | Comp { alg = Alg_fold _; _ } | Stateful_create _ -> true
  | _ -> false

let split_rhs ~unnest ~stats e : Cprog.rhs =
  let thunks = ref [] in
  let rec go e =
    if translatable e then begin
      let p = to_plan ~unnest ~stats e in
      let n = fresh "$t" in
      thunks := (n, p) :: !thunks;
      Var n
    end
    else map_children go e
  in
  let expr = go e in
  { Cprog.expr; thunks = List.rev !thunks }

let program ?(unnest = true) ?(stats = fresh_stats ()) ({ body; ret } : program) : Cprog.t =
  let rec go_stmt s =
    match s with
    | SLet (x, e) -> Cprog.CLet (x, split_rhs ~unnest ~stats e)
    | SVar (x, e) -> Cprog.CVar (x, split_rhs ~unnest ~stats e)
    | SAssign (x, e) -> Cprog.CAssign (x, split_rhs ~unnest ~stats e)
    | SWhile (c, b) -> Cprog.CWhile (split_rhs ~unnest ~stats c, List.map go_stmt b)
    | SIf (c, t, e) ->
        Cprog.CIf (split_rhs ~unnest ~stats c, List.map go_stmt t, List.map go_stmt e)
    | SWrite (Snk_table t, e) -> Cprog.CWrite (t, split_rhs ~unnest ~stats e)
  in
  { Cprog.cbody = List.map go_stmt body; cret = split_rhs ~unnest ~stats ret }
