(* Bounded LRU of compiled plans, keyed by Pipeline.cache_key. The
   capacity is small (default 64 via Config), so a scanned list keeps the
   implementation obviously correct: probe compares the CRC first and
   confirms on the full key text, store evicts strictly-least-recently
   used entries. A monotone tick orders uses, so eviction is a pure
   function of the operation sequence — no clocks, no hashing order —
   which is what makes serve's sim-mode counters replayable. All
   operations take the internal mutex: real concurrent mode probes from
   multiple tenant domains. *)

type entry = {
  e_key : Pipeline.cache_key;
  e_plan : Emma_dataflow.Cprog.t;
  e_report : Pipeline.report;
  mutable e_last_use : int;
}

type t = {
  capacity : int;
  mutable entries : entry list;  (* unordered; at most [capacity] long *)
  mutable tick : int;
  mutable hits : int;
  mutable misses : int;
  mutable evictions : int;
  lock : Mutex.t;
}

type stats = { hits : int; misses : int; evictions : int; entries : int }

let create ~capacity =
  if capacity < 1 then
    invalid_arg "Plan_cache.create: capacity must be >= 1";
  {
    capacity;
    entries = [];
    tick = 0;
    hits = 0;
    misses = 0;
    evictions = 0;
    lock = Mutex.create ();
  }

let capacity t = t.capacity

let with_lock t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

let stats t =
  with_lock t (fun () ->
      {
        hits = t.hits;
        misses = t.misses;
        evictions = t.evictions;
        entries = List.length t.entries;
      })

let key_equal (a : Pipeline.cache_key) (b : Pipeline.cache_key) =
  a.Pipeline.ck_crc = b.Pipeline.ck_crc
  && String.equal a.Pipeline.ck_text b.Pipeline.ck_text

(* Uncounted membership test: no hit/miss bump, no recency refresh. The
   serve layer's plan-cache-only degradation rung peeks at the cache to
   decide whether a query would compile cold, and that peek must not
   perturb the counted probe/store sequence the LRU replays from. *)
let mem t key =
  with_lock t (fun () ->
      List.exists (fun e -> key_equal e.e_key key) t.entries)

let probe t key =
  with_lock t (fun () ->
      match List.find_opt (fun e -> key_equal e.e_key key) t.entries with
      | Some e ->
          t.tick <- t.tick + 1;
          e.e_last_use <- t.tick;
          t.hits <- t.hits + 1;
          Some (e.e_plan, e.e_report)
      | None ->
          t.misses <- t.misses + 1;
          None)

(* Insert (or refresh) an entry, evicting least-recently-used ones past
   capacity; returns how many entries were evicted by this store. Ticks
   are unique, so the LRU choice never needs a tie-break. *)
let store t key (plan, report) =
  with_lock t (fun () ->
      t.tick <- t.tick + 1;
      (match List.find_opt (fun e -> key_equal e.e_key key) t.entries with
      | Some e -> e.e_last_use <- t.tick
      | None ->
          t.entries <-
            { e_key = key; e_plan = plan; e_report = report; e_last_use = t.tick }
            :: t.entries);
      let evicted = ref 0 in
      while List.length t.entries > t.capacity do
        let victim =
          List.fold_left
            (fun acc e ->
              match acc with
              | None -> Some e
              | Some best ->
                  if e.e_last_use < best.e_last_use then Some e else acc)
            None t.entries
        in
        match victim with
        | None -> assert false
        | Some v ->
            t.entries <- List.filter (fun e -> e != v) t.entries;
            incr evicted
      done;
      t.evictions <- t.evictions + !evicted;
      !evicted)

(* Stats-neutral recency refresh: consumes exactly one tick when the
   key is present (matching a counted hit's probe), bumps no counters.
   Recovery replays journaled cache hits through this so the LRU order
   after replay is identical to the uninterrupted run's. *)
let touch t key =
  with_lock t (fun () ->
      match List.find_opt (fun e -> key_equal e.e_key key) t.entries with
      | Some e ->
          t.tick <- t.tick + 1;
          e.e_last_use <- t.tick
      | None -> ())

(* Stats-neutral insert-or-refresh: same tick and eviction behavior as
   [store] (so replayed misses reproduce the uninterrupted run's LRU
   evolution exactly) but bumps neither [misses] nor [evictions] — the
   journaled pre-crash counts are added back as a base by the serve
   layer. *)
let prime t key (plan, report) =
  with_lock t (fun () ->
      t.tick <- t.tick + 1;
      (match List.find_opt (fun e -> key_equal e.e_key key) t.entries with
      | Some e -> e.e_last_use <- t.tick
      | None ->
          t.entries <-
            { e_key = key; e_plan = plan; e_report = report; e_last_use = t.tick }
            :: t.entries);
      while List.length t.entries > t.capacity do
        let victim =
          List.fold_left
            (fun acc e ->
              match acc with
              | None -> Some e
              | Some best ->
                  if e.e_last_use < best.e_last_use then Some e else acc)
            None t.entries
        in
        match victim with
        | None -> assert false
        | Some v -> t.entries <- List.filter (fun e -> e != v) t.entries
      done)

(* Oldest-first recency order, for serve snapshots: replaying [prime] on
   this sequence rebuilds both the population and the LRU order. *)
let entries_by_recency t =
  with_lock t (fun () ->
      t.entries
      |> List.sort (fun a b -> compare a.e_last_use b.e_last_use)
      |> List.map (fun e -> e.e_key))

let as_cache t =
  {
    Pipeline.cache_probe = (fun key -> probe t key);
    Pipeline.cache_store = (fun key r -> ignore (store t key r));
  }
