module Expr = Emma_lang.Expr
module Strset = Emma_util.Strset

type udf = { param : string; body : Expr.expr; broadcast : string list }
type udf2 = { param1 : string; param2 : string; body2 : Expr.expr; broadcast2 : string list }

type t =
  | Read of string
  | Scan of string
  | Local of Expr.expr
  | Map of udf * t
  | Flat_map of udf * t
  | Filter of udf * t
  | Eq_join of { lkey : udf; rkey : udf; left : t; right : t }
  | Semi_join of { lkey : udf; rkey : udf; left : t; right : t }
  | Anti_join of { lkey : udf; rkey : udf; left : t; right : t }
  | Cross of t * t
  | Group_by of udf * t
  | Agg_by of { key : udf; fold : Expr.fold_fns; input : t }
  | Fold of Expr.fold_fns * t
  | Union of t * t
  | Minus of t * t
  | Distinct of t
  | Cache of t
  | Partition_by of udf * t
  | Stateful_create of { key : udf; init : t }
  | Stateful_read of string
  | Stateful_update of { state : string; udf : udf }
  | Stateful_update_msgs of { state : string; msg_key : udf; messages : t; udf : udf2 }

type result_kind = Rbag | Rscalar | Rstateful

let rec result_kind = function
  | Fold _ -> Rscalar
  | Stateful_create _ -> Rstateful
  | Cache p | Partition_by (_, p) -> result_kind p
  | Read _ | Scan _ | Local _ | Map _ | Flat_map _ | Filter _ | Eq_join _ | Semi_join _
  | Anti_join _ | Cross _ | Group_by _ | Agg_by _ | Union _ | Minus _ | Distinct _
  | Stateful_read _ | Stateful_update _ | Stateful_update_msgs _ ->
      Rbag

let udf_of_expr e =
  match e with
  | Expr.Lam (x, body) -> { param = x; body; broadcast = [] }
  | e ->
      let x = Expr.fresh "x" in
      { param = x; body = Expr.App (e, Expr.Var x); broadcast = [] }

let udf_body_lam u = Expr.Lam (u.param, u.body)

let udf2_of_expr e =
  match e with
  | Expr.Lam (x, Expr.Lam (y, body)) -> { param1 = x; param2 = y; body2 = body; broadcast2 = [] }
  | e ->
      let x = Expr.fresh "x" and y = Expr.fresh "y" in
      { param1 = x; param2 = y; body2 = Expr.App (Expr.App (e, Expr.Var x), Expr.Var y); broadcast2 = [] }

let udf_alpha_equal a b =
  let canon u = Expr.subst u.param (Expr.Var "$p") u.body in
  Expr.equal (canon a) (canon b)

let children = function
  | Read _ | Scan _ | Local _ | Stateful_read _ | Stateful_update _ -> []
  | Map (_, p) | Flat_map (_, p) | Filter (_, p) | Group_by (_, p) | Fold (_, p)
  | Distinct p | Cache p | Partition_by (_, p) ->
      [ p ]
  | Agg_by { input; _ } -> [ input ]
  | Stateful_create { init; _ } -> [ init ]
  | Stateful_update_msgs { messages; _ } -> [ messages ]
  | Eq_join { left; right; _ } | Semi_join { left; right; _ } | Anti_join { left; right; _ }
  | Cross (left, right) | Union (left, right) | Minus (left, right) ->
      [ left; right ]

let map_children f = function
  | (Read _ | Scan _ | Local _ | Stateful_read _ | Stateful_update _) as p -> p
  | Map (u, p) -> Map (u, f p)
  | Flat_map (u, p) -> Flat_map (u, f p)
  | Filter (u, p) -> Filter (u, f p)
  | Group_by (u, p) -> Group_by (u, f p)
  | Fold (fns, p) -> Fold (fns, f p)
  | Distinct p -> Distinct (f p)
  | Cache p -> Cache (f p)
  | Partition_by (u, p) -> Partition_by (u, f p)
  | Agg_by { key; fold; input } -> Agg_by { key; fold; input = f input }
  | Stateful_create { key; init } -> Stateful_create { key; init = f init }
  | Stateful_update_msgs { state; msg_key; messages; udf } ->
      Stateful_update_msgs { state; msg_key; messages = f messages; udf }
  | Eq_join { lkey; rkey; left; right } -> Eq_join { lkey; rkey; left = f left; right = f right }
  | Semi_join { lkey; rkey; left; right } ->
      Semi_join { lkey; rkey; left = f left; right = f right }
  | Anti_join { lkey; rkey; left; right } ->
      Anti_join { lkey; rkey; left = f left; right = f right }
  | Cross (a, b) -> Cross (f a, f b)
  | Union (a, b) -> Union (f a, f b)
  | Minus (a, b) -> Minus (f a, f b)

let rec fold_plan f acc p = List.fold_left (fold_plan f) (f acc p) (children p)

let scanned_vars p =
  fold_plan
    (fun acc -> function
      | Scan x | Stateful_read x | Stateful_update { state = x; _ }
      | Stateful_update_msgs { state = x; _ } ->
          x :: acc
      | _ -> acc)
    [] p

let node_count p = fold_plan (fun n _ -> n + 1) 0 p

(* ------------------------------------------------------------------ *)
(* Broadcast annotation                                                  *)
(* ------------------------------------------------------------------ *)

let captured ~bound params body =
  let fv = Expr.free_vars body in
  let fv = List.fold_left (fun s p -> Strset.remove p s) fv params in
  Strset.elements (Strset.diff fv bound)

let fold_fns_captured ~bound (fns : Expr.fold_fns) =
  List.sort_uniq String.compare
    (List.concat_map (captured ~bound []) [ fns.f_empty; fns.f_single; fns.f_union ])

let annotate_udf ~bound u = { u with broadcast = captured ~bound [ u.param ] u.body }

let annotate_udf2 ~bound u =
  { u with broadcast2 = captured ~bound [ u.param1; u.param2 ] u.body2 }

let rec annotate_broadcasts ~bound p =
  let p = map_children (annotate_broadcasts ~bound) p in
  match p with
  | Map (u, q) -> Map (annotate_udf ~bound u, q)
  | Flat_map (u, q) -> Flat_map (annotate_udf ~bound u, q)
  | Filter (u, q) -> Filter (annotate_udf ~bound u, q)
  | Group_by (u, q) -> Group_by (annotate_udf ~bound u, q)
  | Partition_by (u, q) -> Partition_by (annotate_udf ~bound u, q)
  | Eq_join { lkey; rkey; left; right } ->
      Eq_join { lkey = annotate_udf ~bound lkey; rkey = annotate_udf ~bound rkey; left; right }
  | Semi_join { lkey; rkey; left; right } ->
      Semi_join { lkey = annotate_udf ~bound lkey; rkey = annotate_udf ~bound rkey; left; right }
  | Anti_join { lkey; rkey; left; right } ->
      Anti_join { lkey = annotate_udf ~bound lkey; rkey = annotate_udf ~bound rkey; left; right }
  | Agg_by { key; fold; input } -> Agg_by { key = annotate_udf ~bound key; fold; input }
  | Stateful_create { key; init } -> Stateful_create { key = annotate_udf ~bound key; init }
  | Stateful_update { state; udf } -> Stateful_update { state; udf = annotate_udf ~bound udf }
  | Stateful_update_msgs { state; msg_key; messages; udf } ->
      Stateful_update_msgs
        { state;
          msg_key = annotate_udf ~bound msg_key;
          messages;
          udf = annotate_udf2 ~bound udf }
  | (Read _ | Scan _ | Local _ | Fold _ | Cross _ | Union _ | Minus _ | Distinct _ | Cache _
    | Stateful_read _) as p ->
      p

let broadcast_vars p =
  fold_plan
    (fun acc -> function
      | Map (u, _) | Flat_map (u, _) | Filter (u, _) | Group_by (u, _) | Partition_by (u, _)
      | Stateful_update { udf = u; _ } ->
          u.broadcast @ acc
      | Eq_join { lkey; rkey; _ } | Semi_join { lkey; rkey; _ } | Anti_join { lkey; rkey; _ } ->
          lkey.broadcast @ rkey.broadcast @ acc
      | Agg_by { key; _ } -> key.broadcast @ acc
      | Stateful_create { key; _ } -> key.broadcast @ acc
      | Stateful_update_msgs { msg_key; udf; _ } ->
          msg_key.broadcast @ udf.broadcast2 @ acc
      | _ -> acc)
    [] p

(* ------------------------------------------------------------------ *)
(* Printing                                                              *)
(* ------------------------------------------------------------------ *)

let pp_udf ppf u =
  let pp_bc ppf = function
    | [] -> ()
    | bs -> Fmt.pf ppf " ⟨bc: %a⟩" (Fmt.list ~sep:(Fmt.any ", ") Fmt.string) bs
  in
  Fmt.pf ppf "%s => %a%a" u.param Emma_lang.Pretty.pp_expr u.body pp_bc u.broadcast

let rec pp ppf p =
  let kids = children p in
  let label =
    match p with
    | Read t -> Fmt.str "read %S" t
    | Scan x -> Fmt.str "scan %s" x
    | Local e -> Fmt.str "local %s" (Emma_lang.Pretty.expr_to_string e)
    | Map (u, _) -> Fmt.str "map (%a)" pp_udf u
    | Flat_map (u, _) -> Fmt.str "flatMap (%a)" pp_udf u
    | Filter (u, _) -> Fmt.str "filter (%a)" pp_udf u
    | Eq_join { lkey; rkey; _ } -> Fmt.str "join [%a = %a]" pp_udf lkey pp_udf rkey
    | Semi_join { lkey; rkey; _ } -> Fmt.str "semijoin [%a = %a]" pp_udf lkey pp_udf rkey
    | Anti_join { lkey; rkey; _ } -> Fmt.str "antijoin [%a = %a]" pp_udf lkey pp_udf rkey
    | Cross _ -> "cross"
    | Group_by (u, _) -> Fmt.str "groupBy (%a)" pp_udf u
    | Agg_by { key; _ } -> Fmt.str "aggBy (%a)" pp_udf key
    | Fold (fns, _) -> Fmt.str "fold [%s]" (Emma_lang.Pretty.fold_tag_name fns.f_tag)
    | Union _ -> "union"
    | Minus _ -> "minus"
    | Distinct _ -> "distinct"
    | Cache _ -> "cache"
    | Partition_by (u, _) -> Fmt.str "partitionBy (%a)" pp_udf u
    | Stateful_create _ -> "statefulCreate"
    | Stateful_read x -> Fmt.str "statefulRead %s" x
    | Stateful_update { state; _ } -> Fmt.str "statefulUpdate %s" state
    | Stateful_update_msgs { state; _ } -> Fmt.str "statefulUpdateMsgs %s" state
  in
  match kids with
  | [] -> Fmt.pf ppf "%s" label
  | kids -> Fmt.pf ppf "@[<v 2>%s@ %a@]" label (Fmt.list ~sep:Fmt.cut pp) kids

let to_string p = Fmt.str "%a" pp p

(* GraphViz export: shuffling operators as boxes, pipelined ones as
   ellipses, physical operators dashed. *)
let to_dot ?(name = "plan") p =
  let buf = Buffer.create 512 in
  Buffer.add_string buf (Printf.sprintf "digraph %S {\n  rankdir=BT;\n" name);
  let counter = ref 0 in
  let escape s = String.concat "\\\"" (String.split_on_char '"' s) in
  let rec emit p =
    incr counter;
    let id = Printf.sprintf "n%d" !counter in
    let label, shape, style =
      match p with
      | Read t -> (Printf.sprintf "read %s" t, "cylinder", "solid")
      | Scan x -> (Printf.sprintf "scan %s" x, "cylinder", "solid")
      | Local _ -> ("local", "cylinder", "solid")
      | Map (u, _) -> (Printf.sprintf "map λ%s" u.param, "ellipse", "solid")
      | Flat_map (u, _) -> (Printf.sprintf "flatMap λ%s" u.param, "ellipse", "solid")
      | Filter (u, _) -> (Printf.sprintf "filter λ%s" u.param, "ellipse", "solid")
      | Eq_join _ -> ("⋈ join", "box", "solid")
      | Semi_join _ -> ("⋉ semijoin", "box", "solid")
      | Anti_join _ -> ("▷ antijoin", "box", "solid")
      | Cross _ -> ("× cross", "box", "solid")
      | Group_by _ -> ("groupBy", "box", "solid")
      | Agg_by _ -> ("aggBy", "box", "solid")
      | Fold (fns, _) -> (Printf.sprintf "fold %s" (Emma_lang.Pretty.fold_tag_name fns.f_tag), "invtriangle", "solid")
      | Union _ -> ("∪ union", "ellipse", "solid")
      | Minus _ -> ("∖ minus", "box", "solid")
      | Distinct _ -> ("distinct", "box", "solid")
      | Cache _ -> ("cache", "note", "dashed")
      | Partition_by _ -> ("partitionBy", "note", "dashed")
      | Stateful_create _ -> ("statefulCreate", "box3d", "solid")
      | Stateful_read x -> (Printf.sprintf "state %s" x, "box3d", "solid")
      | Stateful_update { state; _ } -> (Printf.sprintf "update %s" state, "box3d", "solid")
      | Stateful_update_msgs { state; _ } -> (Printf.sprintf "updateMsgs %s" state, "box3d", "solid")
    in
    Buffer.add_string buf
      (Printf.sprintf "  %s [label=\"%s\", shape=%s, style=%s];\n" id (escape label) shape style);
    List.iter
      (fun child ->
        let cid = emit child in
        Buffer.add_string buf (Printf.sprintf "  %s -> %s;\n" cid id))
      (children p);
    id
  in
  ignore (emit p);
  Buffer.add_string buf "}\n";
  Buffer.contents buf
