(** Compiled driver programs: the output of the full [parallelize] pipeline.

    Each statement's right-hand side is a driver-level expression in which
    every maximal DataBag expression has been replaced by a reference to a
    {e thunk} wrapping an abstract dataflow (paper §4.3.2): the expression
    mentions the thunk by name ([Var "$t0"], …) and the side table maps
    names to plans. The driver interpreter in the engine forces a thunk when
    its name is evaluated — scalar (fold) results are collected to the
    driver, bag results stay distributed. *)

module Expr = Emma_lang.Expr

type rhs = { expr : Expr.expr; thunks : (string * Plan.t) list }
(** Invariant: every thunk name occurs in [expr] (usually [expr] is just
    [Var name]); thunk names start with ['$'] so they cannot collide with
    program variables. *)

type stmt =
  | CLet of string * rhs
  | CVar of string * rhs
  | CAssign of string * rhs
  | CWhile of rhs * stmt list
  | CIf of rhs * stmt list * stmt list
  | CWrite of string * rhs

type t = { cbody : stmt list; cret : rhs }

val rhs_of_expr : Expr.expr -> rhs
(** A pure driver expression with no dataflows. *)

val rhs_of_plan : Plan.t -> rhs
(** An RHS that is exactly one dataflow. *)

val plan_of_rhs : rhs -> Plan.t option
(** The single plan when the RHS is exactly one thunk reference. *)

val map_rhs : (rhs -> rhs) -> t -> t
(** Applies a transformation to every statement RHS (including loop and
    branch conditions), preserving program structure. *)

val iter_plans : (Plan.t -> unit) -> t -> unit

val iter_stmts_with_depth : (int -> stmt -> unit) -> t -> unit
(** Visits every statement with its loop-nesting depth (0 = top level;
    entering a [CWhile] body increments the depth — [CIf] branches do
    not). *)

val pp : Format.formatter -> t -> unit
val to_string : t -> string
