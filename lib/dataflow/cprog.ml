module Expr = Emma_lang.Expr

type rhs = { expr : Expr.expr; thunks : (string * Plan.t) list }

type stmt =
  | CLet of string * rhs
  | CVar of string * rhs
  | CAssign of string * rhs
  | CWhile of rhs * stmt list
  | CIf of rhs * stmt list * stmt list
  | CWrite of string * rhs

type t = { cbody : stmt list; cret : rhs }

let rhs_of_expr e = { expr = e; thunks = [] }

let rhs_of_plan p =
  let name = Expr.fresh "$t" in
  { expr = Expr.Var name; thunks = [ (name, p) ] }

let plan_of_rhs r =
  match (r.expr, r.thunks) with
  | Expr.Var n, [ (n', p) ] when String.equal n n' -> Some p
  | _ -> None

let map_rhs f { cbody; cret } =
  let rec go_stmt = function
    | CLet (x, r) -> CLet (x, f r)
    | CVar (x, r) -> CVar (x, f r)
    | CAssign (x, r) -> CAssign (x, f r)
    | CWhile (c, body) -> CWhile (f c, List.map go_stmt body)
    | CIf (c, t, e) -> CIf (f c, List.map go_stmt t, List.map go_stmt e)
    | CWrite (snk, r) -> CWrite (snk, f r)
  in
  { cbody = List.map go_stmt cbody; cret = f cret }

let iter_plans visit prog =
  ignore
    (map_rhs
       (fun r ->
         List.iter (fun (_, p) -> visit p) r.thunks;
         r)
       prog)

let iter_stmts_with_depth visit { cbody; cret = _ } =
  let rec go depth s =
    visit depth s;
    match s with
    | CWhile (_, body) -> List.iter (go (depth + 1)) body
    | CIf (_, t, e) ->
        List.iter (go depth) t;
        List.iter (go depth) e
    | CLet _ | CVar _ | CAssign _ | CWrite _ -> ()
  in
  List.iter (go 0) cbody

let pp_rhs ppf r =
  Emma_lang.Pretty.pp_expr ppf r.expr;
  List.iter (fun (n, p) -> Fmt.pf ppf "@   where %s =@   @[<v>%a@]" n Plan.pp p) r.thunks

let rec pp_stmt ppf = function
  | CLet (x, r) -> Fmt.pf ppf "@[<v 2>val %s = %a@]" x pp_rhs r
  | CVar (x, r) -> Fmt.pf ppf "@[<v 2>var %s = %a@]" x pp_rhs r
  | CAssign (x, r) -> Fmt.pf ppf "@[<v 2>%s = %a@]" x pp_rhs r
  | CWhile (c, body) ->
      Fmt.pf ppf "@[<v 2>while (%a) {@ %a@]@ }" pp_rhs c (Fmt.list ~sep:Fmt.cut pp_stmt) body
  | CIf (c, t, e) ->
      Fmt.pf ppf "@[<v 2>if (%a) {@ %a@]@ @[<v 2>} else {@ %a@]@ }" pp_rhs c
        (Fmt.list ~sep:Fmt.cut pp_stmt) t
        (Fmt.list ~sep:Fmt.cut pp_stmt) e
  | CWrite (snk, r) -> Fmt.pf ppf "@[<v 2>write(%S, %a)@]" snk pp_rhs r

let pp ppf { cbody; cret } =
  Fmt.pf ppf "@[<v>%a@ return %a@]" (Fmt.list ~sep:Fmt.cut pp_stmt) cbody pp_rhs cret

let to_string p = Fmt.str "%a" pp p
