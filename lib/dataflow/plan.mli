(** Abstract parallel dataflows — the combinator trees produced by step
    (iii) of the pipeline (paper §4.3). Each constructor corresponds to a
    higher-order operator that every targeted runtime supports (Fig. 2/3);
    physical operators ([Cache], [Partition_by]) are inserted by the
    physical-optimization passes, and [Semi_join] is the logical join the
    exists-unnesting of §4.2.1 produces.

    A UDF is a reified lambda: the engine can inspect its body (e.g. to
    evaluate nested local bag expressions) and the compiler annotates it
    with the driver variables it captures, which the engine turns into
    broadcast variables (Fig. 3b, DRV→UDF motion). *)

module Expr = Emma_lang.Expr

type udf = {
  param : string;
  body : Expr.expr;
  broadcast : string list;
      (** free driver variables of [body]; filled in by
          {!val:annotate_broadcasts} *)
}

type udf2 = { param1 : string; param2 : string; body2 : Expr.expr; broadcast2 : string list }

type t =
  | Read of string  (** dataset from distributed storage *)
  | Scan of string  (** result of a driver binding (bag-valued) *)
  | Local of Expr.expr
      (** driver-evaluated bag expression, parallelized on use (DRV→DFL) *)
  | Map of udf * t
  | Flat_map of udf * t
  | Filter of udf * t
  | Eq_join of { lkey : udf; rkey : udf; left : t; right : t }
      (** emits [Tuple [l; r]] pairs *)
  | Semi_join of { lkey : udf; rkey : udf; left : t; right : t }
      (** emits left elements having at least one right match *)
  | Anti_join of { lkey : udf; rkey : udf; left : t; right : t }
      (** emits left elements having no right match — the translation of a
          negated exists (and, via ¬∃¬, of forall guards) *)
  | Cross of t * t  (** emits [Tuple [l; r]] pairs *)
  | Group_by of udf * t  (** emits [{key; values}] records, values nested *)
  | Agg_by of { key : udf; fold : Expr.fold_fns; input : t }
      (** fused group-and-fold; emits [{key; agg}] records *)
  | Fold of Expr.fold_fns * t  (** scalar result, collected to the driver *)
  | Union of t * t
  | Minus of t * t
  | Distinct of t
  | Cache of t  (** materialize and reuse (physical) *)
  | Partition_by of udf * t  (** enforce hash partitioning (physical) *)
  | Stateful_create of { key : udf; init : t }  (** result is a stateful handle *)
  | Stateful_read of string  (** current contents of a stateful driver binding *)
  | Stateful_update of { state : string; udf : udf }  (** emits the delta *)
  | Stateful_update_msgs of { state : string; msg_key : udf; messages : t; udf : udf2 }

type result_kind = Rbag | Rscalar | Rstateful

val result_kind : t -> result_kind

val udf_of_expr : Expr.expr -> udf
(** Builds a UDF from a lambda, eta-expanding other expressions. Broadcast
    annotations start empty. *)

val udf_body_lam : udf -> Expr.expr
(** The UDF as a [Lam], for evaluation. *)

val udf2_of_expr : Expr.expr -> udf2
(** Builds a binary UDF from a curried two-argument lambda. *)

val udf_alpha_equal : udf -> udf -> bool
(** Equality modulo the bound parameter name; used to compare partitioning
    keys. *)

val fold_fns_captured : bound:Emma_util.Strset.t -> Expr.fold_fns -> string list
(** Driver variables captured by a fold algebra's three functions — these
    too must be shipped to workers (e.g. a fused fold referencing a driver
    constant). *)

val annotate_broadcasts : bound:Emma_util.Strset.t -> t -> t
(** Computes, for every UDF in the plan, the driver variables its body
    captures (free variables that are neither the UDF parameters nor
    [bound] global names) and records them in the [broadcast] fields. *)

val children : t -> t list
val map_children : (t -> t) -> t -> t

val fold_plan : ('a -> t -> 'a) -> 'a -> t -> 'a
(** Pre-order fold over all plan nodes. *)

val scanned_vars : t -> string list
(** Driver bindings referenced by [Scan]/[Stateful_*] nodes, with
    duplicates (one entry per reference). *)

val broadcast_vars : t -> string list
(** All broadcast variables referenced by UDFs in the plan (with
    duplicates). *)

val node_count : t -> int
val pp : Format.formatter -> t -> unit
val to_string : t -> string

val to_dot : ?name:string -> t -> string
(** GraphViz rendering of the plan tree: one node per combinator (shuffling
    operators drawn as boxes, pipelined ones as ellipses, physical
    operators dashed), edges from inputs to consumers. *)
