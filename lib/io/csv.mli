(** CSV input/output for flat record tables — the counterpart of the
    paper's [CsvInputFormat]/[CsvOutputFormat] (Listing 4, lines 8 and 38).

    A table is a list of records with identical field names and
    scalar-ish field values. The first line is a typed header
    ([name:type, ...]); supported column types are [int], [float], [bool],
    [string], [vector] (semicolon-separated components) and [blob]
    (serialized as [bytes;tag] — blobs are opaque payloads, so only their
    size and tag survive, by design). Strings are quoted RFC-4180 style
    when they contain commas, quotes or newlines.

    Nested bags and options are not representable in CSV; writing them
    raises [Unsupported]. *)

module Value = Emma_value.Value

exception Parse_error of { line : int; message : string }
exception Unsupported of string

val to_string : Value.t list -> string
(** Serialize a table. Raises [Unsupported] on an empty table (no schema
    to write), on non-record rows, on rows whose fields differ from the
    first row's, and on unrepresentable field types. *)

val of_string : string -> Value.t list
(** Parse a table produced by {!to_string} (or hand-written with the same
    header convention). Raises [Parse_error] on malformed input. *)

val write_file : string -> Value.t list -> unit
val read_file : string -> Value.t list

val write_tables : dir:string -> (string * Value.t list) list -> unit
(** Write each named table to [dir/<name>.csv], creating [dir]. *)

val read_tables : dir:string -> (string * Value.t list) list
(** Read every [*.csv] in [dir] as a (table name, rows) pair. *)
