module Value = Emma_value.Value

exception Parse_error of { line : int; message : string }
exception Unsupported of string

let parse_error line fmt = Printf.ksprintf (fun m -> raise (Parse_error { line; message = m })) fmt

type column_type = Cint | Cfloat | Cbool | Cstring | Cvector | Cblob

let type_name = function
  | Cint -> "int"
  | Cfloat -> "float"
  | Cbool -> "bool"
  | Cstring -> "string"
  | Cvector -> "vector"
  | Cblob -> "blob"

let type_of_name line = function
  | "int" -> Cint
  | "float" -> Cfloat
  | "bool" -> Cbool
  | "string" -> Cstring
  | "vector" -> Cvector
  | "blob" -> Cblob
  | t -> parse_error line "unknown column type %S" t

let column_type_of_value = function
  | Value.Int _ -> Cint
  | Value.Float _ -> Cfloat
  | Value.Bool _ -> Cbool
  | Value.String _ -> Cstring
  | Value.Vector _ -> Cvector
  | Value.Blob _ -> Cblob
  | v -> raise (Unsupported (Printf.sprintf "CSV cannot hold a %s field" (Value.type_name v)))

(* ---- field quoting ---------------------------------------------------- *)

let needs_quoting s =
  String.exists (function ',' | '"' | '\n' | '\r' -> true | _ -> false) s

let quote s =
  let buf = Buffer.create (String.length s + 2) in
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      if c = '"' then Buffer.add_string buf "\"\"" else Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"';
  Buffer.contents buf

let render_cell ty v =
  let raw =
    match (ty, v) with
    | Cint, Value.Int n -> string_of_int n
    | Cfloat, Value.Float f -> Printf.sprintf "%.17g" f
    | Cbool, Value.Bool b -> string_of_bool b
    | Cstring, Value.String s -> s
    | Cvector, Value.Vector a ->
        String.concat ";" (Array.to_list (Array.map (Printf.sprintf "%.17g") a))
    | Cblob, Value.Blob { bytes; tag } -> Printf.sprintf "%d;%d" bytes tag
    | ty, v ->
        raise
          (Unsupported
             (Printf.sprintf "column of type %s cannot hold a %s" (type_name ty)
                (Value.type_name v)))
  in
  if needs_quoting raw then quote raw else raw

let parse_cell line ty raw =
  let fail () = parse_error line "cannot parse %S as %s" raw (type_name ty) in
  match ty with
  | Cint -> ( match int_of_string_opt raw with Some n -> Value.Int n | None -> fail ())
  | Cfloat -> ( match float_of_string_opt raw with Some f -> Value.Float f | None -> fail ())
  | Cbool -> ( match bool_of_string_opt raw with Some b -> Value.Bool b | None -> fail ())
  | Cstring -> Value.String raw
  | Cvector ->
      if String.equal raw "" then Value.Vector [||]
      else
        let parts = String.split_on_char ';' raw in
        let comps =
          List.map
            (fun p -> match float_of_string_opt p with Some f -> f | None -> fail ())
            parts
        in
        Value.Vector (Array.of_list comps)
  | Cblob -> begin
      match String.split_on_char ';' raw with
      | [ b; t ] -> begin
          match (int_of_string_opt b, int_of_string_opt t) with
          | Some bytes, Some tag -> Value.blob ~bytes ~tag
          | _ -> fail ()
        end
      | _ -> fail ()
    end

(* ---- writing ----------------------------------------------------------- *)

let schema_of_first_row = function
  | Value.Record fields ->
      Array.to_list (Array.map (fun (n, v) -> (n, column_type_of_value v)) fields)
  | v -> raise (Unsupported (Printf.sprintf "CSV rows must be records, got %s" (Value.type_name v)))

let to_string rows =
  match rows with
  | [] -> raise (Unsupported "cannot infer a CSV schema from an empty table")
  | first :: _ ->
      let schema = schema_of_first_row first in
      let buf = Buffer.create 4096 in
      Buffer.add_string buf
        (String.concat "," (List.map (fun (n, t) -> n ^ ":" ^ type_name t) schema));
      Buffer.add_char buf '\n';
      List.iter
        (fun row ->
          let cells =
            List.map
              (fun (name, ty) ->
                let v =
                  try Value.field row name
                  with Value.Type_error m -> raise (Unsupported m)
                in
                render_cell ty v)
              schema
          in
          Buffer.add_string buf (String.concat "," cells);
          Buffer.add_char buf '\n')
        rows;
      Buffer.contents buf

(* ---- reading ----------------------------------------------------------- *)

(* Split one logical CSV record starting at [pos]; returns cells and the
   position after the record's newline. Quoted cells may contain embedded
   newlines. *)
let split_record s pos line =
  let n = String.length s in
  let cells = ref [] in
  let buf = Buffer.create 32 in
  let rec unquoted i =
    if i >= n then finish i
    else
      match s.[i] with
      | ',' ->
          cells := Buffer.contents buf :: !cells;
          Buffer.clear buf;
          unquoted (i + 1)
      | '\n' -> finish (i + 1)
      | '\r' when i + 1 < n && s.[i + 1] = '\n' -> finish (i + 2)
      | '"' when Buffer.length buf = 0 -> quoted (i + 1)
      | c ->
          Buffer.add_char buf c;
          unquoted (i + 1)
  and quoted i =
    if i >= n then parse_error line "unterminated quoted cell"
    else
      match s.[i] with
      | '"' when i + 1 < n && s.[i + 1] = '"' ->
          Buffer.add_char buf '"';
          quoted (i + 2)
      | '"' -> unquoted (i + 1)
      | c ->
          Buffer.add_char buf c;
          quoted (i + 1)
  and finish next =
    cells := Buffer.contents buf :: !cells;
    (List.rev !cells, next)
  in
  unquoted pos

let of_string s =
  let n = String.length s in
  if n = 0 then raise (Parse_error { line = 1; message = "empty input" });
  let header, pos = split_record s 0 1 in
  let schema =
    List.map
      (fun cell ->
        match String.index_opt cell ':' with
        | Some i ->
            ( String.sub cell 0 i,
              type_of_name 1 (String.sub cell (i + 1) (String.length cell - i - 1)) )
        | None -> parse_error 1 "header cell %S lacks a :type annotation" cell)
      header
  in
  let ncols = List.length schema in
  let rec rows pos line acc =
    if pos >= n then List.rev acc
    else begin
      let cells, pos' = split_record s pos line in
      if cells = [ "" ] then rows pos' (line + 1) acc (* trailing blank line *)
      else begin
        if List.length cells <> ncols then
          parse_error line "expected %d cells, found %d" ncols (List.length cells);
        let fields =
          List.map2 (fun (name, ty) raw -> (name, parse_cell line ty raw)) schema cells
        in
        rows pos' (line + 1) (Value.record fields :: acc)
      end
    end
  in
  rows pos 2 []

(* ---- files ------------------------------------------------------------- *)

let write_file path rows =
  (* temp-then-rename so a crash mid-write never leaves a torn CSV *)
  Emma_util.Wal.write_atomic path (to_string rows)

let read_file path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> of_string (really_input_string ic (in_channel_length ic)))

let write_tables ~dir tables =
  if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
  List.iter (fun (name, rows) -> write_file (Filename.concat dir (name ^ ".csv")) rows) tables

let read_tables ~dir =
  Sys.readdir dir |> Array.to_list
  |> List.filter (fun f -> Filename.check_suffix f ".csv")
  |> List.map (fun f -> (Filename.chop_suffix f ".csv", read_file (Filename.concat dir f)))
  |> List.sort compare
