(** Universal runtime value of the deeply embedded language.

    The Emma compiler pipeline rewrites untyped terms, exactly as the paper's
    Scala-macro pipeline rewrites untyped Scala ASTs; this module is the
    dynamic value domain those terms evaluate to. It also carries the cost
    model's notion of the *logical size in bytes* of a value, which is what
    the simulated engine charges for shuffles, broadcasts and disk I/O.

    [Blob] is an opaque payload of a given logical byte size: workload
    generators use it to represent large fields (e.g. 100 KB email bodies)
    without materializing them, so experiments can run at the paper's data
    scales on a laptop. *)

type t =
  | Unit
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | Tuple of t array
  | Record of (string * t) array
  | Option of t option
  | Vector of float array
  | Bag of t list  (** nested bags, e.g. group values produced by groupBy *)
  | Blob of { bytes : int; tag : int }

exception Type_error of string
(** Raised by the accessors below (and by the interpreter's primitives) when
    a value has an unexpected shape. *)

(** {1 Constructors} *)

val unit : t
val bool : bool -> t
val int : int -> t
val float : float -> t
val string : string -> t
val tuple : t list -> t
val record : (string * t) list -> t
val some : t -> t
val none : t
val vector : float array -> t
val bag : t list -> t
val blob : bytes:int -> tag:int -> t

(** {1 Accessors} — raise [Type_error] on shape mismatch *)

val to_bool : t -> bool
val to_int : t -> int
val to_float : t -> float

val to_number : t -> float
(** Coerces [Int] or [Float] to float. *)

val to_string_exn : t -> string
val to_bag : t -> t list
val to_vector : t -> float array
val to_option : t -> t option

val proj : t -> int -> t
(** 0-based tuple projection. *)

val field : t -> string -> t
(** Record field lookup by name. *)

val set_field : t -> string -> t -> t
(** Functional record update; raises [Type_error] if the field is absent. *)

(** {1 Structure} *)

val compare : t -> t -> int
(** Total structural order. Bags compare as sorted multisets, so two bags
    with the same elements in different order are equal. [Int n] and
    [Float f] are distinct even when numerically equal. *)

val equal : t -> t -> bool

val hash : t -> int
(** Structural hash consistent with [equal] (bags hash order-independently).
    Used by the engine for hash partitioning. *)

val byte_size : t -> int
(** Logical size in bytes under the cost model (8 per number, payload size
    for strings/blobs, small per-node overheads for containers). *)

val pp : Format.formatter -> t -> unit
val to_display : t -> string

val type_name : t -> string
(** Short constructor name, used in error messages. *)
