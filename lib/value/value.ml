type t =
  | Unit
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | Tuple of t array
  | Record of (string * t) array
  | Option of t option
  | Vector of float array
  | Bag of t list
  | Blob of { bytes : int; tag : int }

exception Type_error of string

let type_name = function
  | Unit -> "unit"
  | Bool _ -> "bool"
  | Int _ -> "int"
  | Float _ -> "float"
  | String _ -> "string"
  | Tuple _ -> "tuple"
  | Record _ -> "record"
  | Option _ -> "option"
  | Vector _ -> "vector"
  | Bag _ -> "bag"
  | Blob _ -> "blob"

let type_error expected v =
  raise (Type_error (Printf.sprintf "expected %s, got %s" expected (type_name v)))

let unit = Unit
let bool b = Bool b
let int n = Int n
let float f = Float f
let string s = String s
let tuple vs = Tuple (Array.of_list vs)
let record fields = Record (Array.of_list fields)
let some v = Option (Some v)
let none = Option None
let vector a = Vector a
let bag vs = Bag vs
let blob ~bytes ~tag = Blob { bytes; tag }

let to_bool = function Bool b -> b | v -> type_error "bool" v
let to_int = function Int n -> n | v -> type_error "int" v
let to_float = function Float f -> f | v -> type_error "float" v

let to_number = function
  | Int n -> float_of_int n
  | Float f -> f
  | v -> type_error "number" v

let to_string_exn = function String s -> s | v -> type_error "string" v
let to_bag = function Bag vs -> vs | v -> type_error "bag" v
let to_vector = function Vector a -> a | v -> type_error "vector" v
let to_option = function Option o -> o | v -> type_error "option" v

let proj v i =
  match v with
  | Tuple a when i >= 0 && i < Array.length a -> a.(i)
  | Tuple a ->
      raise (Type_error (Printf.sprintf "tuple projection .%d out of bounds (arity %d)" i (Array.length a)))
  | v -> type_error "tuple" v

let field v name =
  match v with
  | Record fields -> begin
      match Array.find_opt (fun (n, _) -> String.equal n name) fields with
      | Some (_, fv) -> fv
      | None -> raise (Type_error (Printf.sprintf "record has no field %S" name))
    end
  | v -> type_error "record" v

let set_field v name fv =
  match v with
  | Record fields ->
      if not (Array.exists (fun (n, _) -> String.equal n name) fields) then
        raise (Type_error (Printf.sprintf "record has no field %S" name));
      Record (Array.map (fun (n, old) -> if String.equal n name then (n, fv) else (n, old)) fields)
  | v -> type_error "record" v

(* Constructor rank for the total order across different shapes. *)
let rank = function
  | Unit -> 0
  | Bool _ -> 1
  | Int _ -> 2
  | Float _ -> 3
  | String _ -> 4
  | Tuple _ -> 5
  | Record _ -> 6
  | Option _ -> 7
  | Vector _ -> 8
  | Bag _ -> 9
  | Blob _ -> 10

let rec compare a b =
  match (a, b) with
  | Unit, Unit -> 0
  | Bool x, Bool y -> Bool.compare x y
  | Int x, Int y -> Int.compare x y
  | Float x, Float y -> Float.compare x y
  | String x, String y -> String.compare x y
  | Tuple x, Tuple y -> compare_arrays x y
  | Record x, Record y -> compare_fields x y
  | Option None, Option None -> 0
  | Option None, Option (Some _) -> -1
  | Option (Some _), Option None -> 1
  | Option (Some x), Option (Some y) -> compare x y
  | Vector x, Vector y -> compare_float_arrays x y
  | Bag x, Bag y ->
      (* Bags are unordered: compare as sorted multisets. *)
      compare_lists (List.sort compare x) (List.sort compare y)
  | Blob x, Blob y ->
      let c = Int.compare x.bytes y.bytes in
      if c <> 0 then c else Int.compare x.tag y.tag
  | _ -> Int.compare (rank a) (rank b)

and compare_arrays x y =
  let c = Int.compare (Array.length x) (Array.length y) in
  if c <> 0 then c
  else
    let rec go i =
      if i >= Array.length x then 0
      else
        let c = compare x.(i) y.(i) in
        if c <> 0 then c else go (i + 1)
    in
    go 0

and compare_fields x y =
  let c = Int.compare (Array.length x) (Array.length y) in
  if c <> 0 then c
  else
    let rec go i =
      if i >= Array.length x then 0
      else
        let nx, vx = x.(i) and ny, vy = y.(i) in
        let c = String.compare nx ny in
        if c <> 0 then c
        else
          let c = compare vx vy in
          if c <> 0 then c else go (i + 1)
    in
    go 0

and compare_float_arrays x y =
  let c = Int.compare (Array.length x) (Array.length y) in
  if c <> 0 then c
  else
    let rec go i =
      if i >= Array.length x then 0
      else
        let c = Float.compare x.(i) y.(i) in
        if c <> 0 then c else go (i + 1)
    in
    go 0

and compare_lists x y =
  match (x, y) with
  | [], [] -> 0
  | [], _ :: _ -> -1
  | _ :: _, [] -> 1
  | a :: x', b :: y' ->
      let c = compare a b in
      if c <> 0 then c else compare_lists x' y'

let equal a b = compare a b = 0

let combine h1 h2 = (h1 * 31) + h2

let rec hash v =
  match v with
  | Unit -> 17
  | Bool b -> if b then 23 else 29
  | Int n -> combine 3 (Hashtbl.hash n)
  | Float f -> combine 5 (Hashtbl.hash f)
  | String s -> combine 7 (Hashtbl.hash s)
  | Tuple a -> Array.fold_left (fun acc x -> combine acc (hash x)) 11 a
  | Record fields ->
      Array.fold_left (fun acc (n, x) -> combine (combine acc (Hashtbl.hash n)) (hash x)) 13 fields
  | Option None -> 37
  | Option (Some x) -> combine 41 (hash x)
  | Vector a -> Array.fold_left (fun acc x -> combine acc (Hashtbl.hash x)) 43 a
  | Bag vs ->
      (* Order-independent: sum of element hashes. *)
      List.fold_left (fun acc x -> acc + hash x) 47 vs
  | Blob { bytes; tag } -> combine (combine 53 bytes) tag

let rec byte_size = function
  | Unit -> 0
  | Bool _ -> 1
  | Int _ | Float _ -> 8
  | String s -> 8 + String.length s
  | Tuple a -> Array.fold_left (fun acc v -> acc + byte_size v) 8 a
  | Record fields -> Array.fold_left (fun acc (_, v) -> acc + byte_size v) 8 fields
  | Option None -> 1
  | Option (Some v) -> 1 + byte_size v
  | Vector a -> 8 + (8 * Array.length a)
  | Bag vs -> List.fold_left (fun acc v -> acc + byte_size v) 16 vs
  | Blob { bytes; _ } -> bytes

let rec pp ppf = function
  | Unit -> Fmt.string ppf "()"
  | Bool b -> Fmt.bool ppf b
  | Int n -> Fmt.int ppf n
  | Float f -> Fmt.float ppf f
  | String s -> Fmt.pf ppf "%S" s
  | Tuple a -> Fmt.pf ppf "(%a)" pp_comma_array a
  | Record fields ->
      Fmt.pf ppf "{%a}"
        (Fmt.array ~sep:(Fmt.any ", ") (fun ppf (n, v) -> Fmt.pf ppf "%s=%a" n pp v))
        fields
  | Option None -> Fmt.string ppf "None"
  | Option (Some v) -> Fmt.pf ppf "Some %a" pp v
  | Vector a -> Fmt.pf ppf "vec[%a]" (Fmt.array ~sep:(Fmt.any "; ") Fmt.float) a
  | Bag vs -> Fmt.pf ppf "{{%a}}" (Fmt.list ~sep:(Fmt.any ", ") pp) vs
  | Blob { bytes; tag } -> Fmt.pf ppf "<blob#%d:%dB>" tag bytes

and pp_comma_array ppf a = Fmt.array ~sep:(Fmt.any ", ") pp ppf a

let to_display v = Fmt.str "%a" pp v
