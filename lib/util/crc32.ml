(* CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320), table-driven.
   Pure integer arithmetic on the low 32 bits of native ints, so the
   checksum is identical on every host and across domain counts — which
   is what lets checkpoint-integrity tests pin exact corruption
   behaviour. *)

let mask = 0xFFFFFFFF

let table =
  lazy
    (Array.init 256 (fun n ->
         let c = ref n in
         for _ = 0 to 7 do
           if !c land 1 = 1 then c := 0xEDB88320 lxor (!c lsr 1)
           else c := !c lsr 1
         done;
         !c land mask))

let update crc b =
  let t = Lazy.force table in
  (t.((crc lxor b) land 0xFF) lxor (crc lsr 8)) land mask

let bytes ?(crc = 0) b =
  let acc = ref (crc lxor mask) in
  Bytes.iter (fun ch -> acc := update !acc (Char.code ch)) b;
  !acc lxor mask land mask

let string ?crc s = bytes ?crc (Bytes.unsafe_of_string s)
