(** Deterministic, splittable pseudo-random number generator.

    Implements SplitMix64 (Steele, Lea & Flood, OOPSLA 2013). All workload
    generators and the engine's placement decisions draw from this generator
    so that every experiment in the repository is reproducible from a seed.

    The generator is a mutable single-stream state; [split] derives an
    independent stream, which the generators use to make per-partition data
    generation independent of partition evaluation order. *)

type t

val create : int -> t
(** [create seed] returns a fresh generator stream. Two generators created
    from the same seed produce identical streams. *)

val copy : t -> t
(** [copy t] duplicates the current state of [t]; the copy evolves
    independently. *)

val split : t -> t
(** [split t] advances [t] and returns a statistically independent stream
    derived from it. *)

val split_n : t -> int -> t array
(** [split_n t n] derives [n] independent streams in a fixed (ascending)
    order — one per parallel worker or data partition. A single [t] must
    never be drawn from by several domains concurrently (its state update
    is an unsynchronized read-modify-write); derive one stream per domain
    with this function on the coordinator instead. *)

val next_int64 : t -> int64
(** Next raw 64-bit output of the stream. *)

val int : t -> int -> int
(** [int t bound] draws uniformly from [0, bound). Raises
    [Invalid_argument] if [bound <= 0]. *)

val int_in : t -> int -> int -> int
(** [int_in t lo hi] draws uniformly from the inclusive range [lo, hi]. *)

val float : t -> float -> float
(** [float t bound] draws uniformly from [0, bound). *)

val unit_float : t -> float
(** Uniform draw from [0, 1). *)

val bool : t -> bool
(** Fair coin flip. *)

val gaussian : t -> mean:float -> stddev:float -> float
(** Normal deviate via the Box-Muller transform. *)

val pareto : t -> alpha:float -> x_min:float -> float
(** Pareto(alpha, x_min) deviate via inverse-CDF sampling. *)

val exponential : t -> rate:float -> float
(** Exponential deviate with the given rate. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher-Yates shuffle. *)

val pick : t -> 'a array -> 'a
(** Uniform draw from a non-empty array. Raises [Invalid_argument] on an
    empty array. *)

val string : t -> len:int -> string
(** Random lowercase ASCII string of length [len]. *)

(** {2 Pure keyed draws}

    Stateless draws keyed by a seed and an id path. Unlike the stream API
    above, the result depends only on the key — not on how many draws were
    made before — so decision points consulted in different orders (or from
    different domains) still agree. The engine's deterministic fault
    injector ({!Emma_engine.Faults}) derives every chaos decision this
    way. *)

val hash_int64 : seed:int -> int list -> int64
(** SplitMix64 finalizer folded over [(seed, ids)]; a pure function. *)

val hash_unit : seed:int -> int list -> float
(** Uniform in [0, 1), keyed by [(seed, ids)]. *)

val hash_int : seed:int -> int list -> int -> int
(** [hash_int ~seed ids bound] draws uniformly from [0, bound), keyed by
    [(seed, ids)]. Raises [Invalid_argument] if [bound <= 0]. *)
