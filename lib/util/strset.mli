(** String sets, used pervasively for free-variable computations. *)
include module type of Set.Make (String)
