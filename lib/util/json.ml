type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

(* ------------------------------------------------------------------ *)
(* Emission                                                             *)
(* ------------------------------------------------------------------ *)

let escape_to buf s =
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\b' -> Buffer.add_string buf "\\b"
      | '\012' -> Buffer.add_string buf "\\f"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s

let escape s =
  let buf = Buffer.create (String.length s + 8) in
  escape_to buf s;
  Buffer.contents buf

(* Pinned float syntax: OCaml's Printf does not consult the process
   locale, so "%.6f" is stable across hosts. JSON has no NaN/inf. *)
let float_repr f = if Float.is_finite f then Printf.sprintf "%.6f" f else "null"

let rec add buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float f -> Buffer.add_string buf (float_repr f)
  | Str s ->
      Buffer.add_char buf '"';
      escape_to buf s;
      Buffer.add_char buf '"'
  | List items ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i x ->
          if i > 0 then Buffer.add_char buf ',';
          add buf x)
        items;
      Buffer.add_char buf ']'
  | Obj fields ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char buf ',';
          Buffer.add_char buf '"';
          escape_to buf k;
          Buffer.add_string buf "\":";
          add buf v)
        fields;
      Buffer.add_char buf '}'

let to_string j =
  let buf = Buffer.create 256 in
  add buf j;
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Parsing                                                              *)
(* ------------------------------------------------------------------ *)

exception Bad of string

let parse s =
  let n = String.length s in
  let pos = ref 0 in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let fail msg = raise (Bad (Printf.sprintf "%s at offset %d" msg !pos)) in
  let advance () = incr pos in
  let skip_ws () =
    while !pos < n && (match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false) do
      advance ()
    done
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | _ -> fail (Printf.sprintf "expected %C" c)
  in
  let literal word v =
    if !pos + String.length word <= n && String.sub s !pos (String.length word) = word
    then begin
      pos := !pos + String.length word;
      v
    end
    else fail (Printf.sprintf "expected %s" word)
  in
  let hex4 () =
    if !pos + 4 > n then fail "truncated \\u escape";
    let h = String.sub s !pos 4 in
    pos := !pos + 4;
    match int_of_string_opt ("0x" ^ h) with
    | Some c -> c
    | None -> fail "bad \\u escape"
  in
  (* encode a BMP code point as UTF-8 *)
  let add_utf8 buf cp =
    if cp < 0x80 then Buffer.add_char buf (Char.chr cp)
    else if cp < 0x800 then begin
      Buffer.add_char buf (Char.chr (0xC0 lor (cp lsr 6)));
      Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
    end
    else begin
      Buffer.add_char buf (Char.chr (0xE0 lor (cp lsr 12)));
      Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 6) land 0x3F)));
      Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
    end
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      if !pos >= n then fail "unterminated string";
      let c = s.[!pos] in
      advance ();
      if c = '"' then Buffer.contents buf
      else if c = '\\' then begin
        (if !pos >= n then fail "unterminated escape");
        let e = s.[!pos] in
        advance ();
        (match e with
        | '"' -> Buffer.add_char buf '"'
        | '\\' -> Buffer.add_char buf '\\'
        | '/' -> Buffer.add_char buf '/'
        | 'n' -> Buffer.add_char buf '\n'
        | 't' -> Buffer.add_char buf '\t'
        | 'r' -> Buffer.add_char buf '\r'
        | 'b' -> Buffer.add_char buf '\b'
        | 'f' -> Buffer.add_char buf '\012'
        | 'u' -> add_utf8 buf (hex4 ())
        | _ -> fail "bad escape");
        go ()
      end
      else if Char.code c < 0x20 then fail "raw control character in string"
      else begin
        Buffer.add_char buf c;
        go ()
      end
    in
    go ()
  in
  let parse_number () =
    let start = !pos in
    if peek () = Some '-' then advance ();
    let digits () =
      let d0 = !pos in
      while !pos < n && (match s.[!pos] with '0' .. '9' -> true | _ -> false) do
        advance ()
      done;
      if !pos = d0 then fail "expected digits"
    in
    digits ();
    let is_float = ref false in
    if peek () = Some '.' then begin
      is_float := true;
      advance ();
      digits ()
    end;
    (match peek () with
    | Some ('e' | 'E') ->
        is_float := true;
        advance ();
        (match peek () with Some ('+' | '-') -> advance () | _ -> ());
        digits ()
    | _ -> ());
    let text = String.sub s start (!pos - start) in
    if !is_float then Float (float_of_string text)
    else
      match int_of_string_opt text with
      | Some i -> Int i
      | None -> Float (float_of_string text)
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '"' -> Str (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some ('-' | '0' .. '9') -> parse_number ()
    | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then begin
          advance ();
          List []
        end
        else begin
          let rec items acc =
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                items (v :: acc)
            | Some ']' ->
                advance ();
                List.rev (v :: acc)
            | _ -> fail "expected ',' or ']'"
          in
          List (items [])
        end
    | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then begin
          advance ();
          Obj []
        end
        else begin
          let field () =
            skip_ws ();
            let k = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            (k, v)
          in
          let rec fields acc =
            let kv = field () in
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                fields (kv :: acc)
            | Some '}' ->
                advance ();
                List.rev (kv :: acc)
            | _ -> fail "expected ',' or '}'"
          in
          Obj (fields [])
        end
    | Some c -> fail (Printf.sprintf "unexpected character %C" c)
  in
  match
    let v = parse_value () in
    skip_ws ();
    if !pos <> n then fail "trailing garbage";
    v
  with
  | v -> Ok v
  | exception Bad msg -> Error msg

let is_valid s = match parse s with Ok _ -> true | Error _ -> false

let member k = function
  | Obj fields -> List.assoc_opt k fields
  | _ -> None
