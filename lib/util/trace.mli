(** A zero-dependency structured span tracer.

    Spans carry a category, key/value attributes and begin/end timestamps;
    counters and instant events record point-in-time facts. Emission is
    thread-safe (a single mutex orders events across domains), so pool
    workers ({!Pool}) can emit per-task spans concurrently with the
    coordinator.

    Two sinks are provided: a Chrome [chrome://tracing] / Perfetto JSON
    exporter ({!to_chrome_json}) and a compact indented text tree
    ({!to_text_tree}).

    A disabled tracer ({!disabled}, the default everywhere) makes every
    emission a no-op: instrumented code must behave identically with
    tracing on or off — in particular the engine's cost model charges
    nothing for tracing, so [sim_time_s] and every other cost field are
    bit-identical either way (property-tested in [test/test_trace.ml]).

    {b Span categories in use.} The engine and compiler emit under a small
    fixed vocabulary of categories: ["compile"] (optimizer phases),
    ["job"] (submitted dataflows), ["stage"] (operators and barriers),
    ["task"] (per-partition worker spans), ["motion"] (byte counters),
    ["recovery"] (fault-injection recovery work: task retries, shuffle
    re-fetches, executor losses, blacklisting, speculative copies, lineage
    recomputation, loop checkpoints/restores — see {!Emma_engine.Faults})
    and ["memory"] (memory-governance events from {!Emma_engine.Memman}:
    reservation peaks, spills, OOM kills, cache evictions, queued job
    admissions). *)

type attr = A_str of string | A_int of int | A_float of float | A_bool of bool

type phase =
  | B  (** span begin *)
  | E  (** span end *)
  | I  (** instant *)
  | C  (** counter sample *)

type event = {
  ev_name : string;
  ev_cat : string;
  ev_ph : phase;
  ev_ts_us : float;  (** microseconds since tracer creation, monotone in
                         recorded order *)
  ev_tid : int;  (** emitting domain's id — worker spans land on their own
                     Chrome track *)
  ev_args : (string * attr) list;
}

type t

val create : ?clock:(unit -> float) -> unit -> t
(** A fresh enabled tracer. [clock] returns seconds (default
    [Unix.gettimeofday]); tests inject a deterministic counter clock.
    Recorded timestamps are clamped to be non-decreasing in emission
    order. *)

val disabled : t
(** The shared always-off tracer: every emission is a no-op and [span]
    just runs its thunk. *)

val enabled : t -> bool
val events : t -> event list  (** chronological *)

val clear : t -> unit

val span : t -> ?cat:string -> ?args:(string * attr) list -> string -> (unit -> 'a) -> 'a
(** [span t name f] brackets [f ()] in a begin/end pair. The end event is
    emitted even when [f] raises (tagged [error=true]), so span trees stay
    balanced. *)

val span_f :
  t ->
  ?cat:string ->
  ?args:(string * attr) list ->
  end_args:('a -> (string * attr) list) ->
  string ->
  (unit -> 'a) ->
  'a
(** Like {!span} but computes the end event's attributes from the result —
    used to record after-the-fact facts such as a compile phase's
    post-rewrite node count. *)

val instant : t -> ?cat:string -> ?args:(string * attr) list -> string -> unit
val counter : t -> ?cat:string -> string -> float -> unit

val well_formed : t -> (unit, string) result
(** Structural check used by the property tests and [make trace-check]:
    per-domain begin/end balance (every end matches the innermost open
    begin of the same name, nothing left open) and globally monotone
    timestamps. *)

val to_chrome_json : t -> string
(** The trace as a Chrome [trace_event] JSON document (["traceEvents"]
    array; durations via B/E pairs, one [pid], one [tid] per domain). Load
    in [chrome://tracing] or [ui.perfetto.dev]. *)

val write_chrome_json : t -> string -> unit
(** [write_chrome_json t path] writes {!to_chrome_json} to [path]. *)

val to_text_tree : t -> string
(** Compact human-readable rendering: one indented line per span (with
    duration and attributes), grouped by domain. *)

val global : unit -> t
(** The ambient tracer, {!disabled} unless {!set_global} was called.
    Instrumented layers ([Pipeline.compile], [Exec.create]) default to it,
    so a CLI flag can switch on tracing without threading a value through
    every call site. *)

val set_global : t -> unit
