include Set.Make (String)
