(** The original single-mutex/condition work-queue pool, retained as the
    differential oracle and performance baseline for the work-stealing
    {!Pool}.

    Semantics are identical to {!Pool} (caller participation, nested-batch
    deadlock freedom, lowest-index exception propagation, reusability after
    errors); only the scheduling differs: one global queue guarded by one
    mutex, claimed a task at a time — the contention wall and
    skewed-partition serialization the deque pool removes. The
    scheduling-adversarial tests run both implementations over the same
    batches, and the steal bench pins the deque pool's skewed speedup
    against this one's. *)

type t

val create : domains:int -> t
(** Spawns [domains - 1] worker Domains ([domains <= 1] spawns none and
    makes {!parmap} run inline). *)

val size : t -> int

val parmap : t -> ('a -> 'b) -> 'a array -> 'b array
(** Same contract as {!Pool.parmap}: all tasks run to completion, the
    exception of the lowest input index is re-raised, nesting is safe. *)

val shutdown : t -> unit
(** Signals every worker to exit and joins them. Idempotent. *)
