(** A minimal JSON representation: emitter with pinned, host-independent
    formatting plus a small strict parser. Used by the {!Trace} Chrome
    exporter and the machine-readable run reports ([Metrics.to_json]) — and
    the parser doubles as the well-formedness validator the trace tests
    run over emitted documents. No third-party dependency. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

val escape : string -> string
(** Escapes the body of a JSON string (no surrounding quotes): double
    quote, backslash and control characters below [0x20] are escaped
    (backslash-n/t/r/b/f short forms, the rest as [\u00XX]); all other
    bytes — including multi-byte UTF-8 sequences — pass through verbatim. *)

val to_string : t -> string
(** Deterministic rendering: no insignificant whitespace, object fields in
    the given order, floats printed with [%.6f] (OCaml's [Printf] always
    uses the C locale's dot decimal point, so output is host-independent);
    non-finite floats render as [null]. *)

val parse : string -> (t, string) result
(** Strict parser for the subset of JSON the emitter produces (which is
    plain standard JSON): values, arrays, objects, string escapes including
    [\uXXXX] (decoded to UTF-8), and the usual number syntax. The whole
    input must be one JSON value, surrounded by optional whitespace.
    Numbers parse as [Int] when they are undotted integers fitting an
    OCaml [int], as [Float] otherwise. *)

val is_valid : string -> bool

val member : string -> t -> t option
(** Field lookup in an [Obj] (None on missing field or non-object). *)
