(** Key distributions for skewed workload generation (paper, Appendix B:
    uniform / Gaussian / Pareto key assignment for the fold-group fusion
    scalability experiment). *)

type t =
  | Uniform of { n_keys : int }
      (** Keys drawn uniformly from [0, n_keys). *)
  | Gaussian of { n_keys : int; stddev_frac : float }
      (** Keys concentrated around [n_keys/2] with standard deviation
          [stddev_frac * n_keys], clamped into range. *)
  | Pareto of { n_keys : int; hot_frac : float }
      (** Heavy-tailed: approximately [hot_frac] of all draws land on key 0
          (the paper assigns ~35% of tuples to one key); the rest follow a
          Zipf-like tail over the remaining keys. *)

val name : t -> string

val draw : t -> Prng.t -> int
(** [draw d rng] samples one key. The result is always in [0, n_keys). *)

val histogram : t -> Prng.t -> samples:int -> int array
(** Sample [samples] keys and count occurrences per key; used by tests to
    check distribution shape. *)
