(** Segmented append-only write-ahead journal with CRC-framed records.

    The serve layer journals every scheduling decision through this
    module so that a killed `emma serve` process can be restarted with
    `--recover DIR` and replay to a bit-identical state. Records are
    opaque strings framed as [length (4B BE) | crc32 (4B BE) | payload];
    the checksum is {!Crc32.string} of the payload. A journal is a
    directory of segment files [journal-<start>.seg] (where [<start>] is
    the global index of the segment's first record) plus up to two
    snapshot files [snap-<covers>.snap] written by {!write_snapshot}.

    Opening a journal is a recovery action: any torn tail (partial
    frame from a crash mid-write) or checksum-invalid record is
    truncated away, along with everything after it — later records are
    regenerated deterministically by replay, so dropping them is safe.

    All functions are single-process, single-writer; the serve
    simulation loop that drives them is single-threaded. *)

type sync_policy =
  | Sync_none  (** flush to the OS on every append, never fsync *)
  | Sync_batch of int  (** fsync after every N appends *)
  | Sync_always  (** fsync after every append *)

val sync_policy_of_string : string -> (sync_policy, string) result
(** Parses ["none"], ["always"] or ["batch:N"] (N >= 1); one-line error
    message otherwise (same contract as the [Config] flag parsers). *)

val sync_policy_to_string : sync_policy -> string

type crash_spec =
  | Crash_after of int
      (** SIGKILL this process after the Nth append (1-based, counting
          appends performed by this process) has been fully written and
          flushed. *)
  | Crash_torn of int * int
      (** Write only the first K bytes of the Nth append's frame, flush,
          then SIGKILL — simulates a torn write at a record boundary. *)

val crash_spec_of_string : string -> (crash_spec, string) result
(** Parses ["N"] as [Crash_after N] or ["N:K"] as [Crash_torn (N, K)]. *)

type stats = {
  wa_appends : int;  (** records appended by this process *)
  wa_bytes : int;  (** framed bytes written by this process *)
  wa_fsyncs : int;  (** fsync calls issued by this process *)
}

type t

val create : ?sync:sync_policy -> ?segment_bytes:int -> dir:string -> unit -> t
(** Opens (creating the directory if needed) the journal in [dir],
    truncating any invalid tail as described above, and positions the
    writer after the last valid record. [segment_bytes] (default 64 KiB)
    bounds a segment file; appends that would overflow it rotate to a
    fresh segment first. Raises [Sys_error] on filesystem failure. *)

val records : t -> string array
(** The valid records present when the journal was opened (the replay
    suffix), starting at global index {!first_seq}. Appends made after
    [create] are not reflected. *)

val first_seq : t -> int
(** Global index of the first record retained on disk — 0 unless
    snapshot compaction has deleted whole segments. *)

val count : t -> int
(** Total number of records in the journal right now: open-time records
    plus appends made since. Equal to the global index the next append
    will receive. *)

val append : t -> string -> int
(** Appends one record, returning its global index. Applies the fsync
    policy and any armed {!set_crash} injection. *)

val sync : t -> unit
(** Forces a flush + fsync of the active segment regardless of policy. *)

val stats : t -> stats

val close : t -> unit

val set_crash : t -> crash_spec -> unit
(** Arms deterministic crash injection for testing; see {!crash_spec}. *)

val write_snapshot : t -> covers:int -> string -> unit
(** Writes [payload] as [snap-<covers>.snap] — CRC-framed, written to a
    temp file, fsynced and renamed into place so a crash can never leave
    a half-written snapshot under the final name. [covers] is the number
    of journal records the snapshot summarises. Keeps the newest two
    snapshots, deletes older ones, and compacts: segment files whose
    records all fall before the oldest retained snapshot are deleted. *)

val load_snapshot : t -> (int * string) option
(** The newest snapshot that is (a) checksum-valid and (b) consistent
    with the journal ([first_seq <= covers <= count]); falls back to the
    older snapshot when the newest is corrupt, and to [None] when no
    usable snapshot exists (full-journal replay). *)

val write_atomic : ?fsync:bool -> string -> string -> unit
(** [write_atomic path contents] writes [contents] to a temp file in
    [path]'s directory with a protected close, then renames it over
    [path] — readers never observe a partial file. [?fsync] (default
    false) fsyncs before the rename. *)
