type t = float array

let zeros n = Array.make n 0.0
let of_list = Array.of_list
let dim = Array.length

let check_dim a b name =
  if Array.length a <> Array.length b then
    invalid_arg (Printf.sprintf "Vec.%s: dimension mismatch (%d vs %d)" name (Array.length a) (Array.length b))

let add a b =
  check_dim a b "add";
  Array.mapi (fun i x -> x +. b.(i)) a

let sub a b =
  check_dim a b "sub";
  Array.mapi (fun i x -> x -. b.(i)) a

let scale c a = Array.map (fun x -> c *. x) a
let div_scalar a c = Array.map (fun x -> x /. c) a

let dot a b =
  check_dim a b "dot";
  let acc = ref 0.0 in
  for i = 0 to Array.length a - 1 do
    acc := !acc +. (a.(i) *. b.(i))
  done;
  !acc

let norm2 a = sqrt (dot a a)

let dist a b = norm2 (sub a b)

let equal ?(eps = 1e-9) a b =
  Array.length a = Array.length b
  && Array.for_all2 (fun x y -> Float.abs (x -. y) <= eps) a b

let pp ppf a =
  Format.fprintf ppf "[%s]"
    (String.concat "; " (Array.to_list (Array.map (Printf.sprintf "%g") a)))
