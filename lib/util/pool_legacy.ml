(* The original single-queue pool, retained verbatim as the differential
   oracle for the work-stealing rewrite in [Pool]: the scheduling-adversarial
   tests run both implementations over the same batches and compare results
   and exception choices, and the steal bench measures its skewed-partition
   wall clock as the baseline the deque pool must beat.

   A pool of [domains = n] means "n-way parallelism including the caller":
   [create ~domains:n] spawns n-1 worker Domains, and the domain that calls
   [parmap] claims and executes tasks of its own batch alongside the
   workers. This caller participation is what makes nested [parmap] calls
   deadlock-free: a batch's submitter can always drain its own unclaimed
   tasks itself, so a batch completes even if every worker is blocked
   inside a task that itself waits on an inner batch (inner batches
   complete by the same argument, inductively).

   Exception propagation is deterministic: all tasks of a batch are run to
   completion and the exception of the LOWEST task index is re-raised in
   the caller — the same exception a sequential left-to-right execution
   would surface — leaving the pool reusable. *)

type batch = {
  b_size : int;
  b_run : int -> unit;  (* executes task i; never raises (errors recorded) *)
  mutable b_next : int;  (* next unclaimed task index *)
  mutable b_unfinished : int;  (* tasks not yet completed *)
  b_done : Condition.t;  (* signaled when b_unfinished reaches 0 *)
}

type t = {
  m : Mutex.t;
  work : Condition.t;  (* signaled when a new batch is queued *)
  pending : batch Queue.t;  (* batches with unclaimed tasks *)
  mutable stop : bool;
  mutable workers : unit Domain.t list;
  domains : int;
}

let size t = t.domains

(* Pop exhausted batches off the queue front and claim a task from the
   first batch that still has one. Caller holds [t.m]. *)
let rec claim_from_queue t =
  match Queue.peek_opt t.pending with
  | None -> None
  | Some b ->
      if b.b_next >= b.b_size then begin
        ignore (Queue.pop t.pending);
        claim_from_queue t
      end
      else begin
        let i = b.b_next in
        b.b_next <- b.b_next + 1;
        if b.b_next >= b.b_size then ignore (Queue.pop t.pending);
        Some (b, i)
      end

(* Execute task [i] of [b] outside the lock, then mark it finished.
   Caller holds [t.m] on entry and on exit. *)
let finish_task t b i =
  Mutex.unlock t.m;
  b.b_run i;
  Mutex.lock t.m;
  b.b_unfinished <- b.b_unfinished - 1;
  if b.b_unfinished = 0 then Condition.broadcast b.b_done

let rec worker_loop t =
  if t.stop then ()
  else
    match claim_from_queue t with
    | Some (b, i) ->
        finish_task t b i;
        worker_loop t
    | None ->
        Condition.wait t.work t.m;
        worker_loop t

let worker t () =
  Mutex.lock t.m;
  worker_loop t;
  Mutex.unlock t.m

let create ~domains =
  let domains = max 1 domains in
  let t =
    { m = Mutex.create ();
      work = Condition.create ();
      pending = Queue.create ();
      stop = false;
      workers = [];
      domains }
  in
  t.workers <- List.init (domains - 1) (fun _ -> Domain.spawn (worker t));
  t

let shutdown t =
  Mutex.lock t.m;
  let ws = t.workers in
  t.stop <- true;
  t.workers <- [];
  Condition.broadcast t.work;
  Mutex.unlock t.m;
  List.iter Domain.join ws

let run_seq f xs =
  (* explicit ascending order, so a failing input raises the same
     (lowest-index) exception the parallel path propagates *)
  let n = Array.length xs in
  if n = 0 then [||]
  else begin
    let r = Array.make n (f xs.(0)) in
    for i = 1 to n - 1 do
      r.(i) <- f xs.(i)
    done;
    r
  end

let parmap t f xs =
  let n = Array.length xs in
  if n <= 1 || t.domains <= 1 || t.workers = [] then run_seq f xs
  else begin
    let results = Array.make n None in
    let errors = Array.make n None in
    let run i =
      match f xs.(i) with
      | r -> results.(i) <- Some r
      | exception e -> errors.(i) <- Some e
    in
    let b =
      { b_size = n; b_run = run; b_next = 0; b_unfinished = n; b_done = Condition.create () }
    in
    Mutex.lock t.m;
    Queue.push b t.pending;
    Condition.broadcast t.work;
    (* participate: drain our own batch's unclaimed tasks *)
    while b.b_next < b.b_size do
      let i = b.b_next in
      b.b_next <- b.b_next + 1;
      finish_task t b i
    done;
    (* tasks claimed by workers may still be in flight *)
    while b.b_unfinished > 0 do
      Condition.wait b.b_done t.m
    done;
    Mutex.unlock t.m;
    Array.iter (function Some e -> raise e | None -> ()) errors;
    Array.map
      (function Some r -> r | None -> invalid_arg "Pool_legacy.parmap: missing result")
      results
  end
