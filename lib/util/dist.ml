type t =
  | Uniform of { n_keys : int }
  | Gaussian of { n_keys : int; stddev_frac : float }
  | Pareto of { n_keys : int; hot_frac : float }

let name = function
  | Uniform _ -> "uniform"
  | Gaussian _ -> "gaussian"
  | Pareto _ -> "pareto"

let clamp lo hi x = if x < lo then lo else if x > hi then hi else x

let draw d rng =
  match d with
  | Uniform { n_keys } -> Prng.int rng n_keys
  | Gaussian { n_keys; stddev_frac } ->
      (* rejection-sample into range: clamping would pile the tail mass
         onto the two edge keys and create artificial hot keys *)
      let mean = float_of_int n_keys /. 2.0 in
      let stddev = stddev_frac *. float_of_int n_keys in
      let rec draw_in_range attempts =
        let x = int_of_float (Prng.gaussian rng ~mean ~stddev) in
        if x >= 0 && x < n_keys then x
        else if attempts <= 0 then clamp 0 (n_keys - 1) x
        else draw_in_range (attempts - 1)
      in
      draw_in_range 50
  | Pareto { n_keys; hot_frac } ->
      if Prng.unit_float rng < hot_frac then 0
      else begin
        (* Zipf-ish tail: inverse-CDF of a power law over [1, n_keys). *)
        let u = max (Prng.unit_float rng) 1e-12 in
        let span = float_of_int (n_keys - 1) in
        let k = 1 + int_of_float (span *. (u ** 3.0)) in
        clamp 1 (n_keys - 1) k
      end

let histogram d rng ~samples =
  let n_keys =
    match d with
    | Uniform { n_keys } | Gaussian { n_keys; _ } | Pareto { n_keys; _ } -> n_keys
  in
  let counts = Array.make n_keys 0 in
  for _ = 1 to samples do
    let k = draw d rng in
    counts.(k) <- counts.(k) + 1
  done;
  counts
