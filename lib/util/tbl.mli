(** Plain-text table rendering for the benchmark harness: every experiment
    prints its results as an aligned ASCII table with a caption, matching the
    rows/series the paper reports. *)

val render : title:string -> header:string list -> string list list -> string
(** [render ~title ~header rows] lays out [rows] under [header] with columns
    padded to the widest cell. Rows shorter than the header are padded with
    empty cells. *)

val print : title:string -> header:string list -> string list list -> unit
(** [render] followed by [print_string]. *)
