(* SplitMix64: fast, high-quality, splittable; reference constants from
   Steele, Lea & Flood, "Fast Splittable Pseudorandom Number Generators". *)

type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let mix64 z =
  let z = Int64.(mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L) in
  let z = Int64.(mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL) in
  Int64.(logxor z (shift_right_logical z 31))

let create seed = { state = mix64 (Int64.of_int seed) }

let copy t = { state = t.state }

let next_int64 t =
  t.state <- Int64.add t.state golden_gamma;
  mix64 t.state

let split t =
  let seed = next_int64 t in
  { state = mix64 seed }

let split_n t n =
  (* explicit ascending loop: [split] mutates [t], so the derivation order
     must be fixed for the streams to be reproducible. The streams are what
     parallel workers use — a [t] itself must never be shared across
     domains (its state update is an unsynchronized read-modify-write). *)
  if n < 0 then invalid_arg "Prng.split_n: negative count";
  let a = Array.make n t in
  for i = 0 to n - 1 do
    a.(i) <- split t
  done;
  a

let int t bound =
  if bound <= 0 then invalid_arg "Prng.int: bound must be positive";
  (* keep 62 bits so the result fits OCaml's 63-bit native int *)
  let r = Int64.to_int (Int64.shift_right_logical (next_int64 t) 2) in
  r mod bound

let int_in t lo hi =
  if hi < lo then invalid_arg "Prng.int_in: empty range";
  lo + int t (hi - lo + 1)

let unit_float t =
  (* 53 significant bits, uniform in [0, 1). *)
  let bits = Int64.shift_right_logical (next_int64 t) 11 in
  Int64.to_float bits *. (1.0 /. 9007199254740992.0)

let float t bound = unit_float t *. bound

let bool t = Int64.logand (next_int64 t) 1L = 1L

let gaussian t ~mean ~stddev =
  (* Box-Muller; guard against log 0. *)
  let u1 = max (unit_float t) 1e-300 in
  let u2 = unit_float t in
  let r = sqrt (-2.0 *. log u1) in
  mean +. (stddev *. r *. cos (2.0 *. Float.pi *. u2))

let pareto t ~alpha ~x_min =
  let u = max (1.0 -. unit_float t) 1e-300 in
  x_min /. (u ** (1.0 /. alpha))

let exponential t ~rate =
  let u = max (1.0 -. unit_float t) 1e-300 in
  -.log u /. rate

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

let pick t a =
  if Array.length a = 0 then invalid_arg "Prng.pick: empty array";
  a.(int t (Array.length a))

let string t ~len = String.init len (fun _ -> Char.chr (Char.code 'a' + int t 26))

(* Pure keyed draws: no stream state, so the result depends only on (seed,
   ids) — never on how many draws happened before. The engine's fault
   injector keys every chaos decision this way, which is what makes
   injection independent of evaluation order and domain count. *)
let hash_int64 ~seed ids =
  List.fold_left
    (fun z id -> mix64 (Int64.add (Int64.logxor z (Int64.of_int id)) golden_gamma))
    (mix64 (Int64.of_int seed))
    ids

let hash_unit ~seed ids =
  let bits = Int64.shift_right_logical (hash_int64 ~seed ids) 11 in
  Int64.to_float bits *. (1.0 /. 9007199254740992.0)

let hash_int ~seed ids bound =
  if bound <= 0 then invalid_arg "Prng.hash_int: bound must be positive";
  let r = Int64.to_int (Int64.shift_right_logical (hash_int64 ~seed ids) 2) in
  r mod bound
