(** A fixed pool of worker Domains (OCaml 5 shared-memory parallelism)
    scheduled by per-domain deques with work stealing.

    Each participating domain owns a deque accessed Chase-Lev style — the
    owner pushes/pops its bottom (LIFO), thieves take the top (FIFO) — and
    steals from a seeded-deterministic victim order only when its own deque
    is empty. {!parmap} batches are scattered round-robin across all
    deques, so the common case is an uncontended local pop; stealing kicks
    in exactly when work is imbalanced. The original single-queue
    implementation is retained as {!Pool_legacy}, the differential oracle
    for the scheduling-adversarial test suite.

    [create ~domains:n] gives n-way parallelism {e including the caller}:
    n-1 worker Domains are spawned, and the domain calling {!parmap}
    claims and executes tasks alongside them. Nested [parmap] calls are
    deadlock-free because a batch's submitter can always reach any queued
    task through its own claim sweep (pop own deque, then steal), and
    sleeps only when every remaining task of its batch is in flight.

    The pool is the machinery behind the engine's multicore execution
    backend: chunks of a dataflow operator's partitions are the tasks, and
    the barrier at the end of [parmap] is where the coordinator merges
    per-partition accumulators (the BSP superstep boundary). Scheduling is
    invisible to the cost model — steal order can move wall time only,
    never results or charged cost. *)

type t

val create : ?seed:int -> domains:int -> unit -> t
(** Spawns [domains - 1] worker Domains ([domains <= 1] spawns none and
    makes {!parmap} run inline — the exact sequential execution). [seed]
    (default 0) keys the per-slot victim permutations, making scheduling
    traces reproducible; results never depend on it. *)

val size : t -> int
(** The configured degree of parallelism (including the caller). *)

val parmap : t -> ('a -> 'b) -> 'a array -> 'b array
(** Applies [f] to every element, in parallel across the pool's domains.
    All tasks run to completion even if some raise; the exception of the
    {e lowest} input index is then re-raised in the caller — the same
    exception a sequential left-to-right run would surface — and the pool
    remains usable. Safe to call from inside a task (nested batches). *)

val shutdown : t -> unit
(** Signals every worker to exit and joins them. Idempotent; after
    shutdown, {!parmap} still works but runs inline. *)

(** {1 Scheduler observability} *)

type stats = {
  steals : int;  (** tasks claimed from another slot's deque *)
  steal_misses : int;  (** full claim sweeps that found every deque empty *)
  tasks_run : int;  (** tasks executed through the deques (parallel path) *)
}

val stats : t -> stats
(** Monotone counters since [create]. Purely observational: consumers (the
    engine's [par_steals]/[par_steal_misses] metrics, trace instants) diff
    snapshots around barriers; nothing in result or cost computation reads
    them. *)

(** {1 Global default pool}

    Process-wide pool used by engine instances that are not given an
    explicit pool: the CLI's [--domains] and the test suite's
    [EMMA_TEST_DOMAINS] configure it once at startup. *)

val default : unit -> t
(** The shared pool (created lazily; 1 domain unless configured). *)

val set_default_domains : int -> unit
(** Reconfigures the default pool size, shutting down any existing default
    pool (a fresh one is created on the next {!default} call). *)

val default_domains : unit -> int
