(** A fixed pool of worker Domains (OCaml 5 shared-memory parallelism) fed
    through a mutex/condition work queue.

    [create ~domains:n] gives n-way parallelism {e including the caller}:
    n-1 worker Domains are spawned, and the domain calling {!parmap}
    executes tasks of its own batch alongside them. Nested [parmap] calls
    are deadlock-free because a batch's submitter can always drain its own
    unclaimed tasks itself.

    The pool is the machinery behind the engine's multicore execution
    backend: partitions of a dataflow operator are the tasks, and the
    barrier at the end of [parmap] is where the coordinator merges
    per-partition accumulators (the BSP superstep boundary). *)

type t

val create : domains:int -> t
(** Spawns [domains - 1] worker Domains ([domains <= 1] spawns none and
    makes {!parmap} run inline — the exact sequential execution). *)

val size : t -> int
(** The configured degree of parallelism (including the caller). *)

val parmap : t -> ('a -> 'b) -> 'a array -> 'b array
(** Applies [f] to every element, in parallel across the pool's domains.
    All tasks run to completion even if some raise; the exception of the
    {e lowest} input index is then re-raised in the caller — the same
    exception a sequential left-to-right run would surface — and the pool
    remains usable. Safe to call from inside a task (nested batches). *)

val shutdown : t -> unit
(** Signals every worker to exit and joins them. Idempotent; after
    shutdown, {!parmap} still works but runs inline. *)

(** {1 Global default pool}

    Process-wide pool used by engine instances that are not given an
    explicit pool: the CLI's [--domains] and the test suite's
    [EMMA_TEST_DOMAINS] configure it once at startup. *)

val default : unit -> t
(** The shared pool (created lazily; 1 domain unless configured). *)

val set_default_domains : int -> unit
(** Reconfigures the default pool size, shutting down any existing default
    pool (a fresh one is created on the next {!default} call). *)

val default_domains : unit -> int
