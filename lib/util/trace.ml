type attr = A_str of string | A_int of int | A_float of float | A_bool of bool

type phase = B | E | I | C

type event = {
  ev_name : string;
  ev_cat : string;
  ev_ph : phase;
  ev_ts_us : float;
  ev_tid : int;
  ev_args : (string * attr) list;
}

type t = {
  on : bool;
  clock : unit -> float;
  m : Mutex.t;
  mutable t0 : float;
  mutable last_us : float;  (* clamp: recorded timestamps never decrease *)
  mutable rev_events : event list;
}

let disabled =
  { on = false;
    clock = (fun () -> 0.0);
    m = Mutex.create ();
    t0 = 0.0;
    last_us = 0.0;
    rev_events = [] }

let create ?clock () =
  let clock = match clock with Some c -> c | None -> Unix.gettimeofday in
  { on = true;
    clock;
    m = Mutex.create ();
    t0 = clock ();
    last_us = 0.0;
    rev_events = [] }

let enabled t = t.on

let events t =
  Mutex.lock t.m;
  let evs = List.rev t.rev_events in
  Mutex.unlock t.m;
  evs

let clear t =
  Mutex.lock t.m;
  t.rev_events <- [];
  t.t0 <- t.clock ();
  t.last_us <- 0.0;
  Mutex.unlock t.m

let emit t ~name ~cat ~ph ~args =
  if t.on then begin
    let tid = (Domain.self () :> int) in
    Mutex.lock t.m;
    let us = Float.max t.last_us ((t.clock () -. t.t0) *. 1e6) in
    t.last_us <- us;
    t.rev_events <-
      { ev_name = name; ev_cat = cat; ev_ph = ph; ev_ts_us = us; ev_tid = tid; ev_args = args }
      :: t.rev_events;
    Mutex.unlock t.m
  end

let span t ?(cat = "") ?(args = []) name f =
  if not t.on then f ()
  else begin
    emit t ~name ~cat ~ph:B ~args;
    match f () with
    | r ->
        emit t ~name ~cat ~ph:E ~args:[];
        r
    | exception e ->
        emit t ~name ~cat ~ph:E ~args:[ ("error", A_bool true) ];
        raise e
  end

let span_f t ?(cat = "") ?(args = []) ~end_args name f =
  if not t.on then f ()
  else begin
    emit t ~name ~cat ~ph:B ~args;
    match f () with
    | r ->
        emit t ~name ~cat ~ph:E ~args:(end_args r);
        r
    | exception e ->
        emit t ~name ~cat ~ph:E ~args:[ ("error", A_bool true) ];
        raise e
  end

let instant t ?(cat = "") ?(args = []) name = emit t ~name ~cat ~ph:I ~args
let counter t ?(cat = "") name v = emit t ~name ~cat ~ph:C ~args:[ (name, A_float v) ]

(* ------------------------------------------------------------------ *)
(* Well-formedness                                                      *)
(* ------------------------------------------------------------------ *)

let well_formed t =
  let stacks : (int, string list ref) Hashtbl.t = Hashtbl.create 8 in
  let stack tid =
    match Hashtbl.find_opt stacks tid with
    | Some s -> s
    | None ->
        let s = ref [] in
        Hashtbl.add stacks tid s;
        s
  in
  let check acc ev =
    match acc with
    | Error _ -> acc
    | Ok last_ts ->
        if ev.ev_ts_us < last_ts then
          Error
            (Printf.sprintf "timestamp went backwards: %.3f after %.3f (%s)" ev.ev_ts_us
               last_ts ev.ev_name)
        else begin
          let s = stack ev.ev_tid in
          match ev.ev_ph with
          | B ->
              s := ev.ev_name :: !s;
              Ok ev.ev_ts_us
          | E -> begin
              match !s with
              | top :: rest when String.equal top ev.ev_name ->
                  s := rest;
                  Ok ev.ev_ts_us
              | top :: _ ->
                  Error
                    (Printf.sprintf "end %S does not match open span %S (tid %d)" ev.ev_name
                       top ev.ev_tid)
              | [] ->
                  Error (Printf.sprintf "end %S with no open span (tid %d)" ev.ev_name ev.ev_tid)
            end
          | I | C -> Ok ev.ev_ts_us
        end
  in
  match List.fold_left check (Ok 0.0) (events t) with
  | Error _ as e -> e
  | Ok _ ->
      Hashtbl.fold
        (fun tid s acc ->
          match acc with
          | Error _ -> acc
          | Ok () ->
              if !s = [] then Ok ()
              else
                Error
                  (Printf.sprintf "unclosed span %S (tid %d)" (List.hd !s) tid))
        stacks (Ok ())

(* ------------------------------------------------------------------ *)
(* Sinks                                                                *)
(* ------------------------------------------------------------------ *)

let attr_json = function
  | A_str s -> Json.Str s
  | A_int i -> Json.Int i
  | A_float f -> Json.Float f
  | A_bool b -> Json.Bool b

let phase_str = function B -> "B" | E -> "E" | I -> "i" | C -> "C"

let event_json ev =
  Json.Obj
    ([ ("name", Json.Str ev.ev_name);
       ("cat", Json.Str (if ev.ev_cat = "" then "emma" else ev.ev_cat));
       ("ph", Json.Str (phase_str ev.ev_ph));
       ("ts", Json.Float ev.ev_ts_us);
       ("pid", Json.Int 1);
       ("tid", Json.Int ev.ev_tid) ]
    @ (match ev.ev_ph with I -> [ ("s", Json.Str "t") ] | _ -> [])
    @
    match ev.ev_args with
    | [] -> []
    | args -> [ ("args", Json.Obj (List.map (fun (k, a) -> (k, attr_json a)) args)) ])

let to_chrome_json t =
  Json.to_string
    (Json.Obj
       [ ("traceEvents", Json.List (List.map event_json (events t)));
         ("displayTimeUnit", Json.Str "ms") ])

let write_chrome_json t path =
  (* temp-then-rename: a crash mid-write must never leave a truncated
     trace under the final name *)
  Wal.write_atomic path (to_chrome_json t ^ "\n")

let attr_str = function
  | A_str s -> s
  | A_int i -> string_of_int i
  | A_float f -> Printf.sprintf "%.6f" f
  | A_bool b -> string_of_bool b

let args_str = function
  | [] -> ""
  | args ->
      " ["
      ^ String.concat ", " (List.map (fun (k, a) -> k ^ "=" ^ attr_str a) args)
      ^ "]"

let to_text_tree t =
  let evs = Array.of_list (events t) in
  (* match begin/end pairs per tid to compute durations *)
  let durations : (int, float) Hashtbl.t = Hashtbl.create 64 in
  let stacks : (int, int list ref) Hashtbl.t = Hashtbl.create 8 in
  Array.iteri
    (fun i ev ->
      let s =
        match Hashtbl.find_opt stacks ev.ev_tid with
        | Some s -> s
        | None ->
            let s = ref [] in
            Hashtbl.add stacks ev.ev_tid s;
            s
      in
      match ev.ev_ph with
      | B -> s := i :: !s
      | E -> begin
          match !s with
          | b :: rest ->
              s := rest;
              Hashtbl.replace durations b (ev.ev_ts_us -. evs.(b).ev_ts_us)
          | [] -> ()
        end
      | I | C -> ())
    evs;
  let buf = Buffer.create 1024 in
  let depth : (int, int) Hashtbl.t = Hashtbl.create 8 in
  let get_depth tid = Option.value ~default:0 (Hashtbl.find_opt depth tid) in
  let indent d = String.make (2 * d) ' ' in
  Array.iteri
    (fun i ev ->
      let d = get_depth ev.ev_tid in
      match ev.ev_ph with
      | B ->
          let dur =
            match Hashtbl.find_opt durations i with
            | Some us -> Printf.sprintf " %.3f ms" (us /. 1e3)
            | None -> ""
          in
          Buffer.add_string buf
            (Printf.sprintf "%s%s%s  (tid %d)%s%s\n" (indent d) ev.ev_name
               (if ev.ev_cat = "" then "" else " <" ^ ev.ev_cat ^ ">")
               ev.ev_tid dur (args_str ev.ev_args));
          Hashtbl.replace depth ev.ev_tid (d + 1)
      | E -> Hashtbl.replace depth ev.ev_tid (max 0 (d - 1))
      | I ->
          Buffer.add_string buf
            (Printf.sprintf "%s* %s%s\n" (indent d) ev.ev_name (args_str ev.ev_args))
      | C ->
          Buffer.add_string buf
            (Printf.sprintf "%s# %s%s\n" (indent d) ev.ev_name (args_str ev.ev_args)))
    evs;
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Ambient tracer                                                       *)
(* ------------------------------------------------------------------ *)

let global_tracer = ref disabled
let global () = !global_tracer
let set_global t = global_tracer := t
