(** CRC-32 checksums (IEEE 802.3 polynomial, the zlib/PNG variant).

    Deterministic across hosts: the checksum is plain integer arithmetic
    on the low 32 bits, so a value computed on one machine verifies on
    any other. Used by the engine to guard loop-state checkpoint records
    against (simulated) corruption. *)

val string : ?crc:int -> string -> int
(** [string s] is the CRC-32 of [s] as an integer in [0, 0xFFFFFFFF].
    [?crc] continues a running checksum from a previous call, so
    [string ~crc:(string a) b = string (a ^ b)]. *)

val bytes : ?crc:int -> Bytes.t -> int
(** Same as {!string} over a byte buffer. *)
