(* Segmented append-only journal with CRC32-framed records. See wal.mli
   for the on-disk layout and the recovery semantics of [create]. *)

type sync_policy = Sync_none | Sync_batch of int | Sync_always

let sync_policy_of_string s =
  match s with
  | "none" -> Ok Sync_none
  | "always" -> Ok Sync_always
  | _ -> (
      match String.index_opt s ':' with
      | Some i when String.sub s 0 i = "batch" -> (
          let n = String.sub s (i + 1) (String.length s - i - 1) in
          match int_of_string_opt n with
          | Some n when n >= 1 -> Ok (Sync_batch n)
          | _ ->
              Error
                (Printf.sprintf "--wal-sync batch:%s: expected a positive batch size" n))
      | _ ->
          Error
            (Printf.sprintf "--wal-sync %s: expected none, always or batch:N" s))

let sync_policy_to_string = function
  | Sync_none -> "none"
  | Sync_always -> "always"
  | Sync_batch n -> Printf.sprintf "batch:%d" n

type crash_spec = Crash_after of int | Crash_torn of int * int

let crash_spec_of_string s =
  let err () =
    Error (Printf.sprintf "--wal-crash %s: expected N or N:K (N >= 1, K >= 0)" s)
  in
  match String.index_opt s ':' with
  | None -> (
      match int_of_string_opt s with
      | Some n when n >= 1 -> Ok (Crash_after n)
      | _ -> err ())
  | Some i -> (
      let n = String.sub s 0 i in
      let k = String.sub s (i + 1) (String.length s - i - 1) in
      match (int_of_string_opt n, int_of_string_opt k) with
      | Some n, Some k when n >= 1 && k >= 0 -> Ok (Crash_torn (n, k))
      | _ -> err ())

type stats = { wa_appends : int; wa_bytes : int; wa_fsyncs : int }

(* A segment file on disk: global index of its first record, how many
   records it holds, and its path. The last element of [segments] is
   always the active (append) segment. *)
type segment = { mutable seg_start : int; mutable seg_count : int; seg_path : string }

type t = {
  dir : string;
  sync : sync_policy;
  segment_bytes : int;
  opened : string array; (* records present at open, starting at [first] *)
  first : int;
  mutable segments : segment list;
  mutable oc : out_channel;
  mutable cur_size : int; (* bytes in the active segment *)
  mutable next_seq : int;
  mutable appends : int; (* process-local, drives crash injection *)
  mutable bytes : int;
  mutable fsyncs : int;
  mutable unsynced : int; (* appends since last fsync, for Sync_batch *)
  mutable crash : crash_spec option;
  mutable closed : bool;
}

(* -- framing ------------------------------------------------------- *)

let header_len = 8
let max_record = 64 * 1024 * 1024

let put_u32 b off v =
  Bytes.set_uint8 b off ((v lsr 24) land 0xff);
  Bytes.set_uint8 b (off + 1) ((v lsr 16) land 0xff);
  Bytes.set_uint8 b (off + 2) ((v lsr 8) land 0xff);
  Bytes.set_uint8 b (off + 3) (v land 0xff)

let get_u32 s off =
  (Char.code s.[off] lsl 24)
  lor (Char.code s.[off + 1] lsl 16)
  lor (Char.code s.[off + 2] lsl 8)
  lor Char.code s.[off + 3]

let encode_frame payload =
  let n = String.length payload in
  let b = Bytes.create (header_len + n) in
  put_u32 b 0 n;
  put_u32 b 4 (Crc32.string payload);
  Bytes.blit_string payload 0 b header_len n;
  Bytes.unsafe_to_string b

(* Scans [data] for valid frames. Returns the records and the byte
   length of the valid prefix; anything past it is a torn or corrupt
   tail. *)
let scan_frames data =
  let len = String.length data in
  let recs = ref [] in
  let pos = ref 0 in
  let stop = ref false in
  while not !stop do
    if !pos + header_len > len then stop := true
    else
      let n = get_u32 data !pos in
      if n > max_record || !pos + header_len + n > len then stop := true
      else
        let payload = String.sub data (!pos + header_len) n in
        if Crc32.string payload <> get_u32 data (!pos + 4) then stop := true
        else begin
          recs := payload :: !recs;
          pos := !pos + header_len + n
        end
  done;
  (List.rev !recs, !pos)

(* -- filesystem helpers -------------------------------------------- *)

let rec mkdir_p dir =
  if not (Sys.file_exists dir) then begin
    mkdir_p (Filename.dirname dir);
    try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

let read_file path =
  In_channel.with_open_bin path (fun ic -> In_channel.input_all ic)

let fsync_channel oc =
  flush oc;
  Unix.fsync (Unix.descr_of_out_channel oc)

let write_atomic ?(fsync = false) path contents =
  let dir = Filename.dirname path in
  let tmp = Filename.temp_file ~temp_dir:dir ".emma-write" ".tmp" in
  (try
     Out_channel.with_open_bin tmp (fun oc ->
         output_string oc contents;
         if fsync then fsync_channel oc)
   with e ->
     (try Sys.remove tmp with Sys_error _ -> ());
     raise e);
  Sys.rename tmp path

let segment_path dir start = Filename.concat dir (Printf.sprintf "journal-%010d.seg" start)
let snapshot_path dir covers = Filename.concat dir (Printf.sprintf "snap-%010d.snap" covers)

let parse_numbered ~prefix ~suffix name =
  if
    String.length name > String.length prefix + String.length suffix
    && String.starts_with ~prefix name
    && String.ends_with ~suffix name
  then
    int_of_string_opt
      (String.sub name (String.length prefix)
         (String.length name - String.length prefix - String.length suffix))
  else None

let list_numbered dir ~prefix ~suffix =
  Sys.readdir dir |> Array.to_list
  |> List.filter_map (parse_numbered ~prefix ~suffix)
  |> List.sort compare

(* -- open / recover ------------------------------------------------ *)

let create ?(sync = Sync_none) ?(segment_bytes = 64 * 1024) ~dir () =
  mkdir_p dir;
  let starts = list_numbered dir ~prefix:"journal-" ~suffix:".seg" in
  (* Read segments in order; stop at the first gap or corrupt record —
     everything after is dropped (replay regenerates it). *)
  let segments = ref [] in
  let records = ref [] in
  let keep_reading = ref true in
  List.iter
    (fun start ->
      if !keep_reading then begin
        let expected =
          match !segments with
          | [] -> start
          | seg :: _ -> seg.seg_start + seg.seg_count
        in
        if start <> expected then keep_reading := false
        else
          let path = segment_path dir start in
          let data = read_file path in
          let recs, valid = scan_frames data in
          if valid < String.length data then begin
            (* torn or corrupt tail: truncate here, drop later segments *)
            Unix.truncate path valid;
            keep_reading := false
          end;
          segments := { seg_start = start; seg_count = List.length recs; seg_path = path } :: !segments;
          records := List.rev_append recs !records
      end)
    starts;
  (* Delete any segment files past the valid prefix. *)
  let kept = List.rev !segments in
  let keep_starts = List.map (fun s -> s.seg_start) kept in
  List.iter
    (fun start ->
      if not (List.mem start keep_starts) then
        try Sys.remove (segment_path dir start) with Sys_error _ -> ())
    starts;
  let kept =
    match kept with
    | [] -> [ { seg_start = 0; seg_count = 0; seg_path = segment_path dir 0 } ]
    | l -> l
  in
  let first = (List.hd kept).seg_start in
  let last = List.nth kept (List.length kept - 1) in
  let oc =
    open_out_gen [ Open_wronly; Open_creat; Open_append; Open_binary ] 0o644 last.seg_path
  in
  let cur_size = (Unix.stat last.seg_path).Unix.st_size in
  {
    dir;
    sync;
    segment_bytes;
    opened = Array.of_list (List.rev !records);
    first;
    segments = kept;
    oc;
    cur_size;
    next_seq = last.seg_start + last.seg_count;
    appends = 0;
    bytes = 0;
    fsyncs = 0;
    unsynced = 0;
    crash = None;
    closed = false;
  }

let records t = t.opened
let first_seq t = t.first
let count t = t.next_seq
let stats t = { wa_appends = t.appends; wa_bytes = t.bytes; wa_fsyncs = t.fsyncs }
let set_crash t spec = t.crash <- Some spec

let do_fsync t =
  flush t.oc;
  Unix.fsync (Unix.descr_of_out_channel t.oc);
  t.fsyncs <- t.fsyncs + 1;
  t.unsynced <- 0

let sync t = if not t.closed then do_fsync t

let close t =
  if not t.closed then begin
    t.closed <- true;
    flush t.oc;
    close_out t.oc
  end

let active_segment t = List.nth t.segments (List.length t.segments - 1)

let rotate t =
  flush t.oc;
  close_out t.oc;
  let seg = { seg_start = t.next_seq; seg_count = 0; seg_path = segment_path t.dir t.next_seq } in
  t.segments <- t.segments @ [ seg ];
  t.oc <- open_out_gen [ Open_wronly; Open_creat; Open_trunc; Open_binary ] 0o644 seg.seg_path;
  t.cur_size <- 0

(* SIGKILL ourselves: the crash-injection harness relies on the process
   dying without any atexit / finaliser cleanup, exactly like a real
   crash. Data already flushed to the OS survives in the page cache. *)
let die () = Unix.kill (Unix.getpid ()) Sys.sigkill

let append t payload =
  if t.closed then invalid_arg "Wal.append: journal is closed";
  let frame = encode_frame payload in
  if t.cur_size > 0 && t.cur_size + String.length frame > t.segment_bytes then rotate t;
  t.appends <- t.appends + 1;
  (match t.crash with
  | Some (Crash_torn (n, k)) when t.appends = n ->
      output_substring t.oc frame 0 (min k (String.length frame));
      fsync_channel t.oc;
      die ()
  | _ -> ());
  output_string t.oc frame;
  flush t.oc;
  t.bytes <- t.bytes + String.length frame;
  t.cur_size <- t.cur_size + String.length frame;
  t.unsynced <- t.unsynced + 1;
  (match t.sync with
  | Sync_always -> do_fsync t
  | Sync_batch n -> if t.unsynced >= n then do_fsync t
  | Sync_none -> ());
  (match t.crash with
  | Some (Crash_after n) when t.appends = n ->
      fsync_channel t.oc;
      die ()
  | _ -> ());
  let seq = t.next_seq in
  t.next_seq <- seq + 1;
  let seg = active_segment t in
  seg.seg_count <- seg.seg_count + 1;
  seq

(* -- snapshots ----------------------------------------------------- *)

let write_snapshot t ~covers payload =
  write_atomic ~fsync:true (snapshot_path t.dir covers) (encode_frame payload);
  (* Keep the newest two snapshots; everything older is deleted. *)
  let snaps = list_numbered t.dir ~prefix:"snap-" ~suffix:".snap" in
  let keep = match List.rev snaps with a :: b :: _ -> [ a; b ] | l -> l in
  List.iter
    (fun c ->
      if not (List.mem c keep) then
        try Sys.remove (snapshot_path t.dir c) with Sys_error _ -> ())
    snaps;
  (* Compact: a segment whose records all precede the oldest retained
     snapshot can never be needed for replay again. Never delete the
     active segment. *)
  let oldest = List.fold_left min max_int keep in
  let active = active_segment t in
  let dead, live =
    List.partition
      (fun seg -> seg != active && seg.seg_start + seg.seg_count <= oldest)
      t.segments
  in
  List.iter (fun seg -> try Sys.remove seg.seg_path with Sys_error _ -> ()) dead;
  t.segments <- live

let load_snapshot t =
  let snaps = List.rev (list_numbered t.dir ~prefix:"snap-" ~suffix:".snap") in
  let usable covers =
    if covers < t.first || covers > t.next_seq then None
    else
      match read_file (snapshot_path t.dir covers) with
      | exception Sys_error _ -> None
      | data -> (
          match scan_frames data with
          | [ payload ], valid when valid = String.length data -> Some (covers, payload)
          | _ -> None)
  in
  List.find_map usable snaps
