(** Small dense float vectors, used by the k-means workloads and the linear
    algebra example layer. All operations allocate fresh arrays and check
    dimensions. *)

type t = float array

val zeros : int -> t
val of_list : float list -> t
val dim : t -> int

val add : t -> t -> t
(** Component-wise sum. Raises [Invalid_argument] on dimension mismatch. *)

val sub : t -> t -> t
val scale : float -> t -> t
val div_scalar : t -> float -> t
val dot : t -> t -> float
val norm2 : t -> float
(** Euclidean norm. *)

val dist : t -> t -> float
(** Euclidean distance. *)

val equal : ?eps:float -> t -> t -> bool
(** Component-wise comparison within [eps] (default [1e-9]). *)

val pp : Format.formatter -> t -> unit
