let render ~title ~header rows =
  let ncols = List.length header in
  let pad_row r =
    let len = List.length r in
    if len >= ncols then r else r @ List.init (ncols - len) (fun _ -> "")
  in
  let rows = List.map pad_row rows in
  let all = header :: rows in
  let widths = Array.make ncols 0 in
  List.iter
    (fun row ->
      List.iteri
        (fun i cell -> if i < ncols then widths.(i) <- max widths.(i) (String.length cell))
        row)
    all;
  let buf = Buffer.create 256 in
  let line ch =
    Array.iter (fun w -> Buffer.add_string buf (String.make (w + 2) ch); Buffer.add_char buf '+') widths;
    Buffer.add_char buf '\n'
  in
  let emit_row row =
    List.iteri
      (fun i cell ->
        if i < ncols then begin
          Buffer.add_char buf ' ';
          Buffer.add_string buf cell;
          Buffer.add_string buf (String.make (widths.(i) - String.length cell + 1) ' ');
          Buffer.add_char buf '|'
        end)
      row;
    Buffer.add_char buf '\n'
  in
  Buffer.add_string buf ("== " ^ title ^ " ==\n");
  line '-';
  emit_row header;
  line '-';
  List.iter emit_row rows;
  line '-';
  Buffer.contents buf

let print ~title ~header rows = print_string (render ~title ~header rows)
