(* A fixed pool of worker Domains scheduled by per-domain deques with work
   stealing (replacing the original single-mutex work queue, kept in
   [Pool_legacy] as the differential oracle).

   Each participating domain owns one deque, accessed Chase-Lev style: the
   owner pushes and pops at the bottom (LIFO, cache-warm), thieves take
   from the top (FIFO, the oldest — hence largest-remaining — work). The
   deques are guarded by one small mutex each rather than by fences: slot 0
   is shared by every external submitter thread, which a fence-only
   Chase-Lev owner end would not tolerate, and a per-deque lock is touched
   only by its owner plus the occasional thief, so the global contention
   wall of the legacy pool is gone either way.

   A [parmap] batch is scattered round-robin across every deque, the
   submitter's own deque first, so the common case is a local (lock-local)
   pop and stealing happens only when a domain's own deque runs dry —
   exactly when partitions are skewed. Victim order is a seeded
   deterministic permutation per slot (SplitMix64-shuffled at [create]), so
   a scheduling trace is reproducible from the pool seed; note the
   determinism claim for the engine does NOT rest on this — results and
   charged costs are identical under every interleaving, the seed only
   makes wall-clock anomalies replayable.

   A pool of [domains = n] means "n-way parallelism including the caller":
   [create ~domains:n] spawns n-1 worker Domains on slots 1..n-1, and the
   domain that calls [parmap] participates from its own slot (slot 0 if it
   is not a pool worker). Caller participation is what keeps nested
   [parmap] calls deadlock-free: every task of a batch is queued before the
   submitter starts draining, tasks only ever leave a deque by being
   claimed, and the submitter's claim sweep (own pop, then steal from every
   victim) reaches any queued task in the pool — so when the sweep comes up
   empty, every remaining task of its batch is in flight on some domain and
   the submitter may sleep until the last finisher signals the batch
   condition. In-flight tasks complete by induction on nesting depth: a
   deepest-nested batch contains no [parmap] calls, and a nested submitter
   is itself a claim-sweeping participant for its own batch.

   Exception propagation is deterministic and identical to the legacy pool:
   all tasks of a batch run to completion and the exception of the LOWEST
   task index is re-raised in the caller — the same exception a sequential
   left-to-right execution would surface — leaving the pool reusable. *)

type batch = {
  b_run : int -> unit;  (* executes task i; never raises (errors recorded) *)
  b_unfinished : int Atomic.t;  (* tasks not yet completed *)
  b_m : Mutex.t;  (* guards the submitter's wait on [b_done] *)
  b_done : Condition.t;  (* broadcast when b_unfinished reaches 0 *)
}

(* A deque of (batch, task index), locked per-deque. Logical positions
   [top, bot) live at [buf.(pos mod capacity)]; the owner moves [bot],
   thieves move [top]. *)
type deque = {
  dq_m : Mutex.t;
  mutable dq_buf : (batch * int) option array;
  mutable dq_top : int;  (* next position to steal *)
  mutable dq_bot : int;  (* next position to push *)
}

let deque_create () =
  { dq_m = Mutex.create ();
    dq_buf = Array.make 8 None;
    dq_top = 0;
    dq_bot = 0 }

let dq_push d x =
  Mutex.lock d.dq_m;
  let cap = Array.length d.dq_buf in
  if d.dq_bot - d.dq_top >= cap then begin
    let ncap = cap * 2 in
    let nbuf = Array.make ncap None in
    for p = d.dq_top to d.dq_bot - 1 do
      nbuf.(p mod ncap) <- d.dq_buf.(p mod cap)
    done;
    d.dq_buf <- nbuf
  end;
  d.dq_buf.(d.dq_bot mod Array.length d.dq_buf) <- Some x;
  d.dq_bot <- d.dq_bot + 1;
  Mutex.unlock d.dq_m

(* Owner end: newest task first. *)
let dq_pop d =
  Mutex.lock d.dq_m;
  let r =
    if d.dq_bot > d.dq_top then begin
      d.dq_bot <- d.dq_bot - 1;
      let p = d.dq_bot mod Array.length d.dq_buf in
      let x = d.dq_buf.(p) in
      d.dq_buf.(p) <- None;
      x
    end
    else None
  in
  Mutex.unlock d.dq_m;
  r

(* Thief end: oldest task first. *)
let dq_steal d =
  Mutex.lock d.dq_m;
  let r =
    if d.dq_top < d.dq_bot then begin
      let p = d.dq_top mod Array.length d.dq_buf in
      let x = d.dq_buf.(p) in
      d.dq_buf.(p) <- None;
      d.dq_top <- d.dq_top + 1;
      x
    end
    else None
  in
  Mutex.unlock d.dq_m;
  r

type t = {
  domains : int;
  deques : deque array;  (* one per slot, 0 .. domains-1 *)
  victims : int array array;  (* victims.(s) = seeded permutation of slots <> s *)
  slot_key : int option Domain.DLS.key;  (* this pool's slot for the current domain *)
  pending : int Atomic.t;  (* queued-task upper bound, drives worker sleep *)
  m : Mutex.t;  (* guards [stop] and the idle-worker sleep *)
  work : Condition.t;  (* broadcast when tasks are queued or on shutdown *)
  mutable stop : bool;
  mutable workers : unit Domain.t list;
  n_steals : int Atomic.t;
  n_steal_misses : int Atomic.t;
  n_tasks : int Atomic.t;
}

type stats = { steals : int; steal_misses : int; tasks_run : int }

let size t = t.domains

let stats t =
  { steals = Atomic.get t.n_steals;
    steal_misses = Atomic.get t.n_steal_misses;
    tasks_run = Atomic.get t.n_tasks }

(* The calling domain's slot: its worker slot if it is a worker of THIS
   pool (the key is per-pool, so workers of other pools look external
   here), slot 0 otherwise. Slot 0 is also worker-less spare capacity:
   external submitters scatter starting there, and workers steal from it. *)
let self_slot t =
  match Domain.DLS.get t.slot_key with Some s -> s | None -> 0

(* One full claim sweep: own deque first (bottom, LIFO), then every victim
   in this slot's seeded order (top, FIFO). [None] means every deque was
   observed empty — any task queued before the sweep started has been
   claimed by someone. *)
let claim t slot =
  match dq_pop t.deques.(slot) with
  | Some _ as r ->
      Atomic.decr t.pending;
      r
  | None ->
      let vs = t.victims.(slot) in
      let n = Array.length vs in
      let rec sweep i =
        if i >= n then begin
          Atomic.incr t.n_steal_misses;
          None
        end
        else
          match dq_steal t.deques.(vs.(i)) with
          | Some _ as r ->
              Atomic.decr t.pending;
              Atomic.incr t.n_steals;
              r
          | None -> sweep (i + 1)
      in
      sweep 0

let run_task t (b, i) =
  b.b_run i;
  Atomic.incr t.n_tasks;
  (* fetch_and_add returns the PREVIOUS value: 1 means we finished last *)
  if Atomic.fetch_and_add b.b_unfinished (-1) = 1 then begin
    Mutex.lock b.b_m;
    Condition.broadcast b.b_done;
    Mutex.unlock b.b_m
  end

let rec worker_loop t slot =
  match claim t slot with
  | Some tk ->
      run_task t tk;
      worker_loop t slot
  | None ->
      Mutex.lock t.m;
      (* [pending] is bumped before each push and every push precedes the
         submitter's broadcast under [t.m], so checking it under the lock
         cannot miss a wakeup: either we see pending > 0 and rescan, or we
         are waiting when the broadcast arrives. *)
      if (not t.stop) && Atomic.get t.pending = 0 then
        Condition.wait t.work t.m;
      let stop = t.stop in
      Mutex.unlock t.m;
      if not stop then worker_loop t slot

let worker t slot () =
  Domain.DLS.set t.slot_key (Some slot);
  worker_loop t slot

let create ?(seed = 0) ~domains () =
  let domains = max 1 domains in
  let victims =
    Array.init domains (fun s ->
        let vs =
          Array.of_list
            (List.filter (fun v -> v <> s) (List.init domains Fun.id))
        in
        Prng.shuffle (Prng.create (Prng.hash_int64 ~seed [ s ] |> Int64.to_int)) vs;
        vs)
  in
  let t =
    { domains;
      deques = Array.init domains (fun _ -> deque_create ());
      victims;
      slot_key = Domain.DLS.new_key (fun () -> None);
      pending = Atomic.make 0;
      m = Mutex.create ();
      work = Condition.create ();
      stop = false;
      workers = [];
      n_steals = Atomic.make 0;
      n_steal_misses = Atomic.make 0;
      n_tasks = Atomic.make 0 }
  in
  t.workers <-
    List.init (domains - 1) (fun i -> Domain.spawn (worker t (i + 1)));
  t

let shutdown t =
  Mutex.lock t.m;
  let ws = t.workers in
  t.stop <- true;
  t.workers <- [];
  Condition.broadcast t.work;
  Mutex.unlock t.m;
  List.iter Domain.join ws

let run_seq f xs =
  (* explicit ascending order, so a failing input raises the same
     (lowest-index) exception the parallel path propagates *)
  let n = Array.length xs in
  if n = 0 then [||]
  else begin
    let r = Array.make n (f xs.(0)) in
    for i = 1 to n - 1 do
      r.(i) <- f xs.(i)
    done;
    r
  end

let parmap t f xs =
  let n = Array.length xs in
  if n <= 1 || t.domains <= 1 || t.workers = [] then run_seq f xs
  else begin
    let results = Array.make n None in
    let errors = Array.make n None in
    let run i =
      match f xs.(i) with
      | r -> results.(i) <- Some r
      | exception e -> errors.(i) <- Some e
    in
    let b =
      { b_run = run;
        b_unfinished = Atomic.make n;
        b_m = Mutex.create ();
        b_done = Condition.create () }
    in
    let self = self_slot t in
    (* Scatter round-robin across all deques starting at our own slot.
       Pushed in descending index order so each owner pops its LIFO end in
       ascending order — the sequential prefix order. [pending] is bumped
       before each push, so it upper-bounds the queued count and a worker
       that reads 0 under [t.m] can safely sleep. *)
    for i = n - 1 downto 0 do
      Atomic.incr t.pending;
      dq_push t.deques.((self + i) mod t.domains) (b, i)
    done;
    Mutex.lock t.m;
    Condition.broadcast t.work;
    Mutex.unlock t.m;
    (* Participate: claim-sweep until the sweep runs dry, which (tasks were
       all queued before this loop and only leave by claim) means every
       remaining task of OUR batch is in flight — then sleep on the batch
       condition. Sweeping may hand us a task of an unrelated or nested
       batch; running it is both safe and required for progress when a
       nested submitter's chunks landed in our deque. *)
    let rec drain () =
      if Atomic.get b.b_unfinished > 0 then begin
        (match claim t self with
        | Some tk -> run_task t tk
        | None ->
            Mutex.lock b.b_m;
            if Atomic.get b.b_unfinished > 0 then Condition.wait b.b_done b.b_m;
            Mutex.unlock b.b_m);
        drain ()
      end
    in
    drain ();
    Array.iter (function Some e -> raise e | None -> ()) errors;
    Array.map
      (function Some r -> r | None -> invalid_arg "Pool.parmap: missing result")
      results
  end

(* ------------------------------------------------------------------ *)
(* Global default pool                                                  *)
(* ------------------------------------------------------------------ *)

let default_m = Mutex.create ()
let default_pool : t option ref = ref None
let default_size = ref 1

let default () =
  Mutex.lock default_m;
  let p =
    match !default_pool with
    | Some p -> p
    | None ->
        let p = create ~domains:!default_size () in
        default_pool := Some p;
        p
  in
  Mutex.unlock default_m;
  p

let set_default_domains n =
  let n = max 1 n in
  Mutex.lock default_m;
  let old = !default_pool in
  default_size := n;
  default_pool := None;
  Mutex.unlock default_m;
  match old with Some p -> shutdown p | None -> ()

let default_domains () = !default_size
